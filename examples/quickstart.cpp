//===- examples/quickstart.cpp - First steps with accelOS --------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end accelOS program: one application compiles a
/// MiniCL kernel *through the transparent ProxyCL shim* (which JITs the
/// scheduling transform behind its back), runs it on the simulated
/// NVIDIA-like accelerator, and reads the result. Nothing in the
/// "application code" below knows accelOS exists — that is the paper's
/// transparency claim.
///
//===----------------------------------------------------------------------===//

#include "accelos/ProxyCL.h"
#include "support/RawOstream.h"

using namespace accel;

int main() {
  raw_ostream &OS = outs();

  // The system side: one accelerator, one accelOS runtime.
  auto Device = ocl::Platform::createNvidiaK20m();
  accelos::Runtime AccelOS(*Device);

  // The application side: everything below is plain OpenCL-style code.
  accelos::ProxyCL App(AccelOS, /*AppId=*/1);

  const char *Source = R"(
    kernel void saxpy(global const float* x, global float* y, float a) {
      long gid = get_global_id(0);
      y[gid] = a * x[gid] + y[gid];
    }
  )";

  ocl::Program *Prog = cantFail(App.createProgram(Source));
  ocl::Kernel K = cantFail(App.createKernel(*Prog, "saxpy"));

  constexpr int N = 1024;
  std::vector<float> X(N), Y(N);
  for (int I = 0; I < N; ++I) {
    X[I] = static_cast<float>(I);
    Y[I] = 1.0f;
  }
  ocl::Buffer BX = cantFail(App.createBuffer(N * 4));
  ocl::Buffer BY = cantFail(App.createBuffer(N * 4));
  cantFail(BX.write(X.data(), N * 4));
  cantFail(BY.write(Y.data(), N * 4));

  cantFail(App.setKernelArg(K, 0, ocl::KernelArg::buffer(BX)));
  cantFail(App.setKernelArg(K, 1, ocl::KernelArg::buffer(BY)));
  cantFail(App.setKernelArg(K, 2, ocl::KernelArg::scalarF32(2.0f)));

  kir::NDRangeCfg Range;
  Range.GlobalSize[0] = N;
  Range.LocalSize[0] = 128;

  // Async submission: the request is admitted continuously (no round
  // barrier), the handle exposes wait(), and the callback fires when
  // the execution retires.
  bool CallbackFired = false;
  accelos::RequestHandle H = cantFail(App.submitNDRange(
      K, Range, [&](const accelos::ScheduledExecution &E) {
        CallbackFired = true;
        OS << "completion callback: request " << E.RequestId
           << " retired at t=" << static_cast<uint64_t>(E.EndTime)
           << " cycles\n";
      }));
  accelos::ScheduledExecution Exec = cantFail(H.wait());

  cantFail(BY.read(Y.data(), N * 4));
  bool Ok = CallbackFired;
  for (int I = 0; I < N; ++I)
    Ok &= Y[I] == 2.0f * I + 1.0f;

  OS << "saxpy over " << N << " elements: " << (Ok ? "PASSED" : "FAILED")
     << "\n";
  OS << "scheduled with " << Exec.PhysicalWGs
     << " physical work groups for " << Exec.OriginalWGs
     << " virtual groups (batch " << Exec.Batch << ")\n";
  OS << "queueing delay " << static_cast<uint64_t>(Exec.queueDelay())
     << " cycles, turnaround " << static_cast<uint64_t>(Exec.turnaround())
     << " cycles\n";
  OS << "device-side dequeue operations: " << Exec.Stats.AtomicOps
     << "\n";
  OS << "FSM: " << AccelOS.stats().ProgramsJitted << " program(s) JIT'd, "
     << AccelOS.stats().KernelsScheduled << " kernel(s) scheduled, "
     << AccelOS.stats().Passthrough << " passthrough request(s)\n";
  return Ok ? 0 : 1;
}
