//===- examples/closed_loop_server.cpp - SLO-driven closed-loop serving ------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed-loop serving story in miniature: an interactive tenant
/// issuing short kernels (one at a time, with think time) shares the
/// device with a batch tenant that keeps eight requests in flight at
/// all times. Arrivals are reactions — each tenant submits its next
/// request only when a predecessor drains — so the schedulers shape
/// their own offered load (backpressure). The script is replayed twice
/// through harness::runClosedLoop: once with static equal weights, once
/// with an SLO on the interactive tenant's queueing time feeding
/// accelos::SloWeightController, which multiplicatively boosts the
/// tenant's fair-share weight while it misses and decays the boost once
/// it comfortably attains.
///
//===----------------------------------------------------------------------===//

#include "harness/Streaming.h"
#include "harness/Table.h"
#include "metrics/Metrics.h"
#include "support/RawOstream.h"
#include "support/StringUtil.h"
#include "workloads/Arrivals.h"

#include <algorithm>
#include <utility>
#include <vector>

using namespace accel;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Closed-loop server: SLO-driven weight adaptation ===\n\n";

  // Swap in any spec — a custom fleet device included — and the rest
  // of the example follows it: every label below comes from the spec,
  // nothing is hardcoded to the K20m default.
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  harness::ExperimentDriver Driver(Spec);
  OS << "device: " << Driver.device().Name << "\n\n";
  double MeanDur = harness::meanIsolatedBaselineDuration(Driver);

  // The interactive tenant runs the shortest quarter of the suite.
  std::vector<std::pair<double, size_t>> ByDur;
  for (size_t I = 0; I != Driver.numKernels(); ++I)
    ByDur.push_back(
        {Driver.isolatedDuration(harness::SchedulerKind::Baseline, I), I});
  std::sort(ByDur.begin(), ByDur.end());
  std::vector<size_t> Short;
  for (size_t I = 0; I != Driver.numKernels() / 4; ++I)
    Short.push_back(ByDur[I].second);

  std::vector<workloads::ClosedLoopTenant> Tenants(2);
  Tenants[0] = {0, 20, 1, 0.25 * MeanDur, 1, Short}; // interactive
  Tenants[1] = {1, 24, 8, 0.02 * MeanDur, 2, {}};    // batch
  workloads::ClosedLoopScript Script =
      workloads::closedLoopTrace(Driver.numKernels(), Tenants);

  harness::StreamOptions Static;
  Static.RoundQuantum = 0.25 * MeanDur;
  Static.StrictShares = true;
  Static.SloTargets = {{0, 0.5 * MeanDur}};
  harness::StreamOptions Adaptive = Static;
  Adaptive.AdaptiveSloWeights = true;
  Adaptive.SloControlInterval = 1.0 * MeanDur;
  Adaptive.SloTuning.MinSamples = 1;
  Adaptive.SloTuning.Headroom = 0.4;

  harness::StreamOutcome St = harness::runClosedLoop(
      Driver, harness::SchedulerKind::AccelOSOptimized, Script, Static);
  harness::StreamOutcome Ad = harness::runClosedLoop(
      Driver, harness::SchedulerKind::AccelOSOptimized, Script, Adaptive);

  harness::TextTable T({"Weights", "Tenant", "Requests", "Qtime p50",
                        "Qtime p95", "SLO attain", "Final weight"});
  const std::pair<const char *, const harness::StreamOutcome *> Runs[] = {
      {"static", &St}, {"slo-adaptive", &Ad}};
  for (const auto &[Name, Outcome] : Runs)
    for (const auto &[Tenant, Excess] : Outcome->queueingExcessByTenant()) {
      auto TIt = Static.SloTargets.find(Tenant);
      std::string Attain =
          TIt == Static.SloTargets.end()
              ? std::string("-")
              : formatDouble(
                    100 * metrics::sloAttainment(Excess, TIt->second), 0) +
                    "%";
      auto WIt = Outcome->FinalWeights.find(Tenant);
      T.addRow({Name, std::to_string(Tenant),
                std::to_string(Excess.size()),
                formatDouble(metrics::latencyPercentile(Excess, 50), 0),
                formatDouble(metrics::latencyPercentile(Excess, 95), 0),
                Attain,
                formatDouble(
                    WIt == Outcome->FinalWeights.end() ? 1.0 : WIt->second,
                    2)});
    }
  T.print(OS);

  OS << "\nSLO: interactive tenant 0 queueing time <= ";
  OS.printFixed(0.5 * MeanDur, 0);
  OS << " cycles\nadaptive run: " << Ad.WeightUpdates
     << " weight updates; makespan ";
  OS.printFixed(Ad.Makespan / MeanDur, 2);
  OS << " vs ";
  OS.printFixed(St.Makespan / MeanDur, 2);
  OS << " mean solo durations (static)\n";
  return 0;
}
