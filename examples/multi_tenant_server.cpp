//===- examples/multi_tenant_server.cpp - Fair sharing across tenants --------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating scenario (Sec. 1): a data-center node where
/// several tenants submit kernels to one accelerator concurrently. Three
/// tenants run different MiniCL kernels in one scheduling round; the
/// Kernel Scheduler sizes them against each other so each gets an equal
/// share of threads, local memory and registers, and the timing model
/// shows the fairness gap against the standard serializing stack.
///
//===----------------------------------------------------------------------===//

#include "accelos/ProxyCL.h"
#include "harness/Experiment.h"
#include "harness/Table.h"
#include "support/RawOstream.h"

using namespace accel;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Multi-tenant accelerator sharing ===\n\n";

  // --- Functional view: three tenants share one round. ---------------------
  auto Device = ocl::Platform::createNvidiaK20m();
  accelos::Runtime AccelOS(*Device);

  struct Tenant {
    accelos::ProxyCL App;
    const char *Kernel;
    const char *Name;
  };
  accelos::ProxyCL A1(AccelOS, 1), A2(AccelOS, 2), A3(AccelOS, 3);

  const char *Scale = R"(
    kernel void scale(global float* d, float f) {
      d[get_global_id(0)] = d[get_global_id(0)] * f;
    }
  )";
  const char *Offset = R"(
    kernel void offset(global float* d, float b) {
      d[get_global_id(0)] = d[get_global_id(0)] + b;
    }
  )";
  const char *Square = R"(
    kernel void square(global float* d) {
      float v = d[get_global_id(0)];
      d[get_global_id(0)] = v * v;
    }
  )";

  constexpr int N = 2048;
  std::vector<float> Init(N, 3.0f);
  struct Bound {
    ocl::Program *P;
    ocl::Kernel K;
    ocl::Buffer B;
  };
  std::vector<Bound> Bounds;
  accelos::ProxyCL *Apps[] = {&A1, &A2, &A3};
  const char *Sources[] = {Scale, Offset, Square};
  const char *Names[] = {"scale", "offset", "square"};
  for (int I = 0; I < 3; ++I) {
    ocl::Program *P = cantFail(Apps[I]->createProgram(Sources[I]));
    ocl::Kernel K = cantFail(Apps[I]->createKernel(*P, Names[I]));
    ocl::Buffer B = cantFail(Apps[I]->createBuffer(N * 4));
    cantFail(B.write(Init.data(), N * 4));
    cantFail(Apps[I]->setKernelArg(K, 0, ocl::KernelArg::buffer(B)));
    if (I == 0)
      cantFail(Apps[I]->setKernelArg(K, 1, ocl::KernelArg::scalarF32(2.0f)));
    if (I == 1)
      cantFail(Apps[I]->setKernelArg(K, 1, ocl::KernelArg::scalarF32(7.0f)));
    Bounds.push_back({P, std::move(K), std::move(B)});
  }
  kir::NDRangeCfg Range;
  Range.GlobalSize[0] = N;
  Range.LocalSize[0] = 256;
  // The three tenants submit asynchronously; all three arrive at the
  // same instant, so continuous admission sizes them against each other
  // exactly as one scheduling round would.
  for (int I = 0; I < 3; ++I)
    cantFail(Apps[I]->submitNDRange(Bounds[I].K, Range));

  auto Execs = cantFail(AccelOS.drain());
  OS << "Concurrent admission of " << Execs.size() << " tenants:\n";
  for (const auto &E : Execs)
    OS << "  app " << E.AppId << " kernel '" << E.KernelName << "': "
       << E.PhysicalWGs << "/" << E.OriginalWGs
       << " work groups, batch " << E.Batch << ", queued "
       << static_cast<uint64_t>(E.queueDelay()) << " cycles\n";

  std::vector<float> Out(N);
  cantFail(Bounds[0].B.read(Out.data(), N * 4));
  OS << "tenant 1 result (3*2): " << Out[0] << "\n";
  cantFail(Bounds[1].B.read(Out.data(), N * 4));
  OS << "tenant 2 result (3+7): " << Out[0] << "\n";
  cantFail(Bounds[2].B.read(Out.data(), N * 4));
  OS << "tenant 3 result (3^2): " << Out[0] << "\n";

  // --- Timing view: fairness of the same idea at data-center scale. --------
  OS << "\nFairness on a 4-tenant Parboil-like mix (timing model):\n";
  harness::ExperimentDriver Driver(sim::DeviceSpec::nvidiaK20m());
  workloads::Workload W;
  for (const char *Id : {"bfs", "cutcp", "stencil", "tpacf"})
    for (size_t I = 0; I != Driver.numKernels(); ++I)
      if (Driver.kernel(I).Spec->Id == Id)
        W.push_back(I);
  auto Base = Driver.runWorkload(harness::SchedulerKind::Baseline, W);
  auto AOS =
      Driver.runWorkload(harness::SchedulerKind::AccelOSOptimized, W);
  OS << "  standard OpenCL: unfairness ";
  OS.printFixed(Base.Unfairness, 2);
  OS << ", overlap ";
  OS.printFixed(100 * Base.Overlap, 0);
  OS << "%\n  accelOS:         unfairness ";
  OS.printFixed(AOS.Unfairness, 2);
  OS << ", overlap ";
  OS.printFixed(100 * AOS.Overlap, 0);
  OS << "%\n";
  return 0;
}
