//===- examples/weighted_sharing.cpp - Non-equal sharing ratios --------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Sec. 2.2: "There may be occasions where it is deemed fairer to
/// give more resources to one application over another... This can
/// easily be achieved by changing the sharing ratio." Two tenants run
/// the same kernel; the premium tenant's weight is swept from 1x to 4x
/// and the example shows the work-group allocation and resulting
/// dequeue counts shifting proportionally.
///
/// This example deliberately runs the legacy round-synchronous
/// admission path (RuntimeOptions::Admission::RoundSync): requests park
/// in the round queue until flushRound() drains them round by round —
/// the compat mode kept for code written against the pre-continuous
/// API. The other examples show the default continuous/async path.
///
//===----------------------------------------------------------------------===//

#include "accelos/ProxyCL.h"
#include "harness/Table.h"
#include "support/RawOstream.h"
#include "support/StringUtil.h"

using namespace accel;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Weighted (non-equal) resource sharing ===\n\n";

  const char *Source = R"(
    kernel void busy(global float* d, int iters) {
      long gid = get_global_id(0);
      float acc = d[gid];
      for (int i = 0; i < iters; i++) {
        acc = acc * 1.0001f + 0.5f;
      }
      d[gid] = acc;
    }
  )";

  harness::TextTable T({"Weight premium:basic", "premium WGs",
                        "basic WGs", "ratio"});
  for (double Weight : {1.0, 2.0, 3.0, 4.0}) {
    auto Device = ocl::Platform::createNvidiaK20m();
    accelos::RuntimeOptions ROpts;
    ROpts.Mode = accelos::RuntimeOptions::Admission::RoundSync;
    accelos::Runtime AccelOS(*Device, accelos::SchedulingMode::Optimized,
                             ROpts);
    AccelOS.setAppWeight(/*AppId=*/1, Weight);

    accelos::ProxyCL Premium(AccelOS, 1), Basic(AccelOS, 2);
    constexpr int N = 64 * 512;

    struct Tenant {
      ocl::Program *P;
      ocl::Kernel K;
      ocl::Buffer B;
    };
    std::vector<Tenant> Tenants;
    for (accelos::ProxyCL *App : {&Premium, &Basic}) {
      ocl::Program *P = cantFail(App->createProgram(Source));
      ocl::Kernel K = cantFail(App->createKernel(*P, "busy"));
      ocl::Buffer B = cantFail(App->createBuffer(N * 4));
      cantFail(App->setKernelArg(K, 0, ocl::KernelArg::buffer(B)));
      cantFail(App->setKernelArg(K, 1, ocl::KernelArg::scalarI32(4)));
      Tenants.push_back({P, std::move(K), std::move(B)});
    }
    kir::NDRangeCfg Range;
    Range.GlobalSize[0] = N;
    Range.LocalSize[0] = 64;
    cantFail(Premium.enqueueNDRange(Tenants[0].K, Range));
    cantFail(Basic.enqueueNDRange(Tenants[1].K, Range));
    auto Execs = cantFail(AccelOS.flushRound());

    double Ratio = static_cast<double>(Execs[0].PhysicalWGs) /
                   static_cast<double>(Execs[1].PhysicalWGs);
    std::string Label = std::to_string(static_cast<int>(Weight)) + ":1";
    T.addRow({Label, std::to_string(Execs[0].PhysicalWGs),
              std::to_string(Execs[1].PhysicalWGs),
              formatDouble(Ratio, 2)});
  }
  T.print(OS);
  OS << "\nThe allocation tracks the configured ratio; equal sharing "
        "(1:1) is the paper's default policy.\n";
  return 0;
}
