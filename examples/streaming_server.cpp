//===- examples/streaming_server.cpp - Tenants arriving over time ------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-driven serving story: two tenants submit kernels *over
/// time* rather than in one batch. The functional view drives the real
/// runtime's continuous admission — each submitNDRange is an arrival
/// event admitted into the residual device capacity, completion
/// callbacks report retirements, and a 3:1 sharing weight skews the
/// work-group allocation. The timing view replays a seeded Poisson
/// arrival trace through the streaming harness twice — once
/// round-synchronous, once with arrival-aware continuous admission —
/// and shows both the premium tenant's latency percentiles pulling
/// ahead of the basic tenant's under the same weights and the queueing
/// delay the round boundary was costing every request.
///
//===----------------------------------------------------------------------===//

#include "accelos/ProxyCL.h"
#include "harness/Streaming.h"
#include "harness/Table.h"
#include "metrics/Metrics.h"
#include "support/RawOstream.h"
#include "support/StringUtil.h"
#include "workloads/Arrivals.h"

using namespace accel;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Streaming multi-tenant server (weighted sharing) ===\n\n";

  // --- Functional view: two tenants, two bursts, one weighted queue. -----
  auto Device = ocl::Platform::createNvidiaK20m();
  accelos::Runtime AccelOS(*Device);
  AccelOS.setAppWeight(/*AppId=*/1, 3.0); // premium tenant

  const char *Source = R"(
    kernel void axpy(global float* d, float a) {
      long gid = get_global_id(0);
      d[gid] = d[gid] * a + 1.0f;
    }
  )";

  accelos::ProxyCL Premium(AccelOS, 1), Basic(AccelOS, 2);
  struct Tenant {
    accelos::ProxyCL *App;
    ocl::Program *P;
    std::vector<ocl::Kernel> Ks;
    std::vector<ocl::Buffer> Bs;
  };
  std::vector<Tenant> Tenants;
  for (accelos::ProxyCL *App : {&Premium, &Basic}) {
    Tenant T;
    T.App = App;
    T.P = cantFail(App->createProgram(Source));
    Tenants.push_back(std::move(T));
  }

  constexpr int N = 64 * 256;
  kir::NDRangeCfg Range;
  Range.GlobalSize[0] = N;
  Range.LocalSize[0] = 64;

  // A completion callback plays the server's response path: every
  // retirement is reported as it happens, on the thread driving the
  // runtime pump.
  uint64_t Retired = 0;
  AccelOS.onCompletion([&](const accelos::ScheduledExecution &E) {
    ++Retired;
    OS << "  [t=" << static_cast<uint64_t>(E.EndTime) << "] app "
       << E.AppId << " retired request " << E.RequestId << "\n";
  });

  // Two submission bursts: each tenant submits one kernel per burst
  // asynchronously — every submit is an arrival event admitted into
  // the residual capacity, no round barrier — and the server drains
  // between bursts as tenants come back with more work.
  for (int Burst = 0; Burst != 2; ++Burst) {
    for (Tenant &T : Tenants) {
      ocl::Kernel K = cantFail(T.App->createKernel(*T.P, "axpy"));
      ocl::Buffer B = cantFail(T.App->createBuffer(N * 4));
      std::vector<float> Init(N, 1.0f);
      cantFail(B.write(Init.data(), N * 4));
      cantFail(T.App->setKernelArg(K, 0, ocl::KernelArg::buffer(B)));
      cantFail(
          T.App->setKernelArg(K, 1, ocl::KernelArg::scalarF32(2.0f)));
      T.Ks.push_back(std::move(K));
      T.Bs.push_back(std::move(B));
      cantFail(T.App->submitNDRange(T.Ks.back(), Range));
    }
    auto Execs = cantFail(AccelOS.drain());
    OS << "burst " << Burst << ": " << Execs.size()
       << " executions\n";
    for (const auto &E : Execs)
      OS << "  admitted t=" << static_cast<uint64_t>(E.AdmitTime)
         << ", finished t=" << static_cast<uint64_t>(E.EndTime)
         << ": app " << E.AppId << " got " << E.PhysicalWGs << "/"
         << E.OriginalWGs << " work groups (weight "
         << (E.AppId == 1 ? "3.0" : "1.0") << ")\n";
  }
  OS << "callbacks observed " << Retired << " retirements\n";
  std::vector<float> OutV(N);
  cantFail(Tenants[0].Bs[0].read(OutV.data(), N * 4));
  OS << "result check (1*2+1): " << OutV[0] << "\n\n";

  // --- Timing view: a Poisson stream replayed under the weights. ---------
  // The spec is the single source of the device identity: swap in a
  // custom fleet spec and the printed label follows it.
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  harness::ExperimentDriver Driver(Spec);
  OS << "Timing view: 32 requests, 2 tenants, premium weighted 3:1, on "
     << Driver.device().Name << "\n";
  double MeanDur = harness::meanIsolatedBaselineDuration(Driver);

  workloads::TraceOptions TOpts;
  TOpts.NumRequests = 32;
  TOpts.NumTenants = 2;
  TOpts.MeanInterarrival = MeanDur;
  TOpts.Seed = 7;
  auto Trace = workloads::poissonTrace(Driver.numKernels(), TOpts);

  harness::StreamOptions SOpts;
  SOpts.Weights = {{0, 3.0}, {1, 1.0}}; // tenant 0 is premium
  SOpts.RoundQuantum = 0.25 * MeanDur;
  harness::StreamOptions COpts = SOpts;
  COpts.Admission = harness::StreamOptions::AdmissionMode::Continuous;
  harness::StreamOutcome O = harness::runStream(
      Driver, harness::SchedulerKind::AccelOSOptimized, Trace, SOpts);
  harness::StreamOutcome C = harness::runStream(
      Driver, harness::SchedulerKind::AccelOSOptimized, Trace, COpts);

  harness::TextTable T({"Admission", "Tenant", "Weight", "Requests",
                        "p50 latency", "p95 latency"});
  const std::pair<const char *, const harness::StreamOutcome *> Runs[] =
      {{"round-sync", &O}, {"continuous", &C}};
  for (const auto &[Name, Outcome] : Runs)
    for (const auto &[Tenant, Lats] : Outcome->latenciesByTenant())
      T.addRow({Name, std::to_string(Tenant),
                Tenant == 0 ? "3.0" : "1.0",
                std::to_string(Lats.size()),
                formatDouble(metrics::latencyPercentile(Lats, 50), 0),
                formatDouble(metrics::latencyPercentile(Lats, 95), 0)});
  T.print(OS);
  OS << "\nround-sync: " << O.Rounds << " rounds, " << O.Deferrals
     << " deferrals; unfairness ";
  OS.printFixed(O.Unfairness, 2);
  OS << "; mean queueing delay ";
  OS.printFixed(metrics::mean(O.queueDelays()), 0);
  OS << "\ncontinuous: " << C.Rounds << " admission passes, "
     << C.Deferrals << " deferrals; unfairness ";
  OS.printFixed(C.Unfairness, 2);
  OS << "; mean queueing delay ";
  OS.printFixed(metrics::mean(C.queueDelays()), 0);
  OS << "\n";
  return 0;
}
