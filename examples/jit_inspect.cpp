//===- examples/jit_inspect.cpp - Inspecting the JIT transformation ----------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Fig. 8 as a live artifact: compiles the
/// running-example kernel ("mop"), prints the IR before the accelOS
/// transformation, applies the JIT pipeline, and prints the resulting
/// computation function and synthesized scheduling kernel with its
/// dequeue loop and hoisted state.
///
//===----------------------------------------------------------------------===//

#include "accelos/AdaptivePolicy.h"
#include "kir/Module.h"
#include "kir/Printer.h"
#include "minicl/Frontend.h"
#include "passes/AccelOSTransform.h"
#include "passes/DCE.h"
#include "passes/Inliner.h"
#include "passes/Pass.h"
#include "support/RawOstream.h"

using namespace accel;

int main() {
  raw_ostream &OS = outs();

  // The paper's Fig. 8a running example.
  const char *Source = R"(
    kernel void mop(global const float* ina, global const float* inb,
                    global float* out) {
      long gid = get_global_id(0);
      long grid = get_group_id(0);
      if (grid < 4) {
        out[gid] = ina[gid] + inb[gid];
      } else {
        out[gid] = ina[gid] - inb[gid];
      }
    }
  )";

  auto M = cantFail(minicl::compileSource("fig8", Source));
  OS << "=== Original kernel (paper Fig. 8a) ===\n\n";
  OS << kir::printFunction(*M->getFunction("mop"));

  passes::PassManager PM;
  PM.addPass(std::make_unique<passes::InlinerPass>());
  PM.addPass(std::make_unique<passes::DCEPass>());
  auto Transform = std::make_unique<passes::AccelOSTransform>();
  auto *TPtr = Transform.get();
  PM.addPass(std::move(Transform));
  cantFail(PM.run(*M));

  OS << "\n=== Computation function after the transform (Fig. 8b top) "
        "===\n\n";
  OS << kir::printFunction(*M->getFunction("mop__comp"));

  OS << "\n=== Synthesized scheduling kernel (Fig. 8b bottom) ===\n\n";
  OS << kir::printFunction(*M->getFunction("mop"));

  const auto &Info = TPtr->info().at("mop");
  OS << "\nTransform metadata: compute fn '" << Info.ComputeFnName
     << "', " << Info.ComputeInstCount
     << " IR instructions (adaptive dequeue batch "
     << accelos::adaptiveBatchSize(Info.ComputeInstCount) << "), "
     << Info.HoistedLocals << " hoisted local array(s)\n";
  return 0;
}
