//===- metrics/Metrics.h - Fairness and throughput metrics ------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation metrics of paper Sec. 7.4: individual slowdown (IS),
/// system unfairness (U), fairness improvement, kernel execution overlap
/// (O), throughput speedup, STP, ANTT and worst-case ANTT.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_METRICS_METRICS_H
#define ACCEL_METRICS_METRICS_H

#include <cstddef>
#include <vector>

namespace accel {
namespace metrics {

/// A [start, end) execution interval.
struct Interval {
  double Start = 0;
  double End = 0;

  double length() const { return End - Start; }
};

/// IS_i = T(shared)_i / T(alone)_i. Both must be positive.
double individualSlowdown(double SharedDuration, double AloneDuration);

/// U = max(IS) / min(IS) (paper adopts [9]). One kernel gives U = 1.
double systemUnfairness(const std::vector<double> &Slowdowns);

/// Fairness improvement of a scheme over the baseline: U_base / U_x.
double fairnessImprovement(double BaselineUnfairness, double Unfairness);

/// O = T(c) / T(t): the time all kernels co-execute over the time any
/// executes (paper Sec. 7.4). \returns 0 for an empty set.
double executionOverlap(const std::vector<Interval> &Intervals);

/// Throughput speedup: T_baseline / T_x over whole-workload makespans.
double throughputSpeedup(double BaselineMakespan, double Makespan);

/// STP = sum_i 1/IS_i (normalized progress, Eyerman & Eeckhout).
double systemThroughput(const std::vector<double> &Slowdowns);

/// ANTT = mean of the normalized turnaround times (== slowdowns).
double averageNormalizedTurnaround(const std::vector<double> &Slowdowns);

/// Worst-case normalized turnaround time.
double worstNormalizedTurnaround(const std::vector<double> &Slowdowns);

/// The \p Pct-th percentile (0..100) of \p Values, by linear
/// interpolation between the closest ranks. \p Values need not be
/// sorted and must be non-empty. Used for per-tenant latency p50/p95/
/// p99 in the streaming evaluation.
double latencyPercentile(std::vector<double> Values, double Pct);

/// latencyPercentile over a \p SortedValues vector that is already
/// sorted ascending (and non-empty): O(1) per query. Callers reading
/// several percentiles of a large sample set — serve_scale
/// post-processes 10^5+ latencies — sort once and query through this
/// instead of paying latencyPercentile's copy + sort per percentile.
double sortedPercentile(const std::vector<double> &SortedValues,
                        double Pct);

/// Arithmetic mean of \p Values (0 for an empty set) — the companion
/// aggregate to latencyPercentile for latency/queue-delay reporting.
double mean(const std::vector<double> &Values);

/// A measurement stamped with the time it was observed (e.g. a
/// request's slowdown stamped with its completion time).
struct TimedSample {
  double Time = 0;
  double Value = 0;
};

/// Unfairness over time: tiles [0, max sample time] into windows of
/// \p WindowLength and returns max/min of the values observed in each
/// window. Windows holding fewer than two samples report 1 (a lone
/// request cannot be treated unfairly relative to the window). Returns
/// an empty vector for an empty sample set; \p WindowLength must be
/// positive.
std::vector<double> windowedUnfairness(
    const std::vector<TimedSample> &Samples, double WindowLength);

/// The worst window of windowedUnfairness() (1 when there are no
/// windows) — transient unfairness that whole-trace averages hide.
double peakWindowedUnfairness(const std::vector<TimedSample> &Samples,
                              double WindowLength);

/// Streaming form of windowedUnfairness/peakWindowedUnfairness: feed
/// samples one at a time (any order) in amortized O(1) each, then read
/// the per-window ratios or the peak without ever materializing the
/// sample history. A serving bench that accumulates completions as
/// they happen post-processes n requests in O(n + windows) instead of
/// buffering all n TimedSamples and rescanning them; both free
/// functions above are thin wrappers over this class, so the values
/// are identical by construction.
class WindowedUnfairnessAccumulator {
public:
  explicit WindowedUnfairnessAccumulator(double WindowLength);

  /// Records one sample; windows grow on demand to cover \p Time.
  void add(double Time, double Value);
  void add(const TimedSample &S) { add(S.Time, S.Value); }

  /// Per-window unfairness so far — windowedUnfairness of the samples
  /// fed in (empty when none were).
  std::vector<double> windows() const;

  /// The worst window so far (1 when empty) — peakWindowedUnfairness
  /// of the samples fed in.
  double peak() const;

private:
  double WindowLength;
  std::vector<double> Min, Max; ///< Per-window extrema.
  std::vector<size_t> Count;    ///< Per-window sample counts.
};

/// SLO attainment: the fraction of \p Values at or below \p Target
/// (e.g. per-request queueing delays against a tenant's latency
/// target). An empty set attains trivially (1). \p Target must be
/// positive.
double sloAttainment(const std::vector<double> &Values, double Target);

/// Goodput: requests that attained their SLO per unit time —
/// |{v in Values : v <= Target}| / \p Makespan. The serving-system
/// companion to raw throughput: work that missed its deadline does not
/// count. \p Makespan must be positive.
double goodput(const std::vector<double> &Values, double Target,
               double Makespan);

} // namespace metrics
} // namespace accel

#endif // ACCEL_METRICS_METRICS_H
