//===- metrics/Metrics.h - Fairness and throughput metrics ------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation metrics of paper Sec. 7.4: individual slowdown (IS),
/// system unfairness (U), fairness improvement, kernel execution overlap
/// (O), throughput speedup, STP, ANTT and worst-case ANTT.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_METRICS_METRICS_H
#define ACCEL_METRICS_METRICS_H

#include <cstddef>
#include <vector>

namespace accel {
namespace metrics {

/// A [start, end) execution interval.
struct Interval {
  double Start = 0;
  double End = 0;

  double length() const { return End - Start; }
};

/// IS_i = T(shared)_i / T(alone)_i. Both must be positive.
double individualSlowdown(double SharedDuration, double AloneDuration);

/// U = max(IS) / min(IS) (paper adopts [9]). One kernel gives U = 1.
double systemUnfairness(const std::vector<double> &Slowdowns);

/// Fairness improvement of a scheme over the baseline: U_base / U_x.
double fairnessImprovement(double BaselineUnfairness, double Unfairness);

/// O = T(c) / T(t): the time all kernels co-execute over the time any
/// executes (paper Sec. 7.4). \returns 0 for an empty set.
double executionOverlap(const std::vector<Interval> &Intervals);

/// Throughput speedup: T_baseline / T_x over whole-workload makespans.
double throughputSpeedup(double BaselineMakespan, double Makespan);

/// STP = sum_i 1/IS_i (normalized progress, Eyerman & Eeckhout).
double systemThroughput(const std::vector<double> &Slowdowns);

/// ANTT = mean of the normalized turnaround times (== slowdowns).
double averageNormalizedTurnaround(const std::vector<double> &Slowdowns);

/// Worst-case normalized turnaround time.
double worstNormalizedTurnaround(const std::vector<double> &Slowdowns);

} // namespace metrics
} // namespace accel

#endif // ACCEL_METRICS_METRICS_H
