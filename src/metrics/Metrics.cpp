//===- metrics/Metrics.cpp - Fairness and throughput metrics ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::metrics;

double metrics::individualSlowdown(double SharedDuration,
                                   double AloneDuration) {
  assert(SharedDuration > 0 && AloneDuration > 0 &&
         "durations must be positive");
  return SharedDuration / AloneDuration;
}

double metrics::systemUnfairness(const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "unfairness of an empty set");
  double Max = Slowdowns[0], Min = Slowdowns[0];
  for (double S : Slowdowns) {
    Max = std::max(Max, S);
    Min = std::min(Min, S);
  }
  assert(Min > 0 && "non-positive slowdown");
  return Max / Min;
}

double metrics::fairnessImprovement(double BaselineUnfairness,
                                    double Unfairness) {
  assert(Unfairness > 0 && "non-positive unfairness");
  return BaselineUnfairness / Unfairness;
}

double metrics::executionOverlap(const std::vector<Interval> &Intervals) {
  if (Intervals.empty())
    return 0.0;

  // T(c): all kernels co-executing.
  double MaxStart = Intervals[0].Start, MinEnd = Intervals[0].End;
  for (const Interval &I : Intervals) {
    MaxStart = std::max(MaxStart, I.Start);
    MinEnd = std::min(MinEnd, I.End);
  }
  double Tc = std::max(0.0, MinEnd - MaxStart);

  // T(t): at least one kernel executing (interval union).
  std::vector<Interval> Sorted = Intervals;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Interval &A, const Interval &B) {
              return A.Start < B.Start;
            });
  double Tt = 0;
  double CurStart = Sorted[0].Start, CurEnd = Sorted[0].End;
  for (const Interval &I : Sorted) {
    if (I.Start > CurEnd) {
      Tt += CurEnd - CurStart;
      CurStart = I.Start;
      CurEnd = I.End;
    } else {
      CurEnd = std::max(CurEnd, I.End);
    }
  }
  Tt += CurEnd - CurStart;
  if (Tt <= 0)
    return 0.0;
  return Tc / Tt;
}

double metrics::throughputSpeedup(double BaselineMakespan, double Makespan) {
  assert(Makespan > 0 && "non-positive makespan");
  return BaselineMakespan / Makespan;
}

double metrics::systemThroughput(const std::vector<double> &Slowdowns) {
  double Sum = 0;
  for (double S : Slowdowns) {
    assert(S > 0 && "non-positive slowdown");
    Sum += 1.0 / S;
  }
  return Sum;
}

double metrics::averageNormalizedTurnaround(
    const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "ANTT of an empty set");
  double Sum = 0;
  for (double S : Slowdowns)
    Sum += S;
  return Sum / static_cast<double>(Slowdowns.size());
}

double metrics::worstNormalizedTurnaround(
    const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "worst ANTT of an empty set");
  return *std::max_element(Slowdowns.begin(), Slowdowns.end());
}

double metrics::latencyPercentile(std::vector<double> Values, double Pct) {
  assert(!Values.empty() && "percentile of an empty set");
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  double Rank = Pct / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] + Frac * (Values[Hi] - Values[Lo]);
}

double metrics::mean(const std::vector<double> &Values) {
  return meanOf(Values);
}

double metrics::sloAttainment(const std::vector<double> &Values,
                              double Target) {
  assert(Target > 0 && "non-positive SLO target");
  if (Values.empty())
    return 1.0;
  size_t Attained = 0;
  for (double V : Values)
    if (V <= Target)
      ++Attained;
  return static_cast<double>(Attained) /
         static_cast<double>(Values.size());
}

double metrics::goodput(const std::vector<double> &Values, double Target,
                        double Makespan) {
  assert(Makespan > 0 && "non-positive makespan");
  return sloAttainment(Values, Target) *
         static_cast<double>(Values.size()) / Makespan;
}

std::vector<double>
metrics::windowedUnfairness(const std::vector<TimedSample> &Samples,
                            double WindowLength) {
  assert(WindowLength > 0 && "non-positive window length");
  std::vector<double> Out;
  if (Samples.empty())
    return Out;

  double MaxTime = 0;
  for (const TimedSample &S : Samples)
    MaxTime = std::max(MaxTime, S.Time);
  size_t NumWindows =
      static_cast<size_t>(MaxTime / WindowLength) + 1;

  // Per-window extrema; count tracks whether the window has enough
  // samples for a meaningful ratio.
  std::vector<double> Min(NumWindows, 0), Max(NumWindows, 0);
  std::vector<size_t> Count(NumWindows, 0);
  for (const TimedSample &S : Samples) {
    size_t W = std::min(static_cast<size_t>(S.Time / WindowLength),
                        NumWindows - 1);
    assert(S.Value > 0 && "non-positive sample value");
    if (Count[W] == 0) {
      Min[W] = Max[W] = S.Value;
    } else {
      Min[W] = std::min(Min[W], S.Value);
      Max[W] = std::max(Max[W], S.Value);
    }
    ++Count[W];
  }

  Out.reserve(NumWindows);
  for (size_t W = 0; W != NumWindows; ++W)
    Out.push_back(Count[W] < 2 ? 1.0 : Max[W] / Min[W]);
  return Out;
}

double
metrics::peakWindowedUnfairness(const std::vector<TimedSample> &Samples,
                                double WindowLength) {
  std::vector<double> Windows = windowedUnfairness(Samples, WindowLength);
  double Peak = 1.0;
  for (double U : Windows)
    Peak = std::max(Peak, U);
  return Peak;
}
