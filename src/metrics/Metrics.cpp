//===- metrics/Metrics.cpp - Fairness and throughput metrics ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::metrics;

double metrics::individualSlowdown(double SharedDuration,
                                   double AloneDuration) {
  assert(SharedDuration > 0 && AloneDuration > 0 &&
         "durations must be positive");
  return SharedDuration / AloneDuration;
}

double metrics::systemUnfairness(const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "unfairness of an empty set");
  double Max = Slowdowns[0], Min = Slowdowns[0];
  for (double S : Slowdowns) {
    Max = std::max(Max, S);
    Min = std::min(Min, S);
  }
  assert(Min > 0 && "non-positive slowdown");
  return Max / Min;
}

double metrics::fairnessImprovement(double BaselineUnfairness,
                                    double Unfairness) {
  assert(Unfairness > 0 && "non-positive unfairness");
  return BaselineUnfairness / Unfairness;
}

double metrics::executionOverlap(const std::vector<Interval> &Intervals) {
  if (Intervals.empty())
    return 0.0;

  // T(c): all kernels co-executing.
  double MaxStart = Intervals[0].Start, MinEnd = Intervals[0].End;
  for (const Interval &I : Intervals) {
    MaxStart = std::max(MaxStart, I.Start);
    MinEnd = std::min(MinEnd, I.End);
  }
  double Tc = std::max(0.0, MinEnd - MaxStart);

  // T(t): at least one kernel executing (interval union).
  std::vector<Interval> Sorted = Intervals;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Interval &A, const Interval &B) {
              return A.Start < B.Start;
            });
  double Tt = 0;
  double CurStart = Sorted[0].Start, CurEnd = Sorted[0].End;
  for (const Interval &I : Sorted) {
    if (I.Start > CurEnd) {
      Tt += CurEnd - CurStart;
      CurStart = I.Start;
      CurEnd = I.End;
    } else {
      CurEnd = std::max(CurEnd, I.End);
    }
  }
  Tt += CurEnd - CurStart;
  if (Tt <= 0)
    return 0.0;
  return Tc / Tt;
}

double metrics::throughputSpeedup(double BaselineMakespan, double Makespan) {
  assert(Makespan > 0 && "non-positive makespan");
  return BaselineMakespan / Makespan;
}

double metrics::systemThroughput(const std::vector<double> &Slowdowns) {
  double Sum = 0;
  for (double S : Slowdowns) {
    assert(S > 0 && "non-positive slowdown");
    Sum += 1.0 / S;
  }
  return Sum;
}

double metrics::averageNormalizedTurnaround(
    const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "ANTT of an empty set");
  double Sum = 0;
  for (double S : Slowdowns)
    Sum += S;
  return Sum / static_cast<double>(Slowdowns.size());
}

double metrics::worstNormalizedTurnaround(
    const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "worst ANTT of an empty set");
  return *std::max_element(Slowdowns.begin(), Slowdowns.end());
}

double metrics::latencyPercentile(std::vector<double> Values, double Pct) {
  assert(!Values.empty() && "percentile of an empty set");
  std::sort(Values.begin(), Values.end());
  return sortedPercentile(Values, Pct);
}

double metrics::sortedPercentile(const std::vector<double> &SortedValues,
                                 double Pct) {
  assert(!SortedValues.empty() && "percentile of an empty set");
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  assert(std::is_sorted(SortedValues.begin(), SortedValues.end()) &&
         "sortedPercentile input is not sorted");
  double Rank =
      Pct / 100.0 * static_cast<double>(SortedValues.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, SortedValues.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return SortedValues[Lo] + Frac * (SortedValues[Hi] - SortedValues[Lo]);
}

double metrics::mean(const std::vector<double> &Values) {
  return meanOf(Values);
}

double metrics::sloAttainment(const std::vector<double> &Values,
                              double Target) {
  assert(Target > 0 && "non-positive SLO target");
  if (Values.empty())
    return 1.0;
  size_t Attained = 0;
  for (double V : Values)
    if (V <= Target)
      ++Attained;
  return static_cast<double>(Attained) /
         static_cast<double>(Values.size());
}

double metrics::goodput(const std::vector<double> &Values, double Target,
                        double Makespan) {
  assert(Makespan > 0 && "non-positive makespan");
  return sloAttainment(Values, Target) *
         static_cast<double>(Values.size()) / Makespan;
}

metrics::WindowedUnfairnessAccumulator::WindowedUnfairnessAccumulator(
    double WindowLength)
    : WindowLength(WindowLength) {
  assert(WindowLength > 0 && "non-positive window length");
}

void metrics::WindowedUnfairnessAccumulator::add(double Time,
                                                 double Value) {
  assert(Value > 0 && "non-positive sample value");
  size_t W = static_cast<size_t>(Time / WindowLength);
  if (W >= Count.size()) {
    Min.resize(W + 1, 0);
    Max.resize(W + 1, 0);
    Count.resize(W + 1, 0);
  }
  if (Count[W] == 0) {
    Min[W] = Max[W] = Value;
  } else {
    Min[W] = std::min(Min[W], Value);
    Max[W] = std::max(Max[W], Value);
  }
  ++Count[W];
}

std::vector<double>
metrics::WindowedUnfairnessAccumulator::windows() const {
  // Windows holding fewer than two samples report 1: a lone request
  // cannot be treated unfairly relative to its window.
  std::vector<double> Out;
  Out.reserve(Count.size());
  for (size_t W = 0; W != Count.size(); ++W)
    Out.push_back(Count[W] < 2 ? 1.0 : Max[W] / Min[W]);
  return Out;
}

double metrics::WindowedUnfairnessAccumulator::peak() const {
  double Peak = 1.0;
  for (size_t W = 0; W != Count.size(); ++W)
    if (Count[W] >= 2)
      Peak = std::max(Peak, Max[W] / Min[W]);
  return Peak;
}

std::vector<double>
metrics::windowedUnfairness(const std::vector<TimedSample> &Samples,
                            double WindowLength) {
  WindowedUnfairnessAccumulator Acc(WindowLength);
  for (const TimedSample &S : Samples)
    Acc.add(S);
  return Acc.windows();
}

double
metrics::peakWindowedUnfairness(const std::vector<TimedSample> &Samples,
                                double WindowLength) {
  WindowedUnfairnessAccumulator Acc(WindowLength);
  for (const TimedSample &S : Samples)
    Acc.add(S);
  return Acc.peak();
}
