//===- metrics/Metrics.cpp - Fairness and throughput metrics ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::metrics;

double metrics::individualSlowdown(double SharedDuration,
                                   double AloneDuration) {
  assert(SharedDuration > 0 && AloneDuration > 0 &&
         "durations must be positive");
  return SharedDuration / AloneDuration;
}

double metrics::systemUnfairness(const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "unfairness of an empty set");
  double Max = Slowdowns[0], Min = Slowdowns[0];
  for (double S : Slowdowns) {
    Max = std::max(Max, S);
    Min = std::min(Min, S);
  }
  assert(Min > 0 && "non-positive slowdown");
  return Max / Min;
}

double metrics::fairnessImprovement(double BaselineUnfairness,
                                    double Unfairness) {
  assert(Unfairness > 0 && "non-positive unfairness");
  return BaselineUnfairness / Unfairness;
}

double metrics::executionOverlap(const std::vector<Interval> &Intervals) {
  if (Intervals.empty())
    return 0.0;

  // T(c): all kernels co-executing.
  double MaxStart = Intervals[0].Start, MinEnd = Intervals[0].End;
  for (const Interval &I : Intervals) {
    MaxStart = std::max(MaxStart, I.Start);
    MinEnd = std::min(MinEnd, I.End);
  }
  double Tc = std::max(0.0, MinEnd - MaxStart);

  // T(t): at least one kernel executing (interval union).
  std::vector<Interval> Sorted = Intervals;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Interval &A, const Interval &B) {
              return A.Start < B.Start;
            });
  double Tt = 0;
  double CurStart = Sorted[0].Start, CurEnd = Sorted[0].End;
  for (const Interval &I : Sorted) {
    if (I.Start > CurEnd) {
      Tt += CurEnd - CurStart;
      CurStart = I.Start;
      CurEnd = I.End;
    } else {
      CurEnd = std::max(CurEnd, I.End);
    }
  }
  Tt += CurEnd - CurStart;
  if (Tt <= 0)
    return 0.0;
  return Tc / Tt;
}

double metrics::throughputSpeedup(double BaselineMakespan, double Makespan) {
  assert(Makespan > 0 && "non-positive makespan");
  return BaselineMakespan / Makespan;
}

double metrics::systemThroughput(const std::vector<double> &Slowdowns) {
  double Sum = 0;
  for (double S : Slowdowns) {
    assert(S > 0 && "non-positive slowdown");
    Sum += 1.0 / S;
  }
  return Sum;
}

double metrics::averageNormalizedTurnaround(
    const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "ANTT of an empty set");
  double Sum = 0;
  for (double S : Slowdowns)
    Sum += S;
  return Sum / static_cast<double>(Slowdowns.size());
}

double metrics::worstNormalizedTurnaround(
    const std::vector<double> &Slowdowns) {
  assert(!Slowdowns.empty() && "worst ANTT of an empty set");
  return *std::max_element(Slowdowns.begin(), Slowdowns.end());
}
