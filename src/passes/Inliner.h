//===- passes/Inliner.h - Function inlining ---------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive inlining of non-kernel functions, mirroring the "function
/// inlining performed by default in GPU compilers" the paper relies on
/// (Sec. 6.5) to reduce the transform's register overhead from 3 to 0-1
/// registers per work item.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_INLINER_H
#define ACCEL_PASSES_INLINER_H

#include "passes/Pass.h"

namespace accel {
namespace passes {

/// Inlines every call in every function. Requires an acyclic call graph
/// (the MiniCL front end rejects recursion). After the pass no CallInst
/// remains in the module.
class InlinerPass : public ModulePass {
public:
  const char *name() const override { return "inline"; }
  Error run(kir::Module &M) override;
};

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_INLINER_H
