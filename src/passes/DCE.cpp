//===- passes/DCE.cpp - Dead code elimination --------------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/DCE.h"

#include "kir/Module.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace accel;
using namespace accel::kir;
using namespace accel::passes;

/// \returns true when \p I must be preserved regardless of uses.
static bool hasSideEffects(const Instruction &I) {
  switch (I.instKind()) {
  case InstKind::Store:
  case InstKind::Br:
  case InstKind::Ret:
    return true;
  case InstKind::Call:
    // Conservative: calls may write memory.
    return true;
  case InstKind::Builtin: {
    switch (cast<BuiltinInst>(I).builtinKind()) {
    case BuiltinKind::Barrier:
    case BuiltinKind::AtomicAdd:
    case BuiltinKind::AtomicSub:
    case BuiltinKind::AtomicMin:
    case BuiltinKind::AtomicMax:
    case BuiltinKind::AtomicXchg:
    case BuiltinKind::RtEnvInit:
    case BuiltinKind::RtSchedWGroup:
      return true;
    default:
      return false;
    }
  }
  default:
    return false;
  }
}

/// \returns the allocas whose every use is as the pointer operand of a
/// store: nothing can ever observe those stores, so both the stores and
/// the alloca are dead. (MiniCL codegen spills every local variable to
/// an alloca, so this is what actually removes dead locals.)
static std::set<const Value *> findWriteOnlyAllocas(const Function &F) {
  std::set<const Value *> Candidates;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (isa<AllocaInst>(I.get()))
        Candidates.insert(I.get());

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      for (unsigned Op = 0; Op != I->numOperands(); ++Op) {
        const Value *V = I->operand(Op);
        if (!Candidates.count(V))
          continue;
        // A store *to* the alloca keeps it a candidate; anything else
        // (a load, a gep, being stored *as a value*, a call) does not.
        if (isa<StoreInst>(I.get()) && Op == 0)
          continue;
        Candidates.erase(V);
      }
    }
  }
  return Candidates;
}

/// Removes dead instructions from one function. \returns true if any
/// instruction was deleted.
static bool runOnFunction(Function &F) {
  std::set<const Value *> DeadAllocas = findWriteOnlyAllocas(F);

  // Seed the live set with side-effecting instructions, then propagate
  // through operands to a fixed point.
  std::set<const Value *> Live;
  std::vector<const Instruction *> Worklist;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      if (const auto *S = dyn_cast<StoreInst>(I.get()))
        if (DeadAllocas.count(S->pointer()))
          continue;
      if (hasSideEffects(*I)) {
        Live.insert(I.get());
        Worklist.push_back(I.get());
      }
    }
  }
  while (!Worklist.empty()) {
    const Instruction *I = Worklist.back();
    Worklist.pop_back();
    for (const Value *Op : I->operands()) {
      if (!Live.insert(Op).second)
        continue;
      if (const auto *OpInst = dyn_cast<Instruction>(Op))
        Worklist.push_back(OpInst);
    }
  }

  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    auto Insts = BB->takeInstructions();
    std::vector<std::unique_ptr<Instruction>> Kept;
    Kept.reserve(Insts.size());
    for (auto &I : Insts) {
      if (Live.count(I.get()))
        Kept.push_back(std::move(I));
      else
        Changed = true;
    }
    BB->setInstructions(std::move(Kept));
  }
  return Changed;
}

Error DCEPass::run(Module &M) {
  for (const auto &F : M.functions())
    runOnFunction(*F);
  return Error::success();
}
