//===- passes/RegisterEstimator.h - Register usage analysis -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Estimates per-work-item register usage of a function. The accelOS
/// resource-sharing solver (paper Sec. 3) needs the r_i term of the
/// register constraint sum_i(z_i * r_i) <= R; real drivers report this
/// after codegen, here it is derived from a liveness approximation over
/// the KIR.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_REGISTERESTIMATOR_H
#define ACCEL_PASSES_REGISTERESTIMATOR_H

namespace accel {

namespace kir {
class Function;
}

namespace passes {

/// \returns an estimate of 32-bit registers needed per work item:
/// cross-block live values plus the peak number of simultaneously live
/// in-block temporaries, plus a fixed ABI reserve.
unsigned estimateRegisters(const kir::Function &F);

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_REGISTERESTIMATOR_H
