//===- passes/Pass.h - Pass interfaces and manager ---------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal pass framework: module passes run in sequence under a
/// PassManager which (optionally) re-verifies the module after each pass,
/// mirroring how the paper's JIT instantiates an LLVM PassManager and
/// loads its transformation passes (Sec. 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_PASS_H
#define ACCEL_PASSES_PASS_H

#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace accel {

namespace kir {
class Module;
}

namespace passes {

/// A transformation or analysis over a whole module.
class ModulePass {
public:
  virtual ~ModulePass();

  /// \returns a short identifier used in diagnostics.
  virtual const char *name() const = 0;

  /// Runs the pass; returns a failure to abort the pipeline.
  virtual Error run(kir::Module &M) = 0;
};

/// Runs a pipeline of module passes.
class PassManager {
public:
  /// When \p VerifyEach is true the module is re-verified after every
  /// pass and the pipeline aborts on the first broken invariant.
  explicit PassManager(bool VerifyEach = true) : VerifyEach(VerifyEach) {}

  void addPass(std::unique_ptr<ModulePass> Pass) {
    Passes.push_back(std::move(Pass));
  }

  /// Runs all passes in order.
  Error run(kir::Module &M);

  size_t size() const { return Passes.size(); }

private:
  bool VerifyEach;
  std::vector<std::unique_ptr<ModulePass>> Passes;
};

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_PASS_H
