//===- passes/ConstantFold.cpp - Constant folding ----------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/ConstantFold.h"

#include "kir/Module.h"
#include "passes/CloneUtil.h"
#include "support/Casting.h"

#include <cmath>

using namespace accel;
using namespace accel::kir;
using namespace accel::passes;

namespace {

int64_t asInt(const Constant *C) { return C->intValue(); }
float asFloat(const Constant *C) { return C->floatValue(); }

/// Folds one instruction if possible. \returns the replacement constant
/// or null.
Constant *foldInst(Function &F, const Instruction &I) {
  // All operands must be constants.
  std::vector<const Constant *> Ops;
  for (const Value *Op : I.operands()) {
    const auto *C = dyn_cast<Constant>(Op);
    if (!C)
      return nullptr;
    Ops.push_back(C);
  }

  switch (I.instKind()) {
  case InstKind::Binary: {
    const auto &B = cast<BinaryInst>(I);
    if (isFloatBinOp(B.op())) {
      float L = asFloat(Ops[0]), R = asFloat(Ops[1]), Out;
      switch (B.op()) {
      case BinOpKind::FAdd:
        Out = L + R;
        break;
      case BinOpKind::FSub:
        Out = L - R;
        break;
      case BinOpKind::FMul:
        Out = L * R;
        break;
      case BinOpKind::FDiv:
        Out = L / R;
        break;
      default:
        return nullptr;
      }
      return F.getFloatConstant(Out);
    }
    bool Is32 = I.type().kind() == Type::Kind::I32;
    int64_t L = asInt(Ops[0]), R = asInt(Ops[1]), Out;
    uint64_t UL = static_cast<uint64_t>(L), UR = static_cast<uint64_t>(R);
    switch (B.op()) {
    case BinOpKind::Add:
      Out = static_cast<int64_t>(UL + UR);
      break;
    case BinOpKind::Sub:
      Out = static_cast<int64_t>(UL - UR);
      break;
    case BinOpKind::Mul:
      Out = static_cast<int64_t>(UL * UR);
      break;
    case BinOpKind::SDiv:
    case BinOpKind::SRem:
      // Preserve the runtime trap.
      if (R == 0)
        return nullptr;
      if (R == -1)
        Out = B.op() == BinOpKind::SDiv ? static_cast<int64_t>(0 - UL) : 0;
      else
        Out = B.op() == BinOpKind::SDiv ? L / R : L % R;
      break;
    case BinOpKind::And:
      Out = L & R;
      break;
    case BinOpKind::Or:
      Out = L | R;
      break;
    case BinOpKind::Xor:
      Out = L ^ R;
      break;
    case BinOpKind::Shl:
      Out = static_cast<int64_t>(UL << (UR & (Is32 ? 31 : 63)));
      break;
    case BinOpKind::AShr:
      Out = L >> (UR & (Is32 ? 31 : 63));
      break;
    case BinOpKind::LShr:
      Out = static_cast<int64_t>((Is32 ? (UL & 0xFFFFFFFFULL) : UL) >>
                                 (UR & (Is32 ? 31 : 63)));
      break;
    default:
      return nullptr;
    }
    if (Is32)
      Out = static_cast<int32_t>(Out);
    return F.getIntConstant(I.type(), Out);
  }
  case InstKind::Cmp: {
    const auto &C = cast<CmpInst>(I);
    bool Out;
    if (isFloatCmpPred(C.pred())) {
      float L = asFloat(Ops[0]), R = asFloat(Ops[1]);
      switch (C.pred()) {
      case CmpPred::FOEQ:
        Out = L == R;
        break;
      case CmpPred::FONE:
        Out = L != R;
        break;
      case CmpPred::FOLT:
        Out = L < R;
        break;
      case CmpPred::FOLE:
        Out = L <= R;
        break;
      case CmpPred::FOGT:
        Out = L > R;
        break;
      case CmpPred::FOGE:
        Out = L >= R;
        break;
      default:
        return nullptr;
      }
    } else {
      bool Is32 = C.lhs()->type().kind() == Type::Kind::I32;
      int64_t L = asInt(Ops[0]), R = asInt(Ops[1]);
      uint64_t UL = Is32 ? (static_cast<uint64_t>(L) & 0xFFFFFFFFULL)
                         : static_cast<uint64_t>(L);
      uint64_t UR = Is32 ? (static_cast<uint64_t>(R) & 0xFFFFFFFFULL)
                         : static_cast<uint64_t>(R);
      switch (C.pred()) {
      case CmpPred::EQ:
        Out = L == R;
        break;
      case CmpPred::NE:
        Out = L != R;
        break;
      case CmpPred::SLT:
        Out = L < R;
        break;
      case CmpPred::SLE:
        Out = L <= R;
        break;
      case CmpPred::SGT:
        Out = L > R;
        break;
      case CmpPred::SGE:
        Out = L >= R;
        break;
      case CmpPred::ULT:
        Out = UL < UR;
        break;
      case CmpPred::UGE:
        Out = UL >= UR;
        break;
      default:
        return nullptr;
      }
    }
    return F.getBoolConstant(Out);
  }
  case InstKind::Select: {
    const Constant *Arm = Ops[0]->bits() ? Ops[1] : Ops[2];
    if (I.type().isFloat())
      return F.getFloatConstant(Arm->floatValue());
    return F.getIntConstant(I.type(), Arm->intValue());
  }
  case InstKind::Cast: {
    const auto &C = cast<CastInst>(I);
    switch (C.castKind()) {
    case CastKind::SExt:
      return F.getIntConstant(Type::i64(), Ops[0]->intValue());
    case CastKind::Trunc:
      return F.getIntConstant(
          Type::i32(), static_cast<int32_t>(Ops[0]->intValue()));
    case CastKind::SIToFP:
      return F.getFloatConstant(
          static_cast<float>(Ops[0]->intValue()));
    case CastKind::FPToSI: {
      float V = asFloat(Ops[0]);
      if (std::isnan(V))
        return F.getIntConstant(I.type(), 0);
      int64_t Out = static_cast<int64_t>(V);
      if (I.type().kind() == Type::Kind::I32)
        Out = static_cast<int32_t>(Out);
      return F.getIntConstant(I.type(), Out);
    }
    case CastKind::ZExtBool:
      return F.getIntConstant(I.type(), Ops[0]->bits() & 1);
    }
    return nullptr;
  }
  default:
    return nullptr;
  }
}

bool runOnFunction(Function &F) {
  bool EverChanged = false;
  for (int Iter = 0; Iter < 10; ++Iter) {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        if (I->type().isVoid())
          continue;
        if (Constant *C = foldInst(F, *I)) {
          replaceAllUses(F, I.get(), C);
          Changed = true;
        }
      }
    }
    EverChanged |= Changed;
    if (!Changed)
      break;
  }
  return EverChanged;
}

} // namespace

Error ConstantFoldPass::run(Module &M) {
  for (const auto &F : M.functions())
    runOnFunction(*F);
  return Error::success();
}
