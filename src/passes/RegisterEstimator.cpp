//===- passes/RegisterEstimator.cpp - Register usage analysis ---------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/RegisterEstimator.h"

#include "kir/Module.h"
#include "support/Casting.h"

#include <map>
#include <set>

using namespace accel;
using namespace accel::kir;

unsigned passes::estimateRegisters(const Function &F) {
  // Registers hardware always reserves (ids, stack pointer, ...).
  constexpr unsigned AbiReserve = 4;

  // Values used outside their defining block stay allocated for the
  // whole kernel in this model. Arguments count as cross-block.
  std::set<const Value *> CrossBlock;
  for (unsigned I = 0; I != F.numArguments(); ++I)
    CrossBlock.insert(F.argument(I));

  std::map<const Value *, const BasicBlock *> DefBlock;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (!I->type().isVoid())
        DefBlock.emplace(I.get(), BB.get());

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      for (const Value *Op : I->operands()) {
        auto It = DefBlock.find(Op);
        if (It != DefBlock.end() && It->second != BB.get())
          CrossBlock.insert(Op);
      }
    }
  }

  // Peak in-block pressure: walk each block, treating a value as live
  // from its definition until its last in-block use.
  unsigned Peak = 0;
  for (const auto &BB : F.blocks()) {
    std::map<const Value *, size_t> LastUse;
    for (size_t I = 0, E = BB->size(); I != E; ++I)
      for (const Value *Op : BB->inst(I)->operands())
        if (DefBlock.count(Op) && !CrossBlock.count(Op))
          LastUse[Op] = I;

    unsigned Live = 0, BlockPeak = 0;
    std::map<size_t, unsigned> ExpiringAt;
    for (const auto &[V, Idx] : LastUse)
      ++ExpiringAt[Idx];
    for (size_t I = 0, E = BB->size(); I != E; ++I) {
      const Instruction *Inst = BB->inst(I);
      if (!Inst->type().isVoid() && !CrossBlock.count(Inst) &&
          LastUse.count(Inst))
        ++Live;
      if (Live > BlockPeak)
        BlockPeak = Live;
      auto It = ExpiringAt.find(I);
      if (It != ExpiringAt.end())
        Live -= It->second < Live ? It->second : Live;
    }
    if (BlockPeak > Peak)
      Peak = BlockPeak;
  }

  return AbiReserve + static_cast<unsigned>(CrossBlock.size()) + Peak;
}
