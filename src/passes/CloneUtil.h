//===- passes/CloneUtil.h - Instruction cloning helpers ---------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared utilities for transforms: cloning instructions with operand
/// remapping (used by the inliner) and replacing all uses of a value
/// within a function (used by the inliner and the accelOS transform).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_CLONEUTIL_H
#define ACCEL_PASSES_CLONEUTIL_H

#include "kir/Module.h"

#include <map>
#include <memory>

namespace accel {
namespace passes {

/// Maps original values to their replacements during cloning.
using ValueMap = std::map<const kir::Value *, kir::Value *>;

/// Maps original blocks to their replacements during cloning.
using BlockMap = std::map<const kir::BasicBlock *, kir::BasicBlock *>;

/// \returns the image of \p V under \p VM. Constants are re-interned in
/// \p Dest; every other value must already be mapped.
kir::Value *mapValue(const kir::Value *V, ValueMap &VM, kir::Function &Dest);

/// Clones \p I into \p Dest with operands remapped through \p VM and
/// branch targets through \p BM. Ret instructions are not clonable here
/// (the inliner rewrites them); passing one is a programming error.
std::unique_ptr<kir::Instruction> cloneInstruction(const kir::Instruction &I,
                                                   ValueMap &VM, BlockMap &BM,
                                                   kir::Function &Dest);

/// Rewrites every operand in \p F that references \p Old to \p New.
void replaceAllUses(kir::Function &F, const kir::Value *Old,
                    kir::Value *New);

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_CLONEUTIL_H
