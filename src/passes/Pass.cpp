//===- passes/Pass.cpp - Pass interfaces and manager -----------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/Pass.h"

#include "kir/Module.h"
#include "kir/Verifier.h"

using namespace accel;
using namespace accel::passes;

ModulePass::~ModulePass() = default;

Error PassManager::run(kir::Module &M) {
  for (const auto &Pass : Passes) {
    if (Error E = Pass->run(M))
      return makeError(std::string("pass '") + Pass->name() +
                       "' failed: " + E.message());
    if (VerifyEach)
      if (Error E = kir::verifyModule(M))
        return makeError(std::string("module invalid after pass '") +
                         Pass->name() + "': " + E.message());
  }
  return Error::success();
}
