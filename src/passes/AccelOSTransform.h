//===- passes/AccelOSTransform.h - Software scheduling transform -*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core JIT transformation (Sec. 6.2, Fig. 8). For every
/// kernel K in the module:
///
///  1. K is demoted to a regular computation function (renamed K__comp)
///     whose interface is extended with the runtime structures: a global
///     pointer to the Virtual NDRange ("rt"), a local pointer to the
///     per-work-group scheduling descriptor ("sd"), a virtual-group
///     handle ("hdlr"), and one local pointer per hoisted local array.
///  2. Work-item built-ins inside K (and inside every helper function
///     that transitively uses them) are replaced with the runtime
///     equivalents that compute *virtual* ids from rt and hdlr.
///  3. K's local-memory declarations are hoisted into the new scheduling
///     kernel and passed to the computation function by pointer.
///  4. A scheduling kernel carrying K's original name is synthesized: a
///     loop in which the master work item atomically dequeues batches of
///     virtual groups from the Virtual NDRange and all work items execute
///     the computation function for each dequeued group (Fig. 8b).
///
/// The host runtime decides physical work-group counts and batch sizes;
/// the transform only records the computation instruction count that the
/// adaptive scheduling policy (Sec. 6.4) keys on.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_ACCELOSTRANSFORM_H
#define ACCEL_PASSES_ACCELOSTRANSFORM_H

#include "passes/Pass.h"

#include <cstdint>
#include <map>
#include <string>

namespace accel {
namespace passes {

/// Facts about one transformed kernel, consumed by the host runtime.
struct TransformedKernelInfo {
  std::string ComputeFnName;  ///< The demoted computation function.
  uint64_t ComputeInstCount = 0; ///< IR size driving adaptive batching.
  uint64_t LocalMemBytes = 0;    ///< Hoisted local memory (descriptor
                                 ///< excluded), i.e. the m_i term.
  unsigned HoistedLocals = 0;    ///< Number of hoisted local arrays.
};

/// Applies the accelOS scheduling transformation to every kernel.
class AccelOSTransform : public ModulePass {
public:
  const char *name() const override { return "accelos-transform"; }
  Error run(kir::Module &M) override;

  /// Per-kernel metadata, keyed by the (unchanged) kernel name.
  const std::map<std::string, TransformedKernelInfo> &info() const {
    return Info;
  }

private:
  std::map<std::string, TransformedKernelInfo> Info;
};

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_ACCELOSTRANSFORM_H
