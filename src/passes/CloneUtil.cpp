//===- passes/CloneUtil.cpp - Instruction cloning helpers -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/CloneUtil.h"

#include "support/Casting.h"

using namespace accel;
using namespace accel::kir;
using namespace accel::passes;

Value *passes::mapValue(const Value *V, ValueMap &VM, Function &Dest) {
  auto It = VM.find(V);
  if (It != VM.end())
    return It->second;
  if (const auto *C = dyn_cast<Constant>(V)) {
    Constant *NewC =
        C->type().isFloat()
            ? Dest.getFloatConstant(C->floatValue())
            : (C->type().isBool()
                   ? Dest.getBoolConstant(C->bits() != 0)
                   : Dest.getIntConstant(C->type(), C->intValue()));
    VM.emplace(V, NewC);
    return NewC;
  }
  accel_unreachable("unmapped non-constant value during cloning");
}

std::unique_ptr<Instruction>
passes::cloneInstruction(const Instruction &I, ValueMap &VM, BlockMap &BM,
                         Function &Dest) {
  auto Op = [&](unsigned Idx) {
    return mapValue(I.operand(Idx), VM, Dest);
  };

  switch (I.instKind()) {
  case InstKind::Binary: {
    const auto &B = cast<BinaryInst>(I);
    return std::make_unique<BinaryInst>(B.op(), Op(0), Op(1));
  }
  case InstKind::Cmp: {
    const auto &C = cast<CmpInst>(I);
    return std::make_unique<CmpInst>(C.pred(), Op(0), Op(1));
  }
  case InstKind::Select:
    return std::make_unique<SelectInst>(Op(0), Op(1), Op(2));
  case InstKind::Cast: {
    const auto &C = cast<CastInst>(I);
    return std::make_unique<CastInst>(C.castKind(), Op(0), C.type());
  }
  case InstKind::Alloca: {
    const auto &A = cast<AllocaInst>(I);
    return std::make_unique<AllocaInst>(A.elemKind(), A.count());
  }
  case InstKind::LocalAddr: {
    const auto &L = cast<LocalAddrInst>(I);
    return std::make_unique<LocalAddrInst>(L.type().elemKind(),
                                           L.slotIndex());
  }
  case InstKind::Load:
    return std::make_unique<LoadInst>(Op(0));
  case InstKind::Store:
    return std::make_unique<StoreInst>(Op(0), Op(1));
  case InstKind::Gep:
    return std::make_unique<GepInst>(Op(0), Op(1));
  case InstKind::Call: {
    const auto &C = cast<CallInst>(I);
    std::vector<Value *> Args;
    for (unsigned A = 0; A != C.numOperands(); ++A)
      Args.push_back(Op(A));
    return std::make_unique<CallInst>(C.callee(), C.type(),
                                      std::move(Args));
  }
  case InstKind::Builtin: {
    const auto &B = cast<BuiltinInst>(I);
    std::vector<Value *> Args;
    for (unsigned A = 0; A != B.numOperands(); ++A)
      Args.push_back(Op(A));
    return std::make_unique<BuiltinInst>(B.builtinKind(), B.type(),
                                         std::move(Args));
  }
  case InstKind::Br: {
    const auto &Br = cast<BrInst>(I);
    BasicBlock *TrueBB = BM.at(Br.trueTarget());
    if (!Br.isConditional())
      return std::make_unique<BrInst>(TrueBB);
    return std::make_unique<BrInst>(Op(0), TrueBB,
                                    BM.at(Br.falseTarget()));
  }
  case InstKind::Ret:
    break;
  }
  accel_unreachable("ret instructions are rewritten, not cloned");
}

void passes::replaceAllUses(Function &F, const Value *Old, Value *New) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (unsigned OpIdx = 0; OpIdx != I->numOperands(); ++OpIdx)
        if (I->operand(OpIdx) == Old)
          I->setOperand(OpIdx, New);
}
