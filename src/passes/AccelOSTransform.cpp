//===- passes/AccelOSTransform.cpp - Software scheduling transform ----------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/AccelOSTransform.h"

#include "kir/IRBuilder.h"
#include "kir/Module.h"
#include "kir/RtLayout.h"
#include "passes/CloneUtil.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace accel;
using namespace accel::kir;
using namespace accel::passes;

namespace {

/// The runtime-structure arguments appended to an extended function.
struct RtArgs {
  Argument *Rt = nullptr;   ///< global i64*: Virtual NDRange descriptor.
  Argument *Sd = nullptr;   ///< local i64*: scheduling descriptor.
  Argument *Hdlr = nullptr; ///< i64: current virtual-group handle.
};

Type rtPtrType() {
  return Type::ptr(Type::Kind::I64, AddrSpaceKind::Global);
}

Type sdPtrType() {
  return Type::ptr(Type::Kind::I64, AddrSpaceKind::Local);
}

/// \returns true for the work-item queries whose results change meaning
/// under software scheduling (they must read the *virtual* NDRange).
bool isVirtualQuery(BuiltinKind BK) {
  return BK == BuiltinKind::GetGlobalId || BK == BuiltinKind::GetGroupId ||
         BK == BuiltinKind::GetGlobalSize || BK == BuiltinKind::GetNumGroups;
}

/// \returns true when \p F directly performs a virtual work-item query.
bool usesVirtualQueries(const Function &F) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const auto *B = dyn_cast<BuiltinInst>(I.get()))
        if (isVirtualQuery(B->builtinKind()))
          return true;
  return false;
}

/// Appends the rt/sd/hdlr arguments to \p F.
RtArgs extendSignature(Function &F) {
  RtArgs Args;
  Args.Rt = F.addArgument(rtPtrType(), "rt");
  Args.Sd = F.addArgument(sdPtrType(), "sd");
  Args.Hdlr = F.addArgument(Type::i64(), "hdlr");
  return Args;
}

/// Replaces virtual work-item queries in \p F with their runtime
/// equivalents reading \p Args, and extends calls to functions in
/// \p Extended with \p Args (paper Sec. 6.2 steps 2-3 and "Function
/// Calls").
void rewriteBody(Function &F, const RtArgs &Args,
                 const std::set<const Function *> &Extended) {
  for (const auto &BB : F.blocks()) {
    for (size_t I = 0, E = BB->size(); I != E; ++I) {
      Instruction *Inst = BB->inst(I);

      if (auto *B = dyn_cast<BuiltinInst>(Inst)) {
        if (!isVirtualQuery(B->builtinKind()))
          continue;
        Value *Dim = B->operand(0);
        std::unique_ptr<Instruction> New;
        switch (B->builtinKind()) {
        case BuiltinKind::GetGlobalId:
          New = std::make_unique<BuiltinInst>(
              BuiltinKind::RtGlobalId, Type::i64(),
              std::vector<Value *>{Args.Rt, Args.Hdlr, Dim});
          break;
        case BuiltinKind::GetGroupId:
          New = std::make_unique<BuiltinInst>(
              BuiltinKind::RtGroupId, Type::i64(),
              std::vector<Value *>{Args.Rt, Args.Hdlr, Dim});
          break;
        case BuiltinKind::GetGlobalSize:
          New = std::make_unique<BuiltinInst>(
              BuiltinKind::RtGlobalSize, Type::i64(),
              std::vector<Value *>{Args.Rt, Dim});
          break;
        case BuiltinKind::GetNumGroups:
          New = std::make_unique<BuiltinInst>(
              BuiltinKind::RtNumGroups, Type::i64(),
              std::vector<Value *>{Args.Rt, Dim});
          break;
        default:
          accel_unreachable("not a virtual query");
        }
        New->setName(Inst->name());
        Instruction *NewPtr = New.get();
        std::unique_ptr<Instruction> Old = BB->replaceInst(I, std::move(New));
        replaceAllUses(F, Old.get(), NewPtr);
        continue;
      }

      if (auto *Call = dyn_cast<CallInst>(Inst)) {
        if (!Extended.count(Call->callee()))
          continue;
        std::vector<Value *> NewOps(Call->operands());
        NewOps.push_back(Args.Rt);
        NewOps.push_back(Args.Sd);
        NewOps.push_back(Args.Hdlr);
        auto New = std::make_unique<CallInst>(Call->callee(), Call->type(),
                                              std::move(NewOps));
        New->setName(Inst->name());
        Instruction *NewPtr = New.get();
        std::unique_ptr<Instruction> Old = BB->replaceInst(I, std::move(New));
        replaceAllUses(F, Old.get(), NewPtr);
      }
    }
  }
}

/// Hoists \p K's local arrays: appends one local-pointer argument per
/// declaration, rewires LocalAddr instructions to those arguments, and
/// strips the declarations from \p K. \returns the hoisted declarations.
std::vector<LocalAllocDecl> hoistLocals(Function &K) {
  std::vector<LocalAllocDecl> Hoisted = K.localAllocs();

  std::vector<Argument *> PtrArgs;
  PtrArgs.reserve(Hoisted.size());
  for (const LocalAllocDecl &Decl : Hoisted)
    PtrArgs.push_back(K.addArgument(
        Type::ptr(Decl.ElemKind, AddrSpaceKind::Local), Decl.Name + ".ptr"));

  for (const auto &BB : K.blocks()) {
    for (const auto &I : BB->instructions())
      if (auto *LA = dyn_cast<LocalAddrInst>(I.get()))
        replaceAllUses(K, LA, PtrArgs[LA->slotIndex()]);
    // Drop the now-unused LocalAddr instructions.
    auto Insts = BB->takeInstructions();
    std::vector<std::unique_ptr<Instruction>> Kept;
    Kept.reserve(Insts.size());
    for (auto &I : Insts)
      if (!isa<LocalAddrInst>(I.get()))
        Kept.push_back(std::move(I));
    BB->setInstructions(std::move(Kept));
  }

  K.localAllocs().clear();
  return Hoisted;
}

/// Synthesizes the scheduling kernel (paper Fig. 8b) that dequeues
/// virtual groups and drives \p Comp.
void buildSchedulingKernel(Module &M, const std::string &KernelName,
                           Function &Comp, unsigned NumOrigArgs,
                           const std::vector<LocalAllocDecl> &Hoisted) {
  using namespace rtlayout;

  Function *Sched = M.createFunction(KernelName, Type::voidTy(),
                                     /*IsKernel=*/true);
  // Forward the original kernel parameters, then the rt descriptor.
  std::vector<Argument *> FwdArgs;
  for (unsigned I = 0; I != NumOrigArgs; ++I)
    FwdArgs.push_back(Sched->addArgument(Comp.argument(I)->type(),
                                         Comp.argument(I)->name()));
  Argument *Rt = Sched->addArgument(rtPtrType(), "rt");

  // Local memory: the hoisted arrays followed by the descriptor.
  std::vector<unsigned> HoistedSlots;
  for (const LocalAllocDecl &Decl : Hoisted)
    HoistedSlots.push_back(Sched->addLocalAlloc(Decl));
  unsigned SdSlot =
      Sched->addLocalAlloc({"__sd", Type::Kind::I64, SDW_WordCount});

  IRBuilder B(Sched);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Init = B.createBlock("init");
  BasicBlock *Head = B.createBlock("loop.head");
  BasicBlock *SchedBB = B.createBlock("sched");
  BasicBlock *Join = B.createBlock("join");
  BasicBlock *Batch = B.createBlock("batch");
  BasicBlock *Cond = B.createBlock("batch.cond");
  BasicBlock *CallBB = B.createBlock("batch.call");
  BasicBlock *Sync = B.createBlock("batch.sync");
  BasicBlock *Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  Value *Sd = B.localAddr(Type::Kind::I64, SdSlot, "sd");
  std::vector<Value *> LocalPtrs;
  for (size_t I = 0; I != Hoisted.size(); ++I)
    LocalPtrs.push_back(B.localAddr(Hoisted[I].ElemKind, HoistedSlots[I],
                                    Hoisted[I].Name));
  Value *IndAddr = B.allocaVar(Type::Kind::I64, 1, "ind.addr");
  Value *IsMaster =
      B.builtin(BuiltinKind::RtIsMaster, Type::i1(), {}, "is_master");
  B.condBr(IsMaster, Init, Head);

  B.setInsertPoint(Init);
  B.builtin(BuiltinKind::RtEnvInit, Type::voidTy(), {Rt, Sd});
  B.br(Head);

  B.setInsertPoint(Head);
  Value *IsMaster2 =
      B.builtin(BuiltinKind::RtIsMaster, Type::i1(), {}, "is_master");
  B.condBr(IsMaster2, SchedBB, Join);

  B.setInsertPoint(SchedBB);
  B.builtin(BuiltinKind::RtSchedWGroup, Type::voidTy(), {Rt, Sd});
  B.br(Join);

  B.setInsertPoint(Join);
  B.barrier();
  Value *Status = B.load(B.gep(Sd, B.i64Const(SDW_Status)), "status");
  Value *IsTerm = B.cmp(CmpPred::EQ, Status, B.i64Const(RUN_TERMINATE),
                        "terminate");
  B.condBr(IsTerm, Exit, Batch);

  B.setInsertPoint(Batch);
  Value *Base = B.load(B.gep(Sd, B.i64Const(SDW_Base)), "wg_base");
  B.store(IndAddr, Base);
  B.br(Cond);

  B.setInsertPoint(Cond);
  Value *Ind = B.load(IndAddr, "ind");
  Value *End = B.load(B.gep(Sd, B.i64Const(SDW_End)), "wg_end");
  Value *InBatch = B.cmp(CmpPred::SLT, Ind, End, "in_batch");
  B.condBr(InBatch, CallBB, Sync);

  // Second barrier of the lap: without it the master could overwrite the
  // scheduling descriptor with the next batch while slower work items
  // are still reading the current one. (Fig. 8b in the paper elides this
  // synchronisation; it is required for correctness.)
  B.setInsertPoint(Sync);
  B.barrier();
  B.br(Head);

  B.setInsertPoint(CallBB);
  std::vector<Value *> CallArgs;
  for (Argument *A : FwdArgs)
    CallArgs.push_back(A);
  CallArgs.push_back(Rt);
  CallArgs.push_back(Sd);
  CallArgs.push_back(Ind);
  for (Value *L : LocalPtrs)
    CallArgs.push_back(L);
  B.call(&Comp, std::move(CallArgs));
  B.store(IndAddr, B.add(Ind, B.i64Const(1), "ind.next"));
  B.br(Cond);

  B.setInsertPoint(Exit);
  B.retVoid();
}

} // namespace

Error AccelOSTransform::run(Module &M) {
  Info.clear();

  std::vector<Function *> Kernels = M.kernels();
  for (Function *K : Kernels) {
    if (K->name().size() > 6 &&
        K->name().substr(K->name().size() - 6) == "__comp")
      return makeError("module '" + M.name() + "' appears to be already "
                       "transformed");
    if (M.getFunction(K->name() + "__comp"))
      return makeError("name collision: '" + K->name() + "__comp'");
  }

  // Transitive closure of helper functions needing the runtime
  // structures (paper Sec. 6.2 "Function Calls").
  std::set<const Function *> NeedsRt;
  for (const auto &F : M.functions())
    if (!F->isKernel() && usesVirtualQueries(*F))
      NeedsRt.insert(F.get());
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (const auto &F : M.functions()) {
      if (F->isKernel() || NeedsRt.count(F.get()))
        continue;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions())
          if (const auto *Call = dyn_cast<CallInst>(I.get()))
            if (NeedsRt.count(Call->callee())) {
              NeedsRt.insert(F.get());
              Changed = true;
            }
    }
  }

  // Extend helper signatures first so call rewriting sees final shapes.
  std::map<Function *, RtArgs> ExtArgs;
  for (const auto &F : M.functions())
    if (!F->isKernel() && NeedsRt.count(F.get()))
      ExtArgs.emplace(F.get(), extendSignature(*F));

  // Demote kernels to computation functions.
  struct KernelPlan {
    Function *Comp;
    std::string OrigName;
    unsigned NumOrigArgs;
    uint64_t InstCount;
    uint64_t LocalBytes;
    std::vector<LocalAllocDecl> Hoisted;
  };
  std::vector<KernelPlan> Plans;
  for (Function *K : Kernels) {
    KernelPlan Plan;
    Plan.Comp = K;
    Plan.OrigName = K->name();
    Plan.NumOrigArgs = K->numArguments();
    Plan.InstCount = K->instructionCount();
    Plan.LocalBytes = K->localMemoryBytes();
    K->setName(Plan.OrigName + "__comp");
    K->setIsKernel(false);
    ExtArgs.emplace(K, extendSignature(*K));
    Plans.push_back(std::move(Plan));
  }

  // Every extended function (helpers and demoted kernels) participates
  // in call-site extension.
  std::set<const Function *> Extended;
  for (const auto &[F, Args] : ExtArgs)
    Extended.insert(F);

  for (auto &[F, Args] : ExtArgs)
    rewriteBody(*F, Args, Extended);

  // Hoist kernel local memory and synthesize the scheduling kernels.
  for (KernelPlan &Plan : Plans) {
    Plan.Hoisted = hoistLocals(*Plan.Comp);
    buildSchedulingKernel(M, Plan.OrigName, *Plan.Comp, Plan.NumOrigArgs,
                          Plan.Hoisted);
    TransformedKernelInfo KI;
    KI.ComputeFnName = Plan.Comp->name();
    KI.ComputeInstCount = Plan.InstCount;
    KI.LocalMemBytes = Plan.LocalBytes;
    KI.HoistedLocals = static_cast<unsigned>(Plan.Hoisted.size());
    Info.emplace(Plan.OrigName, std::move(KI));
  }
  return Error::success();
}
