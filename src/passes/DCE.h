//===- passes/DCE.h - Dead code elimination ---------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes pure instructions whose results are never used. Keeps the IR
/// that the accelOS transform and the instruction-count-driven adaptive
/// scheduling policy (Sec. 6.4) see close to what an optimizing GPU
/// compiler would emit.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_DCE_H
#define ACCEL_PASSES_DCE_H

#include "passes/Pass.h"

namespace accel {
namespace passes {

/// Deletes side-effect-free instructions with no (transitive) live uses.
class DCEPass : public ModulePass {
public:
  const char *name() const override { return "dce"; }
  Error run(kir::Module &M) override;
};

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_DCE_H
