//===- passes/ConstantFold.h - Constant folding -----------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds binary, comparison, select and cast instructions whose operands
/// are all constants, re-interning the results in the owning function's
/// constant pool. Runs to a fixed point so chains fold completely.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_PASSES_CONSTANTFOLD_H
#define ACCEL_PASSES_CONSTANTFOLD_H

#include "passes/Pass.h"

namespace accel {
namespace passes {

/// Folds constant expressions. Division by a constant zero is left in
/// place so the runtime trap semantics are preserved.
class ConstantFoldPass : public ModulePass {
public:
  const char *name() const override { return "constfold"; }
  Error run(kir::Module &M) override;
};

} // namespace passes
} // namespace accel

#endif // ACCEL_PASSES_CONSTANTFOLD_H
