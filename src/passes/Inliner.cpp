//===- passes/Inliner.cpp - Function inlining -------------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "passes/Inliner.h"

#include "kir/Module.h"
#include "passes/CloneUtil.h"
#include "support/Casting.h"

#include <set>

using namespace accel;
using namespace accel::kir;
using namespace accel::passes;

namespace {

/// Locates the first call in \p F. \returns (block, index) or nullptr.
std::pair<BasicBlock *, size_t> findCall(Function &F) {
  for (const auto &BB : F.blocks())
    for (size_t I = 0, E = BB->size(); I != E; ++I)
      if (isa<CallInst>(BB->inst(I)))
        return {BB.get(), I};
  return {nullptr, 0};
}

/// Inlines the call at (BB, CallIdx) into \p Caller. The callee must be
/// call-free (guaranteed by processing functions callees-first).
void inlineCall(Function &Caller, BasicBlock *BB, size_t CallIdx) {
  auto Insts = BB->takeInstructions();
  auto *Call = cast<CallInst>(Insts[CallIdx].get());
  Function *Callee = Call->callee();
  assert(!Callee->isDeclaration() && "inlining a declaration");
  assert(Callee->localAllocs().empty() &&
         "non-kernel functions cannot own local memory");

  // Split the caller block around the call site.
  std::vector<std::unique_ptr<Instruction>> Head, Tail;
  for (size_t I = 0; I != CallIdx; ++I)
    Head.push_back(std::move(Insts[I]));
  std::unique_ptr<Instruction> CallInstPtr = std::move(Insts[CallIdx]);
  for (size_t I = CallIdx + 1, E = Insts.size(); I != E; ++I)
    Tail.push_back(std::move(Insts[I]));

  BasicBlock *ContBB = Caller.createBlock(BB->name() + ".cont");

  // Map callee arguments to the call operands.
  ValueMap VM;
  for (unsigned A = 0; A != Callee->numArguments(); ++A)
    VM.emplace(Callee->argument(A), Call->operand(A));

  // Return-value plumbing: non-void callees communicate through a
  // dedicated private slot (the IR has no phi nodes by design).
  Instruction *RetSlot = nullptr;
  if (!Callee->returnType().isVoid()) {
    auto Slot = std::make_unique<AllocaInst>(
        Callee->returnType().kind(), 1);
    RetSlot = Slot.get();
    Head.push_back(std::move(Slot));
  }

  // Create destination blocks first so branches can be remapped.
  BlockMap BM;
  for (const auto &GB : Callee->blocks())
    BM.emplace(GB.get(),
               Caller.createBlock("inl." + Callee->name() + "." +
                                  GB->name()));

  // Clone bodies.
  for (const auto &GB : Callee->blocks()) {
    BasicBlock *Dst = BM.at(GB.get());
    std::vector<std::unique_ptr<Instruction>> Cloned;
    for (const auto &GI : GB->instructions()) {
      if (const auto *Ret = dyn_cast<RetInst>(GI.get())) {
        if (Ret->hasValue()) {
          Value *RetVal = mapValue(Ret->value(), VM, Caller);
          Cloned.push_back(std::make_unique<StoreInst>(RetSlot, RetVal));
        }
        Cloned.push_back(std::make_unique<BrInst>(ContBB));
        continue;
      }
      auto NewInst = cloneInstruction(*GI, VM, BM, Caller);
      VM.emplace(GI.get(), NewInst.get());
      Cloned.push_back(std::move(NewInst));
    }
    Dst->setInstructions(std::move(Cloned));
  }

  // Branch from the head into the inlined entry.
  Head.push_back(std::make_unique<BrInst>(BM.at(Callee->entryBlock())));
  BB->setInstructions(std::move(Head));

  // The continuation re-loads the return value and carries the tail.
  std::vector<std::unique_ptr<Instruction>> ContInsts;
  Instruction *RetLoad = nullptr;
  if (RetSlot) {
    auto Load = std::make_unique<LoadInst>(RetSlot);
    RetLoad = Load.get();
    ContInsts.push_back(std::move(Load));
  }
  for (auto &T : Tail)
    ContInsts.push_back(std::move(T));
  ContBB->setInstructions(std::move(ContInsts));

  if (RetLoad)
    replaceAllUses(Caller, Call, RetLoad);
}

/// Post-order over the call graph so callees are processed first.
void postOrder(Function *F, std::set<Function *> &Visited,
               std::vector<Function *> &Order) {
  if (!Visited.insert(F).second)
    return;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (auto *Call = dyn_cast<CallInst>(I.get()))
        postOrder(Call->callee(), Visited, Order);
  Order.push_back(F);
}

} // namespace

Error InlinerPass::run(Module &M) {
  std::set<Function *> Visited;
  std::vector<Function *> Order;
  for (const auto &F : M.functions())
    postOrder(F.get(), Visited, Order);

  for (Function *F : Order) {
    for (;;) {
      auto [BB, Idx] = findCall(*F);
      if (!BB)
        break;
      auto *Call = cast<CallInst>(BB->inst(Idx));
      if (Call->callee()->isDeclaration())
        return makeError("cannot inline declaration '" +
                         Call->callee()->name() + "'");
      inlineCall(*F, BB, Idx);
    }
  }
  return Error::success();
}
