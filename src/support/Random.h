//===- support/Random.h - Deterministic pseudo-randomness -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based RNG used everywhere the reproduction needs
/// randomness (workload sampling, work-group cost jitter). The simulator
/// and benches never read the wall clock, so results are reproducible
/// bit-for-bit across runs.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_RANDOM_H
#define ACCEL_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace accel {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// \returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow with zero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// \returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// \returns a double in [Lo, Hi).
  double nextDoubleInRange(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[nextBelow(I)]);
  }

  /// Samples \p Count indices uniformly (with replacement) from
  /// [0, Population).
  std::vector<size_t> sampleWithReplacement(size_t Population, size_t Count) {
    std::vector<size_t> Result;
    Result.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Result.push_back(static_cast<size_t>(nextBelow(Population)));
    return Result;
  }

private:
  uint64_t State;
};

} // namespace accel

#endif // ACCEL_SUPPORT_RANDOM_H
