//===- support/StringUtil.h - String and table helpers ----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string formatting helpers shared by the bench table renderer and
/// diagnostic printers.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_STRINGUTIL_H
#define ACCEL_SUPPORT_STRINGUTIL_H

#include <string>
#include <vector>

namespace accel {

/// \returns \p Value formatted with \p Precision fractional digits.
std::string formatDouble(double Value, int Precision);

/// \returns \p Str left-padded with spaces to \p Width columns.
std::string padLeft(const std::string &Str, size_t Width);

/// \returns \p Str right-padded with spaces to \p Width columns.
std::string padRight(const std::string &Str, size_t Width);

/// Splits \p Str on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &Str, char Sep);

/// \returns true when \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

} // namespace accel

#endif // ACCEL_SUPPORT_STRINGUTIL_H
