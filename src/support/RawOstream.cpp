//===- support/RawOstream.cpp - Lightweight output streams ---------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "support/RawOstream.h"

#include <cinttypes>

using namespace accel;

raw_ostream::~raw_ostream() = default;

void raw_ostream::anchor() {}

raw_ostream &raw_ostream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(double D) {
  char Buf[48];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::printFixed(double D, int Precision) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &accel::outs() {
  static raw_fd_ostream Stream(stdout);
  return Stream;
}

raw_ostream &accel::errs() {
  static raw_fd_ostream Stream(stderr);
  return Stream;
}
