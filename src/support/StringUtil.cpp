//===- support/StringUtil.cpp - String and table helpers ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdio>

using namespace accel;

std::string accel::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return std::string(Buf);
}

std::string accel::padLeft(const std::string &Str, size_t Width) {
  if (Str.size() >= Width)
    return Str;
  return std::string(Width - Str.size(), ' ') + Str;
}

std::string accel::padRight(const std::string &Str, size_t Width) {
  if (Str.size() >= Width)
    return Str;
  return Str + std::string(Width - Str.size(), ' ');
}

std::vector<std::string> accel::splitString(const std::string &Str, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Str.size(); ++I) {
    if (I == Str.size() || Str[I] == Sep) {
      Parts.push_back(Str.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

bool accel::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}
