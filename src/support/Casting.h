//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the LLVM style. Classes participate by
/// providing a static `classof(const Base *)` predicate, typically keyed
/// on a Kind discriminator stored in the base class. The library is built
/// without C++ RTTI, so these templates are the only downcast mechanism.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_CASTING_H
#define ACCEL_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace accel {

/// \returns true if \p Val is an instance of the type \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<Ty>() argument of incompatible type!");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<Ty>() argument of incompatible type!");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<Ty>() argument of incompatible type!");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<Ty>() argument of incompatible type!");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates (and propagates) null inputs.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace accel

#endif // ACCEL_SUPPORT_CASTING_H
