//===- support/RawOstream.h - Lightweight output streams --------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal raw_ostream replacement. Library code avoids <iostream>
/// (static-constructor injection) per the LLVM coding standards; this
/// provides buffered formatting onto FILE* or std::string sinks.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_RAWOSTREAM_H
#define ACCEL_SUPPORT_RAWOSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace accel {

/// Abstract character sink with printf-adjacent formatting helpers.
class raw_ostream {
public:
  virtual ~raw_ostream();

  raw_ostream &operator<<(std::string_view Str) {
    write(Str.data(), Str.size());
    return *this;
  }

  raw_ostream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }

  raw_ostream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }

  raw_ostream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }

  raw_ostream &operator<<(int64_t N);
  raw_ostream &operator<<(uint64_t N);
  raw_ostream &operator<<(int N) { return *this << static_cast<int64_t>(N); }
  raw_ostream &operator<<(unsigned N) {
    return *this << static_cast<uint64_t>(N);
  }
  raw_ostream &operator<<(double D);
  raw_ostream &operator<<(bool B) { return *this << (B ? "true" : "false"); }

  /// Appends \p D formatted with \p Precision digits after the point.
  raw_ostream &printFixed(double D, int Precision);

  /// Appends \p Size raw bytes.
  virtual void write(const char *Ptr, size_t Size) = 0;

private:
  virtual void anchor();
};

/// Stream that appends to a caller-owned std::string.
class raw_string_ostream : public raw_ostream {
public:
  explicit raw_string_ostream(std::string &Buffer) : Buffer(Buffer) {}

  void write(const char *Ptr, size_t Size) override {
    Buffer.append(Ptr, Size);
  }

  /// \returns the accumulated contents.
  const std::string &str() const { return Buffer; }

private:
  std::string &Buffer;
};

/// Stream writing to a stdio FILE handle (unowned).
class raw_fd_ostream : public raw_ostream {
public:
  explicit raw_fd_ostream(std::FILE *Handle) : Handle(Handle) {}

  void write(const char *Ptr, size_t Size) override {
    std::fwrite(Ptr, 1, Size, Handle);
  }

private:
  std::FILE *Handle;
};

/// \returns a stream attached to standard output.
raw_ostream &outs();

/// \returns a stream attached to standard error.
raw_ostream &errs();

} // namespace accel

#endif // ACCEL_SUPPORT_RAWOSTREAM_H
