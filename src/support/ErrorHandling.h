//===- support/ErrorHandling.h - Fatal error utilities ----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and the accel_unreachable marker used throughout
/// the library in place of exceptions, following the LLVM error-handling
/// conventions for programmatic (non-recoverable) errors.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_ERRORHANDLING_H
#define ACCEL_SUPPORT_ERRORHANDLING_H

namespace accel {

/// Reports a serious error, calling any installed error handler, and
/// aborts the process. Use for unrecoverable conditions triggered by
/// user input; use assertions for internal invariants instead.
[[noreturn]] void reportFatalError(const char *Reason);

/// Implementation detail of the accel_unreachable macro below.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace accel

/// Marks a point in the program that should never be reached. Prints the
/// message, file and line, then aborts. Used for fully-covered switches
/// and impossible states so release builds still fail loudly.
#define accel_unreachable(msg)                                                 \
  ::accel::unreachableInternal(msg, __FILE__, __LINE__)

#endif // ACCEL_SUPPORT_ERRORHANDLING_H
