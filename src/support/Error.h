//===- support/Error.h - Recoverable error handling -------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified clone of llvm::Error / llvm::Expected for recoverable
/// errors (bad kernel source, resource exhaustion, invalid API use).
/// Errors carry a message and must be consumed: destroying an unchecked
/// error aborts in assert builds, which keeps error paths honest without
/// using C++ exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_ERROR_H
#define ACCEL_SUPPORT_ERROR_H

#include "support/ErrorHandling.h"

#include <cassert>
#include <new>
#include <string>
#include <utility>

namespace accel {

/// A recoverable error: either success (empty) or a failure message.
///
/// Typical usage:
/// \code
///   Error E = doThing();
///   if (E)
///     return E;            // propagate
/// \endcode
class Error {
public:
  /// Constructs a success value.
  static Error success() { return Error(); }

  /// Constructs a failure carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Failed = true;
    E.Message = std::move(Message);
    return E;
  }

  Error() = default;

  Error(Error &&Other) noexcept
      : Failed(Other.Failed), Checked(Other.Checked),
        Message(std::move(Other.Message)) {
    Other.Checked = true;
  }

  Error &operator=(Error &&Other) noexcept {
    assertChecked();
    Failed = Other.Failed;
    Checked = Other.Checked;
    Message = std::move(Other.Message);
    Other.Checked = true;
    return *this;
  }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  ~Error() { assertChecked(); }

  /// \returns true if this is a failure. Marks the error as checked.
  explicit operator bool() {
    Checked = true;
    return Failed;
  }

  /// \returns the failure message (empty for success).
  const std::string &message() const { return Message; }

  /// Explicitly discards the error state.
  void consume() { Checked = true; }

private:
  void assertChecked() const {
    assert(Checked && "error destroyed without being checked");
    if (!Checked && Failed)
      reportFatalError(Message.c_str());
  }

  bool Failed = false;
  mutable bool Checked = true;
  std::string Message;
};

/// Convenience factory matching llvm::createStringError.
inline Error makeError(std::string Message) {
  return Error::failure(std::move(Message));
}

/// A value-or-error sum type in the style of llvm::Expected.
///
/// Holds either a \p T or an error message; the state must be queried via
/// operator bool before dereferencing. T need not be default
/// constructible (the payload lives in a union).
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Val) : HasValue(true) { new (&Value) T(std::move(Val)); }

  /// Constructs a failure from an Error (which must be in failure state).
  Expected(Error E) : HasValue(false) {
    assert(static_cast<bool>(E) && "constructing Expected from success");
    Message = E.message();
  }

  Expected(Expected &&Other) noexcept
      : HasValue(Other.HasValue), Message(std::move(Other.Message)) {
    if (HasValue)
      new (&Value) T(std::move(Other.Value));
  }

  Expected(const Expected &) = delete;
  Expected &operator=(const Expected &) = delete;
  Expected &operator=(Expected &&) = delete;

  ~Expected() {
    if (HasValue)
      Value.~T();
  }

  /// \returns true when a value is present.
  explicit operator bool() const { return HasValue; }

  T &operator*() {
    assert(HasValue && "dereferencing an errored Expected");
    return Value;
  }

  const T &operator*() const {
    assert(HasValue && "dereferencing an errored Expected");
    return Value;
  }

  T *operator->() {
    assert(HasValue && "dereferencing an errored Expected");
    return &Value;
  }

  const T *operator->() const {
    assert(HasValue && "dereferencing an errored Expected");
    return &Value;
  }

  /// Moves the contained value out. Only valid in the success state.
  T take() {
    assert(HasValue && "taking from an errored Expected");
    return std::move(Value);
  }

  /// Converts the failure state back into an Error for propagation.
  Error takeError() {
    if (HasValue)
      return Error::success();
    return Error::failure(Message);
  }

  /// \returns the failure message ("" in the success state).
  const std::string &message() const { return Message; }

private:
  bool HasValue;
  union {
    T Value;
  };
  std::string Message;
};

/// Unwraps an Expected that is known to be a success; fatal otherwise.
template <typename T> T cantFail(Expected<T> E) {
  if (!E)
    reportFatalError(E.message().c_str());
  return E.take();
}

/// Consumes an Error that is known to be a success; fatal otherwise.
inline void cantFail(Error E) {
  if (E)
    reportFatalError(E.message().c_str());
}

} // namespace accel

#endif // ACCEL_SUPPORT_ERROR_H
