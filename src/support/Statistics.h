//===- support/Statistics.h - Running summary statistics --------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulators for the aggregate numbers the paper reports: arithmetic
/// mean, geometric mean (used for single-kernel speedups, Sec. 8.5),
/// min/max, and percentile extraction over retained samples.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SUPPORT_STATISTICS_H
#define ACCEL_SUPPORT_STATISTICS_H

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace accel {

/// Arithmetic mean of \p Values (0 for an empty set) — the single
/// definition behind SampleStats::mean and metrics::mean.
inline double meanOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// Accumulates doubles and answers summary queries. Retains all samples
/// so percentiles and fractions are exact.
class SampleStats {
public:
  /// Adds one observation.
  void add(double Value) { Samples.push_back(Value); }

  /// \returns the number of observations.
  size_t count() const { return Samples.size(); }

  bool empty() const { return Samples.empty(); }

  /// \returns the arithmetic mean (0 when empty).
  double mean() const { return meanOf(Samples); }

  /// \returns the geometric mean; all samples must be positive.
  double geomean() const {
    if (Samples.empty())
      return 0.0;
    double LogSum = 0.0;
    for (double S : Samples) {
      assert(S > 0.0 && "geomean of non-positive sample");
      LogSum += std::log(S);
    }
    return std::exp(LogSum / static_cast<double>(Samples.size()));
  }

  double min() const {
    assert(!Samples.empty() && "min of empty stats");
    return *std::min_element(Samples.begin(), Samples.end());
  }

  double max() const {
    assert(!Samples.empty() && "max of empty stats");
    return *std::max_element(Samples.begin(), Samples.end());
  }

  /// \returns the value at quantile \p Q in [0,1] (nearest-rank).
  double percentile(double Q) const {
    assert(!Samples.empty() && "percentile of empty stats");
    assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
    std::vector<double> Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    size_t Rank = static_cast<size_t>(
        Q * static_cast<double>(Sorted.size() - 1) + 0.5);
    return Sorted[Rank];
  }

  /// \returns the fraction of samples for which \p Pred holds.
  template <typename PredT> double fraction(PredT Pred) const {
    if (Samples.empty())
      return 0.0;
    size_t Hits = 0;
    for (double S : Samples)
      if (Pred(S))
        ++Hits;
    return static_cast<double>(Hits) / static_cast<double>(Samples.size());
  }

  /// Direct access for custom reductions.
  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
};

} // namespace accel

#endif // ACCEL_SUPPORT_STATISTICS_H
