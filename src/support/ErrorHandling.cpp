//===- support/ErrorHandling.cpp - Fatal error utilities ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace accel;

void accel::reportFatalError(const char *Reason) {
  std::fprintf(stderr, "fatal error: %s\n", Reason);
  std::abort();
}

void accel::unreachableInternal(const char *Msg, const char *File,
                                unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}
