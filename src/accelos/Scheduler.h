//===- accelos/Scheduler.h - Round-based kernel scheduler -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Kernel Scheduler's round policy, extracted from the runtime so
/// the same component drives both the functional path (Runtime) and the
/// timing harness. It maintains a FIFO queue of pending kernel
/// execution requests and, at every scheduling boundary (a batch of
/// arrivals or the completion of the previous round), re-solves the
/// Sec. 3 fair shares over whatever is pending — the divisor K is
/// dynamic, shrinking as requests complete and growing as tenants
/// submit more work.
///
/// Requests the oversubscription clamp sheds (their minimum-share floor
/// could not fit alongside the others) are *deferred*: they stay queued
/// and are re-solved in a later, smaller round instead of being floored
/// onto an already-full device. A request that keeps losing to the
/// clamp is eventually granted a round of its own, so deferral never
/// becomes starvation.
///
/// Two admission disciplines share the queue/grant vocabulary:
///
///  - RoundScheduler: completion-round-synchronous — every grant of a
///    round ends before the next round is solved (the paper's global
///    scheduling boundary);
///  - ContinuousScheduler: event-driven — in-flight executions keep
///    their grants while newly arrived (or requeued sliced) requests
///    are admitted into the *residual* capacity at every
///    arrival/completion event, with no global barrier.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_SCHEDULER_H
#define ACCEL_ACCELOS_SCHEDULER_H

#include "accelos/ResourceSolver.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace accel {
namespace accelos {

/// One queued kernel execution request.
struct RoundRequest {
  uint64_t Id = 0; ///< Caller-owned handle, returned in the grant.
  KernelDemand Demand;
};

/// A share grant for one member of a scheduling round.
struct RoundGrant {
  uint64_t Id = 0;
  /// Solved physical work groups. Positive for every request that asked
  /// for work; zero only for zero-request (idle) submissions.
  uint64_t WGs = 0;
};

/// Observable scheduler behaviour.
struct SchedulerStats {
  /// Scheduling decisions solved: rounds for RoundScheduler, admission
  /// passes (one per arrival/completion event with a non-empty queue)
  /// for ContinuousScheduler.
  uint64_t RoundsPlanned = 0;
  /// Times a request was pushed past a scheduling decision: clamp-shed
  /// requeues for RoundScheduler; for ContinuousScheduler, the times a
  /// waiting request was overtaken by a younger grant in the same pass
  /// (the bypasses the anti-starvation bound counts).
  uint64_t Deferrals = 0;
  /// Times an anti-starvation escape engaged: solo rounds for
  /// RoundScheduler, forced idle-device grants for ContinuousScheduler.
  uint64_t SoloRescues = 0;
};

/// Round-synchronous fair-share scheduler over one device's capacity.
class RoundScheduler {
public:
  /// A request deferred this many times is granted a round of its own.
  static constexpr uint32_t MaxDeferrals = 3;

  explicit RoundScheduler(const ResourceCaps &Caps,
                          SolverOptions Opts = {})
      : Caps(Caps), Opts(Opts) {}

  /// Queues a request (an arrival boundary: the next round's K grows).
  void submit(const RoundRequest &R) { Queue.push_back({R, 0}); }

  /// Plans the next round over everything pending: solves fair shares
  /// with K = pending(), pops and returns the granted requests, and
  /// keeps clamp-shed requests queued (in order) for a later round.
  /// Returns an empty vector only when nothing is pending.
  std::vector<RoundGrant> nextRound();

  size_t pending() const { return Queue.size(); }
  const SchedulerStats &stats() const { return Stats; }

  /// Drops every pending request (error recovery).
  void clear() { Queue.clear(); }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };

  /// Grants \p E a round of its own (K = 1).
  RoundGrant soloGrant(const Entry &E) const;

  ResourceCaps Caps;
  SolverOptions Opts;
  std::deque<Entry> Queue;
  SchedulerStats Stats;
};

/// Event-driven fair-share scheduler: the continuous-admission growth
/// of RoundScheduler. Instead of waiting for a whole round to complete,
/// the caller reports individual completions (complete()) and asks for
/// new admissions (admit()) at every arrival/completion event; pending
/// requests are granted out of the capacity left over by in-flight
/// executions, so a request arriving just after others started never
/// waits out their makespan when the device has room.
///
/// Fairness without preemption: in-flight executions keep their grants,
/// but they stay in the fair-share divisor, so a newly admitted request
/// only claims its fair fraction of the device. The quantum slicing
/// done by the serving loop bounds how long any grant occupies its
/// share, which is what lets the allocation converge to the fair point
/// without ever revoking work.
///
/// Anti-starvation: a pending request that is overtaken (a younger
/// request admitted past it) MaxDeferrals times blocks all younger
/// admissions until capacity drains enough to admit it — bounded
/// bypassing, in place of RoundScheduler's solo rounds.
class ContinuousScheduler {
public:
  /// A request overtaken this many times blocks younger admissions.
  static constexpr uint32_t MaxDeferrals = RoundScheduler::MaxDeferrals;

  explicit ContinuousScheduler(const ResourceCaps &Caps,
                               SolverOptions Opts = {})
      : Caps(Caps), Opts(Opts) {}

  /// Queues a request (an arrival event; call admit() to act on it).
  void submit(const RoundRequest &R) { Queue.push_back({R, 0}); }

  /// Marks the in-flight execution \p Id complete, returning its
  /// capacity to the pool (a completion event; call admit() next).
  void complete(uint64_t Id);

  /// Narrows the reserved footprint of in-flight execution \p Id to
  /// the \p WGs actually launched. A quantum slice shorter than the
  /// grant runs fewer physical work groups; the difference is idle
  /// capacity the next admission pass may hand out.
  void shrink(uint64_t Id, uint64_t WGs);

  /// Plans admissions for the current event: re-solves fair shares over
  /// everything active (in-flight + pending) and grants each pending
  /// request the smaller of its fair share and what still fits the
  /// residual capacity. Equal-weight requests are served in FIFO order
  /// (the paper default, kept bit-identical); with non-equal weights
  /// the queue is served highest-weight first — under saturation FIFO
  /// would make every requeued slice of a heavy tenant wait out the
  /// lighter queue, defeating the weights — except that a starving
  /// request (MaxDeferrals overtakes) always goes first. Requests that
  /// get nothing stay queued. Zero-work requests are granted zero work
  /// groups and leave the queue immediately. An idle device never
  /// refuses its oldest request (work conservation), even when the
  /// clamp shed it.
  std::vector<RoundGrant> admit();

  size_t pending() const { return Queue.size(); }
  size_t inFlight() const { return Flights.size(); }
  const SchedulerStats &stats() const { return Stats; }

  /// Drops every pending request (error recovery); in-flight
  /// executions are unaffected.
  void clear() { Queue.clear(); }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };
  /// One admitted, not-yet-completed execution and the footprint it
  /// holds.
  struct Flight {
    KernelDemand Demand;
    uint64_t WGs = 0;
  };

  /// Device capacity minus every in-flight footprint.
  ResourceCaps residual() const;

  ResourceCaps Caps;
  SolverOptions Opts;
  std::deque<Entry> Queue;
  std::map<uint64_t, Flight> Flights; ///< Keyed by request Id.
  SchedulerStats Stats;
};

/// Tuning of the SLO weight controller. Like AdaptivePolicy.h's batch
/// thresholds these are policy constants, not per-request knobs; the
/// defaults keep adaptation gentle enough that one control interval
/// never swings a tenant's share by more than IncreaseFactor.
struct SloControllerOptions {
  /// Multiplicative increase applied to a tenant's boost when its
  /// windowed p95 queueing delay misses the SLO target.
  double IncreaseFactor = 1.5;
  /// Divisor applied when the tenant comfortably attains (p95 under
  /// Headroom * target): the boost decays back toward neutral so a
  /// once-starved tenant does not hold extra share forever.
  double DecayFactor = 1.2;
  /// Hard cap on the boost. This is the aggregate-fairness bound: a
  /// tenant's effective weight never exceeds MaxBoost times its static
  /// weight, so the solver's weighted shares stay within a bounded
  /// factor of the operator's configured ratios (property-tested).
  double MaxBoost = 8.0;
  /// Attainment headroom: only decay when p95 is safely under target,
  /// leaving a hysteresis band [Headroom * target, target] where the
  /// boost holds steady instead of oscillating.
  double Headroom = 0.8;
  /// A control window with fewer samples than this is ignored — a lone
  /// outlier must not re-weight the whole system.
  size_t MinSamples = 3;
};

/// Feedback from observed latency into the fair-share weight policy:
/// the control loop that turns the Sec. 3 fairness *mechanism* into an
/// SLO-driven serving policy (THEMIS/Gavel-style). Tenants declare a
/// target on per-request queueing time; the serving loop reports every
/// completion's aggregate queueing time via observe(), and once per
/// control interval maybeUpdate() compares each tenant's windowed p95
/// against its target:
///
///  - miss  (p95 > target):            boost *= IncreaseFactor;
///  - attain (p95 <= Headroom*target): boost /= DecayFactor;
///
/// with the boost clamped to [1, MaxBoost]. The effective weight handed
/// to the solver is static base weight x boost, so adaptation is
/// bounded: it can *favour* a missing tenant but never starve the
/// others (any two tenants' effective weights stay within MaxBoost of
/// their configured ratio). Tenants without a target keep boost 1.
class SloWeightController {
public:
  /// Observable adaptation behaviour.
  struct ControllerStats {
    uint64_t Updates = 0;   ///< Control intervals evaluated.
    uint64_t Increases = 0; ///< Boost raises (missed SLOs).
    uint64_t Decays = 0;    ///< Boost decays (comfortable attainment).
  };

  /// \p Targets maps tenant -> p95 queueing-delay target; \p
  /// BaseWeights carries the operator's static weights (absent tenants
  /// weigh 1). \p Interval is the control period in simulation time.
  SloWeightController(const std::map<int, double> &Targets,
                      const std::map<int, double> &BaseWeights,
                      double Interval, SloControllerOptions Opts = {});

  /// Records one completed request's queueing delay for \p Tenant's
  /// current control window.
  void observe(int Tenant, double QueueDelay);

  /// Runs the control law when a full interval has elapsed since the
  /// last update. \returns true when any tenant's weight changed (the
  /// caller should re-read weights for subsequent submissions).
  bool maybeUpdate(double Now);

  /// The effective solver weight of \p Tenant: static base x boost.
  double weight(int Tenant) const;

  /// The current adaptation boost of \p Tenant, in [1, MaxBoost].
  double boost(int Tenant) const;

  /// Effective weights of every tenant known to the controller.
  std::map<int, double> weights() const;

  const ControllerStats &stats() const { return Stats; }

private:
  struct TenantState {
    double Target = 0; ///< 0 = no SLO; boost stays 1.
    double Base = 1.0;
    double Boost = 1.0;
    std::vector<double> Window; ///< Queue delays since last update.
  };

  TenantState &state(int Tenant);

  double Interval;
  double NextUpdate;
  SloControllerOptions Opts;
  std::map<int, TenantState> Tenants;
  ControllerStats Stats;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_SCHEDULER_H
