//===- accelos/Scheduler.h - Round-based kernel scheduler -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Kernel Scheduler's round policy, extracted from the runtime so
/// the same component drives both the functional path (Runtime) and the
/// timing harness. It maintains a FIFO queue of pending kernel
/// execution requests and, at every scheduling boundary (a batch of
/// arrivals or the completion of the previous round), re-solves the
/// Sec. 3 fair shares over whatever is pending — the divisor K is
/// dynamic, shrinking as requests complete and growing as tenants
/// submit more work.
///
/// Requests the oversubscription clamp sheds (their minimum-share floor
/// could not fit alongside the others) are *deferred*: they stay queued
/// and are re-solved in a later, smaller round instead of being floored
/// onto an already-full device. A request that keeps losing to the
/// clamp is eventually granted a round of its own, so deferral never
/// becomes starvation.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_SCHEDULER_H
#define ACCEL_ACCELOS_SCHEDULER_H

#include "accelos/ResourceSolver.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace accel {
namespace accelos {

/// One queued kernel execution request.
struct RoundRequest {
  uint64_t Id = 0; ///< Caller-owned handle, returned in the grant.
  KernelDemand Demand;
};

/// A share grant for one member of a scheduling round.
struct RoundGrant {
  uint64_t Id = 0;
  /// Solved physical work groups. Positive for every request that asked
  /// for work; zero only for zero-request (idle) submissions.
  uint64_t WGs = 0;
};

/// Observable scheduler behaviour.
struct SchedulerStats {
  uint64_t RoundsPlanned = 0;
  /// Times a clamp-shed request was pushed into a later round.
  uint64_t Deferrals = 0;
  /// Times a repeatedly deferred head request was granted a solo round.
  uint64_t SoloRescues = 0;
};

/// Round-synchronous fair-share scheduler over one device's capacity.
class RoundScheduler {
public:
  /// A request deferred this many times is granted a round of its own.
  static constexpr uint32_t MaxDeferrals = 3;

  explicit RoundScheduler(const ResourceCaps &Caps,
                          SolverOptions Opts = {})
      : Caps(Caps), Opts(Opts) {}

  /// Queues a request (an arrival boundary: the next round's K grows).
  void submit(const RoundRequest &R) { Queue.push_back({R, 0}); }

  /// Plans the next round over everything pending: solves fair shares
  /// with K = pending(), pops and returns the granted requests, and
  /// keeps clamp-shed requests queued (in order) for a later round.
  /// Returns an empty vector only when nothing is pending.
  std::vector<RoundGrant> nextRound();

  size_t pending() const { return Queue.size(); }
  const SchedulerStats &stats() const { return Stats; }

  /// Drops every pending request (error recovery).
  void clear() { Queue.clear(); }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };

  /// Grants \p E a round of its own (K = 1).
  RoundGrant soloGrant(const Entry &E) const;

  ResourceCaps Caps;
  SolverOptions Opts;
  std::deque<Entry> Queue;
  SchedulerStats Stats;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_SCHEDULER_H
