//===- accelos/Scheduler.h - Round-based kernel scheduler -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Kernel Scheduler's round policy, extracted from the runtime so
/// the same component drives both the functional path (Runtime) and the
/// timing harness. It maintains a FIFO queue of pending kernel
/// execution requests and, at every scheduling boundary (a batch of
/// arrivals or the completion of the previous round), re-solves the
/// Sec. 3 fair shares over whatever is pending — the divisor K is
/// dynamic, shrinking as requests complete and growing as tenants
/// submit more work.
///
/// Requests the oversubscription clamp sheds (their minimum-share floor
/// could not fit alongside the others) are *deferred*: they stay queued
/// and are re-solved in a later, smaller round instead of being floored
/// onto an already-full device. A request that keeps losing to the
/// clamp is eventually granted a round of its own, so deferral never
/// becomes starvation.
///
/// Two admission disciplines share the queue/grant vocabulary:
///
///  - RoundScheduler: completion-round-synchronous — every grant of a
///    round ends before the next round is solved (the paper's global
///    scheduling boundary);
///  - ContinuousScheduler: event-driven — in-flight executions keep
///    their grants while newly arrived (or requeued sliced) requests
///    are admitted into the *residual* capacity at every
///    arrival/completion event, with no global barrier.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_SCHEDULER_H
#define ACCEL_ACCELOS_SCHEDULER_H

#include "accelos/ResourceSolver.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace accel {
namespace accelos {

/// One queued kernel execution request.
struct RoundRequest {
  uint64_t Id = 0; ///< Caller-owned handle, returned in the grant.
  KernelDemand Demand;
  /// Submitting tenant. The fair-share schedulers ignore it (weights
  /// arrive per-request in Demand.Weight); the stride scheduler charges
  /// this tenant's pass counter for every grant. Last so the
  /// widespread {Id, Demand} aggregate initialization keeps working.
  int Tenant = 0;
};

/// A share grant for one member of a scheduling round.
struct RoundGrant {
  uint64_t Id = 0;
  /// Solved physical work groups. Positive for every request that asked
  /// for work; zero only for zero-request (idle) submissions.
  uint64_t WGs = 0;
};

/// Observable scheduler behaviour.
struct SchedulerStats {
  /// Scheduling decisions solved: rounds for RoundScheduler, admission
  /// passes (one per arrival/completion event with a non-empty queue)
  /// for ContinuousScheduler.
  uint64_t RoundsPlanned = 0;
  /// Times a request was pushed past a scheduling decision: clamp-shed
  /// requeues for RoundScheduler; for ContinuousScheduler, the times a
  /// waiting request was overtaken by a younger grant in the same pass
  /// (the bypasses the anti-starvation bound counts).
  uint64_t Deferrals = 0;
  /// Times an anti-starvation escape engaged: solo rounds for
  /// RoundScheduler, forced idle-device grants for ContinuousScheduler.
  uint64_t SoloRescues = 0;
  /// Scheduling decisions that invoked solveFairShares. For
  /// ContinuousScheduler this is the fallback-to-full-solve counter of
  /// the incremental machinery: RoundsPlanned == FullSolves + FastPasses.
  uint64_t FullSolves = 0;
  /// Scheduling decisions served without a solve: ContinuousScheduler
  /// admission passes resolved by a structural fast path (underloaded
  /// device, or zero residual capacity), and every StrideScheduler pass.
  uint64_t FastPasses = 0;
};

/// Round-synchronous fair-share scheduler over one device's capacity.
class RoundScheduler {
public:
  /// A request deferred this many times is granted a round of its own.
  static constexpr uint32_t MaxDeferrals = 3;

  explicit RoundScheduler(const ResourceCaps &Caps,
                          SolverOptions Opts = {})
      : Caps(Caps), Opts(Opts) {}

  /// Queues a request (an arrival boundary: the next round's K grows).
  void submit(const RoundRequest &R) { Queue.push_back({R, 0}); }

  /// Plans the next round over everything pending: solves fair shares
  /// with K = pending(), pops and returns the granted requests, and
  /// keeps clamp-shed requests queued (in order) for a later round.
  /// Returns an empty vector only when nothing is pending.
  std::vector<RoundGrant> nextRound();

  size_t pending() const { return Queue.size(); }
  const SchedulerStats &stats() const { return Stats; }

  /// Drops every pending request (error recovery).
  void clear() { Queue.clear(); }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };

  /// Grants \p E a round of its own (K = 1).
  RoundGrant soloGrant(const Entry &E) const;

  ResourceCaps Caps;
  SolverOptions Opts;
  std::deque<Entry> Queue;
  SchedulerStats Stats;
};

/// Tuning of the ContinuousScheduler's incremental-solving machinery.
struct SchedulerOptions {
  /// Serve admission passes through the structural fast paths when they
  /// apply (see ContinuousScheduler). Grants are bit-identical either
  /// way; disabling forces a full solve at every event — the
  /// pre-optimization hot path, kept as the speedup baseline of
  /// bench/serve_scale and the reference side of differential tests.
  bool Incremental = true;
  /// Debug/test mode: every fast-path pass also runs the full solve and
  /// asserts the fast path reproduced its shares exactly (debug builds;
  /// compiles away under NDEBUG).
  bool SelfCheck = false;
};

/// Event-driven fair-share scheduler: the continuous-admission growth
/// of RoundScheduler. Instead of waiting for a whole round to complete,
/// the caller reports individual completions (complete()) and asks for
/// new admissions (admit()) at every arrival/completion event; pending
/// requests are granted out of the capacity left over by in-flight
/// executions, so a request arriving just after others started never
/// waits out their makespan when the device has room.
///
/// Fairness without preemption: in-flight executions keep their grants,
/// but they stay in the fair-share divisor, so a newly admitted request
/// only claims its fair fraction of the device. The quantum slicing
/// done by the serving loop bounds how long any grant occupies its
/// share, which is what lets the allocation converge to the fair point
/// without ever revoking work.
///
/// Anti-starvation: a pending request that is overtaken (a younger
/// request admitted past it) MaxDeferrals times blocks all younger
/// admissions until capacity drains enough to admit it — bounded
/// bypassing, in place of RoundScheduler's solo rounds.
///
/// Incremental solving: the serving hot path calls admit() at *every*
/// arrival/completion event, and most events do not change the solve's
/// structure. Two structural rules recognize those events in O(queue)
/// without invoking the solver, feeding the exact shares the solver
/// would have produced into the unchanged grant loop (so the grant
/// history is bit-identical by construction):
///
///  - underload: the aggregate footprint of every in-flight grant plus
///    every queued request at its full size fits the device, so
///    saturation would grow each share to its request anyway;
///  - no residual capacity: the device is occupied and not one work
///    group of any queued request fits the residual, so every grant
///    would be clamped to zero no matter what the solver said.
///
/// Everything else falls back to a full solveFairShares;
/// stats().FullSolves / FastPasses count the split, and
/// SchedulerOptions::SelfCheck re-derives every fast-path result with a
/// fresh solve and asserts equality (debug builds).
class ContinuousScheduler {
public:
  /// A request overtaken this many times blocks younger admissions.
  static constexpr uint32_t MaxDeferrals = RoundScheduler::MaxDeferrals;

  explicit ContinuousScheduler(const ResourceCaps &Caps,
                               SolverOptions Opts = {},
                               SchedulerOptions SchedOpts = {})
      : Caps(Caps), Opts(Opts), SchedOpts(SchedOpts) {}

  /// Queues a request (an arrival event; call admit() to act on it).
  void submit(const RoundRequest &R);

  /// Marks the in-flight execution \p Id complete, returning its
  /// capacity to the pool (a completion event; call admit() next).
  void complete(uint64_t Id);

  /// Narrows the reserved footprint of in-flight execution \p Id to
  /// the \p WGs actually launched. A quantum slice shorter than the
  /// grant runs fewer physical work groups; the difference is idle
  /// capacity the next admission pass may hand out.
  void shrink(uint64_t Id, uint64_t WGs);

  /// Plans admissions for the current event: re-solves fair shares over
  /// everything active (in-flight + pending) and grants each pending
  /// request the smaller of its fair share and what still fits the
  /// residual capacity. Equal-weight requests are served in FIFO order
  /// (the paper default, kept bit-identical); with non-equal weights
  /// the queue is served highest-weight first — under saturation FIFO
  /// would make every requeued slice of a heavy tenant wait out the
  /// lighter queue, defeating the weights — except that a starving
  /// request (MaxDeferrals overtakes) always goes first. Requests that
  /// get nothing stay queued. Zero-work requests are granted zero work
  /// groups and leave the queue immediately. An idle device never
  /// refuses its oldest request (work conservation), even when the
  /// clamp shed it.
  ///
  /// The returned reference is into a buffer reused by the next admit()
  /// call — consume (or copy) it before then.
  const std::vector<RoundGrant> &admit();

  size_t pending() const { return Queue.size(); }
  size_t inFlight() const { return Flights.size(); }
  const SchedulerStats &stats() const { return Stats; }
  /// stats() under the name the serving harness reports it as.
  const SchedulerStats &schedulerStats() const { return Stats; }

  /// Drops every pending request (error recovery); in-flight
  /// executions are unaffected.
  void clear() {
    Queue.clear();
    QueueUse = ResourceUse{};
  }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };
  /// One admitted, not-yet-completed execution and the footprint it
  /// holds.
  struct Flight {
    KernelDemand Demand;
    uint64_t WGs = 0;
  };

  /// Device capacity minus every in-flight footprint (O(1): maintained
  /// as the FlightUse aggregate, not re-summed).
  ResourceCaps residual() const;

  /// Computes fair-share targets for the queue tail of the current
  /// admission pass into Shares (offset by QueueBase), via a structural
  /// fast path when one applies, else a full solve.
  void solveTargets(size_t QueueBase);

  ResourceCaps Caps;
  SolverOptions Opts;
  SchedulerOptions SchedOpts;
  std::deque<Entry> Queue;
  std::map<uint64_t, Flight> Flights; ///< Keyed by request Id.
  /// Aggregate footprint of every in-flight grant; kept in sync by
  /// admit()/shrink()/complete().
  ResourceUse FlightUse;
  /// Aggregate footprint of every queued request at its full
  /// (zero-thread-normalized) size; kept in sync by submit()/admit().
  ResourceUse QueueUse;
  SchedulerStats Stats;
  /// Scratch reused across admission passes (allocation-free steady
  /// state on the serving hot path).
  std::vector<RoundGrant> Grants;
  std::vector<KernelDemand> Demands;
  std::vector<uint64_t> Shares;
  std::vector<size_t> Order;
  std::deque<Entry> Kept;
  /// Working storage for the allocation-free solver overload, used on
  /// full solves when SchedOpts.Incremental is set.
  SolverScratch Scratch;
  /// Monotonic lower bound on the WGThreads of every work-carrying
  /// request ever submitted; lets hot paths prove "nothing can fit the
  /// residual" in O(1) (a fit needs at least one slot and at least
  /// MinWGThreads threads). Never reset — a lower bound stays valid.
  uint64_t MinWGThreads = UINT64_MAX;
};

/// Deterministic proportional-share admission without the solver:
/// stride scheduling (Waldspurger/Weihl; CS140 chap9) over the tenant
/// weight vector, as a cheap approximate alternative to the exact
/// fair-share solve. Each tenant holds tickets equal to its current
/// request weight and a stride inversely proportional to them; every
/// admission pass repeatedly picks the minimum-pass tenant from an
/// ordered index (O(log n) per pick), grants its oldest request as many
/// work groups as fit the residual capacity (capped at an equal split
/// of the pass's starting residual when several tenants are waiting, so
/// space is shared while the weights act through pick frequency), and
/// advances that tenant's pass by its stride. Weights therefore bind
/// over *time* — a weight-2 tenant is picked twice as often — rather
/// than through per-event share re-solving.
///
/// Interface-compatible with ContinuousScheduler (submit / admit /
/// shrink / complete / stats), so the serving loop and benches drive
/// either through the same template code. Fairness is approximate:
/// serve_scale gates its peak windowed unfairness within 2x of the
/// exact solver's while admission passes stay O(grants * log tenants).
///
/// Anti-starvation mirrors ContinuousScheduler: a tenant head bypassed
/// MaxDeferrals times blocks younger grants for the rest of the pass; a
/// lagging tenant's frozen pass value also sinks it to the front of the
/// pick order, so bypassing is doubly bounded. New or reactivated
/// tenants join at max(own pass, global pass) — the standard stride
/// re-entry rule — so sleeping never banks credit.
class StrideScheduler {
public:
  static constexpr uint32_t MaxDeferrals = RoundScheduler::MaxDeferrals;
  /// Stride numerator (stride = Stride1 / tickets, in doubles — exact
  /// for every power-of-two-free weight ratio that matters here, and
  /// deterministic regardless).
  static constexpr double Stride1 = 1 << 20;

  explicit StrideScheduler(const ResourceCaps &Caps) : Caps(Caps) {}

  /// Queues a request under R.Tenant's account (an arrival event). The
  /// tenant's tickets are refreshed from R.Demand.Weight, so adaptive
  /// weight changes take effect on the next submission.
  void submit(const RoundRequest &R);

  /// Marks the in-flight execution \p Id complete, returning its
  /// capacity to the pool.
  void complete(uint64_t Id);

  /// Narrows the reserved footprint of in-flight execution \p Id (see
  /// ContinuousScheduler::shrink).
  void shrink(uint64_t Id, uint64_t WGs);

  /// Plans admissions for the current event (see class comment). The
  /// returned reference is into a buffer reused by the next call.
  const std::vector<RoundGrant> &admit();

  size_t pending() const { return Pending; }
  size_t inFlight() const { return Flights.size(); }
  const SchedulerStats &stats() const { return Stats; }
  const SchedulerStats &schedulerStats() const { return Stats; }

  /// Drops every pending request (error recovery); in-flight
  /// executions keep their grants, tenants keep their pass values.
  void clear();

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };
  struct Flight {
    KernelDemand Demand;
    uint64_t WGs = 0;
  };
  struct TenantState {
    double Tickets = 1.0;
    double Stride = Stride1;
    double Pass = 0;
    std::deque<Entry> Queue;
  };

  ResourceCaps Caps;
  std::map<int, TenantState> Tenants;
  /// (Pass, tenant) of every tenant with queued work — the min-pass
  /// pick index.
  std::set<std::pair<double, int>> Ready;
  std::map<uint64_t, Flight> Flights; ///< Keyed by request Id.
  ResourceUse FlightUse;
  /// High-water mark of granted passes; re-entry level for idle
  /// tenants.
  double GlobalPass = 0;
  size_t Pending = 0;
  SchedulerStats Stats;
  std::vector<RoundGrant> Grants;  ///< Reused across passes.
  std::vector<int> Skipped;        ///< Pass-local scratch.
};

/// Tuning of the SLO weight controller. Like AdaptivePolicy.h's batch
/// thresholds these are policy constants, not per-request knobs; the
/// defaults keep adaptation gentle enough that one control interval
/// never swings a tenant's share by more than IncreaseFactor.
struct SloControllerOptions {
  /// Multiplicative increase applied to a tenant's boost when its
  /// windowed p95 queueing delay misses the SLO target.
  double IncreaseFactor = 1.5;
  /// Divisor applied when the tenant comfortably attains (p95 under
  /// Headroom * target): the boost decays back toward neutral so a
  /// once-starved tenant does not hold extra share forever.
  double DecayFactor = 1.2;
  /// Hard cap on the boost. This is the aggregate-fairness bound: a
  /// tenant's effective weight never exceeds MaxBoost times its static
  /// weight, so the solver's weighted shares stay within a bounded
  /// factor of the operator's configured ratios (property-tested).
  double MaxBoost = 8.0;
  /// Attainment headroom: only decay when p95 is safely under target,
  /// leaving a hysteresis band [Headroom * target, target] where the
  /// boost holds steady instead of oscillating.
  double Headroom = 0.8;
  /// A control window with fewer samples than this is ignored — a lone
  /// outlier must not re-weight the whole system.
  size_t MinSamples = 3;
};

/// Feedback from observed latency into the fair-share weight policy:
/// the control loop that turns the Sec. 3 fairness *mechanism* into an
/// SLO-driven serving policy (THEMIS/Gavel-style). Tenants declare a
/// target on per-request queueing time; the serving loop reports every
/// completion's aggregate queueing time via observe(), and once per
/// control interval maybeUpdate() compares each tenant's windowed p95
/// against its target:
///
///  - miss  (p95 > target):            boost *= IncreaseFactor;
///  - attain (p95 <= Headroom*target): boost /= DecayFactor;
///
/// with the boost clamped to [1, MaxBoost]. The effective weight handed
/// to the solver is static base weight x boost, so adaptation is
/// bounded: it can *favour* a missing tenant but never starve the
/// others (any two tenants' effective weights stay within MaxBoost of
/// their configured ratio). Tenants without a target keep boost 1.
class SloWeightController {
public:
  /// Observable adaptation behaviour.
  struct ControllerStats {
    uint64_t Updates = 0;   ///< Control intervals evaluated.
    uint64_t Increases = 0; ///< Boost raises (missed SLOs).
    uint64_t Decays = 0;    ///< Boost decays (comfortable attainment).
  };

  /// \p Targets maps tenant -> p95 queueing-delay target; \p
  /// BaseWeights carries the operator's static weights (absent tenants
  /// weigh 1). \p Interval is the control period in simulation time.
  SloWeightController(const std::map<int, double> &Targets,
                      const std::map<int, double> &BaseWeights,
                      double Interval, SloControllerOptions Opts = {});

  /// Records one completed request's queueing delay for \p Tenant's
  /// current control window.
  void observe(int Tenant, double QueueDelay);

  /// Runs the control law when a full interval has elapsed since the
  /// last update. \returns true when any tenant's weight changed (the
  /// caller should re-read weights for subsequent submissions).
  bool maybeUpdate(double Now);

  /// The effective solver weight of \p Tenant: static base x boost.
  double weight(int Tenant) const;

  /// The current adaptation boost of \p Tenant, in [1, MaxBoost].
  double boost(int Tenant) const;

  /// Effective weights of every tenant known to the controller.
  std::map<int, double> weights() const;

  const ControllerStats &stats() const { return Stats; }

private:
  struct TenantState {
    double Target = 0; ///< 0 = no SLO; boost stays 1.
    double Base = 1.0;
    double Boost = 1.0;
    std::vector<double> Window; ///< Queue delays since last update.
  };

  TenantState &state(int Tenant);

  double Interval;
  double NextUpdate;
  SloControllerOptions Opts;
  std::map<int, TenantState> Tenants;
  ControllerStats Stats;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_SCHEDULER_H
