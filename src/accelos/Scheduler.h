//===- accelos/Scheduler.h - Round-based kernel scheduler -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Kernel Scheduler's round policy, extracted from the runtime so
/// the same component drives both the functional path (Runtime) and the
/// timing harness. It maintains a FIFO queue of pending kernel
/// execution requests and, at every scheduling boundary (a batch of
/// arrivals or the completion of the previous round), re-solves the
/// Sec. 3 fair shares over whatever is pending — the divisor K is
/// dynamic, shrinking as requests complete and growing as tenants
/// submit more work.
///
/// Requests the oversubscription clamp sheds (their minimum-share floor
/// could not fit alongside the others) are *deferred*: they stay queued
/// and are re-solved in a later, smaller round instead of being floored
/// onto an already-full device. A request that keeps losing to the
/// clamp is eventually granted a round of its own, so deferral never
/// becomes starvation.
///
/// Two admission disciplines share the queue/grant vocabulary:
///
///  - RoundScheduler: completion-round-synchronous — every grant of a
///    round ends before the next round is solved (the paper's global
///    scheduling boundary);
///  - ContinuousScheduler: event-driven — in-flight executions keep
///    their grants while newly arrived (or requeued sliced) requests
///    are admitted into the *residual* capacity at every
///    arrival/completion event, with no global barrier.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_SCHEDULER_H
#define ACCEL_ACCELOS_SCHEDULER_H

#include "accelos/ResourceSolver.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace accel {
namespace accelos {

/// One queued kernel execution request.
struct RoundRequest {
  uint64_t Id = 0; ///< Caller-owned handle, returned in the grant.
  KernelDemand Demand;
};

/// A share grant for one member of a scheduling round.
struct RoundGrant {
  uint64_t Id = 0;
  /// Solved physical work groups. Positive for every request that asked
  /// for work; zero only for zero-request (idle) submissions.
  uint64_t WGs = 0;
};

/// Observable scheduler behaviour.
struct SchedulerStats {
  /// Scheduling decisions solved: rounds for RoundScheduler, admission
  /// passes (one per arrival/completion event with a non-empty queue)
  /// for ContinuousScheduler.
  uint64_t RoundsPlanned = 0;
  /// Times a request was pushed past a scheduling decision: clamp-shed
  /// requeues for RoundScheduler; for ContinuousScheduler, the times a
  /// waiting request was overtaken by a younger grant in the same pass
  /// (the bypasses the anti-starvation bound counts).
  uint64_t Deferrals = 0;
  /// Times an anti-starvation escape engaged: solo rounds for
  /// RoundScheduler, forced idle-device grants for ContinuousScheduler.
  uint64_t SoloRescues = 0;
};

/// Round-synchronous fair-share scheduler over one device's capacity.
class RoundScheduler {
public:
  /// A request deferred this many times is granted a round of its own.
  static constexpr uint32_t MaxDeferrals = 3;

  explicit RoundScheduler(const ResourceCaps &Caps,
                          SolverOptions Opts = {})
      : Caps(Caps), Opts(Opts) {}

  /// Queues a request (an arrival boundary: the next round's K grows).
  void submit(const RoundRequest &R) { Queue.push_back({R, 0}); }

  /// Plans the next round over everything pending: solves fair shares
  /// with K = pending(), pops and returns the granted requests, and
  /// keeps clamp-shed requests queued (in order) for a later round.
  /// Returns an empty vector only when nothing is pending.
  std::vector<RoundGrant> nextRound();

  size_t pending() const { return Queue.size(); }
  const SchedulerStats &stats() const { return Stats; }

  /// Drops every pending request (error recovery).
  void clear() { Queue.clear(); }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };

  /// Grants \p E a round of its own (K = 1).
  RoundGrant soloGrant(const Entry &E) const;

  ResourceCaps Caps;
  SolverOptions Opts;
  std::deque<Entry> Queue;
  SchedulerStats Stats;
};

/// Event-driven fair-share scheduler: the continuous-admission growth
/// of RoundScheduler. Instead of waiting for a whole round to complete,
/// the caller reports individual completions (complete()) and asks for
/// new admissions (admit()) at every arrival/completion event; pending
/// requests are granted out of the capacity left over by in-flight
/// executions, so a request arriving just after others started never
/// waits out their makespan when the device has room.
///
/// Fairness without preemption: in-flight executions keep their grants,
/// but they stay in the fair-share divisor, so a newly admitted request
/// only claims its fair fraction of the device. The quantum slicing
/// done by the serving loop bounds how long any grant occupies its
/// share, which is what lets the allocation converge to the fair point
/// without ever revoking work.
///
/// Anti-starvation: a pending request that is overtaken (a younger
/// request admitted past it) MaxDeferrals times blocks all younger
/// admissions until capacity drains enough to admit it — bounded
/// bypassing, in place of RoundScheduler's solo rounds.
class ContinuousScheduler {
public:
  /// A request overtaken this many times blocks younger admissions.
  static constexpr uint32_t MaxDeferrals = RoundScheduler::MaxDeferrals;

  explicit ContinuousScheduler(const ResourceCaps &Caps,
                               SolverOptions Opts = {})
      : Caps(Caps), Opts(Opts) {}

  /// Queues a request (an arrival event; call admit() to act on it).
  void submit(const RoundRequest &R) { Queue.push_back({R, 0}); }

  /// Marks the in-flight execution \p Id complete, returning its
  /// capacity to the pool (a completion event; call admit() next).
  void complete(uint64_t Id);

  /// Narrows the reserved footprint of in-flight execution \p Id to
  /// the \p WGs actually launched. A quantum slice shorter than the
  /// grant runs fewer physical work groups; the difference is idle
  /// capacity the next admission pass may hand out.
  void shrink(uint64_t Id, uint64_t WGs);

  /// Plans admissions for the current event: re-solves fair shares over
  /// everything active (in-flight + pending) and grants each pending
  /// request, in FIFO order, the smaller of its fair share and what
  /// still fits the residual capacity. Requests that get nothing stay
  /// queued. Zero-work requests are granted zero work groups and leave
  /// the queue immediately. An idle device never refuses its oldest
  /// request (work conservation), even when the clamp shed it.
  std::vector<RoundGrant> admit();

  size_t pending() const { return Queue.size(); }
  size_t inFlight() const { return Flights.size(); }
  const SchedulerStats &stats() const { return Stats; }

  /// Drops every pending request (error recovery); in-flight
  /// executions are unaffected.
  void clear() { Queue.clear(); }

private:
  struct Entry {
    RoundRequest R;
    uint32_t DeferCount = 0;
  };
  /// One admitted, not-yet-completed execution and the footprint it
  /// holds.
  struct Flight {
    KernelDemand Demand;
    uint64_t WGs = 0;
  };

  /// Device capacity minus every in-flight footprint.
  ResourceCaps residual() const;

  ResourceCaps Caps;
  SolverOptions Opts;
  std::deque<Entry> Queue;
  std::map<uint64_t, Flight> Flights; ///< Keyed by request Id.
  SchedulerStats Stats;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_SCHEDULER_H
