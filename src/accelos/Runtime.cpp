//===- accelos/Runtime.cpp - The accelOS host runtime ------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/Runtime.h"

#include "accelos/AdmissionLoop.h"
#include "accelos/VirtualNDRange.h"
#include "kir/Module.h"
#include "kir/RtLayout.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/CostPrior.h"
#include "kir/analysis/Intervals.h"
#include "kir/analysis/Uniformity.h"
#include "passes/ConstantFold.h"
#include "passes/DCE.h"
#include "passes/Inliner.h"
#include "passes/Pass.h"
#include "passes/RegisterEstimator.h"

#include <algorithm>

using namespace accel;
using namespace accel::accelos;

//===----------------------------------------------------------------------===//
// MemoryManager
//===----------------------------------------------------------------------===//

Expected<ocl::Buffer> MemoryManager::allocate(int AppId, uint64_t Size) {
  Expected<ocl::Buffer> Buf = ocl::Buffer::create(*Dev, Size);
  if (!Buf) {
    // Paper Sec. 5: when accelerator memory cannot serve every
    // application, some are paused until space frees up.
    Paused.insert(AppId);
    return makeError("application " + std::to_string(AppId) +
                     " paused: " + Buf.message());
  }
  Usage[AppId] += Size;
  return Buf;
}

void MemoryManager::released(int AppId, uint64_t Size) {
  auto It = Usage.find(AppId);
  if (It != Usage.end())
    It->second -= Size < It->second ? Size : It->second;
  // Optimistically resume everyone; their next allocation re-checks.
  Paused.clear();
}

//===----------------------------------------------------------------------===//
// RequestHandle
//===----------------------------------------------------------------------===//

RequestStatus RequestHandle::status() const { return RT->status(Id); }
bool RequestHandle::done() const { return RT->done(Id); }
Expected<ScheduledExecution> RequestHandle::wait() { return RT->wait(Id); }

//===----------------------------------------------------------------------===//
// Runtime: JIT path (FSM (a))
//===----------------------------------------------------------------------===//

Expected<ocl::Program *> Runtime::createProgram(int AppId,
                                                const std::string &Source) {
  ++Stats.ProgramsJitted;
  auto Prog = std::make_unique<ocl::Program>(*Dev, Source);
  // Front end ("OpenCL C -> IR", Fig. 7b).
  if (Error E = Prog->build())
    return Expected<ocl::Program *>(std::move(E));

  // accelOS JIT pipeline: GPU-compiler-style cleanups, then the
  // scheduling transformation, linked against the runtime built-ins.
  passes::PassManager PM;
  PM.addPass(std::make_unique<passes::InlinerPass>());
  PM.addPass(std::make_unique<passes::ConstantFoldPass>());
  PM.addPass(std::make_unique<passes::DCEPass>());
  auto Transform = std::make_unique<passes::AccelOSTransform>();
  auto *TPtr = Transform.get();
  PM.addPass(std::move(Transform));
  if (Error E = PM.run(*Prog->module()))
    return Expected<ocl::Program *>(std::move(E));

  JittedProgram JP;
  JP.Prog = std::move(Prog);
  JP.Info = TPtr->info();
  JP.AppId = AppId;
  Programs.push_back(std::move(JP));
  return Programs.back().Prog.get();
}

const passes::TransformedKernelInfo *
Runtime::kernelInfo(const ocl::Program *Prog,
                    const std::string &Name) const {
  for (const JittedProgram &JP : Programs) {
    if (JP.Prog.get() != Prog)
      continue;
    auto It = JP.Info.find(Name);
    return It == JP.Info.end() ? nullptr : &It->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Runtime: request submission (FSM (b))
//===----------------------------------------------------------------------===//

double Runtime::perItemCyclesLocked(const passes::TransformedKernelInfo *Info,
                                    kir::Function *Comp) {
  auto It = PerItemOf.find(Info);
  if (It != PerItemOf.end())
    return It->second;
  // Static cost prior (kir/analysis): the per-work-item cycle estimate
  // that prices this kernel's virtual groups in the timing simulation —
  // the same prior the cold-start scheduler uses.
  kir::analysis::Cfg G(*Comp);
  kir::analysis::UniformityAnalysis UA(G);
  kir::analysis::IntervalAnalysis IA(G);
  kir::analysis::CostEstimate Est = kir::analysis::estimateCost(G, UA, IA);
  PerItemOf[Info] = Est.PerItemCycles;
  return Est.PerItemCycles;
}

Expected<uint64_t> Runtime::validateLocked(int AppId, ocl::Kernel &K,
                                           const kir::NDRangeCfg &Range,
                                           double At, CompletionCallback Cb) {
  ++Stats.KernelsScheduled;
  if (Memory.isPaused(AppId))
    return Expected<uint64_t>(
        makeError("application " + std::to_string(AppId) +
                  " is paused for memory pressure"));
  const passes::TransformedKernelInfo *Info =
      kernelInfo(&K.program(), K.name());
  if (Info == nullptr)
    return Expected<uint64_t>(makeError(
        "kernel '" + K.name() + "' was not compiled through accelOS"));
  for (unsigned D = 0; D != 3; ++D) {
    if (Range.LocalSize[D] == 0)
      return Expected<uint64_t>(makeError("zero local size"));
    if (Range.GlobalSize[D] % Range.LocalSize[D] != 0)
      return Expected<uint64_t>(
          makeError("global size not divisible by local size"));
  }

  // The Sec. 3 demand terms and timing costs, captured at the arrival
  // boundary.
  kir::Function *Comp =
      K.program().module()->getFunction(Info->ComputeFnName);
  uint64_t Id = NextRequestId++;
  RequestState R;
  R.AppId = AppId;
  R.Kernel = &K;
  R.Range = Range;
  R.Info = Info;
  R.InstCount = Info->ComputeInstCount;
  R.Demand.WGThreads = Range.workGroupSize();
  R.Demand.LocalMemPerWG =
      Info->LocalMemBytes + kir::rtlayout::schedDescBytes();
  R.Demand.RegsPerThread = passes::estimateRegisters(*Comp);
  R.Demand.RequestedWGs = Range.totalGroups();
  auto WIt = Weights.find(AppId);
  R.Demand.Weight = WIt == Weights.end() ? 1.0 : WIt->second;
  double WGCost = perItemCyclesLocked(Info, Comp) *
                  static_cast<double>(R.Demand.WGThreads);
  R.WGCosts.assign(Range.totalGroups(), WGCost);
  R.Cb = std::move(Cb);
  R.Exec.KernelName = K.name();
  R.Exec.AppId = AppId;
  R.Exec.RequestId = Id;
  R.Exec.ArrivalTime = At;
  R.Exec.OriginalWGs = Range.totalGroups();
  Requests.emplace(Id, std::move(R));
  StatusOf.push_back(static_cast<uint8_t>(RequestStatus::Queued));
  Arrivals.push({At, Id});
  return Expected<uint64_t>(std::move(Id));
}

Expected<RequestHandle> Runtime::submit(int AppId, ocl::Kernel &K,
                                        const kir::NDRangeCfg &Range,
                                        CompletionCallback Cb) {
  std::lock_guard<std::mutex> L(Mu);
  Expected<uint64_t> Id =
      validateLocked(AppId, K, Range, Session.now(), std::move(Cb));
  if (!Id)
    return Expected<RequestHandle>(Id.takeError());
  return Expected<RequestHandle>(RequestHandle(this, *Id));
}

Expected<RequestHandle> Runtime::submitAt(int AppId, ocl::Kernel &K,
                                          const kir::NDRangeCfg &Range,
                                          double At, CompletionCallback Cb) {
  std::lock_guard<std::mutex> L(Mu);
  double Now = Session.now();
  Expected<uint64_t> Id =
      validateLocked(AppId, K, Range, At < Now ? Now : At, std::move(Cb));
  if (!Id)
    return Expected<RequestHandle>(Id.takeError());
  return Expected<RequestHandle>(RequestHandle(this, *Id));
}

Error Runtime::enqueueKernel(int AppId, ocl::Kernel &K,
                             const kir::NDRangeCfg &Range) {
  Expected<RequestHandle> H = submit(AppId, K, Range);
  if (!H)
    return H.takeError();
  return Error::success();
}

void Runtime::onCompletion(CompletionCallback Cb) {
  std::lock_guard<std::mutex> L(Mu);
  GlobalCbs.push_back(std::move(Cb));
}

Expected<KernelCostModel> Runtime::costModel(ocl::Kernel &K,
                                             const kir::NDRangeCfg &Range) {
  std::lock_guard<std::mutex> L(Mu);
  const passes::TransformedKernelInfo *Info =
      kernelInfo(&K.program(), K.name());
  if (Info == nullptr)
    return Expected<KernelCostModel>(makeError(
        "kernel '" + K.name() + "' was not compiled through accelOS"));
  kir::Function *Comp =
      K.program().module()->getFunction(Info->ComputeFnName);
  KernelCostModel M;
  M.Demand.WGThreads = Range.workGroupSize();
  M.Demand.LocalMemPerWG =
      Info->LocalMemBytes + kir::rtlayout::schedDescBytes();
  M.Demand.RegsPerThread = passes::estimateRegisters(*Comp);
  M.Demand.RequestedWGs = Range.totalGroups();
  M.Demand.Weight = 1.0;
  M.WGCost = perItemCyclesLocked(Info, Comp) *
             static_cast<double>(M.Demand.WGThreads);
  M.ComputeInstCount = Info->ComputeInstCount;
  return Expected<KernelCostModel>(std::move(M));
}

//===----------------------------------------------------------------------===//
// Runtime: observability
//===----------------------------------------------------------------------===//

RequestStatus Runtime::status(uint64_t Id) const {
  std::lock_guard<std::mutex> L(Mu);
  if (Id >= StatusOf.size())
    return RequestStatus::Queued;
  return static_cast<RequestStatus>(StatusOf[Id]);
}

size_t Runtime::pendingRequests() const {
  std::lock_guard<std::mutex> L(Mu);
  return Requests.size();
}

double Runtime::now() const {
  std::lock_guard<std::mutex> L(Mu);
  return Session.now();
}

const SchedulerStats &Runtime::schedulerStats() const {
  switch (Opts.Mode) {
  case RuntimeOptions::Admission::RoundSync:
    return RoundSched.stats();
  case RuntimeOptions::Admission::Stride:
    return StrideSched.stats();
  case RuntimeOptions::Admission::Continuous:
    break;
  }
  return ContSched.stats();
}

//===----------------------------------------------------------------------===//
// Runtime: the pump
//===----------------------------------------------------------------------===//

Error Runtime::runFunctionalLocked(RequestState &R, uint64_t GrantWGs) {
  uint64_t Batch =
      cappedBatchFor(Mode, R.InstCount, R.Range.totalGroups(), GrantWGs);
  R.Exec.Batch = Batch;
  Expected<uint64_t> Rt = writeVirtualNDRange(Dev->memory(), R.Range, Batch);
  if (!Rt)
    return Rt.takeError();

  // Alter the global size to the reduced number of work groups; the
  // work-group size and dimensionality are preserved (Sec. 5). The
  // reduced physical groups are laid out along dimension 0.
  kir::NDRangeCfg Reduced;
  Reduced.WorkDim = R.Range.WorkDim;
  for (unsigned D = 0; D != 3; ++D) {
    Reduced.LocalSize[D] = R.Range.LocalSize[D];
    Reduced.GlobalSize[D] = R.Range.LocalSize[D];
  }
  Reduced.GlobalSize[0] = GrantWGs * R.Range.LocalSize[0];

  // The scheduling kernel takes the original arguments plus rt.
  unsigned RtArgIndex = R.Kernel->function()->numArguments() - 1;
  if (Error E = R.Kernel->setArg(
          RtArgIndex,
          ocl::KernelArg::scalarI64(static_cast<int64_t>(*Rt)))) {
    releaseVirtualNDRange(Dev->memory(), *Rt);
    return E;
  }
  Expected<std::vector<uint64_t>> Args = R.Kernel->packedArgs();
  if (!Args) {
    releaseVirtualNDRange(Dev->memory(), *Rt);
    return Args.takeError();
  }
  Expected<kir::ExecStats> ES =
      Dev->interpreter().run(*R.Kernel->function(), *Args, Reduced);
  releaseVirtualNDRange(Dev->memory(), *Rt);
  if (!ES)
    return ES.takeError();
  R.Exec.Stats = ES.take();
  return Error::success();
}

Runtime::GrantOutcome Runtime::buildGrantLocked(uint64_t Id, uint64_t WGs,
                                                double T,
                                                bool SliceByQuantum) {
  GrantOutcome O;
  if (Opts.RecordGrantHistory)
    GrantLog.push_back({Id, WGs});
  RequestState &R = Requests.at(Id);
  if (!R.Started) {
    R.Started = true;
    StatusOf[Id] = static_cast<uint8_t>(RequestStatus::Running);
    ReportQueue.push_back(Id);
    R.Exec.AdmitTime = T;
    R.Exec.PhysicalWGs = WGs;
    if (R.WGCosts.empty()) {
      // Zero-work request: retires at the admission boundary.
      R.Exec.StartTime = T;
      R.Exec.EndTime = T;
      finalizeLocked(Id);
      return O;
    }
    // Functional execution happens once, at the first grant, over the
    // whole virtual range — exactly the legacy flush's execution; the
    // later slices only refine the timing dimension.
    if (Error E = runFunctionalLocked(R, WGs)) {
      std::string Msg = E.message();
      O.Failed = true;
      failLocked(Id, std::move(Msg));
      return O;
    }
  }

  // Timing slice over [Cursor, End) of the virtual range.
  size_t End = SliceByQuantum
                   ? quantumSliceEnd(R.WGCosts, R.Cursor, WGs,
                                     R.Demand.WGThreads, 1.0,
                                     Opts.SliceQuantum)
                   : R.WGCosts.size();
  sim::KernelLaunchDesc L;
  L.Name = R.Exec.KernelName;
  L.AppId = static_cast<int>(Id); // request-id channel through the sim
  L.ArrivalTime = T;
  L.WGThreads = R.Demand.WGThreads;
  L.LocalMemPerWG = R.Demand.LocalMemPerWG;
  L.RegsPerThread = R.Demand.RegsPerThread;
  L.IssueEfficiency = 1.0;
  L.Mode = sim::KernelLaunchDesc::ModeKind::WorkQueue;
  L.ViewCosts = R.WGCosts.data();
  L.ViewBegin = R.Cursor;
  L.ViewEnd = End;
  uint64_t SliceLen = End - R.Cursor;
  L.PhysicalWGs =
      std::min<uint64_t>(std::max<uint64_t>(WGs, 1), SliceLen);
  L.Batch = cappedBatchFor(Mode, R.InstCount, SliceLen, L.PhysicalWGs);
  R.Cursor = End;
  ++R.Exec.Slices;
  O.Launch.emplace(std::move(L));
  return O;
}

template <typename SchedulerT>
void Runtime::resubmitLocked(SchedulerT &Sched, uint64_t Id) {
  RequestState &R = Requests.at(Id);
  RoundRequest RR;
  RR.Id = Id;
  RR.Tenant = R.AppId;
  RR.Demand = R.Demand;
  RR.Demand.RequestedWGs = R.WGCosts.size() - R.Cursor;
  // A sliced remainder re-reads the application weight, so adaptive
  // weight changes act on in-progress work; the initial submission
  // keeps the weight captured at the arrival boundary.
  if (R.Started) {
    auto WIt = Weights.find(R.AppId);
    RR.Demand.Weight = WIt == Weights.end() ? 1.0 : WIt->second;
  }
  Sched.submit(RR);
}

template <typename SchedulerT>
bool Runtime::admissionPassLocked(SchedulerT &Sched, double T) {
  bool Freed = false;
  bool Repass = runAdmissionPass(
      Sched, Session, LaunchBuf,
      [&](uint64_t Id,
          uint64_t WGs) -> std::optional<sim::KernelLaunchDesc> {
        GrantOutcome O = buildGrantLocked(Id, WGs, T,
                                          /*SliceByQuantum=*/true);
        if (O.Failed) {
          // The failed grant holds an in-flight reservation in the
          // scheduler's books; release it so waiters can take it.
          Sched.complete(Id);
          Freed = true;
        }
        return std::move(O.Launch);
      },
      [&](uint64_t) {});
  return Repass || Freed;
}

bool Runtime::advanceLocked() {
  double T = Session.now();
  if (Arrivals.empty())
    return Session.advanceNextEvent(CompletionBuf);
  double NextArr = Arrivals.top().first;
  double NextEvt = Session.nextEventTime();
  double Target = NextEvt < 0 ? NextArr : std::min(NextEvt, NextArr);
  Session.advanceTo(std::max(Target, T), CompletionBuf);
  return true;
}

bool Runtime::recordCompletionLocked(const sim::KernelExecResult &K) {
  uint64_t Id = static_cast<uint64_t>(K.AppId);
  RequestState &R = Requests.at(Id);
  if (!R.StartSeen) {
    R.StartSeen = true;
    R.Exec.StartTime = K.StartTime;
  }
  R.Exec.EndTime = K.EndTime;
  return R.Cursor < R.WGCosts.size();
}

template <typename SchedulerT>
bool Runtime::contStepLocked(SchedulerT &Sched) {
  double T = Session.now();
  // Arrival events due now join the queue before admission runs, so
  // same-instant arrivals are solved together (harness semantics).
  while (!Arrivals.empty() && Arrivals.top().first <= T) {
    uint64_t Id = Arrivals.top().second;
    Arrivals.pop();
    resubmitLocked(Sched, Id);
    NeedAdmit = true;
  }
  while (NeedAdmit)
    NeedAdmit = admissionPassLocked(Sched, T);
  if (!advanceLocked())
    return false;
  for (const sim::KernelExecResult &K : CompletionBuf) {
    uint64_t Id = static_cast<uint64_t>(K.AppId);
    Sched.complete(Id);
    NeedAdmit = true;
    if (recordCompletionLocked(K))
      resubmitLocked(Sched, Id); // remaining slices re-enter the queue
    else
      finalizeLocked(Id);
  }
  return true;
}

bool Runtime::roundStepLocked() {
  double T = Session.now();
  while (!Arrivals.empty() && Arrivals.top().first <= T) {
    uint64_t Id = Arrivals.top().second;
    Arrivals.pop();
    resubmitLocked(RoundSched, Id);
  }
  if (Session.inFlight() == 0 && RoundSched.pending() != 0) {
    // Completion barrier: plan the next round. Rounds are planned
    // back-to-back over whatever is pending at each barrier, so the
    // nextRound() call sequence — and the grant history — matches the
    // legacy flushRound loop bit for bit.
    std::vector<RoundGrant> Grants = RoundSched.nextRound();
    LaunchBuf.clear();
    for (const RoundGrant &G : Grants) {
      GrantOutcome O =
          buildGrantLocked(G.Id, G.WGs, T, /*SliceByQuantum=*/false);
      if (O.Launch)
        LaunchBuf.push_back(std::move(*O.Launch));
    }
    if (!LaunchBuf.empty())
      Session.admitFrom(LaunchBuf);
    return true;
  }
  if (!advanceLocked())
    return false;
  for (const sim::KernelExecResult &K : CompletionBuf) {
    // Round grants launch their whole remaining range in one slice, so
    // every completion retires its request.
    recordCompletionLocked(K);
    finalizeLocked(static_cast<uint64_t>(K.AppId));
  }
  return true;
}

bool Runtime::stepLocked() {
  switch (Opts.Mode) {
  case RuntimeOptions::Admission::RoundSync:
    return roundStepLocked();
  case RuntimeOptions::Admission::Stride:
    return contStepLocked(StrideSched);
  case RuntimeOptions::Admission::Continuous:
    break;
  }
  return contStepLocked(ContSched);
}

void Runtime::finalizeLocked(uint64_t Id) {
  auto It = Requests.find(Id);
  FinishedRecord Rec;
  Rec.Exec = std::move(It->second.Exec);
  CompletionCallback Cb = std::move(It->second.Cb);
  Requests.erase(It);
  StatusOf[Id] = static_cast<uint8_t>(RequestStatus::Completed);
  if (Cb || !GlobalCbs.empty()) {
    // Callback dispatch is deferred to the pump-driving thread, which
    // fires it after releasing the runtime lock (re-entrancy safe).
    std::vector<CompletionCallback> Gl = GlobalCbs;
    PendingCallbacks.push_back(
        [Cb = std::move(Cb), Gl = std::move(Gl), E = Rec.Exec]() {
          if (Cb)
            Cb(E);
          for (const CompletionCallback &G : Gl)
            G(E);
        });
  }
  Finished.emplace(Id, std::move(Rec));
}

void Runtime::failLocked(uint64_t Id, std::string Msg) {
  auto It = Requests.find(Id);
  FinishedRecord Rec;
  Rec.Exec = std::move(It->second.Exec);
  Rec.Error = std::move(Msg);
  Requests.erase(It);
  StatusOf[Id] = static_cast<uint8_t>(RequestStatus::Failed);
  Finished.emplace(Id, std::move(Rec));
}

//===----------------------------------------------------------------------===//
// Runtime: waiting side
//===----------------------------------------------------------------------===//

Expected<ScheduledExecution> Runtime::wait(uint64_t Id) {
  for (;;) {
    std::vector<std::function<void()>> Cbs;
    {
      std::lock_guard<std::mutex> L(Mu);
      auto It = Finished.find(Id);
      if (It != Finished.end()) {
        FinishedRecord Rec = std::move(It->second);
        Finished.erase(It);
        if (!Rec.Error.empty())
          return Expected<ScheduledExecution>(makeError(Rec.Error));
        return Expected<ScheduledExecution>(std::move(Rec.Exec));
      }
      if (Id >= NextRequestId)
        return Expected<ScheduledExecution>(
            makeError("unknown request " + std::to_string(Id)));
      RequestStatus S = static_cast<RequestStatus>(StatusOf[Id]);
      if (S == RequestStatus::Completed || S == RequestStatus::Failed)
        return Expected<ScheduledExecution>(
            makeError("request " + std::to_string(Id) +
                      ": result already consumed"));
      bool Progress = stepLocked();
      Cbs.swap(PendingCallbacks);
      if (!Progress && Cbs.empty() && Finished.count(Id) == 0)
        return Expected<ScheduledExecution>(
            makeError("request " + std::to_string(Id) +
                      " cannot complete: runtime is idle"));
    }
    for (std::function<void()> &F : Cbs)
      F();
  }
}

Expected<std::vector<ScheduledExecution>> Runtime::drain() {
  for (;;) {
    std::vector<std::function<void()>> Cbs;
    bool Progress;
    {
      std::lock_guard<std::mutex> L(Mu);
      Progress = stepLocked();
      Cbs.swap(PendingCallbacks);
    }
    for (std::function<void()> &F : Cbs)
      F();
    // Break only when the pump is idle AND no callbacks fired — a
    // callback may have submitted follow-up work.
    if (!Progress && Cbs.empty())
      break;
  }

  std::lock_guard<std::mutex> L(Mu);
  std::vector<ScheduledExecution> Out;
  std::string FirstError;
  for (uint64_t Id : ReportQueue) {
    auto It = Finished.find(Id);
    if (It == Finished.end())
      continue; // Consumed by wait().
    if (!It->second.Error.empty()) {
      if (FirstError.empty())
        FirstError = It->second.Error;
    } else {
      Out.push_back(std::move(It->second.Exec));
    }
    Finished.erase(It);
  }
  ReportQueue.clear();
  if (!FirstError.empty())
    return Expected<std::vector<ScheduledExecution>>(
        makeError(FirstError));
  return Expected<std::vector<ScheduledExecution>>(std::move(Out));
}
