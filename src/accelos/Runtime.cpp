//===- accelos/Runtime.cpp - The accelOS host runtime ------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/Runtime.h"

#include "accelos/VirtualNDRange.h"
#include "kir/RtLayout.h"
#include "kir/Module.h"
#include "passes/ConstantFold.h"
#include "passes/DCE.h"
#include "passes/Inliner.h"
#include "passes/Pass.h"
#include "passes/RegisterEstimator.h"

#include <algorithm>

using namespace accel;
using namespace accel::accelos;

//===----------------------------------------------------------------------===//
// MemoryManager
//===----------------------------------------------------------------------===//

Expected<ocl::Buffer> MemoryManager::allocate(int AppId, uint64_t Size) {
  Expected<ocl::Buffer> Buf = ocl::Buffer::create(*Dev, Size);
  if (!Buf) {
    // Paper Sec. 5: when accelerator memory cannot serve every
    // application, some are paused until space frees up.
    Paused.insert(AppId);
    return makeError("application " + std::to_string(AppId) +
                     " paused: " + Buf.message());
  }
  Usage[AppId] += Size;
  return Buf;
}

void MemoryManager::released(int AppId, uint64_t Size) {
  auto It = Usage.find(AppId);
  if (It != Usage.end())
    It->second -= Size < It->second ? Size : It->second;
  // Optimistically resume everyone; their next allocation re-checks.
  Paused.clear();
}

//===----------------------------------------------------------------------===//
// Runtime: JIT path (FSM (a))
//===----------------------------------------------------------------------===//

Expected<ocl::Program *> Runtime::createProgram(int AppId,
                                                const std::string &Source) {
  ++Stats.ProgramsJitted;
  auto Prog = std::make_unique<ocl::Program>(*Dev, Source);
  // Front end ("OpenCL C -> IR", Fig. 7b).
  if (Error E = Prog->build())
    return Expected<ocl::Program *>(std::move(E));

  // accelOS JIT pipeline: GPU-compiler-style cleanups, then the
  // scheduling transformation, linked against the runtime built-ins.
  passes::PassManager PM;
  PM.addPass(std::make_unique<passes::InlinerPass>());
  PM.addPass(std::make_unique<passes::ConstantFoldPass>());
  PM.addPass(std::make_unique<passes::DCEPass>());
  auto Transform = std::make_unique<passes::AccelOSTransform>();
  auto *TPtr = Transform.get();
  PM.addPass(std::move(Transform));
  if (Error E = PM.run(*Prog->module()))
    return Expected<ocl::Program *>(std::move(E));

  JittedProgram JP;
  JP.Prog = std::move(Prog);
  JP.Info = TPtr->info();
  JP.AppId = AppId;
  Programs.push_back(std::move(JP));
  return Programs.back().Prog.get();
}

const passes::TransformedKernelInfo *
Runtime::kernelInfo(const ocl::Program *Prog,
                    const std::string &Name) const {
  for (const JittedProgram &JP : Programs) {
    if (JP.Prog.get() != Prog)
      continue;
    auto It = JP.Info.find(Name);
    return It == JP.Info.end() ? nullptr : &It->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Runtime: Kernel Scheduler (FSM (b))
//===----------------------------------------------------------------------===//

Error Runtime::enqueueKernel(int AppId, ocl::Kernel &K,
                             const kir::NDRangeCfg &Range) {
  ++Stats.KernelsScheduled;
  if (Memory.isPaused(AppId))
    return makeError("application " + std::to_string(AppId) +
                     " is paused for memory pressure");
  const passes::TransformedKernelInfo *Info =
      kernelInfo(&K.program(), K.name());
  if (Info == nullptr)
    return makeError("kernel '" + K.name() +
                     "' was not compiled through accelOS");
  for (unsigned D = 0; D != 3; ++D) {
    if (Range.LocalSize[D] == 0)
      return makeError("zero local size");
    if (Range.GlobalSize[D] % Range.LocalSize[D] != 0)
      return makeError("global size not divisible by local size");
  }

  PendingExecution P;
  P.AppId = AppId;
  P.Kernel = &K;
  P.Range = Range;
  uint64_t Id = NextRequestId++;
  Pending.emplace(Id, P);

  // The Sec. 3 demand terms of this request, captured at the arrival
  // boundary.
  kir::Function *Comp =
      K.program().module()->getFunction(Info->ComputeFnName);
  RoundRequest R;
  R.Id = Id;
  R.Demand.WGThreads = Range.workGroupSize();
  R.Demand.LocalMemPerWG =
      Info->LocalMemBytes + kir::rtlayout::schedDescBytes();
  R.Demand.RegsPerThread = passes::estimateRegisters(*Comp);
  R.Demand.RequestedWGs = Range.totalGroups();
  auto WIt = Weights.find(AppId);
  R.Demand.Weight = WIt == Weights.end() ? 1.0 : WIt->second;
  Sched.submit(R);
  return Error::success();
}

Expected<std::vector<ScheduledExecution>> Runtime::flushRound() {
  using RetT = Expected<std::vector<ScheduledExecution>>;
  std::vector<ScheduledExecution> Results;

  // On any execution error the whole flush is abandoned: pending
  // requests are dropped so the runtime returns to a clean state.
  auto Abandon = [&] {
    Sched.clear();
    Pending.clear();
  };

  for (uint64_t RoundIdx = 0; Sched.pending() != 0; ++RoundIdx) {
    // Completion boundary: the previous round fully retired, so the
    // shares are re-solved over everything now pending (dynamic K) —
    // including requests the clamp deferred out of earlier rounds.
    std::vector<RoundGrant> Grants = Sched.nextRound();
    for (const RoundGrant &G : Grants) {
      const PendingExecution &P = Pending.at(G.Id);
      uint64_t PhysWGs = G.WGs;
      const passes::TransformedKernelInfo *Info =
          kernelInfo(&P.Kernel->program(), P.Kernel->name());

      uint64_t Batch = cappedBatchFor(Mode, Info->ComputeInstCount,
                                      P.Range.totalGroups(), PhysWGs);
      Expected<uint64_t> Rt =
          writeVirtualNDRange(Dev->memory(), P.Range, Batch);
      if (!Rt) {
        Abandon();
        return RetT(Rt.takeError());
      }

      // Alter the global size to the reduced number of work groups; the
      // work-group size and dimensionality are preserved (Sec. 5). The
      // reduced physical groups are laid out along dimension 0.
      kir::NDRangeCfg Reduced;
      Reduced.WorkDim = P.Range.WorkDim;
      for (unsigned D = 0; D != 3; ++D) {
        Reduced.LocalSize[D] = P.Range.LocalSize[D];
        Reduced.GlobalSize[D] = P.Range.LocalSize[D];
      }
      Reduced.GlobalSize[0] = PhysWGs * P.Range.LocalSize[0];

      // The scheduling kernel takes the original arguments plus rt.
      unsigned RtArgIndex = P.Kernel->function()->numArguments() - 1;
      if (Error E = P.Kernel->setArg(RtArgIndex,
                                     ocl::KernelArg::scalarI64(
                                         static_cast<int64_t>(*Rt)))) {
        Abandon();
        return RetT(std::move(E));
      }
      Expected<std::vector<uint64_t>> Args = P.Kernel->packedArgs();
      if (!Args) {
        Abandon();
        return RetT(Args.takeError());
      }
      Expected<kir::ExecStats> Stats =
          Dev->interpreter().run(*P.Kernel->function(), *Args, Reduced);
      releaseVirtualNDRange(Dev->memory(), *Rt);
      if (!Stats) {
        Abandon();
        return RetT(Stats.takeError());
      }

      ScheduledExecution R;
      R.KernelName = P.Kernel->name();
      R.AppId = P.AppId;
      R.Round = RoundIdx;
      R.PhysicalWGs = PhysWGs;
      R.OriginalWGs = P.Range.totalGroups();
      R.Batch = Batch;
      R.Stats = Stats.take();
      Results.push_back(std::move(R));
      Pending.erase(G.Id);
    }
  }
  return Results;
}
