//===- accelos/ResourceSolver.cpp - Fair resource sharing -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/ResourceSolver.h"

#include "sim/DeviceSpec.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::accelos;

ResourceCaps ResourceCaps::fromDevice(const sim::DeviceSpec &Spec) {
  ResourceCaps Caps;
  Caps.Threads = Spec.totalThreads();
  Caps.LocalMem = Spec.totalLocalMem();
  Caps.Regs = Spec.totalRegs();
  Caps.WGSlots = Spec.totalWGSlots();
  return Caps;
}

namespace {

/// \returns true when assigning \p Shares stays within \p Caps.
bool fits(const ResourceCaps &Caps, const std::vector<KernelDemand> &Ks,
          const std::vector<uint64_t> &Shares) {
  uint64_t Threads = 0, Local = 0, Regs = 0, Slots = 0;
  for (size_t I = 0; I != Ks.size(); ++I) {
    ResourceUse Use = footprintOf(Ks[I], Shares[I]);
    Threads += Use.Threads;
    Local += Use.LocalMem;
    Regs += Use.Regs;
    Slots += Use.WGSlots;
  }
  return Threads <= Caps.Threads && Local <= Caps.LocalMem &&
         Regs <= Caps.Regs && Slots <= Caps.WGSlots;
}

} // namespace

std::vector<uint64_t>
accelos::solveFairShares(const ResourceCaps &Caps,
                         const std::vector<KernelDemand> &Ks,
                         const SolverOptions &Opts, SolveInfo *Info) {
  assert(!Ks.empty() && "solver needs at least one kernel");
  size_t K = Ks.size();
  if (Info) {
    Info->Floored.assign(K, false);
    Info->Saturated.assign(K, false);
    Info->Clamped = false;
  }

  // Kernels that request no work groups take no share and are excluded
  // from the fairness divisor: an idle tenant must not dilute the
  // shares of the active ones.
  double TotalWeight = 0;
  for (const KernelDemand &D : Ks)
    if (D.RequestedWGs > 0)
      TotalWeight += D.Weight;

  std::vector<uint64_t> Shares(K, 0);
  if (TotalWeight <= 0)
    return Shares;

  // The pure Sec. 3 divisions always fit in aggregate (each share is a
  // floor of the kernel's exact fractional entitlement), so only the
  // minimum-share floor below can oversubscribe; remember who was
  // floored so the clamp pass can revert exactly those.
  std::vector<bool> Floored(K, false);
  for (size_t I = 0; I != K; ++I) {
    const KernelDemand &D = Ks[I];
    if (D.RequestedWGs == 0)
      continue;
    assert(D.WGThreads > 0 && "zero-thread work group");
    // The kernel's fraction of each resource; equal sharing (paper
    // default) corresponds to Weight == 1 for all kernels, giving the
    // exact Sec. 3 divisors of K.
    double Frac = D.Weight / TotalWeight;

    uint64_t X = static_cast<uint64_t>(
        static_cast<double>(Caps.Threads) * Frac /
        static_cast<double>(D.WGThreads));
    uint64_t Y =
        D.LocalMemPerWG
            ? static_cast<uint64_t>(static_cast<double>(Caps.LocalMem) *
                                    Frac /
                                    static_cast<double>(D.LocalMemPerWG))
            : UINT64_MAX;
    uint64_t RegsPerWG = D.WGThreads * D.RegsPerThread;
    uint64_t Z = RegsPerWG
                     ? static_cast<uint64_t>(
                           static_cast<double>(Caps.Regs) * Frac /
                           static_cast<double>(RegsPerWG))
                     : UINT64_MAX;
    uint64_t SlotShare = static_cast<uint64_t>(
        static_cast<double>(Caps.WGSlots) * Frac);

    uint64_t N = std::min(std::min(X, Y), std::min(Z, SlotShare));
    if (N == 0) {
      N = 1;
      Floored[I] = true;
    }
    N = std::min(N, D.RequestedWGs);
    Shares[I] = N;
  }

  // Clamp pass: the minimum-share floor can push the base allocation
  // past the caps (e.g. more kernels than can physically co-exist).
  // Revert floors until the allocation fits again, each time targeting
  // the most-oversubscribed resource and the floored kernel that
  // contributes most to it, so kernels that are not part of the
  // violation keep their work group.
  bool Clamped = false;
  while (!fits(Caps, Ks, Shares)) {
    Clamped = true;
    uint64_t Use[4] = {0, 0, 0, 0};
    for (size_t I = 0; I != K; ++I) {
      ResourceUse U = footprintOf(Ks[I], Shares[I]);
      Use[0] += U.Threads;
      Use[1] += U.LocalMem;
      Use[2] += U.Regs;
      Use[3] += U.WGSlots;
    }
    const uint64_t Cap[4] = {Caps.Threads, Caps.LocalMem, Caps.Regs,
                             Caps.WGSlots};
    unsigned Dim = 0;
    double WorstRatio = 0;
    for (unsigned D = 0; D != 4; ++D) {
      double Ratio = static_cast<double>(Use[D]) /
                     static_cast<double>(std::max<uint64_t>(Cap[D], 1));
      if (Ratio > WorstRatio) {
        WorstRatio = Ratio;
        Dim = D;
      }
    }
    auto DemandIn = [&](size_t I) -> uint64_t {
      switch (Dim) {
      case 0:
        return Ks[I].WGThreads;
      case 1:
        return Ks[I].LocalMemPerWG;
      case 2:
        return Ks[I].WGThreads * Ks[I].RegsPerThread;
      default:
        return 1;
      }
    };
    // Victim selection: prefer a floored kernel whose reversion
    // *alone* restores feasibility — the fewest-reverts choice — and
    // break ties toward the largest contributor to the
    // most-oversubscribed resource (the previous heuristic, which
    // remains optimal when the largest contributor is also a
    // single-revert fix). When no single reversion suffices, the
    // bounded multi-revert search below takes over before this
    // fallback fires.
    size_t Victim = K;
    bool VictimRestores = false;
    for (size_t I = 0; I != K; ++I) {
      if (!Floored[I] || Shares[I] == 0)
        continue;
      uint64_t Saved = Shares[I];
      Shares[I] = 0;
      bool Restores = fits(Caps, Ks, Shares);
      Shares[I] = Saved;
      if (Victim == K || (Restores && !VictimRestores) ||
          (Restores == VictimRestores &&
           DemandIn(I) >= DemandIn(Victim))) {
        Victim = I;
        VictimRestores = Restores;
      }
    }
    if (Victim == K) {
      // No floor left to revert; cannot happen for well-formed demands
      // (the floorless allocation fits by construction), but stay
      // defensive: shed proportionally in ONE pass instead of one work
      // group at a time (which is O(total shares)). Scaling every
      // share by the tightest cap/use ratio fits all four dimensions
      // at once: sum(floor(S_i*F)*d_i) <= F*Use_D <= Cap_D for the
      // binding dimension, and non-binding dimensions only improve.
      double F = 1.0;
      for (unsigned D = 0; D != 4; ++D)
        if (Use[D] > Cap[D])
          F = std::min(F, static_cast<double>(Cap[D]) /
                              static_cast<double>(Use[D]));
      bool Any = false;
      for (size_t I = 0; I != K; ++I) {
        uint64_t S = static_cast<uint64_t>(
            static_cast<double>(Shares[I]) * F);
        if (S != Shares[I]) {
          Shares[I] = S;
          Any = true;
        }
      }
      if (!Any)
        break; // Nothing left to shed; give up rather than loop.
      continue;
    }
    if (!VictimRestores) {
      // Bounded bin-covering search (the ROADMAP follow-up to the
      // single-revert preference): no single floor reversion restores
      // feasibility, so search the floored kernels for the smallest
      // revert set — pairs, then triples — whose joint reversion does.
      // Every floored share is exactly one work group, so the smallest
      // set is the revert choice minimizing shed WGs; the iterative
      // largest-contributor fallback can overshoot by one when the
      // violated dimensions alternate (shed the thread hog, then the
      // local-memory hog, then a third kernel, where one balanced pair
      // would have covered both dimensions). Ties between same-size
      // sets go to the largest total demand in the most-oversubscribed
      // dimension (the existing heuristic's preference), then to the
      // earliest candidates — deterministic either way. The search is
      // bounded twice over: subsets of size <= 3 only, and skipped
      // entirely past a candidate-count cap so clamp time cannot blow
      // up cubically on a pathological queue.
      std::vector<size_t> Cands;
      for (size_t I = 0; I != K; ++I)
        if (Floored[I] && Shares[I] != 0)
          Cands.push_back(I);
      auto Restores = [&](std::initializer_list<size_t> Set) {
        uint64_t Freed[4] = {0, 0, 0, 0};
        for (size_t I : Set) {
          ResourceUse U = footprintOf(Ks[I], Shares[I]);
          Freed[0] += U.Threads;
          Freed[1] += U.LocalMem;
          Freed[2] += U.Regs;
          Freed[3] += U.WGSlots;
        }
        for (unsigned D = 0; D != 4; ++D)
          if (Use[D] - Freed[D] > Cap[D])
            return false;
        return true;
      };
      auto DemandSum = [&](std::initializer_list<size_t> Set) {
        uint64_t Sum = 0;
        for (size_t I : Set)
          Sum += DemandIn(I);
        return Sum;
      };
      constexpr size_t PairCap = 256, TripleCap = 48;
      std::vector<size_t> Best;
      uint64_t BestDemand = 0;
      if (Cands.size() <= PairCap) {
        for (size_t X = 0; X != Cands.size(); ++X)
          for (size_t Y = X + 1; Y != Cands.size(); ++Y) {
            size_t A = Cands[X], B = Cands[Y];
            if (!Restores({A, B}))
              continue;
            uint64_t D = DemandSum({A, B});
            if (Best.empty() || D > BestDemand) {
              Best = {A, B};
              BestDemand = D;
            }
          }
      }
      if (Best.empty() && Cands.size() <= TripleCap) {
        for (size_t X = 0; X != Cands.size(); ++X)
          for (size_t Y = X + 1; Y != Cands.size(); ++Y)
            for (size_t Z = Y + 1; Z != Cands.size(); ++Z) {
              size_t A = Cands[X], B = Cands[Y], C = Cands[Z];
              if (!Restores({A, B, C}))
                continue;
              uint64_t D = DemandSum({A, B, C});
              if (Best.empty() || D > BestDemand) {
                Best = {A, B, C};
                BestDemand = D;
              }
            }
      }
      if (!Best.empty()) {
        for (size_t I : Best)
          Shares[I] = 0;
        continue; // fits() holds now; the loop exits.
      }
    }
    Shares[Victim] = 0;
  }

  std::vector<bool> Saturated(K, false);
  auto Finish = [&]() {
    if (Info) {
      Info->Floored = Floored;
      Info->Saturated = Saturated;
      Info->Clamped = Clamped;
    }
  };

  if (!Opts.GreedySaturation) {
    Finish();
    return Shares;
  }

  // Only active kernels' weights matter: a zero-work request neither
  // takes a share nor may its (arbitrary) weight flip the solve onto
  // the weighted path.
  bool EqualWeights = true;
  double RefWeight = 0;
  bool HaveRef = false;
  for (const KernelDemand &D : Ks) {
    if (D.RequestedWGs == 0)
      continue;
    if (!HaveRef) {
      RefWeight = D.Weight;
      HaveRef = true;
    } else if (D.Weight != RefWeight) {
      EqualWeights = false;
      break;
    }
  }

  // Saturation state for the fast loops: the aggregate footprint of
  // the current shares, maintained incrementally so each +1 probe is a
  // four-compare O(1) check instead of the reference loop's O(K)
  // fits() re-sum. Capacity only shrinks while shares grow, so a
  // kernel whose probe fails once is saturated for good and drops out
  // of the sweep — the decision sequence (and hence every share) is
  // identical to the reference loop, which probes it again each sweep
  // only to fail again.
  const uint64_t Cap[4] = {Caps.Threads, Caps.LocalMem, Caps.Regs,
                           Caps.WGSlots};
  uint64_t Use[4] = {0, 0, 0, 0};
  if (Opts.FastSaturation) {
    for (size_t I = 0; I != K; ++I) {
      ResourceUse U = footprintOf(Ks[I], Shares[I]);
      Use[0] += U.Threads;
      Use[1] += U.LocalMem;
      Use[2] += U.Regs;
      Use[3] += U.WGSlots;
    }
  }
  auto ProbeGrow = [&](size_t I) {
    const KernelDemand &D = Ks[I];
    const uint64_t PerWG[4] = {D.WGThreads, D.LocalMemPerWG,
                               D.WGThreads * D.RegsPerThread, 1};
    for (unsigned Dim = 0; Dim != 4; ++Dim)
      if (Use[Dim] + PerWG[Dim] > Cap[Dim])
        return false;
    for (unsigned Dim = 0; Dim != 4; ++Dim)
      Use[Dim] += PerWG[Dim];
    ++Shares[I];
    return true;
  };

  if (EqualWeights) {
    // Greedy saturation (Sec. 3): grow shares round-robin until no
    // kernel can take another work group.
    if (Opts.FastSaturation) {
      size_t Active = 0;
      std::vector<bool> Done(K, false);
      for (size_t I = 0; I != K; ++I) {
        Done[I] = Shares[I] >= Ks[I].RequestedWGs;
        if (!Done[I])
          ++Active;
      }
      while (Active) {
        for (size_t I = 0; I != K; ++I) {
          if (Done[I])
            continue;
          if (ProbeGrow(I)) {
            if (Shares[I] >= Ks[I].RequestedWGs) {
              Done[I] = true;
              --Active;
            }
          } else {
            Done[I] = true;
            Saturated[I] = true;
            --Active;
          }
        }
      }
    } else {
      for (bool Progress = true; Progress;) {
        Progress = false;
        for (size_t I = 0; I != K; ++I) {
          if (Shares[I] >= Ks[I].RequestedWGs)
            continue;
          ++Shares[I];
          if (fits(Caps, Ks, Shares)) {
            Progress = true;
          } else {
            --Shares[I];
            Saturated[I] = true;
          }
        }
      }
    }
    Finish();
    return Shares;
  }

  // Weighted saturation (Sec. 2.2 non-equal sharing ratios): plain
  // round-robin would hand every kernel the same number of extra work
  // groups and wash the weights out of the final allocation exactly
  // when they matter most — under contention, where the base divisions
  // are a small fraction of what saturation hands out. Instead run
  // weighted max-min filling: always grow the unsaturated kernel with
  // the smallest weight-normalized share (ties to the lower index, so
  // the result is deterministic), until nothing fits. Equal weights
  // reduce to the round-robin above, which is kept verbatim so the
  // paper-default allocations stay bit-identical.
  for (;;) {
    size_t Next = K;
    double NextNorm = 0;
    for (size_t I = 0; I != K; ++I) {
      if (Saturated[I] || Shares[I] >= Ks[I].RequestedWGs)
        continue;
      double Norm = static_cast<double>(Shares[I]) / Ks[I].Weight;
      if (Next == K || Norm < NextNorm) {
        Next = I;
        NextNorm = Norm;
      }
    }
    if (Next == K)
      break;
    if (Opts.FastSaturation) {
      if (!ProbeGrow(Next))
        Saturated[Next] = true;
    } else {
      ++Shares[Next];
      if (!fits(Caps, Ks, Shares)) {
        --Shares[Next];
        Saturated[Next] = true;
      }
    }
  }
  Finish();
  return Shares;
}

//===----------------------------------------------------------------------===//
// Allocation-free overload (the admission hot path)
//===----------------------------------------------------------------------===//
//
// Mirrors the allocating solve above decision for decision. Wherever
// the reference recomputes an O(K) footprint sum (the clamp's fits()
// checks, the saturation probes), this body compares against the same
// sums maintained incrementally — exact integer adds and subtracts of
// the same footprints, so every branch sees the same values. The
// differential tests and the schedulers' SelfCheck mode assert the
// share vectors match the reference bit for bit.

void accelos::solveFairShares(const ResourceCaps &Caps,
                              const std::vector<KernelDemand> &Ks,
                              const SolverOptions &Opts,
                              SolverScratch &S,
                              std::vector<uint64_t> &Shares) {
  assert(!Ks.empty() && "solver needs at least one kernel");
  size_t K = Ks.size();

  double TotalWeight = 0;
  for (const KernelDemand &D : Ks)
    if (D.RequestedWGs > 0)
      TotalWeight += D.Weight;

  Shares.assign(K, 0);
  if (TotalWeight <= 0)
    return;

  const uint64_t Cap[4] = {Caps.Threads, Caps.LocalMem, Caps.Regs,
                           Caps.WGSlots};
  // Aggregate footprint of the current assignment, maintained through
  // every phase below.
  uint64_t Use[4] = {0, 0, 0, 0};
  auto AddShare = [&](size_t I, uint64_t WGs) {
    const KernelDemand &D = Ks[I];
    Use[0] += WGs * D.WGThreads;
    Use[1] += WGs * D.LocalMemPerWG;
    Use[2] += WGs * D.WGThreads * D.RegsPerThread;
    Use[3] += WGs;
  };
  auto DropShare = [&](size_t I) {
    const KernelDemand &D = Ks[I];
    uint64_t WGs = Shares[I];
    Use[0] -= WGs * D.WGThreads;
    Use[1] -= WGs * D.LocalMemPerWG;
    Use[2] -= WGs * D.WGThreads * D.RegsPerThread;
    Use[3] -= WGs;
    Shares[I] = 0;
  };
  auto FitsAgg = [&]() {
    return Use[0] <= Cap[0] && Use[1] <= Cap[1] && Use[2] <= Cap[2] &&
           Use[3] <= Cap[3];
  };

  S.Floored.assign(K, 0);
  S.BaseCache.clear();
  for (size_t I = 0; I != K; ++I) {
    const KernelDemand &D = Ks[I];
    if (D.RequestedWGs == 0)
      continue;
    assert(D.WGThreads > 0 && "zero-thread work group");
    double Frac = D.Weight / TotalWeight;

    uint64_t N = 0;
    bool Fl = false;
    bool Hit = false;
    for (const SolverScratch::BaseDiv &C : S.BaseCache)
      if (C.WGThreads == D.WGThreads &&
          C.LocalMemPerWG == D.LocalMemPerWG &&
          C.RegsPerThread == D.RegsPerThread && C.Frac == Frac) {
        N = C.N;
        Fl = C.Floored;
        Hit = true;
        break;
      }
    if (!Hit) {
      uint64_t X = static_cast<uint64_t>(
          static_cast<double>(Caps.Threads) * Frac /
          static_cast<double>(D.WGThreads));
      uint64_t Y = D.LocalMemPerWG
                       ? static_cast<uint64_t>(
                             static_cast<double>(Caps.LocalMem) * Frac /
                             static_cast<double>(D.LocalMemPerWG))
                       : UINT64_MAX;
      uint64_t RegsPerWG = D.WGThreads * D.RegsPerThread;
      uint64_t Z = RegsPerWG
                       ? static_cast<uint64_t>(
                             static_cast<double>(Caps.Regs) * Frac /
                             static_cast<double>(RegsPerWG))
                       : UINT64_MAX;
      uint64_t SlotShare = static_cast<uint64_t>(
          static_cast<double>(Caps.WGSlots) * Frac);

      N = std::min(std::min(X, Y), std::min(Z, SlotShare));
      if (N == 0) {
        N = 1;
        Fl = true;
      }
      if (S.BaseCache.size() < 16)
        S.BaseCache.push_back(
            {D.WGThreads, D.LocalMemPerWG, D.RegsPerThread, Frac, N, Fl});
    }
    S.Floored[I] = Fl;
    Shares[I] = std::min(N, D.RequestedWGs);
    AddShare(I, Shares[I]);
  }

  // Clamp pass, against the maintained aggregate. Per-candidate "does
  // reverting this floor alone restore feasibility" is four subtract-
  // and-compare operations instead of the reference's O(K) fits().
  while (!FitsAgg()) {
    unsigned Dim = 0;
    double WorstRatio = 0;
    for (unsigned D = 0; D != 4; ++D) {
      double Ratio = static_cast<double>(Use[D]) /
                     static_cast<double>(std::max<uint64_t>(Cap[D], 1));
      if (Ratio > WorstRatio) {
        WorstRatio = Ratio;
        Dim = D;
      }
    }
    auto DemandIn = [&](size_t I) -> uint64_t {
      switch (Dim) {
      case 0:
        return Ks[I].WGThreads;
      case 1:
        return Ks[I].LocalMemPerWG;
      case 2:
        return Ks[I].WGThreads * Ks[I].RegsPerThread;
      default:
        return 1;
      }
    };
    auto RestoresSet = [&](std::initializer_list<size_t> Set) {
      uint64_t Freed[4] = {0, 0, 0, 0};
      for (size_t I : Set) {
        ResourceUse U = footprintOf(Ks[I], Shares[I]);
        Freed[0] += U.Threads;
        Freed[1] += U.LocalMem;
        Freed[2] += U.Regs;
        Freed[3] += U.WGSlots;
      }
      for (unsigned D = 0; D != 4; ++D)
        if (Use[D] - Freed[D] > Cap[D])
          return false;
      return true;
    };
    size_t Victim = K;
    bool VictimRestores = false;
    for (size_t I = 0; I != K; ++I) {
      if (!S.Floored[I] || Shares[I] == 0)
        continue;
      bool Restores = RestoresSet({I});
      if (Victim == K || (Restores && !VictimRestores) ||
          (Restores == VictimRestores &&
           DemandIn(I) >= DemandIn(Victim))) {
        Victim = I;
        VictimRestores = Restores;
      }
    }
    if (Victim == K) {
      double F = 1.0;
      for (unsigned D = 0; D != 4; ++D)
        if (Use[D] > Cap[D])
          F = std::min(F, static_cast<double>(Cap[D]) /
                              static_cast<double>(Use[D]));
      bool Any = false;
      for (size_t I = 0; I != K; ++I) {
        uint64_t Sh = static_cast<uint64_t>(
            static_cast<double>(Shares[I]) * F);
        if (Sh != Shares[I]) {
          uint64_t Old = Shares[I];
          DropShare(I);
          Shares[I] = Sh;
          AddShare(I, Sh);
          Any |= Sh != Old;
        }
      }
      if (!Any)
        break;
      continue;
    }
    if (!VictimRestores) {
      // The reference's bounded bin-covering search, collapsed onto
      // shape classes (see SolverScratch::ShapeClass). The reference
      // replaces its running best only on strictly larger demand, so
      // its winner is the lexicographically first max-demand restoring
      // set in scan order; every member of a shape combination shares
      // one demand and one restores-verdict, so picking the max-demand
      // restoring combination and re-materializing its lex-first
      // realization (the required number of smallest candidate indices
      // per shape, sorted — elementwise minimal) reproduces that
      // winner exactly.
      S.Shapes.clear();
      size_t NumCands = 0;
      for (size_t I = 0; I != K; ++I) {
        if (!S.Floored[I] || Shares[I] == 0)
          continue;
        assert(Shares[I] == 1 && "floored clamp candidate above one WG");
        ++NumCands;
        const KernelDemand &D = Ks[I];
        SolverScratch::ShapeClass *C = nullptr;
        for (auto &Sh : S.Shapes)
          if (Sh.WGThreads == D.WGThreads &&
              Sh.LocalMemPerWG == D.LocalMemPerWG &&
              Sh.RegsPerThread == D.RegsPerThread) {
            C = &Sh;
            break;
          }
        if (!C) {
          S.Shapes.push_back({});
          C = &S.Shapes.back();
          C->WGThreads = D.WGThreads;
          C->LocalMemPerWG = D.LocalMemPerWG;
          C->RegsPerThread = D.RegsPerThread;
          C->Freed[0] = D.WGThreads;
          C->Freed[1] = D.LocalMemPerWG;
          C->Freed[2] = D.WGThreads * D.RegsPerThread;
          C->Freed[3] = 1;
        }
        if (C->Count < 3)
          C->Idx[C->Count] = static_cast<uint32_t>(I);
        ++C->Count;
      }
      auto ShapeDemand =
          [&](const SolverScratch::ShapeClass &Sh) -> uint64_t {
        switch (Dim) {
        case 0:
          return Sh.WGThreads;
        case 1:
          return Sh.LocalMemPerWG;
        case 2:
          return Sh.WGThreads * Sh.RegsPerThread;
        default:
          return 1;
        }
      };
      auto ComboRestores = [&](const SolverScratch::ShapeClass *const *Set,
                               size_t N) {
        uint64_t Freed[4] = {0, 0, 0, 0};
        for (size_t I = 0; I != N; ++I)
          for (unsigned D = 0; D != 4; ++D)
            Freed[D] += Set[I]->Freed[D];
        for (unsigned D = 0; D != 4; ++D)
          if (Use[D] - Freed[D] > Cap[D])
            return false;
        return true;
      };
      auto Materialize = [&](const SolverScratch::ShapeClass *const *Set,
                             size_t N, uint32_t *Out) {
        for (size_t A = 0; A != N; ++A) {
          size_t Taken = 0;
          for (size_t B = 0; B != A; ++B)
            if (Set[B] == Set[A])
              ++Taken;
          Out[A] = Set[A]->Idx[Taken];
        }
        std::sort(Out, Out + N);
      };
      auto LexBefore = [](const uint32_t *A, const uint32_t *B, size_t N) {
        for (size_t I = 0; I != N; ++I)
          if (A[I] != B[I])
            return A[I] < B[I];
        return false;
      };
      constexpr size_t PairCap = 256, TripleCap = 48;
      size_t BestN = 0;
      uint32_t BestIdx[3] = {0, 0, 0};
      uint64_t BestDemand = 0;
      const size_t NumShapes = S.Shapes.size();
      if (NumCands <= PairCap) {
        for (size_t X = 0; X != NumShapes; ++X)
          for (size_t Y = X; Y != NumShapes; ++Y) {
            const SolverScratch::ShapeClass *Set[2] = {&S.Shapes[X],
                                                       &S.Shapes[Y]};
            if (X == Y && Set[0]->Count < 2)
              continue;
            if (!ComboRestores(Set, 2))
              continue;
            uint64_t D = ShapeDemand(*Set[0]) + ShapeDemand(*Set[1]);
            if (BestN && D < BestDemand)
              continue;
            uint32_t Idx[3];
            Materialize(Set, 2, Idx);
            if (!BestN || D > BestDemand || LexBefore(Idx, BestIdx, 2)) {
              BestN = 2;
              BestIdx[0] = Idx[0];
              BestIdx[1] = Idx[1];
              BestDemand = D;
            }
          }
      }
      if (!BestN && NumCands <= TripleCap) {
        for (size_t X = 0; X != NumShapes; ++X)
          for (size_t Y = X; Y != NumShapes; ++Y)
            for (size_t Z = Y; Z != NumShapes; ++Z) {
              const SolverScratch::ShapeClass *Set[3] = {
                  &S.Shapes[X], &S.Shapes[Y], &S.Shapes[Z]};
              // Multiplicity check per distinct shape in the combo.
              bool Realizable = true;
              for (size_t A = 0; A != 3 && Realizable; ++A) {
                uint32_t Mult = 0;
                for (size_t B = 0; B != 3; ++B)
                  if (Set[B] == Set[A])
                    ++Mult;
                Realizable = Set[A]->Count >= Mult;
              }
              if (!Realizable)
                continue;
              if (!ComboRestores(Set, 3))
                continue;
              uint64_t D = ShapeDemand(*Set[0]) + ShapeDemand(*Set[1]) +
                           ShapeDemand(*Set[2]);
              if (BestN && D < BestDemand)
                continue;
              uint32_t Idx[3];
              Materialize(Set, 3, Idx);
              if (!BestN || D > BestDemand ||
                  LexBefore(Idx, BestIdx, 3)) {
                BestN = 3;
                BestIdx[0] = Idx[0];
                BestIdx[1] = Idx[1];
                BestIdx[2] = Idx[2];
                BestDemand = D;
              }
            }
      }
      if (BestN) {
        for (size_t I = 0; I != BestN; ++I)
          DropShare(BestIdx[I]);
        continue;
      }
    }
    DropShare(Victim);
  }

  if (!Opts.GreedySaturation)
    return;

  bool EqualWeights = true;
  double RefWeight = 0;
  bool HaveRef = false;
  for (const KernelDemand &D : Ks) {
    if (D.RequestedWGs == 0)
      continue;
    if (!HaveRef) {
      RefWeight = D.Weight;
      HaveRef = true;
    } else if (D.Weight != RefWeight) {
      EqualWeights = false;
      break;
    }
  }

  auto ProbeGrow = [&](size_t I) {
    const KernelDemand &D = Ks[I];
    const uint64_t PerWG[4] = {D.WGThreads, D.LocalMemPerWG,
                               D.WGThreads * D.RegsPerThread, 1};
    for (unsigned Dim = 0; Dim != 4; ++Dim)
      if (Use[Dim] + PerWG[Dim] > Cap[Dim])
        return false;
    for (unsigned Dim = 0; Dim != 4; ++Dim)
      Use[Dim] += PerWG[Dim];
    ++Shares[I];
    return true;
  };

  if (EqualWeights) {
    // Round-robin growth with the unsaturated set compacted in place:
    // each sweep touches only still-active kernels, in index order —
    // the probe sequence the reference loop produces by scanning and
    // skipping.
    S.Active.clear();
    for (size_t I = 0; I != K; ++I)
      if (Shares[I] < Ks[I].RequestedWGs)
        S.Active.push_back(static_cast<uint32_t>(I));
    while (!S.Active.empty()) {
      size_t Out = 0;
      for (uint32_t I : S.Active)
        if (ProbeGrow(I) && Shares[I] < Ks[I].RequestedWGs)
          S.Active[Out++] = I;
      S.Active.resize(Out);
    }
    return;
  }

  S.Saturated.assign(K, 0);
  for (;;) {
    size_t Next = K;
    double NextNorm = 0;
    for (size_t I = 0; I != K; ++I) {
      if (S.Saturated[I] || Shares[I] >= Ks[I].RequestedWGs)
        continue;
      double Norm = static_cast<double>(Shares[I]) / Ks[I].Weight;
      if (Next == K || Norm < NextNorm) {
        Next = I;
        NextNorm = Norm;
      }
    }
    if (Next == K)
      break;
    if (!ProbeGrow(Next))
      S.Saturated[Next] = 1;
  }
}
