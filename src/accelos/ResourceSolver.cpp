//===- accelos/ResourceSolver.cpp - Fair resource sharing -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/ResourceSolver.h"

#include "sim/DeviceSpec.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::accelos;

ResourceCaps ResourceCaps::fromDevice(const sim::DeviceSpec &Spec) {
  ResourceCaps Caps;
  Caps.Threads = Spec.totalThreads();
  Caps.LocalMem = Spec.totalLocalMem();
  Caps.Regs = Spec.totalRegs();
  Caps.WGSlots = Spec.totalWGSlots();
  return Caps;
}

namespace {

/// \returns true when assigning \p Shares stays within \p Caps.
bool fits(const ResourceCaps &Caps, const std::vector<KernelDemand> &Ks,
          const std::vector<uint64_t> &Shares) {
  uint64_t Threads = 0, Local = 0, Regs = 0, Slots = 0;
  for (size_t I = 0; I != Ks.size(); ++I) {
    ResourceUse Use = footprintOf(Ks[I], Shares[I]);
    Threads += Use.Threads;
    Local += Use.LocalMem;
    Regs += Use.Regs;
    Slots += Use.WGSlots;
  }
  return Threads <= Caps.Threads && Local <= Caps.LocalMem &&
         Regs <= Caps.Regs && Slots <= Caps.WGSlots;
}

} // namespace

std::vector<uint64_t>
accelos::solveFairShares(const ResourceCaps &Caps,
                         const std::vector<KernelDemand> &Ks,
                         const SolverOptions &Opts) {
  assert(!Ks.empty() && "solver needs at least one kernel");
  size_t K = Ks.size();

  // Kernels that request no work groups take no share and are excluded
  // from the fairness divisor: an idle tenant must not dilute the
  // shares of the active ones.
  double TotalWeight = 0;
  for (const KernelDemand &D : Ks)
    if (D.RequestedWGs > 0)
      TotalWeight += D.Weight;

  std::vector<uint64_t> Shares(K, 0);
  if (TotalWeight <= 0)
    return Shares;

  // The pure Sec. 3 divisions always fit in aggregate (each share is a
  // floor of the kernel's exact fractional entitlement), so only the
  // minimum-share floor below can oversubscribe; remember who was
  // floored so the clamp pass can revert exactly those.
  std::vector<bool> Floored(K, false);
  for (size_t I = 0; I != K; ++I) {
    const KernelDemand &D = Ks[I];
    if (D.RequestedWGs == 0)
      continue;
    assert(D.WGThreads > 0 && "zero-thread work group");
    // The kernel's fraction of each resource; equal sharing (paper
    // default) corresponds to Weight == 1 for all kernels, giving the
    // exact Sec. 3 divisors of K.
    double Frac = D.Weight / TotalWeight;

    uint64_t X = static_cast<uint64_t>(
        static_cast<double>(Caps.Threads) * Frac /
        static_cast<double>(D.WGThreads));
    uint64_t Y =
        D.LocalMemPerWG
            ? static_cast<uint64_t>(static_cast<double>(Caps.LocalMem) *
                                    Frac /
                                    static_cast<double>(D.LocalMemPerWG))
            : UINT64_MAX;
    uint64_t RegsPerWG = D.WGThreads * D.RegsPerThread;
    uint64_t Z = RegsPerWG
                     ? static_cast<uint64_t>(
                           static_cast<double>(Caps.Regs) * Frac /
                           static_cast<double>(RegsPerWG))
                     : UINT64_MAX;
    uint64_t SlotShare = static_cast<uint64_t>(
        static_cast<double>(Caps.WGSlots) * Frac);

    uint64_t N = std::min(std::min(X, Y), std::min(Z, SlotShare));
    if (N == 0) {
      N = 1;
      Floored[I] = true;
    }
    N = std::min(N, D.RequestedWGs);
    Shares[I] = N;
  }

  // Clamp pass: the minimum-share floor can push the base allocation
  // past the caps (e.g. more kernels than can physically co-exist).
  // Revert floors until the allocation fits again, each time targeting
  // the most-oversubscribed resource and the floored kernel that
  // contributes most to it, so kernels that are not part of the
  // violation keep their work group.
  while (!fits(Caps, Ks, Shares)) {
    uint64_t Use[4] = {0, 0, 0, 0};
    for (size_t I = 0; I != K; ++I) {
      ResourceUse U = footprintOf(Ks[I], Shares[I]);
      Use[0] += U.Threads;
      Use[1] += U.LocalMem;
      Use[2] += U.Regs;
      Use[3] += U.WGSlots;
    }
    const uint64_t Cap[4] = {Caps.Threads, Caps.LocalMem, Caps.Regs,
                             Caps.WGSlots};
    unsigned Dim = 0;
    double WorstRatio = 0;
    for (unsigned D = 0; D != 4; ++D) {
      double Ratio = static_cast<double>(Use[D]) /
                     static_cast<double>(std::max<uint64_t>(Cap[D], 1));
      if (Ratio > WorstRatio) {
        WorstRatio = Ratio;
        Dim = D;
      }
    }
    auto DemandIn = [&](size_t I) -> uint64_t {
      switch (Dim) {
      case 0:
        return Ks[I].WGThreads;
      case 1:
        return Ks[I].LocalMemPerWG;
      case 2:
        return Ks[I].WGThreads * Ks[I].RegsPerThread;
      default:
        return 1;
      }
    };
    // Victim selection: prefer a floored kernel whose reversion
    // *alone* restores feasibility — the fewest-reverts choice — and
    // break ties toward the largest contributor to the
    // most-oversubscribed resource (the previous heuristic, which
    // remains optimal when the largest contributor is also a
    // single-revert fix). When no single reversion suffices, the
    // bounded multi-revert search below takes over before this
    // fallback fires.
    size_t Victim = K;
    bool VictimRestores = false;
    for (size_t I = 0; I != K; ++I) {
      if (!Floored[I] || Shares[I] == 0)
        continue;
      uint64_t Saved = Shares[I];
      Shares[I] = 0;
      bool Restores = fits(Caps, Ks, Shares);
      Shares[I] = Saved;
      if (Victim == K || (Restores && !VictimRestores) ||
          (Restores == VictimRestores &&
           DemandIn(I) >= DemandIn(Victim))) {
        Victim = I;
        VictimRestores = Restores;
      }
    }
    if (Victim == K) {
      // No floor left to revert; cannot happen for well-formed demands
      // (the floorless allocation fits by construction), but stay
      // defensive: shed proportionally in ONE pass instead of one work
      // group at a time (which is O(total shares)). Scaling every
      // share by the tightest cap/use ratio fits all four dimensions
      // at once: sum(floor(S_i*F)*d_i) <= F*Use_D <= Cap_D for the
      // binding dimension, and non-binding dimensions only improve.
      double F = 1.0;
      for (unsigned D = 0; D != 4; ++D)
        if (Use[D] > Cap[D])
          F = std::min(F, static_cast<double>(Cap[D]) /
                              static_cast<double>(Use[D]));
      bool Any = false;
      for (size_t I = 0; I != K; ++I) {
        uint64_t S = static_cast<uint64_t>(
            static_cast<double>(Shares[I]) * F);
        if (S != Shares[I]) {
          Shares[I] = S;
          Any = true;
        }
      }
      if (!Any)
        break; // Nothing left to shed; give up rather than loop.
      continue;
    }
    if (!VictimRestores) {
      // Bounded bin-covering search (the ROADMAP follow-up to the
      // single-revert preference): no single floor reversion restores
      // feasibility, so search the floored kernels for the smallest
      // revert set — pairs, then triples — whose joint reversion does.
      // Every floored share is exactly one work group, so the smallest
      // set is the revert choice minimizing shed WGs; the iterative
      // largest-contributor fallback can overshoot by one when the
      // violated dimensions alternate (shed the thread hog, then the
      // local-memory hog, then a third kernel, where one balanced pair
      // would have covered both dimensions). Ties between same-size
      // sets go to the largest total demand in the most-oversubscribed
      // dimension (the existing heuristic's preference), then to the
      // earliest candidates — deterministic either way. The search is
      // bounded twice over: subsets of size <= 3 only, and skipped
      // entirely past a candidate-count cap so clamp time cannot blow
      // up cubically on a pathological queue.
      std::vector<size_t> Cands;
      for (size_t I = 0; I != K; ++I)
        if (Floored[I] && Shares[I] != 0)
          Cands.push_back(I);
      auto Restores = [&](std::initializer_list<size_t> Set) {
        uint64_t Freed[4] = {0, 0, 0, 0};
        for (size_t I : Set) {
          ResourceUse U = footprintOf(Ks[I], Shares[I]);
          Freed[0] += U.Threads;
          Freed[1] += U.LocalMem;
          Freed[2] += U.Regs;
          Freed[3] += U.WGSlots;
        }
        for (unsigned D = 0; D != 4; ++D)
          if (Use[D] - Freed[D] > Cap[D])
            return false;
        return true;
      };
      auto DemandSum = [&](std::initializer_list<size_t> Set) {
        uint64_t Sum = 0;
        for (size_t I : Set)
          Sum += DemandIn(I);
        return Sum;
      };
      constexpr size_t PairCap = 256, TripleCap = 48;
      std::vector<size_t> Best;
      uint64_t BestDemand = 0;
      if (Cands.size() <= PairCap) {
        for (size_t X = 0; X != Cands.size(); ++X)
          for (size_t Y = X + 1; Y != Cands.size(); ++Y) {
            size_t A = Cands[X], B = Cands[Y];
            if (!Restores({A, B}))
              continue;
            uint64_t D = DemandSum({A, B});
            if (Best.empty() || D > BestDemand) {
              Best = {A, B};
              BestDemand = D;
            }
          }
      }
      if (Best.empty() && Cands.size() <= TripleCap) {
        for (size_t X = 0; X != Cands.size(); ++X)
          for (size_t Y = X + 1; Y != Cands.size(); ++Y)
            for (size_t Z = Y + 1; Z != Cands.size(); ++Z) {
              size_t A = Cands[X], B = Cands[Y], C = Cands[Z];
              if (!Restores({A, B, C}))
                continue;
              uint64_t D = DemandSum({A, B, C});
              if (Best.empty() || D > BestDemand) {
                Best = {A, B, C};
                BestDemand = D;
              }
            }
      }
      if (!Best.empty()) {
        for (size_t I : Best)
          Shares[I] = 0;
        continue; // fits() holds now; the loop exits.
      }
    }
    Shares[Victim] = 0;
  }

  if (!Opts.GreedySaturation)
    return Shares;

  // Only active kernels' weights matter: a zero-work request neither
  // takes a share nor may its (arbitrary) weight flip the solve onto
  // the weighted path.
  bool EqualWeights = true;
  double RefWeight = 0;
  bool HaveRef = false;
  for (const KernelDemand &D : Ks) {
    if (D.RequestedWGs == 0)
      continue;
    if (!HaveRef) {
      RefWeight = D.Weight;
      HaveRef = true;
    } else if (D.Weight != RefWeight) {
      EqualWeights = false;
      break;
    }
  }

  if (EqualWeights) {
    // Greedy saturation (Sec. 3): grow shares round-robin until no
    // kernel can take another work group.
    for (bool Progress = true; Progress;) {
      Progress = false;
      for (size_t I = 0; I != K; ++I) {
        if (Shares[I] >= Ks[I].RequestedWGs)
          continue;
        ++Shares[I];
        if (fits(Caps, Ks, Shares)) {
          Progress = true;
        } else {
          --Shares[I];
        }
      }
    }
    return Shares;
  }

  // Weighted saturation (Sec. 2.2 non-equal sharing ratios): plain
  // round-robin would hand every kernel the same number of extra work
  // groups and wash the weights out of the final allocation exactly
  // when they matter most — under contention, where the base divisions
  // are a small fraction of what saturation hands out. Instead run
  // weighted max-min filling: always grow the unsaturated kernel with
  // the smallest weight-normalized share (ties to the lower index, so
  // the result is deterministic), until nothing fits. Equal weights
  // reduce to the round-robin above, which is kept verbatim so the
  // paper-default allocations stay bit-identical.
  std::vector<bool> Saturated(K, false);
  for (;;) {
    size_t Next = K;
    double NextNorm = 0;
    for (size_t I = 0; I != K; ++I) {
      if (Saturated[I] || Shares[I] >= Ks[I].RequestedWGs)
        continue;
      double Norm = static_cast<double>(Shares[I]) / Ks[I].Weight;
      if (Next == K || Norm < NextNorm) {
        Next = I;
        NextNorm = Norm;
      }
    }
    if (Next == K)
      break;
    ++Shares[Next];
    if (!fits(Caps, Ks, Shares)) {
      --Shares[Next];
      Saturated[Next] = true;
    }
  }
  return Shares;
}
