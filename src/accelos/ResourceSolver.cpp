//===- accelos/ResourceSolver.cpp - Fair resource sharing -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/ResourceSolver.h"

#include "sim/DeviceSpec.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::accelos;

ResourceCaps ResourceCaps::fromDevice(const sim::DeviceSpec &Spec) {
  ResourceCaps Caps;
  Caps.Threads = Spec.totalThreads();
  Caps.LocalMem = Spec.totalLocalMem();
  Caps.Regs = Spec.totalRegs();
  Caps.WGSlots = Spec.totalWGSlots();
  return Caps;
}

namespace {

/// \returns true when assigning \p Shares stays within \p Caps.
bool fits(const ResourceCaps &Caps, const std::vector<KernelDemand> &Ks,
          const std::vector<uint64_t> &Shares) {
  uint64_t Threads = 0, Local = 0, Regs = 0, Slots = 0;
  for (size_t I = 0; I != Ks.size(); ++I) {
    Threads += Shares[I] * Ks[I].WGThreads;
    Local += Shares[I] * Ks[I].LocalMemPerWG;
    Regs += Shares[I] * Ks[I].WGThreads * Ks[I].RegsPerThread;
    Slots += Shares[I];
  }
  return Threads <= Caps.Threads && Local <= Caps.LocalMem &&
         Regs <= Caps.Regs && Slots <= Caps.WGSlots;
}

} // namespace

std::vector<uint64_t>
accelos::solveFairShares(const ResourceCaps &Caps,
                         const std::vector<KernelDemand> &Ks,
                         const SolverOptions &Opts) {
  assert(!Ks.empty() && "solver needs at least one kernel");
  size_t K = Ks.size();

  double TotalWeight = 0;
  for (const KernelDemand &D : Ks)
    TotalWeight += D.Weight;
  assert(TotalWeight > 0 && "weights must be positive");

  std::vector<uint64_t> Shares(K, 0);
  for (size_t I = 0; I != K; ++I) {
    const KernelDemand &D = Ks[I];
    assert(D.WGThreads > 0 && "zero-thread work group");
    // The kernel's fraction of each resource; equal sharing (paper
    // default) corresponds to Weight == 1 for all kernels, giving the
    // exact Sec. 3 divisors of K.
    double Frac = D.Weight / TotalWeight;

    uint64_t X = static_cast<uint64_t>(
        static_cast<double>(Caps.Threads) * Frac /
        static_cast<double>(D.WGThreads));
    uint64_t Y =
        D.LocalMemPerWG
            ? static_cast<uint64_t>(static_cast<double>(Caps.LocalMem) *
                                    Frac /
                                    static_cast<double>(D.LocalMemPerWG))
            : UINT64_MAX;
    uint64_t RegsPerWG = D.WGThreads * D.RegsPerThread;
    uint64_t Z = RegsPerWG
                     ? static_cast<uint64_t>(
                           static_cast<double>(Caps.Regs) * Frac /
                           static_cast<double>(RegsPerWG))
                     : UINT64_MAX;
    uint64_t SlotShare = static_cast<uint64_t>(
        static_cast<double>(Caps.WGSlots) * Frac);

    uint64_t N = std::min(std::min(X, Y), std::min(Z, SlotShare));
    N = std::max<uint64_t>(N, 1);
    N = std::min(N, D.RequestedWGs ? D.RequestedWGs : 1);
    Shares[I] = N;
  }

  if (!Opts.GreedySaturation)
    return Shares;

  // Greedy saturation (Sec. 3): grow shares round-robin until no kernel
  // can take another work group.
  for (bool Progress = true; Progress;) {
    Progress = false;
    for (size_t I = 0; I != K; ++I) {
      if (Shares[I] >= Ks[I].RequestedWGs)
        continue;
      ++Shares[I];
      if (fits(Caps, Ks, Shares)) {
        Progress = true;
      } else {
        --Shares[I];
      }
    }
  }
  return Shares;
}
