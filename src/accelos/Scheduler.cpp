//===- accelos/Scheduler.cpp - Round-based kernel scheduler ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::accelos;

namespace {

/// \returns how many work groups of \p D fit into \p Free.
uint64_t maxFitting(const ResourceCaps &Free, const KernelDemand &D) {
  ResourceUse PerWG = footprintOf(D, 1);
  assert(PerWG.Threads > 0 && "zero-thread work group");
  uint64_t Fit = Free.Threads / PerWG.Threads;
  if (PerWG.LocalMem)
    Fit = std::min(Fit, Free.LocalMem / PerWG.LocalMem);
  if (PerWG.Regs)
    Fit = std::min(Fit, Free.Regs / PerWG.Regs);
  return std::min(Fit, Free.WGSlots);
}

/// Saturating in-place subtraction of one grant's footprint.
void subtractFootprint(ResourceCaps &Free, const KernelDemand &D,
                       uint64_t WGs) {
  ResourceUse Use = footprintOf(D, WGs);
  auto Sub = [](uint64_t &Cap, uint64_t U) { Cap -= std::min(Cap, U); };
  Sub(Free.Threads, Use.Threads);
  Sub(Free.LocalMem, Use.LocalMem);
  Sub(Free.Regs, Use.Regs);
  Sub(Free.WGSlots, Use.WGSlots);
}

} // namespace

RoundGrant RoundScheduler::soloGrant(const Entry &E) const {
  std::vector<uint64_t> Shares = solveFairShares(Caps, {E.R.Demand}, Opts);
  // Alone, any well-formed request solves to at least one work group.
  // The floor below is the one remaining use of launchWGs(): a request
  // whose single work group exceeds even the empty device can only be
  // serialized by the execution layer, never shed — its work must not
  // silently disappear.
  return {E.R.Id, E.R.Demand.RequestedWGs == 0 ? 0 : launchWGs(Shares[0])};
}

std::vector<RoundGrant> RoundScheduler::nextRound() {
  std::vector<RoundGrant> Grants;
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;

  std::vector<KernelDemand> Demands;
  Demands.reserve(Queue.size());
  for (const Entry &E : Queue)
    Demands.push_back(E.R.Demand);
  std::vector<uint64_t> Shares = solveFairShares(Caps, Demands, Opts);

  // Anti-starvation: when the clamp would shed the queue head (always
  // the longest-waiting request) yet again after repeated losses, give
  // it a dedicated round instead; everyone else simply stays queued.
  if (Shares[0] == 0 && Queue.front().R.Demand.RequestedWGs != 0 &&
      Queue.front().DeferCount >= MaxDeferrals) {
    ++Stats.SoloRescues;
    Grants.push_back(soloGrant(Queue.front()));
    Queue.pop_front();
    return Grants;
  }

  std::deque<Entry> Deferred;
  for (size_t I = 0; I != Shares.size(); ++I) {
    Entry &E = Queue[I];
    // Zero-request submissions complete trivially with zero work groups
    // instead of deferring forever; clamp-shed requests wait for the
    // next, smaller round.
    if (Shares[I] == 0 && E.R.Demand.RequestedWGs != 0) {
      ++E.DeferCount;
      ++Stats.Deferrals;
      Deferred.push_back(E);
      continue;
    }
    Grants.push_back({E.R.Id, Shares[I]});
  }

  // Every request shed: force the head through alone so each round is
  // guaranteed to make progress. The head is granted in *this* round
  // after all, so the deferral charged to it above is taken back.
  if (Grants.empty()) {
    ++Stats.SoloRescues;
    --Stats.Deferrals;
    Grants.push_back(soloGrant(Deferred.front()));
    Deferred.pop_front();
  }

  Queue = std::move(Deferred);
  return Grants;
}

//===----------------------------------------------------------------------===//
// ContinuousScheduler
//===----------------------------------------------------------------------===//

ResourceCaps ContinuousScheduler::residual() const {
  ResourceCaps Free = Caps;
  for (const auto &[Id, F] : Flights)
    subtractFootprint(Free, F.Demand, F.WGs);
  return Free;
}

void ContinuousScheduler::complete(uint64_t Id) {
  [[maybe_unused]] size_t Erased = Flights.erase(Id);
  assert(Erased == 1 && "completing an execution that is not in flight");
}

void ContinuousScheduler::shrink(uint64_t Id, uint64_t WGs) {
  auto It = Flights.find(Id);
  assert(It != Flights.end() && "shrinking an execution not in flight");
  assert(WGs > 0 && WGs <= It->second.WGs &&
         "shrink must narrow a grant, not grow it");
  It->second.WGs = WGs;
}

std::vector<RoundGrant> ContinuousScheduler::admit() {
  std::vector<RoundGrant> Grants;
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;

  // Fair-share targets over everything active. In-flight executions
  // keep their grants (no preemption) but stay in the divisor, capped
  // at what they actually occupy, so a pending request's target is the
  // share it deserves *next to* the current residents.
  std::vector<KernelDemand> Demands;
  Demands.reserve(Flights.size() + Queue.size());
  for (const auto &[Id, F] : Flights) {
    KernelDemand D = F.Demand;
    D.RequestedWGs = F.WGs;
    Demands.push_back(D);
  }
  for (const Entry &E : Queue) {
    KernelDemand D = E.R.Demand;
    // Degenerate zero-thread demands must not reach the solver's (or
    // maxFitting's) divisions; they are granted zero work groups below.
    if (D.WGThreads == 0)
      D.RequestedWGs = 0;
    Demands.push_back(D);
  }
  std::vector<uint64_t> Shares = solveFairShares(Caps, Demands, Opts);
  // Queue entries follow the in-flight block in the solve; grants below
  // grow Flights, so the offset must be pinned here.
  const size_t QueueBase = Flights.size();

  ResourceCaps Free = residual();
  std::deque<Entry> Kept;
  // Everyone still in Kept when a younger grant lands was overtaken;
  // each is charged at most one deferral per pass.
  size_t ChargedUpTo = 0;
  bool Blocked = false;
  bool AnyCapacityGrant = false;
  for (size_t I = 0; I != Queue.size(); ++I) {
    Entry &E = Queue[I];
    uint64_t Target = Shares[QueueBase + I];
    // Zero-work (or degenerate zero-thread) requests complete
    // trivially: zero work groups, no flight, no capacity.
    if (E.R.Demand.RequestedWGs == 0 || E.R.Demand.WGThreads == 0) {
      Grants.push_back({E.R.Id, 0});
      continue;
    }
    uint64_t WGs = 0;
    if (!Blocked) {
      WGs = std::min(Target, maxFitting(Free, E.R.Demand));
      if (WGs == 0 && Flights.empty() && !AnyCapacityGrant) {
        // Work conservation: an idle device never refuses its oldest
        // request. Mirror the round scheduler's solo grant (launchWGs
        // floors the pathological over-sized single work group).
        WGs = launchWGs(
            solveFairShares(Caps, {E.R.Demand}, Opts).front());
        ++Stats.SoloRescues;
      }
    }
    if (WGs == 0) {
      if (E.DeferCount >= MaxDeferrals)
        Blocked = true; // Starving: hold every younger request back.
      Kept.push_back(E);
      continue;
    }
    for (size_t J = ChargedUpTo; J != Kept.size(); ++J) {
      ++Kept[J].DeferCount;
      ++Stats.Deferrals;
    }
    ChargedUpTo = Kept.size();
    Grants.push_back({E.R.Id, WGs});
    assert(!Flights.count(E.R.Id) &&
           "request admitted while already in flight");
    Flights[E.R.Id] = {E.R.Demand, WGs};
    subtractFootprint(Free, E.R.Demand, WGs);
    AnyCapacityGrant = true;
  }

  Queue = std::move(Kept);
  return Grants;
}
