//===- accelos/Scheduler.cpp - Round-based kernel scheduler ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/Scheduler.h"

using namespace accel;
using namespace accel::accelos;

RoundGrant RoundScheduler::soloGrant(const Entry &E) const {
  std::vector<uint64_t> Shares = solveFairShares(Caps, {E.R.Demand}, Opts);
  // Alone, any well-formed request solves to at least one work group.
  // The floor below is the one remaining use of launchWGs(): a request
  // whose single work group exceeds even the empty device can only be
  // serialized by the execution layer, never shed — its work must not
  // silently disappear.
  return {E.R.Id, E.R.Demand.RequestedWGs == 0 ? 0 : launchWGs(Shares[0])};
}

std::vector<RoundGrant> RoundScheduler::nextRound() {
  std::vector<RoundGrant> Grants;
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;

  std::vector<KernelDemand> Demands;
  Demands.reserve(Queue.size());
  for (const Entry &E : Queue)
    Demands.push_back(E.R.Demand);
  std::vector<uint64_t> Shares = solveFairShares(Caps, Demands, Opts);

  // Anti-starvation: when the clamp would shed the queue head (always
  // the longest-waiting request) yet again after repeated losses, give
  // it a dedicated round instead; everyone else simply stays queued.
  if (Shares[0] == 0 && Queue.front().R.Demand.RequestedWGs != 0 &&
      Queue.front().DeferCount >= MaxDeferrals) {
    ++Stats.SoloRescues;
    Grants.push_back(soloGrant(Queue.front()));
    Queue.pop_front();
    return Grants;
  }

  std::deque<Entry> Deferred;
  for (size_t I = 0; I != Shares.size(); ++I) {
    Entry &E = Queue[I];
    // Zero-request submissions complete trivially with zero work groups
    // instead of deferring forever; clamp-shed requests wait for the
    // next, smaller round.
    if (Shares[I] == 0 && E.R.Demand.RequestedWGs != 0) {
      ++E.DeferCount;
      ++Stats.Deferrals;
      Deferred.push_back(E);
      continue;
    }
    Grants.push_back({E.R.Id, Shares[I]});
  }

  // Every request shed: force the head through alone so each round is
  // guaranteed to make progress. The head is granted in *this* round
  // after all, so the deferral charged to it above is taken back.
  if (Grants.empty()) {
    ++Stats.SoloRescues;
    --Stats.Deferrals;
    Grants.push_back(soloGrant(Deferred.front()));
    Deferred.pop_front();
  }

  Queue = std::move(Deferred);
  return Grants;
}
