//===- accelos/Scheduler.cpp - Round-based kernel scheduler ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/Scheduler.h"

#include "metrics/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::accelos;

namespace {

/// \returns how many work groups of \p D fit into \p Free.
uint64_t maxFitting(const ResourceCaps &Free, const KernelDemand &D) {
  ResourceUse PerWG = footprintOf(D, 1);
  assert(PerWG.Threads > 0 && "zero-thread work group");
  uint64_t Fit = Free.Threads / PerWG.Threads;
  if (PerWG.LocalMem)
    Fit = std::min(Fit, Free.LocalMem / PerWG.LocalMem);
  if (PerWG.Regs)
    Fit = std::min(Fit, Free.Regs / PerWG.Regs);
  return std::min(Fit, Free.WGSlots);
}

/// Saturating in-place subtraction of one grant's footprint.
void subtractFootprint(ResourceCaps &Free, const KernelDemand &D,
                       uint64_t WGs) {
  ResourceUse Use = footprintOf(D, WGs);
  auto Sub = [](uint64_t &Cap, uint64_t U) { Cap -= std::min(Cap, U); };
  Sub(Free.Threads, Use.Threads);
  Sub(Free.LocalMem, Use.LocalMem);
  Sub(Free.Regs, Use.Regs);
  Sub(Free.WGSlots, Use.WGSlots);
}

} // namespace

RoundGrant RoundScheduler::soloGrant(const Entry &E) const {
  std::vector<uint64_t> Shares = solveFairShares(Caps, {E.R.Demand}, Opts);
  // Alone, any well-formed request solves to at least one work group.
  // The floor below is the one remaining use of launchWGs(): a request
  // whose single work group exceeds even the empty device can only be
  // serialized by the execution layer, never shed — its work must not
  // silently disappear.
  return {E.R.Id, E.R.Demand.RequestedWGs == 0 ? 0 : launchWGs(Shares[0])};
}

std::vector<RoundGrant> RoundScheduler::nextRound() {
  std::vector<RoundGrant> Grants;
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;

  std::vector<KernelDemand> Demands;
  Demands.reserve(Queue.size());
  for (const Entry &E : Queue)
    Demands.push_back(E.R.Demand);
  std::vector<uint64_t> Shares = solveFairShares(Caps, Demands, Opts);

  // Anti-starvation: when the clamp would shed the queue head (always
  // the longest-waiting request) yet again after repeated losses, give
  // it a dedicated round instead; everyone else simply stays queued.
  if (Shares[0] == 0 && Queue.front().R.Demand.RequestedWGs != 0 &&
      Queue.front().DeferCount >= MaxDeferrals) {
    ++Stats.SoloRescues;
    Grants.push_back(soloGrant(Queue.front()));
    Queue.pop_front();
    return Grants;
  }

  std::deque<Entry> Deferred;
  for (size_t I = 0; I != Shares.size(); ++I) {
    Entry &E = Queue[I];
    // Zero-request submissions complete trivially with zero work groups
    // instead of deferring forever; clamp-shed requests wait for the
    // next, smaller round.
    if (Shares[I] == 0 && E.R.Demand.RequestedWGs != 0) {
      ++E.DeferCount;
      ++Stats.Deferrals;
      Deferred.push_back(E);
      continue;
    }
    Grants.push_back({E.R.Id, Shares[I]});
  }

  // Every request shed: force the head through alone so each round is
  // guaranteed to make progress. The head is granted in *this* round
  // after all, so the deferral charged to it above is taken back.
  if (Grants.empty()) {
    ++Stats.SoloRescues;
    --Stats.Deferrals;
    Grants.push_back(soloGrant(Deferred.front()));
    Deferred.pop_front();
  }

  Queue = std::move(Deferred);
  return Grants;
}

//===----------------------------------------------------------------------===//
// ContinuousScheduler
//===----------------------------------------------------------------------===//

ResourceCaps ContinuousScheduler::residual() const {
  ResourceCaps Free = Caps;
  for (const auto &[Id, F] : Flights)
    subtractFootprint(Free, F.Demand, F.WGs);
  return Free;
}

void ContinuousScheduler::complete(uint64_t Id) {
  [[maybe_unused]] size_t Erased = Flights.erase(Id);
  assert(Erased == 1 && "completing an execution that is not in flight");
}

void ContinuousScheduler::shrink(uint64_t Id, uint64_t WGs) {
  auto It = Flights.find(Id);
  assert(It != Flights.end() && "shrinking an execution not in flight");
  assert(WGs > 0 && WGs <= It->second.WGs &&
         "shrink must narrow a grant, not grow it");
  It->second.WGs = WGs;
}

std::vector<RoundGrant> ContinuousScheduler::admit() {
  std::vector<RoundGrant> Grants;
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;

  // Fair-share targets over everything active. In-flight executions
  // keep their grants (no preemption) but stay in the divisor, capped
  // at what they actually occupy, so a pending request's target is the
  // share it deserves *next to* the current residents.
  std::vector<KernelDemand> Demands;
  Demands.reserve(Flights.size() + Queue.size());
  for (const auto &[Id, F] : Flights) {
    KernelDemand D = F.Demand;
    D.RequestedWGs = F.WGs;
    Demands.push_back(D);
  }
  for (const Entry &E : Queue) {
    KernelDemand D = E.R.Demand;
    // Degenerate zero-thread demands must not reach the solver's (or
    // maxFitting's) divisions; they are granted zero work groups below.
    if (D.WGThreads == 0)
      D.RequestedWGs = 0;
    Demands.push_back(D);
  }
  std::vector<uint64_t> Shares = solveFairShares(Caps, Demands, Opts);
  // Queue entries follow the in-flight block in the solve; grants below
  // grow Flights, so the offset must be pinned here.
  const size_t QueueBase = Flights.size();

  // Admission order. The paper-default equal-weight discipline is plain
  // FIFO (kept verbatim: bit-identical). With non-equal weights, FIFO
  // would defeat the weights exactly under saturation — a heavy
  // tenant's requeued slice waits out every lighter request ahead of it
  // each cycle — so pending requests are served highest-weight first,
  // FIFO among equal weights. A starving request (DeferCount at the
  // MaxDeferrals bound) goes first regardless of weight, so weighted
  // priority cannot bypass anyone indefinitely.
  std::vector<size_t> Order(Queue.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  // Mixed-weight detection over work-carrying entries only: zero-work
  // submissions complete trivially wherever they sit, so their weights
  // must not flip the queue into priority order.
  bool MixedWeights = false;
  double RefWeight = 0;
  bool HaveRef = false;
  for (const Entry &E : Queue) {
    if (E.R.Demand.RequestedWGs == 0)
      continue;
    if (!HaveRef) {
      RefWeight = E.R.Demand.Weight;
      HaveRef = true;
    } else if (E.R.Demand.Weight != RefWeight) {
      MixedWeights = true;
      break;
    }
  }
  if (MixedWeights)
    std::stable_sort(Order.begin(), Order.end(),
                     [&](size_t A, size_t B) {
                       bool SA = Queue[A].DeferCount >= MaxDeferrals;
                       bool SB = Queue[B].DeferCount >= MaxDeferrals;
                       if (SA != SB)
                         return SA;
                       return Queue[A].R.Demand.Weight >
                              Queue[B].R.Demand.Weight;
                     });

  ResourceCaps Free = residual();
  std::deque<Entry> Kept;
  // Everyone still in Kept when a later grant lands was overtaken; each
  // is charged at most one deferral per pass.
  size_t ChargedUpTo = 0;
  bool Blocked = false;
  bool AnyCapacityGrant = false;
  for (size_t OI = 0; OI != Order.size(); ++OI) {
    Entry &E = Queue[Order[OI]];
    uint64_t Target = Shares[QueueBase + Order[OI]];
    // Zero-work (or degenerate zero-thread) requests complete
    // trivially: zero work groups, no flight, no capacity.
    if (E.R.Demand.RequestedWGs == 0 || E.R.Demand.WGThreads == 0) {
      Grants.push_back({E.R.Id, 0});
      continue;
    }
    uint64_t WGs = 0;
    if (!Blocked) {
      WGs = std::min(Target, maxFitting(Free, E.R.Demand));
      if (WGs == 0 && Flights.empty() && !AnyCapacityGrant) {
        // Work conservation: an idle device never refuses its oldest
        // request. Mirror the round scheduler's solo grant (launchWGs
        // floors the pathological over-sized single work group).
        WGs = launchWGs(
            solveFairShares(Caps, {E.R.Demand}, Opts).front());
        ++Stats.SoloRescues;
      }
    }
    if (WGs == 0) {
      if (E.DeferCount >= MaxDeferrals)
        Blocked = true; // Starving: hold every younger request back.
      Kept.push_back(E);
      continue;
    }
    // FIFO order: everyone still in Kept when this (younger) grant
    // lands was overtaken. Under weighted priority the grants land
    // FIRST (heaviest served before anyone is kept), so this loop
    // would never charge exactly the requests being bypassed; the
    // whole-pass charge below replaces it.
    if (!MixedWeights) {
      for (size_t J = ChargedUpTo; J != Kept.size(); ++J) {
        ++Kept[J].DeferCount;
        ++Stats.Deferrals;
      }
      ChargedUpTo = Kept.size();
    }
    Grants.push_back({E.R.Id, WGs});
    assert(!Flights.count(E.R.Id) &&
           "request admitted while already in flight");
    Flights[E.R.Id] = {E.R.Demand, WGs};
    subtractFootprint(Free, E.R.Demand, WGs);
    AnyCapacityGrant = true;
  }

  // Weighted priority: every work-carrying request passed over while
  // this pass granted capacity was bypassed, no matter where the grant
  // sat in the iteration. Charging here (once per pass) is what makes
  // the starving-first override reachable — after MaxDeferrals such
  // passes the request sorts ahead of any weight.
  if (MixedWeights && AnyCapacityGrant)
    for (Entry &E : Kept)
      if (E.R.Demand.RequestedWGs > 0) {
        ++E.DeferCount;
        ++Stats.Deferrals;
      }

  Queue = std::move(Kept);
  return Grants;
}

//===----------------------------------------------------------------------===//
// SloWeightController
//===----------------------------------------------------------------------===//

SloWeightController::SloWeightController(
    const std::map<int, double> &Targets,
    const std::map<int, double> &BaseWeights, double Interval,
    SloControllerOptions Opts)
    : Interval(Interval), NextUpdate(Interval), Opts(Opts) {
  assert(Interval > 0 && "non-positive control interval");
  assert(Opts.IncreaseFactor > 1 && Opts.DecayFactor > 1 &&
         Opts.MaxBoost >= 1 && "degenerate controller tuning");
  for (const auto &[Tenant, Base] : BaseWeights) {
    assert(Base > 0 && "non-positive static weight");
    Tenants[Tenant].Base = Base;
  }
  for (const auto &[Tenant, Target] : Targets) {
    assert(Target > 0 && "non-positive SLO target");
    Tenants[Tenant].Target = Target;
  }
}

SloWeightController::TenantState &SloWeightController::state(int Tenant) {
  return Tenants[Tenant]; // Default state: no target, base 1, boost 1.
}

void SloWeightController::observe(int Tenant, double QueueDelay) {
  TenantState &S = state(Tenant);
  if (S.Target > 0)
    S.Window.push_back(QueueDelay);
}

bool SloWeightController::maybeUpdate(double Now) {
  if (Now < NextUpdate)
    return false;
  // Events can be sparse; re-arm one interval from *now* rather than
  // replaying every missed period against the same stale window.
  NextUpdate = Now + Interval;
  ++Stats.Updates;

  bool Changed = false;
  for (auto &[Tenant, S] : Tenants) {
    std::vector<double> Window = std::move(S.Window);
    S.Window.clear();
    if (S.Target <= 0 || Window.size() < Opts.MinSamples)
      continue;
    double P95 = metrics::latencyPercentile(std::move(Window), 95);
    if (P95 > S.Target) {
      // Missed SLO: multiplicative increase toward the bound.
      double Next = std::min(S.Boost * Opts.IncreaseFactor, Opts.MaxBoost);
      Changed |= Next != S.Boost;
      if (Next != S.Boost)
        ++Stats.Increases;
      S.Boost = Next;
    } else if (P95 <= Opts.Headroom * S.Target && S.Boost > 1.0) {
      // Comfortable attainment: decay back toward the static weight.
      S.Boost = std::max(S.Boost / Opts.DecayFactor, 1.0);
      ++Stats.Decays;
      Changed = true;
    }
  }
  return Changed;
}

double SloWeightController::weight(int Tenant) const {
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? 1.0 : It->second.Base * It->second.Boost;
}

double SloWeightController::boost(int Tenant) const {
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? 1.0 : It->second.Boost;
}

std::map<int, double> SloWeightController::weights() const {
  std::map<int, double> Out;
  for (const auto &[Tenant, S] : Tenants)
    Out[Tenant] = S.Base * S.Boost;
  return Out;
}
