//===- accelos/Scheduler.cpp - Round-based kernel scheduler ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/Scheduler.h"

#include "metrics/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::accelos;

namespace {

/// \returns how many work groups of \p D fit into \p Free.
uint64_t maxFitting(const ResourceCaps &Free, const KernelDemand &D) {
  ResourceUse PerWG = footprintOf(D, 1);
  assert(PerWG.Threads > 0 && "zero-thread work group");
  uint64_t Fit = Free.Threads / PerWG.Threads;
  if (PerWG.LocalMem)
    Fit = std::min(Fit, Free.LocalMem / PerWG.LocalMem);
  if (PerWG.Regs)
    Fit = std::min(Fit, Free.Regs / PerWG.Regs);
  return std::min(Fit, Free.WGSlots);
}

/// Saturating in-place subtraction of one grant's footprint.
void subtractFootprint(ResourceCaps &Free, const KernelDemand &D,
                       uint64_t WGs) {
  ResourceUse Use = footprintOf(D, WGs);
  auto Sub = [](uint64_t &Cap, uint64_t U) { Cap -= std::min(Cap, U); };
  Sub(Free.Threads, Use.Threads);
  Sub(Free.LocalMem, Use.LocalMem);
  Sub(Free.Regs, Use.Regs);
  Sub(Free.WGSlots, Use.WGSlots);
}

/// Exact aggregate-footprint arithmetic for the schedulers' O(1)
/// residual accounting. Additions and subtractions are symmetric, so a
/// footprint removed is exactly the footprint that was added.
void addUse(ResourceUse &A, const ResourceUse &B) {
  A.Threads += B.Threads;
  A.LocalMem += B.LocalMem;
  A.Regs += B.Regs;
  A.WGSlots += B.WGSlots;
}

void subUse(ResourceUse &A, const ResourceUse &B) {
  assert(A.Threads >= B.Threads && A.LocalMem >= B.LocalMem &&
         A.Regs >= B.Regs && A.WGSlots >= B.WGSlots &&
         "aggregate footprint accounting went negative");
  A.Threads -= B.Threads;
  A.LocalMem -= B.LocalMem;
  A.Regs -= B.Regs;
  A.WGSlots -= B.WGSlots;
}

/// \p Caps minus \p Use, saturating at zero (a solo-rescue grant may
/// legitimately exceed the device; see ContinuousScheduler::admit).
ResourceCaps residualOf(const ResourceCaps &Caps, const ResourceUse &Use) {
  ResourceCaps Free = Caps;
  auto Sub = [](uint64_t &Cap, uint64_t U) { Cap -= std::min(Cap, U); };
  Sub(Free.Threads, Use.Threads);
  Sub(Free.LocalMem, Use.LocalMem);
  Sub(Free.Regs, Use.Regs);
  Sub(Free.WGSlots, Use.WGSlots);
  return Free;
}

/// A queued request's aggregate footprint at its full size, under the
/// same zero-thread normalization admit() applies before solving.
ResourceUse queueFootprint(const KernelDemand &D) {
  return footprintOf(D, D.WGThreads == 0 ? 0 : D.RequestedWGs);
}

} // namespace

RoundGrant RoundScheduler::soloGrant(const Entry &E) const {
  std::vector<uint64_t> Shares = solveFairShares(Caps, {E.R.Demand}, Opts);
  // Alone, any well-formed request solves to at least one work group.
  // The floor below is the one remaining use of launchWGs(): a request
  // whose single work group exceeds even the empty device can only be
  // serialized by the execution layer, never shed — its work must not
  // silently disappear.
  return {E.R.Id, E.R.Demand.RequestedWGs == 0 ? 0 : launchWGs(Shares[0])};
}

std::vector<RoundGrant> RoundScheduler::nextRound() {
  std::vector<RoundGrant> Grants;
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;
  ++Stats.FullSolves; // Round-synchronous planning always solves.

  std::vector<KernelDemand> Demands;
  Demands.reserve(Queue.size());
  for (const Entry &E : Queue)
    Demands.push_back(E.R.Demand);
  std::vector<uint64_t> Shares = solveFairShares(Caps, Demands, Opts);

  // Anti-starvation: when the clamp would shed the queue head (always
  // the longest-waiting request) yet again after repeated losses, give
  // it a dedicated round instead; everyone else simply stays queued.
  if (Shares[0] == 0 && Queue.front().R.Demand.RequestedWGs != 0 &&
      Queue.front().DeferCount >= MaxDeferrals) {
    ++Stats.SoloRescues;
    Grants.push_back(soloGrant(Queue.front()));
    Queue.pop_front();
    return Grants;
  }

  std::deque<Entry> Deferred;
  for (size_t I = 0; I != Shares.size(); ++I) {
    Entry &E = Queue[I];
    // Zero-request submissions complete trivially with zero work groups
    // instead of deferring forever; clamp-shed requests wait for the
    // next, smaller round.
    if (Shares[I] == 0 && E.R.Demand.RequestedWGs != 0) {
      ++E.DeferCount;
      ++Stats.Deferrals;
      Deferred.push_back(E);
      continue;
    }
    Grants.push_back({E.R.Id, Shares[I]});
  }

  // Every request shed: force the head through alone so each round is
  // guaranteed to make progress. The head is granted in *this* round
  // after all, so the deferral charged to it above is taken back.
  if (Grants.empty()) {
    ++Stats.SoloRescues;
    --Stats.Deferrals;
    Grants.push_back(soloGrant(Deferred.front()));
    Deferred.pop_front();
  }

  Queue = std::move(Deferred);
  return Grants;
}

//===----------------------------------------------------------------------===//
// ContinuousScheduler
//===----------------------------------------------------------------------===//

ResourceCaps ContinuousScheduler::residual() const {
  return residualOf(Caps, FlightUse);
}

void ContinuousScheduler::submit(const RoundRequest &R) {
  Queue.push_back({R, 0});
  addUse(QueueUse, queueFootprint(R.Demand));
  if (R.Demand.RequestedWGs > 0 && R.Demand.WGThreads > 0)
    MinWGThreads = std::min(MinWGThreads, R.Demand.WGThreads);
}

void ContinuousScheduler::complete(uint64_t Id) {
  auto It = Flights.find(Id);
  assert(It != Flights.end() &&
         "completing an execution that is not in flight");
  if (It == Flights.end())
    return;
  subUse(FlightUse, footprintOf(It->second.Demand, It->second.WGs));
  Flights.erase(It);
}

void ContinuousScheduler::shrink(uint64_t Id, uint64_t WGs) {
  auto It = Flights.find(Id);
  assert(It != Flights.end() && "shrinking an execution not in flight");
  assert(WGs > 0 && WGs <= It->second.WGs &&
         "shrink must narrow a grant, not grow it");
  subUse(FlightUse, footprintOf(It->second.Demand, It->second.WGs - WGs));
  It->second.WGs = WGs;
}

void ContinuousScheduler::solveTargets(size_t QueueBase) {
  if (SchedOpts.Incremental && Opts.GreedySaturation) {
    // Underload rule: if every in-flight grant plus every queued
    // request at its full size fits the device in aggregate, then (a)
    // the base divisions cannot oversubscribe (each is at most the full
    // request), so the clamp never fires, and (b) greedy saturation —
    // equal-weight or weighted — grows every share until its request,
    // since no intermediate step can exceed the fitting aggregate.
    // The solve's answer is therefore "everyone gets what they asked
    // for", share for share.
    ResourceUse Total = FlightUse;
    addUse(Total, QueueUse);
    if (Total.Threads <= Caps.Threads && Total.LocalMem <= Caps.LocalMem &&
        Total.Regs <= Caps.Regs && Total.WGSlots <= Caps.WGSlots) {
      ++Stats.FastPasses;
      Shares.assign(QueueBase + Queue.size(), 0);
      for (size_t I = 0; I != Queue.size(); ++I) {
        const KernelDemand &D = Queue[I].R.Demand;
        Shares[QueueBase + I] = D.WGThreads == 0 ? 0 : D.RequestedWGs;
      }
#ifndef NDEBUG
      if (SchedOpts.SelfCheck) {
        Demands.clear();
        for (const auto &[Id, F] : Flights) {
          KernelDemand D = F.Demand;
          D.RequestedWGs = F.WGs;
          Demands.push_back(D);
        }
        for (const Entry &E : Queue) {
          KernelDemand D = E.R.Demand;
          if (D.WGThreads == 0)
            D.RequestedWGs = 0;
          Demands.push_back(D);
        }
        std::vector<uint64_t> Ref = solveFairShares(Caps, Demands, Opts);
        for (size_t I = 0; I != Queue.size(); ++I)
          assert(Shares[QueueBase + I] == Ref[QueueBase + I] &&
                 "underload fast path diverged from the full solve");
      }
#endif
      return;
    }
    // No-capacity rule: the device is occupied and not one work group
    // of any work-carrying queued request fits the residual, so every
    // grant below clamps to zero whatever the solver would say — and
    // with flights present the solo rescue cannot fire either. (With
    // an *empty* device the full path must run: work conservation may
    // force an over-sized grant through.) Shares do not need to match
    // the solve here, only the grants do; the zero vector yields the
    // same min(target, maxFitting) == 0 for every entry.
    if (!Flights.empty()) {
      ResourceCaps Free = residual();
      bool AnyFits = false;
      // Every work-carrying request needs at least one slot and
      // MinWGThreads threads, so a residual below both bounds rules
      // out every fit without the per-entry divisions.
      if (Free.WGSlots != 0 && Free.Threads >= MinWGThreads)
        for (const Entry &E : Queue) {
          const KernelDemand &D = E.R.Demand;
          if (D.RequestedWGs == 0 || D.WGThreads == 0)
            continue;
          if (maxFitting(Free, D) > 0) {
            AnyFits = true;
            break;
          }
        }
      if (!AnyFits) {
        ++Stats.FastPasses;
        Shares.assign(QueueBase + Queue.size(), 0);
        return;
      }
    }
  }

  // Full solve: fair-share targets over everything active. In-flight
  // executions keep their grants (no preemption) but stay in the
  // divisor, capped at what they actually occupy, so a pending
  // request's target is the share it deserves *next to* the current
  // residents.
  ++Stats.FullSolves;
  Demands.clear();
  Demands.reserve(QueueBase + Queue.size());
  for (const auto &[Id, F] : Flights) {
    KernelDemand D = F.Demand;
    D.RequestedWGs = F.WGs;
    Demands.push_back(D);
  }
  for (const Entry &E : Queue) {
    KernelDemand D = E.R.Demand;
    // Degenerate zero-thread demands must not reach the solver's (or
    // maxFitting's) divisions; they are granted zero work groups below.
    if (D.WGThreads == 0)
      D.RequestedWGs = 0;
    Demands.push_back(D);
  }
  if (!SchedOpts.Incremental) {
    // Reference mode: the pre-optimization hot path, verbatim — a
    // fresh allocating solve every pass (serve_scale's full-solve
    // baseline).
    Shares = solveFairShares(Caps, Demands, Opts);
    return;
  }
  solveFairShares(Caps, Demands, Opts, Scratch, Shares);
#ifndef NDEBUG
  if (SchedOpts.SelfCheck) {
    std::vector<uint64_t> Ref = solveFairShares(Caps, Demands, Opts);
    assert(Ref == Shares &&
           "allocation-free solve diverged from the reference solve");
  }
#endif
}

const std::vector<RoundGrant> &ContinuousScheduler::admit() {
  Grants.clear();
  if (Queue.empty())
    return Grants;
  ++Stats.RoundsPlanned;

  // Queue entries follow the in-flight block in the solve; grants below
  // grow Flights, so the offset must be pinned here.
  const size_t QueueBase = Flights.size();
  solveTargets(QueueBase);

  // Admission order. The paper-default equal-weight discipline is plain
  // FIFO (kept verbatim: bit-identical). With non-equal weights, FIFO
  // would defeat the weights exactly under saturation — a heavy
  // tenant's requeued slice waits out every lighter request ahead of it
  // each cycle — so pending requests are served highest-weight first,
  // FIFO among equal weights. A starving request (DeferCount at the
  // MaxDeferrals bound) goes first regardless of weight, so weighted
  // priority cannot bypass anyone indefinitely.
  Order.resize(Queue.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  // Mixed-weight detection over work-carrying entries only: zero-work
  // submissions complete trivially wherever they sit, so their weights
  // must not flip the queue into priority order.
  bool MixedWeights = false;
  double RefWeight = 0;
  bool HaveRef = false;
  for (const Entry &E : Queue) {
    if (E.R.Demand.RequestedWGs == 0)
      continue;
    if (!HaveRef) {
      RefWeight = E.R.Demand.Weight;
      HaveRef = true;
    } else if (E.R.Demand.Weight != RefWeight) {
      MixedWeights = true;
      break;
    }
  }
  if (MixedWeights)
    std::stable_sort(Order.begin(), Order.end(),
                     [&](size_t A, size_t B) {
                       bool SA = Queue[A].DeferCount >= MaxDeferrals;
                       bool SB = Queue[B].DeferCount >= MaxDeferrals;
                       if (SA != SB)
                         return SA;
                       return Queue[A].R.Demand.Weight >
                              Queue[B].R.Demand.Weight;
                     });

  ResourceCaps Free = residual();
  // Residual-exhaustion bound: every work-carrying demand needs at
  // least one slot and at least MinWGThreads threads, so once Free
  // drops below either, maxFitting() is zero for the rest of the pass
  // and its divisions are skipped.
  auto Exhausted = [&]() {
    return Free.WGSlots == 0 || Free.Threads < MinWGThreads;
  };
  // Lazy kept-queue materialization (equal weights only: weighted
  // priority reorders the queue through Kept, so it always copies).
  // Most admission passes at scale remove nothing — every entry stays
  // queued — and for those the queue already *is* its kept-set. Kept
  // is built only at the first removal (a grant or a trivial zero-work
  // completion): until then every processed entry was kept, in queue
  // order, which is exactly what the catch-up copy reconstructs.
  bool Copied = MixedWeights;
  if (Copied)
    Kept.clear();
  auto EnsureCopied = [&](size_t OI) {
    if (Copied)
      return;
    Kept.clear();
    for (size_t J = 0; J != OI; ++J)
      Kept.push_back(Queue[J]);
    Copied = true;
  };
  // Everyone still in Kept when a later grant lands was overtaken; each
  // is charged at most one deferral per pass.
  size_t ChargedUpTo = 0;
  bool Blocked = false;
  bool AnyCapacityGrant = false;
  for (size_t OI = 0; OI != Order.size(); ++OI) {
    Entry &E = Queue[Order[OI]];
    uint64_t Target = Shares[QueueBase + Order[OI]];
    // Zero-work (or degenerate zero-thread) requests complete
    // trivially: zero work groups, no flight, no capacity. (Their
    // queueFootprint is all-zero, so QueueUse needs no update.)
    if (E.R.Demand.RequestedWGs == 0 || E.R.Demand.WGThreads == 0) {
      EnsureCopied(OI);
      Grants.push_back({E.R.Id, 0});
      continue;
    }
    uint64_t WGs = 0;
    if (!Blocked) {
      // min(0, fit) needs no division, and an exhausted residual fits
      // nothing; both skips leave WGs at the zero the full expression
      // would have produced.
      if (Target != 0 && !Exhausted())
        WGs = std::min(Target, maxFitting(Free, E.R.Demand));
      if (WGs == 0 && Flights.empty() && !AnyCapacityGrant) {
        // Work conservation: an idle device never refuses its oldest
        // request. Mirror the round scheduler's solo grant (launchWGs
        // floors the pathological over-sized single work group).
        WGs = launchWGs(
            solveFairShares(Caps, {E.R.Demand}, Opts).front());
        ++Stats.SoloRescues;
      }
    }
    if (WGs == 0) {
      if (E.DeferCount >= MaxDeferrals)
        Blocked = true; // Starving: hold every younger request back.
      if (Copied)
        Kept.push_back(E);
      continue;
    }
    EnsureCopied(OI);
    // FIFO order: everyone still in Kept when this (younger) grant
    // lands was overtaken. Under weighted priority the grants land
    // FIRST (heaviest served before anyone is kept), so this loop
    // would never charge exactly the requests being bypassed; the
    // whole-pass charge below replaces it.
    if (!MixedWeights) {
      for (size_t J = ChargedUpTo; J != Kept.size(); ++J) {
        ++Kept[J].DeferCount;
        ++Stats.Deferrals;
      }
      ChargedUpTo = Kept.size();
    }
    Grants.push_back({E.R.Id, WGs});
    assert(!Flights.count(E.R.Id) &&
           "request admitted while already in flight");
    Flights[E.R.Id] = {E.R.Demand, WGs};
    addUse(FlightUse, footprintOf(E.R.Demand, WGs));
    subUse(QueueUse, queueFootprint(E.R.Demand));
    subtractFootprint(Free, E.R.Demand, WGs);
    AnyCapacityGrant = true;
  }

  // Weighted priority: every work-carrying request passed over while
  // this pass granted capacity was bypassed, no matter where the grant
  // sat in the iteration. Charging here (once per pass) is what makes
  // the starving-first override reachable — after MaxDeferrals such
  // passes the request sorts ahead of any weight.
  if (MixedWeights && AnyCapacityGrant)
    for (Entry &E : Kept)
      if (E.R.Demand.RequestedWGs > 0) {
        ++E.DeferCount;
        ++Stats.Deferrals;
      }

  // A pass that removed nothing left the queue untouched (and charged
  // nothing — deferrals only land alongside grants), so there is
  // nothing to swap back in.
  if (Copied)
    Queue.swap(Kept); // swap, not move: both deques keep their capacity.
  return Grants;
}

//===----------------------------------------------------------------------===//
// StrideScheduler
//===----------------------------------------------------------------------===//

void StrideScheduler::submit(const RoundRequest &R) {
  TenantState &T = Tenants[R.Tenant];
  double Tickets = R.Demand.Weight > 0 ? R.Demand.Weight : 1.0;
  if (Tickets != T.Tickets) {
    T.Tickets = Tickets;
    T.Stride = Stride1 / Tickets;
  }
  if (T.Queue.empty()) {
    // Re-entry rule: an idle tenant joins at the global pass (or its
    // own, if ahead), so sleeping never banks scheduling credit.
    T.Pass = std::max(T.Pass, GlobalPass);
    Ready.insert({T.Pass, R.Tenant});
  }
  T.Queue.push_back({R, 0});
  ++Pending;
}

void StrideScheduler::complete(uint64_t Id) {
  auto It = Flights.find(Id);
  assert(It != Flights.end() &&
         "completing an execution that is not in flight");
  if (It == Flights.end())
    return;
  subUse(FlightUse, footprintOf(It->second.Demand, It->second.WGs));
  Flights.erase(It);
}

void StrideScheduler::shrink(uint64_t Id, uint64_t WGs) {
  auto It = Flights.find(Id);
  assert(It != Flights.end() && "shrinking an execution not in flight");
  assert(WGs > 0 && WGs <= It->second.WGs &&
         "shrink must narrow a grant, not grow it");
  subUse(FlightUse, footprintOf(It->second.Demand, It->second.WGs - WGs));
  It->second.WGs = WGs;
}

void StrideScheduler::clear() {
  for (auto &[Tid, T] : Tenants)
    T.Queue.clear();
  Ready.clear();
  Pending = 0;
}

const std::vector<RoundGrant> &StrideScheduler::admit() {
  Grants.clear();
  if (Pending == 0)
    return Grants;
  ++Stats.RoundsPlanned;
  ++Stats.FastPasses; // Stride never solves; every pass is a fast pass.

  ResourceCaps Free = residualOf(Caps, FlightUse);
  const ResourceCaps PassFree = Free;
  const uint64_t ActiveAtStart = Ready.size();
  Skipped.clear();
  bool Blocked = false;
  bool AnyCapacityGrant = false;
  while (!Ready.empty() && !Blocked) {
    auto It = Ready.begin();
    const double Pass = It->first;
    const int Tid = It->second;
    TenantState &T = Tenants[Tid];
    Entry &E = T.Queue.front();
    const KernelDemand &D = E.R.Demand;
    // Zero-work (or degenerate zero-thread) requests complete
    // trivially and consume no pass credit.
    if (D.RequestedWGs == 0 || D.WGThreads == 0) {
      Grants.push_back({E.R.Id, 0});
      T.Queue.pop_front();
      --Pending;
      if (T.Queue.empty())
        Ready.erase(It);
      continue;
    }
    uint64_t WGs = std::min(D.RequestedWGs, maxFitting(Free, D));
    if (WGs > 0 && ActiveAtStart > 1) {
      // Equal split of the pass's starting residual across the tenants
      // waiting at pass start: space is shared concurrently; the
      // weights bind through pick frequency, not share size.
      ResourceCaps Split{PassFree.Threads / ActiveAtStart,
                         PassFree.LocalMem / ActiveAtStart,
                         PassFree.Regs / ActiveAtStart,
                         PassFree.WGSlots / ActiveAtStart};
      WGs = std::min(WGs, std::max<uint64_t>(maxFitting(Split, D), 1));
    } else if (WGs == 0 && Flights.empty() && !AnyCapacityGrant) {
      // Work conservation: an idle device never refuses its
      // minimum-pass request, even one whose single work group exceeds
      // the device (serialized downstream, like the solo rescues of
      // the fair-share schedulers).
      WGs = launchWGs(std::min(D.RequestedWGs, maxFitting(Caps, D)));
      ++Stats.SoloRescues;
    }
    if (WGs == 0) {
      // Does not fit: bypass this tenant for the rest of the pass. A
      // starving head (MaxDeferrals bypasses) blocks every
      // higher-pass grant until capacity drains back.
      if (E.DeferCount >= MaxDeferrals)
        Blocked = true;
      Skipped.push_back(Tid);
      Ready.erase(It);
      continue;
    }
    Grants.push_back({E.R.Id, WGs});
    assert(!Flights.count(E.R.Id) &&
           "request admitted while already in flight");
    Flights[E.R.Id] = {D, WGs};
    addUse(FlightUse, footprintOf(D, WGs));
    subtractFootprint(Free, D, WGs);
    AnyCapacityGrant = true;
    T.Queue.pop_front();
    --Pending;
    // Advance the clock: the tenant pays one stride per granted
    // request, and the global pass tracks the service frontier.
    GlobalPass = std::max(GlobalPass, Pass);
    Ready.erase(It);
    T.Pass = Pass + T.Stride;
    if (!T.Queue.empty())
      Ready.insert({T.Pass, Tid});
  }
  // Re-arm the bypassed tenants (their pass values are unchanged, so
  // they only sink in the pick order while others advance); each
  // bypassed head is charged one deferral per pass that granted
  // capacity over it.
  for (int Tid : Skipped) {
    TenantState &T = Tenants[Tid];
    if (AnyCapacityGrant) {
      ++T.Queue.front().DeferCount;
      ++Stats.Deferrals;
    }
    Ready.insert({T.Pass, Tid});
  }
  return Grants;
}

//===----------------------------------------------------------------------===//
// SloWeightController
//===----------------------------------------------------------------------===//

SloWeightController::SloWeightController(
    const std::map<int, double> &Targets,
    const std::map<int, double> &BaseWeights, double Interval,
    SloControllerOptions Opts)
    : Interval(Interval), NextUpdate(Interval), Opts(Opts) {
  assert(Interval > 0 && "non-positive control interval");
  assert(Opts.IncreaseFactor > 1 && Opts.DecayFactor > 1 &&
         Opts.MaxBoost >= 1 && "degenerate controller tuning");
  for (const auto &[Tenant, Base] : BaseWeights) {
    assert(Base > 0 && "non-positive static weight");
    Tenants[Tenant].Base = Base;
  }
  for (const auto &[Tenant, Target] : Targets) {
    assert(Target > 0 && "non-positive SLO target");
    Tenants[Tenant].Target = Target;
  }
}

SloWeightController::TenantState &SloWeightController::state(int Tenant) {
  return Tenants[Tenant]; // Default state: no target, base 1, boost 1.
}

void SloWeightController::observe(int Tenant, double QueueDelay) {
  TenantState &S = state(Tenant);
  if (S.Target > 0)
    S.Window.push_back(QueueDelay);
}

bool SloWeightController::maybeUpdate(double Now) {
  if (Now < NextUpdate)
    return false;
  // Events can be sparse; re-arm one interval from *now* rather than
  // replaying every missed period against the same stale window.
  NextUpdate = Now + Interval;
  ++Stats.Updates;

  bool Changed = false;
  for (auto &[Tenant, S] : Tenants) {
    std::vector<double> Window = std::move(S.Window);
    S.Window.clear();
    if (S.Target <= 0 || Window.size() < Opts.MinSamples)
      continue;
    double P95 = metrics::latencyPercentile(std::move(Window), 95);
    if (P95 > S.Target) {
      // Missed SLO: multiplicative increase toward the bound.
      double Next = std::min(S.Boost * Opts.IncreaseFactor, Opts.MaxBoost);
      Changed |= Next != S.Boost;
      if (Next != S.Boost)
        ++Stats.Increases;
      S.Boost = Next;
    } else if (P95 <= Opts.Headroom * S.Target && S.Boost > 1.0) {
      // Comfortable attainment: decay back toward the static weight.
      S.Boost = std::max(S.Boost / Opts.DecayFactor, 1.0);
      ++Stats.Decays;
      Changed = true;
    }
  }
  return Changed;
}

double SloWeightController::weight(int Tenant) const {
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? 1.0 : It->second.Base * It->second.Boost;
}

double SloWeightController::boost(int Tenant) const {
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? 1.0 : It->second.Boost;
}

std::map<int, double> SloWeightController::weights() const {
  std::map<int, double> Out;
  for (const auto &[Tenant, S] : Tenants)
    Out[Tenant] = S.Base * S.Boost;
  return Out;
}
