//===- accelos/ResourceSolver.h - Fair resource sharing ---------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's resource-sharing algorithm (Sec. 3): determine a number
/// of work groups per concurrent kernel execution so that all kernels
/// get approximately equal shares of the three constrained resources —
/// hardware threads (T), local memory (L) and registers (R):
///
///   x_i = T / (K * w_i),  y_i = L / (K * m_i),  z_i = R / (K * r_i)
///
/// with the final share min(x_i, y_i, z_i). Because the Diophantine
/// solutions are conservative, a greedy pass grows shares until
/// resource saturation: round-robin under equal weights (the paper
/// default, kept bit-identical), weighted max-min filling under
/// non-equal sharing ratios (Sec. 2.2) so the weights survive
/// saturation instead of being washed out by it.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_RESOURCESOLVER_H
#define ACCEL_ACCELOS_RESOURCESOLVER_H

#include <cstdint>
#include <vector>

namespace accel {

namespace sim {
struct DeviceSpec;
}

namespace accelos {

/// Per-kernel demand terms of the Sec. 3 constraint system.
struct KernelDemand {
  uint64_t WGThreads = 0;     ///< w_i: work-group size in threads.
  uint64_t LocalMemPerWG = 0; ///< m_i: local memory per work group.
  uint64_t RegsPerThread = 0; ///< r_i / w_i: registers per thread.
  uint64_t RequestedWGs = 0;  ///< Original NDRange group count (cap).
  /// Relative share weight (paper Sec. 2.2: non-equal sharing ratios).
  double Weight = 1.0;
};

/// Device capacity terms.
struct ResourceCaps {
  uint64_t Threads = 0;  ///< T.
  uint64_t LocalMem = 0; ///< L.
  uint64_t Regs = 0;     ///< R.
  uint64_t WGSlots = 0;  ///< Device-wide resident work-group limit.

  static ResourceCaps fromDevice(const sim::DeviceSpec &Spec);
};

/// The aggregate footprint of \p WGs work groups of demand \p D, in
/// the same dimensions as ResourceCaps — the single definition of the
/// demand model shared by the solver's feasibility check and the
/// schedulers' residual-capacity accounting.
struct ResourceUse {
  uint64_t Threads = 0;
  uint64_t LocalMem = 0;
  uint64_t Regs = 0;
  uint64_t WGSlots = 0;
};

inline ResourceUse footprintOf(const KernelDemand &D, uint64_t WGs) {
  return {WGs * D.WGThreads, WGs * D.LocalMemPerWG,
          WGs * D.WGThreads * D.RegsPerThread, WGs};
}

/// Options controlling the solver (the greedy phase can be disabled for
/// the ablation study).
struct SolverOptions {
  bool GreedySaturation = true;
  /// Run the saturation phase against an incrementally maintained
  /// aggregate footprint, so each +1 feasibility probe is O(1) instead
  /// of a full O(K) re-sum, and drop kernels from the sweep permanently
  /// once a probe fails (aggregate use only grows during saturation, so
  /// a failed increment can never succeed later). The grown shares are
  /// bit-identical to the reference loop; disabling this reproduces the
  /// pre-optimization hot path for differential tests and the
  /// serve_scale full-solve baseline.
  bool FastSaturation = true;
};

/// Structural facts of one solve, exposed for the incremental
/// scheduling fast paths and their self-checks: which kernels took the
/// minimum-share floor, which were stopped by capacity during
/// saturation, and whether the oversubscription clamp had to fire.
struct SolveInfo {
  std::vector<bool> Floored;   ///< Base division hit the one-WG floor.
  std::vector<bool> Saturated; ///< Saturation stopped on capacity.
  bool Clamped = false;        ///< Floors oversubscribed; clamp ran.
};

/// Computes the number of physical work groups per kernel. Shares never
/// exceed RequestedWGs, and the returned allocation always fits within
/// \p Caps in aggregate. Kernels requesting zero work groups receive
/// zero and are excluded from the fairness divisor. Every other kernel
/// receives at least one work group whenever capacity permits; when
/// even single work groups cannot co-exist, minimum-share floors are
/// reverted rather than oversubscribing the device — preferring a
/// floored kernel whose reversion alone restores feasibility; when no
/// single reversion suffices, a bounded bin-covering search over
/// revert subsets of size two and three picks the set minimizing shed
/// work groups (ties to the largest demand in the most-oversubscribed
/// resource); only past those bounds does the iterative
/// largest-contributor heuristic fire.
std::vector<uint64_t> solveFairShares(const ResourceCaps &Caps,
                                      const std::vector<KernelDemand> &Ks,
                                      const SolverOptions &Opts = {},
                                      SolveInfo *Info = nullptr);

/// Reusable working storage for the allocation-free solver overload:
/// one long-lived instance per scheduler amortizes every per-solve
/// heap allocation to the high-water mark of the queue.
struct SolverScratch {
  std::vector<uint8_t> Floored;
  std::vector<uint8_t> Saturated;
  std::vector<uint32_t> Active; ///< Unsaturated sweep list, index order.
  /// Per-call memo of the Sec. 3 base divisions. Queues at scale repeat
  /// a few kernel shapes hundreds of times, and the divisions are a
  /// pure function of (shape, weight fraction) for fixed caps — so
  /// identical inputs reproduce identical doubles and the cached result
  /// *is* the computed result. N is the post-floor, pre-request-cap
  /// share. Bounded small; pathological all-distinct queues fall back
  /// to computing.
  struct BaseDiv {
    uint64_t WGThreads = 0;
    uint64_t LocalMemPerWG = 0;
    uint64_t RegsPerThread = 0;
    double Frac = 0;
    uint64_t N = 0;
    bool Floored = false;
  };
  std::vector<BaseDiv> BaseCache;
  /// Clamp-pass shape classes. Every clamp candidate is a floored
  /// one-work-group share, so its freed footprint and its demand in the
  /// tie-break dimension are functions of its kernel shape alone; the
  /// bounded bin-covering search then runs over shape *combinations*
  /// (S^2 / S^3 for S distinct shapes) instead of candidate subsets
  /// (C^2 / C^3), with the winning combination re-materialized as its
  /// lexicographically first concrete candidate set — exactly the set
  /// the reference scan lands on.
  struct ShapeClass {
    uint64_t WGThreads = 0;
    uint64_t LocalMemPerWG = 0;
    uint64_t RegsPerThread = 0;
    uint64_t Freed[4] = {0, 0, 0, 0}; ///< One floored WG's footprint.
    uint32_t Count = 0;               ///< Candidates of this shape.
    uint32_t Idx[3] = {0, 0, 0}; ///< Three smallest candidate indices.
  };
  std::vector<ShapeClass> Shapes;
};

/// Allocation-free solve for the admission hot path. Produces the same
/// share vector as the allocating overload for the same inputs — every
/// integer comparison is against the same exactly-maintained aggregate
/// sums the reference recomputes, so the decision sequence is
/// bit-identical (asserted by the schedulers' SelfCheck mode and the
/// solver differential tests). Working storage lives in \p Scratch and
/// the result is written into \p Shares, both reused across calls.
void solveFairShares(const ResourceCaps &Caps,
                     const std::vector<KernelDemand> &Ks,
                     const SolverOptions &Opts, SolverScratch &Scratch,
                     std::vector<uint64_t> &Shares);

/// Launch-time floor for a solved share. Historically every zero share
/// was floored to one work group at launch; clamp-shed requests are now
/// *deferred* to a later scheduling round instead (see
/// accelos::RoundScheduler), so the only remaining caller is the
/// scheduler's solo-round path, where a request whose single work group
/// exceeds even the empty device must still execute (serialized by the
/// execution layer) rather than silently losing its work.
inline uint64_t launchWGs(uint64_t Share) { return Share ? Share : 1; }

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_RESOURCESOLVER_H
