//===- accelos/ResourceSolver.h - Fair resource sharing ---------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's resource-sharing algorithm (Sec. 3): determine a number
/// of work groups per concurrent kernel execution so that all kernels
/// get approximately equal shares of the three constrained resources —
/// hardware threads (T), local memory (L) and registers (R):
///
///   x_i = T / (K * w_i),  y_i = L / (K * m_i),  z_i = R / (K * r_i)
///
/// with the final share min(x_i, y_i, z_i). Because the Diophantine
/// solutions are conservative, a greedy pass grows shares until
/// resource saturation: round-robin under equal weights (the paper
/// default, kept bit-identical), weighted max-min filling under
/// non-equal sharing ratios (Sec. 2.2) so the weights survive
/// saturation instead of being washed out by it.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_RESOURCESOLVER_H
#define ACCEL_ACCELOS_RESOURCESOLVER_H

#include <cstdint>
#include <vector>

namespace accel {

namespace sim {
struct DeviceSpec;
}

namespace accelos {

/// Per-kernel demand terms of the Sec. 3 constraint system.
struct KernelDemand {
  uint64_t WGThreads = 0;     ///< w_i: work-group size in threads.
  uint64_t LocalMemPerWG = 0; ///< m_i: local memory per work group.
  uint64_t RegsPerThread = 0; ///< r_i / w_i: registers per thread.
  uint64_t RequestedWGs = 0;  ///< Original NDRange group count (cap).
  /// Relative share weight (paper Sec. 2.2: non-equal sharing ratios).
  double Weight = 1.0;
};

/// Device capacity terms.
struct ResourceCaps {
  uint64_t Threads = 0;  ///< T.
  uint64_t LocalMem = 0; ///< L.
  uint64_t Regs = 0;     ///< R.
  uint64_t WGSlots = 0;  ///< Device-wide resident work-group limit.

  static ResourceCaps fromDevice(const sim::DeviceSpec &Spec);
};

/// The aggregate footprint of \p WGs work groups of demand \p D, in
/// the same dimensions as ResourceCaps — the single definition of the
/// demand model shared by the solver's feasibility check and the
/// schedulers' residual-capacity accounting.
struct ResourceUse {
  uint64_t Threads = 0;
  uint64_t LocalMem = 0;
  uint64_t Regs = 0;
  uint64_t WGSlots = 0;
};

inline ResourceUse footprintOf(const KernelDemand &D, uint64_t WGs) {
  return {WGs * D.WGThreads, WGs * D.LocalMemPerWG,
          WGs * D.WGThreads * D.RegsPerThread, WGs};
}

/// Options controlling the solver (the greedy phase can be disabled for
/// the ablation study).
struct SolverOptions {
  bool GreedySaturation = true;
};

/// Computes the number of physical work groups per kernel. Shares never
/// exceed RequestedWGs, and the returned allocation always fits within
/// \p Caps in aggregate. Kernels requesting zero work groups receive
/// zero and are excluded from the fairness divisor. Every other kernel
/// receives at least one work group whenever capacity permits; when
/// even single work groups cannot co-exist, minimum-share floors are
/// reverted rather than oversubscribing the device — preferring a
/// floored kernel whose reversion alone restores feasibility; when no
/// single reversion suffices, a bounded bin-covering search over
/// revert subsets of size two and three picks the set minimizing shed
/// work groups (ties to the largest demand in the most-oversubscribed
/// resource); only past those bounds does the iterative
/// largest-contributor heuristic fire.
std::vector<uint64_t> solveFairShares(const ResourceCaps &Caps,
                                      const std::vector<KernelDemand> &Ks,
                                      const SolverOptions &Opts = {});

/// Launch-time floor for a solved share. Historically every zero share
/// was floored to one work group at launch; clamp-shed requests are now
/// *deferred* to a later scheduling round instead (see
/// accelos::RoundScheduler), so the only remaining caller is the
/// scheduler's solo-round path, where a request whose single work group
/// exceeds even the empty device must still execute (serialized by the
/// execution layer) rather than silently losing its work.
inline uint64_t launchWGs(uint64_t Share) { return Share ? Share : 1; }

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_RESOURCESOLVER_H
