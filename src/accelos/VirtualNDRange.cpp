//===- accelos/VirtualNDRange.cpp - Virtual NDRange construction ------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/VirtualNDRange.h"

#include "kir/DeviceMemory.h"
#include "kir/RtLayout.h"

using namespace accel;
using namespace accel::accelos;
using namespace accel::kir::rtlayout;

Expected<uint64_t> accelos::writeVirtualNDRange(kir::DeviceMemory &Mem,
                                                const kir::NDRangeCfg &Orig,
                                                uint64_t Batch) {
  if (Batch == 0)
    return makeError("virtual NDRange batch size must be positive");
  Expected<uint64_t> Addr = Mem.allocate(virtualNDRangeBytes());
  if (!Addr)
    return Addr;
  uint64_t Rt = *Addr;
  Mem.writeU64(Rt + 8 * RTW_Magic, VirtualNDRangeMagic);
  Mem.writeU64(Rt + 8 * RTW_TotalGroups, Orig.totalGroups());
  Mem.writeU64(Rt + 8 * RTW_Next, 0);
  Mem.writeU64(Rt + 8 * RTW_Batch, Batch);
  Mem.writeU64(Rt + 8 * RTW_WorkDim, Orig.WorkDim);
  for (unsigned D = 0; D != 3; ++D) {
    Mem.writeU64(Rt + 8 * (RTW_NumGroups0 + D), Orig.numGroups(D));
    Mem.writeU64(Rt + 8 * (RTW_LocalSize0 + D), Orig.LocalSize[D]);
    Mem.writeU64(Rt + 8 * (RTW_GlobalSize0 + D), Orig.GlobalSize[D]);
  }
  return Rt;
}

void accelos::resetVirtualNDRange(kir::DeviceMemory &Mem, uint64_t Addr) {
  assert(Mem.readU64(Addr + 8 * RTW_Magic) == VirtualNDRangeMagic &&
         "resetting a non-descriptor");
  Mem.writeU64(Addr + 8 * RTW_Next, 0);
}

void accelos::releaseVirtualNDRange(kir::DeviceMemory &Mem, uint64_t Addr) {
  Mem.release(Addr);
}
