//===- accelos/Runtime.h - The accelOS host runtime -------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accelOS core (level 1 of the paper's Fig. 5): the Application
/// Monitor finite state machine (Fig. 6), the JIT compilation pipeline
/// (Fig. 7b: front end -> accelOS kernel transformation -> scheduling
/// library linkage), the Kernel Scheduler with the Sec. 3 resource
/// solver, and the memory manager that pauses applications when device
/// memory is oversubscribed.
///
/// Concurrency model: kernel execution requests from multiple
/// applications accumulate in the RoundScheduler's pending queue;
/// flushRound() drains the queue round by round — each round sizes the
/// granted requests against each other (dynamic K), writes their
/// Virtual NDRanges and executes them functionally, and requests shed
/// by the oversubscription clamp are requeued into the next round. The
/// timing dimension of concurrency is handled by sim::Engine in the
/// harness.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_RUNTIME_H
#define ACCEL_ACCELOS_RUNTIME_H

#include "accelos/AdaptivePolicy.h"
#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "ocl/Ocl.h"
#include "passes/AccelOSTransform.h"
#include "support/Error.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace accel {
namespace accelos {

/// Application Monitor FSM transition counters (paper Fig. 6).
struct MonitorStats {
  uint64_t ProgramsJitted = 0;   ///< (a) new clProgram -> JIT compiler.
  uint64_t KernelsScheduled = 0; ///< (b) new kernel exec -> scheduler.
  uint64_t Passthrough = 0;      ///< (c) any other request.
};

/// Tracks per-application device-memory usage and pauses applications
/// whose allocations cannot be served (paper Sec. 5, Memory Management).
class MemoryManager {
public:
  explicit MemoryManager(ocl::Device &Dev) : Dev(&Dev) {}

  /// Attempts an allocation for \p AppId. On exhaustion the application
  /// is paused and an error describing the pause is returned.
  Expected<ocl::Buffer> allocate(int AppId, uint64_t Size);

  /// Records that \p AppId released \p Size bytes (the Buffer frees the
  /// storage itself); resumes paused applications that now fit.
  void released(int AppId, uint64_t Size);

  bool isPaused(int AppId) const { return Paused.count(AppId) != 0; }
  uint64_t usageOf(int AppId) const {
    auto It = Usage.find(AppId);
    return It == Usage.end() ? 0 : It->second;
  }

private:
  ocl::Device *Dev;
  std::map<int, uint64_t> Usage;
  std::set<int> Paused;
};

/// One kernel execution request waiting in the scheduler's queue.
struct PendingExecution {
  int AppId = 0;
  ocl::Kernel *Kernel = nullptr;
  kir::NDRangeCfg Range;
};

/// Result of one scheduled kernel execution.
struct ScheduledExecution {
  std::string KernelName;
  int AppId = 0;
  uint64_t Round = 0;       ///< Scheduling round within this flush.
  uint64_t PhysicalWGs = 0; ///< Work groups after resource sharing.
  uint64_t OriginalWGs = 0;
  uint64_t Batch = 0;       ///< Adaptive dequeue batch (Sec. 6.4).
  kir::ExecStats Stats;     ///< Functional execution statistics.
};

/// The accelOS background runtime bound to one accelerator.
class Runtime {
public:
  /// \p Mode selects the naive or optimized scheduling variant
  /// (Sec. 8.5); per-kernel weights default to equal sharing.
  explicit Runtime(ocl::Device &Dev,
                   SchedulingMode Mode = SchedulingMode::Optimized)
      : Dev(&Dev), Mode(Mode), Memory(Dev),
        Sched(ResourceCaps::fromDevice(Dev.spec())) {}

  ocl::Device &device() { return *Dev; }
  MemoryManager &memory() { return Memory; }
  const MonitorStats &stats() const { return Stats; }
  SchedulingMode mode() const { return Mode; }

  /// FSM path (a): builds \p Source through the accelOS JIT pipeline
  /// (inline, fold, DCE, scheduling transform) and retains ownership of
  /// the program.
  Expected<ocl::Program *> createProgram(int AppId,
                                         const std::string &Source);

  /// \returns transform metadata for kernel \p Name of \p Prog, or null.
  const passes::TransformedKernelInfo *
  kernelInfo(const ocl::Program *Prog, const std::string &Name) const;

  /// FSM path (b): queues a kernel execution request into the
  /// scheduler's pending queue (an arrival boundary). The kernel's
  /// user-visible arguments must already be bound; the runtime fills
  /// the appended rt argument at launch. The application's sharing
  /// weight is captured at enqueue time.
  Error enqueueKernel(int AppId, ocl::Kernel &K,
                      const kir::NDRangeCfg &Range);

  /// FSM path (c): any other intercepted request passes through.
  void otherRequest() { ++Stats.Passthrough; }

  /// Sets the sharing weight used for \p AppId's requests (paper
  /// Sec. 2.2: sharing ratios other than equal).
  void setAppWeight(int AppId, double Weight) { Weights[AppId] = Weight; }

  /// Drains the scheduler's queue round by round: each round sizes the
  /// granted requests against each other (K = requests pending at the
  /// round boundary), writes the Virtual NDRanges, and runs the
  /// scheduling kernels. Requests the oversubscription clamp shed are
  /// requeued into the next round — each execution's Round field
  /// records which round ran it.
  Expected<std::vector<ScheduledExecution>> flushRound();

  size_t pendingRequests() const { return Sched.pending(); }

  /// The round scheduler's observable behaviour (rounds, deferrals).
  const SchedulerStats &schedulerStats() const { return Sched.stats(); }

private:
  struct JittedProgram {
    std::unique_ptr<ocl::Program> Prog;
    std::map<std::string, passes::TransformedKernelInfo> Info;
    int AppId = 0;
  };

  ocl::Device *Dev;
  SchedulingMode Mode;
  MemoryManager Memory;
  MonitorStats Stats;
  std::vector<JittedProgram> Programs;
  RoundScheduler Sched;
  std::map<uint64_t, PendingExecution> Pending; ///< By request id.
  uint64_t NextRequestId = 0;
  std::map<int, double> Weights;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_RUNTIME_H
