//===- accelos/Runtime.h - The accelOS host runtime -------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accelOS core (level 1 of the paper's Fig. 5): the Application
/// Monitor finite state machine (Fig. 6), the JIT compilation pipeline
/// (Fig. 7b: front end -> accelOS kernel transformation -> scheduling
/// library linkage), the Kernel Scheduler, and the memory manager that
/// pauses applications when device memory is oversubscribed.
///
/// Concurrency model. The runtime embeds a persistent sim::EngineSession
/// and an event-driven scheduler, so every submit() is an *arrival
/// event*: the request is admitted into the residual device capacity at
/// the next pump step instead of waiting for a global flush. Execution
/// is split the way the serving harness splits it — the kernel runs
/// *functionally* once (at its first grant, through the Virtual NDRange
/// machinery), while its *timing* is simulated as quantum-bounded
/// slices admitted, shrunk, and completed against the engine session.
/// The pump is driven by the waiting side: wait(), drain(), and
/// flushRound() advance the session until the awaited work retires,
/// dispatching completion callbacks outside the runtime lock.
///
/// Three admission disciplines are selectable via RuntimeOptions:
///
///  - Continuous (default): ContinuousScheduler — fair shares re-solved
///    at every arrival/completion event over the residual capacity,
///    with the incremental fast paths;
///  - Stride: StrideScheduler — approximate proportional share without
///    the solver;
///  - RoundSync: the legacy RoundScheduler behind the same pump. Rounds
///    are planned only at completion barriers (session idle), so the
///    nextRound() call sequence — and with it the grant history — is
///    bit-identical to the pre-refactor flushRound() loop, which is
///    regression-tested.
///
/// Thread safety: submit()/submitAt()/wait()/drain()/flushRound()/
/// status()/done()/now()/onCompletion() may be called from multiple
/// producer threads; one internal mutex serializes the scheduler,
/// session, and request tables, and any waiting thread drives the pump.
/// Setup calls (createProgram, kernel/buffer creation, setAppWeight)
/// are NOT thread-safe — do them before spinning up producers.
/// Callbacks run on whichever thread drives the pump, outside the lock,
/// so they may re-enter the runtime (e.g. submit follow-up work).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_RUNTIME_H
#define ACCEL_ACCELOS_RUNTIME_H

#include "accelos/AdaptivePolicy.h"
#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "ocl/Ocl.h"
#include "passes/AccelOSTransform.h"
#include "sim/Engine.h"
#include "support/Error.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace accel {
namespace accelos {

class Runtime;

/// Application Monitor FSM transition counters (paper Fig. 6).
struct MonitorStats {
  uint64_t ProgramsJitted = 0;   ///< (a) new clProgram -> JIT compiler.
  uint64_t KernelsScheduled = 0; ///< (b) new kernel exec -> scheduler.
  uint64_t Passthrough = 0;      ///< (c) any other request.
};

/// Tracks per-application device-memory usage and pauses applications
/// whose allocations cannot be served (paper Sec. 5, Memory Management).
class MemoryManager {
public:
  explicit MemoryManager(ocl::Device &Dev) : Dev(&Dev) {}

  /// Attempts an allocation for \p AppId. On exhaustion the application
  /// is paused and an error describing the pause is returned.
  Expected<ocl::Buffer> allocate(int AppId, uint64_t Size);

  /// Records that \p AppId released \p Size bytes (the Buffer frees the
  /// storage itself); resumes paused applications that now fit.
  void released(int AppId, uint64_t Size);

  bool isPaused(int AppId) const { return Paused.count(AppId) != 0; }
  uint64_t usageOf(int AppId) const {
    auto It = Usage.find(AppId);
    return It == Usage.end() ? 0 : It->second;
  }

private:
  ocl::Device *Dev;
  std::map<int, uint64_t> Usage;
  std::set<int> Paused;
};

/// Runtime admission configuration, fixed at construction.
struct RuntimeOptions {
  enum class Admission {
    /// Legacy round-synchronous admission: rounds planned at completion
    /// barriers; grant history bit-identical to the pre-refactor
    /// flushRound() loop.
    RoundSync,
    /// Event-driven fair-share admission at every arrival/completion
    /// (the default).
    Continuous,
    /// Stride (proportional-share) admission without the solver.
    Stride,
  };
  Admission Mode = Admission::Continuous;
  /// ContinuousScheduler incremental fast paths (bit-identical grants
  /// either way; see SchedulerOptions::Incremental).
  bool Incremental = true;
  /// Debug cross-check of the fast paths (SchedulerOptions::SelfCheck).
  bool SelfCheck = false;
  /// Timing-slice quantum for continuous/stride admission: an in-flight
  /// grant occupies its share for at most ~this many cycles before the
  /// remainder is requeued and re-solved. <= 0 runs each grant's whole
  /// remaining range in one slice. Ignored by RoundSync.
  double SliceQuantum = 0;
  /// Records every (request, WGs) grant in order — the bit-identity
  /// regression hook; see Runtime::grantHistory().
  bool RecordGrantHistory = false;
};

/// Lifecycle of one submitted request.
enum class RequestStatus : uint8_t {
  Queued,    ///< Submitted, not yet granted device share.
  Running,   ///< First grant issued; slices in flight.
  Completed, ///< Retired successfully; result available (or consumed).
  Failed,    ///< Functional execution failed; error via wait()/drain().
};

/// Result of one scheduled kernel execution. The timestamps are
/// simulation event times from the embedded engine session.
struct ScheduledExecution {
  std::string KernelName;
  int AppId = 0;
  uint64_t RequestId = 0;
  double ArrivalTime = 0;   ///< submit()/submitAt() arrival event.
  double AdmitTime = 0;     ///< First scheduler grant.
  double StartTime = 0;     ///< First work-group dispatch.
  double EndTime = 0;       ///< Last work-group completion.
  uint64_t PhysicalWGs = 0; ///< Work groups of the first grant.
  uint64_t OriginalWGs = 0; ///< Requested (virtual) work groups.
  uint64_t Batch = 0;       ///< Adaptive dequeue batch (Sec. 6.4).
  uint64_t Slices = 0;      ///< Timing slices the execution ran as.
  kir::ExecStats Stats;     ///< Functional execution statistics.

  /// Time spent queued before the first dispatch.
  double queueDelay() const { return StartTime - ArrivalTime; }
  /// Arrival-to-retirement latency.
  double turnaround() const { return EndTime - ArrivalTime; }
};

/// Completion callbacks receive the retired execution. They run on the
/// pump-driving thread, outside the runtime lock.
using CompletionCallback = std::function<void(const ScheduledExecution &)>;

/// One grant as the scheduler issued it (RecordGrantHistory).
struct GrantRecord {
  uint64_t Id = 0;
  uint64_t WGs = 0;
  bool operator==(const GrantRecord &O) const {
    return Id == O.Id && WGs == O.WGs;
  }
};

/// The client-side handle of one submitted request (Arax-style async
/// API): poll status()/done(), or wait() for the result. Copyable;
/// wait() consumes the result exactly once across all copies.
class RequestHandle {
public:
  RequestHandle() = default;

  uint64_t id() const { return Id; }
  bool valid() const { return RT != nullptr; }

  /// Current lifecycle state (thread-safe).
  RequestStatus status() const;
  /// True once retired (Completed or Failed).
  bool done() const;
  /// Drives the runtime pump until this request retires and returns its
  /// execution record (or the functional-execution error). A second
  /// wait() on the same request fails: the result was consumed.
  Expected<ScheduledExecution> wait();

private:
  friend class Runtime;
  RequestHandle(Runtime *RT, uint64_t Id) : RT(RT), Id(Id) {}

  Runtime *RT = nullptr;
  uint64_t Id = 0;
};

/// Demand/cost terms the runtime derives for one (kernel, range) pair —
/// exposed so differential tests can drive a reference scheduler with
/// exactly the runtime's inputs.
struct KernelCostModel {
  KernelDemand Demand;           ///< Sec. 3 terms (unit weight).
  double WGCost = 0;             ///< Thread-cycles per virtual group.
  uint64_t ComputeInstCount = 0; ///< Transform's compute-path size.
};

/// The accelOS background runtime bound to one accelerator.
class Runtime {
public:
  /// \p Mode selects the naive or optimized scheduling variant
  /// (Sec. 8.5); \p Opts the admission discipline (continuous by
  /// default). Per-application weights default to equal sharing.
  explicit Runtime(ocl::Device &Dev,
                   SchedulingMode Mode = SchedulingMode::Optimized,
                   RuntimeOptions Opts = {})
      : Dev(&Dev), Mode(Mode), Opts(Opts), Memory(Dev),
        RoundSched(ResourceCaps::fromDevice(Dev.spec())),
        ContSched(ResourceCaps::fromDevice(Dev.spec()), SolverOptions{},
                  SchedulerOptions{Opts.Incremental, Opts.SelfCheck}),
        StrideSched(ResourceCaps::fromDevice(Dev.spec())),
        Session(Dev.spec()) {}

  ocl::Device &device() { return *Dev; }
  MemoryManager &memory() { return Memory; }
  const MonitorStats &stats() const { return Stats; }
  SchedulingMode mode() const { return Mode; }
  const RuntimeOptions &options() const { return Opts; }

  /// FSM path (a): builds \p Source through the accelOS JIT pipeline
  /// (inline, fold, DCE, scheduling transform) and retains ownership of
  /// the program. Not thread-safe (setup path).
  Expected<ocl::Program *> createProgram(int AppId,
                                         const std::string &Source);

  /// \returns transform metadata for kernel \p Name of \p Prog, or null.
  const passes::TransformedKernelInfo *
  kernelInfo(const ocl::Program *Prog, const std::string &Name) const;

  /// FSM path (b): submits a kernel execution request as an arrival
  /// event at the current simulation time. The kernel's user-visible
  /// arguments must already be bound; the runtime fills the appended rt
  /// argument at launch. \p Cb (optional) fires when the request
  /// retires successfully. Thread-safe.
  Expected<RequestHandle> submit(int AppId, ocl::Kernel &K,
                                 const kir::NDRangeCfg &Range,
                                 CompletionCallback Cb = nullptr);

  /// submit() with an explicit arrival time (>= now()) — scripted
  /// arrival traces through the runtime's own admission. Thread-safe.
  Expected<RequestHandle> submitAt(int AppId, ocl::Kernel &K,
                                   const kir::NDRangeCfg &Range, double At,
                                   CompletionCallback Cb = nullptr);

  /// Legacy enqueue: submit() discarding the handle — the request's
  /// result is then reported by the next drain()/flushRound().
  Error enqueueKernel(int AppId, ocl::Kernel &K,
                      const kir::NDRangeCfg &Range);

  /// FSM path (c): any other intercepted request passes through.
  void otherRequest() { ++Stats.Passthrough; }

  /// Sets the sharing weight used for \p AppId's requests (paper
  /// Sec. 2.2: sharing ratios other than equal). Captured at submit
  /// time; continuous requeues of a sliced request re-read it. Not
  /// thread-safe (setup path).
  void setAppWeight(int AppId, double Weight) { Weights[AppId] = Weight; }

  /// Registers a callback fired for every successfully retired request
  /// (in addition to any per-submit callback). Thread-safe.
  void onCompletion(CompletionCallback Cb);

  /// Lifecycle state of request \p Id. Thread-safe.
  RequestStatus status(uint64_t Id) const;
  bool done(uint64_t Id) const {
    RequestStatus S = status(Id);
    return S == RequestStatus::Completed || S == RequestStatus::Failed;
  }

  /// Drives the pump until request \p Id retires; \returns its
  /// execution record, consuming it. Thread-safe; any waiting thread
  /// advances the shared session.
  Expected<ScheduledExecution> wait(uint64_t Id);

  /// Drives the pump until the runtime is idle and \returns every
  /// not-yet-consumed execution in first-grant order. If any request
  /// failed, the first failure's error is returned instead (the
  /// remaining results are dropped, as the legacy flush did).
  /// Thread-safe.
  Expected<std::vector<ScheduledExecution>> drain();

  /// Legacy name for drain(): under RuntimeOptions::Admission::RoundSync
  /// this reproduces the pre-refactor round-by-round flush — same grant
  /// history, same functional execution — with event-time timestamps in
  /// place of the old round indices.
  Expected<std::vector<ScheduledExecution>> flushRound() { return drain(); }

  /// Requests submitted and not yet retired. Thread-safe.
  size_t pendingRequests() const;

  /// Current simulation time of the embedded session. Thread-safe.
  double now() const;

  /// The active scheduler's observable behaviour.
  const SchedulerStats &schedulerStats() const;

  /// Every grant issued, in admission order (RecordGrantHistory only) —
  /// the bit-identity regression hook. Read when quiescent.
  const std::vector<GrantRecord> &grantHistory() const { return GrantLog; }

  /// The demand/cost terms the runtime would derive for (\p K, \p
  /// Range) — reference-scheduler inputs for differential tests.
  Expected<KernelCostModel> costModel(ocl::Kernel &K,
                                      const kir::NDRangeCfg &Range);

private:
  struct JittedProgram {
    std::unique_ptr<ocl::Program> Prog;
    std::map<std::string, passes::TransformedKernelInfo> Info;
    int AppId = 0;
  };

  /// One live request: demand, per-virtual-group timing costs, the
  /// slice cursor, and the execution record under construction. Node
  /// stability of the owning map keeps WGCosts' storage valid for the
  /// session's non-owning cost views.
  struct RequestState {
    int AppId = 0;
    ocl::Kernel *Kernel = nullptr;
    kir::NDRangeCfg Range;
    const passes::TransformedKernelInfo *Info = nullptr;
    KernelDemand Demand;          ///< Full-range terms, captured weight.
    std::vector<double> WGCosts;  ///< Static-prior cost per virtual WG.
    size_t Cursor = 0;            ///< Next unsimulated virtual group.
    uint64_t InstCount = 0;
    bool Started = false;         ///< First grant processed.
    bool StartSeen = false;       ///< First slice completion recorded.
    CompletionCallback Cb;
    ScheduledExecution Exec;
  };

  struct FinishedRecord {
    ScheduledExecution Exec;
    std::string Error; ///< Non-empty: the request failed.
  };

  /// Result of processing one grant: a timing-slice launch, or nothing
  /// (zero-work retirement / functional failure — Failed tells the
  /// caller whether an in-flight reservation must be released).
  struct GrantOutcome {
    std::optional<sim::KernelLaunchDesc> Launch;
    bool Failed = false;
  };

  Expected<uint64_t> validateLocked(int AppId, ocl::Kernel &K,
                                    const kir::NDRangeCfg &Range, double At,
                                    CompletionCallback Cb);
  double perItemCyclesLocked(const passes::TransformedKernelInfo *Info,
                             kir::Function *Comp);

  /// One pump step; \returns false when the runtime is idle.
  bool stepLocked();
  bool roundStepLocked();
  template <typename SchedulerT> bool contStepLocked(SchedulerT &Sched);
  template <typename SchedulerT>
  bool admissionPassLocked(SchedulerT &Sched, double T);
  template <typename SchedulerT>
  void resubmitLocked(SchedulerT &Sched, uint64_t Id);

  /// Processes one grant: on the first grant runs the kernel
  /// functionally through the Virtual NDRange machinery, then builds
  /// the quantum-bounded timing slice.
  GrantOutcome buildGrantLocked(uint64_t Id, uint64_t WGs, double T,
                                bool SliceByQuantum);
  Error runFunctionalLocked(RequestState &R, uint64_t GrantWGs);

  /// Advances the session to the earlier of its next event and the next
  /// scripted arrival; \returns false when neither exists. Completions
  /// land in CompletionBuf.
  bool advanceLocked();
  /// Records one slice completion's event times; \returns true when
  /// the request still has unsimulated work (the caller requeues it).
  bool recordCompletionLocked(const sim::KernelExecResult &K);

  void finalizeLocked(uint64_t Id);
  void failLocked(uint64_t Id, std::string Msg);

  ocl::Device *Dev;
  SchedulingMode Mode;
  RuntimeOptions Opts;
  MemoryManager Memory;
  MonitorStats Stats;
  std::vector<JittedProgram> Programs;
  std::map<int, double> Weights;
  std::map<const passes::TransformedKernelInfo *, double> PerItemOf;

  mutable std::mutex Mu;
  RoundScheduler RoundSched;
  ContinuousScheduler ContSched;
  StrideScheduler StrideSched;
  sim::EngineSession Session;

  std::map<uint64_t, RequestState> Requests; ///< Live, by request id.
  std::map<uint64_t, FinishedRecord> Finished;
  std::vector<uint8_t> StatusOf; ///< RequestStatus by request id.
  /// Retired-but-unconsumed ids in first-grant order — drain()'s report
  /// order, matching the legacy flush's round-major grant order.
  std::vector<uint64_t> ReportQueue;
  /// Scripted arrivals not yet fed to the scheduler: (time, id)
  /// min-heap, id-ordered within one instant.
  std::priority_queue<std::pair<double, uint64_t>,
                      std::vector<std::pair<double, uint64_t>>,
                      std::greater<std::pair<double, uint64_t>>>
      Arrivals;
  uint64_t NextRequestId = 0;
  bool NeedAdmit = false;
  std::vector<sim::KernelLaunchDesc> LaunchBuf;   ///< Reused per pass.
  std::vector<sim::KernelExecResult> CompletionBuf;
  std::vector<GrantRecord> GrantLog;
  std::vector<CompletionCallback> GlobalCbs;
  /// Callbacks queued by the pump, fired by the driving thread after it
  /// releases the lock.
  std::vector<std::function<void()>> PendingCallbacks;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_RUNTIME_H
