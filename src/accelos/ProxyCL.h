//===- accelos/ProxyCL.h - Application-side interception shim ---*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProxyCL (level 2 of the paper's Fig. 5): the library that replaces
/// standard OpenCL inside each application. Every call is marshalled as
/// a message over a per-application channel to the accelOS runtime —
/// the paper uses interprocess shared memory [26]; here the channel is
/// in-process but the message accounting is kept so the interception
/// cost model stays visible. Applications never see the transformation
/// or the scheduling: the API is shaped like the standard one.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_PROXYCL_H
#define ACCEL_ACCELOS_PROXYCL_H

#include "accelos/Runtime.h"

#include <cstdint>
#include <string>

namespace accel {
namespace accelos {

/// Message counters of one application's channel to accelOS.
struct ChannelStats {
  uint64_t Messages = 0;
  uint64_t PayloadBytes = 0;
};

/// The per-application OpenCL facade.
class ProxyCL {
public:
  ProxyCL(Runtime &RT, int AppId) : RT(&RT), AppId(AppId) {}

  int appId() const { return AppId; }
  const ChannelStats &channel() const { return Stats; }

  /// clCreateProgramWithSource + clBuildProgram: intercepted, routed to
  /// the JIT compiler (FSM path (a)).
  Expected<ocl::Program *> createProgram(const std::string &Source) {
    send(Source.size());
    return RT->createProgram(AppId, Source);
  }

  /// clCreateKernel: passthrough (FSM path (c)).
  Expected<ocl::Kernel> createKernel(ocl::Program &Prog,
                                     const std::string &Name) {
    send(Name.size());
    RT->otherRequest();
    return ocl::Kernel::create(Prog, Name);
  }

  /// clCreateBuffer: passthrough, but accounted by the memory manager
  /// which may pause this application.
  Expected<ocl::Buffer> createBuffer(uint64_t Size) {
    send(sizeof(Size));
    RT->otherRequest();
    return RT->memory().allocate(AppId, Size);
  }

  /// clReleaseMemObject: tells the memory manager space was freed. The
  /// buffer must be destroyed by the caller (moved in).
  void releaseBuffer(ocl::Buffer Buf) {
    send(sizeof(uint64_t));
    RT->otherRequest();
    RT->memory().released(AppId, Buf.size());
    // Buf's destructor returns the storage to the device.
  }

  /// clSetKernelArg: passthrough.
  Error setKernelArg(ocl::Kernel &K, unsigned Index, ocl::KernelArg Arg) {
    send(sizeof(Arg));
    RT->otherRequest();
    return K.setArg(Index, Arg);
  }

  /// clEnqueueNDRangeKernel: intercepted, routed to the Kernel
  /// Scheduler (FSM path (b)).
  Error enqueueNDRange(ocl::Kernel &K, const kir::NDRangeCfg &Range) {
    send(sizeof(Range));
    return RT->enqueueKernel(AppId, K, Range);
  }

  /// The async form of enqueueNDRange (Arax-style client API): the
  /// request is admitted as an arrival event, the returned handle
  /// exposes status()/wait(), and \p Cb (optional) fires on completion.
  /// Safe to call from this application's own producer thread — each
  /// ProxyCL owns its channel counters, and the runtime's submission
  /// path is mutex-guarded.
  Expected<RequestHandle> submitNDRange(ocl::Kernel &K,
                                        const kir::NDRangeCfg &Range,
                                        CompletionCallback Cb = nullptr) {
    send(sizeof(Range));
    return RT->submit(AppId, K, Range, std::move(Cb));
  }

  /// submitNDRange with an explicit arrival time (scripted traces).
  Expected<RequestHandle> submitNDRangeAt(ocl::Kernel &K,
                                          const kir::NDRangeCfg &Range,
                                          double At,
                                          CompletionCallback Cb = nullptr) {
    send(sizeof(Range));
    return RT->submitAt(AppId, K, Range, At, std::move(Cb));
  }

private:
  void send(uint64_t Payload) {
    ++Stats.Messages;
    Stats.PayloadBytes += Payload;
  }

  Runtime *RT;
  int AppId;
  ChannelStats Stats;
};

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_PROXYCL_H
