//===- accelos/AdaptivePolicy.h - Adaptive dequeue batching -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's adaptive scheduling policy (Sec. 6.4): short kernels pay
/// proportionally more for the atomic dequeue, so the runtime assigns
/// several virtual groups per scheduling operation — 8 when the kernel
/// has fewer than 10 IR instructions, 6 below 20, 4 below 30, 2 below
/// 40, and 1 otherwise. The "naive" accelOS variant evaluated in
/// Fig. 15 always dequeues a single group.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_ADAPTIVEPOLICY_H
#define ACCEL_ACCELOS_ADAPTIVEPOLICY_H

#include <algorithm>
#include <cstdint>

namespace accel {
namespace accelos {

/// accelOS runtime variants (paper Sec. 8.5).
enum class SchedulingMode {
  Naive,    ///< One virtual group per dequeue.
  Optimized ///< Instruction-count-driven batching (the default).
};

/// \returns the Sec. 6.4 batch size for a kernel of \p InstCount IR
/// instructions.
inline uint64_t adaptiveBatchSize(uint64_t InstCount) {
  if (InstCount < 10)
    return 8;
  if (InstCount < 20)
    return 6;
  if (InstCount < 30)
    return 4;
  if (InstCount < 40)
    return 2;
  return 1;
}

/// \returns the batch size for \p Mode.
inline uint64_t batchSizeFor(SchedulingMode Mode, uint64_t InstCount) {
  if (Mode == SchedulingMode::Naive)
    return 1;
  return adaptiveBatchSize(InstCount);
}

/// \returns the \p Mode batch capped so batching never starves physical
/// work groups: every one of the \p PhysWGs granted groups can dequeue
/// at least one batch of the \p TotalWGs-group virtual range.
inline uint64_t cappedBatchFor(SchedulingMode Mode, uint64_t InstCount,
                               uint64_t TotalWGs, uint64_t PhysWGs) {
  uint64_t MaxBatch = std::max<uint64_t>(
      1, TotalWGs / (4 * std::max<uint64_t>(PhysWGs, 1)));
  return std::min(batchSizeFor(Mode, InstCount), MaxBatch);
}

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_ADAPTIVEPOLICY_H
