//===- accelos/AdmissionLoop.cpp - Shared continuous-admission loop ----------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "accelos/AdmissionLoop.h"

#include <algorithm>
#include <cassert>

using namespace accel;

size_t accelos::quantumSliceEnd(const std::vector<double> &WGCosts,
                                size_t Cursor, uint64_t GrantWGs,
                                uint64_t WGThreads,
                                double IssueEfficiency, double Quantum) {
  size_t End = WGCosts.size();
  assert(Cursor <= End && "slice cursor past the virtual range");
  if (Quantum <= 0 || Cursor == End)
    return End;
  // The budget approximates the thread-cycles retired in one quantum by
  // the workers that will actually run: the grant capped to the
  // remaining virtual groups. Budgeting the uncapped grant would let a
  // tail slice (fewer groups left than granted workers) overrun the
  // quantum.
  uint64_t Workers =
      std::min<uint64_t>(std::max<uint64_t>(GrantWGs, 1), End - Cursor);
  double Budget = Quantum * static_cast<double>(Workers) *
                  static_cast<double>(WGThreads) * IssueEfficiency;
  double Cost = 0;
  size_t Take = Cursor;
  while (Take != End && (Take == Cursor || Cost < Budget))
    Cost += WGCosts[Take++];
  return Take;
}
