//===- accelos/AdmissionLoop.h - Shared continuous-admission loop -*-C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-pass machinery shared by the serving-harness replays
/// (harness::runStream / runClosedLoop / runCluster) and the functional
/// Runtime's continuous pump: quantum-bounded slice sizing and the
/// grant -> slice-launch -> shrink -> admitFrom pass over a scheduler
/// and a persistent engine session. Extracted from harness/ReplayDetail
/// when the Runtime moved onto the continuous stack, so the API layer
/// and the replay harness admit work through literally the same code.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_ADMISSIONLOOP_H
#define ACCEL_ACCELOS_ADMISSIONLOOP_H

#include "accelos/Scheduler.h"
#include "sim/Engine.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace accel {
namespace accelos {

/// Computes the end of the quantum-bounded slice [Cursor, End) of a
/// virtual work range. The thread-cycle budget is derived from the
/// physical work groups that will actually run — \p GrantWGs capped to
/// the remaining virtual groups — so tail slices (fewer groups left
/// than granted workers) do not overrun the quantum the way a budget
/// computed from the uncapped grant would. Always takes at least one
/// group; \p Quantum <= 0 disables slicing (returns the full range).
size_t quantumSliceEnd(const std::vector<double> &WGCosts, size_t Cursor,
                       uint64_t GrantWGs, uint64_t WGThreads,
                       double IssueEfficiency, double Quantum);

/// One continuous-admission pass over \p Sched at the current event:
/// every grant is turned into a slice launch by \p MakeSlice(Id, WGs)
/// and admitted into \p Session through the reused \p LaunchBuf.
/// MakeSlice returns std::nullopt when the grant carries no launch — a
/// request with no remaining work retiring at the boundary, or a caller
/// that failed the request; \p RetireZeroWork(Id) is then called for
/// the caller's completion bookkeeping. A slice that runs fewer
/// physical work groups than granted (a quantum tail) returns the
/// unused reservation via shrink(). \returns true when the pass itself
/// freed capacity and must re-run at this same instant; each re-pass
/// needs a fresh shrink, so the caller's loop terminates.
template <typename SchedulerT, typename MakeSliceFn, typename RetireZeroFn>
inline bool runAdmissionPass(SchedulerT &Sched, sim::EngineSession &Session,
                             std::vector<sim::KernelLaunchDesc> &LaunchBuf,
                             MakeSliceFn &&MakeSlice,
                             RetireZeroFn &&RetireZeroWork) {
  bool Repass = false;
  LaunchBuf.clear();
  for (const RoundGrant &G : Sched.admit()) {
    std::optional<sim::KernelLaunchDesc> L = MakeSlice(G.Id, G.WGs);
    if (!L) {
      RetireZeroWork(G.Id);
      continue;
    }
    // A tail slice runs fewer physical WGs than granted; return the
    // unused reservation and re-admit at this same instant so waiting
    // requests can take it.
    if (L->PhysicalWGs < G.WGs) {
      Sched.shrink(G.Id, L->PhysicalWGs);
      Repass = true;
    }
    LaunchBuf.push_back(std::move(*L));
  }
  if (!LaunchBuf.empty())
    Session.admitFrom(LaunchBuf);
  return Repass;
}

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_ADMISSIONLOOP_H
