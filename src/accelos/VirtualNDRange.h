//===- accelos/VirtualNDRange.h - Virtual NDRange construction --*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side construction of the Virtual NDRange descriptor the Kernel
/// Scheduler places in accelerator memory (paper Sec. 5): the original
/// execution range re-expressed as a software queue of virtual groups
/// that the device-side scheduling library dequeues from.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_ACCELOS_VIRTUALNDRANGE_H
#define ACCEL_ACCELOS_VIRTUALNDRANGE_H

#include "kir/Interpreter.h"
#include "support/Error.h"

#include <cstdint>

namespace accel {

namespace kir {
class DeviceMemory;
}

namespace accelos {

/// Allocates and fills a Virtual NDRange descriptor for the original
/// range \p Orig with dequeue batch \p Batch. \returns its device
/// address.
Expected<uint64_t> writeVirtualNDRange(kir::DeviceMemory &Mem,
                                       const kir::NDRangeCfg &Orig,
                                       uint64_t Batch);

/// Rewinds the dequeue cursor so the descriptor can drive a re-launch.
void resetVirtualNDRange(kir::DeviceMemory &Mem, uint64_t Addr);

/// Releases the descriptor at \p Addr.
void releaseVirtualNDRange(kir::DeviceMemory &Mem, uint64_t Addr);

} // namespace accelos
} // namespace accel

#endif // ACCEL_ACCELOS_VIRTUALNDRANGE_H
