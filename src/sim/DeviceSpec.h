//===- sim/DeviceSpec.h - Accelerator device models -------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the simulated accelerators. Two models mirror the
/// paper's evaluation platforms (Sec. 7.1): an NVIDIA Tesla K20m-like
/// device and an AMD R9 295X2-like device. The three resources the
/// resource-sharing solver reasons about (threads, local memory,
/// registers; paper Sec. 3) are per-CU capacities here; device-wide
/// totals are derived.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SIM_DEVICESPEC_H
#define ACCEL_SIM_DEVICESPEC_H

#include <cstdint>
#include <string>

namespace accel {
namespace sim {

/// How the device begins executing a newly submitted kernel while older
/// ones still occupy resources. Models the vendor-stack difference the
/// paper observes in Fig. 12 (NVIDIA shows tail overlap, AMD nearly
/// none).
enum class KernelAdmissionKind {
  /// WG-granular FIFO: the next kernel's work groups begin as soon as
  /// the previous kernel has no *pending* work groups (tail overlap).
  GreedyTail,
  /// Kernel-exclusive: a kernel begins only when the device is empty or
  /// the kernel's whole footprint fits in the free space.
  ExclusiveUnlessFits
};

/// Static description of one accelerator.
struct DeviceSpec {
  std::string Name;
  unsigned NumCUs = 0;
  uint64_t MaxThreadsPerCU = 0;
  uint64_t MaxWGsPerCU = 0;
  uint64_t LocalMemPerCU = 0; ///< Bytes.
  uint64_t RegsPerCU = 0;     ///< 32-bit registers.
  uint64_t GlobalMemBytes = 0;
  /// SIMD lanes per CU: peak thread-cycles retired per cycle.
  unsigned LanesPerCU = 0;
  /// Cost, in per-thread cycles, of launching one hardware work group.
  double WGDispatchCycles = 0;
  /// Cost, in per-thread cycles, of one software dequeue (the atomic
  /// rt_sched_wgroup operation, paper Sec. 6.4).
  double DequeueCycles = 0;
  KernelAdmissionKind Admission = KernelAdmissionKind::GreedyTail;

  uint64_t totalThreads() const { return NumCUs * MaxThreadsPerCU; }
  uint64_t totalLocalMem() const { return NumCUs * LocalMemPerCU; }
  uint64_t totalRegs() const { return NumCUs * RegsPerCU; }
  uint64_t totalWGSlots() const { return NumCUs * MaxWGsPerCU; }

  /// The NVIDIA Tesla K20m-like model (13 SMX, Kepler limits).
  static DeviceSpec nvidiaK20m();

  /// The AMD R9 295X2-like model (one Hawaii GPU: 44 CUs, GCN limits).
  static DeviceSpec amdR9295X2();
};

} // namespace sim
} // namespace accel

#endif // ACCEL_SIM_DEVICESPEC_H
