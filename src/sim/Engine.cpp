//===- sim/Engine.cpp - Discrete-event accelerator simulation ---------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <queue>
#include <set>

using namespace accel;
using namespace accel::sim;

double KernelLaunchDesc::totalWork() const {
  double Sum = 0;
  if (Mode == ModeKind::Static) {
    for (double C : StaticCosts)
      Sum += C;
  } else {
    for (uint64_t I = 0, N = numVirtualGroups(); I != N; ++I)
      Sum += virtualCost(I);
  }
  return Sum;
}

namespace {

constexpr double Eps = 1e-7;

} // namespace

namespace accel {
namespace sim {
namespace detail {

/// The persistent simulation state behind EngineSession (and, through
/// it, Engine::run). Launches are admitted incrementally; advanceTo
/// processes arrival and completion events up to a time bound, so the
/// caller can interleave scheduling decisions with device progress.
class SessionState {
public:
  explicit SessionState(const DeviceSpec &Spec) : Spec(Spec) {
    CUs.resize(Spec.NumCUs);
  }

  void admit(std::vector<KernelLaunchDesc> &Launches);
  double now() const { return Now; }
  double nextEventTime();
  std::vector<KernelExecResult> advanceTo(double T);
  void advanceTo(double T, std::vector<KernelExecResult> &Out);
  void advanceCore(double T);
  std::vector<KernelExecResult> drain();
  std::vector<KernelLaunchDesc> cancelAll();
  size_t inFlight() const { return States.size() - FinishedCount; }
  std::vector<KernelExecResult> history() const;

private:
  /// One work group resident on a compute unit.
  struct ResidentWG {
    size_t Launch = 0;
    double Remaining = 0; ///< Thread-cycles left in the current leg.
    double Weight = 0;    ///< Threads x issue efficiency: share weight.
    uint64_t Threads = 0;
    bool Retired = false;
  };

  /// A compute unit under processor sharing.
  struct CUState {
    double LastUpdate = 0;
    std::vector<ResidentWG> Residents;
    uint64_t UsedThreads = 0;
    uint64_t UsedLocal = 0;
    uint64_t UsedRegs = 0;
    double SumWeights = 0;
    uint64_t Epoch = 0;

    double rateScale(unsigned Lanes) const {
      if (SumWeights <= Lanes)
        return 1.0;
      return static_cast<double>(Lanes) / SumWeights;
    }

    /// Advances every resident's progress to time \p T.
    void advanceTo(double T, unsigned Lanes) {
      double Dt = T - LastUpdate;
      if (Dt > 0 && !Residents.empty()) {
        double Scale = rateScale(Lanes);
        for (ResidentWG &R : Residents)
          R.Remaining -= R.Weight * Scale * Dt;
      }
      LastUpdate = T;
    }

    /// \returns the absolute time of the next leg completion, or a
    /// negative value when idle.
    double nextCompletion(unsigned Lanes) const {
      if (Residents.empty())
        return -1.0;
      double Scale = rateScale(Lanes);
      double MinDt = -1.0;
      for (const ResidentWG &R : Residents) {
        double Dt = std::max(0.0, R.Remaining) / (R.Weight * Scale);
        if (MinDt < 0 || Dt < MinDt)
          MinDt = Dt;
      }
      return LastUpdate + MinDt;
    }
  };

  /// Book-keeping for one launch. The session owns the descriptor so
  /// callers need not keep their vectors alive between admits.
  struct LaunchState {
    KernelLaunchDesc Desc;
    uint64_t NextWG = 0;
    uint64_t DoneWGs = 0;
    uint64_t LiveWGs = 0;
    uint64_t QueueCursor = 0;
    uint64_t Dequeues = 0;
    bool Started = false;
    bool Finished = false;
    double Start = 0;
    double End = 0;

    bool dispatchDone() const { return NextWG >= Desc.numPhysicalWGs(); }
  };

  struct HeapEntry {
    double Time;
    size_t CU;
    uint64_t Epoch;
    bool operator>(const HeapEntry &O) const { return Time > O.Time; }
  };

  KernelExecResult resultFor(const LaunchState &L) const {
    KernelExecResult R;
    R.Name = L.Desc.Name;
    R.AppId = L.Desc.AppId;
    R.ArrivalTime = L.Desc.ArrivalTime;
    R.StartTime = L.Start;
    R.EndTime = L.End;
    R.DispatchedWGs = L.NextWG;
    R.DequeueOps = L.Dequeues;
    return R;
  }

  /// Earlier/later relations below are in *queue positions*: indices
  /// into QueueOrder, i.e. arrival order. Only the arrived prefix
  /// [0, ArrivedCount) is visible to admission and dispatch — a launch
  /// that has not arrived yet neither blocks nor is blocked.
  /// [0, DonePrefix) is entirely finished and can be skipped, which
  /// keeps a long-lived session's per-event work proportional to the
  /// *active* launches, not everything ever admitted.
  bool sharesMergeGroupWithEarlier(size_t Pos) const {
    const LaunchState &L = States[QueueOrder[Pos]];
    if (L.Desc.MergeGroup < 0)
      return false;
    for (size_t P = 0; P != Pos; ++P)
      if (States[QueueOrder[P]].Desc.MergeGroup == L.Desc.MergeGroup)
        return true;
    return false;
  }

  /// Device-wide free capacity.
  void freeCapacity(uint64_t &Threads, uint64_t &Local, uint64_t &Regs,
                    uint64_t &Slots) const {
    Threads = Spec.totalThreads();
    Local = Spec.totalLocalMem();
    Regs = Spec.totalRegs();
    Slots = Spec.totalWGSlots();
    for (const CUState &CU : CUs) {
      Threads -= CU.UsedThreads;
      Local -= CU.UsedLocal;
      Regs -= CU.UsedRegs;
      Slots -= CU.Residents.size();
    }
  }

  /// May the launch at queue position \p Pos begin dispatching under
  /// the device's admission policy? The two window facts — is every
  /// earlier active launch finished / past dispatch — are maintained
  /// incrementally by dispatchAll's scan, so each check is O(1) where
  /// the original rescanned [DonePrefix, Pos) per launch.
  bool canStart(size_t Pos, bool EarlierFinished,
                bool EarlierDispatched) const {
    if (Pos == 0 || EarlierFinished)
      return true;
    if (sharesMergeGroupWithEarlier(Pos))
      return true;
    // All earlier launches must at least have drained their pending
    // queues (WG-granular FIFO; the finished prefix trivially has).
    if (!EarlierDispatched)
      return false;
    if (Spec.Admission == KernelAdmissionKind::GreedyTail)
      return true;
    // ExclusiveUnlessFits: the whole remaining footprint must fit in
    // the currently free space.
    const KernelLaunchDesc &D = States[QueueOrder[Pos]].Desc;
    uint64_t FreeThreads, FreeLocal, FreeRegs, FreeSlots;
    freeCapacity(FreeThreads, FreeLocal, FreeRegs, FreeSlots);
    uint64_t WGs = D.numPhysicalWGs();
    return WGs * D.WGThreads <= FreeThreads &&
           WGs * D.LocalMemPerWG <= FreeLocal &&
           WGs * D.WGThreads * D.RegsPerThread <= FreeRegs &&
           WGs <= FreeSlots;
  }

  /// \returns a CU index that can host one WG of \p D, or -1.
  int findCU(const KernelLaunchDesc &D) {
    uint64_t Regs = D.WGThreads * D.RegsPerThread;
    for (unsigned Probe = 0; Probe != Spec.NumCUs; ++Probe) {
      unsigned Idx = (RoundRobin + Probe) % Spec.NumCUs;
      const CUState &CU = CUs[Idx];
      if (CU.UsedThreads + D.WGThreads <= Spec.MaxThreadsPerCU &&
          CU.UsedLocal + D.LocalMemPerWG <= Spec.LocalMemPerCU &&
          CU.UsedRegs + Regs <= Spec.RegsPerCU &&
          CU.Residents.size() < Spec.MaxWGsPerCU) {
        RoundRobin = (Idx + 1) % Spec.NumCUs;
        return static_cast<int>(Idx);
      }
    }
    return -1;
  }

  /// Builds the first (or next) leg of work for a WorkQueue WG.
  /// \returns the leg cost in thread-cycles, or a bare dequeue cost when
  /// the queue is empty (termination discovery).
  double takeBatch(LaunchState &L) {
    const KernelLaunchDesc &D = L.Desc;
    double Cost = Spec.DequeueCycles * static_cast<double>(D.WGThreads);
    ++L.Dequeues;
    uint64_t N = std::min<uint64_t>(
        D.Batch, D.numVirtualGroups() - L.QueueCursor);
    for (uint64_t I = 0; I != N; ++I)
      Cost += D.virtualCost(L.QueueCursor + I);
    L.QueueCursor += N;
    return Cost;
  }

  /// Places the next WG of launch \p Li. \returns false when no CU fits.
  bool placeWG(size_t Li, double Now) {
    LaunchState &L = States[Li];
    const KernelLaunchDesc &D = L.Desc;
    int CUIdx = findCU(D);
    if (CUIdx < 0)
      return false;
    CUState &CU = CUs[static_cast<size_t>(CUIdx)];
    CU.advanceTo(Now, Spec.LanesPerCU);

    ResidentWG R;
    R.Launch = Li;
    R.Threads = D.WGThreads;
    R.Weight = static_cast<double>(D.WGThreads) * D.IssueEfficiency;
    double Dispatch =
        Spec.WGDispatchCycles * static_cast<double>(D.WGThreads);
    if (D.Mode == KernelLaunchDesc::ModeKind::Static)
      R.Remaining = Dispatch + D.StaticCosts[L.NextWG];
    else
      R.Remaining = Dispatch + takeBatch(L);

    CU.Residents.push_back(R);
    CU.UsedThreads += D.WGThreads;
    CU.UsedLocal += D.LocalMemPerWG;
    CU.UsedRegs += D.WGThreads * D.RegsPerThread;
    CU.SumWeights += R.Weight;
    ++CU.Epoch;
    Dirty.insert(Dirty.end(), static_cast<size_t>(CUIdx));

    if (!L.Started) {
      L.Started = true;
      L.Start = Now;
    }
    ++L.NextWG;
    ++L.LiveWGs;
    return true;
  }

  /// Dispatches one merged batch round-robin across its members (the
  /// Elastic Kernels co-dispatch), starting from a rotating cursor so
  /// no member monopolises freed slots.
  void dispatchMergeGroup(int Group, double Now) {
    std::vector<size_t> Members;
    for (size_t P = 0; P != ArrivedCount; ++P)
      if (States[QueueOrder[P]].Desc.MergeGroup == Group)
        Members.push_back(QueueOrder[P]);
    size_t &Cursor = GroupCursor[Group];
    for (bool Progress = true; Progress;) {
      Progress = false;
      for (size_t I = 0; I != Members.size(); ++I) {
        size_t Li = Members[(Cursor + I) % Members.size()];
        if (States[Li].dispatchDone())
          continue;
        if (placeWG(Li, Now)) {
          Progress = true;
          Cursor = (Cursor + I + 1) % Members.size();
          break;
        }
      }
    }
  }

  /// Dispatches as much pending work as policies and space allow,
  /// considering only launches that have arrived.
  void dispatchAll(double Now) {
    while (DonePrefix != ArrivedCount &&
           States[QueueOrder[DonePrefix]].Finished)
      ++DonePrefix;
    std::set<int> GroupsDone;
    // Window facts over the scanned prefix [DonePrefix, Pos), carried
    // forward as the scan advances (see canStart).
    bool EarlierFinished = true;
    bool EarlierDispatched = true;
    for (size_t Pos = DonePrefix; Pos != ArrivedCount; ++Pos) {
      size_t Li = QueueOrder[Pos];
      LaunchState &L = States[Li];
      if (L.dispatchDone()) {
        EarlierFinished &= L.Finished;
        continue;
      }
      // Admission check applies to merged batches through their first
      // pending member: later batches queue behind earlier ones.
      if (!L.Started && !canStart(Pos, EarlierFinished, EarlierDispatched))
        break;
      if (L.Desc.MergeGroup >= 0) {
        if (GroupsDone.insert(L.Desc.MergeGroup).second)
          dispatchMergeGroup(L.Desc.MergeGroup, Now);
        if (!L.dispatchDone())
          break; // Batch still has pending work; later batches wait.
        EarlierFinished &= L.Finished;
        continue;
      }
      while (!L.dispatchDone())
        if (!placeWG(Li, Now))
          break;
      if (!L.dispatchDone())
        break; // This launch's head WG is stuck; strict FIFO behind it.
      EarlierFinished &= L.Finished;
    }
  }

  void retireWG(CUState &CU, size_t ResidentIdx, double Now) {
    ResidentWG &R = CU.Residents[ResidentIdx];
    LaunchState &L = States[R.Launch];
    const KernelLaunchDesc &D = L.Desc;
    CU.UsedThreads -= D.WGThreads;
    CU.UsedLocal -= D.LocalMemPerWG;
    CU.UsedRegs -= D.WGThreads * D.RegsPerThread;
    CU.SumWeights -= R.Weight;
    R.Retired = true;
    --L.LiveWGs;
    ++L.DoneWGs;
    if (L.DoneWGs == D.numPhysicalWGs()) {
      L.Finished = true;
      L.End = Now;
      ++FinishedCount;
      Completed.push_back(resultFor(L));
      // A persistent session keeps finished LaunchStates for history();
      // the drained virtual queue is the one part nothing reads again,
      // and per-group cost vectors dominate a long session's footprint.
      // (StaticCosts must stay: numPhysicalWGs() is its size.)
      L.Desc.VirtualCosts.clear();
      L.Desc.VirtualCosts.shrink_to_fit();
      // View-mode launches drop their borrowed window too, so a
      // finished record never holds a pointer into caller memory.
      L.Desc.ViewCosts = nullptr;
      L.Desc.ViewBegin = L.Desc.ViewEnd = 0;
    }
  }

  /// Admits every launch whose arrival time has passed. QueueOrder is
  /// sorted by arrival, so the arrived set is always a prefix. A launch
  /// that is already Finished when it arrives is a zero-work launch:
  /// its completion is reported the moment the session crosses its
  /// arrival time.
  void admitArrivals(double Now) {
    while (ArrivedCount != QueueOrder.size() &&
           States[QueueOrder[ArrivedCount]].Desc.ArrivalTime <= Now) {
      const LaunchState &L = States[QueueOrder[ArrivedCount]];
      if (L.Finished) {
        ++FinishedCount;
        Completed.push_back(resultFor(L));
      }
      ++ArrivedCount;
    }
  }

  void pushCU(size_t CUIdx) {
    double T = CUs[CUIdx].nextCompletion(Spec.LanesPerCU);
    if (T >= 0)
      Heap.push({T, CUIdx, CUs[CUIdx].Epoch});
  }

  void purgeStaleHeap() {
    while (!Heap.empty() &&
           Heap.top().Epoch != CUs[Heap.top().CU].Epoch)
      Heap.pop();
  }

  DeviceSpec Spec;
  std::vector<CUState> CUs;
  std::deque<LaunchState> States; ///< Stable across incremental admits.
  std::vector<size_t> QueueOrder; ///< Launch indices in arrival order.
  size_t ArrivedCount = 0;        ///< Arrived prefix of QueueOrder.
  size_t DonePrefix = 0;          ///< Finished prefix of QueueOrder.
  size_t FinishedCount = 0;
  std::vector<size_t> Dirty;
  std::map<int, size_t> GroupCursor;
  unsigned RoundRobin = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      Heap;
  double Now = 0;
  /// Livelock guard: a legitimate simulation performs a bounded amount
  /// of work per *instant*, so only events that fail to advance the
  /// clock by a resolvable step (the same Eps*(1+Now) threshold the
  /// retire logic uses) count toward the budget. A persistent session
  /// legitimately accumulates unbounded events over its lifetime and
  /// must not trip it; a runaway whose clock creeps by ULP-sized
  /// sub-threshold steps still does.
  double LastEventTime = -1.0;
  uint64_t SameTimeEvents = 0;
  /// Completion records since the last advanceTo/drain handed results
  /// back to the caller.
  std::vector<KernelExecResult> Completed;
};

// Moves the launches out of \p Launches and clears it, so both public
// admit flavours (by-value and buffer-reusing) share one body.
void SessionState::admit(std::vector<KernelLaunchDesc> &Launches) {
  if (Launches.empty())
    return;
  bool AnyDue = false;
  for (KernelLaunchDesc &D : Launches) {
    assert(D.WGThreads <= Spec.MaxThreadsPerCU &&
           D.LocalMemPerWG <= Spec.LocalMemPerCU &&
           D.WGThreads * D.RegsPerThread <= Spec.RegsPerCU &&
           "work group can never fit a compute unit");
    size_t Li = States.size();
    LaunchState S;
    S.Desc = std::move(D);
    // A launch admitted after its nominal arrival reached the device
    // late: it becomes visible now.
    if (S.Desc.ArrivalTime < Now)
      S.Desc.ArrivalTime = Now;
    // Degenerate launches complete immediately upon arrival. They stay
    // "in flight" until the session crosses their arrival time and
    // delivers the completion record (admitArrivals).
    if (S.Desc.numPhysicalWGs() == 0) {
      S.Finished = true;
      S.Start = S.End = S.Desc.ArrivalTime;
    }
    AnyDue |= S.Desc.ArrivalTime <= Now;
    States.push_back(std::move(S));
    QueueOrder.push_back(Li);
  }
  // Merge into the un-arrived suffix: it stays sorted by arrival, and
  // the stable sort keeps admission order for ties (and the identity
  // for an all-zero-arrival batch).
  std::stable_sort(QueueOrder.begin() +
                       static_cast<ptrdiff_t>(ArrivedCount),
                   QueueOrder.end(), [&](size_t A, size_t B) {
                     return States[A].Desc.ArrivalTime <
                            States[B].Desc.ArrivalTime;
                   });
  Launches.clear();
  if (AnyDue) {
    admitArrivals(Now);
    Dirty.clear();
    dispatchAll(Now);
    for (size_t CUIdx : Dirty)
      pushCU(CUIdx);
  }
}

double SessionState::nextEventTime() {
  purgeStaleHeap();
  double T = -1.0;
  if (ArrivedCount != QueueOrder.size())
    T = States[QueueOrder[ArrivedCount]].Desc.ArrivalTime;
  if (!Heap.empty() && (T < 0 || Heap.top().Time < T))
    T = Heap.top().Time;
  return T;
}

void SessionState::advanceCore(double T) {
  for (;;) {
    purgeStaleHeap();
    bool HaveArrival = ArrivedCount != QueueOrder.size();
    double NextArrival =
        HaveArrival ? States[QueueOrder[ArrivedCount]].Desc.ArrivalTime
                    : 0;
    bool ArrivalDue = HaveArrival && NextArrival <= T;
    bool CompletionDue = !Heap.empty() && Heap.top().Time <= T;
    // Arrival events interleave with work-group completions; ties go to
    // the arrival so newly submitted work can co-dispatch into the
    // space freed at the same instant.
    if (ArrivalDue &&
        (!CompletionDue || NextArrival <= Heap.top().Time)) {
      Now = std::max(Now, NextArrival);
      admitArrivals(Now);
      Dirty.clear();
      dispatchAll(Now);
      for (size_t CUIdx : Dirty)
        pushCU(CUIdx);
      continue;
    }
    if (!CompletionDue)
      break;
    HeapEntry E = Heap.top();
    Heap.pop();
    CUState &CU = CUs[E.CU];
    if (E.Epoch != CU.Epoch)
      continue; // Stale: residency changed since this entry was pushed.
    if (E.Time >
        LastEventTime + Eps * (1.0 + std::max(LastEventTime, 0.0))) {
      LastEventTime = E.Time;
      SameTimeEvents = 0;
    }
    if (++SameTimeEvents > 200'000'000) {
      std::fprintf(stderr,
                   "engine livelock? now=%g cu=%zu residents=%zu "
                   "heap=%zu\n",
                   E.Time, E.CU, CU.Residents.size(), Heap.size());
      for (const LaunchState &L : States)
        std::fprintf(stderr,
                     "  launch %s next=%llu done=%llu live=%llu "
                     "cursor=%llu fin=%d\n",
                     L.Desc.Name.c_str(),
                     (unsigned long long)L.NextWG,
                     (unsigned long long)L.DoneWGs,
                     (unsigned long long)L.LiveWGs,
                     (unsigned long long)L.QueueCursor, L.Finished);
      reportFatalError("simulation exceeded event budget");
    }
    Now = E.Time;
    CU.advanceTo(Now, Spec.LanesPerCU);

    // Complete (or re-arm) every resident that reached its leg end. The
    // threshold is in the *time* domain: once the remaining time is
    // below the representable resolution at the current simulation
    // time, the leg is done (a work-domain epsilon can livelock when
    // Now is large and the residual work converts to a time step
    // smaller than one ULP of Now).
    bool Changed = false;
    double Scale = CU.rateScale(Spec.LanesPerCU);
    for (size_t RI = 0; RI != CU.Residents.size(); ++RI) {
      ResidentWG &R = CU.Residents[RI];
      double TimeLeft = std::max(0.0, R.Remaining) / (R.Weight * Scale);
      if (TimeLeft > Eps * (1.0 + Now))
        continue;
      LaunchState &L = States[R.Launch];
      if (L.Desc.Mode == KernelLaunchDesc::ModeKind::WorkQueue &&
          L.QueueCursor < L.Desc.numVirtualGroups()) {
        // Dequeue the next batch and keep running.
        R.Remaining = takeBatch(L);
        Changed = true;
        continue;
      }
      retireWG(CU, RI, Now);
      Changed = true;
    }
    if (Changed) {
      std::erase_if(CU.Residents,
                    [](const ResidentWG &R) { return R.Retired; });
      ++CU.Epoch;
      Dirty.clear();
      dispatchAll(Now);
      pushCU(E.CU);
      for (size_t CUIdx : Dirty)
        if (CUIdx != E.CU)
          pushCU(CUIdx);
      // Re-push CUs whose epochs changed through dispatch onto this CU.
    } else {
      pushCU(E.CU);
    }
  }
  Now = std::max(Now, T);
}

std::vector<KernelExecResult> SessionState::advanceTo(double T) {
  advanceCore(T);
  std::vector<KernelExecResult> Out;
  Out.swap(Completed);
  return Out;
}

void SessionState::advanceTo(double T, std::vector<KernelExecResult> &Out) {
  advanceCore(T);
  Out.clear();
  for (KernelExecResult &K : Completed)
    Out.push_back(std::move(K));
  Completed.clear();
}

std::vector<KernelExecResult> SessionState::drain() {
  std::vector<KernelExecResult> Out;
  for (;;) {
    double T = nextEventTime();
    if (T < 0)
      break;
    std::vector<KernelExecResult> Batch = advanceTo(T);
    Out.insert(Out.end(), Batch.begin(), Batch.end());
  }
  // Completions recorded since the last advance (zero-work launches
  // admitted at the current time when nothing else is pending).
  Out.insert(Out.end(), Completed.begin(), Completed.end());
  Completed.clear();
  assert(FinishedCount == States.size() &&
         "session drained with unfinished launches");
  return Out;
}

// Fail-stop device loss: every launch that has not yet delivered its
// completion is torn out of the machine — resident work groups are
// evicted mid-leg (their partial progress is discarded with them),
// queued and not-yet-arrived launches are dropped — and the cancelled
// descriptors come back in queue order so the caller can rebuild the
// work elsewhere. Already-delivered completions, the pending Completed
// buffer, per-launch history records, and the clock are untouched, so
// the session stays usable if the device later rejoins the fleet.
std::vector<KernelLaunchDesc> SessionState::cancelAll() {
  std::vector<KernelLaunchDesc> Out;
  for (size_t Pos = 0; Pos != QueueOrder.size(); ++Pos) {
    LaunchState &L = States[QueueOrder[Pos]];
    // Finished launches in the arrived prefix have already pushed their
    // completion record. A Finished launch *past* the prefix is a
    // zero-work launch whose completion was never delivered: it is
    // cancelled like any pending launch.
    bool Delivered = L.Finished && Pos < ArrivedCount;
    if (Delivered)
      continue;
    Out.push_back(std::move(L.Desc));
    // The moved-from descriptor keeps its scalar fields for history();
    // scrub the borrowed view so the record never dangles.
    L.Desc.ViewCosts = nullptr;
    L.Desc.ViewBegin = L.Desc.ViewEnd = 0;
    L.LiveWGs = 0;
    if (!L.Finished) {
      L.Finished = true;
      L.End = Now;
    }
    ++FinishedCount;
  }
  for (CUState &CU : CUs) {
    CU.Residents.clear();
    CU.UsedThreads = CU.UsedLocal = CU.UsedRegs = 0;
    CU.SumWeights = 0;
    CU.LastUpdate = Now;
    ++CU.Epoch; // Invalidates this CU's queued heap entries.
  }
  ArrivedCount = QueueOrder.size();
  DonePrefix = ArrivedCount;
  Heap = {};
  Dirty.clear();
  assert(inFlight() == 0 && "cancelAll left launches in flight");
  return Out;
}

std::vector<KernelExecResult> SessionState::history() const {
  std::vector<KernelExecResult> Out;
  Out.reserve(States.size());
  for (const LaunchState &L : States)
    Out.push_back(resultFor(L));
  return Out;
}

} // namespace detail
} // namespace sim
} // namespace accel

EngineSession::EngineSession(const DeviceSpec &Spec)
    : State(std::make_unique<detail::SessionState>(Spec)) {}
EngineSession::~EngineSession() = default;
EngineSession::EngineSession(EngineSession &&) noexcept = default;
EngineSession &EngineSession::operator=(EngineSession &&) noexcept = default;

void EngineSession::admit(std::vector<KernelLaunchDesc> Launches) {
  State->admit(Launches);
}

void EngineSession::admitFrom(std::vector<KernelLaunchDesc> &Launches) {
  State->admit(Launches);
}

double EngineSession::now() const { return State->now(); }

double EngineSession::nextEventTime() { return State->nextEventTime(); }

std::vector<KernelExecResult> EngineSession::advanceTo(double T) {
  return State->advanceTo(T);
}

void EngineSession::advanceTo(double T,
                              std::vector<KernelExecResult> &Out) {
  State->advanceTo(T, Out);
}

bool EngineSession::advanceNextEvent(std::vector<KernelExecResult> &Out) {
  double T = State->nextEventTime();
  if (T < 0) {
    Out.clear();
    return false;
  }
  State->advanceTo(T, Out);
  return true;
}

std::vector<KernelExecResult> EngineSession::drain() {
  return State->drain();
}

std::vector<KernelLaunchDesc> EngineSession::cancelAll() {
  return State->cancelAll();
}

size_t EngineSession::inFlight() const { return State->inFlight(); }

std::vector<KernelExecResult> EngineSession::history() const {
  return State->history();
}

SimResult Engine::run(std::vector<KernelLaunchDesc> Launches) {
  EngineSession S(Spec);
  S.admit(std::move(Launches));
  S.drain();
  SimResult Result;
  Result.Kernels = S.history();
  for (const KernelExecResult &K : Result.Kernels)
    Result.Makespan = std::max(Result.Makespan, K.EndTime);
  return Result;
}
