//===- sim/Engine.cpp - Discrete-event accelerator simulation ---------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <map>
#include <queue>
#include <set>

using namespace accel;
using namespace accel::sim;

double KernelLaunchDesc::totalWork() const {
  const std::vector<double> &Costs =
      Mode == ModeKind::Static ? StaticCosts : VirtualCosts;
  double Sum = 0;
  for (double C : Costs)
    Sum += C;
  return Sum;
}

namespace {

constexpr double Eps = 1e-7;

/// One work group resident on a compute unit.
struct ResidentWG {
  size_t Launch = 0;
  double Remaining = 0; ///< Thread-cycles left in the current leg.
  double Weight = 0;    ///< Threads x issue efficiency: share weight.
  uint64_t Threads = 0;
  bool Retired = false;
};

/// A compute unit under processor sharing.
struct CUState {
  double LastUpdate = 0;
  std::vector<ResidentWG> Residents;
  uint64_t UsedThreads = 0;
  uint64_t UsedLocal = 0;
  uint64_t UsedRegs = 0;
  double SumWeights = 0;
  uint64_t Epoch = 0;

  double rateScale(unsigned Lanes) const {
    if (SumWeights <= Lanes)
      return 1.0;
    return static_cast<double>(Lanes) / SumWeights;
  }

  /// Advances every resident's progress to time \p T.
  void advanceTo(double T, unsigned Lanes) {
    double Dt = T - LastUpdate;
    if (Dt > 0 && !Residents.empty()) {
      double Scale = rateScale(Lanes);
      for (ResidentWG &R : Residents)
        R.Remaining -= R.Weight * Scale * Dt;
    }
    LastUpdate = T;
  }

  /// \returns the absolute time of the next leg completion, or a
  /// negative value when idle.
  double nextCompletion(unsigned Lanes) const {
    if (Residents.empty())
      return -1.0;
    double Scale = rateScale(Lanes);
    double MinDt = -1.0;
    for (const ResidentWG &R : Residents) {
      double Dt = std::max(0.0, R.Remaining) / (R.Weight * Scale);
      if (MinDt < 0 || Dt < MinDt)
        MinDt = Dt;
    }
    return LastUpdate + MinDt;
  }
};

/// Book-keeping for one launch.
struct LaunchState {
  const KernelLaunchDesc *D = nullptr;
  uint64_t NextWG = 0;
  uint64_t DoneWGs = 0;
  uint64_t LiveWGs = 0;
  uint64_t QueueCursor = 0;
  uint64_t Dequeues = 0;
  bool Started = false;
  bool Finished = false;
  double Start = 0;
  double End = 0;

  bool dispatchDone() const { return NextWG >= D->numPhysicalWGs(); }
};

/// The whole simulation for one Engine::run call.
class Simulation {
public:
  Simulation(const DeviceSpec &Spec,
             const std::vector<KernelLaunchDesc> &Launches)
      : Spec(Spec) {
    CUs.resize(Spec.NumCUs);
    States.reserve(Launches.size());
    for (const KernelLaunchDesc &D : Launches) {
      LaunchState S;
      S.D = &D;
      States.push_back(S);
    }
    // The device queue is ordered by arrival; the stable sort keeps
    // vector order for ties (and the identity for all-zero arrivals).
    QueueOrder.resize(States.size());
    for (size_t I = 0; I != States.size(); ++I)
      QueueOrder[I] = I;
    std::stable_sort(QueueOrder.begin(), QueueOrder.end(),
                     [&](size_t A, size_t B) {
                       return States[A].D->ArrivalTime <
                              States[B].D->ArrivalTime;
                     });
  }

  SimResult run();

private:
  struct HeapEntry {
    double Time;
    size_t CU;
    uint64_t Epoch;
    bool operator>(const HeapEntry &O) const { return Time > O.Time; }
  };

  /// Earlier/later relations below are in *queue positions*: indices
  /// into QueueOrder, i.e. arrival order. Only the arrived prefix
  /// [0, ArrivedCount) is visible to admission and dispatch — a launch
  /// that has not arrived yet neither blocks nor is blocked.
  bool allEarlierComplete(size_t Pos) const {
    for (size_t P = 0; P != Pos; ++P)
      if (!States[QueueOrder[P]].Finished)
        return false;
    return true;
  }

  bool sharesMergeGroupWithEarlier(size_t Pos) const {
    const LaunchState &L = States[QueueOrder[Pos]];
    if (L.D->MergeGroup < 0)
      return false;
    for (size_t P = 0; P != Pos; ++P)
      if (States[QueueOrder[P]].D->MergeGroup == L.D->MergeGroup)
        return true;
    return false;
  }

  /// Device-wide free capacity.
  void freeCapacity(uint64_t &Threads, uint64_t &Local, uint64_t &Regs,
                    uint64_t &Slots) const {
    Threads = Spec.totalThreads();
    Local = Spec.totalLocalMem();
    Regs = Spec.totalRegs();
    Slots = Spec.totalWGSlots();
    for (const CUState &CU : CUs) {
      Threads -= CU.UsedThreads;
      Local -= CU.UsedLocal;
      Regs -= CU.UsedRegs;
      Slots -= CU.Residents.size();
    }
  }

  /// May the launch at queue position \p Pos begin dispatching under
  /// the device's admission policy?
  bool canStart(size_t Pos) const {
    if (Pos == 0 || allEarlierComplete(Pos))
      return true;
    if (sharesMergeGroupWithEarlier(Pos))
      return true;
    // All earlier launches must at least have drained their pending
    // queues (WG-granular FIFO).
    for (size_t P = 0; P != Pos; ++P)
      if (!States[QueueOrder[P]].dispatchDone())
        return false;
    if (Spec.Admission == KernelAdmissionKind::GreedyTail)
      return true;
    // ExclusiveUnlessFits: the whole remaining footprint must fit in
    // the currently free space.
    const KernelLaunchDesc &D = *States[QueueOrder[Pos]].D;
    uint64_t FreeThreads, FreeLocal, FreeRegs, FreeSlots;
    freeCapacity(FreeThreads, FreeLocal, FreeRegs, FreeSlots);
    uint64_t WGs = D.numPhysicalWGs();
    return WGs * D.WGThreads <= FreeThreads &&
           WGs * D.LocalMemPerWG <= FreeLocal &&
           WGs * D.WGThreads * D.RegsPerThread <= FreeRegs &&
           WGs <= FreeSlots;
  }

  /// \returns a CU index that can host one WG of \p D, or -1.
  int findCU(const KernelLaunchDesc &D) {
    uint64_t Regs = D.WGThreads * D.RegsPerThread;
    for (unsigned Probe = 0; Probe != Spec.NumCUs; ++Probe) {
      unsigned Idx = (RoundRobin + Probe) % Spec.NumCUs;
      const CUState &CU = CUs[Idx];
      if (CU.UsedThreads + D.WGThreads <= Spec.MaxThreadsPerCU &&
          CU.UsedLocal + D.LocalMemPerWG <= Spec.LocalMemPerCU &&
          CU.UsedRegs + Regs <= Spec.RegsPerCU &&
          CU.Residents.size() < Spec.MaxWGsPerCU) {
        RoundRobin = (Idx + 1) % Spec.NumCUs;
        return static_cast<int>(Idx);
      }
    }
    return -1;
  }

  /// Builds the first (or next) leg of work for a WorkQueue WG.
  /// \returns the leg cost in thread-cycles, or a bare dequeue cost when
  /// the queue is empty (termination discovery).
  double takeBatch(LaunchState &L) {
    const KernelLaunchDesc &D = *L.D;
    double Cost = Spec.DequeueCycles * static_cast<double>(D.WGThreads);
    ++L.Dequeues;
    uint64_t N = std::min<uint64_t>(D.Batch,
                                    D.VirtualCosts.size() - L.QueueCursor);
    for (uint64_t I = 0; I != N; ++I)
      Cost += D.VirtualCosts[L.QueueCursor + I];
    L.QueueCursor += N;
    return Cost;
  }

  /// Places the next WG of launch \p Li. \returns false when no CU fits.
  bool placeWG(size_t Li, double Now) {
    LaunchState &L = States[Li];
    const KernelLaunchDesc &D = *L.D;
    int CUIdx = findCU(D);
    if (CUIdx < 0)
      return false;
    CUState &CU = CUs[static_cast<size_t>(CUIdx)];
    CU.advanceTo(Now, Spec.LanesPerCU);

    ResidentWG R;
    R.Launch = Li;
    R.Threads = D.WGThreads;
    R.Weight = static_cast<double>(D.WGThreads) * D.IssueEfficiency;
    double Dispatch =
        Spec.WGDispatchCycles * static_cast<double>(D.WGThreads);
    if (D.Mode == KernelLaunchDesc::ModeKind::Static)
      R.Remaining = Dispatch + D.StaticCosts[L.NextWG];
    else
      R.Remaining = Dispatch + takeBatch(L);

    CU.Residents.push_back(R);
    CU.UsedThreads += D.WGThreads;
    CU.UsedLocal += D.LocalMemPerWG;
    CU.UsedRegs += D.WGThreads * D.RegsPerThread;
    CU.SumWeights += R.Weight;
    ++CU.Epoch;
    Dirty.insert(Dirty.end(), static_cast<size_t>(CUIdx));

    if (!L.Started) {
      L.Started = true;
      L.Start = Now;
    }
    ++L.NextWG;
    ++L.LiveWGs;
    return true;
  }

  /// Dispatches one merged batch round-robin across its members (the
  /// Elastic Kernels co-dispatch), starting from a rotating cursor so
  /// no member monopolises freed slots.
  void dispatchMergeGroup(int Group, double Now) {
    std::vector<size_t> Members;
    for (size_t P = 0; P != ArrivedCount; ++P)
      if (States[QueueOrder[P]].D->MergeGroup == Group)
        Members.push_back(QueueOrder[P]);
    size_t &Cursor = GroupCursor[Group];
    for (bool Progress = true; Progress;) {
      Progress = false;
      for (size_t I = 0; I != Members.size(); ++I) {
        size_t Li = Members[(Cursor + I) % Members.size()];
        if (States[Li].dispatchDone())
          continue;
        if (placeWG(Li, Now)) {
          Progress = true;
          Cursor = (Cursor + I + 1) % Members.size();
          break;
        }
      }
    }
  }

  /// Dispatches as much pending work as policies and space allow,
  /// considering only launches that have arrived.
  void dispatchAll(double Now) {
    std::set<int> GroupsDone;
    for (size_t Pos = 0; Pos != ArrivedCount; ++Pos) {
      size_t Li = QueueOrder[Pos];
      LaunchState &L = States[Li];
      if (L.dispatchDone())
        continue;
      // Admission check applies to merged batches through their first
      // pending member: later batches queue behind earlier ones.
      if (!L.Started && !canStart(Pos))
        break;
      if (L.D->MergeGroup >= 0) {
        if (GroupsDone.insert(L.D->MergeGroup).second)
          dispatchMergeGroup(L.D->MergeGroup, Now);
        if (!L.dispatchDone())
          break; // Batch still has pending work; later batches wait.
        continue;
      }
      while (!L.dispatchDone())
        if (!placeWG(Li, Now))
          break;
      if (!L.dispatchDone())
        break; // This launch's head WG is stuck; strict FIFO behind it.
    }
  }

  void retireWG(CUState &CU, size_t ResidentIdx, double Now) {
    ResidentWG &R = CU.Residents[ResidentIdx];
    LaunchState &L = States[R.Launch];
    const KernelLaunchDesc &D = *L.D;
    CU.UsedThreads -= D.WGThreads;
    CU.UsedLocal -= D.LocalMemPerWG;
    CU.UsedRegs -= D.WGThreads * D.RegsPerThread;
    CU.SumWeights -= R.Weight;
    R.Retired = true;
    --L.LiveWGs;
    ++L.DoneWGs;
    if (L.DoneWGs == D.numPhysicalWGs()) {
      L.Finished = true;
      L.End = Now;
    }
  }

  /// Admits every launch whose arrival time has passed. QueueOrder is
  /// sorted by arrival, so the arrived set is always a prefix.
  void admitArrivals(double Now) {
    while (ArrivedCount != QueueOrder.size() &&
           States[QueueOrder[ArrivedCount]].D->ArrivalTime <= Now)
      ++ArrivedCount;
  }

  const DeviceSpec &Spec;
  std::vector<CUState> CUs;
  std::vector<LaunchState> States;
  std::vector<size_t> QueueOrder; ///< Launch indices in arrival order.
  size_t ArrivedCount = 0;        ///< Arrived prefix of QueueOrder.
  std::vector<size_t> Dirty;
  std::map<int, size_t> GroupCursor;
  unsigned RoundRobin = 0;
};

SimResult Simulation::run() {
  SimResult Result;
  // Degenerate launches complete immediately upon arrival.
  for (LaunchState &L : States) {
    if (L.D->numPhysicalWGs() == 0) {
      L.Finished = true;
      L.Start = L.End = L.D->ArrivalTime;
    }
    assert(L.D->WGThreads <= Spec.MaxThreadsPerCU &&
           L.D->LocalMemPerWG <= Spec.LocalMemPerCU &&
           L.D->WGThreads * L.D->RegsPerThread <= Spec.RegsPerCU &&
           "work group can never fit a compute unit");
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      Heap;

  auto PushCU = [&](size_t CUIdx) {
    double T = CUs[CUIdx].nextCompletion(Spec.LanesPerCU);
    if (T >= 0)
      Heap.push({T, CUIdx, CUs[CUIdx].Epoch});
  };

  double Now = 0;
  Dirty.clear();
  admitArrivals(Now);
  dispatchAll(Now);
  for (size_t I = 0; I != CUs.size(); ++I)
    PushCU(I);

  uint64_t Events = 0;
  while (!Heap.empty() || ArrivedCount != QueueOrder.size()) {
    // Arrival events interleave with work-group completions; ties go to
    // the arrival so newly submitted work can co-dispatch into the
    // space freed at the same instant.
    if (ArrivedCount != QueueOrder.size()) {
      double NextArrival = States[QueueOrder[ArrivedCount]].D->ArrivalTime;
      if (Heap.empty() || NextArrival <= Heap.top().Time) {
        Now = std::max(Now, NextArrival);
        admitArrivals(Now);
        Dirty.clear();
        dispatchAll(Now);
        for (size_t CUIdx : Dirty)
          PushCU(CUIdx);
        continue;
      }
    }
    HeapEntry E = Heap.top();
    Heap.pop();
    CUState &CU = CUs[E.CU];
    if (E.Epoch != CU.Epoch)
      continue; // Stale: residency changed since this entry was pushed.
    if (++Events > 200'000'000) {
      std::fprintf(stderr,
                   "engine livelock? now=%g cu=%zu residents=%zu "
                   "heap=%zu\n",
                   E.Time, E.CU, CU.Residents.size(), Heap.size());
      for (const LaunchState &L : States)
        std::fprintf(stderr,
                     "  launch %s next=%llu done=%llu live=%llu "
                     "cursor=%llu fin=%d\n",
                     L.D->Name.c_str(),
                     (unsigned long long)L.NextWG,
                     (unsigned long long)L.DoneWGs,
                     (unsigned long long)L.LiveWGs,
                     (unsigned long long)L.QueueCursor, L.Finished);
      reportFatalError("simulation exceeded event budget");
    }
    Now = E.Time;
    CU.advanceTo(Now, Spec.LanesPerCU);

    // Complete (or re-arm) every resident that reached its leg end. The
    // threshold is in the *time* domain: once the remaining time is
    // below the representable resolution at the current simulation
    // time, the leg is done (a work-domain epsilon can livelock when
    // Now is large and the residual work converts to a time step
    // smaller than one ULP of Now).
    bool Changed = false;
    double Scale = CU.rateScale(Spec.LanesPerCU);
    for (size_t RI = 0; RI != CU.Residents.size(); ++RI) {
      ResidentWG &R = CU.Residents[RI];
      double TimeLeft = std::max(0.0, R.Remaining) / (R.Weight * Scale);
      if (TimeLeft > Eps * (1.0 + Now))
        continue;
      LaunchState &L = States[R.Launch];
      if (L.D->Mode == KernelLaunchDesc::ModeKind::WorkQueue &&
          L.QueueCursor < L.D->VirtualCosts.size()) {
        // Dequeue the next batch and keep running.
        R.Remaining = takeBatch(L);
        Changed = true;
        continue;
      }
      retireWG(CU, RI, Now);
      Changed = true;
    }
    if (Changed) {
      std::erase_if(CU.Residents,
                    [](const ResidentWG &R) { return R.Retired; });
      ++CU.Epoch;
      Dirty.clear();
      dispatchAll(Now);
      PushCU(E.CU);
      for (size_t CUIdx : Dirty)
        if (CUIdx != E.CU)
          PushCU(CUIdx);
      // Re-push CUs whose epochs changed through dispatch onto this CU.
    } else {
      PushCU(E.CU);
    }
  }

  for (const LaunchState &L : States) {
    KernelExecResult R;
    R.Name = L.D->Name;
    R.AppId = L.D->AppId;
    R.ArrivalTime = L.D->ArrivalTime;
    R.StartTime = L.Start;
    R.EndTime = L.End;
    R.DispatchedWGs = L.NextWG;
    R.DequeueOps = L.Dequeues;
    Result.Kernels.push_back(R);
    Result.Makespan = std::max(Result.Makespan, L.End);
  }
  assert(std::all_of(States.begin(), States.end(),
                     [](const LaunchState &L) { return L.Finished; }) &&
         "simulation ended with unfinished launches");
  return Result;
}

} // namespace

SimResult Engine::run(const std::vector<KernelLaunchDesc> &Launches) {
  Simulation S(Spec, Launches);
  return S.run();
}
