//===- sim/DeviceSpec.cpp - Accelerator device models -----------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "sim/DeviceSpec.h"

using namespace accel;
using namespace accel::sim;

DeviceSpec DeviceSpec::nvidiaK20m() {
  DeviceSpec D;
  D.Name = "NVIDIA Tesla K20m (simulated)";
  D.NumCUs = 13;             // SMX units.
  D.MaxThreadsPerCU = 2048;  // Kepler resident-thread limit.
  D.MaxWGsPerCU = 16;        // Kepler resident-block limit.
  D.LocalMemPerCU = 48 << 10; // 48 KiB shared memory.
  D.RegsPerCU = 65536;       // 64K 32-bit registers.
  D.GlobalMemBytes = 5ull << 30;
  D.LanesPerCU = 192;        // CUDA cores per SMX.
  D.WGDispatchCycles = 200;
  D.DequeueCycles = 140;
  D.Admission = KernelAdmissionKind::GreedyTail;
  return D;
}

DeviceSpec DeviceSpec::amdR9295X2() {
  DeviceSpec D;
  D.Name = "AMD R9 295X2 (simulated, one Hawaii GPU)";
  D.NumCUs = 44;
  D.MaxThreadsPerCU = 2560;  // 40 wavefronts x 64 lanes.
  D.MaxWGsPerCU = 40;
  D.LocalMemPerCU = 64 << 10; // 64 KiB LDS.
  D.RegsPerCU = 65536;       // VGPR file per CU (32-bit units, scaled).
  D.GlobalMemBytes = 4ull << 30;
  D.LanesPerCU = 160;
  D.WGDispatchCycles = 250;
  D.DequeueCycles = 180;
  D.Admission = KernelAdmissionKind::ExclusiveUnlessFits;
  return D;
}
