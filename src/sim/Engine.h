//===- sim/Engine.h - Discrete-event accelerator simulation -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing model: a discrete-event simulation of work-group execution
/// on a multi-CU accelerator with processor-sharing compute units,
/// occupancy limits (threads, local memory, registers, WG slots), a
/// FIFO hardware dispatcher with per-vendor admission policies, and two
/// work-sourcing modes:
///
///  - Static: one physical work group per unit of work, pre-assigned
///    cost (standard OpenCL and the Elastic Kernels baseline);
///  - WorkQueue: few physical work groups dynamically dequeue batches of
///    virtual groups from a shared queue with a per-dequeue atomic cost
///    (accelOS, paper Sec. 2.4/6.4).
///
/// Launches enter the device queue at their ArrivalTime, so the same
/// model covers both the paper's one-shot batches (all arrivals zero)
/// and open-loop streams of requests arriving over time. Two driving
/// styles share one implementation:
///
///  - Engine::run — simulate a fixed launch vector to completion;
///  - EngineSession — a persistent incremental session (admit /
///    advanceTo / drain) that lets a host-side scheduler inject
///    launches mid-run and react to individual completions, which is
///    what arrival-aware continuous admission is built on.
///
/// All of the paper's scheduling effects — serialization and unfairness
/// under FIFO, space sharing under accelOS, load balancing from dynamic
/// dequeue, batching amortization — are emergent behaviours of this
/// model, not hard-coded outcomes.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SIM_ENGINE_H
#define ACCEL_SIM_ENGINE_H

#include "sim/DeviceSpec.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace accel {
namespace sim {

/// One kernel execution request submitted to the device.
struct KernelLaunchDesc {
  std::string Name;
  int AppId = 0;

  /// Simulation time at which this launch reaches the device. The
  /// hardware dispatcher's FIFO queue is ordered by arrival (vector
  /// order breaks ties), and a launch is invisible to admission and
  /// dispatch before this time. Zero (the default) reproduces the
  /// one-shot batch model where every launch is submitted together.
  double ArrivalTime = 0;

  /// Physical work-group shape and per-WG resource footprint.
  uint64_t WGThreads = 0;     ///< w_i: threads per work group.
  uint64_t LocalMemPerWG = 0; ///< m_i: local memory bytes per work group.
  uint64_t RegsPerThread = 0; ///< r_i: registers per thread.

  /// Fraction of peak per-thread issue rate this kernel sustains
  /// (memory/latency-bound kernels < 1). Determines how much co-running
  /// can recover utilization.
  double IssueEfficiency = 1.0;

  enum class ModeKind { Static, WorkQueue } Mode = ModeKind::Static;

  /// Static mode: cost (thread-cycles) of each physical work group.
  std::vector<double> StaticCosts;

  /// WorkQueue mode: cost of each *virtual* group, the number of
  /// physical work groups that drain them, and the dequeue batch size.
  std::vector<double> VirtualCosts;
  uint64_t PhysicalWGs = 0;
  uint64_t Batch = 1;

  /// WorkQueue fast path for high-rate serving replays: a non-owning
  /// [ViewBegin, ViewEnd) window into a per-virtual-group cost array
  /// owned by the caller (e.g. the compiled kernel's WGCosts), used in
  /// place of copying the window into VirtualCosts. The array must
  /// outlive the launch's completion. Null (the default) keeps the
  /// owned-vector representation.
  const double *ViewCosts = nullptr;
  uint64_t ViewBegin = 0;
  uint64_t ViewEnd = 0;

  /// Virtual-group count under either representation.
  uint64_t numVirtualGroups() const {
    return ViewCosts ? ViewEnd - ViewBegin : VirtualCosts.size();
  }
  /// Cost of virtual group \p I under either representation.
  double virtualCost(uint64_t I) const {
    return ViewCosts ? ViewCosts[ViewBegin + I] : VirtualCosts[I];
  }

  /// Launches sharing a merge group dispatch without head-of-line
  /// blocking between each other (the Elastic Kernels merged batch).
  /// -1 means "own group" (default FIFO semantics).
  int MergeGroup = -1;

  uint64_t numPhysicalWGs() const {
    return Mode == ModeKind::Static ? StaticCosts.size() : PhysicalWGs;
  }

  /// Total useful work in thread-cycles (excludes overheads).
  double totalWork() const;
};

/// Timing of one kernel execution.
struct KernelExecResult {
  std::string Name;
  int AppId = 0;
  double ArrivalTime = 0; ///< Submission to the device queue.
  double StartTime = 0;   ///< First work-group dispatch.
  double EndTime = 0;     ///< Last work-group completion.
  uint64_t DispatchedWGs = 0;
  uint64_t DequeueOps = 0;

  double duration() const { return EndTime - StartTime; }

  /// Time from submission to completion (queueing included) — the
  /// latency a tenant observes in a streaming workload.
  double turnaround() const { return EndTime - ArrivalTime; }

  /// Time spent waiting in the device queue before the first dispatch.
  double queueDelay() const { return StartTime - ArrivalTime; }
};

/// Result of simulating one workload.
struct SimResult {
  std::vector<KernelExecResult> Kernels;
  double Makespan = 0;
};

namespace detail {
class SessionState;
}

/// A persistent simulation session: the incremental form of the engine.
///
/// Where Engine::run tears the whole simulation down after one batch, a
/// session keeps the device state (resident work groups, the FIFO
/// device queue, the event heap) alive between calls, so a host-side
/// scheduler can inject launches at arbitrary simulation times and
/// react to each completion as it happens — the substrate for
/// arrival-aware continuous admission (no global round boundaries).
///
/// The protocol is pull-based:
///
///   EngineSession S(Spec);
///   S.admit(Batch1);                 // visible at their ArrivalTime
///   while ((T = S.nextEventTime()) >= 0) {
///     for (const KernelExecResult &K : S.advanceTo(T))
///       react(K);                    // completions in (now, T]
///     S.admit(moreWork);             // e.g. at ArrivalTime == S.now()
///   }
///
/// Determinism contract: admitting every launch up front and draining
/// the session is event-for-event identical to Engine::run on the same
/// vector (Engine::run is implemented exactly that way), so the
/// one-shot batch semantics are preserved bit-for-bit.
class EngineSession {
public:
  explicit EngineSession(const DeviceSpec &Spec);
  ~EngineSession();
  EngineSession(EngineSession &&) noexcept;
  EngineSession &operator=(EngineSession &&) noexcept;

  /// Submits launches to the device queue. Each launch becomes visible
  /// to admission and dispatch at max(ArrivalTime, now()): a launch
  /// admitted after its nominal arrival has simply reached the device
  /// late. Ties keep admission order (and, within one call, vector
  /// order). Zero-work launches complete immediately at their arrival.
  void admit(std::vector<KernelLaunchDesc> Launches);

  /// Buffer-reusing admit: moves the launches out of \p Launches and
  /// clears it, retaining its capacity, so a steady-state serving loop
  /// refills one scratch vector instead of allocating per event.
  void admitFrom(std::vector<KernelLaunchDesc> &Launches);

  /// Current simulation time: advances monotonically via advanceTo.
  double now() const;

  /// Absolute time of the next pending event (a work-group completion
  /// or a not-yet-arrived launch), or a negative value when the session
  /// is idle and the queue is empty.
  double nextEventTime();

  /// Advances the simulation through every event at times <= \p T and
  /// sets now() to at least \p T. \returns the launches that completed
  /// in the window, in completion order.
  std::vector<KernelExecResult> advanceTo(double T);

  /// Buffer-reusing advanceTo: replaces the contents of \p Out with the
  /// window's completions (capacity retained across calls).
  void advanceTo(double T, std::vector<KernelExecResult> &Out);

  /// Advances the simulation to exactly the next pending event and
  /// replaces \p Out with the completions at that instant. \returns
  /// false (clearing \p Out) when the session is idle — the host-driven
  /// pump's "nothing left to wait for" signal when it has no arrivals
  /// of its own scheduled.
  bool advanceNextEvent(std::vector<KernelExecResult> &Out);

  /// Runs every admitted launch to completion (the batch semantics).
  /// \returns the completions, in completion order.
  std::vector<KernelExecResult> drain();

  /// Fail-stop cancellation (the device died under its work): removes
  /// every launch that has not yet delivered a completion — resident
  /// work groups are evicted mid-leg and their partial progress is
  /// discarded, queued and not-yet-arrived launches are dropped — and
  /// \returns the cancelled descriptors in queue order so the caller
  /// can rebuild the work elsewhere. Completions already recorded, the
  /// per-launch history, and the clock survive: the session stays
  /// usable, e.g. for a failed device rejoining the fleet later.
  std::vector<KernelLaunchDesc> cancelAll();

  /// Launches admitted but not yet finished.
  size_t inFlight() const;

  /// Per-launch results in admission order. Finished launches carry
  /// their final times; unfinished ones report partial state.
  std::vector<KernelExecResult> history() const;

private:
  std::unique_ptr<detail::SessionState> State;
};

/// Discrete-event executor for a stream of kernel launches. Each launch
/// is admitted to the device queue at its ArrivalTime (arrival events
/// interleave with work-group completions); launches that all arrive at
/// time 0 reproduce the classic concurrently-submitted batch, in vector
/// order.
///
/// Engine::run is the one-shot convenience wrapper over EngineSession:
/// admit everything, drain, report in submission order.
class Engine {
public:
  explicit Engine(const DeviceSpec &Spec) : Spec(Spec) {}

  /// Simulates the launches to completion. Taken by value so callers
  /// can std::move a batch in and skip copying the per-WG cost
  /// vectors; an lvalue argument is copied exactly once, as before.
  SimResult run(std::vector<KernelLaunchDesc> Launches);

private:
  const DeviceSpec &Spec;
};

} // namespace sim
} // namespace accel

#endif // ACCEL_SIM_ENGINE_H
