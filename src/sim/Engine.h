//===- sim/Engine.h - Discrete-event accelerator simulation -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing model: a discrete-event simulation of work-group execution
/// on a multi-CU accelerator with processor-sharing compute units,
/// occupancy limits (threads, local memory, registers, WG slots), a
/// FIFO hardware dispatcher with per-vendor admission policies, and two
/// work-sourcing modes:
///
///  - Static: one physical work group per unit of work, pre-assigned
///    cost (standard OpenCL and the Elastic Kernels baseline);
///  - WorkQueue: few physical work groups dynamically dequeue batches of
///    virtual groups from a shared queue with a per-dequeue atomic cost
///    (accelOS, paper Sec. 2.4/6.4).
///
/// Launches enter the device queue at their ArrivalTime, so the same
/// model covers both the paper's one-shot batches (all arrivals zero)
/// and open-loop streams of requests arriving over time.
///
/// All of the paper's scheduling effects — serialization and unfairness
/// under FIFO, space sharing under accelOS, load balancing from dynamic
/// dequeue, batching amortization — are emergent behaviours of this
/// model, not hard-coded outcomes.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_SIM_ENGINE_H
#define ACCEL_SIM_ENGINE_H

#include "sim/DeviceSpec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace accel {
namespace sim {

/// One kernel execution request submitted to the device.
struct KernelLaunchDesc {
  std::string Name;
  int AppId = 0;

  /// Simulation time at which this launch reaches the device. The
  /// hardware dispatcher's FIFO queue is ordered by arrival (vector
  /// order breaks ties), and a launch is invisible to admission and
  /// dispatch before this time. Zero (the default) reproduces the
  /// one-shot batch model where every launch is submitted together.
  double ArrivalTime = 0;

  /// Physical work-group shape and per-WG resource footprint.
  uint64_t WGThreads = 0;     ///< w_i: threads per work group.
  uint64_t LocalMemPerWG = 0; ///< m_i: local memory bytes per work group.
  uint64_t RegsPerThread = 0; ///< r_i: registers per thread.

  /// Fraction of peak per-thread issue rate this kernel sustains
  /// (memory/latency-bound kernels < 1). Determines how much co-running
  /// can recover utilization.
  double IssueEfficiency = 1.0;

  enum class ModeKind { Static, WorkQueue } Mode = ModeKind::Static;

  /// Static mode: cost (thread-cycles) of each physical work group.
  std::vector<double> StaticCosts;

  /// WorkQueue mode: cost of each *virtual* group, the number of
  /// physical work groups that drain them, and the dequeue batch size.
  std::vector<double> VirtualCosts;
  uint64_t PhysicalWGs = 0;
  uint64_t Batch = 1;

  /// Launches sharing a merge group dispatch without head-of-line
  /// blocking between each other (the Elastic Kernels merged batch).
  /// -1 means "own group" (default FIFO semantics).
  int MergeGroup = -1;

  uint64_t numPhysicalWGs() const {
    return Mode == ModeKind::Static ? StaticCosts.size() : PhysicalWGs;
  }

  /// Total useful work in thread-cycles (excludes overheads).
  double totalWork() const;
};

/// Timing of one kernel execution.
struct KernelExecResult {
  std::string Name;
  int AppId = 0;
  double ArrivalTime = 0; ///< Submission to the device queue.
  double StartTime = 0;   ///< First work-group dispatch.
  double EndTime = 0;     ///< Last work-group completion.
  uint64_t DispatchedWGs = 0;
  uint64_t DequeueOps = 0;

  double duration() const { return EndTime - StartTime; }

  /// Time from submission to completion (queueing included) — the
  /// latency a tenant observes in a streaming workload.
  double turnaround() const { return EndTime - ArrivalTime; }

  /// Time spent waiting in the device queue before the first dispatch.
  double queueDelay() const { return StartTime - ArrivalTime; }
};

/// Result of simulating one workload.
struct SimResult {
  std::vector<KernelExecResult> Kernels;
  double Makespan = 0;
};

/// Discrete-event executor for a stream of kernel launches. Each launch
/// is admitted to the device queue at its ArrivalTime (arrival events
/// interleave with work-group completions); launches that all arrive at
/// time 0 reproduce the classic concurrently-submitted batch, in vector
/// order.
class Engine {
public:
  explicit Engine(const DeviceSpec &Spec) : Spec(Spec) {}

  /// Simulates the launches to completion.
  SimResult run(const std::vector<KernelLaunchDesc> &Launches);

private:
  const DeviceSpec &Spec;
};

} // namespace sim
} // namespace accel

#endif // ACCEL_SIM_ENGINE_H
