//===- ocl/Ocl.cpp - OpenCL-style host API over the simulator ---------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "ocl/Ocl.h"

#include "kir/Module.h"
#include "minicl/Frontend.h"

#include <cstring>

using namespace accel;
using namespace accel::ocl;

//===----------------------------------------------------------------------===//
// Buffer
//===----------------------------------------------------------------------===//

Expected<Buffer> Buffer::create(Device &Dev, uint64_t Size) {
  Expected<uint64_t> Addr = Dev.memory().allocate(Size);
  if (!Addr)
    return Addr.takeError();
  return Buffer(Dev, *Addr, Size);
}

Buffer::Buffer(Buffer &&Other) noexcept
    : Dev(Other.Dev), Address(Other.Address), Size(Other.Size) {
  Other.Dev = nullptr;
  Other.Address = 0;
}

Buffer &Buffer::operator=(Buffer &&Other) noexcept {
  if (this != &Other) {
    if (Dev && Address)
      Dev->memory().release(Address);
    Dev = Other.Dev;
    Address = Other.Address;
    Size = Other.Size;
    Other.Dev = nullptr;
    Other.Address = 0;
  }
  return *this;
}

Buffer::~Buffer() {
  if (Dev && Address)
    Dev->memory().release(Address);
}

Error Buffer::write(const void *Src, uint64_t Bytes, uint64_t Offset) {
  if (Offset + Bytes > Size)
    return makeError("buffer write out of range");
  Dev->memory().copyIn(Address + Offset, Src, Bytes);
  return Error::success();
}

Error Buffer::read(void *Dst, uint64_t Bytes, uint64_t Offset) const {
  if (Offset + Bytes > Size)
    return makeError("buffer read out of range");
  Dev->memory().copyOut(Address + Offset, Dst, Bytes);
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Program / Kernel / CommandQueue
//===----------------------------------------------------------------------===//

Error Program::build() {
  if (M)
    return Error::success();
  Expected<std::unique_ptr<kir::Module>> Built =
      minicl::compileSource("program", Source);
  if (!Built)
    return Built.takeError();
  M = Built.take();
  return Error::success();
}

KernelArg KernelArg::scalarF32(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, 4);
  return {Bits};
}

Expected<Kernel> Kernel::create(Program &Prog, const std::string &Name) {
  if (!Prog.isBuilt())
    return makeError("program is not built");
  kir::Function *Fn = Prog.module()->getFunction(Name);
  if (!Fn || !Fn->isKernel())
    return makeError("no kernel named '" + Name + "' in program");
  return Kernel(Prog, Fn, Name);
}

Error Kernel::setArg(unsigned Index, KernelArg Arg) {
  if (Index >= Args.size())
    return makeError("kernel argument index " + std::to_string(Index) +
                     " out of range for '" + Name + "'");
  Args[Index] = Arg.Bits;
  ArgSet[Index] = true;
  return Error::success();
}

Expected<std::vector<uint64_t>> Kernel::packedArgs() const {
  for (size_t I = 0; I != ArgSet.size(); ++I)
    if (!ArgSet[I])
      return makeError("kernel argument " + std::to_string(I) +
                       " of '" + Name + "' is unset");
  return Args;
}

Expected<kir::ExecStats>
CommandQueue::enqueueNDRange(Kernel &K, const kir::NDRangeCfg &Range) {
  for (unsigned D = 0; D != 3; ++D) {
    if (Range.LocalSize[D] == 0)
      return makeError("zero local size in dimension " + std::to_string(D));
    if (Range.GlobalSize[D] % Range.LocalSize[D] != 0)
      return makeError("global size not divisible by local size in "
                       "dimension " +
                       std::to_string(D));
  }
  Expected<std::vector<uint64_t>> Args = K.packedArgs();
  if (!Args)
    return Args.takeError();
  return Dev->interpreter().run(*K.function(), *Args, Range);
}
