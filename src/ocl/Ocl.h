//===- ocl/Ocl.h - OpenCL-style host API over the simulator -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact OpenCL-style host API (platform/device/buffer/program/
/// kernel/queue) over the simulated accelerator: the "standard OpenCL"
/// level-0 system interface of the paper's Fig. 5. Applications are
/// expected to go through accelos::ProxyCL, which intercepts program
/// creation and kernel enqueues exactly as the paper's Application
/// Monitor does; using this API directly corresponds to running without
/// accelOS.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_OCL_OCL_H
#define ACCEL_OCL_OCL_H

#include "kir/DeviceMemory.h"
#include "kir/Interpreter.h"
#include "sim/DeviceSpec.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace accel {

namespace kir {
class Module;
class Function;
}

namespace ocl {

/// A simulated accelerator: static capabilities plus global memory and
/// a functional executor.
class Device {
public:
  explicit Device(sim::DeviceSpec Spec)
      : Spec(std::move(Spec)), Memory(this->Spec.GlobalMemBytes),
        Interp(Memory) {}

  const sim::DeviceSpec &spec() const { return Spec; }
  kir::DeviceMemory &memory() { return Memory; }
  kir::Interpreter &interpreter() { return Interp; }

private:
  sim::DeviceSpec Spec;
  kir::DeviceMemory Memory;
  kir::Interpreter Interp;
};

/// Enumerates the available simulated platforms (paper Sec. 7.1).
class Platform {
public:
  /// \returns a freshly constructed device of the requested model.
  static std::unique_ptr<Device> createNvidiaK20m() {
    return std::make_unique<Device>(sim::DeviceSpec::nvidiaK20m());
  }
  static std::unique_ptr<Device> createAmdR9295X2() {
    return std::make_unique<Device>(sim::DeviceSpec::amdR9295X2());
  }
};

/// A device-memory buffer (cl_mem equivalent).
class Buffer {
public:
  /// Allocates \p Size bytes on \p Dev.
  static Expected<Buffer> create(Device &Dev, uint64_t Size);

  Buffer(Buffer &&Other) noexcept;
  Buffer &operator=(Buffer &&Other) noexcept;
  Buffer(const Buffer &) = delete;
  Buffer &operator=(const Buffer &) = delete;
  ~Buffer();

  uint64_t deviceAddress() const { return Address; }
  uint64_t size() const { return Size; }

  /// Host -> device transfer of \p Bytes starting at \p Offset.
  Error write(const void *Src, uint64_t Bytes, uint64_t Offset = 0);

  /// Device -> host transfer.
  Error read(void *Dst, uint64_t Bytes, uint64_t Offset = 0) const;

private:
  Buffer(Device &Dev, uint64_t Address, uint64_t Size)
      : Dev(&Dev), Address(Address), Size(Size) {}

  Device *Dev;
  uint64_t Address;
  uint64_t Size;
};

/// A compiled program (cl_program equivalent). Building runs the MiniCL
/// front end — the "vendor compiler" of the paper's Fig. 7a.
class Program {
public:
  Program(Device &Dev, std::string Source)
      : Dev(&Dev), Source(std::move(Source)) {}

  /// Compiles the source. Idempotent.
  Error build();

  bool isBuilt() const { return M != nullptr; }
  kir::Module *module() const { return M.get(); }
  const std::string &source() const { return Source; }
  Device &device() const { return *Dev; }

  /// Replaces the compiled module (used by the accelOS JIT after its
  /// transformation pipeline, Fig. 7b).
  void adoptModule(std::unique_ptr<kir::Module> NewModule) {
    M = std::move(NewModule);
  }

private:
  Device *Dev;
  std::string Source;
  std::unique_ptr<kir::Module> M;
};

/// A kernel argument value: a scalar payload or a buffer address.
struct KernelArg {
  uint64_t Bits = 0;

  static KernelArg scalarI32(int32_t V) {
    return {static_cast<uint64_t>(static_cast<int64_t>(V))};
  }
  static KernelArg scalarI64(int64_t V) {
    return {static_cast<uint64_t>(V)};
  }
  static KernelArg scalarF32(float V);
  static KernelArg buffer(const Buffer &B) { return {B.deviceAddress()}; }
};

/// A kernel instance with bound arguments (cl_kernel equivalent).
class Kernel {
public:
  /// Looks up kernel \p Name in \p Prog (which must be built).
  static Expected<Kernel> create(Program &Prog, const std::string &Name);

  const std::string &name() const { return Name; }
  kir::Function *function() const { return Fn; }
  Program &program() const { return *Prog; }

  /// Binds argument \p Index.
  Error setArg(unsigned Index, KernelArg Arg);

  /// \returns the bound argument payloads; unset arguments are an error.
  Expected<std::vector<uint64_t>> packedArgs() const;

private:
  Kernel(Program &Prog, kir::Function *Fn, std::string Name)
      : Prog(&Prog), Fn(Fn), Name(std::move(Name)),
        Args(Fn->numArguments()), ArgSet(Fn->numArguments(), false) {}

  Program *Prog;
  kir::Function *Fn;
  std::string Name;
  std::vector<uint64_t> Args;
  std::vector<bool> ArgSet;
};

/// An in-order command queue (functional execution; timing is the job
/// of sim::Engine).
class CommandQueue {
public:
  explicit CommandQueue(Device &Dev) : Dev(&Dev) {}

  /// Synchronously executes \p K over \p Range.
  Expected<kir::ExecStats> enqueueNDRange(Kernel &K,
                                          const kir::NDRangeCfg &Range);

  /// No-op (execution is synchronous); kept for API fidelity.
  void finish() {}

private:
  Device *Dev;
};

} // namespace ocl
} // namespace accel

#endif // ACCEL_OCL_OCL_H
