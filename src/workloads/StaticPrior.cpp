//===- workloads/StaticPrior.cpp - Analysis-seeded cost priors --------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "workloads/StaticPrior.h"

#include "kir/Module.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/CostPrior.h"
#include "kir/analysis/Intervals.h"
#include "kir/analysis/Uniformity.h"
#include "minicl/Frontend.h"
#include "support/ErrorHandling.h"

#include <map>
#include <mutex>

using namespace accel;
using namespace accel::workloads;

const StaticPrior &workloads::staticCostPrior(const KernelSpec &Spec) {
  // The suite vector is a function-local static, so keying the memo by
  // spec address is stable for the process lifetime.
  static std::map<const KernelSpec *, StaticPrior> Cache;
  static std::mutex Lock;
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Cache.find(&Spec);
  if (It != Cache.end())
    return It->second;

  // Analyse the front end's output directly (no cleanup passes): the
  // calibration in tests/AnalysisTests.cpp holds for this exact form.
  Expected<std::unique_ptr<kir::Module>> M =
      minicl::compileSource(Spec.Id, Spec.Source);
  if (!M)
    reportFatalError(("static prior: workload kernel '" + Spec.Id +
                      "' failed to compile: " + M.message())
                         .c_str());
  kir::Function *K = (*M)->getFunction(Spec.KernelName);
  if (!K)
    reportFatalError(("static prior: kernel entry '" + Spec.KernelName +
                      "' missing in workload '" + Spec.Id + "'")
                         .c_str());

  kir::analysis::Cfg G(*K);
  kir::analysis::UniformityAnalysis UA(G);
  kir::analysis::IntervalAnalysis IA(G);
  kir::analysis::CostEstimate Est = kir::analysis::estimateCost(G, UA, IA);

  StaticPrior P;
  P.PerItemCycles = Est.PerItemCycles;
  P.MeanWGCycles = Est.PerItemCycles * static_cast<double>(Spec.WGSize);
  P.UsedFallback = Est.UsedFallback;
  return Cache.emplace(&Spec, P).first->second;
}

CostProfile workloads::staticPriorProfile(const KernelSpec &Spec) {
  const StaticPrior &P = staticCostPrior(Spec);
  CostProfile C;
  C.MeanWGCycles = P.MeanWGCycles;
  C.CV = 0.3; // The analysis cannot see data-dependent skew.
  C.Shape = CostShapeKind::Uniform;
  return C;
}
