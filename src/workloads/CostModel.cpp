//===- workloads/CostModel.cpp - Per-work-group cost generation -------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "workloads/KernelSpec.h"

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace accel;
using namespace accel::workloads;

/// FNV-1a so each kernel gets its own deterministic stream.
static uint64_t hashId(const std::string &Id) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Id) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ull;
  }
  return H;
}

std::vector<double> workloads::generateWGCosts(const KernelSpec &Spec,
                                               uint64_t SeedSalt) {
  SplitMix64 Rng(hashId(Spec.Id) ^ (SeedSalt * 0x9E3779B97F4A7C15ull));
  std::vector<double> Costs(Spec.NumWGs);
  const CostProfile &P = Spec.Cost;

  for (uint64_t I = 0; I != Spec.NumWGs; ++I) {
    double U = Rng.nextDouble();
    double C = P.MeanWGCycles;
    switch (P.Shape) {
    case CostShapeKind::Uniform:
      C *= 1.0 + P.CV * (2.0 * U - 1.0);
      break;
    case CostShapeKind::Skewed:
      // Log-uniform right tail: most work groups near the mean, a few
      // several times heavier (data-dependent inner loops).
      C *= std::exp(P.CV * 2.0 * (U - 0.35));
      break;
    case CostShapeKind::Bimodal: {
      // 80% light frontier entries, 20% heavy expansion.
      bool Heavy = Rng.nextDouble() < 0.2;
      C *= Heavy ? (2.5 + P.CV * U) : (0.4 + 0.2 * U);
      break;
    }
    case CostShapeKind::FrontLoaded: {
      // Earlier work groups carry more work (sorted candidates).
      double Position =
          static_cast<double>(I) / static_cast<double>(Spec.NumWGs);
      C *= (1.6 - Position) * (1.0 + P.CV * (U - 0.5));
      break;
    }
    }
    Costs[I] = std::max(C, 1.0);
  }
  return Costs;
}
