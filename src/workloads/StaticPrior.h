//===- workloads/StaticPrior.h - Analysis-seeded cost priors ----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the KIR static cost analysis into the workload layer: a
/// KernelSpec's MiniCL source is compiled and analysed, and the
/// per-work-item cycle estimate becomes a CostProfile seed. Schedulers
/// use it as a solo-duration prior for kernels they have never executed
/// (the cold-start hole): it is calibrated to land within 3x of the
/// measured mean for the whole suite, then blends away as real
/// measurements arrive.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_WORKLOADS_STATICPRIOR_H
#define ACCEL_WORKLOADS_STATICPRIOR_H

#include "workloads/KernelSpec.h"

namespace accel {
namespace workloads {

/// The static analysis' view of one suite kernel.
struct StaticPrior {
  double PerItemCycles = 0; ///< Estimated thread-cycles per work item.
  double MeanWGCycles = 0;  ///< PerItemCycles x WGSize.
  /// True when a loop needed the diagnosed fallback trip count; the
  /// prior is then weaker and callers may widen their blend window.
  bool UsedFallback = false;
};

/// Compiles \p Spec's source and runs the cost analysis over its entry
/// kernel (fatal on compile error: suite sources are tested). Results
/// are memoized per spec.
const StaticPrior &staticCostPrior(const KernelSpec &Spec);

/// A CostProfile seeded from the prior: estimated mean, uniform shape,
/// a wide dispersion guess (the analysis cannot see data skew).
CostProfile staticPriorProfile(const KernelSpec &Spec);

} // namespace workloads
} // namespace accel

#endif // ACCEL_WORKLOADS_STATICPRIOR_H
