//===- workloads/Arrivals.h - Open-loop arrival traces ----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop arrival generation for the streaming evaluation: a Poisson
/// process (exponential inter-arrival times) emits kernel execution
/// requests drawn from the Parboil-like suite and attributed to a set
/// of tenants. Traces are deterministic for a given seed (SplitMix64),
/// so every scheduler replays the *same* stream of work.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_WORKLOADS_ARRIVALS_H
#define ACCEL_WORKLOADS_ARRIVALS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accel {
namespace workloads {

/// One kernel execution request of an arrival trace.
struct TimedRequest {
  size_t KernelIdx = 0;   ///< Index into parboilSuite() / the driver.
  int Tenant = 0;         ///< Submitting application.
  double ArrivalTime = 0; ///< Simulation time of submission.
};

/// Parameters of a Poisson (open-loop) arrival trace.
struct TraceOptions {
  size_t NumRequests = 0;
  int NumTenants = 1;
  /// Mean inter-arrival time (1 / lambda) in simulation time units.
  double MeanInterarrival = 0;
  uint64_t Seed = 0;
};

/// Generates \p Opts.NumRequests requests with exponential
/// inter-arrival times; each request's kernel is drawn uniformly from
/// [0, SuiteSize) and its tenant uniformly from [0, NumTenants). The
/// result is sorted by ArrivalTime by construction.
std::vector<TimedRequest> poissonTrace(size_t SuiteSize,
                                       const TraceOptions &Opts);

} // namespace workloads
} // namespace accel

#endif // ACCEL_WORKLOADS_ARRIVALS_H
