//===- workloads/Arrivals.h - Open-loop arrival traces ----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrival generation for the streaming evaluation, in two flavours:
///
///  - Open loop: a Poisson process (exponential inter-arrival times)
///    emits kernel execution requests drawn from the Parboil-like suite
///    and attributed to a set of tenants, independent of how fast the
///    system serves them.
///  - Closed loop: each tenant keeps a bounded number of requests in
///    flight and issues the next one only after a predecessor completes
///    and an exponential think time elapses — the system's own speed
///    throttles the offered load (backpressure). Because arrival times
///    then depend on scheduling decisions, what is pre-generated here
///    is the deterministic *script* (kernel sequence + think times);
///    the harness turns completions into arrivals at replay time.
///
/// Both are deterministic for a given seed (SplitMix64), so every
/// scheduler replays the *same* stream (open loop) or the *same*
/// scripted reactions (closed loop).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_WORKLOADS_ARRIVALS_H
#define ACCEL_WORKLOADS_ARRIVALS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accel {
namespace workloads {

/// One kernel execution request of an arrival trace.
struct TimedRequest {
  size_t KernelIdx = 0;   ///< Index into parboilSuite() / the driver.
  int Tenant = 0;         ///< Submitting application.
  double ArrivalTime = 0; ///< Simulation time of submission.
};

/// Parameters of a Poisson (open-loop) arrival trace.
struct TraceOptions {
  size_t NumRequests = 0;
  int NumTenants = 1;
  /// Mean inter-arrival time (1 / lambda) in simulation time units.
  double MeanInterarrival = 0;
  uint64_t Seed = 0;
};

/// Generates \p Opts.NumRequests requests with exponential
/// inter-arrival times; each request's kernel is drawn uniformly from
/// [0, SuiteSize) and its tenant uniformly from [0, NumTenants). The
/// result is sorted by ArrivalTime by construction.
std::vector<TimedRequest> poissonTrace(size_t SuiteSize,
                                       const TraceOptions &Opts);

/// One closed-loop tenant: an emulated user population that keeps at
/// most \p Concurrency requests outstanding and, after each completion,
/// "thinks" for an exponential time before issuing the next request.
struct ClosedLoopTenant {
  int Tenant = 0;
  size_t NumRequests = 0; ///< Total requests this tenant ever issues.
  /// In-flight cap: the tenant's first Concurrency scripted requests
  /// enter the system from time 0; afterwards a new request is issued
  /// only when one of the outstanding ones completes (backpressure).
  size_t Concurrency = 1;
  /// Mean of the exponential think time separating a completion from
  /// the next issued request. Zero means the tenant reacts instantly.
  double MeanThinkTime = 0;
  uint64_t Seed = 0; ///< Per-tenant RNG stream.
  /// Kernels this tenant draws from (suite indices); empty means the
  /// whole suite. An interactive tenant, say, runs short requests.
  std::vector<size_t> KernelPool;
};

/// One scripted closed-loop request: which kernel the tenant runs next
/// and how long it thinks before submitting it.
struct ScriptedRequest {
  size_t KernelIdx = 0;
  double ThinkTime = 0;
};

/// The deterministic half of a closed-loop run: per-tenant scripted
/// kernel/think-time sequences. Arrival times are deliberately absent —
/// they emerge from completions when the harness replays the script, so
/// different schedulers see different arrival instants but identical
/// scripted reactions.
struct ClosedLoopScript {
  std::vector<ClosedLoopTenant> Tenants; ///< Parallel to Sequences.
  std::vector<std::vector<ScriptedRequest>> Sequences;

  size_t totalRequests() const;
};

/// Scripts \p Tenants over a \p SuiteSize-kernel suite: request kernels
/// are drawn uniformly and think times exponentially (mean
/// MeanThinkTime) from each tenant's own SplitMix64 stream, so a
/// tenant's script is independent of the other tenants' parameters.
ClosedLoopScript closedLoopTrace(size_t SuiteSize,
                                 const std::vector<ClosedLoopTenant> &Tenants);

} // namespace workloads
} // namespace accel

#endif // ACCEL_WORKLOADS_ARRIVALS_H
