//===- workloads/Sampler.cpp - Workload combination sampling ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "workloads/Sampler.h"

#include "support/Random.h"
#include "workloads/KernelSpec.h"

using namespace accel;
using namespace accel::workloads;

std::vector<Workload> workloads::allPairs() {
  size_t N = parboilSuite().size();
  std::vector<Workload> Out;
  Out.reserve(N * N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      Out.push_back({I, J});
  return Out;
}

std::vector<Workload> workloads::randomCombinations(size_t K, size_t Count,
                                                    uint64_t Seed) {
  size_t N = parboilSuite().size();
  SplitMix64 Rng(Seed);
  std::vector<Workload> Out;
  Out.reserve(Count);
  for (size_t C = 0; C != Count; ++C) {
    Workload W(K);
    for (size_t I = 0; I != K; ++I)
      W[I] = static_cast<size_t>(Rng.nextBelow(N));
    Out.push_back(std::move(W));
  }
  return Out;
}

std::vector<Workload> workloads::alphabeticPairs() {
  size_t N = parboilSuite().size();
  std::vector<Workload> Out;
  for (size_t I = 0; I + 1 < N; I += 2)
    Out.push_back({I, I + 1});
  // 25 kernels leave the last one unpaired; wrap it with the first for
  // the 13th pair.
  Out.push_back({N - 1, 0});
  return Out;
}
