//===- workloads/KernelSpec.h - Parboil-like kernel suite -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 25-kernel workload suite standing in for the OpenCL Parboil
/// benchmarks the paper evaluates on (Sec. 7.2). Each spec carries real
/// MiniCL source (compiled through the same front end and JIT the
/// runtime uses), the launch geometry, an issue-efficiency class, and a
/// per-work-group cost profile that reproduces the suite's diversity of
/// durations and intra-kernel imbalance — the properties the paper's
/// fairness and throughput results depend on.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_WORKLOADS_KERNELSPEC_H
#define ACCEL_WORKLOADS_KERNELSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace accel {
namespace workloads {

/// Shape of the per-work-group cost distribution.
enum class CostShapeKind {
  Uniform,    ///< Mean +- CV jitter (regular kernels).
  Skewed,     ///< Log-normal-like right tail (data-dependent work).
  Bimodal,    ///< Mostly light with a heavy minority (frontiers, bins).
  FrontLoaded ///< Early work groups heavier (sorted inputs).
};

/// Per-work-group cost generator parameters.
struct CostProfile {
  double MeanWGCycles = 0; ///< Mean cost in thread-cycles.
  double CV = 0.1;         ///< Dispersion (coefficient of variation).
  CostShapeKind Shape = CostShapeKind::Uniform;
};

/// One benchmark kernel.
struct KernelSpec {
  std::string Id;         ///< Suite-unique identifier ("bfs").
  std::string KernelName; ///< Entry point inside Source.
  std::string Source;     ///< MiniCL program text.
  uint64_t WGSize = 0;    ///< Work-group size (threads).
  uint64_t NumWGs = 0;    ///< Original NDRange group count.
  /// Sustained fraction of peak issue rate (memory-bound kernels low).
  double IssueEfficiency = 1.0;
  CostProfile Cost;
};

/// \returns the full 25-kernel suite, in alphabetical order of Id.
const std::vector<KernelSpec> &parboilSuite();

/// \returns the spec with the given Id (fatal if unknown).
const KernelSpec &findKernel(const std::string &Id);

/// Deterministically generates the per-work-group costs of \p Spec.
/// \p SeedSalt perturbs the stream (used for repeat-run jitter).
std::vector<double> generateWGCosts(const KernelSpec &Spec,
                                    uint64_t SeedSalt = 0);

} // namespace workloads
} // namespace accel

#endif // ACCEL_WORKLOADS_KERNELSPEC_H
