//===- workloads/ParboilSuite.cpp - The 25 benchmark kernels ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniCL sources and launch parameters for the 25 kernels, named after
/// the OpenCL Parboil kernels the paper uses. The code shapes follow
/// each benchmark's published character (frontier expansion, cutoff
/// Coulomb, histogramming, LBM streaming, MRI gridding/reconstruction,
/// SAD block matching, dense/sparse algebra, stencils, angular
/// correlation); datasets are synthetic (see DESIGN.md substitutions).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelSpec.h"

#include "support/ErrorHandling.h"

using namespace accel;
using namespace accel::workloads;

/// Helper to keep the table below readable.
static KernelSpec makeSpec(const char *Id, const char *KernelName,
                           const char *Source, uint64_t WGSize,
                           uint64_t NumWGs, double Eff, double Mean,
                           double CV, CostShapeKind Shape) {
  KernelSpec S;
  S.Id = Id;
  S.KernelName = KernelName;
  S.Source = Source;
  S.WGSize = WGSize;
  S.NumWGs = NumWGs;
  S.IssueEfficiency = Eff;
  S.Cost = {Mean, CV, Shape};
  return S;
}

static std::vector<KernelSpec> buildSuite() {
  std::vector<KernelSpec> Suite;

  // --- bfs: level-synchronous frontier expansion (irregular). --------------
  Suite.push_back(makeSpec("bfs", "bfs_kernel", R"(
    kernel void bfs_kernel(global const int* frontier,
                           global const int* edges,
                           global const int* offsets,
                           global int* levels, global int* next,
                           int level) {
      long gid = get_global_id(0);
      int node = frontier[gid];
      int first = offsets[node];
      int last = offsets[node + 1];
      for (int e = first; e < last; e++) {
        int dst = edges[e];
        int old = atomic_min(levels, dst);
        if (old > level) {
          int slot = atomic_add(next, 1);
        }
      }
    }
  )", 256, 512, 0.120, 8.0e5, 0.9, CostShapeKind::Bimodal));

  // --- cutcp: cutoff Coulomb potential on a lattice (compute bound). -------
  Suite.push_back(makeSpec("cutcp", "cutcp_lattice", R"(
    kernel void cutcp_lattice(global const float* atoms,
                              global float* lattice, int natoms,
                              float cutoff2) {
      long gid = get_global_id(0);
      float x = (float)(gid % 128);
      float y = (float)((gid / 128) % 128);
      float z = (float)(gid / 16384);
      float energy = 0.0f;
      for (int a = 0; a < natoms; a++) {
        float dx = atoms[a * 4 + 0] - x;
        float dy = atoms[a * 4 + 1] - y;
        float dz = atoms[a * 4 + 2] - z;
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutoff2) {
          float s = 1.0f - r2 / cutoff2;
          energy += atoms[a * 4 + 3] * rsqrt(r2) * s * s;
        }
      }
      lattice[gid] = energy;
    }
  )", 128, 1280, 0.300, 3.0e6, 0.12, CostShapeKind::Uniform));

  // --- histo family: image histogramming with atomics. ---------------------
  Suite.push_back(makeSpec("histo_final", "histo_final_kernel", R"(
    kernel void histo_final_kernel(global const int* partial,
                                   global int* histo, int nbins,
                                   int nparts) {
      long bin = get_global_id(0);
      int sum = 0;
      for (int p = 0; p < nparts; p++) {
        sum += partial[p * nbins + (int)bin];
      }
      int clipped = min(sum, 255);
      histo[bin] = clipped;
    }
  )", 256, 24, 0.080, 3.0e5, 0.15, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("histo_intermediates", "histo_inter_kernel", R"(
    kernel void histo_inter_kernel(global const int* input,
                                   global int* bins, int pitch) {
      long gid = get_global_id(0);
      int v = input[gid];
      int bin = (v >> 4) & 1023;
      int ignored = atomic_add(bins, bin % 97);
    }
  )", 128, 768, 0.150, 2.5e5, 0.25, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("histo_main", "histo_main_kernel", R"(
    kernel void histo_main_kernel(global const int* img,
                                  global int* overflow, global int* sat,
                                  int size) {
      local int tile[1024];
      long lid = get_local_id(0);
      for (long i = lid; i < 1024; i += get_local_size(0)) {
        tile[i] = 0;
      }
      barrier();
      long gid = get_global_id(0);
      int v = img[gid % (long)size];
      int b = v & 1023;
      int o1 = atomic_add(tile, b);
      barrier();
      if (tile[0] > 4096) {
        int o2 = atomic_add(sat, 1);
      }
    }
  )", 256, 512, 0.180, 1.2e6, 0.55, CostShapeKind::Skewed));

  Suite.push_back(makeSpec("histo_prescan", "histo_prescan_kernel", R"(
    kernel void histo_prescan_kernel(global const int* input,
                                     global int* minmax, int n) {
      long gid = get_global_id(0);
      int v = input[gid % (long)n];
      int o1 = atomic_min(minmax, v);
      int o2 = atomic_max(minmax, v);
    }
  )", 256, 512, 0.150, 4.0e5, 0.10, CostShapeKind::Uniform));

  // --- lbm: lattice-Boltzmann streaming step (memory bound, regular). ------
  Suite.push_back(makeSpec("lbm", "lbm_stream_collide", R"(
    kernel void lbm_stream_collide(global const float* src,
                                   global float* dst, int dim,
                                   float omega) {
      long gid = get_global_id(0);
      float rho = 0.0f;
      for (int q = 0; q < 19; q++) {
        rho += src[gid * 19 + q];
      }
      float usq = rho * 0.05f;
      for (int q = 0; q < 19; q++) {
        float feq = rho * (1.0f + usq * (float)q * 0.01f);
        dst[gid * 19 + q] = src[gid * 19 + q] * (1.0f - omega)
                            + feq * omega;
      }
    }
  )", 128, 2048, 0.120, 7.0e5, 0.05, CostShapeKind::Uniform));

  // --- mri-gridding: sample binning + sorting + scan + deapodization. ------
  Suite.push_back(makeSpec("mri_gridding_binning", "binning_kernel", R"(
    kernel void binning_kernel(global const float* samples,
                               global int* bincounts, global int* overflow,
                               int nbins, int n) {
      long gid = get_global_id(0);
      float x = samples[gid % (long)n];
      int bin = (int)(x * 64.0f);
      bin = max(0, min(bin, nbins - 1));
      int c = atomic_add(bincounts, bin % 53);
      if (c > 128) {
        int o = atomic_add(overflow, 1);
      }
    }
  )", 128, 1024, 0.110, 6.0e5, 0.70, CostShapeKind::Bimodal));

  Suite.push_back(makeSpec("mri_gridding_gridding_GPU", "gridding_kernel",
                           R"(
    float kaiser(float d2, float w2) {
      if (d2 >= w2) { return 0.0f; }
      float t = 1.0f - d2 / w2;
      return exp(2.5f * sqrt(t)) * 0.08f;
    }
    kernel void gridding_kernel(global const float* samples,
                                global float* grid, int nsamples,
                                float width2) {
      long gid = get_global_id(0);
      float gx = (float)(gid % 256);
      float acc = 0.0f;
      for (int s = 0; s < nsamples; s++) {
        float dx = samples[s * 2] - gx;
        float d2 = dx * dx + samples[s * 2 + 1];
        acc += kaiser(d2, width2);
      }
      grid[gid] = acc;
    }
  )", 128, 1024, 0.280, 4.0e6, 0.60, CostShapeKind::Skewed));

  Suite.push_back(makeSpec("mri_gridding_reorder", "reorder_kernel", R"(
    kernel void reorder_kernel(global const int* perm,
                               global const float* in, global float* out,
                               int n) {
      long gid = get_global_id(0);
      int src = perm[gid % (long)n];
      out[gid] = in[src];
    }
  )", 128, 1024, 0.110, 5.0e5, 0.20, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("mri_gridding_scan_L1", "scan_L1_kernel", R"(
    kernel void scan_L1_kernel(global const int* in, global int* out,
                               global int* sums) {
      local int tile[256];
      long lid = get_local_id(0);
      long gid = get_global_id(0);
      tile[lid] = in[gid];
      barrier();
      int stride = 1;
      while (stride < 256) {
        int v = 0;
        if (lid >= stride) {
          v = tile[lid - stride];
        }
        barrier();
        tile[lid] += v;
        barrier();
        stride = stride * 2;
      }
      out[gid] = tile[lid];
      if (lid == 255) {
        sums[get_group_id(0)] = tile[255];
      }
    }
  )", 256, 512, 0.200, 3.0e5, 0.08, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("mri_gridding_scan_inter1", "scan_inter1_kernel",
                           R"(
    kernel void scan_inter1_kernel(global int* sums, int n) {
      long gid = get_global_id(0);
      int acc = 0;
      for (int i = 0; i <= (int)gid; i++) {
        acc += sums[i % n];
      }
      sums[gid] = acc;
    }
  )", 128, 16, 0.060, 1.5e5, 0.30, CostShapeKind::FrontLoaded));

  Suite.push_back(makeSpec("mri_gridding_scan_inter2", "scan_inter2_kernel",
                           R"(
    kernel void scan_inter2_kernel(global int* data,
                                   global const int* carry) {
      long gid = get_global_id(0);
      data[gid] += carry[get_group_id(0)];
    }
  )", 128, 16, 0.060, 1.5e5, 0.10, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("mri_gridding_splitRearrange",
                           "splitRearrange_kernel", R"(
    kernel void splitRearrange_kernel(global const int* keys,
                                      global const int* offsets,
                                      global int* out, int mask) {
      long gid = get_global_id(0);
      int k = keys[gid];
      int bucket = k & mask;
      out[offsets[bucket] + (int)gid % 64] = k;
    }
  )", 256, 512, 0.180, 7.0e5, 0.25, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("mri_gridding_splitSort", "splitSort_kernel", R"(
    kernel void splitSort_kernel(global int* keys, global int* values,
                                 int bit) {
      local int tile[256];
      local int ones[1];
      long lid = get_local_id(0);
      if (lid == 0) { ones[0] = 0; }
      barrier();
      long gid = get_global_id(0);
      int k = keys[gid];
      int flag = (k >> bit) & 1;
      int pos = 0;
      if (flag == 1) {
        pos = atomic_add(ones, 1);
      }
      tile[lid] = k;
      barrier();
      keys[gid] = tile[(lid + pos) % 256];
      values[gid] = flag;
    }
  )", 256, 512, 0.220, 9.0e5, 0.45, CostShapeKind::Skewed));

  Suite.push_back(makeSpec("mri_gridding_uniformAdd", "uniformAdd_kernel",
                           R"(
    kernel void uniformAdd_kernel(global float* data,
                                  global const float* add) {
      long gid = get_global_id(0);
      data[gid] += add[get_group_id(0)];
    }
  )", 256, 32, 0.060, 1.0e5, 0.05, CostShapeKind::Uniform));

  // --- mri-q: non-Cartesian MRI reconstruction. -----------------------------
  Suite.push_back(makeSpec("mri_q_ComputePhiMag", "ComputePhiMag_kernel",
                           R"(
    kernel void ComputePhiMag_kernel(global const float* phiR,
                                     global const float* phiI,
                                     global float* phiMag) {
      long gid = get_global_id(0);
      float r = phiR[gid];
      float i = phiI[gid];
      phiMag[gid] = r * r + i * i;
    }
  )", 256, 24, 0.070, 2.0e5, 0.05, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("mri_q_ComputeQ", "ComputeQ_kernel", R"(
    kernel void ComputeQ_kernel(global const float* kx,
                                global const float* ky,
                                global const float* phiMag,
                                global float* qr, global float* qi,
                                int nk) {
      long gid = get_global_id(0);
      float x = (float)gid * 0.01f;
      float sumR = 0.0f;
      float sumI = 0.0f;
      for (int k = 0; k < nk; k++) {
        float angle = 6.2831853f * (kx[k] * x + ky[k] * x * 0.5f);
        sumR += phiMag[k] * cos(angle);
        sumI += phiMag[k] * sin(angle);
      }
      qr[gid] = sumR;
      qi[gid] = sumI;
    }
  )", 256, 896, 0.320, 5.0e6, 0.10, CostShapeKind::Uniform));

  // --- sad: H.264 sum-of-absolute-differences block matching. --------------
  Suite.push_back(makeSpec("sad_larger_sad_calc_16", "larger_sad_calc_16",
                           R"(
    kernel void larger_sad_calc_16(global const int* sads8,
                                   global int* sads16, int stride) {
      long gid = get_global_id(0);
      long base = gid * 4;
      sads16[gid] = sads8[base] + sads8[base + 1]
                    + sads8[base + 2] + sads8[base + 3];
    }
  )", 64, 1024, 0.150, 2.5e5, 0.10, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("sad_larger_sad_calc_8", "larger_sad_calc_8", R"(
    kernel void larger_sad_calc_8(global const int* sads4,
                                  global int* sads8, int stride) {
      long gid = get_global_id(0);
      long base = gid * 2;
      sads8[gid] = sads4[base] + sads4[base + 1];
    }
  )", 128, 896, 0.150, 4.0e5, 0.10, CostShapeKind::Uniform));

  Suite.push_back(makeSpec("sad_mb_sad_calc", "mb_sad_calc", R"(
    kernel void mb_sad_calc(global const int* cur,
                            global const int* ref, global int* sads,
                            int searchRange) {
      long gid = get_global_id(0);
      int best = 2147483647;
      for (int s = 0; s < searchRange; s++) {
        int acc = 0;
        for (int p = 0; p < 16; p++) {
          acc += abs(cur[(gid * 16 + p) % 4096]
                     - ref[(gid * 16 + p + s) % 4096]);
        }
        best = min(best, acc);
      }
      sads[gid] = best;
    }
  )", 128, 1792, 0.250, 1.0e6, 0.35, CostShapeKind::FrontLoaded));

  // --- sgemm: tiled dense matrix multiply (compute bound). -----------------
  Suite.push_back(makeSpec("sgemm", "sgemm_kernel", R"(
    kernel void sgemm_kernel(global const float* a,
                             global const float* b, global float* c,
                             int n, float alpha, float beta) {
      local float tileA[128];
      local float tileB[128];
      long lid = get_local_id(0);
      long gid = get_global_id(0);
      float acc = 0.0f;
      int tiles = n / 128;
      for (int t = 0; t < tiles; t++) {
        tileA[lid] = a[(gid * (long)tiles + t) % (long)(n * 16)];
        tileB[lid] = b[((long)t * 128 + lid) % (long)(n * 16)];
        barrier();
        for (int k = 0; k < 128; k++) {
          acc += tileA[(int)(lid + k) % 128] * tileB[k];
        }
        barrier();
      }
      c[gid] = alpha * acc + beta * c[gid];
    }
  )", 128, 1024, 0.350, 6.0e6, 0.04, CostShapeKind::Uniform));

  // --- spmv: sparse matrix-vector product (irregular, memory bound). -------
  Suite.push_back(makeSpec("spmv", "spmv_jds", R"(
    kernel void spmv_jds(global const float* vals,
                         global const int* cols,
                         global const int* rowlen,
                         global const float* x, global float* y,
                         int maxlen) {
      long row = get_global_id(0);
      int len = rowlen[row];
      float acc = 0.0f;
      for (int j = 0; j < len; j++) {
        long idx = (long)j * get_global_size(0) + row;
        acc += vals[idx] * x[cols[idx]];
      }
      y[row] = acc;
    }
  )", 96, 1344, 0.110, 7.0e5, 0.80, CostShapeKind::Skewed));

  // --- stencil: 7-point 3-D Jacobi stencil. ---------------------------------
  Suite.push_back(makeSpec("stencil", "stencil_kernel", R"(
    kernel void stencil_kernel(global const float* in, global float* out,
                               int nx, int ny, float c0, float c1) {
      long gid = get_global_id(0);
      long plane = (long)nx * ny;
      long n = get_global_size(0);
      long up = gid + plane;
      long dn = gid - plane;
      if (up >= n) { up = gid; }
      if (dn < 0) { dn = gid; }
      float center = in[gid];
      float sum = in[(gid + 1) % n] + in[(gid + n - 1) % n]
                + in[(gid + nx) % n] + in[(gid + n - nx) % n]
                + in[up] + in[dn];
      out[gid] = c0 * center + c1 * sum;
    }
  )", 128, 1024, 0.250, 9.0e5, 0.08, CostShapeKind::Uniform));

  // --- tpacf: two-point angular correlation (long-running). ----------------
  Suite.push_back(makeSpec("tpacf", "gen_hists", R"(
    kernel void gen_hists(global const float* data,
                          global const float* rand_pts,
                          global int* hists, int npoints, int nbins) {
      local int histo[64];
      long lid = get_local_id(0);
      for (long i = lid; i < 64; i += get_local_size(0)) {
        histo[i] = 0;
      }
      barrier();
      long gid = get_global_id(0);
      float zx = data[(gid * 3) % (long)npoints];
      float zy = data[(gid * 3 + 1) % (long)npoints];
      float zz = data[(gid * 3 + 2) % (long)npoints];
      for (int p = 0; p < npoints; p++) {
        float dot = zx * rand_pts[p * 3] + zy * rand_pts[p * 3 + 1]
                  + zz * rand_pts[p * 3 + 2];
        float clamped = fmax(fmin(dot, 1.0f), -1.0f);
        int bin = (int)((clamped + 1.0f) * 31.5f);
        int o = atomic_add(histo, bin % 64);
      }
      barrier();
      if (lid < 64) {
        int o2 = atomic_add(hists, histo[lid]);
      }
    }
  )", 256, 512, 0.280, 1.2e7, 0.15, CostShapeKind::Uniform));

  return Suite;
}

const std::vector<KernelSpec> &workloads::parboilSuite() {
  static const std::vector<KernelSpec> Suite = buildSuite();
  return Suite;
}

const KernelSpec &workloads::findKernel(const std::string &Id) {
  for (const KernelSpec &S : parboilSuite())
    if (S.Id == Id)
      return S;
  reportFatalError(("unknown workload kernel: " + Id).c_str());
}
