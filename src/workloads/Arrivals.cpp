//===- workloads/Arrivals.cpp - Open-loop arrival traces ---------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "workloads/Arrivals.h"

#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace accel;
using namespace accel::workloads;

std::vector<TimedRequest> workloads::poissonTrace(size_t SuiteSize,
                                                  const TraceOptions &Opts) {
  assert(SuiteSize > 0 && "empty kernel suite");
  assert(Opts.NumTenants > 0 && "trace needs at least one tenant");
  assert(Opts.MeanInterarrival > 0 && "non-positive mean inter-arrival");

  SplitMix64 Rng(Opts.Seed);
  std::vector<TimedRequest> Trace;
  Trace.reserve(Opts.NumRequests);
  double T = 0;
  for (size_t I = 0; I != Opts.NumRequests; ++I) {
    // Exponential inter-arrival: -mean * ln(1 - U), U in [0, 1).
    T += -Opts.MeanInterarrival * std::log1p(-Rng.nextDouble());
    TimedRequest R;
    R.KernelIdx = static_cast<size_t>(Rng.nextBelow(SuiteSize));
    R.Tenant = static_cast<int>(
        Rng.nextBelow(static_cast<uint64_t>(Opts.NumTenants)));
    R.ArrivalTime = T;
    Trace.push_back(R);
  }
  return Trace;
}

size_t ClosedLoopScript::totalRequests() const {
  size_t Total = 0;
  for (const std::vector<ScriptedRequest> &Seq : Sequences)
    Total += Seq.size();
  return Total;
}

ClosedLoopScript
workloads::closedLoopTrace(size_t SuiteSize,
                           const std::vector<ClosedLoopTenant> &Tenants) {
  assert(SuiteSize > 0 && "empty kernel suite");
  ClosedLoopScript Script;
  Script.Tenants = Tenants;
  Script.Sequences.reserve(Tenants.size());
  for (const ClosedLoopTenant &T : Tenants) {
    assert(T.Concurrency > 0 && "closed-loop tenant needs a stream");
    assert(T.MeanThinkTime >= 0 && "negative mean think time");
    SplitMix64 Rng(T.Seed);
    std::vector<ScriptedRequest> Seq;
    Seq.reserve(T.NumRequests);
    for (size_t I = 0; I != T.NumRequests; ++I) {
      ScriptedRequest R;
      if (T.KernelPool.empty()) {
        R.KernelIdx = static_cast<size_t>(Rng.nextBelow(SuiteSize));
      } else {
        R.KernelIdx = T.KernelPool[static_cast<size_t>(
            Rng.nextBelow(T.KernelPool.size()))];
        assert(R.KernelIdx < SuiteSize && "kernel pool out of range");
      }
      // Exponential think time: -mean * ln(1 - U), U in [0, 1).
      if (T.MeanThinkTime > 0)
        R.ThinkTime = -T.MeanThinkTime * std::log1p(-Rng.nextDouble());
      Seq.push_back(R);
    }
    Script.Sequences.push_back(std::move(Seq));
  }
  return Script;
}
