//===- workloads/Sampler.h - Workload combination sampling ------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's workload sets (Sec. 7.2): all 25x25 pairwise
/// combinations, uniformly sampled k-kernel combinations for k = 4 and
/// k = 8, and the 13 alphabetic pairs of Fig. 11.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_WORKLOADS_SAMPLER_H
#define ACCEL_WORKLOADS_SAMPLER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accel {
namespace workloads {

/// A workload: indices into parboilSuite().
using Workload = std::vector<size_t>;

/// All ordered pairs (i, j) over the suite: 25 x 25 = 625 workloads.
std::vector<Workload> allPairs();

/// \p Count random \p K-kernel combinations (with repetition across
/// workloads, distinct positions sampled uniformly with replacement as
/// in the paper's random selection).
std::vector<Workload> randomCombinations(size_t K, size_t Count,
                                         uint64_t Seed);

/// The 13 alphabetic-neighbour pairs of Fig. 11 (the last pair wraps).
std::vector<Workload> alphabeticPairs();

} // namespace workloads
} // namespace accel

#endif // ACCEL_WORKLOADS_SAMPLER_H
