//===- cluster/Fleet.cpp - Multi-device fleet and placement ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "cluster/Fleet.h"

#include "harness/Streaming.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <limits>

using namespace accel;
using namespace accel::cluster;

size_t Fleet::addDevice(const sim::DeviceSpec &Spec) {
  size_t Idx = Drivers.size();
  Drivers.emplace_back(Spec);
  harness::ExperimentDriver &D = Drivers.back();
  double Solo = harness::meanIsolatedBaselineDuration(D);
  double Work = 0;
  for (size_t I = 0; I != D.numKernels(); ++I) {
    for (double C : D.kernel(I).WGCosts)
      Work += C;
  }
  Work /= static_cast<double>(D.numKernels());
  MeanSolo.push_back(Solo);
  Rate.push_back(Solo > 0 ? Work / Solo : 1.0);
  return Idx;
}

double Fleet::meanSoloDurationAcrossFleet() const {
  assert(!MeanSolo.empty() && "empty fleet has no time unit");
  double Sum = 0;
  for (double S : MeanSolo)
    Sum += S;
  return Sum / static_cast<double>(MeanSolo.size());
}

PlacementPolicy::~PlacementPolicy() = default;

void PlacementPolicy::attach(std::vector<double> ServiceRates,
                             const std::vector<bool> &Alive) {
  assert((Alive.empty() || Alive.size() == ServiceRates.size()) &&
         "alive mask must be fleet-sized");
  Loads.assign(ServiceRates.size(), DeviceLoad{});
  for (size_t D = 0; D != ServiceRates.size(); ++D) {
    Loads[D].ServiceRate = ServiceRates[D];
    Loads[D].Alive = Alive.empty() || Alive[D];
  }
  onAttach();
}

void PlacementPolicy::admitTo(size_t Device, double Cost) {
  assert(Device < Loads.size() && Loads[Device].Alive &&
         "admitting to an out-of-service device");
  Loads[Device].OutstandingCost += Cost;
  ++Loads[Device].OutstandingRequests;
  onAdmit(Device, Cost);
}

void PlacementPolicy::completeOn(size_t Device, double DrainedCost,
                                 bool Finished) {
  assert(Device < Loads.size() && "completion on an unknown device");
  Loads[Device].OutstandingCost -= DrainedCost;
  if (Finished) {
    assert(Loads[Device].OutstandingRequests > 0 &&
           "finishing a request the view never admitted");
    --Loads[Device].OutstandingRequests;
  }
  onComplete(Device, DrainedCost, Finished);
}

void PlacementPolicy::withdrawFrom(size_t Device, double RemainingCost) {
  assert(Device < Loads.size() && Loads[Device].OutstandingRequests > 0 &&
         "withdrawing a request the view never admitted");
  Loads[Device].OutstandingCost -= RemainingCost;
  --Loads[Device].OutstandingRequests;
  onWithdraw(Device, RemainingCost);
}

void PlacementPolicy::deviceDown(size_t Device) {
  assert(Device < Loads.size() && "unknown device went down");
  Loads[Device].Alive = false;
  onDeviceDown(Device);
}

void PlacementPolicy::deviceUp(size_t Device) {
  assert(Device < Loads.size() && "unknown device came up");
  Loads[Device].Alive = true;
  onDeviceUp(Device);
}

std::optional<size_t>
PlacementPolicy::suggestMigration(const PlacementRequest & /*Req*/,
                                  size_t /*Current*/) {
  return std::nullopt;
}

namespace {

/// Blind rotation: device (i mod N) serves the i-th placed request.
/// The baseline a heterogeneous fleet punishes — a slow device receives
/// an equal slice of the traffic and backs up. With part of the fleet
/// out of service the cursor skips dead devices (on a fault-free replay
/// the sequence is the classic i mod N). Rotation has side effects, so
/// it never volunteers migrations.
class RoundRobinPlacement : public PlacementPolicy {
public:
  size_t place(const PlacementRequest &) override {
    const std::vector<DeviceLoad> &L = loads();
    for (size_t Probe = 0; Probe != L.size(); ++Probe) {
      size_t D = (Next + Probe) % L.size();
      if (L[D].Alive) {
        Next = D + 1;
        return D;
      }
    }
    accel_unreachable("place() with no device in service");
  }

  const char *name() const override { return "round-robin"; }

protected:
  void onAttach() override { Next = 0; }

private:
  size_t Next = 0;
};

/// Join-shortest-residual-work: the in-service device with the least
/// outstanding thread-cycles wins (ties to the lowest index).
/// Load-aware but speed-blind: a cycle of work on a slow device counts
/// the same as one on a fast device.
class LeastLoadedPlacement : public PlacementPolicy {
public:
  size_t place(const PlacementRequest &) override { return bestOf(loads()); }

  std::optional<size_t> suggestMigration(const PlacementRequest &,
                                         size_t Current) override {
    size_t Best = bestOf(loads());
    if (Best == Current)
      return std::nullopt;
    return Best;
  }

  const char *name() const override { return "least-loaded"; }

private:
  static size_t bestOf(const std::vector<DeviceLoad> &Loads) {
    size_t Best = Loads.size();
    for (size_t I = 0; I != Loads.size(); ++I) {
      if (!Loads[I].Alive)
        continue;
      if (Best == Loads.size() ||
          Loads[I].OutstandingCost < Loads[Best].OutstandingCost)
        Best = I;
    }
    assert(Best != Loads.size() && "no device in service");
    return Best;
  }
};

/// Join-shortest-expected-completion (Gavel-style): estimate when each
/// in-service device would finish the request — its outstanding work
/// divided by its measured service rate, plus the request's own
/// isolated duration on that device — and place on the earliest (ties
/// to the lowest index). A device half as fast sees its backlog
/// weighted double, so it is handed proportionally less traffic and the
/// fleet-wide fair shares survive heterogeneity. Migration prices the
/// remaining range the same way (the harness scales the solo estimates
/// by the unexecuted fraction).
class HeterogeneityAwarePlacement : public PlacementPolicy {
public:
  size_t place(const PlacementRequest &Req) override {
    return bestOf(loads(), Req);
  }

  std::optional<size_t> suggestMigration(const PlacementRequest &Req,
                                         size_t Current) override {
    size_t Best = bestOf(loads(), Req);
    if (Best == Current)
      return std::nullopt;
    return Best;
  }

  const char *name() const override { return "heterogeneity-aware"; }

private:
  static size_t bestOf(const std::vector<DeviceLoad> &Loads,
                       const PlacementRequest &Req) {
    size_t Best = Loads.size();
    double BestTime = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I != Loads.size(); ++I) {
      const DeviceLoad &L = Loads[I];
      if (!L.Alive)
        continue;
      double Rate = L.ServiceRate > 0 ? L.ServiceRate : 1.0;
      double Est = L.OutstandingCost / Rate + Req.soloOn(I);
      if (Est < BestTime) {
        Best = I;
        BestTime = Est;
      }
    }
    assert(Best != Loads.size() && "no device in service");
    return Best;
  }
};

} // namespace

std::unique_ptr<PlacementPolicy>
cluster::makePlacementPolicy(PlacementKind Kind) {
  switch (Kind) {
  case PlacementKind::RoundRobin:
    return std::make_unique<RoundRobinPlacement>();
  case PlacementKind::LeastLoaded:
    return std::make_unique<LeastLoadedPlacement>();
  case PlacementKind::HeterogeneityAware:
    return std::make_unique<HeterogeneityAwarePlacement>();
  }
  accel_unreachable("bad placement kind");
}

const char *cluster::placementName(PlacementKind Kind) {
  switch (Kind) {
  case PlacementKind::RoundRobin:
    return "round-robin";
  case PlacementKind::LeastLoaded:
    return "least-loaded";
  case PlacementKind::HeterogeneityAware:
    return "heterogeneity-aware";
  }
  accel_unreachable("bad placement kind");
}
