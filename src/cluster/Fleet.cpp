//===- cluster/Fleet.cpp - Multi-device fleet and placement ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "cluster/Fleet.h"

#include "harness/Streaming.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <limits>

using namespace accel;
using namespace accel::cluster;

size_t Fleet::addDevice(const sim::DeviceSpec &Spec) {
  size_t Idx = Drivers.size();
  Drivers.emplace_back(Spec);
  harness::ExperimentDriver &D = Drivers.back();
  double Solo = harness::meanIsolatedBaselineDuration(D);
  double Work = 0;
  for (size_t I = 0; I != D.numKernels(); ++I) {
    for (double C : D.kernel(I).WGCosts)
      Work += C;
  }
  Work /= static_cast<double>(D.numKernels());
  MeanSolo.push_back(Solo);
  Rate.push_back(Solo > 0 ? Work / Solo : 1.0);
  return Idx;
}

double Fleet::meanSoloDurationAcrossFleet() const {
  assert(!MeanSolo.empty() && "empty fleet has no time unit");
  double Sum = 0;
  for (double S : MeanSolo)
    Sum += S;
  return Sum / static_cast<double>(MeanSolo.size());
}

PlacementPolicy::~PlacementPolicy() = default;

namespace {

/// Blind rotation: device (i mod N) serves the i-th placed request.
/// The baseline a heterogeneous fleet punishes — a slow device receives
/// an equal slice of the traffic and backs up.
class RoundRobinPlacement : public PlacementPolicy {
public:
  void reset() override { Next = 0; }

  size_t place(const PlacementRequest &,
               const std::vector<DeviceLoad> &Loads) override {
    return Next++ % Loads.size();
  }

  const char *name() const override { return "round-robin"; }

private:
  size_t Next = 0;
};

/// Join-shortest-residual-work: the device with the least outstanding
/// thread-cycles wins (ties to the lowest index). Load-aware but
/// speed-blind: a cycle of work on a slow device counts the same as one
/// on a fast device.
class LeastLoadedPlacement : public PlacementPolicy {
public:
  size_t place(const PlacementRequest &,
               const std::vector<DeviceLoad> &Loads) override {
    size_t Best = 0;
    for (size_t I = 1; I != Loads.size(); ++I)
      if (Loads[I].OutstandingCost < Loads[Best].OutstandingCost)
        Best = I;
    return Best;
  }

  const char *name() const override { return "least-loaded"; }
};

/// Join-shortest-expected-completion (Gavel-style): estimate when each
/// device would finish the request — its outstanding work divided by
/// its measured service rate, plus the request's own isolated duration
/// on that device — and place on the earliest (ties to the lowest
/// index). A device half as fast sees its backlog weighted double, so
/// it is handed proportionally less traffic and the fleet-wide fair
/// shares survive heterogeneity.
class HeterogeneityAwarePlacement : public PlacementPolicy {
public:
  size_t place(const PlacementRequest &,
               const std::vector<DeviceLoad> &Loads) override {
    size_t Best = 0;
    double BestTime = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I != Loads.size(); ++I) {
      const DeviceLoad &L = Loads[I];
      double Rate = L.ServiceRate > 0 ? L.ServiceRate : 1.0;
      double Est = L.OutstandingCost / Rate + L.SoloDuration;
      if (Est < BestTime) {
        Best = I;
        BestTime = Est;
      }
    }
    return Best;
  }

  const char *name() const override { return "heterogeneity-aware"; }
};

} // namespace

std::unique_ptr<PlacementPolicy>
cluster::makePlacementPolicy(PlacementKind Kind) {
  switch (Kind) {
  case PlacementKind::RoundRobin:
    return std::make_unique<RoundRobinPlacement>();
  case PlacementKind::LeastLoaded:
    return std::make_unique<LeastLoadedPlacement>();
  case PlacementKind::HeterogeneityAware:
    return std::make_unique<HeterogeneityAwarePlacement>();
  }
  accel_unreachable("bad placement kind");
}

const char *cluster::placementName(PlacementKind Kind) {
  switch (Kind) {
  case PlacementKind::RoundRobin:
    return "round-robin";
  case PlacementKind::LeastLoaded:
    return "least-loaded";
  case PlacementKind::HeterogeneityAware:
    return "heterogeneity-aware";
  }
  accel_unreachable("bad placement kind");
}
