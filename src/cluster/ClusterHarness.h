//===- cluster/ClusterHarness.h - Fleet-wide serving loop -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster serving loop: one request stream scheduled across a
/// cluster::Fleet of heterogeneous simulated devices on a single merged
/// event clock. Every device runs its own arrival-aware continuous
/// scheduler (sim::EngineSession + accelos::ContinuousScheduler,
/// exactly the per-device discipline of harness::runStream's Continuous
/// mode); the cluster layer adds the placement decision — which device
/// a newly arrived request lands on (cluster::PlacementPolicy) — and
/// keeps fairness cluster-wide:
///
///  - per-tenant sharing weights apply on every device a tenant's
///    requests land on;
///  - with StreamOptions::AdaptiveSloWeights, ONE SLO controller
///    (accelos::SloWeightController) observes the aggregate queueing
///    time of completions from ALL devices, and its adapted weights
///    propagate to every device's scheduler through the next
///    submissions and slice requeues.
///
/// The merged clock works like the single-device continuous loop
/// generalized over N sessions: arrivals due now are placed and
/// admitted, then every session advances to the earliest next event
/// anywhere in the fleet (or the next arrival, whichever is first).
/// With a single-device fleet the loop degenerates to exactly
/// runStream's continuous replay — same events in the same order, so
/// the output is bit-identical (regression-tested).
///
/// Work-slice requeues stay on the placed device: placement binds a
/// request at arrival time (the Arax-style decoupling happens at the
/// submission seam), and migrating half-executed virtual ranges between
/// devices would forfeit the determinism the whole evaluation rests on.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_CLUSTER_CLUSTERHARNESS_H
#define ACCEL_CLUSTER_CLUSTERHARNESS_H

#include "cluster/Fleet.h"
#include "harness/Streaming.h"
#include "workloads/Arrivals.h"

#include <string>
#include <vector>

namespace accel {
namespace harness {

/// Per-device serving numbers of one cluster replay.
struct ClusterDeviceOutcome {
  std::string Name;     ///< The device spec's name.
  size_t Requests = 0;  ///< Requests placed on this device.
  double BusyTime = 0;  ///< Time the device had work in flight.
  double Utilization = 0; ///< BusyTime over the cluster makespan.
  size_t Rounds = 0;      ///< Admission passes solved on this device.
  uint64_t Deferrals = 0; ///< Scheduler deferrals on this device.
};

/// Whole-fleet outcome of one cluster replay.
struct ClusterOutcome {
  /// Cluster-wide request metrics, in the shape every single-device
  /// consumer already understands: per-request timings, slowdowns
  /// (normalized to the isolated duration on the *placed* device),
  /// unfairness, makespan, FinalWeights. Rounds/Deferrals aggregate
  /// over the fleet.
  StreamOutcome Stream;
  std::vector<ClusterDeviceOutcome> Devices; ///< Indexed by fleet position.
  /// The placement decision of every request, parallel to
  /// Stream.Requests (trace order).
  std::vector<size_t> Placement;
};

/// Where the per-request solo-duration estimate the placement policies
/// see (DeviceLoad::SoloDuration) comes from. The interesting case is
/// cold start: a kernel the fleet has never executed.
enum class SoloEstimateKind {
  /// Measured isolated duration, even for kernels that have never run —
  /// an oracle no real serving system has on first contact. The
  /// historical (and still default) behavior.
  Oracle,
  /// No per-kernel knowledge at all: every request is assumed to take
  /// the device's suite-mean solo duration. What a prior-less system
  /// is reduced to before its first measurement.
  Blind,
  /// Cold-start prior from the KIR static cost analysis
  /// (harness::ExperimentDriver::priorSoloDuration), blending into the
  /// measured mean service span as completions of the same kernel on
  /// the same device accumulate.
  StaticPrior,
};

/// Cluster replay knobs: the single-device streaming options (weights,
/// quantum, SLO targets/adaptation, strict shares, issue-capacity
/// clamp) apply per device; Admission is ignored — the cluster always
/// runs arrival-aware continuous admission.
struct ClusterOptions {
  StreamOptions Stream;
  /// accelOS batching mode of the per-device work-queue launches.
  accelos::SchedulingMode Mode = accelos::SchedulingMode::Optimized;
  /// Per-tenant sticky affinity: once a tenant's first request is
  /// placed, every later request of that tenant follows it to the same
  /// device (cache/session locality); the policy only decides each
  /// tenant's first placement.
  bool StickyTenantAffinity = false;
  /// Source of the solo-duration estimates placement decisions use.
  SoloEstimateKind SoloEstimate = SoloEstimateKind::Oracle;
  /// In StaticPrior mode, how many observations the analysis prior
  /// counts as when blending with measured service spans:
  /// estimate = (Prior * Weight + sum(observed)) / (Weight + count).
  double PriorObservationWeight = 1.0;
};

/// Replays the open-loop \p Trace across \p Fleet under \p Policy.
/// Unlike runStream, AdaptiveSloWeights is honoured here too: the
/// open-loop cluster has a genuine cross-device control plane.
ClusterOutcome runCluster(cluster::Fleet &Fleet,
                          cluster::PlacementPolicy &Policy,
                          const std::vector<workloads::TimedRequest> &Trace,
                          const ClusterOptions &Opts = {});

/// Replays the closed-loop \p Script across \p Fleet under \p Policy:
/// each tenant's next scripted request is issued on a completion (plus
/// think time) exactly as in runClosedLoop, and placed at its arrival.
ClusterOutcome
runClusterClosedLoop(cluster::Fleet &Fleet,
                     cluster::PlacementPolicy &Policy,
                     const workloads::ClosedLoopScript &Script,
                     const ClusterOptions &Opts = {});

} // namespace harness
} // namespace accel

#endif // ACCEL_CLUSTER_CLUSTERHARNESS_H
