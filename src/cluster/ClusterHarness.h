//===- cluster/ClusterHarness.h - Fleet-wide serving loop -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster serving loop: one request stream scheduled across a
/// cluster::Fleet of heterogeneous simulated devices on a single merged
/// event clock. Every device runs its own arrival-aware continuous
/// scheduler (sim::EngineSession + accelos::ContinuousScheduler,
/// exactly the per-device discipline of harness::runStream's Continuous
/// mode); the cluster layer adds the placement decision — which device
/// a request runs on (cluster::PlacementPolicy) — and keeps fairness
/// cluster-wide:
///
///  - per-tenant sharing weights apply on every device a tenant's
///    requests land on;
///  - with StreamOptions::AdaptiveSloWeights, ONE SLO controller
///    (accelos::SloWeightController) observes the aggregate queueing
///    time of completions from ALL devices, and its adapted weights
///    propagate to every device's scheduler through the next
///    submissions and slice requeues.
///
/// The merged clock works like the single-device continuous loop
/// generalized over N sessions: arrivals due now are placed and
/// admitted, then every session advances to the earliest next event
/// anywhere in the fleet (or the next arrival / scripted fleet event,
/// whichever is first). With a single-device fleet the loop degenerates
/// to exactly runStream's continuous replay — same events in the same
/// order, so the output is bit-identical (regression-tested).
///
/// One entry point serves both workload shapes: runClusterReplay takes
/// a ClusterWorkload (an open-loop timed trace OR a closed-loop
/// script — the reactive issue-on-completion loop of runClosedLoop) and
/// ClusterOptions carries everything else. runCluster and
/// runClusterClosedLoop remain as thin compatibility wrappers.
///
/// The fleet is neither static nor immortal. ClusterOptions::FleetPlan
/// scripts capacity events against the merged clock: a device goes
/// Down (fail-stop: in-flight slices are discarded and roll back into
/// the requests' remaining virtual ranges, queued requests unbind) and
/// may later come Up again — the same mechanism expresses elastic
/// scale-up, since a device whose first scripted event is Up starts
/// outside the serving set. Displaced requests re-enter placement
/// under bounded retries (MaxRetries) and are recorded per request;
/// with nowhere to go they are lost (ClusterOutcome::LostRequests) —
/// never silently dropped. With MigrationOptions::Enabled, the replay
/// additionally consults PlacementPolicy::suggestMigration at
/// quantum-slice boundaries when the completing device's normalized
/// backlog has diverged from the rest of the fleet, and half-executed
/// virtual ranges carry their remaining work groups to the new device.
/// Everything stays deterministic: the same inputs (trace + options +
/// fleet plan) replay to bit-identical outcomes, migrations and
/// failures included.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_CLUSTER_CLUSTERHARNESS_H
#define ACCEL_CLUSTER_CLUSTERHARNESS_H

#include "cluster/Fleet.h"
#include "harness/Streaming.h"
#include "workloads/Arrivals.h"

#include <cstdint>
#include <string>
#include <vector>

namespace accel {
namespace harness {

/// Per-device serving numbers of one cluster replay.
struct ClusterDeviceOutcome {
  std::string Name;     ///< The device spec's name.
  size_t Requests = 0;  ///< Requests first placed on this device.
  double BusyTime = 0;  ///< Time the device had work in flight.
  double Utilization = 0; ///< BusyTime over the cluster makespan.
  size_t Rounds = 0;      ///< Admission passes solved on this device.
  uint64_t Deferrals = 0; ///< Scheduler deferrals on this device.
};

/// One scripted device failure and what came of it.
struct ClusterFaultRecord {
  size_t Device = 0;
  double DownTime = 0;
  /// Requests unbound from the device (in flight or queued) by the
  /// failure.
  size_t Displaced = 0;
  /// Displaced requests that could not be re-placed (retry budget
  /// exhausted, or no device ever came back).
  size_t Lost = 0;
  /// Time from the failure until every displaced request was settled
  /// again — finished, lost, or displaced anew by a later fault. Zero
  /// when the failure displaced nothing.
  double RecoveryTime = 0;
};

/// One re-placement of a live request: a failover off a dead device, or
/// a quantum-boundary load-balancing migration.
struct ClusterMigrationRecord {
  size_t RequestIdx = 0;
  /// Source device, or the fleet size when the request was waiting
  /// unplaced (re-placed from the parked state after an outage).
  size_t From = 0;
  size_t To = 0;
  double Time = 0;
  /// Virtual work groups the request still had to execute when it
  /// moved.
  uint64_t RemainingWGs = 0;
  /// True when forced by a device failure, false for a voluntary
  /// (work-stealing) migration.
  bool Failover = false;
};

/// Whole-fleet outcome of one cluster replay.
struct ClusterOutcome {
  /// Cluster-wide request metrics, in the shape every single-device
  /// consumer already understands: per-request timings, slowdowns
  /// (normalized to the isolated duration on the device that served
  /// the request's final slice), unfairness, makespan, FinalWeights.
  /// Rounds/Deferrals aggregate over the fleet.
  StreamOutcome Stream;
  std::vector<ClusterDeviceOutcome> Devices; ///< Indexed by fleet position.
  /// The (final) placement of every request, parallel to
  /// Stream.Requests; the fleet size for a lost request that was never
  /// placed.
  std::vector<size_t> Placement;
  /// Times each request was displaced by a device failure, parallel to
  /// Stream.Requests.
  std::vector<uint32_t> Retries;
  /// Requests that could not be served (trace order). Lost requests
  /// still appear in Stream.Requests with their loss instant as
  /// EndTime.
  std::vector<size_t> LostRequests;
  std::vector<ClusterFaultRecord> Faults; ///< Plan order.
  std::vector<ClusterMigrationRecord> Migrations; ///< Event order.
  /// Work conservation: virtual work groups the trace asked for vs.
  /// those that completed. Equal whenever LostRequests is empty —
  /// migration and failover move work, they never duplicate or leak it.
  uint64_t RequestedWGs = 0;
  uint64_t ExecutedWGs = 0;
};

/// Where the per-request solo-duration estimate the placement policies
/// see (PlacementRequest::soloOn) comes from. The interesting case is
/// cold start: a kernel the fleet has never executed.
enum class SoloEstimateKind {
  /// Measured isolated duration, even for kernels that have never run —
  /// an oracle no real serving system has on first contact. The
  /// historical (and still default) behavior.
  Oracle,
  /// No per-kernel knowledge at all: every request is assumed to take
  /// the device's suite-mean solo duration. What a prior-less system
  /// is reduced to before its first measurement.
  Blind,
  /// Cold-start prior from the KIR static cost analysis
  /// (harness::ExperimentDriver::priorSoloDuration), blending into the
  /// measured mean service span as completions of the same kernel on
  /// the same device accumulate.
  StaticPrior,
};

/// One scripted fleet-capacity event on the merged clock.
struct FleetEvent {
  enum class Kind {
    Down, ///< Fail-stop: the device leaves with its work displaced.
    Up,   ///< The device (re)joins empty and accepts placements again.
  };
  double Time = 0;
  size_t Device = 0;
  Kind What = Kind::Down;
};

/// Quantum-boundary migration (work-stealing) knobs.
struct MigrationOptions {
  bool Enabled = false;
  /// Migrate only when the completing device's normalized backlog
  /// (outstanding thread-cycles over service rate) exceeds this factor
  /// times the mean normalized backlog of the other in-service devices.
  double DivergenceFactor = 2.0;
  /// Per-request cap on voluntary migrations (failovers are not
  /// budgeted — a dead device leaves no choice).
  uint32_t MaxPerRequest = 8;
};

/// Cluster replay knobs: the single-device streaming options (weights,
/// quantum, SLO targets/adaptation, strict shares, issue-capacity
/// clamp) apply per device; Admission is ignored — the cluster always
/// runs arrival-aware continuous admission.
struct ClusterOptions {
  StreamOptions Stream;
  /// accelOS batching mode of the per-device work-queue launches.
  accelos::SchedulingMode Mode = accelos::SchedulingMode::Optimized;
  /// Per-tenant sticky affinity: once a tenant's first request is
  /// placed, every later request of that tenant follows it to the same
  /// device (cache/session locality) while that device is in service;
  /// the policy decides each tenant's first placement and re-decides
  /// after its home device fails.
  bool StickyTenantAffinity = false;
  /// Source of the solo-duration estimates placement decisions use.
  SoloEstimateKind SoloEstimate = SoloEstimateKind::Oracle;
  /// In StaticPrior mode, how many observations the analysis prior
  /// counts as when blending with measured service spans:
  /// estimate = (Prior * Weight + sum(observed)) / (Weight + count).
  double PriorObservationWeight = 1.0;
  /// Scripted capacity events (failure injection / elasticity),
  /// applied in time order (ties in plan order) before the arrivals of
  /// the same instant. A device whose FIRST scripted event is Up
  /// starts outside the serving set.
  std::vector<FleetEvent> FleetPlan;
  /// How many times a request may be displaced by failures before it
  /// is declared lost.
  uint32_t MaxRetries = 3;
  MigrationOptions Migration;
};

/// The workload of one cluster replay: exactly one of an open-loop
/// timed trace or a closed-loop script.
struct ClusterWorkload {
  const std::vector<workloads::TimedRequest> *Trace = nullptr;
  const workloads::ClosedLoopScript *Script = nullptr;

  static ClusterWorkload
  openLoop(const std::vector<workloads::TimedRequest> &T) {
    ClusterWorkload W;
    W.Trace = &T;
    return W;
  }

  static ClusterWorkload closedLoop(const workloads::ClosedLoopScript &S) {
    ClusterWorkload W;
    W.Script = &S;
    return W;
  }
};

/// Replays \p Workload across \p Fleet under \p Policy — THE cluster
/// entry point; open vs closed loop is a property of the workload, not
/// a second function. Unlike runStream, AdaptiveSloWeights is honoured
/// here too: the cluster has a genuine cross-device control plane.
ClusterOutcome runClusterReplay(cluster::Fleet &Fleet,
                                cluster::PlacementPolicy &Policy,
                                const ClusterWorkload &Workload,
                                const ClusterOptions &Opts = {});

/// Compatibility wrapper: open-loop \p Trace via runClusterReplay.
ClusterOutcome runCluster(cluster::Fleet &Fleet,
                          cluster::PlacementPolicy &Policy,
                          const std::vector<workloads::TimedRequest> &Trace,
                          const ClusterOptions &Opts = {});

/// Compatibility wrapper: closed-loop \p Script via runClusterReplay
/// (each tenant's next scripted request is issued on a completion plus
/// think time, exactly as in runClosedLoop, and placed at arrival).
ClusterOutcome
runClusterClosedLoop(cluster::Fleet &Fleet,
                     cluster::PlacementPolicy &Policy,
                     const workloads::ClosedLoopScript &Script,
                     const ClusterOptions &Opts = {});

} // namespace harness
} // namespace accel

#endif // ACCEL_CLUSTER_CLUSTERHARNESS_H
