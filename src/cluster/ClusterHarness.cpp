//===- cluster/ClusterHarness.cpp - Fleet-wide serving loop ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterHarness.h"

#include "accelos/Scheduler.h"
#include "harness/ReplayDetail.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace accel;
using namespace accel::harness;
using detail::ClosedLoopDriver;
using detail::LiveRequest;
using detail::ReplayState;

namespace {

/// One fleet member's live serving state.
struct DeviceState {
  std::optional<sim::EngineSession> Session;
  std::optional<accelos::ContinuousScheduler> Sched;
  /// An admission pass is pending (an arrival or completion changed
  /// this device's queue or residual capacity). Starts true, exactly
  /// like the single-device loop's initial pass.
  bool NeedAdmit = true;
  /// Thread-cycles placed on this device and not yet completed.
  double OutstandingCost = 0;
  size_t OutstandingRequests = 0;
  double BusyTime = 0;
  size_t PlacedRequests = 0;
};

/// The merged-clock replay over N per-device continuous schedulers:
/// the single-device continuous loop of runStream, generalized. Each
/// iteration (1) places and submits every arrival due at the current
/// merged time, (2) runs the pending admission passes device by
/// device, (3) advances every session to the earliest next event
/// anywhere in the fleet, reacting to completions. With N == 1 the
/// event order is exactly runStream's, so the output is bit-identical
/// (regression-tested).
class ClusterReplay {
public:
  ClusterReplay(cluster::Fleet &Fleet, cluster::PlacementPolicy &Policy,
                const ClusterOptions &Opts, ClusterOutcome &Out)
      : RS(Fleet.driver(0), Opts.Stream, Opts.Mode, Out.Stream),
        Fleet(Fleet), Policy(Policy), Opts(Opts), Out(Out) {
    assert(!Fleet.empty() && "cluster replay over an empty fleet");
    Policy.reset();
    Devices.resize(Fleet.size());
    for (size_t D = 0; D != Fleet.size(); ++D) {
      Devices[D].Session.emplace(Fleet.device(D));
      Devices[D].Sched.emplace(
          detail::capsFor(Fleet.device(D), Opts.Stream),
          detail::solverOptsFor(Opts.Stream),
          detail::schedOptsFor(Opts.Stream));
    }
    if (Opts.Stream.AdaptiveSloWeights) {
      assert(Opts.Stream.SloControlInterval > 0 &&
             "adaptive SLO weights need a positive control interval");
      Ctl.emplace(Opts.Stream.SloTargets, Opts.Stream.Weights,
                  Opts.Stream.SloControlInterval, Opts.Stream.SloTuning);
      RS.adoptController(&*Ctl);
    }
  }

  ReplayState RS;
  ClosedLoopDriver *Loop = nullptr; ///< Set for closed-loop replays.
  size_t Completed = 0;

  /// Decides the device for an arrival (sticky affinity first, then
  /// the policy over a load snapshot). \p KernelIdx sizes the
  /// per-device solo-duration estimate.
  size_t decide(int Tenant, size_t KernelIdx, double ArrivalTime) {
    if (Opts.StickyTenantAffinity) {
      auto It = Affinity.find(Tenant);
      if (It != Affinity.end())
        return It->second;
    }
    std::vector<cluster::DeviceLoad> Loads(Devices.size());
    for (size_t D = 0; D != Devices.size(); ++D) {
      Loads[D].OutstandingCost = Devices[D].OutstandingCost;
      Loads[D].OutstandingRequests = Devices[D].OutstandingRequests;
      Loads[D].ServiceRate = Fleet.serviceRate(D);
      Loads[D].SoloDuration = soloEstimate(D, KernelIdx);
    }
    cluster::PlacementRequest Req;
    Req.Tenant = Tenant;
    Req.KernelIdx = KernelIdx;
    Req.ArrivalTime = ArrivalTime;
    size_t D = Policy.place(Req, Loads);
    assert(D < Devices.size() && "policy placed outside the fleet");
    if (Opts.StickyTenantAffinity)
      Affinity.emplace(Tenant, D);
    return D;
  }

  /// Binds materialized request \p Idx to device \p D and queues it.
  void commit(size_t Idx, size_t D) {
    Out.Placement.push_back(D);
    DeviceOf.push_back(D);
    double Cost = RS.remainingCost(Idx);
    Accounted.push_back(Cost);
    Devices[D].OutstandingCost += Cost;
    ++Devices[D].OutstandingRequests;
    ++Devices[D].PlacedRequests;
    submit(Idx, D);
    Devices[D].NeedAdmit = true;
  }

  /// Runs the pending admission passes of every device, in fleet
  /// order — the exact single-device pass (detail::admissionPass), so
  /// the N == 1 degeneration stays bit-identical by construction.
  void admitAll(double T) {
    for (size_t D = 0; D != Devices.size(); ++D) {
      DeviceState &DS = Devices[D];
      while (DS.NeedAdmit)
        DS.NeedAdmit = detail::admissionPass(
            *DS.Sched, *DS.Session, RS, T,
            [&](size_t Idx) { retire(Idx, T); });
    }
  }

  /// The earliest pending event anywhere in the fleet, or negative
  /// when every session is idle.
  double nextFleetEvent() {
    double Next = -1;
    for (DeviceState &DS : Devices) {
      double E = DS.Session->nextEventTime();
      if (E >= 0 && (Next < 0 || E < Next))
        Next = E;
    }
    return Next;
  }

  /// Advances every session from merged time \p T to \p Target,
  /// reacting to completions; accounts per-device busy time.
  void advanceAll(double T, double Target) {
    double NewNow = std::max(Target, T);
    for (size_t D = 0; D != Devices.size(); ++D) {
      DeviceState &DS = Devices[D];
      if (DS.Session->inFlight() > 0)
        DS.BusyTime += NewNow - T;
      for (const sim::KernelExecResult &K :
           DS.Session->advanceTo(NewNow)) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = RS.Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime;
        }
        LR.End = K.EndTime;
        DS.Sched->complete(Idx);
        DS.NeedAdmit = true;
        settle(Idx, D);
        if (RS.remainingGroups(Idx) != 0) {
          // Sliced: requeue the remainder on the SAME device; it
          // re-enters that device's fair-share solve at this event.
          submit(Idx, D);
        } else {
          Out.Stream.Requests[Idx].StartTime = LR.Start;
          Out.Stream.Requests[Idx].EndTime = LR.End;
          finish(Idx, LR.End);
        }
      }
    }
    if (Ctl && Ctl->maybeUpdate(NewNow))
      ++Out.Stream.WeightUpdates;
  }

  /// Folds per-device scheduler stats and utilization into the outcome.
  void finalize() {
    RS.finalize();
    Out.Devices.resize(Devices.size());
    for (size_t D = 0; D != Devices.size(); ++D) {
      ClusterDeviceOutcome &DO = Out.Devices[D];
      DO.Name = Fleet.device(D).Name;
      DO.Requests = Devices[D].PlacedRequests;
      DO.BusyTime = Devices[D].BusyTime;
      DO.Utilization = Out.Stream.Makespan > 0
                           ? Devices[D].BusyTime / Out.Stream.Makespan
                           : 0;
      DO.Rounds = Devices[D].Sched->stats().RoundsPlanned;
      DO.Deferrals = Devices[D].Sched->stats().Deferrals;
      Out.Stream.Rounds += DO.Rounds;
      Out.Stream.Deferrals += DO.Deferrals;
    }
  }

private:
  void submit(size_t Idx, size_t D) {
    detail::submitRequest(*Devices[D].Sched, RS, Idx);
  }

  /// The solo-duration estimate the placement policy sees for kernel
  /// \p KernelIdx on device \p D, per ClusterOptions::SoloEstimate.
  double soloEstimate(size_t D, size_t KernelIdx) {
    switch (Opts.SoloEstimate) {
    case SoloEstimateKind::Oracle:
      return Fleet.driver(D).isolatedDuration(SchedulerKind::Baseline,
                                              KernelIdx);
    case SoloEstimateKind::Blind:
      return Fleet.meanSoloDuration(D);
    case SoloEstimateKind::StaticPrior: {
      double Prior = Fleet.driver(D).priorSoloDuration(KernelIdx);
      auto It = Observed.find({D, KernelIdx});
      if (It == Observed.end())
        return Prior;
      const SoloObservation &O = It->second;
      return (Prior * Opts.PriorObservationWeight + O.Sum) /
             (Opts.PriorObservationWeight + static_cast<double>(O.Count));
    }
    }
    accel_unreachable("bad solo estimate kind");
  }

  /// Re-measures request \p Idx's remaining cost after a completion
  /// event and returns the drained work to the device's outstanding
  /// tally (the placement policies' residual-work term).
  void settle(size_t Idx, size_t D) {
    double Remaining = RS.remainingCost(Idx);
    Devices[D].OutstandingCost -= Accounted[Idx] - Remaining;
    Accounted[Idx] = Remaining;
  }

  /// Retires a zero-work request at the admission boundary. Matching
  /// the single-device loops, the SLO controller does NOT observe it
  /// (it never occupied the device), so the N == 1 adaptive replay
  /// stays equivalent to runClosedLoop in this corner too; the
  /// tenant's think clock still starts here.
  void retire(size_t Idx, double T) {
    size_t D = DeviceOf[Idx];
    Devices[D].OutstandingCost -= Accounted[Idx];
    Accounted[Idx] = 0;
    --Devices[D].OutstandingRequests;
    ++Completed;
    if (Loop)
      Loop->issue(Loop->tenantPos(Idx), T);
  }

  /// Common full-completion bookkeeping: the SLO controller observes
  /// the aggregate queueing time, and a closed-loop tenant's think
  /// clock starts from this completion.
  void finish(size_t Idx, double At) {
    --Devices[DeviceOf[Idx]].OutstandingRequests;
    ++Completed;
    if (Opts.SoloEstimate == SoloEstimateKind::StaticPrior) {
      // The measured service span (first slice start to last slice
      // end) is the online observation the analysis prior blends into.
      // It over-reads under contention, which is the safe direction: a
      // busy device looks slower, never faster.
      const StreamRequestResult &RR = Out.Stream.Requests[Idx];
      SoloObservation &O =
          Observed[{DeviceOf[Idx], RS.Trace[Idx].KernelIdx}];
      O.Sum += RR.EndTime - RR.StartTime;
      ++O.Count;
    }
    if (Ctl)
      Ctl->observe(RS.Trace[Idx].Tenant,
                   Out.Stream.Requests[Idx].queueingExcess());
    if (Loop)
      Loop->issue(Loop->tenantPos(Idx), At);
  }

  cluster::Fleet &Fleet;
  cluster::PlacementPolicy &Policy;
  const ClusterOptions &Opts;
  ClusterOutcome &Out;
  std::vector<DeviceState> Devices;
  std::optional<accelos::SloWeightController> Ctl;
  std::map<int, size_t> Affinity; ///< Tenant -> device (sticky mode).
  std::vector<size_t> DeviceOf;   ///< Parallel to RS.Trace.
  std::vector<double> Accounted;  ///< Remaining cost counted per request.
  /// Measured service spans per (device, kernel), for StaticPrior
  /// blending.
  struct SoloObservation {
    double Sum = 0;
    size_t Count = 0;
  };
  std::map<std::pair<size_t, size_t>, SoloObservation> Observed;
};

/// Keeps the Devices-indexed-by-fleet-position contract on the
/// degenerate no-requests paths: every device reports, just idle.
void fillIdleDevices(cluster::Fleet &Fleet, ClusterOutcome &Out) {
  Out.Devices.resize(Fleet.size());
  for (size_t D = 0; D != Fleet.size(); ++D)
    Out.Devices[D].Name = Fleet.device(D).Name;
}

} // namespace

ClusterOutcome harness::runCluster(
    cluster::Fleet &Fleet, cluster::PlacementPolicy &Policy,
    const std::vector<workloads::TimedRequest> &Trace,
    const ClusterOptions &Opts) {
  ClusterOutcome Out;
  Out.Stream.FinalWeights = Opts.Stream.Weights;
  if (Trace.empty() || Fleet.empty()) {
    fillIdleDevices(Fleet, Out);
    return Out;
  }

  ClusterReplay CR(Fleet, Policy, Opts, Out);
  size_t NextArrival = 0;
  double Now = 0;

  while (CR.Completed != Trace.size()) {
    double T = Now;
    while (NextArrival != Trace.size() &&
           Trace[NextArrival].ArrivalTime <= T) {
      const workloads::TimedRequest &R = Trace[NextArrival++];
      size_t D = CR.decide(R.Tenant, R.KernelIdx, R.ArrivalTime);
      CR.commit(CR.RS.append(R, Fleet.driver(D)), D);
    }

    CR.admitAll(T);

    double NextEvent = CR.nextFleetEvent();
    double NextTrace = NextArrival != Trace.size()
                           ? Trace[NextArrival].ArrivalTime
                           : -1;
    assert((NextEvent >= 0 || NextTrace >= 0) && "requests lost");
    double Target = NextEvent;
    if (Target < 0 || (NextTrace >= 0 && NextTrace < Target))
      Target = NextTrace;
    CR.advanceAll(T, Target);
    Now = std::max(Target, T);
  }

  CR.finalize();
  return Out;
}

ClusterOutcome harness::runClusterClosedLoop(
    cluster::Fleet &Fleet, cluster::PlacementPolicy &Policy,
    const workloads::ClosedLoopScript &Script,
    const ClusterOptions &Opts) {
  ClusterOutcome Out;
  Out.Stream.FinalWeights = Opts.Stream.Weights;
  const size_t Total = Script.totalRequests();
  if (Total == 0 || Fleet.empty()) {
    fillIdleDevices(Fleet, Out);
    return Out;
  }

  ClusterReplay CR(Fleet, Policy, Opts, Out);
  ClosedLoopDriver Loop(Script);
  CR.Loop = &Loop;
  double Now = 0;

  while (CR.Completed != Total) {
    double T = Now;
    while (!Loop.empty() && Loop.nextTime() <= T) {
      detail::IssuedRequest R = Loop.pop();
      size_t D = CR.decide(Loop.tenantOf(R), R.KernelIdx, R.Time);
      CR.commit(Loop.materializeOn(CR.RS, R, Fleet.driver(D)), D);
    }

    CR.admitAll(T);

    double NextEvent = CR.nextFleetEvent();
    double NextIssue = Loop.empty() ? -1 : Loop.nextTime();
    assert((NextEvent >= 0 || NextIssue >= 0) && "requests lost");
    double Target = NextEvent;
    if (Target < 0 || (NextIssue >= 0 && NextIssue < Target))
      Target = NextIssue;
    CR.advanceAll(T, Target);
    Now = std::max(Target, T);
  }

  assert(CR.RS.Trace.size() == Total && "script not fully replayed");
  CR.finalize();
  return Out;
}
