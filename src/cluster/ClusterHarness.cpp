//===- cluster/ClusterHarness.cpp - Fleet-wide serving loop ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterHarness.h"

#include "accelos/Scheduler.h"
#include "harness/ReplayDetail.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace accel;
using namespace accel::harness;
using detail::ClosedLoopDriver;
using detail::LiveRequest;
using detail::ReplayState;

namespace {

/// Sentinel for "request not attached to any fault".
constexpr size_t NoFault = static_cast<size_t>(-1);

/// One fleet member's live serving state. Outstanding work lives in
/// the policy's load view (PlacementPolicy::loads()) — the lifecycle
/// notifications keep it current, and the replay reads it back for
/// migration decisions instead of keeping a second tally.
struct DeviceState {
  std::optional<sim::EngineSession> Session;
  std::optional<accelos::ContinuousScheduler> Sched;
  /// An admission pass is pending (an arrival or completion changed
  /// this device's queue or residual capacity). Starts true, exactly
  /// like the single-device loop's initial pass.
  bool NeedAdmit = true;
  /// In the serving set: placements, admission, and migration targets
  /// all require Alive. Mirrors the policy view's DeviceLoad::Alive.
  bool Alive = true;
  double BusyTime = 0;
  size_t PlacedRequests = 0;
};

/// The merged-clock replay over N per-device continuous schedulers:
/// the single-device continuous loop of runStream, generalized. Each
/// iteration (1) applies scripted fleet-capacity events due at the
/// current merged time, (2) places and submits every arrival due, (3)
/// runs the pending admission passes device by device, (4) advances
/// every session to the earliest next event anywhere in the fleet,
/// reacting to completions (and, at those quantum-slice boundaries,
/// deciding migrations). With N == 1 and an empty fleet plan the event
/// order is exactly runStream's, so the output is bit-identical
/// (regression-tested).
class ClusterReplay {
public:
  ClusterReplay(cluster::Fleet &Fleet, cluster::PlacementPolicy &Policy,
                const ClusterOptions &Opts, ClusterOutcome &Out)
      : RS(Fleet.driver(0), Opts.Stream, Opts.Mode, Out.Stream),
        Fleet(Fleet), Policy(Policy), Opts(Opts), Out(Out) {
    assert(!Fleet.empty() && "cluster replay over an empty fleet");
    Plan = Opts.FleetPlan;
    std::stable_sort(Plan.begin(), Plan.end(),
                     [](const FleetEvent &A, const FleetEvent &B) {
                       return A.Time < B.Time;
                     });
    // A device whose first scripted event is Up joins the fleet later
    // (elastic scale-up): it starts outside the serving set.
    std::vector<bool> Alive(Fleet.size(), true);
    std::vector<bool> Seen(Fleet.size(), false);
    for (const FleetEvent &E : Plan) {
      assert(E.Device < Fleet.size() &&
             "fleet plan names an unknown device");
      if (!Seen[E.Device]) {
        Seen[E.Device] = true;
        if (E.What == FleetEvent::Kind::Up)
          Alive[E.Device] = false;
      }
    }
    Devices.resize(Fleet.size());
    std::vector<double> Rates(Fleet.size());
    for (size_t D = 0; D != Fleet.size(); ++D) {
      Devices[D].Alive = Alive[D];
      Devices[D].Session.emplace(Fleet.device(D));
      Devices[D].Sched.emplace(
          detail::capsFor(Fleet.device(D), Opts.Stream),
          detail::solverOptsFor(Opts.Stream),
          detail::schedOptsFor(Opts.Stream));
      Rates[D] = Fleet.serviceRate(D);
    }
    Policy.attach(std::move(Rates), Alive);
    if (Opts.Stream.AdaptiveSloWeights) {
      assert(Opts.Stream.SloControlInterval > 0 &&
             "adaptive SLO weights need a positive control interval");
      Ctl.emplace(Opts.Stream.SloTargets, Opts.Stream.Weights,
                  Opts.Stream.SloControlInterval, Opts.Stream.SloTuning);
      RS.adoptController(&*Ctl);
    }
  }

  ReplayState RS;
  ClosedLoopDriver *Loop = nullptr; ///< Set for closed-loop replays.
  size_t Completed = 0;

  bool anyAlive() const {
    for (const DeviceState &DS : Devices)
      if (DS.Alive)
        return true;
    return false;
  }

  /// Will any device (re)join later? While true, requests that cannot
  /// be placed wait parked instead of being lost.
  bool pendingUp() const {
    for (size_t P = PlanCursor; P != Plan.size(); ++P)
      if (Plan[P].What == FleetEvent::Kind::Up)
        return true;
    return false;
  }

  double nextPlanTime() const {
    return PlanCursor != Plan.size() ? Plan[PlanCursor].Time : -1;
  }

  /// Applies every scripted fleet event due at merged time \p T, in
  /// plan order — before the arrivals of the same instant, so a
  /// request arriving the moment a device dies never lands on it.
  void applyPlan(double T) {
    while (PlanCursor != Plan.size() && Plan[PlanCursor].Time <= T) {
      const FleetEvent &E = Plan[PlanCursor++];
      if (E.What == FleetEvent::Kind::Down)
        applyDown(E.Device, T);
      else
        applyUp(E.Device, T);
    }
  }

  /// One open-loop arrival: place it, or park/lose it when the whole
  /// fleet is out of service.
  void arriveOpen(const workloads::TimedRequest &R, double T) {
    if (anyAlive()) {
      size_t D = decide(R.Tenant, R.KernelIdx, R.ArrivalTime);
      size_t Idx = RS.append(R, Fleet.driver(D));
      registerRequest(Idx);
      commit(Idx, D);
      return;
    }
    // Materialized against device 0's view only so the request has a
    // shape; rehome() rebinds it before it ever executes.
    size_t Idx = RS.append(R, Fleet.driver(0));
    registerRequest(Idx);
    if (pendingUp())
      Parked.push_back(Idx);
    else
      lose(Idx, std::max(T, R.ArrivalTime));
  }

  /// One closed-loop issue reaching its arrival instant.
  void arriveClosed(ClosedLoopDriver &L, double T) {
    detail::IssuedRequest R = L.pop();
    if (anyAlive()) {
      size_t D = decide(L.tenantOf(R), R.KernelIdx, R.Time);
      size_t Idx = L.materializeOn(RS, R, Fleet.driver(D));
      registerRequest(Idx);
      commit(Idx, D);
      return;
    }
    size_t Idx = L.materializeOn(RS, R, Fleet.driver(0));
    registerRequest(Idx);
    if (pendingUp())
      Parked.push_back(Idx);
    else
      lose(Idx, std::max(T, R.Time));
  }

  /// Runs the pending admission passes of every in-service device, in
  /// fleet order — the exact single-device pass
  /// (detail::admissionPass), so the N == 1 degeneration stays
  /// bit-identical by construction.
  void admitAll(double T) {
    for (size_t D = 0; D != Devices.size(); ++D) {
      DeviceState &DS = Devices[D];
      if (!DS.Alive)
        continue;
      while (DS.NeedAdmit)
        DS.NeedAdmit = detail::admissionPass(
            *DS.Sched, *DS.Session, RS, T,
            [&](size_t Idx) { retire(Idx, T); });
    }
  }

  /// The earliest pending event anywhere in the fleet, or negative
  /// when every session is idle. (A dead device's session is idle by
  /// construction: cancelAll emptied it.)
  double nextFleetEvent() {
    double Next = -1;
    for (DeviceState &DS : Devices) {
      double E = DS.Session->nextEventTime();
      if (E >= 0 && (Next < 0 || E < Next))
        Next = E;
    }
    return Next;
  }

  /// Advances every session from merged time \p T to \p Target,
  /// reacting to completions; accounts per-device busy time. Dead
  /// sessions advance too (empty, instantaneous) so their clocks stay
  /// on the merged time for a later rejoin.
  void advanceAll(double T, double Target) {
    double NewNow = std::max(Target, T);
    for (size_t D = 0; D != Devices.size(); ++D) {
      DeviceState &DS = Devices[D];
      if (DS.Session->inFlight() > 0)
        DS.BusyTime += NewNow - T;
      for (const sim::KernelExecResult &K :
           DS.Session->advanceTo(NewNow)) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = RS.Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime;
        }
        LR.End = K.EndTime;
        DS.Sched->complete(Idx);
        DS.NeedAdmit = true;
        // Settle the drained work into the policy's load view and the
        // conservation ledger.
        double Remaining = RS.remainingCost(Idx);
        bool Finished = RS.remainingGroups(Idx) == 0;
        Policy.completeOn(D, Accounted[Idx] - Remaining, Finished);
        Accounted[Idx] = Remaining;
        Out.ExecutedWGs += LR.Cursor - CountedWGs[Idx];
        CountedWGs[Idx] = LR.Cursor;
        if (!Finished) {
          // Sliced: a quantum boundary. Either the policy steals the
          // remainder for an underloaded device, or it requeues on the
          // SAME device and re-enters its fair-share solve here.
          if (!maybeMigrate(Idx, D, K.EndTime))
            submit(Idx, D);
        } else {
          Out.Stream.Requests[Idx].StartTime = LR.Start;
          Out.Stream.Requests[Idx].EndTime = LR.End;
          FinishedFlag[Idx] = true;
          finish(Idx, LR.End);
        }
      }
    }
    if (Ctl && Ctl->maybeUpdate(NewNow))
      ++Out.Stream.WeightUpdates;
  }

  /// Folds per-device scheduler stats and utilization into the outcome.
  void finalize() {
    RS.finalize();
    Out.Devices.resize(Devices.size());
    for (size_t D = 0; D != Devices.size(); ++D) {
      ClusterDeviceOutcome &DO = Out.Devices[D];
      DO.Name = Fleet.device(D).Name;
      DO.Requests = Devices[D].PlacedRequests;
      DO.BusyTime = Devices[D].BusyTime;
      DO.Utilization = Out.Stream.Makespan > 0
                           ? Devices[D].BusyTime / Out.Stream.Makespan
                           : 0;
      DO.Rounds = Devices[D].Sched->stats().RoundsPlanned;
      DO.Deferrals = Devices[D].Sched->stats().Deferrals;
      Out.Stream.Rounds += DO.Rounds;
      Out.Stream.Deferrals += DO.Deferrals;
    }
  }

private:
  void submit(size_t Idx, size_t D) {
    detail::submitRequest(*Devices[D].Sched, RS, Idx);
  }

  /// Grows every per-request bookkeeping vector for newly materialized
  /// request \p Idx and counts its work into the conservation ledger.
  void registerRequest(size_t Idx) {
    assert(Idx == DeviceOf.size() && "requests register in trace order");
    Out.Placement.push_back(Fleet.size());
    Out.Retries.push_back(0);
    DeviceOf.push_back(Fleet.size());
    PrevDeviceOf.push_back(Fleet.size());
    Accounted.push_back(0);
    FinishedFlag.push_back(false);
    CountedWGs.push_back(0);
    MigrationsOf.push_back(0);
    PendingFaultOf.push_back(NoFault);
    Out.RequestedWGs += RS.remainingGroups(Idx);
  }

  /// Decides the device for a request (sticky affinity first — while
  /// the tenant's home is in service — then the policy over its load
  /// view). \p KernelIdx sizes the per-device solo-duration estimates.
  size_t decide(int Tenant, size_t KernelIdx, double ArrivalTime) {
    if (Opts.StickyTenantAffinity) {
      auto It = Affinity.find(Tenant);
      if (It != Affinity.end() && Devices[It->second].Alive)
        return It->second;
    }
    fillSolo(KernelIdx);
    cluster::PlacementRequest Req;
    Req.Tenant = Tenant;
    Req.KernelIdx = KernelIdx;
    Req.ArrivalTime = ArrivalTime;
    Req.SoloDurations = &SoloBuf;
    size_t D = Policy.place(Req);
    assert(D < Devices.size() && "policy placed outside the fleet");
    assert(Devices[D].Alive &&
           "policy placed on an out-of-service device");
    if (Opts.StickyTenantAffinity)
      Affinity[Tenant] = D;
    return D;
  }

  /// First binding of materialized request \p Idx to device \p D.
  void commit(size_t Idx, size_t D) {
    Out.Placement[Idx] = D;
    DeviceOf[Idx] = D;
    double Cost = RS.remainingCost(Idx);
    Accounted[Idx] = Cost;
    Policy.admitTo(D, Cost);
    ++Devices[D].PlacedRequests;
    submit(Idx, D);
    Devices[D].NeedAdmit = true;
  }

  /// Re-binds an unbound request (failover target, unparked, or
  /// migrating) to device \p To: its remaining virtual range rehomes
  /// onto \p To's compiled view and re-enters that device's admission.
  void rebind(size_t Idx, size_t From, size_t To, double T,
              bool Failover) {
    RS.rehome(Idx, Fleet.driver(To));
    DeviceOf[Idx] = To;
    Out.Placement[Idx] = To;
    double Cost = RS.remainingCost(Idx);
    Accounted[Idx] = Cost;
    Policy.admitTo(To, Cost);
    ClusterMigrationRecord MR;
    MR.RequestIdx = Idx;
    MR.From = From;
    MR.To = To;
    MR.Time = T;
    MR.RemainingWGs = RS.remainingGroups(Idx);
    MR.Failover = Failover;
    Out.Migrations.push_back(MR);
    submit(Idx, To);
    Devices[To].NeedAdmit = true;
  }

  /// Fail-stop loss of device \p D at merged time \p T: cancel its
  /// session (rolling every in-flight slice back into its request's
  /// remaining range), release the scheduler, and displace every bound
  /// request — re-placed under the retry budget, parked if the whole
  /// fleet is dark but capacity will return, lost otherwise.
  void applyDown(size_t D, double T) {
    DeviceState &DS = Devices[D];
    if (!DS.Alive)
      return; // Double-down in a plan: no effect.
    DS.Alive = false;
    Policy.deviceDown(D);
    size_t FaultIdx = Out.Faults.size();
    ClusterFaultRecord FR;
    FR.Device = D;
    FR.DownTime = T;
    Out.Faults.push_back(FR);
    FaultLive.push_back(0);
    // The partial slice work is discarded with the device (fail-stop);
    // each cancelled launch releases its scheduler flight and returns
    // its virtual window to the request's remaining range.
    for (sim::KernelLaunchDesc &L : DS.Session->cancelAll()) {
      size_t Idx = static_cast<size_t>(L.AppId);
      DS.Sched->complete(Idx);
      RS.rollbackSlice(Idx, L.ViewBegin);
    }
    DS.Sched->clear(); // Queued-but-unadmitted requests.
    DS.NeedAdmit = false;
    // Displace in request-index order: determinism over map order.
    for (size_t Idx = 0; Idx != DeviceOf.size(); ++Idx) {
      if (DeviceOf[Idx] != D || FinishedFlag[Idx])
        continue;
      Policy.withdrawFrom(D, Accounted[Idx]);
      Accounted[Idx] = 0;
      PrevDeviceOf[Idx] = D;
      DeviceOf[Idx] = Fleet.size();
      ++Out.Faults[FaultIdx].Displaced;
      attachFault(Idx, FaultIdx, T);
      if (++Out.Retries[Idx] > Opts.MaxRetries) {
        lose(Idx, T);
      } else if (anyAlive()) {
        size_t To = decide(RS.Trace[Idx].Tenant,
                           RS.Trace[Idx].KernelIdx, T);
        rebind(Idx, D, To, T, /*Failover=*/true);
      } else if (pendingUp()) {
        Parked.push_back(Idx);
      } else {
        lose(Idx, T);
      }
    }
  }

  /// Device \p D (re)joins the fleet empty at merged time \p T; parked
  /// requests re-enter placement in park order (no retry charge — a
  /// rejoin is recovery, not another failure).
  void applyUp(size_t D, double T) {
    DeviceState &DS = Devices[D];
    if (DS.Alive)
      return; // Double-up in a plan: no effect.
    DS.Alive = true;
    Policy.deviceUp(D);
    DS.NeedAdmit = true;
    if (Parked.empty())
      return;
    std::vector<size_t> Waiting;
    Waiting.swap(Parked);
    for (size_t Idx : Waiting) {
      const workloads::TimedRequest &R = RS.Trace[Idx];
      size_t To = decide(R.Tenant, R.KernelIdx, T);
      if (Out.Placement[Idx] == Fleet.size()) {
        // Arrived during a full outage and was never placed: this is
        // its first placement, not a migration.
        RS.rehome(Idx, Fleet.driver(To));
        commit(Idx, To);
      } else {
        rebind(Idx, PrevDeviceOf[Idx], To, T, /*Failover=*/true);
      }
    }
  }

  /// Voluntary work-stealing at a quantum boundary: when \p D's
  /// normalized backlog has diverged from the mean of the other
  /// in-service devices, ask the policy where request \p Idx's
  /// remaining range should run. \returns true when the request moved
  /// (it was submitted to the target).
  bool maybeMigrate(size_t Idx, size_t D, double At) {
    const MigrationOptions &M = Opts.Migration;
    if (!M.Enabled || MigrationsOf[Idx] >= M.MaxPerRequest)
      return false;
    const std::vector<cluster::DeviceLoad> &Loads = Policy.loads();
    double OthersSum = 0;
    size_t Others = 0;
    for (size_t I = 0; I != Loads.size(); ++I) {
      if (I == D || !Loads[I].Alive)
        continue;
      OthersSum += normBacklog(Loads[I]);
      ++Others;
    }
    if (Others == 0)
      return false;
    if (normBacklog(Loads[D]) <=
        M.DivergenceFactor * (OthersSum / static_cast<double>(Others)))
      return false;
    const workloads::TimedRequest &R = RS.Trace[Idx];
    // Price only what is left: the solo estimates scale by the
    // unexecuted fraction of the virtual range.
    size_t RemainingGroups = RS.remainingGroups(Idx);
    double Frac = static_cast<double>(RemainingGroups) /
                  static_cast<double>(RemainingGroups + RS.Live[Idx].Cursor);
    fillSolo(R.KernelIdx);
    for (double &S : SoloBuf)
      S *= Frac;
    cluster::PlacementRequest Req;
    Req.Tenant = R.Tenant;
    Req.KernelIdx = R.KernelIdx;
    Req.ArrivalTime = At;
    Req.SoloDurations = &SoloBuf;
    std::optional<size_t> To = Policy.suggestMigration(Req, D);
    if (!To || *To == D)
      return false;
    assert(*To < Devices.size() && Devices[*To].Alive &&
           "policy suggested an out-of-service device");
    Policy.withdrawFrom(D, Accounted[Idx]);
    Accounted[Idx] = 0;
    PrevDeviceOf[Idx] = D;
    ++MigrationsOf[Idx];
    // The tenant's home moves with its migrated request.
    if (Opts.StickyTenantAffinity)
      Affinity[R.Tenant] = *To;
    rebind(Idx, D, *To, At, /*Failover=*/false);
    return true;
  }

  static double normBacklog(const cluster::DeviceLoad &L) {
    double Rate = L.ServiceRate > 0 ? L.ServiceRate : 1.0;
    return L.OutstandingCost / Rate;
  }

  /// Fills the reusable per-device solo-estimate buffer for one
  /// decision about \p KernelIdx.
  void fillSolo(size_t KernelIdx) {
    SoloBuf.resize(Devices.size());
    for (size_t D = 0; D != Devices.size(); ++D)
      SoloBuf[D] = soloEstimate(D, KernelIdx);
  }

  /// The solo-duration estimate the placement policy sees for kernel
  /// \p KernelIdx on device \p D, per ClusterOptions::SoloEstimate.
  double soloEstimate(size_t D, size_t KernelIdx) {
    switch (Opts.SoloEstimate) {
    case SoloEstimateKind::Oracle:
      return Fleet.driver(D).isolatedDuration(SchedulerKind::Baseline,
                                              KernelIdx);
    case SoloEstimateKind::Blind:
      return Fleet.meanSoloDuration(D);
    case SoloEstimateKind::StaticPrior: {
      double Prior = Fleet.driver(D).priorSoloDuration(KernelIdx);
      auto It = Observed.find({D, KernelIdx});
      if (It == Observed.end())
        return Prior;
      const SoloObservation &O = It->second;
      return (Prior * Opts.PriorObservationWeight + O.Sum) /
             (Opts.PriorObservationWeight + static_cast<double>(O.Count));
    }
    }
    accel_unreachable("bad solo estimate kind");
  }

  /// Hands request \p Idx's settlement to fault \p F's recovery
  /// tracking (releasing any earlier fault still waiting on it).
  void attachFault(size_t Idx, size_t F, double At) {
    detachFault(Idx, At);
    PendingFaultOf[Idx] = F;
    ++FaultLive[F];
  }

  /// Request \p Idx settled (finished, lost, or re-displaced): when it
  /// was the last one its fault displaced, that fault has recovered.
  void detachFault(size_t Idx, double At) {
    size_t F = PendingFaultOf[Idx];
    if (F == NoFault)
      return;
    PendingFaultOf[Idx] = NoFault;
    assert(FaultLive[F] > 0 && "fault live-count underflow");
    if (--FaultLive[F] == 0)
      Out.Faults[F].RecoveryTime = At - Out.Faults[F].DownTime;
  }

  /// Declares request \p Idx lost at \p At: it completes empty at the
  /// loss instant and is recorded — never silently dropped. The SLO
  /// controller does not observe it (there is no service to grade),
  /// but a closed-loop tenant's think clock still advances, so the
  /// script drains.
  void lose(size_t Idx, double At) {
    FinishedFlag[Idx] = true;
    Out.LostRequests.push_back(Idx);
    if (PendingFaultOf[Idx] != NoFault)
      ++Out.Faults[PendingFaultOf[Idx]].Lost;
    RS.completeZeroWork(Idx, At);
    detachFault(Idx, At);
    ++Completed;
    if (Loop)
      Loop->issue(Loop->tenantPos(Idx), At);
  }

  /// Retires a zero-work request at the admission boundary. Matching
  /// the single-device loops, the SLO controller does NOT observe it
  /// (it never occupied the device), so the N == 1 adaptive replay
  /// stays equivalent to runClosedLoop in this corner too; the
  /// tenant's think clock still starts here.
  void retire(size_t Idx, double T) {
    Policy.completeOn(DeviceOf[Idx], Accounted[Idx], true);
    Accounted[Idx] = 0;
    FinishedFlag[Idx] = true;
    detachFault(Idx, T);
    ++Completed;
    if (Loop)
      Loop->issue(Loop->tenantPos(Idx), T);
  }

  /// Common full-completion bookkeeping: the SLO controller observes
  /// the aggregate queueing time, and a closed-loop tenant's think
  /// clock starts from this completion.
  void finish(size_t Idx, double At) {
    ++Completed;
    if (Opts.SoloEstimate == SoloEstimateKind::StaticPrior) {
      // The measured service span (first slice start to last slice
      // end) is the online observation the analysis prior blends into.
      // It over-reads under contention, which is the safe direction: a
      // busy device looks slower, never faster.
      const StreamRequestResult &RR = Out.Stream.Requests[Idx];
      SoloObservation &O =
          Observed[{DeviceOf[Idx], RS.Trace[Idx].KernelIdx}];
      O.Sum += RR.EndTime - RR.StartTime;
      ++O.Count;
    }
    detachFault(Idx, At);
    if (Ctl)
      Ctl->observe(RS.Trace[Idx].Tenant,
                   Out.Stream.Requests[Idx].queueingExcess());
    if (Loop)
      Loop->issue(Loop->tenantPos(Idx), At);
  }

  cluster::Fleet &Fleet;
  cluster::PlacementPolicy &Policy;
  const ClusterOptions &Opts;
  ClusterOutcome &Out;
  std::vector<DeviceState> Devices;
  std::optional<accelos::SloWeightController> Ctl;
  std::map<int, size_t> Affinity; ///< Tenant -> device (sticky mode).
  // Per-request bookkeeping, parallel to RS.Trace. DeviceOf is the
  // fleet size while a request is unbound (parked or lost-unplaced).
  std::vector<size_t> DeviceOf;
  std::vector<size_t> PrevDeviceOf; ///< Last binding before unbound.
  std::vector<double> Accounted; ///< Remaining cost counted per request.
  std::vector<char> FinishedFlag;
  std::vector<size_t> CountedWGs;  ///< Cursor already in ExecutedWGs.
  std::vector<uint32_t> MigrationsOf; ///< Voluntary-migration budget.
  std::vector<size_t> PendingFaultOf; ///< Fault awaiting this request.
  std::vector<size_t> Parked; ///< Unplaceable until a device comes up.
  std::vector<FleetEvent> Plan; ///< Time-sorted (stable) fault plan.
  size_t PlanCursor = 0;
  std::vector<size_t> FaultLive; ///< Unsettled displacements per fault.
  std::vector<double> SoloBuf;   ///< Reused per placement decision.
  /// Measured service spans per (device, kernel), for StaticPrior
  /// blending.
  struct SoloObservation {
    double Sum = 0;
    size_t Count = 0;
  };
  std::map<std::pair<size_t, size_t>, SoloObservation> Observed;
};

/// Keeps the Devices-indexed-by-fleet-position contract on the
/// degenerate no-requests paths: every device reports, just idle.
void fillIdleDevices(cluster::Fleet &Fleet, ClusterOutcome &Out) {
  Out.Devices.resize(Fleet.size());
  for (size_t D = 0; D != Fleet.size(); ++D)
    Out.Devices[D].Name = Fleet.device(D).Name;
}

} // namespace

ClusterOutcome harness::runClusterReplay(cluster::Fleet &Fleet,
                                         cluster::PlacementPolicy &Policy,
                                         const ClusterWorkload &Workload,
                                         const ClusterOptions &Opts) {
  assert((Workload.Trace != nullptr) != (Workload.Script != nullptr) &&
         "workload must be exactly one of open-loop or closed-loop");
  ClusterOutcome Out;
  Out.Stream.FinalWeights = Opts.Stream.Weights;
  const std::vector<workloads::TimedRequest> *Trace = Workload.Trace;
  const size_t Total =
      Trace ? Trace->size() : Workload.Script->totalRequests();
  if (Total == 0 || Fleet.empty()) {
    fillIdleDevices(Fleet, Out);
    return Out;
  }

  ClusterReplay CR(Fleet, Policy, Opts, Out);
  std::optional<ClosedLoopDriver> Loop;
  if (Workload.Script) {
    Loop.emplace(*Workload.Script);
    CR.Loop = &*Loop;
  }
  size_t NextArrival = 0;
  double Now = 0;

  while (CR.Completed != Total) {
    double T = Now;
    CR.applyPlan(T);
    if (Trace) {
      while (NextArrival != Trace->size() &&
             (*Trace)[NextArrival].ArrivalTime <= T)
        CR.arriveOpen((*Trace)[NextArrival++], T);
    } else {
      while (!Loop->empty() && Loop->nextTime() <= T)
        CR.arriveClosed(*Loop, T);
    }
    if (CR.Completed == Total)
      break; // The last arrivals were all lost at this instant.

    CR.admitAll(T);

    double NextEvent = CR.nextFleetEvent();
    double NextInput =
        Trace ? (NextArrival != Trace->size()
                     ? (*Trace)[NextArrival].ArrivalTime
                     : -1)
              : (Loop->empty() ? -1 : Loop->nextTime());
    double NextPlan = CR.nextPlanTime();
    double Target = NextEvent;
    if (Target < 0 || (NextInput >= 0 && NextInput < Target))
      Target = NextInput;
    if (Target < 0 || (NextPlan >= 0 && NextPlan < Target))
      Target = NextPlan;
    assert(Target >= 0 && "replay stalled with unfinished requests");
    CR.advanceAll(T, Target);
    Now = std::max(Target, T);
  }

  assert((!Workload.Script || CR.RS.Trace.size() == Total) &&
         "script not fully replayed");
  CR.finalize();
  return Out;
}

ClusterOutcome harness::runCluster(
    cluster::Fleet &Fleet, cluster::PlacementPolicy &Policy,
    const std::vector<workloads::TimedRequest> &Trace,
    const ClusterOptions &Opts) {
  return runClusterReplay(Fleet, Policy, ClusterWorkload::openLoop(Trace),
                          Opts);
}

ClusterOutcome harness::runClusterClosedLoop(
    cluster::Fleet &Fleet, cluster::PlacementPolicy &Policy,
    const workloads::ClosedLoopScript &Script, const ClusterOptions &Opts) {
  return runClusterReplay(Fleet, Policy,
                          ClusterWorkload::closedLoop(Script), Opts);
}
