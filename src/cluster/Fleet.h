//===- cluster/Fleet.h - Multi-device fleet and placement -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet layer: where the paper's runtime fair-shares ONE
/// accelerator, a production serving system shards traffic across many,
/// usually heterogeneous, devices. A cluster::Fleet is a registry of
/// simulated devices — any mix of sim::DeviceSpec::nvidiaK20m(),
/// amdR9295X2(), or custom specs — each carrying its own compiled
/// workload view (harness::ExperimentDriver), and each served by its
/// own sim::EngineSession + accelos::ContinuousScheduler when the
/// cluster replay (harness::runClusterReplay) drives them on one merged
/// event clock.
///
/// Placement is the new scheduling decision this layer introduces:
/// which device a request runs on. It is pluggable
/// (cluster::PlacementPolicy) with three built-ins:
///
///  - RoundRobin: rotate blindly — the baseline every load balancer
///    starts from, and exactly what heterogeneity punishes (a slow
///    device is handed an equal share of the traffic);
///  - LeastLoaded: join-shortest-residual-work — place on the device
///    with the least outstanding (queued + in-flight) work, measured in
///    thread-cycles;
///  - HeterogeneityAware: normalize the residual work by each device's
///    measured throughput and add the request's own isolated duration
///    *on that device* — join-shortest-expected-completion, the
///    Gavel-style correction (Narayanan et al.): a device half as fast
///    must be handed half the work for the fleet-wide shares to stay
///    fair.
///
/// The interface is lifecycle-aware: the policy is not a stateless
/// oracle handed a snapshot per decision, it is *attached* to the
/// replay and notified of every admission, completion, withdrawal, and
/// device up/down transition. The PlacementPolicy base class maintains
/// the per-device load view (DeviceLoad) incrementally from those
/// notifications — it is the replay's single source of truth for
/// outstanding work — and subclasses observe the same events through
/// protected hooks when they keep extra state. Beyond place(), a policy
/// may also volunteer quantum-boundary migrations through
/// suggestMigration(): the harness consults it when a device's residual
/// backlog diverges from the fleet mean, and half-executed virtual
/// ranges then carry their remaining work groups to the new device.
///
/// Applications never name a device (the Arax-style decoupling): they
/// submit against the fleet, the policy binds the request at arrival
/// time, and the binding is revisited only at quantum-slice boundaries
/// (migration) or when the device leaves the fleet (failover).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_CLUSTER_FLEET_H
#define ACCEL_CLUSTER_FLEET_H

#include "harness/Experiment.h"
#include "sim/DeviceSpec.h"

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

namespace accel {
namespace cluster {

/// A registry of simulated devices, each with its own compiled workload
/// view. Devices are append-only; drivers and specs are
/// reference-stable once added (the replay keeps pointers into them).
class Fleet {
public:
  /// Adds one device to the fleet. Compiles the workload suite for it
  /// and measures its mean isolated (solo) kernel duration — the
  /// throughput probe heterogeneity-aware placement normalizes by.
  /// \returns the device's fleet index.
  size_t addDevice(const sim::DeviceSpec &Spec);

  size_t size() const { return Drivers.size(); }
  bool empty() const { return Drivers.empty(); }

  /// The compiled workload view of device \p I (non-const: isolated
  /// durations are cached lazily).
  harness::ExperimentDriver &driver(size_t I) { return Drivers[I]; }

  const sim::DeviceSpec &device(size_t I) const {
    return Drivers[I].device();
  }

  /// Mean isolated (solo, baseline) duration of the suite on device
  /// \p I: the natural time unit of that device.
  double meanSoloDuration(size_t I) const { return MeanSolo[I]; }

  /// Measured service rate of device \p I in thread-cycles of suite
  /// work per simulation time unit: mean kernel work over mean solo
  /// duration. The ratio between two devices' rates is the
  /// heterogeneity the placement policies reason about.
  double serviceRate(size_t I) const { return Rate[I]; }

  /// Mean of meanSoloDuration over the fleet — the natural time unit
  /// for calibrating cluster-wide arrival rates and round quanta.
  double meanSoloDurationAcrossFleet() const;

private:
  std::deque<harness::ExperimentDriver> Drivers; ///< Reference-stable.
  std::vector<double> MeanSolo;
  std::vector<double> Rate;
};

/// What a placement policy sees of one device. Maintained incrementally
/// by the PlacementPolicy base class from the replay's lifecycle
/// notifications.
struct DeviceLoad {
  /// Thread-cycles of work placed on the device and not yet completed
  /// (queued and in-flight requests' remaining virtual groups).
  double OutstandingCost = 0;
  /// Requests placed and not yet completed.
  size_t OutstandingRequests = 0;
  /// Fleet::serviceRate of the device.
  double ServiceRate = 1.0;
  /// False while the device is out of service (scripted failure, or an
  /// elastic device that has not joined yet). place() and
  /// suggestMigration() must never pick a dead device.
  bool Alive = true;
};

/// One placement decision's input. \c SoloDurations points at a
/// harness-owned, fleet-indexed vector of isolated-duration estimates
/// for THIS request's kernel on each device (scaled down to the
/// remaining virtual range when deciding a migration); it is valid only
/// for the duration of the place()/suggestMigration() call.
struct PlacementRequest {
  int Tenant = 0;
  size_t KernelIdx = 0;
  double ArrivalTime = 0;
  const std::vector<double> *SoloDurations = nullptr;

  /// Estimated isolated duration of the request's remaining work on
  /// device \p Device.
  double soloOn(size_t Device) const {
    return SoloDurations ? (*SoloDurations)[Device] : 0.0;
  }
};

/// Pluggable, lifecycle-aware dispatch: which device a request runs on.
///
/// The replay drives the non-virtual lifecycle methods (attach /
/// admitTo / completeOn / withdrawFrom / deviceDown / deviceUp); the
/// base class applies each event to its private DeviceLoad view and
/// then forwards to the matching protected hook, so every policy prices
/// decisions off the same incrementally-maintained numbers. Decisions
/// are the virtual place() / suggestMigration() pair. Policies may keep
/// private state across decisions (e.g. a rotation cursor); attach()
/// reinitializes everything, so the same policy object replays
/// deterministically.
class PlacementPolicy {
public:
  virtual ~PlacementPolicy();

  /// Binds the policy to a fleet at replay start: resets the load view
  /// to one entry per device with the given service rates, all costs
  /// zero. \p Alive marks devices in service at time zero (empty =
  /// all); an elastic device scripted to join later starts dead. Calls
  /// onAttach() for subclass state.
  void attach(std::vector<double> ServiceRates,
              const std::vector<bool> &Alive = {});

  /// A request carrying \p Cost thread-cycles of remaining work was
  /// bound to \p Device (initial placement, failover, or migration).
  void admitTo(size_t Device, double Cost);

  /// A quantum slice of a request on \p Device completed, draining
  /// \p DrainedCost thread-cycles; \p Finished is true when it was the
  /// request's last slice.
  void completeOn(size_t Device, double DrainedCost, bool Finished);

  /// A request with \p RemainingCost thread-cycles left was unbound
  /// from \p Device (about to fail over, migrate, or be lost).
  void withdrawFrom(size_t Device, double RemainingCost);

  /// \p Device left the fleet (scripted failure / scale-down). Its
  /// outstanding work is withdrawn separately, one request at a time.
  void deviceDown(size_t Device);

  /// \p Device (re)joined the fleet with no outstanding work.
  void deviceUp(size_t Device);

  /// The load view: one entry per device, indexed by fleet position.
  const std::vector<DeviceLoad> &loads() const { return Loads; }

  /// Picks an in-service fleet index for \p Req. The view always
  /// contains at least one Alive device when this is called.
  virtual size_t place(const PlacementRequest &Req) = 0;

  /// Asked at a quantum-slice boundary when \p Current's backlog has
  /// diverged from the fleet mean: propose an in-service device for the
  /// request's remaining range, or std::nullopt to stay put. Must be
  /// side-effect free (the harness may discard the suggestion). The
  /// default never migrates.
  virtual std::optional<size_t> suggestMigration(const PlacementRequest &Req,
                                                 size_t Current);

  virtual const char *name() const = 0;

protected:
  /// Subclass hooks, called after the base view reflects the event.
  virtual void onAttach() {}
  virtual void onAdmit(size_t /*Device*/, double /*Cost*/) {}
  virtual void onComplete(size_t /*Device*/, double /*DrainedCost*/,
                          bool /*Finished*/) {}
  virtual void onWithdraw(size_t /*Device*/, double /*RemainingCost*/) {}
  virtual void onDeviceDown(size_t /*Device*/) {}
  virtual void onDeviceUp(size_t /*Device*/) {}

private:
  std::vector<DeviceLoad> Loads;
};

/// The built-in policies.
enum class PlacementKind {
  RoundRobin,
  LeastLoaded,
  HeterogeneityAware,
};

/// \returns a fresh instance of the built-in policy \p Kind.
std::unique_ptr<PlacementPolicy> makePlacementPolicy(PlacementKind Kind);

/// \returns a short printable policy name.
const char *placementName(PlacementKind Kind);

} // namespace cluster
} // namespace accel

#endif // ACCEL_CLUSTER_FLEET_H
