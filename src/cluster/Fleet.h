//===- cluster/Fleet.h - Multi-device fleet and placement -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet layer: where the paper's runtime fair-shares ONE
/// accelerator, a production serving system shards traffic across many,
/// usually heterogeneous, devices. A cluster::Fleet is a registry of
/// simulated devices — any mix of sim::DeviceSpec::nvidiaK20m(),
/// amdR9295X2(), or custom specs — each carrying its own compiled
/// workload view (harness::ExperimentDriver), and each served by its
/// own sim::EngineSession + accelos::ContinuousScheduler when the
/// cluster replay (harness::runCluster) drives them on one merged event
/// clock.
///
/// Placement is the new scheduling decision this layer introduces:
/// which device a newly arrived request lands on. It is pluggable
/// (cluster::PlacementPolicy) with three built-ins:
///
///  - RoundRobin: rotate blindly — the baseline every load balancer
///    starts from, and exactly what heterogeneity punishes (a slow
///    device is handed an equal share of the traffic);
///  - LeastLoaded: join-shortest-residual-work — place on the device
///    with the least outstanding (queued + in-flight) work, measured in
///    thread-cycles;
///  - HeterogeneityAware: normalize the residual work by each device's
///    measured throughput and add the request's own isolated duration
///    *on that device* — join-shortest-expected-completion, the
///    Gavel-style correction (Narayanan et al.): a device half as fast
///    must be handed half the work for the fleet-wide shares to stay
///    fair.
///
/// Applications never name a device (the Arax-style decoupling): they
/// submit against the fleet, the policy binds the request at arrival
/// time, and work-slice requeues stay on the placed device.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_CLUSTER_FLEET_H
#define ACCEL_CLUSTER_FLEET_H

#include "harness/Experiment.h"
#include "sim/DeviceSpec.h"

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

namespace accel {
namespace cluster {

/// A registry of simulated devices, each with its own compiled workload
/// view. Devices are append-only; drivers and specs are
/// reference-stable once added (the replay keeps pointers into them).
class Fleet {
public:
  /// Adds one device to the fleet. Compiles the workload suite for it
  /// and measures its mean isolated (solo) kernel duration — the
  /// throughput probe heterogeneity-aware placement normalizes by.
  /// \returns the device's fleet index.
  size_t addDevice(const sim::DeviceSpec &Spec);

  size_t size() const { return Drivers.size(); }
  bool empty() const { return Drivers.empty(); }

  /// The compiled workload view of device \p I (non-const: isolated
  /// durations are cached lazily).
  harness::ExperimentDriver &driver(size_t I) { return Drivers[I]; }

  const sim::DeviceSpec &device(size_t I) const {
    return Drivers[I].device();
  }

  /// Mean isolated (solo, baseline) duration of the suite on device
  /// \p I: the natural time unit of that device.
  double meanSoloDuration(size_t I) const { return MeanSolo[I]; }

  /// Measured service rate of device \p I in thread-cycles of suite
  /// work per simulation time unit: mean kernel work over mean solo
  /// duration. The ratio between two devices' rates is the
  /// heterogeneity the placement policies reason about.
  double serviceRate(size_t I) const { return Rate[I]; }

  /// Mean of meanSoloDuration over the fleet — the natural time unit
  /// for calibrating cluster-wide arrival rates and round quanta.
  double meanSoloDurationAcrossFleet() const;

private:
  std::deque<harness::ExperimentDriver> Drivers; ///< Reference-stable.
  std::vector<double> MeanSolo;
  std::vector<double> Rate;
};

/// What a placement policy sees of one device when deciding where a
/// request lands.
struct DeviceLoad {
  /// Thread-cycles of work placed on the device and not yet completed
  /// (queued and in-flight requests' remaining virtual groups).
  double OutstandingCost = 0;
  /// Requests placed and not yet completed.
  size_t OutstandingRequests = 0;
  /// Fleet::serviceRate of the device.
  double ServiceRate = 1.0;
  /// Isolated duration of THIS request's kernel on THIS device.
  double SoloDuration = 0;
};

/// One placement decision's input.
struct PlacementRequest {
  int Tenant = 0;
  size_t KernelIdx = 0;
  double ArrivalTime = 0;
};

/// Pluggable dispatch: which device a newly arrived request lands on.
/// Policies may keep state across decisions (e.g. a rotation cursor);
/// runCluster calls reset() at the start of every replay so the same
/// policy object replays deterministically.
class PlacementPolicy {
public:
  virtual ~PlacementPolicy();

  /// Clears any cross-decision state. Called once per replay.
  virtual void reset() {}

  /// Picks the fleet index for \p Req. \p Loads has one entry per
  /// device, indexed by fleet position; never empty.
  virtual size_t place(const PlacementRequest &Req,
                       const std::vector<DeviceLoad> &Loads) = 0;

  virtual const char *name() const = 0;
};

/// The built-in policies.
enum class PlacementKind {
  RoundRobin,
  LeastLoaded,
  HeterogeneityAware,
};

/// \returns a fresh instance of the built-in policy \p Kind.
std::unique_ptr<PlacementPolicy> makePlacementPolicy(PlacementKind Kind);

/// \returns a short printable policy name.
const char *placementName(PlacementKind Kind);

} // namespace cluster
} // namespace accel

#endif // ACCEL_CLUSTER_FLEET_H
