//===- kir/Interpreter.h - Functional kernel execution ----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes KIR kernels over an NDRange against simulated device memory.
/// Work-groups run in interleaved barrier-delimited phases so the
/// device-side scheduling library's atomic dequeues (paper Fig. 8b)
/// interleave across physical work-groups the way they would on hardware.
/// Used to validate that the accelOS JIT transformation preserves kernel
/// semantics; the timing model in src/sim handles performance.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_INTERPRETER_H
#define ACCEL_KIR_INTERPRETER_H

#include "kir/DeviceMemory.h"
#include "kir/FlatCode.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace accel {
namespace kir {

/// The geometry of one kernel launch.
struct NDRangeCfg {
  unsigned WorkDim = 1;
  uint64_t GlobalSize[3] = {1, 1, 1};
  uint64_t LocalSize[3] = {1, 1, 1};

  /// \returns the number of work groups along \p Dim. Global sizes must
  /// be divisible by local sizes (checked by the OpenCL layer).
  uint64_t numGroups(unsigned Dim) const {
    return GlobalSize[Dim] / LocalSize[Dim];
  }

  uint64_t totalGroups() const {
    return numGroups(0) * numGroups(1) * numGroups(2);
  }

  uint64_t workGroupSize() const {
    return LocalSize[0] * LocalSize[1] * LocalSize[2];
  }

  uint64_t totalWorkItems() const {
    return GlobalSize[0] * GlobalSize[1] * GlobalSize[2];
  }
};

/// Dynamic execution statistics of one launch.
struct ExecStats {
  uint64_t InstsExecuted = 0;
  uint64_t AtomicOps = 0;
  uint64_t Barriers = 0;
  /// Dynamic load + store count (all address spaces). Together with
  /// MathOps this gives the measured counterpart of the static cost
  /// prior's instruction-mix estimate.
  uint64_t MemoryOps = 0;
  /// Dynamic sqrt/rsqrt/sin/cos/exp/log builtin count.
  uint64_t MathOps = 0;
  /// Dynamic instruction count per physical work-group (for observing
  /// the load balance that software scheduling produces).
  std::vector<uint64_t> GroupInsts;
};

/// Functional executor for KIR kernels.
class Interpreter {
public:
  explicit Interpreter(DeviceMemory &GlobalMem) : GlobalMem(GlobalMem) {}

  /// Runs \p Kernel over \p Range with the given argument payloads
  /// (scalars by value, buffers as device addresses). \returns execution
  /// statistics or a trap description.
  Expected<ExecStats> run(const Function &Kernel,
                          const std::vector<uint64_t> &Args,
                          const NDRangeCfg &Range);

  /// Caps the dynamic instructions any single work-item may execute
  /// before the interpreter traps (guards against runaway loops).
  void setMaxStepsPerWorkItem(uint64_t Max) { MaxSteps = Max; }

  /// Caps how many work-groups are kept in flight concurrently.
  void setMaxConcurrentGroups(uint64_t Max) { MaxGroups = Max; }

private:
  DeviceMemory &GlobalMem;
  CodeCache Cache;
  uint64_t MaxSteps = 50'000'000;
  uint64_t MaxGroups = 64;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_INTERPRETER_H
