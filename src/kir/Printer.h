//===- kir/Printer.h - Textual IR dumping -----------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders KIR to a human-readable assembly-like text form, used by tests
/// and by the jit_inspect example to show the before/after of the accelOS
/// transformation (paper Fig. 8).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_PRINTER_H
#define ACCEL_KIR_PRINTER_H

#include <string>

namespace accel {
namespace kir {

class Module;
class Function;

/// \returns a textual rendering of \p F.
std::string printFunction(const Function &F);

/// \returns a textual rendering of all functions in \p M.
std::string printModule(const Module &M);

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_PRINTER_H
