//===- kir/Value.h - Kernel IR value hierarchy ------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the root of the KIR SSA-ish data graph: function arguments,
/// constants, and instructions all produce typed values. The hierarchy
/// uses Kind-discriminated RTTI (support/Casting.h).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_VALUE_H
#define ACCEL_KIR_VALUE_H

#include "kir/Type.h"

#include <cstdint>
#include <string>

namespace accel {
namespace kir {

/// Root of the data-value hierarchy.
class Value {
public:
  enum class ValueKind : uint8_t { Argument, Constant, Instruction };

  ValueKind valueKind() const { return VKind; }
  const Type &type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  virtual ~Value() = default;

protected:
  Value(ValueKind VKind, Type Ty) : VKind(VKind), Ty(Ty) {}

private:
  ValueKind VKind;
  Type Ty;
  std::string Name;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type Ty, unsigned Index) : Value(ValueKind::Argument, Ty),
                                      Index(Index) {}

  unsigned index() const { return Index; }
  void setIndex(unsigned NewIndex) { Index = NewIndex; }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::Argument;
  }

private:
  unsigned Index;
};

/// An immediate scalar constant. Floats are stored as their IEEE bits so
/// constants of all kinds share one 64-bit payload.
class Constant : public Value {
public:
  Constant(Type Ty, uint64_t Bits) : Value(ValueKind::Constant, Ty),
                                     Bits(Bits) {}

  /// Raw payload bits (sign-extended for narrow integers).
  uint64_t bits() const { return Bits; }

  /// \returns the value interpreted as a signed integer.
  int64_t intValue() const { return static_cast<int64_t>(Bits); }

  /// \returns the value interpreted as an f32.
  float floatValue() const {
    union {
      uint32_t I;
      float F;
    } U;
    U.I = static_cast<uint32_t>(Bits);
    return U.F;
  }

  /// Encodes \p F into the shared payload representation.
  static uint64_t encodeFloat(float F) {
    union {
      uint32_t I;
      float F;
    } U;
    U.F = F;
    return U.I;
  }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::Constant;
  }

private:
  uint64_t Bits;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_VALUE_H
