//===- kir/Printer.cpp - Textual IR dumping --------------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/Printer.h"

#include "kir/Module.h"
#include "support/RawOstream.h"

#include <map>

using namespace accel;
using namespace accel::kir;

namespace {

/// Assigns stable printable names to values within one function.
class FunctionPrinter {
public:
  FunctionPrinter(const Function &F, raw_ostream &OS) : F(F), OS(OS) {}

  void print() {
    printSignature();
    OS << " {\n";
    printLocalAllocs();
    for (const auto &BB : F.blocks()) {
      OS << BB->name() << ":\n";
      for (const auto &I : BB->instructions())
        printInst(*I);
    }
    OS << "}\n";
  }

private:
  std::string nameOf(const Value *V) {
    if (const auto *C = dyn_cast<Constant>(V)) {
      if (C->type().isFloat())
        return std::to_string(C->floatValue());
      return std::to_string(C->intValue());
    }
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string Name;
    if (!V->name().empty())
      Name = "%" + V->name() + "." + std::to_string(NextId++);
    else
      Name = "%" + std::to_string(NextId++);
    Names.emplace(V, Name);
    return Names.at(V);
  }

  void printSignature() {
    if (F.isKernel())
      OS << "kernel ";
    OS << F.returnType().str() << " @" << F.name() << "(";
    for (unsigned I = 0; I != F.numArguments(); ++I) {
      if (I)
        OS << ", ";
      const Argument *A = F.argument(I);
      OS << A->type().str() << " " << nameOf(A);
    }
    OS << ")";
  }

  void printLocalAllocs() {
    for (const LocalAllocDecl &Decl : F.localAllocs())
      OS << "  local " << Type::scalar(Decl.ElemKind).str() << " "
         << Decl.Name << "[" << Decl.Count << "]\n";
  }

  void printInst(const Instruction &I) {
    OS << "  ";
    if (!I.type().isVoid())
      OS << nameOf(&I) << " = ";
    switch (I.instKind()) {
    case InstKind::Binary: {
      const auto &B = cast<BinaryInst>(I);
      OS << binOpName(B.op()) << " " << nameOf(B.lhs()) << ", "
         << nameOf(B.rhs());
      break;
    }
    case InstKind::Cmp: {
      const auto &C = cast<CmpInst>(I);
      OS << "cmp " << cmpPredName(C.pred()) << " " << nameOf(C.lhs()) << ", "
         << nameOf(C.rhs());
      break;
    }
    case InstKind::Select: {
      const auto &S = cast<SelectInst>(I);
      OS << "select " << nameOf(S.cond()) << ", " << nameOf(S.trueValue())
         << ", " << nameOf(S.falseValue());
      break;
    }
    case InstKind::Cast: {
      const auto &C = cast<CastInst>(I);
      OS << castKindName(C.castKind()) << " " << nameOf(C.src()) << " to "
         << C.type().str();
      break;
    }
    case InstKind::Alloca: {
      const auto &A = cast<AllocaInst>(I);
      OS << "alloca " << Type::scalar(A.elemKind()).str() << " x "
         << A.count();
      break;
    }
    case InstKind::LocalAddr: {
      const auto &L = cast<LocalAddrInst>(I);
      OS << "localaddr slot " << L.slotIndex();
      break;
    }
    case InstKind::Load: {
      const auto &L = cast<LoadInst>(I);
      OS << "load " << nameOf(L.pointer());
      break;
    }
    case InstKind::Store: {
      const auto &S = cast<StoreInst>(I);
      OS << "store " << nameOf(S.pointer()) << ", " << nameOf(S.value());
      break;
    }
    case InstKind::Gep: {
      const auto &G = cast<GepInst>(I);
      OS << "gep " << nameOf(G.pointer()) << ", " << nameOf(G.index());
      break;
    }
    case InstKind::Call: {
      const auto &C = cast<CallInst>(I);
      OS << "call @" << C.callee()->name() << "(";
      for (unsigned A = 0; A != C.numOperands(); ++A) {
        if (A)
          OS << ", ";
        OS << nameOf(C.operand(A));
      }
      OS << ")";
      break;
    }
    case InstKind::Builtin: {
      const auto &B = cast<BuiltinInst>(I);
      OS << builtinName(B.builtinKind()) << "(";
      for (unsigned A = 0; A != B.numOperands(); ++A) {
        if (A)
          OS << ", ";
        OS << nameOf(B.operand(A));
      }
      OS << ")";
      break;
    }
    case InstKind::Br: {
      const auto &B = cast<BrInst>(I);
      if (B.isConditional())
        OS << "br " << nameOf(B.cond()) << ", label %"
           << B.trueTarget()->name() << ", label %"
           << B.falseTarget()->name();
      else
        OS << "br label %" << B.trueTarget()->name();
      break;
    }
    case InstKind::Ret: {
      const auto &R = cast<RetInst>(I);
      if (R.hasValue())
        OS << "ret " << nameOf(R.value());
      else
        OS << "ret void";
      break;
    }
    }
    if (!I.type().isVoid() && I.instKind() != InstKind::Cast)
      OS << " : " << I.type().str();
    OS << "\n";
  }

  const Function &F;
  raw_ostream &OS;
  std::map<const Value *, std::string> Names;
  unsigned NextId = 0;
};

} // namespace

std::string kir::printFunction(const Function &F) {
  std::string Out;
  raw_string_ostream OS(Out);
  FunctionPrinter(F, OS).print();
  return Out;
}

std::string kir::printModule(const Module &M) {
  std::string Out;
  raw_string_ostream OS(Out);
  for (const auto &F : M.functions()) {
    OS << printFunction(*F);
    OS << "\n";
  }
  return Out;
}
