//===- kir/Module.h - Blocks, functions and modules -------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural containers of the kernel IR. A Module owns Functions, a
/// Function owns its Arguments, BasicBlocks, local-memory declarations
/// and a uniquing constant pool, and a BasicBlock owns Instructions.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_MODULE_H
#define ACCEL_KIR_MODULE_H

#include "kir/Instructions.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace accel {
namespace kir {

/// A straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &name() const { return Name; }
  Function *parent() const { return Parent; }

  /// Appends \p Inst and returns a raw pointer to it.
  Instruction *append(std::unique_ptr<Instruction> Inst) {
    Inst->setParent(this);
    Insts.push_back(std::move(Inst));
    return Insts.back().get();
  }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *inst(size_t I) const { return Insts[I].get(); }

  /// \returns the terminator, or null if the block is unterminated.
  Instruction *terminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  /// Replaces the instruction list wholesale (used by transforms).
  void setInstructions(std::vector<std::unique_ptr<Instruction>> NewInsts) {
    Insts = std::move(NewInsts);
    for (auto &I : Insts)
      I->setParent(this);
  }

  /// Moves the instruction list out (used by transforms when splitting
  /// or rewriting blocks). The block is left empty.
  std::vector<std::unique_ptr<Instruction>> takeInstructions() {
    return std::move(Insts);
  }

  /// Swaps the instruction at \p I for \p New and returns the old one
  /// (kept alive so remaining uses can be rewritten before disposal).
  std::unique_ptr<Instruction> replaceInst(size_t I,
                                           std::unique_ptr<Instruction> New) {
    assert(I < Insts.size() && "replaceInst index out of range");
    New->setParent(this);
    std::swap(Insts[I], New);
    return New;
  }

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

/// A statically-sized local-memory (work-group scratchpad) array
/// declaration attached to a function. The accelOS transform hoists
/// these from the computation function into the scheduling kernel.
struct LocalAllocDecl {
  std::string Name;
  Type::Kind ElemKind;
  uint64_t Count;

  /// \returns the footprint in bytes.
  uint64_t sizeBytes() const {
    return Count * Type::scalarSizeBytes(ElemKind);
  }
};

/// A KIR function: either a device kernel (entry point launched over an
/// NDRange) or a regular function callable from kernels.
class Function {
public:
  Function(std::string Name, Type RetTy, bool IsKernel)
      : Name(std::move(Name)), RetTy(RetTy), IsKernel(IsKernel) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  const Type &returnType() const { return RetTy; }

  bool isKernel() const { return IsKernel; }
  void setIsKernel(bool K) { IsKernel = K; }

  /// Appends a formal parameter of type \p Ty named \p ArgName.
  Argument *addArgument(Type Ty, std::string ArgName) {
    auto Arg = std::make_unique<Argument>(
        Ty, static_cast<unsigned>(Args.size()));
    Arg->setName(std::move(ArgName));
    Args.push_back(std::move(Arg));
    return Args.back().get();
  }

  unsigned numArguments() const { return static_cast<unsigned>(Args.size()); }
  Argument *argument(unsigned I) const { return Args[I].get(); }

  /// Creates and appends a new basic block.
  BasicBlock *createBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(std::move(BlockName),
                                                  this));
    return Blocks.back().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  BasicBlock *entryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  bool isDeclaration() const { return Blocks.empty(); }

  /// Declares a local-memory array; returns its slot index.
  unsigned addLocalAlloc(LocalAllocDecl Decl) {
    LocalAllocs.push_back(std::move(Decl));
    return static_cast<unsigned>(LocalAllocs.size() - 1);
  }

  const std::vector<LocalAllocDecl> &localAllocs() const {
    return LocalAllocs;
  }

  std::vector<LocalAllocDecl> &localAllocs() { return LocalAllocs; }

  /// \returns total local-memory footprint of this function in bytes.
  uint64_t localMemoryBytes() const {
    uint64_t Total = 0;
    for (const LocalAllocDecl &Decl : LocalAllocs)
      Total += Decl.sizeBytes();
    return Total;
  }

  /// Interns the integer constant \p V of type \p Ty in this function's
  /// constant pool.
  Constant *getIntConstant(Type Ty, int64_t V) {
    return getConstant(Ty, static_cast<uint64_t>(V));
  }

  /// Interns the f32 constant \p V.
  Constant *getFloatConstant(float V) {
    return getConstant(Type::f32(), Constant::encodeFloat(V));
  }

  /// Interns the boolean constant \p V.
  Constant *getBoolConstant(bool V) {
    return getConstant(Type::i1(), V ? 1 : 0);
  }

  /// Total number of instructions across all blocks. Drives the paper's
  /// adaptive-scheduling thresholds (Sec. 6.4).
  uint64_t instructionCount() const {
    uint64_t N = 0;
    for (const auto &BB : Blocks)
      N += BB->size();
    return N;
  }

private:
  Constant *getConstant(Type Ty, uint64_t Bits) {
    ConstantKey Key{static_cast<uint8_t>(Ty.kind()), Bits};
    auto It = ConstantPool.find(Key);
    if (It != ConstantPool.end())
      return It->second.get();
    auto C = std::make_unique<Constant>(Ty, Bits);
    Constant *Raw = C.get();
    ConstantPool.emplace(Key, std::move(C));
    return Raw;
  }

  using ConstantKey = std::pair<uint8_t, uint64_t>;

  std::string Name;
  Type RetTy;
  bool IsKernel;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<LocalAllocDecl> LocalAllocs;
  std::map<ConstantKey, std::unique_ptr<Constant>> ConstantPool;
};

/// A translation unit: the result of compiling one MiniCL program.
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Creates a new function; names must be unique within the module.
  Function *createFunction(std::string FnName, Type RetTy, bool IsKernel) {
    assert(!getFunction(FnName) && "duplicate function name");
    Functions.push_back(
        std::make_unique<Function>(std::move(FnName), RetTy, IsKernel));
    return Functions.back().get();
  }

  /// \returns the function named \p FnName, or null.
  Function *getFunction(const std::string &FnName) const {
    for (const auto &F : Functions)
      if (F->name() == FnName)
        return F.get();
    return nullptr;
  }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// \returns all kernel entry points in declaration order.
  std::vector<Function *> kernels() const {
    std::vector<Function *> Result;
    for (const auto &F : Functions)
      if (F->isKernel())
        Result.push_back(F.get());
    return Result;
  }

private:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_MODULE_H
