//===- kir/Verifier.cpp - IR structural validation -------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/Verifier.h"

#include "kir/Module.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/Uniformity.h"

#include <set>
#include <string>

using namespace accel;
using namespace accel::kir;

namespace {

/// Walks one function and accumulates the first violation.
class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F) {}

  Error run() {
    if (F.isDeclaration()) {
      if (F.isKernel())
        return fail("kernel has no body");
      return Error::success();
    }
    if (F.isKernel() && !F.returnType().isVoid())
      return fail("kernel must return void");

    collectBlocks();
    for (const auto &BB : F.blocks()) {
      if (Error E = checkBlock(*BB))
        return E;
    }
    return Error::success();
  }

private:
  Error fail(const std::string &Why) {
    return makeError("verifier: function '" + F.name() + "': " + Why);
  }

  void collectBlocks() {
    for (const auto &BB : F.blocks())
      KnownBlocks.insert(BB.get());
  }

  Error checkBlock(const BasicBlock &BB) {
    if (!BB.terminator())
      return fail("block '" + BB.name() + "' lacks a terminator");
    for (size_t I = 0, E = BB.size(); I != E; ++I) {
      const Instruction *Inst = BB.inst(I);
      if (Inst->isTerminator() && I + 1 != E)
        return fail("terminator in the middle of block '" + BB.name() + "'");
      if (Error Err = checkInst(*Inst, BB))
        return Err;
    }
    return Error::success();
  }

  Error checkInst(const Instruction &I, const BasicBlock &BB) {
    // All operands must be non-null; defs must dominate uses is not
    // enforced (the frontend emits allocas + loads, so cross-block value
    // flow is limited to straight-line temporaries).
    for (const Value *Op : I.operands())
      if (!Op)
        return fail("null operand in block '" + BB.name() + "'");

    switch (I.instKind()) {
    case InstKind::Binary: {
      const auto &B = cast<BinaryInst>(I);
      if (B.lhs()->type() != B.rhs()->type())
        return fail("binary operand type mismatch");
      bool WantFloat = isFloatBinOp(B.op());
      if (WantFloat != B.lhs()->type().isFloat())
        return fail(std::string("operand domain mismatch for ") +
                    binOpName(B.op()));
      if (!WantFloat && !B.lhs()->type().isInt())
        return fail("integer binary op on non-integer");
      return Error::success();
    }
    case InstKind::Cmp: {
      const auto &C = cast<CmpInst>(I);
      if (C.lhs()->type() != C.rhs()->type())
        return fail("cmp operand type mismatch");
      if (isFloatCmpPred(C.pred()) != C.lhs()->type().isFloat())
        return fail("cmp predicate domain mismatch");
      return Error::success();
    }
    case InstKind::Select: {
      const auto &S = cast<SelectInst>(I);
      if (!S.cond()->type().isBool())
        return fail("select condition must be i1");
      if (S.trueValue()->type() != S.falseValue()->type())
        return fail("select arm type mismatch");
      return Error::success();
    }
    case InstKind::Cast: {
      const auto &C = cast<CastInst>(I);
      switch (C.castKind()) {
      case CastKind::SExt:
        if (C.src()->type().kind() != Type::Kind::I32 ||
            C.type().kind() != Type::Kind::I64)
          return fail("sext must be i32 -> i64");
        break;
      case CastKind::Trunc:
        if (C.src()->type().kind() != Type::Kind::I64 ||
            C.type().kind() != Type::Kind::I32)
          return fail("trunc must be i64 -> i32");
        break;
      case CastKind::SIToFP:
        if (!C.src()->type().isInt() || !C.type().isFloat())
          return fail("sitofp must be int -> f32");
        break;
      case CastKind::FPToSI:
        if (!C.src()->type().isFloat() || !C.type().isInt())
          return fail("fptosi must be f32 -> int");
        break;
      case CastKind::ZExtBool:
        if (!C.src()->type().isBool() || !C.type().isInt())
          return fail("zext must be i1 -> int");
        break;
      }
      return Error::success();
    }
    case InstKind::Alloca:
      return Error::success();
    case InstKind::LocalAddr: {
      const auto &L = cast<LocalAddrInst>(I);
      if (L.slotIndex() >= F.localAllocs().size())
        return fail("local slot index out of range");
      if (F.localAllocs()[L.slotIndex()].ElemKind != L.type().elemKind())
        return fail("local slot element kind mismatch");
      return Error::success();
    }
    case InstKind::Load: {
      const auto &L = cast<LoadInst>(I);
      if (!L.pointer()->type().isPtr())
        return fail("load from non-pointer");
      if (L.type().kind() != L.pointer()->type().elemKind())
        return fail("load result kind mismatch");
      return Error::success();
    }
    case InstKind::Store: {
      const auto &S = cast<StoreInst>(I);
      if (!S.pointer()->type().isPtr())
        return fail("store to non-pointer");
      if (S.value()->type().kind() != S.pointer()->type().elemKind())
        return fail("store value kind mismatch");
      return Error::success();
    }
    case InstKind::Gep: {
      const auto &G = cast<GepInst>(I);
      if (!G.pointer()->type().isPtr())
        return fail("gep on non-pointer");
      if (!G.index()->type().isInt())
        return fail("gep index must be integer");
      return Error::success();
    }
    case InstKind::Call: {
      const auto &C = cast<CallInst>(I);
      const Function *Callee = C.callee();
      if (!Callee)
        return fail("call to null function");
      if (Callee->isKernel())
        return fail("call to kernel function '" + Callee->name() + "'");
      if (C.numOperands() != Callee->numArguments())
        return fail("call arity mismatch for '" + Callee->name() + "'");
      for (unsigned A = 0; A != C.numOperands(); ++A)
        if (C.operand(A)->type() != Callee->argument(A)->type())
          return fail("call argument type mismatch for '" + Callee->name() +
                      "'");
      if (C.type() != Callee->returnType())
        return fail("call result type mismatch for '" + Callee->name() + "'");
      return Error::success();
    }
    case InstKind::Builtin:
      return checkBuiltin(cast<BuiltinInst>(I));
    case InstKind::Br: {
      const auto &B = cast<BrInst>(I);
      if (B.isConditional() && !B.cond()->type().isBool())
        return fail("branch condition must be i1");
      if (!KnownBlocks.count(B.trueTarget()))
        return fail("branch to foreign block");
      if (B.isConditional() && !KnownBlocks.count(B.falseTarget()))
        return fail("branch to foreign block");
      return Error::success();
    }
    case InstKind::Ret: {
      const auto &R = cast<RetInst>(I);
      if (F.returnType().isVoid()) {
        if (R.hasValue())
          return fail("value returned from void function");
      } else {
        if (!R.hasValue())
          return fail("missing return value");
        if (R.value()->type() != F.returnType())
          return fail("return type mismatch");
      }
      return Error::success();
    }
    }
    accel_unreachable("unhandled instruction kind");
  }

  Error checkBuiltin(const BuiltinInst &B) {
    auto RequireArgs = [&](unsigned N) -> bool {
      return B.numOperands() == N;
    };
    switch (B.builtinKind()) {
    case BuiltinKind::GetGlobalId:
    case BuiltinKind::GetLocalId:
    case BuiltinKind::GetGroupId:
    case BuiltinKind::GetGlobalSize:
    case BuiltinKind::GetLocalSize:
    case BuiltinKind::GetNumGroups:
      if (!RequireArgs(1) || !isa<Constant>(B.operand(0)))
        return fail("work-item query needs a constant dimension");
      if (cast<Constant>(B.operand(0))->intValue() < 0 ||
          cast<Constant>(B.operand(0))->intValue() > 2)
        return fail("work-item dimension out of range");
      return Error::success();
    case BuiltinKind::GetWorkDim:
      return RequireArgs(0) ? Error::success()
                            : fail("get_work_dim takes no arguments");
    case BuiltinKind::Barrier:
      return RequireArgs(0) ? Error::success()
                            : fail("barrier takes no arguments");
    case BuiltinKind::Sqrt:
    case BuiltinKind::Rsqrt:
    case BuiltinKind::Sin:
    case BuiltinKind::Cos:
    case BuiltinKind::Exp:
    case BuiltinKind::Log:
    case BuiltinKind::Fabs:
    case BuiltinKind::Floor:
      if (!RequireArgs(1) || !B.operand(0)->type().isFloat())
        return fail("unary float builtin signature mismatch");
      return Error::success();
    case BuiltinKind::FMin:
    case BuiltinKind::FMax:
      if (!RequireArgs(2) || !B.operand(0)->type().isFloat() ||
          !B.operand(1)->type().isFloat())
        return fail("binary float builtin signature mismatch");
      return Error::success();
    case BuiltinKind::IMin:
    case BuiltinKind::IMax:
      if (!RequireArgs(2) || !B.operand(0)->type().isInt() ||
          B.operand(0)->type() != B.operand(1)->type())
        return fail("binary int builtin signature mismatch");
      return Error::success();
    case BuiltinKind::IAbs:
      if (!RequireArgs(1) || !B.operand(0)->type().isInt())
        return fail("abs expects an integer");
      return Error::success();
    case BuiltinKind::AtomicAdd:
    case BuiltinKind::AtomicSub:
    case BuiltinKind::AtomicMin:
    case BuiltinKind::AtomicMax:
    case BuiltinKind::AtomicXchg: {
      if (!RequireArgs(2))
        return fail("atomic builtin arity mismatch");
      const Type &PtrTy = B.operand(0)->type();
      if (!PtrTy.isPtr() || PtrTy.elemKind() != Type::Kind::I32)
        return fail("atomics require an i32 pointer");
      if (PtrTy.addrSpace() == AddrSpaceKind::Private)
        return fail("atomics require global or local memory");
      if (B.operand(1)->type().kind() != Type::Kind::I32)
        return fail("atomic operand must be i32");
      return Error::success();
    }
    case BuiltinKind::RtIsMaster:
      return RequireArgs(0) ? Error::success()
                            : fail("rt_is_master takes no arguments");
    case BuiltinKind::RtEnvInit:
    case BuiltinKind::RtSchedWGroup:
      if (!RequireArgs(2) || !B.operand(0)->type().isPtr() ||
          !B.operand(1)->type().isPtr())
        return fail("rt scheduling builtin signature mismatch");
      return Error::success();
    case BuiltinKind::RtGlobalId:
    case BuiltinKind::RtGroupId:
      if (!RequireArgs(3) || !B.operand(0)->type().isPtr() ||
          !B.operand(1)->type().isInt() || !isa<Constant>(B.operand(2)))
        return fail("rt id builtin signature mismatch");
      return Error::success();
    case BuiltinKind::RtGlobalSize:
    case BuiltinKind::RtNumGroups:
      if (!RequireArgs(2) || !B.operand(0)->type().isPtr() ||
          !isa<Constant>(B.operand(1)))
        return fail("rt size builtin signature mismatch");
      return Error::success();
    }
    accel_unreachable("unhandled builtin kind");
  }

  const Function &F;
  std::set<const BasicBlock *> KnownBlocks;
};

} // namespace

Error kir::verifyFunction(const Function &F) {
  return FunctionVerifier(F).run();
}

Error kir::verifyFunction(const Function &F, const VerifierOptions &Opts) {
  if (Error E = FunctionVerifier(F).run())
    return E;
  if (Opts.RejectDivergentBarriers && !F.isDeclaration()) {
    analysis::Cfg G(F);
    analysis::UniformityAnalysis UA(G);
    const auto &Bad = UA.divergentBarriers();
    if (!Bad.empty()) {
      const analysis::DivergentBarrier &DB = Bad.front();
      std::string Msg = "verifier: function '" + F.name() +
                        "': barrier in block '" +
                        DB.Barrier->parent()->name() +
                        "' under work-item-divergent control flow";
      if (DB.Barrier->line())
        Msg += " (line " + std::to_string(DB.Barrier->line()) + ")";
      return Error::failure(Msg);
    }
  }
  return Error::success();
}

Error kir::verifyModule(const Module &M) {
  for (const auto &F : M.functions())
    if (Error E = verifyFunction(*F))
      return E;
  return Error::success();
}

Error kir::verifyModule(const Module &M, const VerifierOptions &Opts) {
  for (const auto &F : M.functions())
    if (Error E = verifyFunction(*F, Opts))
      return E;
  return Error::success();
}
