//===- kir/Verifier.h - IR structural validation ----------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates structural and type invariants of KIR modules. Run after
/// MiniCL codegen and after every transform pass; a verifier failure
/// indicates a compiler bug, surfaced as a recoverable Error so the
/// OpenCL-style build call can report it to the application.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_VERIFIER_H
#define ACCEL_KIR_VERIFIER_H

#include "support/Error.h"

namespace accel {
namespace kir {

class Module;
class Function;

/// Optional strictness knobs layered on top of the structural checks.
struct VerifierOptions {
  /// Reject barriers that the uniformity analysis places under
  /// work-item-divergent control flow (a deadlock on real devices).
  /// Off by default: the dataflow analysis is conservative, and legacy
  /// callers only expect structural validation.
  bool RejectDivergentBarriers = false;
};

/// Checks one function. \returns a failure describing the first broken
/// invariant, or success.
Error verifyFunction(const Function &F);
Error verifyFunction(const Function &F, const VerifierOptions &Opts);

/// Checks every function in \p M.
Error verifyModule(const Module &M);
Error verifyModule(const Module &M, const VerifierOptions &Opts);

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_VERIFIER_H
