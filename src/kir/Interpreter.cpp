//===- kir/Interpreter.cpp - Functional kernel execution -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/Interpreter.h"

#include "kir/RtLayout.h"
#include "support/Casting.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <string>

using namespace accel;
using namespace accel::kir;

namespace {

// Pointer values carry their address space in the top two bits so the
// interpreter can route accesses to global, local, or private storage.
constexpr uint64_t TagShift = 62;
constexpr uint64_t OffsetMask = (1ULL << TagShift) - 1;

enum class Space : uint64_t { Global = 0, Local = 1, Private = 2 };

uint64_t makeAddr(Space S, uint64_t Offset) {
  return (static_cast<uint64_t>(S) << TagShift) | Offset;
}

Space addrSpaceOf(uint64_t Addr) {
  return static_cast<Space>(Addr >> TagShift);
}

uint64_t addrOffset(uint64_t Addr) { return Addr & OffsetMask; }

uint64_t canonicalizeI32(uint64_t Bits) {
  return static_cast<uint64_t>(
      static_cast<int64_t>(static_cast<int32_t>(Bits)));
}

float asF32(uint64_t Bits) {
  uint32_t I = static_cast<uint32_t>(Bits);
  float F;
  std::memcpy(&F, &I, 4);
  return F;
}

uint64_t fromF32(float F) {
  uint32_t I;
  std::memcpy(&I, &F, 4);
  return I;
}

/// One invocation record on a work-item's call stack.
struct Frame {
  const FlatFunction *FF = nullptr;
  uint32_t PC = 0;
  uint32_t RetDst = NoReg;
  size_t PrivateWatermark = 0;
  std::vector<uint64_t> Regs;
};

/// A single work item: call stack, private memory, and fixed ids.
struct WorkItem {
  std::vector<Frame> Stack;
  std::vector<uint8_t> PrivateMem;
  uint64_t LocalId[3] = {0, 0, 0};
  uint64_t GlobalIdBase[3] = {0, 0, 0};
  uint64_t LocalLinear = 0;
  bool Done = false;
  bool AtBarrier = false;
  uint64_t Steps = 0;
};

/// A resident work group: its work items plus local memory.
struct Group {
  uint64_t GroupId[3] = {0, 0, 0};
  uint64_t Linear = 0;
  std::vector<uint8_t> LocalMem;
  std::vector<WorkItem> WIs;
  uint64_t DynInsts = 0;
  bool Finished = false;
};

enum class SuspendKind { Done, Barrier, Trap };

/// Executes one kernel launch to completion.
class Machine {
public:
  Machine(DeviceMemory &GlobalMem, CodeCache &Cache, const Function &Kernel,
          const std::vector<uint64_t> &Args, const NDRangeCfg &Range,
          uint64_t MaxSteps, uint64_t MaxGroups)
      : GlobalMem(GlobalMem), Cache(Cache), KernelFF(Cache.get(Kernel)),
        Args(Args), Range(Range), MaxSteps(MaxSteps), MaxGroups(MaxGroups) {}

  Expected<ExecStats> run();

private:
  SuspendKind runWorkItem(Group &G, WorkItem &WI);
  SuspendKind execInst(Group &G, WorkItem &WI, Frame &Fr, const FlatInst &FI);

  std::unique_ptr<Group> makeGroup(uint64_t Linear);

  SuspendKind trap(const std::string &Why) {
    TrapMessage = Why;
    return SuspendKind::Trap;
  }

  static uint64_t opVal(const Frame &Fr, const FlatOperand &Op) {
    return Op.IsImm ? Op.Imm : Fr.Regs[Op.Reg];
  }

  // Typed memory access; returns false (and sets TrapMessage) on a
  // bounds violation.
  bool loadScalar(Group &G, WorkItem &WI, uint64_t Addr, Type::Kind Kind,
                  uint64_t &Out);
  bool storeScalar(Group &G, WorkItem &WI, uint64_t Addr, Type::Kind Kind,
                   uint64_t Bits);
  uint8_t *resolveSpan(Group &G, WorkItem &WI, uint64_t Addr, unsigned Size);

  DeviceMemory &GlobalMem;
  CodeCache &Cache;
  const FlatFunction &KernelFF;
  const std::vector<uint64_t> &Args;
  const NDRangeCfg &Range;
  uint64_t MaxSteps;
  uint64_t MaxGroups;
  ExecStats Stats;
  std::string TrapMessage;
};

std::unique_ptr<Group> Machine::makeGroup(uint64_t Linear) {
  auto G = std::make_unique<Group>();
  G->Linear = Linear;
  uint64_t NG0 = Range.numGroups(0);
  uint64_t NG1 = Range.numGroups(1);
  G->GroupId[0] = Linear % NG0;
  G->GroupId[1] = (Linear / NG0) % NG1;
  G->GroupId[2] = Linear / (NG0 * NG1);
  G->LocalMem.assign(KernelFF.LocalBytes, 0);

  uint64_t WGSize = Range.workGroupSize();
  G->WIs.resize(WGSize);
  for (uint64_t L = 0; L != WGSize; ++L) {
    WorkItem &WI = G->WIs[L];
    WI.LocalLinear = L;
    WI.LocalId[0] = L % Range.LocalSize[0];
    WI.LocalId[1] = (L / Range.LocalSize[0]) % Range.LocalSize[1];
    WI.LocalId[2] = L / (Range.LocalSize[0] * Range.LocalSize[1]);
    for (unsigned D = 0; D != 3; ++D)
      WI.GlobalIdBase[D] = G->GroupId[D] * Range.LocalSize[D];
    Frame Fr;
    Fr.FF = &KernelFF;
    Fr.Regs.assign(KernelFF.NumRegs, 0);
    for (size_t A = 0; A != Args.size(); ++A)
      Fr.Regs[A] = Args[A];
    WI.Stack.push_back(std::move(Fr));
  }
  return G;
}

uint8_t *Machine::resolveSpan(Group &G, WorkItem &WI, uint64_t Addr,
                              unsigned Size) {
  uint64_t Off = addrOffset(Addr);
  switch (addrSpaceOf(Addr)) {
  case Space::Global:
    // Handled separately through DeviceMemory; not reached.
    return nullptr;
  case Space::Local:
    if (Off + Size > G.LocalMem.size()) {
      TrapMessage = "local memory access out of bounds";
      return nullptr;
    }
    return G.LocalMem.data() + Off;
  case Space::Private:
    if (Off + Size > WI.PrivateMem.size()) {
      TrapMessage = "private memory access out of bounds";
      return nullptr;
    }
    return WI.PrivateMem.data() + Off;
  }
  TrapMessage = "access through invalid pointer tag";
  return nullptr;
}

bool Machine::loadScalar(Group &G, WorkItem &WI, uint64_t Addr,
                         Type::Kind Kind, uint64_t &Out) {
  unsigned Size = Type::scalarSizeBytes(Kind);
  if (addrSpaceOf(Addr) == Space::Global) {
    uint64_t Off = addrOffset(Addr);
    if (!GlobalMem.inBounds(Off, Size)) {
      TrapMessage = "global memory load out of bounds (addr " +
                    std::to_string(Off) + ")";
      return false;
    }
    if (Size == 8)
      Out = GlobalMem.readU64(Off);
    else
      Out = GlobalMem.readU32(Off);
  } else {
    const uint8_t *Ptr = resolveSpan(G, WI, Addr, Size);
    if (!Ptr)
      return false;
    if (Size == 8) {
      std::memcpy(&Out, Ptr, 8);
    } else {
      uint32_t V;
      std::memcpy(&V, Ptr, 4);
      Out = V;
    }
  }
  if (Kind == Type::Kind::I32)
    Out = canonicalizeI32(Out);
  return true;
}

bool Machine::storeScalar(Group &G, WorkItem &WI, uint64_t Addr,
                          Type::Kind Kind, uint64_t Bits) {
  unsigned Size = Type::scalarSizeBytes(Kind);
  if (addrSpaceOf(Addr) == Space::Global) {
    uint64_t Off = addrOffset(Addr);
    if (!GlobalMem.inBounds(Off, Size)) {
      TrapMessage = "global memory store out of bounds (addr " +
                    std::to_string(Off) + ")";
      return false;
    }
    if (Size == 8)
      GlobalMem.writeU64(Off, Bits);
    else
      GlobalMem.writeU32(Off, static_cast<uint32_t>(Bits));
    return true;
  }
  uint8_t *Ptr = resolveSpan(G, WI, Addr, Size);
  if (!Ptr)
    return false;
  if (Size == 8) {
    std::memcpy(Ptr, &Bits, 8);
  } else {
    uint32_t V = static_cast<uint32_t>(Bits);
    std::memcpy(Ptr, &V, 4);
  }
  return true;
}

SuspendKind Machine::runWorkItem(Group &G, WorkItem &WI) {
  for (;;) {
    if (WI.Stack.empty()) {
      WI.Done = true;
      return SuspendKind::Done;
    }
    Frame &Fr = WI.Stack.back();
    if (Fr.PC >= Fr.FF->Code.size())
      return trap("fell off the end of function '" + Fr.FF->F->name() + "'");
    const FlatInst &FI = Fr.FF->Code[Fr.PC];
    ++Fr.PC;
    ++WI.Steps;
    ++G.DynInsts;
    ++Stats.InstsExecuted;
    if (WI.Steps > MaxSteps)
      return trap("work item exceeded step budget in '" +
                  Fr.FF->F->name() + "'");
    SuspendKind S = execInst(G, WI, Fr, FI);
    if (S == SuspendKind::Barrier || S == SuspendKind::Trap)
      return S;
    if (WI.Done)
      return SuspendKind::Done;
  }
}

SuspendKind Machine::execInst(Group &G, WorkItem &WI, Frame &Fr,
                              const FlatInst &FI) {
  const Instruction &I = *FI.I;
  auto SetDst = [&](uint64_t V) {
    if (FI.Dst != NoReg)
      Fr.Regs[FI.Dst] = V;
  };

  switch (I.instKind()) {
  case InstKind::Binary: {
    const auto &B = cast<BinaryInst>(I);
    uint64_t L = opVal(Fr, FI.Ops[0]);
    uint64_t R = opVal(Fr, FI.Ops[1]);
    if (isFloatBinOp(B.op())) {
      float A = asF32(L), C = asF32(R), Out = 0;
      switch (B.op()) {
      case BinOpKind::FAdd:
        Out = A + C;
        break;
      case BinOpKind::FSub:
        Out = A - C;
        break;
      case BinOpKind::FMul:
        Out = A * C;
        break;
      case BinOpKind::FDiv:
        Out = A / C;
        break;
      default:
        accel_unreachable("non-float op in float path");
      }
      SetDst(fromF32(Out));
      return SuspendKind::Done;
    }
    bool Is32 = I.type().kind() == Type::Kind::I32;
    uint64_t Out = 0;
    switch (B.op()) {
    case BinOpKind::Add:
      Out = L + R;
      break;
    case BinOpKind::Sub:
      Out = L - R;
      break;
    case BinOpKind::Mul:
      Out = L * R;
      break;
    case BinOpKind::SDiv:
    case BinOpKind::SRem: {
      int64_t Num = static_cast<int64_t>(L);
      int64_t Den = static_cast<int64_t>(R);
      if (Den == 0)
        return trap("integer division by zero in '" + Fr.FF->F->name() +
                    "'");
      if (Den == -1) {
        // Avoid signed-overflow UB on INT_MIN / -1; wraps like hardware.
        Out = B.op() == BinOpKind::SDiv ? (0 - L) : 0;
      } else {
        Out = static_cast<uint64_t>(B.op() == BinOpKind::SDiv ? Num / Den
                                                              : Num % Den);
      }
      break;
    }
    case BinOpKind::And:
      Out = L & R;
      break;
    case BinOpKind::Or:
      Out = L | R;
      break;
    case BinOpKind::Xor:
      Out = L ^ R;
      break;
    case BinOpKind::Shl:
      Out = L << (R & (Is32 ? 31 : 63));
      break;
    case BinOpKind::AShr:
      Out = static_cast<uint64_t>(static_cast<int64_t>(L) >>
                                  (R & (Is32 ? 31 : 63)));
      break;
    case BinOpKind::LShr:
      Out = (Is32 ? (L & 0xFFFFFFFFULL) : L) >> (R & (Is32 ? 31 : 63));
      break;
    default:
      accel_unreachable("float op in int path");
    }
    SetDst(Is32 ? canonicalizeI32(Out) : Out);
    return SuspendKind::Done;
  }

  case InstKind::Cmp: {
    const auto &C = cast<CmpInst>(I);
    uint64_t L = opVal(Fr, FI.Ops[0]);
    uint64_t R = opVal(Fr, FI.Ops[1]);
    bool Out = false;
    if (isFloatCmpPred(C.pred())) {
      float A = asF32(L), B = asF32(R);
      switch (C.pred()) {
      case CmpPred::FOEQ:
        Out = A == B;
        break;
      case CmpPred::FONE:
        Out = A != B;
        break;
      case CmpPred::FOLT:
        Out = A < B;
        break;
      case CmpPred::FOLE:
        Out = A <= B;
        break;
      case CmpPred::FOGT:
        Out = A > B;
        break;
      case CmpPred::FOGE:
        Out = A >= B;
        break;
      default:
        accel_unreachable("int pred in float path");
      }
    } else {
      bool Is32 = C.lhs()->type().kind() == Type::Kind::I32;
      int64_t A = static_cast<int64_t>(L), B = static_cast<int64_t>(R);
      uint64_t UA = Is32 ? (L & 0xFFFFFFFFULL) : L;
      uint64_t UB = Is32 ? (R & 0xFFFFFFFFULL) : R;
      switch (C.pred()) {
      case CmpPred::EQ:
        Out = A == B;
        break;
      case CmpPred::NE:
        Out = A != B;
        break;
      case CmpPred::SLT:
        Out = A < B;
        break;
      case CmpPred::SLE:
        Out = A <= B;
        break;
      case CmpPred::SGT:
        Out = A > B;
        break;
      case CmpPred::SGE:
        Out = A >= B;
        break;
      case CmpPred::ULT:
        Out = UA < UB;
        break;
      case CmpPred::UGE:
        Out = UA >= UB;
        break;
      default:
        accel_unreachable("float pred in int path");
      }
    }
    SetDst(Out ? 1 : 0);
    return SuspendKind::Done;
  }

  case InstKind::Select: {
    uint64_t Cond = opVal(Fr, FI.Ops[0]);
    SetDst(Cond ? opVal(Fr, FI.Ops[1]) : opVal(Fr, FI.Ops[2]));
    return SuspendKind::Done;
  }

  case InstKind::Cast: {
    const auto &C = cast<CastInst>(I);
    uint64_t V = opVal(Fr, FI.Ops[0]);
    switch (C.castKind()) {
    case CastKind::SExt:
      SetDst(V); // i32 values are kept sign-extended already.
      break;
    case CastKind::Trunc:
      SetDst(canonicalizeI32(V));
      break;
    case CastKind::SIToFP:
      SetDst(fromF32(static_cast<float>(static_cast<int64_t>(V))));
      break;
    case CastKind::FPToSI: {
      float F = asF32(V);
      int64_t Out;
      if (std::isnan(F))
        Out = 0;
      else if (F >= 9.2233715e18f)
        Out = INT64_MAX;
      else if (F <= -9.2233715e18f)
        Out = INT64_MIN;
      else
        Out = static_cast<int64_t>(F);
      if (C.type().kind() == Type::Kind::I32)
        SetDst(canonicalizeI32(static_cast<uint64_t>(Out)));
      else
        SetDst(static_cast<uint64_t>(Out));
      break;
    }
    case CastKind::ZExtBool:
      SetDst(V & 1);
      break;
    }
    return SuspendKind::Done;
  }

  case InstKind::Alloca: {
    const auto &A = cast<AllocaInst>(I);
    uint64_t Bytes = A.count() * Type::scalarSizeBytes(A.elemKind());
    size_t Offset = (WI.PrivateMem.size() + 7) & ~static_cast<size_t>(7);
    WI.PrivateMem.resize(Offset + Bytes, 0);
    SetDst(makeAddr(Space::Private, Offset));
    return SuspendKind::Done;
  }

  case InstKind::LocalAddr: {
    const auto &L = cast<LocalAddrInst>(I);
    if (L.slotIndex() >= Fr.FF->LocalSlotOffsets.size())
      return trap("local slot out of range");
    SetDst(makeAddr(Space::Local, Fr.FF->LocalSlotOffsets[L.slotIndex()]));
    return SuspendKind::Done;
  }

  case InstKind::Load: {
    uint64_t Out;
    ++Stats.MemoryOps;
    if (!loadScalar(G, WI, opVal(Fr, FI.Ops[0]), I.type().kind(), Out))
      return SuspendKind::Trap;
    SetDst(Out);
    return SuspendKind::Done;
  }

  case InstKind::Store: {
    const auto &S = cast<StoreInst>(I);
    Type::Kind Kind = S.value()->type().kind();
    ++Stats.MemoryOps;
    if (!storeScalar(G, WI, opVal(Fr, FI.Ops[0]), Kind,
                     opVal(Fr, FI.Ops[1])))
      return SuspendKind::Trap;
    return SuspendKind::Done;
  }

  case InstKind::Gep: {
    const auto &Ptr = cast<GepInst>(I);
    uint64_t Base = opVal(Fr, FI.Ops[0]);
    int64_t Index = static_cast<int64_t>(opVal(Fr, FI.Ops[1]));
    uint64_t Elem = Ptr.type().elemSizeBytes();
    SetDst(Base + static_cast<uint64_t>(Index) * Elem);
    return SuspendKind::Done;
  }

  case InstKind::Call: {
    const auto &C = cast<CallInst>(I);
    if (WI.Stack.size() >= 64)
      return trap("call stack overflow (recursion?) in '" +
                  Fr.FF->F->name() + "'");
    const FlatFunction &CalleeFF = Cache.get(*C.callee());
    Frame NewFr;
    NewFr.FF = &CalleeFF;
    NewFr.RetDst = FI.Dst;
    NewFr.PrivateWatermark = WI.PrivateMem.size();
    NewFr.Regs.assign(CalleeFF.NumRegs, 0);
    for (size_t A = 0; A != FI.Ops.size(); ++A)
      NewFr.Regs[A] = opVal(Fr, FI.Ops[A]);
    // Note: pushing may invalidate Fr; do not touch it afterwards.
    WI.Stack.push_back(std::move(NewFr));
    return SuspendKind::Done;
  }

  case InstKind::Builtin: {
    const auto &B = cast<BuiltinInst>(I);
    auto Dim = [&](unsigned OpIdx) {
      return static_cast<unsigned>(opVal(Fr, FI.Ops[OpIdx]));
    };
    using namespace rtlayout;
    switch (B.builtinKind()) {
    case BuiltinKind::GetGlobalId:
      SetDst(WI.GlobalIdBase[Dim(0)] + WI.LocalId[Dim(0)]);
      return SuspendKind::Done;
    case BuiltinKind::GetLocalId:
      SetDst(WI.LocalId[Dim(0)]);
      return SuspendKind::Done;
    case BuiltinKind::GetGroupId:
      SetDst(G.GroupId[Dim(0)]);
      return SuspendKind::Done;
    case BuiltinKind::GetGlobalSize:
      SetDst(Range.GlobalSize[Dim(0)]);
      return SuspendKind::Done;
    case BuiltinKind::GetLocalSize:
      SetDst(Range.LocalSize[Dim(0)]);
      return SuspendKind::Done;
    case BuiltinKind::GetNumGroups:
      SetDst(Range.numGroups(Dim(0)));
      return SuspendKind::Done;
    case BuiltinKind::GetWorkDim:
      SetDst(Range.WorkDim);
      return SuspendKind::Done;
    case BuiltinKind::Barrier:
      ++Stats.Barriers;
      WI.AtBarrier = true;
      return SuspendKind::Barrier;
    case BuiltinKind::Sqrt:
      ++Stats.MathOps;
      SetDst(fromF32(std::sqrt(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::Rsqrt:
      ++Stats.MathOps;
      SetDst(fromF32(1.0f / std::sqrt(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::Sin:
      ++Stats.MathOps;
      SetDst(fromF32(std::sin(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::Cos:
      ++Stats.MathOps;
      SetDst(fromF32(std::cos(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::Exp:
      ++Stats.MathOps;
      SetDst(fromF32(std::exp(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::Log:
      ++Stats.MathOps;
      SetDst(fromF32(std::log(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::Fabs:
      SetDst(fromF32(std::fabs(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::FMin:
      SetDst(fromF32(std::fmin(asF32(opVal(Fr, FI.Ops[0])),
                               asF32(opVal(Fr, FI.Ops[1])))));
      return SuspendKind::Done;
    case BuiltinKind::FMax:
      SetDst(fromF32(std::fmax(asF32(opVal(Fr, FI.Ops[0])),
                               asF32(opVal(Fr, FI.Ops[1])))));
      return SuspendKind::Done;
    case BuiltinKind::Floor:
      SetDst(fromF32(std::floor(asF32(opVal(Fr, FI.Ops[0])))));
      return SuspendKind::Done;
    case BuiltinKind::IMin: {
      int64_t A = static_cast<int64_t>(opVal(Fr, FI.Ops[0]));
      int64_t C = static_cast<int64_t>(opVal(Fr, FI.Ops[1]));
      SetDst(static_cast<uint64_t>(A < C ? A : C));
      return SuspendKind::Done;
    }
    case BuiltinKind::IMax: {
      int64_t A = static_cast<int64_t>(opVal(Fr, FI.Ops[0]));
      int64_t C = static_cast<int64_t>(opVal(Fr, FI.Ops[1]));
      SetDst(static_cast<uint64_t>(A > C ? A : C));
      return SuspendKind::Done;
    }
    case BuiltinKind::IAbs: {
      int64_t A = static_cast<int64_t>(opVal(Fr, FI.Ops[0]));
      uint64_t Out = static_cast<uint64_t>(A < 0 ? -A : A);
      SetDst(I.type().kind() == Type::Kind::I32 ? canonicalizeI32(Out)
                                                : Out);
      return SuspendKind::Done;
    }
    case BuiltinKind::AtomicAdd:
    case BuiltinKind::AtomicSub:
    case BuiltinKind::AtomicMin:
    case BuiltinKind::AtomicMax:
    case BuiltinKind::AtomicXchg: {
      uint64_t Addr = opVal(Fr, FI.Ops[0]);
      int32_t Operand = static_cast<int32_t>(opVal(Fr, FI.Ops[1]));
      uint64_t OldBits;
      if (!loadScalar(G, WI, Addr, Type::Kind::I32, OldBits))
        return SuspendKind::Trap;
      int32_t Old = static_cast<int32_t>(OldBits);
      int32_t New = Old;
      switch (B.builtinKind()) {
      case BuiltinKind::AtomicAdd:
        New = static_cast<int32_t>(static_cast<uint32_t>(Old) +
                                   static_cast<uint32_t>(Operand));
        break;
      case BuiltinKind::AtomicSub:
        New = static_cast<int32_t>(static_cast<uint32_t>(Old) -
                                   static_cast<uint32_t>(Operand));
        break;
      case BuiltinKind::AtomicMin:
        New = Old < Operand ? Old : Operand;
        break;
      case BuiltinKind::AtomicMax:
        New = Old > Operand ? Old : Operand;
        break;
      case BuiltinKind::AtomicXchg:
        New = Operand;
        break;
      default:
        accel_unreachable("non-atomic in atomic path");
      }
      if (!storeScalar(G, WI, Addr, Type::Kind::I32,
                       static_cast<uint32_t>(New)))
        return SuspendKind::Trap;
      ++Stats.AtomicOps;
      SetDst(canonicalizeI32(static_cast<uint32_t>(Old)));
      return SuspendKind::Done;
    }
    case BuiltinKind::RtIsMaster:
      SetDst(WI.LocalLinear == 0 ? 1 : 0);
      return SuspendKind::Done;
    case BuiltinKind::RtEnvInit: {
      uint64_t Sd = opVal(Fr, FI.Ops[1]);
      if (!storeScalar(G, WI, Sd + 8 * SDW_Status, Type::Kind::I64,
                       RUN_CONTINUE) ||
          !storeScalar(G, WI, Sd + 8 * SDW_Base, Type::Kind::I64, 0) ||
          !storeScalar(G, WI, Sd + 8 * SDW_End, Type::Kind::I64, 0))
        return SuspendKind::Trap;
      return SuspendKind::Done;
    }
    case BuiltinKind::RtSchedWGroup: {
      uint64_t Rt = addrOffset(opVal(Fr, FI.Ops[0]));
      uint64_t Sd = opVal(Fr, FI.Ops[1]);
      if (!GlobalMem.inBounds(Rt, rtlayout::virtualNDRangeBytes()))
        return trap("rt_sched_wgroup: bad Virtual NDRange pointer");
      if (GlobalMem.readU64(Rt + 8 * RTW_Magic) != VirtualNDRangeMagic)
        return trap("rt_sched_wgroup: Virtual NDRange magic mismatch");
      int64_t Total =
          static_cast<int64_t>(GlobalMem.readU64(Rt + 8 * RTW_TotalGroups));
      int64_t Batch =
          static_cast<int64_t>(GlobalMem.readU64(Rt + 8 * RTW_Batch));
      Expected<int64_t> OldOrErr =
          GlobalMem.atomicAddI64(Rt + 8 * RTW_Next, Batch);
      if (!OldOrErr)
        return trap("rt_sched_wgroup: " + OldOrErr.message());
      int64_t Old = *OldOrErr;
      ++Stats.AtomicOps;
      int64_t Status, Base = 0, End = 0;
      if (Old >= Total) {
        Status = RUN_TERMINATE;
      } else {
        Status = RUN_CONTINUE;
        Base = Old;
        End = Old + Batch < Total ? Old + Batch : Total;
      }
      if (!storeScalar(G, WI, Sd + 8 * SDW_Status, Type::Kind::I64,
                       static_cast<uint64_t>(Status)) ||
          !storeScalar(G, WI, Sd + 8 * SDW_Base, Type::Kind::I64,
                       static_cast<uint64_t>(Base)) ||
          !storeScalar(G, WI, Sd + 8 * SDW_End, Type::Kind::I64,
                       static_cast<uint64_t>(End)))
        return SuspendKind::Trap;
      return SuspendKind::Done;
    }
    case BuiltinKind::RtGlobalId:
    case BuiltinKind::RtGroupId: {
      uint64_t Rt = addrOffset(opVal(Fr, FI.Ops[0]));
      uint64_t Hdlr = opVal(Fr, FI.Ops[1]);
      unsigned D = Dim(2);
      if (!GlobalMem.inBounds(Rt, rtlayout::virtualNDRangeBytes()))
        return trap("rt id builtin: bad Virtual NDRange pointer");
      uint64_t NG0 = GlobalMem.readU64(Rt + 8 * RTW_NumGroups0);
      uint64_t NG1 = GlobalMem.readU64(Rt + 8 * RTW_NumGroups1);
      uint64_t Coord;
      if (D == 0)
        Coord = Hdlr % NG0;
      else if (D == 1)
        Coord = (Hdlr / NG0) % NG1;
      else
        Coord = Hdlr / (NG0 * NG1);
      if (B.builtinKind() == BuiltinKind::RtGroupId) {
        SetDst(Coord);
      } else {
        uint64_t LS = GlobalMem.readU64(Rt + 8 * (RTW_LocalSize0 + D));
        SetDst(Coord * LS + WI.LocalId[D]);
      }
      return SuspendKind::Done;
    }
    case BuiltinKind::RtGlobalSize: {
      uint64_t Rt = addrOffset(opVal(Fr, FI.Ops[0]));
      SetDst(GlobalMem.readU64(Rt + 8 * (RTW_GlobalSize0 + Dim(1))));
      return SuspendKind::Done;
    }
    case BuiltinKind::RtNumGroups: {
      uint64_t Rt = addrOffset(opVal(Fr, FI.Ops[0]));
      SetDst(GlobalMem.readU64(Rt + 8 * (RTW_NumGroups0 + Dim(1))));
      return SuspendKind::Done;
    }
    }
    accel_unreachable("unhandled builtin");
  }

  case InstKind::Br: {
    const auto &Br = cast<BrInst>(I);
    if (!Br.isConditional()) {
      Fr.PC = FI.BrTrue;
    } else {
      Fr.PC = opVal(Fr, FI.Ops[0]) ? FI.BrTrue : FI.BrFalse;
    }
    return SuspendKind::Done;
  }

  case InstKind::Ret: {
    uint64_t RetVal = FI.Ops.empty() ? 0 : opVal(Fr, FI.Ops[0]);
    uint32_t RetDst = Fr.RetDst;
    size_t Watermark = Fr.PrivateWatermark;
    bool HadValue = !FI.Ops.empty();
    WI.Stack.pop_back();
    if (WI.Stack.empty()) {
      WI.Done = true;
      return SuspendKind::Done;
    }
    WI.PrivateMem.resize(Watermark);
    if (HadValue && RetDst != NoReg)
      WI.Stack.back().Regs[RetDst] = RetVal;
    return SuspendKind::Done;
  }
  }
  accel_unreachable("unhandled instruction kind");
}

Expected<ExecStats> Machine::run() {
  uint64_t Total = Range.totalGroups();
  Stats.GroupInsts.assign(Total, 0);
  if (Total == 0)
    return Stats;

  std::vector<std::unique_ptr<Group>> Active;
  uint64_t NextGroup = 0;
  uint64_t Completed = 0;

  while (Completed < Total) {
    while (Active.size() < MaxGroups && NextGroup < Total)
      Active.push_back(makeGroup(NextGroup++));

    for (auto &G : Active) {
      bool AllDone = true;
      for (WorkItem &WI : G->WIs) {
        if (WI.Done)
          continue;
        SuspendKind S = runWorkItem(*G, WI);
        if (S == SuspendKind::Trap)
          return makeError("kernel trap in group " +
                           std::to_string(G->Linear) + ": " + TrapMessage);
        if (S == SuspendKind::Barrier)
          AllDone = false;
      }
      if (AllDone) {
        Stats.GroupInsts[G->Linear] = G->DynInsts;
        G->Finished = true;
        ++Completed;
        continue;
      }
      // Every live work item is suspended at a barrier. OpenCL requires
      // barriers to be reached by all work items of the group.
      for (WorkItem &WI : G->WIs) {
        if (WI.Done)
          return makeError(
              "barrier divergence: work item finished while others wait "
              "(group " +
              std::to_string(G->Linear) + ")");
        WI.AtBarrier = false;
      }
    }

    std::erase_if(Active,
                  [](const std::unique_ptr<Group> &G) { return G->Finished; });
  }
  return Stats;
}

} // namespace

Expected<ExecStats> Interpreter::run(const Function &Kernel,
                                     const std::vector<uint64_t> &Args,
                                     const NDRangeCfg &Range) {
  assert(Kernel.isKernel() && "launching a non-kernel function");
  assert(Args.size() == Kernel.numArguments() && "launch arity mismatch");
  for (unsigned D = 0; D != 3; ++D) {
    assert(Range.LocalSize[D] > 0 && "zero local size");
    assert(Range.GlobalSize[D] % Range.LocalSize[D] == 0 &&
           "global size not divisible by local size");
  }
  Machine M(GlobalMem, Cache, Kernel, Args, Range, MaxSteps, MaxGroups);
  return M.run();
}
