//===- kir/DeviceMemory.h - Simulated device global memory ------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-addressable simulated device (global) memory with a first-fit
/// allocator. OpenCL buffers, Virtual NDRange descriptors, and kernel
/// atomics all live here. Single-threaded by construction; "atomic"
/// operations are atomic with respect to interleaved work-item execution
/// in the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_DEVICEMEMORY_H
#define ACCEL_KIR_DEVICEMEMORY_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <vector>

namespace accel {
namespace kir {

/// Simulated global memory of one accelerator.
class DeviceMemory {
public:
  /// Creates a memory of \p CapacityBytes bytes.
  explicit DeviceMemory(uint64_t CapacityBytes);

  /// Allocates \p Size bytes (8-byte aligned). \returns the device
  /// address, or an error when memory is exhausted.
  Expected<uint64_t> allocate(uint64_t Size);

  /// Releases the allocation starting at \p Addr (must be a live
  /// allocation address).
  void release(uint64_t Addr);

  /// \returns bytes currently allocated.
  uint64_t usedBytes() const { return Used; }

  /// \returns total capacity in bytes.
  uint64_t capacityBytes() const { return Capacity; }

  /// \returns true when [Addr, Addr+Size) lies within the memory.
  bool inBounds(uint64_t Addr, uint64_t Size) const {
    return Addr != 0 && Addr + Size <= Capacity && Addr + Size >= Addr;
  }

  // Typed accessors. Callers must bounds-check via inBounds first (the
  // interpreter turns violations into kernel traps); these assert.
  uint32_t readU32(uint64_t Addr) const;
  void writeU32(uint64_t Addr, uint32_t Value);
  uint64_t readU64(uint64_t Addr) const;
  void writeU64(uint64_t Addr, uint64_t Value);

  /// Fetch-add on an i64 cell; \returns the previous value, or a
  /// diagnostic when \p Addr is not 8-byte aligned (real devices fault
  /// or silently tear on unaligned atomics — neither is acceptable in
  /// a simulator).
  Expected<int64_t> atomicAddI64(uint64_t Addr, int64_t Delta);

  /// Fetch-op on an i32 cell; \returns the previous value, or a
  /// diagnostic when \p Addr is not 4-byte aligned.
  Expected<int32_t> atomicRmwI32(uint64_t Addr, int32_t Operand,
                                 int32_t (*Op)(int32_t, int32_t));

  /// Bulk host<->device transfer helpers (used by the OpenCL layer).
  void copyIn(uint64_t Addr, const void *Src, uint64_t Size);
  void copyOut(uint64_t Addr, void *Dst, uint64_t Size) const;

private:
  uint64_t Capacity;
  uint64_t Used = 0;
  std::vector<uint8_t> Storage;
  // Live allocations: address -> size.
  std::map<uint64_t, uint64_t> Allocations;
  // Free regions: address -> size (coalesced).
  std::map<uint64_t, uint64_t> FreeList;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_DEVICEMEMORY_H
