//===- kir/Instructions.h - Kernel IR instruction set -----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KIR instruction hierarchy. Instructions are owned by their basic
/// block, reference operands as Value pointers, and are discriminated by
/// InstKind for isa/cast/dyn_cast. The set is deliberately small: enough
/// to express the Parboil-like workloads and the accelOS scheduling
/// transform (paper Fig. 8), no more.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_INSTRUCTIONS_H
#define ACCEL_KIR_INSTRUCTIONS_H

#include "kir/Value.h"
#include "support/Casting.h"

#include <cassert>
#include <vector>

namespace accel {
namespace kir {

class BasicBlock;
class Function;

/// Discriminator for the Instruction hierarchy.
enum class InstKind : uint8_t {
  Binary,
  Cmp,
  Select,
  Cast,
  Alloca,
  LocalAddr,
  Load,
  Store,
  Gep,
  Call,
  Builtin,
  Br,
  Ret
};

/// Base class for all KIR instructions.
class Instruction : public Value {
public:
  InstKind instKind() const { return IKind; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }

  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }

  const std::vector<Value *> &operands() const { return Operands; }

  /// \returns true if this instruction ends a basic block.
  bool isTerminator() const {
    return IKind == InstKind::Br || IKind == InstKind::Ret;
  }

  /// Source line this instruction was lowered from (0 = unknown). Set
  /// by the MiniCL code generator so analysis diagnostics can point at
  /// the offending source statement.
  unsigned line() const { return Line; }
  void setLine(unsigned L) { Line = L; }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::Instruction;
  }

protected:
  Instruction(InstKind IKind, Type Ty, std::vector<Value *> Operands)
      : Value(ValueKind::Instruction, Ty), IKind(IKind),
        Operands(std::move(Operands)) {}

private:
  InstKind IKind;
  std::vector<Value *> Operands;
  BasicBlock *Parent = nullptr;
  unsigned Line = 0;
};

/// Two's-complement and IEEE binary operators.
enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  LShr,
  FAdd,
  FSub,
  FMul,
  FDiv
};

/// \returns the printable mnemonic for \p Op.
const char *binOpName(BinOpKind Op);

/// \returns true when \p Op operates on f32 values.
inline bool isFloatBinOp(BinOpKind Op) {
  return Op == BinOpKind::FAdd || Op == BinOpKind::FSub ||
         Op == BinOpKind::FMul || Op == BinOpKind::FDiv;
}

class BinaryInst : public Instruction {
public:
  BinaryInst(BinOpKind Op, Value *LHS, Value *RHS)
      : Instruction(InstKind::Binary, LHS->type(), {LHS, RHS}), Op(Op) {}

  BinOpKind op() const { return Op; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Binary;
  }

private:
  BinOpKind Op;
};

/// Comparison predicates; integer predicates are signed unless noted.
enum class CmpPred : uint8_t {
  EQ,
  NE,
  SLT,
  SLE,
  SGT,
  SGE,
  ULT,
  UGE,
  FOEQ,
  FONE,
  FOLT,
  FOLE,
  FOGT,
  FOGE
};

/// \returns the printable mnemonic for \p Pred.
const char *cmpPredName(CmpPred Pred);

/// \returns true when \p Pred compares f32 values.
inline bool isFloatCmpPred(CmpPred Pred) {
  return Pred >= CmpPred::FOEQ;
}

class CmpInst : public Instruction {
public:
  CmpInst(CmpPred Pred, Value *LHS, Value *RHS)
      : Instruction(InstKind::Cmp, Type::i1(), {LHS, RHS}), Pred(Pred) {}

  CmpPred pred() const { return Pred; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Cmp;
  }

private:
  CmpPred Pred;
};

class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueVal, Value *FalseVal)
      : Instruction(InstKind::Select, TrueVal->type(),
                    {Cond, TrueVal, FalseVal}) {}

  Value *cond() const { return operand(0); }
  Value *trueValue() const { return operand(1); }
  Value *falseValue() const { return operand(2); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Select;
  }
};

/// Scalar conversions.
enum class CastKind : uint8_t {
  SExt,   ///< i32 -> i64 sign extension.
  Trunc,  ///< i64 -> i32 truncation.
  SIToFP, ///< signed int -> f32.
  FPToSI, ///< f32 -> signed int (toward zero).
  ZExtBool ///< i1 -> i32 zero extension.
};

/// \returns the printable mnemonic for \p CK.
const char *castKindName(CastKind CK);

class CastInst : public Instruction {
public:
  CastInst(CastKind CK, Value *Src, Type DstTy)
      : Instruction(InstKind::Cast, DstTy, {Src}), CK(CK) {}

  CastKind castKind() const { return CK; }
  Value *src() const { return operand(0); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Cast;
  }

private:
  CastKind CK;
};

/// Reserves \p count() scalars of private (per-work-item) storage and
/// yields a private pointer to the first element.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type::Kind ElemKind, uint64_t Count)
      : Instruction(InstKind::Alloca,
                    Type::ptr(ElemKind, AddrSpaceKind::Private), {}),
        ElemKind(ElemKind), Count(Count) {}

  Type::Kind elemKind() const { return ElemKind; }
  uint64_t count() const { return Count; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Alloca;
  }

private:
  Type::Kind ElemKind;
  uint64_t Count;
};

/// Yields the local-memory address of one of the parent function's
/// local-array declarations (see Function::LocalAlloc). The accelOS
/// transform hoists these declarations into the scheduling kernel
/// (paper Sec. 6.2 "Local Data Hoisting") and rewires these instructions
/// to the hoisted slots.
class LocalAddrInst : public Instruction {
public:
  LocalAddrInst(Type::Kind ElemKind, unsigned SlotIndex)
      : Instruction(InstKind::LocalAddr,
                    Type::ptr(ElemKind, AddrSpaceKind::Local), {}),
        SlotIndex(SlotIndex) {}

  unsigned slotIndex() const { return SlotIndex; }
  void setSlotIndex(unsigned NewIndex) { SlotIndex = NewIndex; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::LocalAddr;
  }

private:
  unsigned SlotIndex;
};

class LoadInst : public Instruction {
public:
  explicit LoadInst(Value *Ptr)
      : Instruction(InstKind::Load, Type::scalar(Ptr->type().elemKind()),
                    {Ptr}) {}

  Value *pointer() const { return operand(0); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Load;
  }
};

class StoreInst : public Instruction {
public:
  StoreInst(Value *Ptr, Value *Val)
      : Instruction(InstKind::Store, Type::voidTy(), {Ptr, Val}) {}

  Value *pointer() const { return operand(0); }
  Value *value() const { return operand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Store;
  }
};

/// Element-typed pointer arithmetic: yields Ptr + Index * sizeof(elem).
class GepInst : public Instruction {
public:
  GepInst(Value *Ptr, Value *Index)
      : Instruction(InstKind::Gep, Ptr->type(), {Ptr, Index}) {}

  Value *pointer() const { return operand(0); }
  Value *index() const { return operand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Gep;
  }
};

/// Direct call to another function in the same module.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, Type RetTy, std::vector<Value *> Args)
      : Instruction(InstKind::Call, RetTy, std::move(Args)), Callee(Callee) {}

  Function *callee() const { return Callee; }
  void setCallee(Function *NewCallee) { Callee = NewCallee; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Call;
  }

private:
  Function *Callee;
};

/// Built-in operations understood directly by the device: OpenCL
/// work-item queries, math, atomics, the barrier, and the accelOS
/// scheduling-library entry points injected by the JIT transform.
enum class BuiltinKind : uint8_t {
  // OpenCL work-item functions; operand 0 is the dimension (constant).
  GetGlobalId,
  GetLocalId,
  GetGroupId,
  GetGlobalSize,
  GetLocalSize,
  GetNumGroups,
  GetWorkDim,
  // Synchronization.
  Barrier,
  // f32 math.
  Sqrt,
  Rsqrt,
  Sin,
  Cos,
  Exp,
  Log,
  Fabs,
  FMin,
  FMax,
  Floor,
  // Integer helpers.
  IMin,
  IMax,
  IAbs,
  // Atomics on i32 (global or local pointer, value).
  AtomicAdd,
  AtomicSub,
  AtomicMin,
  AtomicMax,
  AtomicXchg,
  // accelOS scheduling runtime (paper Fig. 8b); generated by the JIT
  // transform, never written by applications.
  RtIsMaster,    ///< () -> i1: is this the work-group master work-item.
  RtEnvInit,     ///< (rt, sd) -> void: initialise scheduling state.
  RtSchedWGroup, ///< (rt, sd) -> void: atomically dequeue virtual groups.
  RtGlobalId,    ///< (rt, hdlr, dim) -> i64 virtual global id.
  RtGroupId,     ///< (rt, hdlr, dim) -> i64 virtual group id.
  RtGlobalSize,  ///< (rt, dim) -> i64 original global size.
  RtNumGroups    ///< (rt, dim) -> i64 original group count.
};

/// \returns the source-level spelling of \p BK.
const char *builtinName(BuiltinKind BK);

class BuiltinInst : public Instruction {
public:
  BuiltinInst(BuiltinKind BK, Type RetTy, std::vector<Value *> Args)
      : Instruction(InstKind::Builtin, RetTy, std::move(Args)), BK(BK) {}

  BuiltinKind builtinKind() const { return BK; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Builtin;
  }

private:
  BuiltinKind BK;
};

/// Conditional or unconditional branch.
class BrInst : public Instruction {
public:
  /// Unconditional branch to \p Target.
  explicit BrInst(BasicBlock *Target)
      : Instruction(InstKind::Br, Type::voidTy(), {}), TrueBB(Target),
        FalseBB(nullptr) {}

  /// Conditional branch on \p Cond.
  BrInst(Value *Cond, BasicBlock *TrueTarget, BasicBlock *FalseTarget)
      : Instruction(InstKind::Br, Type::voidTy(), {Cond}), TrueBB(TrueTarget),
        FalseBB(FalseTarget) {}

  bool isConditional() const { return numOperands() == 1; }
  Value *cond() const {
    assert(isConditional() && "cond on unconditional branch");
    return operand(0);
  }

  BasicBlock *trueTarget() const { return TrueBB; }
  BasicBlock *falseTarget() const { return FalseBB; }
  void setTrueTarget(BasicBlock *BB) { TrueBB = BB; }
  void setFalseTarget(BasicBlock *BB) { FalseBB = BB; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Br;
  }

private:
  BasicBlock *TrueBB;
  BasicBlock *FalseBB;
};

class RetInst : public Instruction {
public:
  RetInst() : Instruction(InstKind::Ret, Type::voidTy(), {}) {}

  explicit RetInst(Value *Val)
      : Instruction(InstKind::Ret, Type::voidTy(), {Val}) {}

  bool hasValue() const { return numOperands() == 1; }
  Value *value() const {
    assert(hasValue() && "value on void return");
    return operand(0);
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->instKind() == InstKind::Ret;
  }
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_INSTRUCTIONS_H
