//===- kir/Type.h - Kernel IR type system -----------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KIR type system: scalars (void, i1, i32, i64, f32) and pointers
/// qualified by an OpenCL address space. Types are small value objects;
/// there is no interning context because the set is closed.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_TYPE_H
#define ACCEL_KIR_TYPE_H

#include "support/ErrorHandling.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace accel {
namespace kir {

/// OpenCL disjoint address spaces as seen by kernels.
enum class AddrSpaceKind : uint8_t {
  Private, ///< Per-work-item memory (allocas).
  Local,   ///< Per-work-group scratchpad.
  Global   ///< Device memory shared by the whole NDRange.
};

/// \returns the OpenCL-style keyword for \p AS.
inline const char *addrSpaceName(AddrSpaceKind AS) {
  switch (AS) {
  case AddrSpaceKind::Private:
    return "private";
  case AddrSpaceKind::Local:
    return "local";
  case AddrSpaceKind::Global:
    return "global";
  }
  accel_unreachable("bad address space");
}

/// A KIR type: a scalar kind, or a pointer to a scalar in some address
/// space. Value-semantic and cheap to copy.
class Type {
public:
  enum class Kind : uint8_t { Void, I1, I32, I64, F32, Ptr };

  Type() : TyKind(Kind::Void) {}

  static Type voidTy() { return Type(Kind::Void); }
  static Type i1() { return Type(Kind::I1); }
  static Type i32() { return Type(Kind::I32); }
  static Type i64() { return Type(Kind::I64); }
  static Type f32() { return Type(Kind::F32); }

  /// \returns the scalar type of kind \p K (must not be Ptr).
  static Type scalar(Kind K) {
    assert(K != Kind::Ptr && "scalar() on pointer kind");
    return Type(K);
  }

  /// Builds a pointer-to-\p Elem in address space \p AS. \p Elem must be
  /// a loadable scalar kind.
  static Type ptr(Kind Elem, AddrSpaceKind AS) {
    assert((Elem == Kind::I32 || Elem == Kind::I64 || Elem == Kind::F32) &&
           "pointers must point at loadable scalars");
    Type T(Kind::Ptr);
    T.Elem = Elem;
    T.AS = AS;
    return T;
  }

  Kind kind() const { return TyKind; }

  /// \returns the pointee scalar kind; only valid for pointers.
  Kind elemKind() const {
    assert(isPtr() && "elemKind on non-pointer");
    return Elem;
  }

  /// \returns the address space; only valid for pointers.
  AddrSpaceKind addrSpace() const {
    assert(isPtr() && "addrSpace on non-pointer");
    return AS;
  }

  bool isVoid() const { return TyKind == Kind::Void; }
  bool isBool() const { return TyKind == Kind::I1; }
  bool isInt() const { return TyKind == Kind::I32 || TyKind == Kind::I64; }
  bool isFloat() const { return TyKind == Kind::F32; }
  bool isPtr() const { return TyKind == Kind::Ptr; }

  /// \returns the in-memory size of a scalar of kind \p K in bytes.
  static unsigned scalarSizeBytes(Kind K) {
    switch (K) {
    case Kind::I32:
    case Kind::F32:
      return 4;
    case Kind::I64:
      return 8;
    case Kind::Void:
    case Kind::I1:
    case Kind::Ptr:
      break;
    }
    accel_unreachable("type has no in-memory scalar size");
  }

  /// \returns the size of this type's pointee in bytes.
  unsigned elemSizeBytes() const { return scalarSizeBytes(elemKind()); }

  bool operator==(const Type &Other) const {
    if (TyKind != Other.TyKind)
      return false;
    if (TyKind != Kind::Ptr)
      return true;
    return Elem == Other.Elem && AS == Other.AS;
  }

  bool operator!=(const Type &Other) const { return !(*this == Other); }

  /// \returns a printable spelling such as "i32" or "global f32*".
  std::string str() const {
    switch (TyKind) {
    case Kind::Void:
      return "void";
    case Kind::I1:
      return "i1";
    case Kind::I32:
      return "i32";
    case Kind::I64:
      return "i64";
    case Kind::F32:
      return "f32";
    case Kind::Ptr:
      return std::string(addrSpaceName(AS)) + " " + Type(Elem).str() + "*";
    }
    accel_unreachable("bad type kind");
  }

private:
  explicit Type(Kind K) : TyKind(K) {}

  Kind TyKind;
  Kind Elem = Kind::Void;
  AddrSpaceKind AS = AddrSpaceKind::Private;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_TYPE_H
