//===- kir/FlatCode.h - Flattened code for interpretation -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a KIR function into a flat instruction array with pre-resolved
/// register slots and branch targets, so the interpreter's inner loop is
/// an index-based dispatch instead of pointer chasing through blocks.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_FLATCODE_H
#define ACCEL_KIR_FLATCODE_H

#include "kir/Module.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace accel {
namespace kir {

/// Sentinel register index for instructions that produce no value.
constexpr uint32_t NoReg = ~0u;

/// A pre-resolved operand: either an immediate payload or a register.
struct FlatOperand {
  bool IsImm = false;
  uint32_t Reg = NoReg;
  uint64_t Imm = 0;
};

/// One lowered instruction.
struct FlatInst {
  const Instruction *I = nullptr;
  uint32_t Dst = NoReg;
  std::vector<FlatOperand> Ops;
  uint32_t BrTrue = 0;  ///< Target index for (true-edge of) branches.
  uint32_t BrFalse = 0; ///< Target index for the false edge.
};

/// A fully lowered function.
struct FlatFunction {
  const Function *F = nullptr;
  std::vector<FlatInst> Code;
  /// Total register slots (arguments occupy slots [0, numArguments)).
  uint32_t NumRegs = 0;
  /// Byte offset of each local-memory slot within the group's local
  /// buffer, parallel to F->localAllocs().
  std::vector<uint64_t> LocalSlotOffsets;
  /// Total local-memory bytes required by the function.
  uint64_t LocalBytes = 0;
};

/// Lowers \p F. The function must verify.
std::unique_ptr<FlatFunction> lowerFunction(const Function &F);

/// Caches lowered functions per Function identity.
class CodeCache {
public:
  /// \returns the lowered form of \p F, lowering on first use.
  const FlatFunction &get(const Function &F);

  /// Drops cached code (call when a module is about to be destroyed).
  void invalidate() { Cache.clear(); }

private:
  std::map<const Function *, std::unique_ptr<FlatFunction>> Cache;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_FLATCODE_H
