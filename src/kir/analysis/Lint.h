//===- kir/analysis/Lint.h - Analysis diagnostics and driver ----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module-level lint driver: runs every analysis pass (uniformity /
/// barrier divergence, RT-window safety, static cost) over each function
/// of a module and collects human-readable diagnostics with source
/// locations. Consumed by the kir-lint CLI, the MiniCL frontend's lint
/// entry point, and the strict Verifier mode.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_LINT_H
#define ACCEL_KIR_ANALYSIS_LINT_H

#include <string>
#include <vector>

namespace accel {
namespace kir {

class Function;
class Module;

namespace analysis {

/// One finding of an analysis pass.
struct Diagnostic {
  enum class Kind {
    DivergentBarrier, ///< Barrier under work-item-divergent control.
    RtWindowWrite,    ///< Possible write into the reserved RT window.
    CostFallback      ///< Trip count underivable; cost uses a fallback.
  };

  Kind DiagKind = Kind::DivergentBarrier;
  std::string FunctionName;
  std::string BlockName;
  unsigned Line = 0; ///< MiniCL source line (0 = unknown).
  std::string Message;

  /// "<function>:<line>: [<pass>] <message>" (line omitted when 0).
  std::string str() const;
};

/// \returns the short pass tag for \p K ("divergence", "rt-window",
/// "cost").
const char *diagnosticKindName(Diagnostic::Kind K);

struct LintOptions {
  bool CheckDivergence = true;
  bool CheckRtWindow = true;
  bool CheckCost = true;
};

/// Runs all enabled passes over every function with a body in \p M.
std::vector<Diagnostic> lintModule(const Module &M,
                                   const LintOptions &Opts = LintOptions());

/// Runs all enabled passes over one function. \p IsSchedulingKernel
/// selects the RT-window rule set (the generated scheduling preamble
/// must touch *only* the runtime window; user code must never touch
/// it).
std::vector<Diagnostic> lintFunction(const Function &F,
                                     bool IsSchedulingKernel,
                                     const LintOptions &Opts = LintOptions());

/// \returns true when \p F is a transform-generated scheduling kernel
/// inside \p M (its demoted computation twin "<name>__comp" exists).
bool isSchedulingKernel(const Module &M, const Function &F);

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_LINT_H
