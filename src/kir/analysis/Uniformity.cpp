//===- kir/analysis/Uniformity.cpp - Work-item divergence -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/analysis/Uniformity.h"

#include "kir/Module.h"

#include <map>

using namespace accel;
using namespace accel::kir;
using namespace accel::kir::analysis;

namespace {

/// \returns true for builtins whose result is inherently per-work-item.
bool isDivergentSourceBuiltin(BuiltinKind BK) {
  switch (BK) {
  case BuiltinKind::GetGlobalId:
  case BuiltinKind::GetLocalId:
  case BuiltinKind::RtGlobalId:
  case BuiltinKind::RtIsMaster:
  // Atomics return the pre-op value, which differs per work item even
  // with uniform operands.
  case BuiltinKind::AtomicAdd:
  case BuiltinKind::AtomicSub:
  case BuiltinKind::AtomicMin:
  case BuiltinKind::AtomicMax:
  case BuiltinKind::AtomicXchg:
    return true;
  default:
    return false;
  }
}

/// Chases gep chains to the underlying base pointer.
const Value *basePointer(const Value *Ptr) {
  while (const auto *G = dyn_cast<GepInst>(Ptr))
    Ptr = G->pointer();
  return Ptr;
}

/// Memoized per-callee summaries, computed over the call DAG (the
/// frontend rejects recursion; a cycle met anyway reports true to stay
/// conservative).
class CalleeSummaries {
public:
  /// Does \p F transitively produce work-item-dependent values?
  bool usesWorkItemState(const Function *F) {
    return query(F, UsesIds, [this](const Instruction *I) {
      if (const auto *B = dyn_cast<BuiltinInst>(I))
        return isDivergentSourceBuiltin(B->builtinKind());
      return false;
    });
  }

  /// Does \p F transitively contain a Barrier?
  bool containsBarrier(const Function *F) {
    return query(F, HasBarrier, [](const Instruction *I) {
      if (const auto *B = dyn_cast<BuiltinInst>(I))
        return B->builtinKind() == BuiltinKind::Barrier;
      return false;
    });
  }

private:
  template <typename Pred>
  bool query(const Function *F, std::map<const Function *, bool> &Memo,
             Pred &&Matches) {
    auto It = Memo.find(F);
    if (It != Memo.end())
      return It->second;
    Memo[F] = true; // Cycle guard: assume the worst while visiting.
    bool Result = false;
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        if (Matches(I.get())) {
          Result = true;
          break;
        }
        if (const auto *C = dyn_cast<CallInst>(I.get()))
          if (C->callee() && query(C->callee(), Memo, Matches)) {
            Result = true;
            break;
          }
      }
      if (Result)
        break;
    }
    Memo[F] = Result;
    return Result;
  }

  std::map<const Function *, bool> UsesIds;
  std::map<const Function *, bool> HasBarrier;
};

} // namespace

UniformityAnalysis::UniformityAnalysis(const Cfg &Graph) : G(Graph) {
  DivergentBlock.assign(G.numBlocks(), false);
  Witness.assign(G.numBlocks(), nullptr);
  run();
}

bool UniformityAnalysis::isDivergent(const Value *V) const {
  return DivergentValues.count(V) != 0;
}

void UniformityAnalysis::run() {
  CalleeSummaries Summaries;

  auto AnyOperandDivergent = [&](const Instruction *I) {
    for (const Value *Op : I->operands())
      if (DivergentValues.count(Op))
        return true;
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Data flow: one RPO sweep marking newly divergent values/allocas.
    for (unsigned B : G.reversePostOrder()) {
      for (const auto &IPtr : G.block(B)->instructions()) {
        const Instruction *I = IPtr.get();
        bool Div = false;
        switch (I->instKind()) {
        case InstKind::Builtin: {
          const auto &Bi = cast<BuiltinInst>(*I);
          Div = isDivergentSourceBuiltin(Bi.builtinKind()) ||
                (!Bi.type().isVoid() && AnyOperandDivergent(I));
          break;
        }
        case InstKind::Load: {
          const auto &L = cast<LoadInst>(*I);
          Div = DivergentValues.count(L.pointer()) != 0;
          // Private memory is per-work-item: its content is divergent
          // when the alloca ever received a divergent store. Local and
          // global memory are shared per work group, so a load from a
          // uniform address yields a uniform value.
          if (!Div)
            if (const auto *A = dyn_cast<AllocaInst>(basePointer(L.pointer())))
              Div = DivergentAllocas.count(A) != 0;
          break;
        }
        case InstKind::Store: {
          const auto &St = cast<StoreInst>(*I);
          if (const auto *A = dyn_cast<AllocaInst>(basePointer(St.pointer()))) {
            bool DivStore = DivergentValues.count(St.value()) != 0 ||
                            DivergentValues.count(St.pointer()) != 0 ||
                            DivergentBlock[B];
            if (DivStore && DivergentAllocas.insert(A).second)
              Changed = true;
          }
          continue; // Stores produce no value.
        }
        case InstKind::Call: {
          const auto &C = cast<CallInst>(*I);
          Div = AnyOperandDivergent(I) ||
                (C.callee() && Summaries.usesWorkItemState(C.callee()));
          // A divergent call context can also write through pointer
          // arguments; treat alloca arguments as divergently stored.
          if (DivergentBlock[B] || Div)
            for (const Value *Op : I->operands())
              if (const auto *A = dyn_cast<AllocaInst>(basePointer(Op)))
                if (DivergentAllocas.insert(A).second)
                  Changed = true;
          break;
        }
        case InstKind::Alloca:
        case InstKind::LocalAddr:
          // The handle itself is the same variable in every work item.
          Div = false;
          break;
        case InstKind::Br:
        case InstKind::Ret:
          continue;
        default:
          Div = AnyOperandDivergent(I);
          break;
        }
        if (Div && DivergentValues.insert(I).second)
          Changed = true;
      }
    }

    // Control flow: blocks inside the influence region of a divergent
    // conditional branch execute divergently.
    for (unsigned B : G.reversePostOrder()) {
      const auto *Br = dyn_cast_or_null<BrInst>(G.block(B)->terminator());
      if (!Br || !Br->isConditional() || !DivergentValues.count(Br->cond()))
        continue;
      for (unsigned R : G.influenceRegion(B)) {
        if (!DivergentBlock[R]) {
          DivergentBlock[R] = true;
          Witness[R] = Br;
          Changed = true;
        }
      }
    }
  }

  // Collect the divergent barriers.
  for (unsigned B : G.reversePostOrder()) {
    if (!DivergentBlock[B])
      continue;
    for (const auto &IPtr : G.block(B)->instructions()) {
      const Instruction *I = IPtr.get();
      if (const auto *Bi = dyn_cast<BuiltinInst>(I)) {
        if (Bi->builtinKind() == BuiltinKind::Barrier)
          Barriers.push_back({I, Witness[B]});
      } else if (const auto *C = dyn_cast<CallInst>(I)) {
        if (C->callee() && Summaries.containsBarrier(C->callee()))
          Barriers.push_back({I, Witness[B]});
      }
    }
  }
}
