//===- kir/analysis/RtWindowSafety.h - RT window write safety ---*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves, via interval analysis over address arithmetic, that user
/// code never writes the reserved RtLayout runtime window (the Virtual
/// NDRange descriptor behind the "rt" argument and the scheduling
/// descriptor behind "sd"), and that a transform-generated scheduling
/// kernel's own stores touch *only* that window (or private memory).
/// This turns the paper's instrumentation-safety argument (Sec. 6.3)
/// from a code-generation convention into a checked invariant.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_RTWINDOWSAFETY_H
#define ACCEL_KIR_ANALYSIS_RTWINDOWSAFETY_H

#include "kir/analysis/Lint.h"

#include <vector>

namespace accel {
namespace kir {
namespace analysis {

class Cfg;
class IntervalAnalysis;

/// Appends RT-window findings for the function behind \p G to \p Out.
/// \p IsSchedulingKernel flips from the user rule ("never write the
/// window") to the preamble rule ("write nothing but the window").
void checkRtWindowSafety(const Cfg &G, const IntervalAnalysis &IA,
                         bool IsSchedulingKernel,
                         std::vector<Diagnostic> &Out);

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_RTWINDOWSAFETY_H
