//===- kir/analysis/Dataflow.h - Forward dataflow driver --------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward dataflow fixpoint driver over a Cfg. A pass
/// supplies a Domain describing its lattice:
///
///   struct Domain {
///     using State = ...;                    // one lattice element
///     State boundary();                     // entry-block input
///     State top();                          // identity of meet
///     // Joins Incoming into S; returns true when S changed. Called at
///     // control-flow merges; on the Nth visit of a loop header the
///     // driver passes Widen = true so unstable domains can jump to a
///     // fixed point instead of climbing forever.
///     bool meetInto(State &S, const State &Incoming, bool Widen);
///     State transfer(unsigned BlockId, const State &In);
///   };
///
/// The driver iterates the reachable blocks in reverse postorder until
/// no input changes, and exposes the per-block input states. Unreachable
/// blocks keep top() as their input.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_DATAFLOW_H
#define ACCEL_KIR_ANALYSIS_DATAFLOW_H

#include "kir/analysis/Cfg.h"

#include <vector>

namespace accel {
namespace kir {
namespace analysis {

template <typename Domain> class ForwardDataflow {
public:
  using State = typename Domain::State;

  ForwardDataflow(const Cfg &G, Domain &D) : G(G), D(D) {}

  /// Runs to fixpoint. \p WidenAfter bounds how many times a loop
  /// header may refine before meetInto is asked to widen.
  void run(unsigned WidenAfter = 2) {
    unsigned N = G.numBlocks();
    In.clear();
    Out.clear();
    In.reserve(N);
    Out.reserve(N);
    for (unsigned B = 0; B != N; ++B) {
      In.push_back(D.top());
      Out.push_back(D.top());
    }
    if (N == 0)
      return;
    In[0] = D.boundary();

    std::vector<unsigned> Visits(N, 0);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned B : G.reversePostOrder()) {
        // Recompute the input from predecessor outputs.
        bool InChanged = false;
        bool Widen =
            G.loopDepth(B) > 0 && Visits[B] >= WidenAfter;
        for (unsigned P : G.predecessors(B))
          InChanged |= D.meetInto(In[B], Out[P], Widen);
        ++Visits[B];
        if (!InChanged && Visits[B] > 1)
          continue;
        State NewOut = D.transfer(B, In[B]);
        if (Visits[B] == 1 || !(NewOut == Out[B])) {
          Out[B] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }

  const State &input(unsigned BlockId) const { return In[BlockId]; }
  const State &output(unsigned BlockId) const { return Out[BlockId]; }

private:
  const Cfg &G;
  Domain &D;
  std::vector<State> In;
  std::vector<State> Out;
};

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_DATAFLOW_H
