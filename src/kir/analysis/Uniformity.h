//===- kir/analysis/Uniformity.h - Work-item divergence ---------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uniformity (divergence) analysis: which values differ between the
/// work items of one work group, and which blocks execute under
/// work-item-divergent control flow. The lattice per value is
/// {Uniform < Divergent}; divergence springs from the work-item id
/// builtins and propagates through data flow (including the private
/// allocas MiniCL uses for cross-block values) and through control
/// dependence (a store executed under a divergent branch makes its
/// target divergent). The headline client is the divergent-barrier
/// lint: a Barrier inside the influence region of a divergent branch
/// can deadlock the work group (the paper's persistent-thread transform
/// must exclude exactly this).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_UNIFORMITY_H
#define ACCEL_KIR_ANALYSIS_UNIFORMITY_H

#include "kir/analysis/Cfg.h"

#include <set>
#include <vector>

namespace accel {
namespace kir {

class Instruction;
class Value;

namespace analysis {

/// A Barrier (or a call that reaches one) found under divergent control.
struct DivergentBarrier {
  const Instruction *Barrier = nullptr; ///< The offending instruction.
  const Instruction *Branch = nullptr;  ///< The divergent branch above it.
};

class UniformityAnalysis {
public:
  explicit UniformityAnalysis(const Cfg &G);

  /// \returns true when \p V may differ between work items of one
  /// work group.
  bool isDivergent(const Value *V) const;

  /// \returns true when block \p B executes under divergent control.
  bool isDivergentBlock(unsigned B) const { return DivergentBlock[B]; }

  /// Barriers reachable under divergent control, in block order.
  const std::vector<DivergentBarrier> &divergentBarriers() const {
    return Barriers;
  }

private:
  void run();

  const Cfg &G;
  std::set<const Value *> DivergentValues;
  std::set<const Instruction *> DivergentAllocas;
  std::vector<bool> DivergentBlock;
  std::vector<const Instruction *> Witness;
  std::vector<DivergentBarrier> Barriers;
};

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_UNIFORMITY_H
