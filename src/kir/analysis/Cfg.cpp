//===- kir/analysis/Cfg.cpp - Control-flow graph over KIR -------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/analysis/Cfg.h"

#include "kir/Module.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::kir;
using namespace accel::kir::analysis;

bool CfgLoop::contains(unsigned BlockId) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), BlockId);
}

Cfg::Cfg(const Function &Fn) : F(&Fn) {
  unsigned N = static_cast<unsigned>(Fn.blocks().size());
  BlockOf.reserve(N);
  for (const auto &BB : Fn.blocks()) {
    IdOf[BB.get()] = static_cast<unsigned>(BlockOf.size());
    BlockOf.push_back(BB.get());
  }
  Succs.assign(N, {});
  Preds.assign(N, {});
  Reachable.assign(N, false);
  IPDom.assign(N, VirtualExit);
  LoopDepthOf.assign(N, 0);
  InnermostOf.assign(N, -1);

  buildEdges();
  buildRpo();
  buildPostDominators();
  buildLoops();
}

const BasicBlock *Cfg::block(unsigned Id) const {
  assert(Id < BlockOf.size() && "block id out of range");
  return BlockOf[Id];
}

unsigned Cfg::id(const BasicBlock *BB) const {
  auto It = IdOf.find(BB);
  assert(It != IdOf.end() && "block not in this CFG");
  return It->second;
}

void Cfg::buildEdges() {
  for (unsigned B = 0; B != numBlocks(); ++B) {
    const Instruction *Term = BlockOf[B]->terminator();
    const auto *Br = dyn_cast_or_null<BrInst>(Term);
    if (!Br)
      continue; // Ret or unterminated: no successors.
    unsigned T = id(Br->trueTarget());
    Succs[B].push_back(T);
    Preds[T].push_back(B);
    if (Br->isConditional()) {
      unsigned FalseId = id(Br->falseTarget());
      if (FalseId != T) {
        Succs[B].push_back(FalseId);
        Preds[FalseId].push_back(B);
      }
    }
  }
}

void Cfg::buildRpo() {
  if (numBlocks() == 0)
    return;
  // Iterative DFS from the entry; postorder reversed gives the RPO.
  std::vector<unsigned> Post;
  std::vector<std::pair<unsigned, unsigned>> Stack; // (block, next succ)
  std::vector<bool> Visited(numBlocks(), false);
  Stack.emplace_back(0u, 0u);
  Visited[0] = true;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Succs[B].size()) {
      unsigned S = Succs[B][NextSucc++];
      if (!Visited[S]) {
        Visited[S] = true;
        Stack.emplace_back(S, 0u);
      }
    } else {
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (unsigned B : Rpo)
    Reachable[B] = true;
}

void Cfg::buildPostDominators() {
  // Cooper-Harvey-Kennedy on the reverse graph, rooted at a virtual
  // exit whose predecessors are every block without successors (Ret
  // blocks, and any unterminated stragglers). Blocks that cannot reach
  // the exit (infinite loops) keep IPDom = VirtualExit, which the
  // influence-region query treats conservatively.
  unsigned N = numBlocks();
  if (N == 0)
    return;

  // Reverse postorder of the reverse graph, rooted at the virtual exit.
  std::vector<unsigned> RevPost;
  std::vector<bool> Visited(N, false);
  std::vector<unsigned> ExitPreds;
  for (unsigned B = 0; B != N; ++B)
    if (Succs[B].empty())
      ExitPreds.push_back(B);

  std::vector<std::pair<unsigned, unsigned>> Stack;
  for (unsigned Root : ExitPreds) {
    if (Visited[Root])
      continue;
    Visited[Root] = true;
    Stack.emplace_back(Root, 0u);
    while (!Stack.empty()) {
      auto &[B, NextPred] = Stack.back();
      if (NextPred < Preds[B].size()) {
        unsigned P = Preds[B][NextPred++];
        if (!Visited[P]) {
          Visited[P] = true;
          Stack.emplace_back(P, 0u);
        }
      } else {
        RevPost.push_back(B);
        Stack.pop_back();
      }
    }
  }
  std::reverse(RevPost.begin(), RevPost.end());

  // Order index within RevPost; the virtual exit (order 0) sorts before
  // every real block.
  std::vector<unsigned> OrderOf(N, ~0u);
  for (unsigned I = 0; I != RevPost.size(); ++I)
    OrderOf[RevPost[I]] = I + 1;
  auto Ord = [&](unsigned B) { return B == VirtualExit ? 0u : OrderOf[B]; };

  // Walks both nodes up the (partial) post-dominator tree until they
  // meet; the virtual exit is the root, so the walk always terminates.
  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (Ord(A) > Ord(B))
        A = IPDom[A]; // A != VirtualExit here (its order is minimal).
      while (Ord(B) > Ord(A))
        B = IPDom[B];
    }
    return A;
  };

  std::vector<bool> Processed(N, false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : RevPost) {
      // Reverse-graph predecessors of B are its CFG successors; a block
      // without successors hangs off the virtual exit directly.
      unsigned NewIPDom = VirtualExit;
      bool Seeded = Succs[B].empty();
      for (unsigned S : Succs[B]) {
        if (!Processed[S])
          continue;
        if (!Seeded) {
          NewIPDom = S;
          Seeded = true;
        } else {
          NewIPDom = Intersect(NewIPDom, S);
        }
      }
      if (!Seeded)
        continue;
      if (!Processed[B] || IPDom[B] != NewIPDom) {
        IPDom[B] = NewIPDom;
        Processed[B] = true;
        Changed = true;
      }
    }
  }
}

void Cfg::buildLoops() {
  // Back edges via DFS colouring: an edge into a block on the active
  // DFS stack closes a natural loop. MiniCL codegen emits reducible
  // graphs, for which this is exact.
  unsigned N = numBlocks();
  if (N == 0)
    return;
  enum Colour : uint8_t { White, Grey, Black };
  std::vector<uint8_t> Col(N, White);
  std::vector<std::pair<unsigned, unsigned>> Stack;
  std::vector<std::pair<unsigned, unsigned>> BackEdges; // (latch, header)
  Stack.emplace_back(0u, 0u);
  Col[0] = Grey;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Succs[B].size()) {
      unsigned S = Succs[B][NextSucc++];
      if (Col[S] == White) {
        Col[S] = Grey;
        Stack.emplace_back(S, 0u);
      } else if (Col[S] == Grey) {
        BackEdges.emplace_back(B, S);
      }
    } else {
      Col[B] = Black;
      Stack.pop_back();
    }
  }

  // Gather each loop's body: blocks that reach the latch backwards
  // without passing through the header. Merge loops sharing a header.
  std::map<unsigned, CfgLoop> ByHeader;
  for (auto [Latch, Header] : BackEdges) {
    CfgLoop &L = ByHeader[Header];
    L.Header = Header;
    L.Latches.push_back(Latch);
    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<unsigned> Work;
    if (!InLoop[Latch]) {
      InLoop[Latch] = true;
      Work.push_back(Latch);
    }
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned P : Preds[B])
        if (!InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (unsigned B = 0; B != N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
  }
  for (auto &[Header, L] : ByHeader) {
    std::sort(L.Blocks.begin(), L.Blocks.end());
    L.Blocks.erase(std::unique(L.Blocks.begin(), L.Blocks.end()),
                   L.Blocks.end());
    Loops.push_back(std::move(L));
  }

  // Sort outer loops first (larger bodies) so Parent resolution can scan
  // earlier entries.
  std::sort(Loops.begin(), Loops.end(),
            [](const CfgLoop &A, const CfgLoop &B) {
              if (A.Blocks.size() != B.Blocks.size())
                return A.Blocks.size() > B.Blocks.size();
              return A.Header < B.Header;
            });

  for (unsigned I = 0; I != Loops.size(); ++I) {
    CfgLoop &L = Loops[I];
    // The innermost strictly-containing loop appears earlier in the
    // outer-first order.
    for (unsigned J = I; J-- > 0;) {
      if (Loops[J].Blocks.size() > L.Blocks.size() &&
          Loops[J].contains(L.Header)) {
        L.Parent = static_cast<int>(J);
        L.Depth = Loops[J].Depth + 1;
        break;
      }
    }
    for (unsigned B : L.Blocks) {
      if (L.Depth > LoopDepthOf[B]) {
        LoopDepthOf[B] = L.Depth;
        InnermostOf[B] = static_cast<int>(I);
      }
    }
  }
}

std::vector<unsigned> Cfg::influenceRegion(unsigned BranchBlock) const {
  std::vector<unsigned> Region;
  const auto *Br = dyn_cast_or_null<BrInst>(BlockOf[BranchBlock]->terminator());
  if (!Br || !Br->isConditional())
    return Region;
  unsigned Reconverge = IPDom[BranchBlock];
  std::vector<bool> Seen(numBlocks(), false);
  std::vector<unsigned> Work;
  for (unsigned S : Succs[BranchBlock]) {
    if (S == Reconverge || Seen[S])
      continue;
    Seen[S] = true;
    Work.push_back(S);
  }
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    Region.push_back(B);
    for (unsigned S : Succs[B]) {
      if (S == Reconverge || Seen[S])
        continue;
      Seen[S] = true;
      Work.push_back(S);
    }
  }
  std::sort(Region.begin(), Region.end());
  return Region;
}
