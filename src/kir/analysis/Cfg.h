//===- kir/analysis/Cfg.h - Control-flow graph over KIR ---------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A control-flow graph view of a kir::Function: numbered blocks with
/// successor/predecessor edges, a reverse-postorder over the reachable
/// subgraph, post-dominators computed against a virtual exit node, and
/// natural loops with nesting depth. This is the substrate every
/// analysis pass in src/kir/analysis builds on; the graph is immutable
/// once constructed and holds no ownership over the function.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_CFG_H
#define ACCEL_KIR_ANALYSIS_CFG_H

#include <cstdint>
#include <map>
#include <vector>

namespace accel {
namespace kir {

class BasicBlock;
class Function;

namespace analysis {

/// One natural loop: the header plus every block on a cycle back to it.
struct CfgLoop {
  unsigned Header = 0;          ///< Block id of the loop header.
  std::vector<unsigned> Blocks; ///< Member block ids (sorted, incl. header).
  std::vector<unsigned> Latches; ///< Blocks with a back edge to the header.
  unsigned Depth = 1;           ///< Nesting depth (1 = outermost).
  int Parent = -1;              ///< Index of the enclosing loop, or -1.

  bool contains(unsigned BlockId) const;
};

/// Immutable CFG of one function. Block ids follow the function's block
/// declaration order, so id 0 is the entry block.
class Cfg {
public:
  /// Sentinel id for the virtual exit node used by post-dominance.
  static constexpr unsigned VirtualExit = ~0u;

  explicit Cfg(const Function &F);

  const Function &function() const { return *F; }

  unsigned numBlocks() const {
    return static_cast<unsigned>(Succs.size());
  }

  const BasicBlock *block(unsigned Id) const;

  /// \returns the id of \p BB (must belong to the function).
  unsigned id(const BasicBlock *BB) const;

  const std::vector<unsigned> &successors(unsigned Id) const {
    return Succs[Id];
  }
  const std::vector<unsigned> &predecessors(unsigned Id) const {
    return Preds[Id];
  }

  /// Reverse postorder over the blocks reachable from the entry. Forward
  /// dataflow passes iterate this to reach fixpoints quickly.
  const std::vector<unsigned> &reversePostOrder() const { return Rpo; }

  bool isReachable(unsigned Id) const { return Reachable[Id]; }

  /// \returns the immediate post-dominator of \p Id, or VirtualExit when
  /// the block post-dominates every path (ends the function) or cannot
  /// reach the exit at all (conservative for infinite loops).
  unsigned immediatePostDominator(unsigned Id) const { return IPDom[Id]; }

  /// All natural loops, outermost first within each nest.
  const std::vector<CfgLoop> &loops() const { return Loops; }

  /// \returns the number of loops containing \p Id (0 = not in a loop).
  unsigned loopDepth(unsigned Id) const { return LoopDepthOf[Id]; }

  /// \returns the index of the innermost loop containing \p Id, or -1.
  int innermostLoop(unsigned Id) const { return InnermostOf[Id]; }

  /// Blocks whose execution depends on the conditional branch ending
  /// block \p BranchBlock: everything reachable from its successors
  /// before control reconverges at the branch's immediate
  /// post-dominator. The branch block itself and the reconvergence
  /// point are excluded. This is the region where a divergent branch
  /// makes execution work-item-dependent.
  std::vector<unsigned> influenceRegion(unsigned BranchBlock) const;

private:
  void buildEdges();
  void buildRpo();
  void buildPostDominators();
  void buildLoops();

  const Function *F;
  std::vector<const BasicBlock *> BlockOf;
  std::map<const BasicBlock *, unsigned> IdOf;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  std::vector<unsigned> Rpo;
  std::vector<bool> Reachable;
  std::vector<unsigned> IPDom;
  std::vector<CfgLoop> Loops;
  std::vector<unsigned> LoopDepthOf;
  std::vector<int> InnermostOf;
};

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_CFG_H
