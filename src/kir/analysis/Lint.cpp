//===- kir/analysis/Lint.cpp - Analysis diagnostics and driver --------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/analysis/Lint.h"

#include "kir/Module.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/CostPrior.h"
#include "kir/analysis/Intervals.h"
#include "kir/analysis/RtWindowSafety.h"
#include "kir/analysis/Uniformity.h"

using namespace accel;
using namespace accel::kir;
using namespace accel::kir::analysis;

const char *analysis::diagnosticKindName(Diagnostic::Kind K) {
  switch (K) {
  case Diagnostic::Kind::DivergentBarrier:
    return "divergence";
  case Diagnostic::Kind::RtWindowWrite:
    return "rt-window";
  case Diagnostic::Kind::CostFallback:
    return "cost";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string S = FunctionName;
  if (Line) {
    S += ":";
    S += std::to_string(Line);
  }
  S += ": [";
  S += diagnosticKindName(DiagKind);
  S += "] ";
  S += Message;
  if (!BlockName.empty())
    S += " (block '" + BlockName + "')";
  return S;
}

bool analysis::isSchedulingKernel(const Module &M, const Function &F) {
  return F.isKernel() && M.getFunction(F.name() + "__comp") != nullptr;
}

std::vector<Diagnostic> analysis::lintFunction(const Function &F,
                                               bool IsSchedulingKernel,
                                               const LintOptions &Opts) {
  std::vector<Diagnostic> Diags;
  if (F.isDeclaration())
    return Diags;

  Cfg G(F);
  UniformityAnalysis UA(G);
  IntervalAnalysis IA(G);

  if (Opts.CheckDivergence) {
    for (const DivergentBarrier &DB : UA.divergentBarriers()) {
      Diagnostic D;
      D.DiagKind = Diagnostic::Kind::DivergentBarrier;
      D.FunctionName = F.name();
      D.BlockName = DB.Barrier->parent()->name();
      D.Line = DB.Barrier->line();
      D.Message = "barrier under work-item-divergent control flow";
      if (DB.Branch && DB.Branch->line())
        D.Message += " (divergent branch at line " +
                     std::to_string(DB.Branch->line()) + ")";
      Diags.push_back(std::move(D));
    }
  }

  if (Opts.CheckRtWindow)
    checkRtWindowSafety(G, IA, IsSchedulingKernel, Diags);

  // The cost prior is a property of the user's kernel. A scheduling
  // kernel's persistent-thread loop runs until the host-side scheduler
  // posts RUN_TERMINATE, so its trip count is contention-dependent and a
  // fallback diagnostic there would be pure noise.
  if (Opts.CheckCost && !IsSchedulingKernel)
    estimateCost(G, UA, IA, CostWeights(), &Diags);

  return Diags;
}

std::vector<Diagnostic> analysis::lintModule(const Module &M,
                                             const LintOptions &Opts) {
  std::vector<Diagnostic> Diags;
  for (const auto &F : M.functions()) {
    std::vector<Diagnostic> FD =
        lintFunction(*F, isSchedulingKernel(M, *F), Opts);
    Diags.insert(Diags.end(), FD.begin(), FD.end());
  }
  return Diags;
}
