//===- kir/analysis/RtWindowSafety.cpp - RT window write safety -------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/analysis/RtWindowSafety.h"

#include "kir/Module.h"
#include "kir/RtLayout.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/Intervals.h"

#include <string>

using namespace accel;
using namespace accel::kir;
using namespace accel::kir::analysis;

namespace {

/// The reserved window an argument protects, in pointee elements.
struct Window {
  const Argument *Arg = nullptr;
  int64_t Words = 0;
  const char *Label = "";
};

/// Finds the protected runtime-window arguments of \p F by the
/// transform's naming convention: "rt" is the global i64* Virtual
/// NDRange descriptor, "sd" the local i64* scheduling descriptor.
void findWindows(const Function &F, std::vector<Window> &Out) {
  for (unsigned I = 0; I != F.numArguments(); ++I) {
    const Argument *A = F.argument(I);
    const Type &Ty = A->type();
    if (!Ty.isPtr() || Ty.elemKind() != Type::Kind::I64)
      continue;
    if (A->name() == "rt" && Ty.addrSpace() == AddrSpaceKind::Global)
      Out.push_back({A, static_cast<int64_t>(rtlayout::RTW_WordCount), "rt"});
    else if (A->name() == "sd" && Ty.addrSpace() == AddrSpaceKind::Local)
      Out.push_back({A, static_cast<int64_t>(rtlayout::SDW_WordCount), "sd"});
  }
}

/// Chases the gep chain of \p Ptr, accumulating the element-offset
/// interval at program point \p At; \returns the base pointer.
const Value *baseAndOffset(const Value *Ptr, const Instruction *At,
                           const IntervalAnalysis &IA, Interval &Offset) {
  Offset = Interval::constant(0);
  while (const auto *G = dyn_cast<GepInst>(Ptr)) {
    Offset = Offset.add(IA.valueBefore(At, G->index()));
    Ptr = G->pointer();
  }
  return Ptr;
}

const Window *windowFor(const Value *Base, const std::vector<Window> &Ws) {
  for (const Window &W : Ws)
    if (W.Arg == Base)
      return &W;
  return nullptr;
}

Diagnostic makeDiag(const Instruction *I, std::string Message) {
  Diagnostic D;
  D.DiagKind = Diagnostic::Kind::RtWindowWrite;
  D.FunctionName = I->parent()->parent()->name();
  D.BlockName = I->parent()->name();
  D.Line = I->line();
  D.Message = std::move(Message);
  return D;
}

std::string rangeStr(const Interval &IV) {
  std::string Lo = IV.hasLowerBound() ? std::to_string(IV.Lo) : "-inf";
  std::string Hi = IV.hasUpperBound() ? std::to_string(IV.Hi) : "+inf";
  return "[" + Lo + ", " + Hi + "]";
}

/// \returns true for the i32 atomic builtins (operand 0 is the target
/// pointer).
bool isAtomicBuiltin(BuiltinKind BK) {
  switch (BK) {
  case BuiltinKind::AtomicAdd:
  case BuiltinKind::AtomicSub:
  case BuiltinKind::AtomicMin:
  case BuiltinKind::AtomicMax:
  case BuiltinKind::AtomicXchg:
    return true;
  default:
    return false;
  }
}

} // namespace

void analysis::checkRtWindowSafety(const Cfg &G, const IntervalAnalysis &IA,
                                   bool IsSchedulingKernel,
                                   std::vector<Diagnostic> &Out) {
  const Function &F = G.function();
  std::vector<Window> Windows;
  findWindows(F, Windows);
  if (Windows.empty() && !IsSchedulingKernel)
    return; // No protected window in scope: nothing to prove.

  auto CheckWrite = [&](const Instruction *I, const Value *Ptr,
                        const char *What) {
    if (!Ptr->type().isPtr())
      return;
    AddrSpaceKind AS = Ptr->type().addrSpace();
    if (AS == AddrSpaceKind::Private)
      return; // Per-work-item scratch is always fair game.
    Interval Offset;
    const Value *Base = baseAndOffset(Ptr, I, IA, Offset);
    const Window *W = windowFor(Base, Windows);

    if (!IsSchedulingKernel) {
      // User code: flag any write that may land inside a window.
      if (W && Offset.mayIntersect(0, W->Words - 1))
        Out.push_back(makeDiag(
            I, std::string(What) + " may clobber reserved runtime window '" +
                   W->Label + "' (word offset " + rangeStr(Offset) +
                   " overlaps [0, " + std::to_string(W->Words - 1) + "])"));
      return;
    }

    // Scheduling preamble: every non-private write must provably stay
    // inside its window.
    if (!W) {
      Out.push_back(makeDiag(
          I, std::string(What) +
                 " in scheduling kernel targets memory outside the "
                 "runtime window"));
      return;
    }
    if (!Offset.hasLowerBound() || !Offset.hasUpperBound() || Offset.Lo < 0 ||
        Offset.Hi >= W->Words)
      Out.push_back(makeDiag(
          I, std::string(What) + " in scheduling kernel may escape window '" +
                 W->Label + "' (word offset " + rangeStr(Offset) +
                 " not within [0, " + std::to_string(W->Words - 1) + "])"));
  };

  for (unsigned B : G.reversePostOrder()) {
    for (const auto &IPtr : G.block(B)->instructions()) {
      const Instruction *I = IPtr.get();
      if (const auto *St = dyn_cast<StoreInst>(I)) {
        CheckWrite(I, St->pointer(), "store");
      } else if (const auto *Bi = dyn_cast<BuiltinInst>(I)) {
        if (isAtomicBuiltin(Bi->builtinKind()))
          CheckWrite(I, Bi->operand(0), "atomic");
      }
    }
  }
}
