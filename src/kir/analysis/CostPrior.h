//===- kir/analysis/CostPrior.h - Static work estimation --------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static per-work-item work estimate from weighted instruction
/// counts, loop nesting and derivable trip-count bounds. Memory
/// operations are classified with the uniformity analysis (uniform
/// broadcast / coalesced id-affine / data-dependent gather) because
/// access pattern, not instruction count, dominates accelerator cost.
/// The estimate seeds workloads::CostProfile so the schedulers have a
/// solo-duration prior for kernels they have never executed (the
/// ROADMAP's cold-start hole); it is a prior, not a promise, and blends
/// away as measurements arrive.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_COSTPRIOR_H
#define ACCEL_KIR_ANALYSIS_COSTPRIOR_H

#include "kir/analysis/Lint.h"

#include <vector>

namespace accel {
namespace kir {
namespace analysis {

class Cfg;
class IntervalAnalysis;
class UniformityAnalysis;

/// Tunable weights, in the synthetic thread-cycle unit the workload
/// suite's cost profiles use. Calibrated against the Parboil-like
/// suite (tests/AnalysisTests.cpp keeps every kernel within 3x).
struct CostWeights {
  double Alu = 1.0;
  double MathTrans = 2000.0; ///< sin/cos/exp/log (polynomial expansion).
  double MathDiv = 40.0;     ///< div/rem/sqrt by a non-constant.
  double PrivateMem = 1.0;   ///< Alloca traffic (register-like).
  double LocalMem = 4.0;     ///< Work-group scratchpad access.
  /// Latency-bound load of a shared table: every lane waits on the same
  /// DRAM line, so nothing amortises the round trip.
  double GlobalUniform = 400.0;
  /// Id-affine streaming access: one line serves the whole work group,
  /// so latency amortises across the lanes.
  double GlobalCoalesced = 300.0;
  double GlobalGather = 850.0; ///< Data-dependent scatter/gather.
  /// Access whose index is wrapped by a small constant modulus/mask:
  /// the working set fits in cache, so reuse makes it nearly free.
  double CacheResident = 40.0;
  /// Global stores cost this fraction of the matching load class
  /// (write-combining hides the latency half).
  double StoreFactor = 0.5;
  double AtomicGlobal = 900.0;
  double AtomicLocal = 700.0; ///< Scratchpad atomics still serialise.
  double BarrierCost = 40.0;
  double CallOverhead = 20.0; ///< Added on top of the callee's body.
  /// Default trip counts by loop-bound provenance when no numeric bound
  /// is derivable. Deliberately small: under-estimating an unknown loop
  /// biases the cold-start scheduler toward trying the kernel early,
  /// and the prior self-corrects after the first measurement.
  double TripArgument = 8.0; ///< Bound chases to a kernel argument.
  double TripWorkItem = 8.0; ///< Bound derived from work-item ids.
  double TripData = 3.0;     ///< Bound loaded from memory.
  double TripFallback = 16.0; ///< Structure unrecognised (diagnosed).
  /// Assumed work-group size for get_local_size()-strided loops.
  double StrideWGSize = 128.0;
  /// Floor per work item: launch, drain and fixed-issue overhead that
  /// even a two-instruction kernel pays.
  double MinPerItem = 1100.0;
  double MaxTripCount = 1u << 20; ///< Clamp for derived trip counts.
  /// Largest modulus/mask constant still considered cache-resident.
  double CacheWindow = 65536.0;
};

/// How a loop's iteration bound was established.
enum class TripBoundKind {
  Exact,    ///< Derived numerically from init/bound/step intervals.
  Argument, ///< Bound flows from a kernel argument; default used.
  WorkItem, ///< Bound flows from work-item ids; default used.
  Data,     ///< Bound loaded from global/local memory; default used.
  Fallback  ///< No recognisable induction; fallback (diagnosed).
};

/// \returns a short printable name for \p K ("exact", "argument", ...).
const char *tripBoundKindName(TripBoundKind K);

/// Per-loop summary, index-aligned with Cfg::loops().
struct LoopTripInfo {
  TripBoundKind BoundKind = TripBoundKind::Fallback;
  double Trips = 1.0; ///< Estimated iterations per entry.
  unsigned Line = 0;  ///< Source line of the loop header, when known.
};

/// The static work estimate for one function.
struct CostEstimate {
  /// Estimated thread-cycles executed by one work item.
  double PerItemCycles = 0.0;
  /// True when any loop needed the fallback trip count.
  bool UsedFallback = false;
  std::vector<LoopTripInfo> LoopInfo;
};

/// Estimates \p G's function. Appends a CostFallback diagnostic per
/// unanalysable loop to \p Diags when non-null.
CostEstimate estimateCost(const Cfg &G, const UniformityAnalysis &UA,
                          const IntervalAnalysis &IA,
                          const CostWeights &W = CostWeights(),
                          std::vector<Diagnostic> *Diags = nullptr);

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_COSTPRIOR_H
