//===- kir/analysis/CostPrior.cpp - Static work estimation ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/analysis/CostPrior.h"

#include "kir/Module.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/Intervals.h"
#include "kir/analysis/Uniformity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace accel;
using namespace accel::kir;
using namespace accel::kir::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Expression provenance
//===----------------------------------------------------------------------===//

/// What flows into an integer expression; drives both the coalescing
/// classification of divergent addresses and the loop-bound classes.
struct Provenance {
  bool SeesData = false;      ///< Loaded from global/local memory.
  bool SeesId = false;        ///< Work-item id builtins.
  bool SeesArgument = false;  ///< Kernel arguments.
  bool SeesLocalSize = false; ///< get_local_size/get_num_groups class.
  bool NonAffine = false;     ///< Divergence passed through mul/div/rem/...

  void merge(const Provenance &O) {
    SeesData |= O.SeesData;
    SeesId |= O.SeesId;
    SeesArgument |= O.SeesArgument;
    SeesLocalSize |= O.SeesLocalSize;
    NonAffine |= O.NonAffine;
  }
};

const AllocaInst *asDirectAlloca(const Value *Ptr) {
  return dyn_cast<AllocaInst>(Ptr);
}

const Value *stripCasts(const Value *V) {
  while (const auto *C = dyn_cast<CastInst>(V))
    V = C->src();
  return V;
}

/// Walks the expression DAG behind \p V, chasing loads of private
/// allocas into every value stored to them. Cycles (induction updates)
/// resolve optimistically.
class ProvenanceScanner {
public:
  ProvenanceScanner(const Function &F, const UniformityAnalysis &UA)
      : UA(UA) {
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (const auto *St = dyn_cast<StoreInst>(I.get()))
          if (const AllocaInst *A = asDirectAlloca(St->pointer()))
            StoredValues[A].push_back(St->value());
  }

  Provenance scan(const Value *V) {
    std::set<const Value *> Visiting;
    return scanImpl(V, Visiting, 0);
  }

  /// True when every divergent contribution to \p V is an id plus
  /// uniform terms — neighbouring work items touch neighbouring
  /// addresses (a coalesced access).
  bool isIdAffine(const Value *V) {
    Provenance P = scan(V);
    return !P.NonAffine;
  }

private:
  Provenance scanImpl(const Value *V, std::set<const Value *> &Visiting,
                      unsigned Depth) {
    if (Depth > 48 || !Visiting.insert(V).second)
      return {};
    auto Done = [&](Provenance P) {
      Visiting.erase(V);
      return P;
    };

    if (isa<Constant>(V))
      return Done({});
    if (isa<Argument>(V)) {
      Provenance P;
      P.SeesArgument = true;
      return Done(P);
    }
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return Done({});

    switch (I->instKind()) {
    case InstKind::Cast:
      return Done(scanImpl(cast<CastInst>(*I).src(), Visiting, Depth + 1));
    case InstKind::Binary: {
      const auto &B = cast<BinaryInst>(*I);
      Provenance L = scanImpl(B.lhs(), Visiting, Depth + 1);
      Provenance R = scanImpl(B.rhs(), Visiting, Depth + 1);
      Provenance P = L;
      P.merge(R);
      switch (B.op()) {
      case BinOpKind::Add:
      case BinOpKind::Sub:
        break; // Affine-preserving.
      default:
        // Scaling/dividing/wrapping a divergent index by a *uniform*
        // amount keeps neighbouring lanes clustered (a stride change, a
        // collapse, or a window wrap). Combining two divergent values
        // through anything but +/- scatters them.
        if (UA.isDivergent(B.lhs()) && UA.isDivergent(B.rhs()))
          P.NonAffine = true;
        break;
      }
      return Done(P);
    }
    case InstKind::Select: {
      const auto &S = cast<SelectInst>(*I);
      Provenance P = scanImpl(S.trueValue(), Visiting, Depth + 1);
      P.merge(scanImpl(S.falseValue(), Visiting, Depth + 1));
      if (UA.isDivergent(S.cond()))
        P.NonAffine = true;
      return Done(P);
    }
    case InstKind::Gep: {
      // Address arithmetic: base plus an element index. The constant
      // element scaling preserves lane clustering, so affinity is just
      // the merge of what flows into the base and the index.
      const auto &G = cast<GepInst>(*I);
      Provenance P = scanImpl(G.pointer(), Visiting, Depth + 1);
      P.merge(scanImpl(G.index(), Visiting, Depth + 1));
      return Done(P);
    }
    case InstKind::Load: {
      const auto &L = cast<LoadInst>(*I);
      const Value *Ptr = L.pointer();
      if (const AllocaInst *A = asDirectAlloca(Ptr)) {
        Provenance P;
        auto It = StoredValues.find(A);
        if (It != StoredValues.end())
          for (const Value *SV : It->second)
            P.merge(scanImpl(SV, Visiting, Depth + 1));
        return Done(P);
      }
      // Any other load is data; if the loaded value diverges it
      // scatters whatever consumes it.
      Provenance P;
      P.SeesData = true;
      if (UA.isDivergent(I))
        P.NonAffine = true;
      return Done(P);
    }
    case InstKind::Builtin: {
      const auto &B = cast<BuiltinInst>(*I);
      Provenance P;
      switch (B.builtinKind()) {
      case BuiltinKind::GetGlobalId:
      case BuiltinKind::GetLocalId:
      case BuiltinKind::RtGlobalId:
        P.SeesId = true;
        break;
      case BuiltinKind::GetGroupId:
      case BuiltinKind::RtGroupId:
        break;
      case BuiltinKind::GetLocalSize:
      case BuiltinKind::GetGlobalSize:
      case BuiltinKind::GetNumGroups:
      case BuiltinKind::RtGlobalSize:
      case BuiltinKind::RtNumGroups:
        P.SeesLocalSize = true;
        break;
      case BuiltinKind::IMin:
      case BuiltinKind::IMax:
      case BuiltinKind::IAbs:
        for (const Value *Op : I->operands())
          P.merge(scanImpl(Op, Visiting, Depth + 1));
        break;
      default:
        if (UA.isDivergent(I))
          P.NonAffine = true;
        break;
      }
      return Done(P);
    }
    default:
      if (UA.isDivergent(I)) {
        Provenance P;
        P.NonAffine = true;
        return Done(P);
      }
      return Done({});
    }
  }

  const UniformityAnalysis &UA;
  std::map<const AllocaInst *, std::vector<const Value *>> StoredValues;
};

//===----------------------------------------------------------------------===//
// Trip-count derivation
//===----------------------------------------------------------------------===//

const AllocaInst *loadedAlloca(const Value *V) {
  const auto *L = dyn_cast<LoadInst>(stripCasts(V));
  if (!L)
    return nullptr;
  const auto *A = asDirectAlloca(L->pointer());
  if (!A || A->count() != 1)
    return nullptr;
  if (A->elemKind() != Type::Kind::I32 && A->elemKind() != Type::Kind::I64)
    return nullptr;
  return A;
}

/// The recognised induction-update shapes.
struct UpdatePattern {
  enum class Kind { None, AddConst, SubConst, AddVar, MulConst } K =
      Kind::None;
  int64_t Step = 0;           ///< For AddConst/SubConst/MulConst.
  const Value *StepExpr = nullptr; ///< For AddVar.
};

UpdatePattern matchUpdate(const AllocaInst *A, const Value *Stored) {
  const auto *B = dyn_cast<BinaryInst>(stripCasts(Stored));
  if (!B)
    return {};
  const Value *L = B->lhs();
  const Value *R = B->rhs();
  bool LhsIsInd = loadedAlloca(L) == A;
  bool RhsIsInd = loadedAlloca(R) == A;
  if (!LhsIsInd && !RhsIsInd)
    return {};
  const Value *Other = LhsIsInd ? R : L;
  const auto *C = dyn_cast<Constant>(stripCasts(Other));

  UpdatePattern P;
  switch (B->op()) {
  case BinOpKind::Add:
    if (C) {
      P.K = UpdatePattern::Kind::AddConst;
      P.Step = C->intValue();
    } else {
      P.K = UpdatePattern::Kind::AddVar;
      P.StepExpr = Other;
    }
    return P;
  case BinOpKind::Sub:
    if (LhsIsInd && C) {
      P.K = UpdatePattern::Kind::SubConst;
      P.Step = C->intValue();
      return P;
    }
    return {};
  case BinOpKind::Mul:
    if (C && C->intValue() >= 2) {
      P.K = UpdatePattern::Kind::MulConst;
      P.Step = C->intValue();
      return P;
    }
    return {};
  case BinOpKind::Shl:
    if (RhsIsInd)
      return {};
    if (C && C->intValue() >= 1 && C->intValue() < 62) {
      P.K = UpdatePattern::Kind::MulConst;
      P.Step = int64_t(1) << C->intValue();
      return P;
    }
    return {};
  default:
    return {};
  }
}

CmpPred swapPred(CmpPred P) {
  switch (P) {
  case CmpPred::SLT:
    return CmpPred::SGT;
  case CmpPred::SLE:
    return CmpPred::SGE;
  case CmpPred::SGT:
    return CmpPred::SLT;
  case CmpPred::SGE:
    return CmpPred::SLE;
  default:
    return P;
  }
}

unsigned firstLine(const BasicBlock *BB) {
  for (const auto &I : BB->instructions())
    if (I->line())
      return I->line();
  return 0;
}

struct LoopAnalyzer {
  const Cfg &G;
  const UniformityAnalysis &UA;
  const IntervalAnalysis &IA;
  ProvenanceScanner &Prov;
  const CostWeights &W;

  LoopTripInfo analyze(const CfgLoop &L, std::string *FallbackWhy) {
    LoopTripInfo Info;
    Info.Line = firstLine(G.block(L.Header));
    Info.Trips = W.TripFallback;

    const auto *Br =
        dyn_cast_or_null<BrInst>(G.block(L.Header)->terminator());
    if (!Br || !Br->isConditional()) {
      *FallbackWhy = "loop header has no conditional exit";
      return Info;
    }
    const auto *Cmp = dyn_cast<CmpInst>(stripCasts(Br->cond()));
    if (!Cmp) {
      *FallbackWhy = "loop condition is not a comparison";
      return Info;
    }

    // Pick the comparison side that is a loop-updated scalar alloca.
    const AllocaInst *Ind = nullptr;
    const Value *Bound = nullptr;
    CmpPred Pred = Cmp->pred();
    for (int Side = 0; Side != 2 && !Ind; ++Side) {
      const Value *Cand = Side == 0 ? Cmp->lhs() : Cmp->rhs();
      const AllocaInst *A = loadedAlloca(Cand);
      if (A && hasStoreInLoop(A, L)) {
        Ind = A;
        Bound = Side == 0 ? Cmp->rhs() : Cmp->lhs();
        if (Side == 1)
          Pred = swapPred(Pred);
      }
    }
    if (!Ind) {
      *FallbackWhy = "no loop-updated induction variable in the condition";
      return Info;
    }
    if (Cmp->line())
      Info.Line = Cmp->line();

    // Every in-loop store to the induction variable must be a
    // recognised update; the first one fixes the step.
    UpdatePattern Update;
    for (unsigned B : L.Blocks) {
      for (const auto &IPtr : G.block(B)->instructions()) {
        const auto *St = dyn_cast<StoreInst>(IPtr.get());
        if (!St || asDirectAlloca(St->pointer()) != Ind)
          continue;
        UpdatePattern P = matchUpdate(Ind, St->value());
        if (P.K == UpdatePattern::Kind::None) {
          *FallbackWhy = "unrecognised update of the loop variable '" +
                         (Ind->name().empty() ? std::string("<tmp>")
                                              : Ind->name()) +
                         "'";
          return Info;
        }
        if (Update.K == UpdatePattern::Kind::None)
          Update = P;
      }
    }
    if (Update.K == UpdatePattern::Kind::None) {
      *FallbackWhy = "loop variable is never updated inside the loop";
      return Info;
    }

    // Initial value and bound, evaluated at the loop preheader.
    AllocaState PreState;
    if (const BasicBlock *Pre = preheader(L))
      PreState = IA.stateBefore(Pre->terminator());
    Interval Init = Interval::full();
    if (auto It = PreState.find(Ind); It != PreState.end())
      Init = It->second;
    Interval BoundIv = evalValue(Bound, PreState);

    double Trips = -1;
    switch (Update.K) {
    case UpdatePattern::Kind::AddConst:
    case UpdatePattern::Kind::SubConst: {
      int64_t Step = Update.K == UpdatePattern::Kind::AddConst
                         ? Update.Step
                         : -Update.Step;
      if (Step > 0 &&
          (Pred == CmpPred::SLT || Pred == CmpPred::SLE ||
           Pred == CmpPred::NE || Pred == CmpPred::ULT) &&
          Init.hasLowerBound() && BoundIv.hasUpperBound()) {
        double Span = double(BoundIv.Hi) - double(Init.Lo) +
                      (Pred == CmpPred::SLE ? 1 : 0);
        Trips = std::ceil(Span / double(Step));
      } else if (Step < 0 &&
                 (Pred == CmpPred::SGT || Pred == CmpPred::SGE) &&
                 Init.hasUpperBound() && BoundIv.hasLowerBound()) {
        double Span = double(Init.Hi) - double(BoundIv.Lo) +
                      (Pred == CmpPred::SGE ? 1 : 0);
        Trips = std::ceil(Span / double(-Step));
      }
      break;
    }
    case UpdatePattern::Kind::MulConst:
      if ((Pred == CmpPred::SLT || Pred == CmpPred::SLE) &&
          Init.hasLowerBound() && Init.Lo >= 1 && BoundIv.hasUpperBound() &&
          BoundIv.Hi >= 1) {
        Trips = std::ceil(std::log(double(BoundIv.Hi) / double(Init.Lo)) /
                          std::log(double(Update.Step))) +
                (Pred == CmpPred::SLE ? 1 : 0);
      }
      break;
    case UpdatePattern::Kind::AddVar: {
      // The classic strided work-group loop "i += get_local_size(0)"
      // covers Span elements with one work group: divide by the
      // assumed group size.
      Provenance SP = Prov.scan(Update.StepExpr);
      if (SP.SeesLocalSize && Init.hasLowerBound() &&
          BoundIv.hasUpperBound()) {
        double Span = double(BoundIv.Hi) - std::max(0.0, double(Init.Lo));
        Trips = std::ceil(Span / W.StrideWGSize);
      }
      break;
    }
    case UpdatePattern::Kind::None:
      break;
    }

    if (Trips >= 0) {
      Info.BoundKind = TripBoundKind::Exact;
      Info.Trips = std::clamp(Trips, 1.0, W.MaxTripCount);
      return Info;
    }

    // No numeric bound: classify by what the bound expression reads.
    Provenance BP = Prov.scan(Bound);
    if (BP.SeesData) {
      Info.BoundKind = TripBoundKind::Data;
      Info.Trips = W.TripData;
    } else if (BP.SeesId) {
      Info.BoundKind = TripBoundKind::WorkItem;
      Info.Trips = W.TripWorkItem;
    } else if (BP.SeesArgument) {
      Info.BoundKind = TripBoundKind::Argument;
      Info.Trips = W.TripArgument;
    } else {
      *FallbackWhy = "loop bound has no derivable range or provenance";
    }
    return Info;
  }

  bool hasStoreInLoop(const AllocaInst *A, const CfgLoop &L) const {
    for (unsigned B : L.Blocks)
      for (const auto &IPtr : G.block(B)->instructions())
        if (const auto *St = dyn_cast<StoreInst>(IPtr.get()))
          if (asDirectAlloca(St->pointer()) == A)
            return true;
    return false;
  }

  const BasicBlock *preheader(const CfgLoop &L) const {
    const BasicBlock *Pre = nullptr;
    for (unsigned P : G.predecessors(L.Header)) {
      if (L.contains(P))
        continue;
      if (Pre)
        return nullptr; // Multiple entries: no unique preheader.
      Pre = G.block(P);
    }
    return Pre;
  }
};

//===----------------------------------------------------------------------===//
// Instruction weights
//===----------------------------------------------------------------------===//

/// Memoized per-function body costs so call sites can charge the
/// callee's actual work instead of a flat overhead.
struct CalleeCosts {
  std::map<const Function *, double> Memo;
  std::set<const Function *> Visiting;
};

double calleeBodyCost(const Function &F, const CostWeights &W,
                      CalleeCosts &Callees);

/// True when the gep index wraps through a small constant modulus or
/// mask: successive accesses revisit a window of at most W.CacheWindow
/// elements, so the data stays cache-resident.
bool isCacheWindowIndex(const Value *Index, const CostWeights &W) {
  const auto *B = dyn_cast<BinaryInst>(stripCasts(Index));
  if (!B)
    return false;
  if (B->op() != BinOpKind::SRem && B->op() != BinOpKind::And)
    return false;
  const auto *C = dyn_cast<Constant>(stripCasts(B->rhs()));
  if (!C)
    return false;
  int64_t Window = C->intValue() + (B->op() == BinOpKind::And ? 1 : 0);
  return Window > 0 && double(Window) <= W.CacheWindow;
}

double memoryWeight(const Value *Ptr, bool IsStore,
                    const UniformityAnalysis &UA, ProvenanceScanner &Prov,
                    const CostWeights &W) {
  if (!Ptr->type().isPtr())
    return W.Alu;
  switch (Ptr->type().addrSpace()) {
  case AddrSpaceKind::Private:
    return W.PrivateMem;
  case AddrSpaceKind::Local:
    return W.LocalMem;
  case AddrSpaceKind::Global:
    break;
  }
  double Load;
  if (const auto *G = dyn_cast<GepInst>(Ptr);
      G && isCacheWindowIndex(G->index(), W))
    Load = W.CacheResident;
  else if (!UA.isDivergent(Ptr))
    Load = W.GlobalUniform;
  else
    Load = Prov.isIdAffine(Ptr) ? W.GlobalCoalesced : W.GlobalGather;
  return IsStore ? Load * W.StoreFactor : Load;
}

double instructionWeight(const Instruction *I, const UniformityAnalysis &UA,
                         ProvenanceScanner &Prov, const CostWeights &W,
                         CalleeCosts &Callees) {
  switch (I->instKind()) {
  case InstKind::Load:
    return memoryWeight(cast<LoadInst>(*I).pointer(), /*IsStore=*/false, UA,
                        Prov, W);
  case InstKind::Store:
    return memoryWeight(cast<StoreInst>(*I).pointer(), /*IsStore=*/true, UA,
                        Prov, W);
  case InstKind::Binary: {
    const auto &B = cast<BinaryInst>(*I);
    switch (B.op()) {
    case BinOpKind::SDiv:
    case BinOpKind::SRem:
      // A constant divisor lowers to shifts/multiply tricks.
      return isa<Constant>(stripCasts(B.rhs())) ? W.Alu : W.MathDiv;
    case BinOpKind::FDiv:
      return W.MathDiv;
    default:
      return W.Alu;
    }
  }
  case InstKind::Builtin: {
    const auto &B = cast<BuiltinInst>(*I);
    switch (B.builtinKind()) {
    case BuiltinKind::Barrier:
      return W.BarrierCost;
    case BuiltinKind::Sqrt:
    case BuiltinKind::Rsqrt:
      return W.MathDiv;
    case BuiltinKind::Sin:
    case BuiltinKind::Cos:
    case BuiltinKind::Exp:
    case BuiltinKind::Log:
      return W.MathTrans;
    case BuiltinKind::AtomicAdd:
    case BuiltinKind::AtomicSub:
    case BuiltinKind::AtomicMin:
    case BuiltinKind::AtomicMax:
    case BuiltinKind::AtomicXchg: {
      const Value *Ptr = B.operand(0);
      bool Local = Ptr->type().isPtr() &&
                   Ptr->type().addrSpace() == AddrSpaceKind::Local;
      return Local ? W.AtomicLocal : W.AtomicGlobal;
    }
    case BuiltinKind::RtIsMaster:
    case BuiltinKind::RtEnvInit:
    case BuiltinKind::RtSchedWGroup:
    case BuiltinKind::RtGlobalId:
    case BuiltinKind::RtGroupId:
    case BuiltinKind::RtGlobalSize:
    case BuiltinKind::RtNumGroups:
      return 2 * W.Alu;
    default:
      return W.Alu;
    }
  }
  case InstKind::Call: {
    const Function *Callee = cast<CallInst>(*I).callee();
    double Body = Callee ? calleeBodyCost(*Callee, W, Callees) : 0;
    return W.CallOverhead + Body;
  }
  case InstKind::Alloca:
  case InstKind::LocalAddr:
    return 0;
  default:
    return W.Alu;
  }
}

/// The trip-scaled weighted instruction sum for one function, shared by
/// the public entry point and call-site charging. Fills \p Est and
/// emits fallback diagnostics only for the outermost function.
double rawBodyCost(const Cfg &G, const UniformityAnalysis &UA,
                   const IntervalAnalysis &IA, const CostWeights &W,
                   CalleeCosts &Callees, CostEstimate *Est,
                   std::vector<Diagnostic> *Diags) {
  const Function &F = G.function();
  ProvenanceScanner Prov(F, UA);
  LoopAnalyzer LA{G, UA, IA, Prov, W};

  std::vector<LoopTripInfo> LoopInfo;
  LoopInfo.reserve(G.loops().size());
  for (const CfgLoop &L : G.loops()) {
    std::string Why;
    LoopTripInfo Info = LA.analyze(L, &Why);
    if (!Why.empty()) {
      Info.BoundKind = TripBoundKind::Fallback;
      if (Est)
        Est->UsedFallback = true;
      if (Diags) {
        Diagnostic D;
        D.DiagKind = Diagnostic::Kind::CostFallback;
        D.FunctionName = F.name();
        D.BlockName = G.block(L.Header)->name();
        D.Line = Info.Line;
        D.Message = "cannot derive a trip count (" + Why + "); assuming " +
                    std::to_string(static_cast<long>(W.TripFallback)) +
                    " iterations";
        Diags->push_back(std::move(D));
      }
    }
    LoopInfo.push_back(Info);
  }

  double Total = 0;
  for (unsigned B : G.reversePostOrder()) {
    double Mult = 1.0;
    for (unsigned LI = 0; LI != G.loops().size(); ++LI)
      if (G.loops()[LI].contains(B))
        Mult *= LoopInfo[LI].Trips;
    Mult = std::min(Mult, double(W.MaxTripCount));
    double BlockCost = 0;
    for (const auto &IPtr : G.block(B)->instructions())
      BlockCost += instructionWeight(IPtr.get(), UA, Prov, W, Callees);
    Total += Mult * BlockCost;
  }
  if (Est)
    Est->LoopInfo = std::move(LoopInfo);
  return Total;
}

double calleeBodyCost(const Function &F, const CostWeights &W,
                      CalleeCosts &Callees) {
  if (F.isDeclaration())
    return 0;
  auto It = Callees.Memo.find(&F);
  if (It != Callees.Memo.end())
    return It->second;
  if (!Callees.Visiting.insert(&F).second)
    return 0; // Recursive cycle: charge the overhead only.
  Cfg G(F);
  UniformityAnalysis UA(G);
  IntervalAnalysis IA(G);
  double C = rawBodyCost(G, UA, IA, W, Callees, nullptr, nullptr);
  Callees.Visiting.erase(&F);
  Callees.Memo[&F] = C;
  return C;
}

} // namespace

const char *analysis::tripBoundKindName(TripBoundKind K) {
  switch (K) {
  case TripBoundKind::Exact:
    return "exact";
  case TripBoundKind::Argument:
    return "argument";
  case TripBoundKind::WorkItem:
    return "work-item";
  case TripBoundKind::Data:
    return "data";
  case TripBoundKind::Fallback:
    return "fallback";
  }
  return "unknown";
}

CostEstimate analysis::estimateCost(const Cfg &G, const UniformityAnalysis &UA,
                                    const IntervalAnalysis &IA,
                                    const CostWeights &W,
                                    std::vector<Diagnostic> *Diags) {
  CostEstimate Est;
  CalleeCosts Callees;
  double Total = rawBodyCost(G, UA, IA, W, Callees, &Est, Diags);
  Est.PerItemCycles = std::max(W.MinPerItem, Total);
  return Est;
}
