//===- kir/analysis/Intervals.h - Integer range analysis --------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval (value-range) analysis over KIR integers. Because KIR has no
/// phis, all cross-block integer flow goes through single-slot private
/// allocas; the flow-sensitive part of the analysis is therefore a
/// forward dataflow whose state maps each such alloca to the interval
/// of values it may hold. SSA expressions are evaluated on demand
/// against that state. Used by the RT-window safety lint (gep offset
/// bounds) and by the static cost prior (trip-count bounds).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_ANALYSIS_INTERVALS_H
#define ACCEL_KIR_ANALYSIS_INTERVALS_H

#include "kir/analysis/Cfg.h"

#include <cstdint>
#include <map>

namespace accel {
namespace kir {

class Instruction;
class Value;

namespace analysis {

/// A closed integer interval [Lo, Hi] with saturating arithmetic; the
/// INT64 extremes act as -inf / +inf.
struct Interval {
  static constexpr int64_t NegInf = INT64_MIN;
  static constexpr int64_t PosInf = INT64_MAX;

  int64_t Lo = NegInf;
  int64_t Hi = PosInf;

  static Interval full() { return {}; }
  static Interval constant(int64_t C) { return {C, C}; }
  static Interval range(int64_t Lo, int64_t Hi) { return {Lo, Hi}; }
  static Interval nonNegative() { return {0, PosInf}; }

  bool isFull() const { return Lo == NegInf && Hi == PosInf; }
  bool isConstant() const { return Lo == Hi; }
  bool hasLowerBound() const { return Lo != NegInf; }
  bool hasUpperBound() const { return Hi != PosInf; }

  /// \returns true when this interval and [OtherLo, OtherHi] share at
  /// least one point.
  bool mayIntersect(int64_t OtherLo, int64_t OtherHi) const {
    return Lo <= OtherHi && OtherLo <= Hi;
  }

  /// Smallest interval containing both.
  Interval hull(const Interval &O) const {
    return {Lo < O.Lo ? Lo : O.Lo, Hi > O.Hi ? Hi : O.Hi};
  }

  Interval add(const Interval &O) const;
  Interval sub(const Interval &O) const;
  Interval mul(const Interval &O) const;

  bool operator==(const Interval &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }
};

/// Alloca-content state: keys are single-slot integer AllocaInst.
using AllocaState = std::map<const Instruction *, Interval>;

/// Evaluates the SSA expression \p V to an interval, reading alloca
/// contents from \p S. Unknown constructs evaluate to the full range.
Interval evalValue(const Value *V, const AllocaState &S);

/// Flow-sensitive interval analysis of one function (via its Cfg).
class IntervalAnalysis {
public:
  explicit IntervalAnalysis(const Cfg &G);

  /// Alloca state on entry to block \p B.
  const AllocaState &blockInput(unsigned B) const { return In[B]; }

  /// Alloca state immediately before \p I executes (replays the
  /// block's transfer up to \p I).
  AllocaState stateBefore(const Instruction *I) const;

  /// Interval of \p V at the program point just before \p I.
  Interval valueBefore(const Instruction *I, const Value *V) const;

private:
  const Cfg &G;
  std::vector<AllocaState> In;
};

} // namespace analysis
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_ANALYSIS_INTERVALS_H
