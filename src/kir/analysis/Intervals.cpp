//===- kir/analysis/Intervals.cpp - Integer range analysis ------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/analysis/Intervals.h"

#include "kir/Module.h"
#include "kir/analysis/Dataflow.h"

#include <algorithm>

using namespace accel;
using namespace accel::kir;
using namespace accel::kir::analysis;

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

namespace {

/// Saturating addition treating the INT64 extremes as infinities.
int64_t satAdd(int64_t A, int64_t B) {
  if (A == Interval::NegInf || B == Interval::NegInf)
    return Interval::NegInf;
  if (A == Interval::PosInf || B == Interval::PosInf)
    return Interval::PosInf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return A > 0 ? Interval::PosInf : Interval::NegInf;
  return R;
}

int64_t satMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  bool Neg = (A < 0) != (B < 0);
  if (A == Interval::NegInf || A == Interval::PosInf ||
      B == Interval::NegInf || B == Interval::PosInf)
    return Neg ? Interval::NegInf : Interval::PosInf;
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return Neg ? Interval::NegInf : Interval::PosInf;
  return R;
}

} // namespace

Interval Interval::add(const Interval &O) const {
  return {satAdd(Lo, O.Lo), satAdd(Hi, O.Hi)};
}

Interval Interval::sub(const Interval &O) const {
  int64_t NegHi = O.Hi == PosInf ? NegInf : (O.Hi == NegInf ? PosInf : -O.Hi);
  int64_t NegLo = O.Lo == NegInf ? PosInf : (O.Lo == PosInf ? NegInf : -O.Lo);
  return {satAdd(Lo, NegHi), satAdd(Hi, NegLo)};
}

Interval Interval::mul(const Interval &O) const {
  int64_t C[4] = {satMul(Lo, O.Lo), satMul(Lo, O.Hi), satMul(Hi, O.Lo),
                  satMul(Hi, O.Hi)};
  return {*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
}

//===----------------------------------------------------------------------===//
// SSA expression evaluation
//===----------------------------------------------------------------------===//

namespace {

/// \returns the alloca behind \p Ptr when it is a plain single-slot
/// integer alloca reference (no gep displacement), else null.
const AllocaInst *directIntAlloca(const Value *Ptr) {
  const auto *A = dyn_cast<AllocaInst>(Ptr);
  if (!A || A->count() != 1)
    return nullptr;
  if (A->elemKind() != Type::Kind::I32 && A->elemKind() != Type::Kind::I64)
    return nullptr;
  return A;
}

Interval evalImpl(const Value *V, const AllocaState &S, unsigned Depth) {
  if (Depth > 32)
    return Interval::full();

  if (const auto *C = dyn_cast<Constant>(V)) {
    if (C->type().isInt() || C->type().isBool())
      return Interval::constant(C->intValue());
    return Interval::full();
  }

  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return Interval::full(); // Arguments and anything else: unknown.

  switch (I->instKind()) {
  case InstKind::Binary: {
    const auto &B = cast<BinaryInst>(*I);
    Interval L = evalImpl(B.lhs(), S, Depth + 1);
    Interval R = evalImpl(B.rhs(), S, Depth + 1);
    switch (B.op()) {
    case BinOpKind::Add:
      return L.add(R);
    case BinOpKind::Sub:
      return L.sub(R);
    case BinOpKind::Mul:
      return L.mul(R);
    case BinOpKind::SDiv:
      // Only the easy, common shape: non-negative dividend, positive
      // constant divisor.
      if (R.isConstant() && R.Lo > 0 && L.Lo >= 0)
        return {L.Lo / R.Lo,
                L.Hi == Interval::PosInf ? Interval::PosInf : L.Hi / R.Lo};
      return Interval::full();
    case BinOpKind::SRem:
      // Remainder keeps the dividend's sign; for a non-negative
      // dividend and positive constant divisor the result is
      // [0, divisor-1].
      if (R.isConstant() && R.Lo > 0 && L.Lo >= 0)
        return {0, R.Lo - 1};
      return Interval::full();
    case BinOpKind::And:
      if (R.isConstant() && R.Lo >= 0)
        return {0, R.Lo};
      if (L.isConstant() && L.Lo >= 0)
        return {0, L.Lo};
      return Interval::full();
    case BinOpKind::Shl:
      if (R.isConstant() && R.Lo >= 0 && R.Lo < 62)
        return L.mul(Interval::constant(int64_t(1) << R.Lo));
      return Interval::full();
    case BinOpKind::AShr:
      if (R.isConstant() && R.Lo >= 0 && R.Lo < 62 && L.Lo >= 0)
        return {L.Lo >> R.Lo,
                L.Hi == Interval::PosInf ? Interval::PosInf : L.Hi >> R.Lo};
      return Interval::full();
    default:
      return Interval::full();
    }
  }
  case InstKind::Cast: {
    const auto &C = cast<CastInst>(*I);
    Interval Src = evalImpl(C.src(), S, Depth + 1);
    switch (C.castKind()) {
    case CastKind::SExt:
      return Src;
    case CastKind::ZExtBool:
      return {std::max<int64_t>(Src.Lo, 0), std::min<int64_t>(Src.Hi, 1)};
    case CastKind::Trunc:
      // Exact when the value provably fits in i32.
      if (Src.Lo >= INT32_MIN && Src.Hi <= INT32_MAX)
        return Src;
      return Interval::full();
    default:
      return Interval::full();
    }
  }
  case InstKind::Select: {
    const auto &Sel = cast<SelectInst>(*I);
    return evalImpl(Sel.trueValue(), S, Depth + 1)
        .hull(evalImpl(Sel.falseValue(), S, Depth + 1));
  }
  case InstKind::Load: {
    if (const AllocaInst *A = directIntAlloca(cast<LoadInst>(*I).pointer())) {
      auto It = S.find(A);
      if (It != S.end())
        return It->second;
    }
    return Interval::full();
  }
  case InstKind::Builtin: {
    const auto &B = cast<BuiltinInst>(*I);
    switch (B.builtinKind()) {
    case BuiltinKind::GetGlobalId:
    case BuiltinKind::GetLocalId:
    case BuiltinKind::GetGroupId:
    case BuiltinKind::RtGlobalId:
    case BuiltinKind::RtGroupId:
      return Interval::nonNegative();
    case BuiltinKind::GetGlobalSize:
    case BuiltinKind::GetLocalSize:
    case BuiltinKind::GetNumGroups:
    case BuiltinKind::GetWorkDim:
    case BuiltinKind::RtGlobalSize:
    case BuiltinKind::RtNumGroups:
      return {1, Interval::PosInf};
    case BuiltinKind::IAbs:
      return Interval::nonNegative();
    case BuiltinKind::IMin: {
      Interval L = evalImpl(B.operand(0), S, Depth + 1);
      Interval R = evalImpl(B.operand(1), S, Depth + 1);
      return {std::min(L.Lo, R.Lo), std::min(L.Hi, R.Hi)};
    }
    case BuiltinKind::IMax: {
      Interval L = evalImpl(B.operand(0), S, Depth + 1);
      Interval R = evalImpl(B.operand(1), S, Depth + 1);
      return {std::max(L.Lo, R.Lo), std::max(L.Hi, R.Hi)};
    }
    default:
      return Interval::full();
    }
  }
  default:
    return Interval::full();
  }
}

} // namespace

Interval analysis::evalValue(const Value *V, const AllocaState &S) {
  return evalImpl(V, S, 0);
}

//===----------------------------------------------------------------------===//
// Flow-sensitive dataflow over alloca contents
//===----------------------------------------------------------------------===//

namespace {

/// Applies one instruction's effect on the alloca state.
void applyInst(const Instruction *I, AllocaState &S) {
  if (const auto *St = dyn_cast<StoreInst>(I)) {
    if (const AllocaInst *A = directIntAlloca(St->pointer())) {
      S[A] = evalValue(St->value(), S);
      return;
    }
    // A store through a gep of an alloca may hit any slot; drop what we
    // know about that alloca.
    const Value *P = St->pointer();
    while (const auto *G = dyn_cast<GepInst>(P))
      P = G->pointer();
    if (const auto *A = dyn_cast<AllocaInst>(P))
      S[A] = Interval::full();
    return;
  }
  if (const auto *C = dyn_cast<CallInst>(I)) {
    // An alloca whose address escapes into the callee may be rewritten.
    for (const Value *Op : C->operands()) {
      const Value *P = Op;
      while (const auto *G = dyn_cast<GepInst>(P))
        P = G->pointer();
      if (const auto *A = dyn_cast<AllocaInst>(P))
        S[A] = Interval::full();
    }
  }
}

struct IntervalDomain {
  using State = AllocaState;

  State boundary() { return {}; }
  State top() { return {}; }

  bool meetInto(State &S, const State &Incoming, bool Widen) {
    bool Changed = false;
    for (const auto &[A, IV] : Incoming) {
      auto It = S.find(A);
      if (It == S.end()) {
        S.emplace(A, IV);
        Changed = true;
        continue;
      }
      Interval H = It->second.hull(IV);
      if (H != It->second) {
        // Widening: a bound still growing after the grace iterations
        // jumps straight to the corresponding infinity.
        if (Widen) {
          if (H.Lo < It->second.Lo)
            H.Lo = Interval::NegInf;
          if (H.Hi > It->second.Hi)
            H.Hi = Interval::PosInf;
        }
        It->second = H;
        Changed = true;
      }
    }
    return Changed;
  }

  State transfer(unsigned BlockId, const State &In) {
    State S = In;
    const BasicBlock *BB = G.block(BlockId);
    for (const auto &I : BB->instructions())
      applyInst(I.get(), S);
    return S;
  }

  const Cfg &G;
};

} // namespace

IntervalAnalysis::IntervalAnalysis(const Cfg &Graph) : G(Graph) {
  IntervalDomain D{G};
  ForwardDataflow<IntervalDomain> DF(G, D);
  DF.run();
  In.reserve(G.numBlocks());
  for (unsigned B = 0; B != G.numBlocks(); ++B)
    In.push_back(DF.input(B));
}

AllocaState IntervalAnalysis::stateBefore(const Instruction *I) const {
  const BasicBlock *BB = I->parent();
  AllocaState S = In[G.id(BB)];
  for (const auto &Inst : BB->instructions()) {
    if (Inst.get() == I)
      break;
    applyInst(Inst.get(), S);
  }
  return S;
}

Interval IntervalAnalysis::valueBefore(const Instruction *I,
                                       const Value *V) const {
  return evalValue(V, stateBefore(I));
}
