//===- kir/FlatCode.cpp - Flattened code for interpretation ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/FlatCode.h"

#include "support/Casting.h"

using namespace accel;
using namespace accel::kir;

std::unique_ptr<FlatFunction> kir::lowerFunction(const Function &F) {
  auto FF = std::make_unique<FlatFunction>();
  FF->F = &F;

  // Arguments occupy the first register slots.
  std::map<const Value *, uint32_t> Slot;
  uint32_t NextReg = 0;
  for (unsigned I = 0; I != F.numArguments(); ++I)
    Slot[F.argument(I)] = NextReg++;

  // First pass: instruction indices, block starts, value slots.
  std::map<const BasicBlock *, uint32_t> BlockStart;
  uint32_t Index = 0;
  for (const auto &BB : F.blocks()) {
    BlockStart[BB.get()] = Index;
    for (const auto &I : BB->instructions()) {
      if (!I->type().isVoid())
        Slot[I.get()] = NextReg++;
      ++Index;
    }
  }
  FF->NumRegs = NextReg;

  // Second pass: emit flat instructions with resolved operands.
  auto ResolveOperand = [&](const Value *V) {
    FlatOperand Op;
    if (const auto *C = dyn_cast<Constant>(V)) {
      Op.IsImm = true;
      Op.Imm = C->bits();
      return Op;
    }
    auto It = Slot.find(V);
    assert(It != Slot.end() && "operand without a register slot");
    Op.Reg = It->second;
    return Op;
  };

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      FlatInst FI;
      FI.I = I.get();
      if (!I->type().isVoid())
        FI.Dst = Slot.at(I.get());
      for (const Value *Op : I->operands())
        FI.Ops.push_back(ResolveOperand(Op));
      if (const auto *Br = dyn_cast<BrInst>(I.get())) {
        FI.BrTrue = BlockStart.at(Br->trueTarget());
        if (Br->isConditional())
          FI.BrFalse = BlockStart.at(Br->falseTarget());
      }
      FF->Code.push_back(std::move(FI));
    }
  }

  // Local-memory layout: each slot 8-byte aligned.
  uint64_t Offset = 0;
  for (const LocalAllocDecl &Decl : F.localAllocs()) {
    FF->LocalSlotOffsets.push_back(Offset);
    Offset += (Decl.sizeBytes() + 7) & ~static_cast<uint64_t>(7);
  }
  FF->LocalBytes = Offset;
  return FF;
}

const FlatFunction &CodeCache::get(const Function &F) {
  auto It = Cache.find(&F);
  if (It != Cache.end())
    return *It->second;
  auto Lowered = lowerFunction(F);
  const FlatFunction &Ref = *Lowered;
  Cache.emplace(&F, std::move(Lowered));
  return Ref;
}
