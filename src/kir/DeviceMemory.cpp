//===- kir/DeviceMemory.cpp - Simulated device global memory ---------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/DeviceMemory.h"

#include <cassert>
#include <cstring>

using namespace accel;
using namespace accel::kir;

// Address 0 is the null pointer; the first 64 bytes are never handed out.
static constexpr uint64_t ReservedPrefix = 64;

DeviceMemory::DeviceMemory(uint64_t CapacityBytes) : Capacity(CapacityBytes) {
  assert(CapacityBytes > ReservedPrefix && "degenerate device memory");
  Storage.resize(CapacityBytes, 0);
  FreeList.emplace(ReservedPrefix, CapacityBytes - ReservedPrefix);
}

Expected<uint64_t> DeviceMemory::allocate(uint64_t Size) {
  if (Size == 0)
    Size = 8;
  // Keep everything 8-byte aligned so i64 atomics are natural.
  Size = (Size + 7) & ~static_cast<uint64_t>(7);

  for (auto It = FreeList.begin(); It != FreeList.end(); ++It) {
    if (It->second < Size)
      continue;
    uint64_t Addr = It->first;
    uint64_t Remaining = It->second - Size;
    FreeList.erase(It);
    if (Remaining > 0)
      FreeList.emplace(Addr + Size, Remaining);
    Allocations.emplace(Addr, Size);
    Used += Size;
    std::memset(Storage.data() + Addr, 0, Size);
    return Addr;
  }
  return makeError("device memory exhausted: requested " +
                   std::to_string(Size) + " bytes, " +
                   std::to_string(Capacity - Used) + " free");
}

void DeviceMemory::release(uint64_t Addr) {
  auto It = Allocations.find(Addr);
  assert(It != Allocations.end() && "release of unknown allocation");
  uint64_t Size = It->second;
  Allocations.erase(It);
  Used -= Size;

  // Insert into the free list and coalesce with neighbours.
  auto [Pos, Inserted] = FreeList.emplace(Addr, Size);
  assert(Inserted && "double free");
  (void)Inserted;
  if (Pos != FreeList.begin()) {
    auto Prev = std::prev(Pos);
    if (Prev->first + Prev->second == Pos->first) {
      Prev->second += Pos->second;
      FreeList.erase(Pos);
      Pos = Prev;
    }
  }
  auto Next = std::next(Pos);
  if (Next != FreeList.end() && Pos->first + Pos->second == Next->first) {
    Pos->second += Next->second;
    FreeList.erase(Next);
  }
}

uint32_t DeviceMemory::readU32(uint64_t Addr) const {
  assert(inBounds(Addr, 4) && "device read out of bounds");
  uint32_t V;
  std::memcpy(&V, Storage.data() + Addr, 4);
  return V;
}

void DeviceMemory::writeU32(uint64_t Addr, uint32_t Value) {
  assert(inBounds(Addr, 4) && "device write out of bounds");
  std::memcpy(Storage.data() + Addr, &Value, 4);
}

uint64_t DeviceMemory::readU64(uint64_t Addr) const {
  assert(inBounds(Addr, 8) && "device read out of bounds");
  uint64_t V;
  std::memcpy(&V, Storage.data() + Addr, 8);
  return V;
}

void DeviceMemory::writeU64(uint64_t Addr, uint64_t Value) {
  assert(inBounds(Addr, 8) && "device write out of bounds");
  std::memcpy(Storage.data() + Addr, &Value, 8);
}

Expected<int64_t> DeviceMemory::atomicAddI64(uint64_t Addr, int64_t Delta) {
  if (Addr % 8 != 0)
    return makeError("unaligned i64 atomic at device address " +
                     std::to_string(Addr) + " (requires 8-byte alignment)");
  int64_t Old = static_cast<int64_t>(readU64(Addr));
  writeU64(Addr, static_cast<uint64_t>(Old + Delta));
  return Old;
}

Expected<int32_t> DeviceMemory::atomicRmwI32(uint64_t Addr, int32_t Operand,
                                             int32_t (*Op)(int32_t, int32_t)) {
  if (Addr % 4 != 0)
    return makeError("unaligned i32 atomic at device address " +
                     std::to_string(Addr) + " (requires 4-byte alignment)");
  int32_t Old = static_cast<int32_t>(readU32(Addr));
  writeU32(Addr, static_cast<uint32_t>(Op(Old, Operand)));
  return Old;
}

void DeviceMemory::copyIn(uint64_t Addr, const void *Src, uint64_t Size) {
  assert(inBounds(Addr, Size) && "copyIn out of bounds");
  std::memcpy(Storage.data() + Addr, Src, Size);
}

void DeviceMemory::copyOut(uint64_t Addr, void *Dst, uint64_t Size) const {
  assert(inBounds(Addr, Size) && "copyOut out of bounds");
  std::memcpy(Dst, Storage.data() + Addr, Size);
}
