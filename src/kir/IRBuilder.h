//===- kir/IRBuilder.h - Convenience IR construction ------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder that appends instructions to an insertion block, mirroring
/// llvm::IRBuilder. Used by the MiniCL code generator and by the accelOS
/// JIT transform when it synthesises scheduling kernels.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_IRBUILDER_H
#define ACCEL_KIR_IRBUILDER_H

#include "kir/Module.h"

#include <memory>

namespace accel {
namespace kir {

/// Appends instructions to a current insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F), BB(nullptr) {}

  Function *function() const { return F; }

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() const { return BB; }

  /// Source line stamped onto subsequently inserted instructions
  /// (0 disables stamping).
  void setCurrentLine(unsigned Line) { CurLine = Line; }
  unsigned currentLine() const { return CurLine; }

  /// Creates a block in the current function without moving the
  /// insertion point.
  BasicBlock *createBlock(const std::string &Name) {
    return F->createBlock(Name);
  }

  Constant *i32Const(int32_t V) {
    return F->getIntConstant(Type::i32(), V);
  }
  Constant *i64Const(int64_t V) {
    return F->getIntConstant(Type::i64(), V);
  }
  Constant *f32Const(float V) { return F->getFloatConstant(V); }
  Constant *boolConst(bool V) { return F->getBoolConstant(V); }

  Value *binary(BinOpKind Op, Value *LHS, Value *RHS,
                const std::string &Name = "") {
    assert(LHS->type() == RHS->type() && "binary operand type mismatch");
    return insert(std::make_unique<BinaryInst>(Op, LHS, RHS), Name);
  }

  Value *add(Value *L, Value *R, const std::string &Name = "") {
    return binary(BinOpKind::Add, L, R, Name);
  }
  Value *sub(Value *L, Value *R, const std::string &Name = "") {
    return binary(BinOpKind::Sub, L, R, Name);
  }
  Value *mul(Value *L, Value *R, const std::string &Name = "") {
    return binary(BinOpKind::Mul, L, R, Name);
  }

  Value *cmp(CmpPred Pred, Value *LHS, Value *RHS,
             const std::string &Name = "") {
    return insert(std::make_unique<CmpInst>(Pred, LHS, RHS), Name);
  }

  Value *select(Value *Cond, Value *TrueVal, Value *FalseVal,
                const std::string &Name = "") {
    return insert(std::make_unique<SelectInst>(Cond, TrueVal, FalseVal),
                  Name);
  }

  Value *cast(CastKind CK, Value *Src, Type DstTy,
              const std::string &Name = "") {
    if (Src->type() == DstTy)
      return Src;
    return insert(std::make_unique<CastInst>(CK, Src, DstTy), Name);
  }

  /// Coerces an integer value to i64 (no-op when already i64).
  Value *toI64(Value *V, const std::string &Name = "") {
    if (V->type().kind() == Type::Kind::I64)
      return V;
    assert(V->type().kind() == Type::Kind::I32 && "toI64 on non-int");
    return cast(CastKind::SExt, V, Type::i64(), Name);
  }

  Value *allocaVar(Type::Kind ElemKind, uint64_t Count,
                   const std::string &Name = "") {
    return insert(std::make_unique<AllocaInst>(ElemKind, Count), Name);
  }

  Value *localAddr(Type::Kind ElemKind, unsigned SlotIndex,
                   const std::string &Name = "") {
    return insert(std::make_unique<LocalAddrInst>(ElemKind, SlotIndex),
                  Name);
  }

  Value *load(Value *Ptr, const std::string &Name = "") {
    assert(Ptr->type().isPtr() && "load from non-pointer");
    return insert(std::make_unique<LoadInst>(Ptr), Name);
  }

  void store(Value *Ptr, Value *Val) {
    assert(Ptr->type().isPtr() && "store to non-pointer");
    insert(std::make_unique<StoreInst>(Ptr, Val), "");
  }

  Value *gep(Value *Ptr, Value *Index, const std::string &Name = "") {
    return insert(std::make_unique<GepInst>(Ptr, Index), Name);
  }

  Value *call(Function *Callee, std::vector<Value *> Args,
              const std::string &Name = "") {
    return insert(std::make_unique<CallInst>(Callee, Callee->returnType(),
                                             std::move(Args)),
                  Name);
  }

  Value *builtin(BuiltinKind BK, Type RetTy, std::vector<Value *> Args,
                 const std::string &Name = "") {
    return insert(std::make_unique<BuiltinInst>(BK, RetTy, std::move(Args)),
                  Name);
  }

  /// Emits barrier(CLK_LOCAL_MEM_FENCE).
  void barrier() {
    builtin(BuiltinKind::Barrier, Type::voidTy(), {});
  }

  void br(BasicBlock *Target) {
    insert(std::make_unique<BrInst>(Target), "");
  }

  void condBr(Value *Cond, BasicBlock *TrueTarget, BasicBlock *FalseTarget) {
    insert(std::make_unique<BrInst>(Cond, TrueTarget, FalseTarget), "");
  }

  void retVoid() { insert(std::make_unique<RetInst>(), ""); }

  void ret(Value *V) { insert(std::make_unique<RetInst>(V), ""); }

private:
  Value *insert(std::unique_ptr<Instruction> Inst, const std::string &Name) {
    assert(BB && "no insertion point set");
    assert(!BB->terminator() && "inserting into terminated block");
    if (!Name.empty())
      Inst->setName(Name);
    if (CurLine)
      Inst->setLine(CurLine);
    return BB->append(std::move(Inst));
  }

  Function *F;
  BasicBlock *BB;
  unsigned CurLine = 0;
};

} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_IRBUILDER_H
