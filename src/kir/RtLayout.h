//===- kir/RtLayout.h - Device-side scheduling structures -------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory layout of the two structures shared between the accelOS host
/// runtime and the device-side scheduling library (paper Sec. 5/6.3):
///
/// - the Virtual NDRange descriptor ("rt" in Fig. 8b), placed in global
///   device memory by the Kernel Scheduler; and
/// - the per-work-group scheduling descriptor ("sd"), placed in local
///   memory by the generated scheduling kernel.
///
/// Both are arrays of i64 words so the generated IR can address them with
/// ordinary gep/load/store and the i64 atomic dequeue.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_KIR_RTLAYOUT_H
#define ACCEL_KIR_RTLAYOUT_H

#include <cstdint>

namespace accel {
namespace kir {
namespace rtlayout {

/// Word indices within the Virtual NDRange descriptor (global memory).
enum VirtualNDRangeWord : unsigned {
  RTW_Magic = 0,       ///< Integrity marker.
  RTW_TotalGroups = 1, ///< Number of virtual groups to execute.
  RTW_Next = 2,        ///< Atomic dequeue cursor.
  RTW_Batch = 3,       ///< Virtual groups per dequeue (Sec. 6.4).
  RTW_WorkDim = 4,     ///< Dimensionality of the original NDRange.
  RTW_NumGroups0 = 5,  ///< Original group counts per dimension.
  RTW_NumGroups1 = 6,
  RTW_NumGroups2 = 7,
  RTW_LocalSize0 = 8, ///< Work-group size per dimension (unchanged).
  RTW_LocalSize1 = 9,
  RTW_LocalSize2 = 10,
  RTW_GlobalSize0 = 11, ///< Original global sizes per dimension.
  RTW_GlobalSize1 = 12,
  RTW_GlobalSize2 = 13,
  RTW_WordCount = 14
};

/// Word indices within the per-work-group scheduling descriptor (local
/// memory, written by the master work item, read by all).
enum SchedDescWord : unsigned {
  SDW_Status = 0, ///< RUN_CONTINUE or RUN_TERMINATE.
  SDW_Base = 1,   ///< First virtual group of the current batch.
  SDW_End = 2,    ///< One past the last virtual group of the batch.
  SDW_WordCount = 3
};

/// Values of the SDW_Status word.
enum RunStatus : int64_t { RUN_CONTINUE = 0, RUN_TERMINATE = 1 };

/// Magic value marking a live Virtual NDRange descriptor.
constexpr uint64_t VirtualNDRangeMagic = 0xACCE105ULL;

/// Size in bytes of each descriptor.
constexpr uint64_t virtualNDRangeBytes() { return RTW_WordCount * 8; }
constexpr uint64_t schedDescBytes() { return SDW_WordCount * 8; }

} // namespace rtlayout
} // namespace kir
} // namespace accel

#endif // ACCEL_KIR_RTLAYOUT_H
