//===- kir/Instructions.cpp - Instruction name tables ---------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "kir/Instructions.h"

using namespace accel;
using namespace accel::kir;

const char *kir::binOpName(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "add";
  case BinOpKind::Sub:
    return "sub";
  case BinOpKind::Mul:
    return "mul";
  case BinOpKind::SDiv:
    return "sdiv";
  case BinOpKind::SRem:
    return "srem";
  case BinOpKind::And:
    return "and";
  case BinOpKind::Or:
    return "or";
  case BinOpKind::Xor:
    return "xor";
  case BinOpKind::Shl:
    return "shl";
  case BinOpKind::AShr:
    return "ashr";
  case BinOpKind::LShr:
    return "lshr";
  case BinOpKind::FAdd:
    return "fadd";
  case BinOpKind::FSub:
    return "fsub";
  case BinOpKind::FMul:
    return "fmul";
  case BinOpKind::FDiv:
    return "fdiv";
  }
  accel_unreachable("bad binary op");
}

const char *kir::cmpPredName(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::SLT:
    return "slt";
  case CmpPred::SLE:
    return "sle";
  case CmpPred::SGT:
    return "sgt";
  case CmpPred::SGE:
    return "sge";
  case CmpPred::ULT:
    return "ult";
  case CmpPred::UGE:
    return "uge";
  case CmpPred::FOEQ:
    return "foeq";
  case CmpPred::FONE:
    return "fone";
  case CmpPred::FOLT:
    return "folt";
  case CmpPred::FOLE:
    return "fole";
  case CmpPred::FOGT:
    return "fogt";
  case CmpPred::FOGE:
    return "foge";
  }
  accel_unreachable("bad cmp predicate");
}

const char *kir::castKindName(CastKind CK) {
  switch (CK) {
  case CastKind::SExt:
    return "sext";
  case CastKind::Trunc:
    return "trunc";
  case CastKind::SIToFP:
    return "sitofp";
  case CastKind::FPToSI:
    return "fptosi";
  case CastKind::ZExtBool:
    return "zext";
  }
  accel_unreachable("bad cast kind");
}

const char *kir::builtinName(BuiltinKind BK) {
  switch (BK) {
  case BuiltinKind::GetGlobalId:
    return "get_global_id";
  case BuiltinKind::GetLocalId:
    return "get_local_id";
  case BuiltinKind::GetGroupId:
    return "get_group_id";
  case BuiltinKind::GetGlobalSize:
    return "get_global_size";
  case BuiltinKind::GetLocalSize:
    return "get_local_size";
  case BuiltinKind::GetNumGroups:
    return "get_num_groups";
  case BuiltinKind::GetWorkDim:
    return "get_work_dim";
  case BuiltinKind::Barrier:
    return "barrier";
  case BuiltinKind::Sqrt:
    return "sqrt";
  case BuiltinKind::Rsqrt:
    return "rsqrt";
  case BuiltinKind::Sin:
    return "sin";
  case BuiltinKind::Cos:
    return "cos";
  case BuiltinKind::Exp:
    return "exp";
  case BuiltinKind::Log:
    return "log";
  case BuiltinKind::Fabs:
    return "fabs";
  case BuiltinKind::FMin:
    return "fmin";
  case BuiltinKind::FMax:
    return "fmax";
  case BuiltinKind::Floor:
    return "floor";
  case BuiltinKind::IMin:
    return "min";
  case BuiltinKind::IMax:
    return "max";
  case BuiltinKind::IAbs:
    return "abs";
  case BuiltinKind::AtomicAdd:
    return "atomic_add";
  case BuiltinKind::AtomicSub:
    return "atomic_sub";
  case BuiltinKind::AtomicMin:
    return "atomic_min";
  case BuiltinKind::AtomicMax:
    return "atomic_max";
  case BuiltinKind::AtomicXchg:
    return "atomic_xchg";
  case BuiltinKind::RtIsMaster:
    return "rt_is_master_workitem";
  case BuiltinKind::RtEnvInit:
    return "rt_env_init";
  case BuiltinKind::RtSchedWGroup:
    return "rt_sched_wgroup";
  case BuiltinKind::RtGlobalId:
    return "rt_global_id";
  case BuiltinKind::RtGroupId:
    return "rt_group_id";
  case BuiltinKind::RtGlobalSize:
    return "rt_global_size";
  case BuiltinKind::RtNumGroups:
    return "rt_num_groups";
  }
  accel_unreachable("bad builtin kind");
}
