//===- harness/Streaming.cpp - Streaming-arrival serving loop ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "harness/Streaming.h"

#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "ek/ElasticKernels.h"
#include "metrics/Metrics.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace accel;
using namespace accel::harness;

double harness::meanIsolatedBaselineDuration(ExperimentDriver &Driver) {
  double Sum = 0;
  for (size_t I = 0; I != Driver.numKernels(); ++I)
    Sum += Driver.isolatedDuration(SchedulerKind::Baseline, I);
  return Sum / static_cast<double>(Driver.numKernels());
}

std::map<int, std::vector<double>>
StreamOutcome::latenciesByTenant() const {
  std::map<int, std::vector<double>> Out;
  for (const StreamRequestResult &R : Requests)
    Out[R.Tenant].push_back(R.latency());
  return Out;
}

namespace {

/// Per-request progress while its work is still in flight. accelOS
/// requests may execute across several rounds (work slicing), so the
/// first-dispatch and last-completion times accumulate here.
struct LiveRequest {
  size_t Cursor = 0; ///< Next unexecuted virtual group.
  bool Started = false;
  double Start = 0;
  double End = 0;
};

} // namespace

StreamOutcome harness::runStream(
    ExperimentDriver &Driver, SchedulerKind Kind,
    const std::vector<workloads::TimedRequest> &Trace,
    const StreamOptions &Opts) {
  StreamOutcome Out;
  Out.Requests.resize(Trace.size());
  if (Trace.empty())
    return Out;

  const sim::DeviceSpec &Spec = Driver.device();
  for (size_t I = 0; I != Trace.size(); ++I) {
    StreamRequestResult &R = Out.Requests[I];
    R.RequestIdx = I;
    R.Tenant = Trace[I].Tenant;
    R.Kernel = Driver.kernel(Trace[I].KernelIdx).Spec->Id;
    R.ArrivalTime = Trace[I].ArrivalTime;
  }

  if (Kind == SchedulerKind::Baseline) {
    // The standard stack submits straight into the hardware FIFO: one
    // engine run where every launch carries its real arrival time.
    std::vector<sim::KernelLaunchDesc> Launches;
    for (size_t I = 0; I != Trace.size(); ++I) {
      sim::KernelLaunchDesc L =
          Driver.baselineDesc(Trace[I].KernelIdx, static_cast<int>(I));
      L.ArrivalTime = Trace[I].ArrivalTime;
      Launches.push_back(std::move(L));
    }
    sim::Engine Engine(Spec);
    sim::SimResult R = Engine.run(Launches);
    for (const sim::KernelExecResult &K : R.Kernels) {
      StreamRequestResult &Req =
          Out.Requests[static_cast<size_t>(K.AppId)];
      Req.StartTime = K.StartTime;
      Req.EndTime = K.EndTime;
    }
    Out.Rounds = 1;
  } else {
    // Round-synchronous serving loop: requests arriving mid-round wait
    // for the completion boundary, where the plan sees the grown queue.
    accelos::SchedulingMode Mode =
        Kind == SchedulerKind::AccelOSNaive
            ? accelos::SchedulingMode::Naive
            : accelos::SchedulingMode::Optimized;
    const bool IsEk = Kind == SchedulerKind::ElasticKernels;
    accelos::RoundScheduler Sched(
        accelos::ResourceCaps::fromDevice(Spec));
    std::deque<size_t> EkPending;
    std::vector<LiveRequest> Live(Trace.size());
    size_t NextArrival = 0;
    size_t Completed = 0;
    double T = 0;

    auto Submit = [&](size_t Idx) {
      const workloads::TimedRequest &Req = Trace[Idx];
      accelos::RoundRequest R;
      R.Id = Idx;
      R.Demand = Driver.demandFor(Req.KernelIdx);
      // A sliced request re-enters the queue asking only for what is
      // left of its virtual range.
      R.Demand.RequestedWGs =
          Driver.kernel(Req.KernelIdx).WGCosts.size() - Live[Idx].Cursor;
      auto WIt = Opts.Weights.find(Req.Tenant);
      R.Demand.Weight = WIt == Opts.Weights.end() ? 1.0 : WIt->second;
      Sched.submit(R);
    };
    auto Admit = [&](double Now) {
      while (NextArrival != Trace.size() &&
             Trace[NextArrival].ArrivalTime <= Now) {
        if (IsEk)
          EkPending.push_back(NextArrival);
        else
          Submit(NextArrival);
        ++NextArrival;
      }
    };
    auto Pending = [&] {
      return IsEk ? EkPending.size() : Sched.pending();
    };

    Admit(T);
    while (Completed != Trace.size()) {
      if (Pending() == 0) {
        // Idle device: jump to the next arrival.
        assert(NextArrival != Trace.size() && "requests lost");
        T = std::max(T, Trace[NextArrival].ArrivalTime);
        Admit(T);
        continue;
      }

      std::vector<sim::KernelLaunchDesc> Launches;
      std::vector<size_t> Unfinished;
      if (IsEk) {
        std::vector<ek::EKKernelDesc> Descs;
        for (size_t Idx : EkPending)
          Descs.push_back(Driver.ekDesc(Trace[Idx].KernelIdx,
                                        static_cast<int>(Idx)));
        EkPending.clear();
        Launches = ek::planMergedLaunch(Spec, Descs);
      } else {
        for (const accelos::RoundGrant &G : Sched.nextRound()) {
          const CompiledKernel &CK = Driver.kernel(Trace[G.Id].KernelIdx);
          LiveRequest &LR = Live[G.Id];

          // A request with no (remaining) work completes at this
          // boundary without occupying the device.
          if (LR.Cursor == CK.WGCosts.size()) {
            if (!LR.Started) {
              LR.Started = true;
              LR.Start = T;
            }
            LR.End = std::max(LR.End, T);
            Out.Requests[G.Id].StartTime = LR.Start;
            Out.Requests[G.Id].EndTime = LR.End;
            ++Completed;
            continue;
          }

          sim::KernelLaunchDesc L = Driver.accelosDesc(
              Trace[G.Id].KernelIdx, static_cast<int>(G.Id), G.WGs,
              Mode);

          // Work slicing: run at most a quantum's worth of the virtual
          // range this round (paper Sec. 2.4: the virtual work queue is
          // what makes bounded-progress launches possible), requeueing
          // the remainder. The budget approximates the thread-cycles
          // the granted share retires in one quantum.
          size_t End = CK.WGCosts.size();
          if (Opts.RoundQuantum > 0) {
            double Budget = Opts.RoundQuantum *
                            static_cast<double>(G.WGs) *
                            static_cast<double>(CK.Spec->WGSize) *
                            CK.Spec->IssueEfficiency;
            double Cost = 0;
            size_t Take = LR.Cursor;
            while (Take != End && (Take == LR.Cursor || Cost < Budget))
              Cost += CK.WGCosts[Take++];
            End = Take;
          }
          std::vector<double> Slice(
              CK.WGCosts.begin() + static_cast<ptrdiff_t>(LR.Cursor),
              CK.WGCosts.begin() + static_cast<ptrdiff_t>(End));
          LR.Cursor = End;
          L.PhysicalWGs =
              std::min<uint64_t>(std::max<uint64_t>(G.WGs, 1),
                                 Slice.size());
          // Re-cap the dequeue batch against the slice, not the full
          // range: every granted physical WG must still be able to
          // dequeue at least one batch of this round's work.
          L.Batch = accelos::cappedBatchFor(Mode, CK.InstCount,
                                            Slice.size(),
                                            L.PhysicalWGs);
          L.VirtualCosts = std::move(Slice);
          if (LR.Cursor != CK.WGCosts.size())
            Unfinished.push_back(G.Id);
          Launches.push_back(std::move(L));
        }
      }

      sim::Engine Engine(Spec);
      sim::SimResult R = Engine.run(Launches);
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime + T;
        }
        LR.End = K.EndTime + T;
      }
      T += R.Makespan;
      ++Out.Rounds;

      // Completion boundary: finished requests retire, sliced ones
      // requeue (ahead of this boundary's new arrivals — they are
      // older), and the next round re-solves over the new queue.
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        bool Done =
            IsEk || Live[Idx].Cursor ==
                        Driver.kernel(Trace[Idx].KernelIdx).WGCosts.size();
        if (!Done)
          continue;
        Out.Requests[Idx].StartTime = Live[Idx].Start;
        Out.Requests[Idx].EndTime = Live[Idx].End;
        ++Completed;
      }
      for (size_t Idx : Unfinished)
        Submit(Idx);
      Admit(T);
    }
    if (!IsEk)
      Out.Deferrals = Sched.stats().Deferrals;
  }

  for (size_t I = 0; I != Trace.size(); ++I) {
    const StreamRequestResult &R = Out.Requests[I];
    Out.Makespan = std::max(Out.Makespan, R.EndTime);
    double Alone =
        Driver.isolatedDuration(SchedulerKind::Baseline,
                                Trace[I].KernelIdx);
    Out.Slowdowns.push_back(
        metrics::individualSlowdown(R.EndTime - R.ArrivalTime, Alone));
  }
  Out.Unfairness = metrics::systemUnfairness(Out.Slowdowns);
  return Out;
}
