//===- harness/Streaming.cpp - Streaming-arrival serving loop ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "harness/Streaming.h"

#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "ek/ElasticKernels.h"
#include "harness/ReplayDetail.h"
#include "metrics/Metrics.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>

using namespace accel;
using namespace accel::harness;
using detail::ClosedLoopDriver;
using detail::LiveRequest;
using detail::ReplayState;
using detail::capsFor;
using detail::modeFor;
using detail::solverOptsFor;

double harness::meanIsolatedBaselineDuration(ExperimentDriver &Driver) {
  double Sum = 0;
  for (size_t I = 0; I != Driver.numKernels(); ++I)
    Sum += Driver.isolatedDuration(SchedulerKind::Baseline, I);
  return Sum / static_cast<double>(Driver.numKernels());
}

std::map<int, std::vector<double>>
StreamOutcome::latenciesByTenant() const {
  std::map<int, std::vector<double>> Out;
  for (const StreamRequestResult &R : Requests)
    Out[R.Tenant].push_back(R.latency());
  return Out;
}

std::vector<double> StreamOutcome::queueDelays() const {
  std::vector<double> Out;
  Out.reserve(Requests.size());
  for (const StreamRequestResult &R : Requests)
    Out.push_back(R.queueDelay());
  return Out;
}

std::map<int, std::vector<double>>
StreamOutcome::queueDelaysByTenant() const {
  std::map<int, std::vector<double>> Out;
  for (const StreamRequestResult &R : Requests)
    Out[R.Tenant].push_back(R.queueDelay());
  return Out;
}

std::map<int, std::vector<double>>
StreamOutcome::queueingExcessByTenant() const {
  std::map<int, std::vector<double>> Out;
  for (const StreamRequestResult &R : Requests)
    Out[R.Tenant].push_back(R.queueingExcess());
  return Out;
}

namespace {

/// The arrival-aware continuous replay loop, shared by the exact
/// (accelos::ContinuousScheduler) and stride (accelos::StrideScheduler)
/// admission modes: ONE persistent engine session, an admission pass at
/// every arrival/completion event, sliced requests requeued at the
/// event that completed them.
template <typename SchedulerT>
void replayContinuous(SchedulerT &Sched, const sim::DeviceSpec &Spec,
                      ReplayState &RS,
                      const std::vector<workloads::TimedRequest> &Trace,
                      StreamOutcome &Out) {
  sim::EngineSession Session(Spec);
  size_t NextArrival = 0;
  size_t Completed = 0;

  // An admission pass can only grant something new after an arrival
  // or a completion changed the queue or the residual capacity;
  // engine-internal events (work-group legs, dequeues) free nothing
  // the scheduler can see, so re-solving there would be wasted work.
  bool NeedAdmit = true;
  while (Completed != Trace.size()) {
    double T = Session.now();
    // Arrival events at or before the current time enter the queue.
    while (NextArrival != Trace.size() &&
           Trace[NextArrival].ArrivalTime <= T) {
      detail::submitRequest(Sched, RS, NextArrival++);
      NeedAdmit = true;
    }

    // Admission event: fill whatever residual capacity the in-flight
    // grants leave (re-passing while a pass itself freed capacity).
    while (NeedAdmit)
      NeedAdmit = detail::admissionPass(Sched, Session, RS, T,
                                        [&](size_t) { ++Completed; });

    // Advance to the next event: a completion inside the session or
    // the next trace arrival, whichever comes first.
    double NextEvent = Session.nextEventTime();
    double NextTrace = NextArrival != Trace.size()
                           ? Trace[NextArrival].ArrivalTime
                           : -1;
    assert((NextEvent >= 0 || NextTrace >= 0) && "requests lost");
    double Target = NextEvent;
    if (Target < 0 || (NextTrace >= 0 && NextTrace < Target))
      Target = NextTrace;
    Session.advanceTo(std::max(Target, T), RS.CompletionBuf);
    for (const sim::KernelExecResult &K : RS.CompletionBuf) {
      size_t Idx = static_cast<size_t>(K.AppId);
      LiveRequest &LR = RS.Live[Idx];
      if (!LR.Started) {
        LR.Started = true;
        LR.Start = K.StartTime;
      }
      LR.End = K.EndTime;
      Sched.complete(Idx);
      NeedAdmit = true;
      ++Out.EngineCompletions;
      if (RS.remainingGroups(Idx) != 0) {
        // Sliced: requeue the remainder; it re-enters the fair-share
        // solve at this very event.
        detail::submitRequest(Sched, RS, Idx);
      } else {
        Out.Requests[Idx].StartTime = LR.Start;
        Out.Requests[Idx].EndTime = LR.End;
        ++Completed;
      }
    }
  }
  Out.Rounds = Sched.stats().RoundsPlanned;
  Out.Deferrals = Sched.stats().Deferrals;
  Out.FullSolves = Sched.schedulerStats().FullSolves;
  Out.FastPasses = Sched.schedulerStats().FastPasses;
}

} // namespace

StreamOutcome harness::runStream(
    ExperimentDriver &Driver, SchedulerKind Kind,
    const std::vector<workloads::TimedRequest> &Trace,
    const StreamOptions &Opts) {
  StreamOutcome Out;
  if (Trace.empty())
    return Out;

  const sim::DeviceSpec &Spec = Driver.device();
  ReplayState RS(Driver, Opts, modeFor(Kind), Out);
  for (const workloads::TimedRequest &R : Trace)
    RS.append(R);

  const bool IsEk = Kind == SchedulerKind::ElasticKernels;
  const bool IsAccelOS = Kind == SchedulerKind::AccelOSNaive ||
                         Kind == SchedulerKind::AccelOSOptimized;

  if (Kind == SchedulerKind::Baseline) {
    // The standard stack submits straight into the hardware FIFO: one
    // engine run where every launch carries its real arrival time.
    std::vector<sim::KernelLaunchDesc> Launches;
    for (size_t I = 0; I != Trace.size(); ++I) {
      sim::KernelLaunchDesc L =
          Driver.baselineDesc(Trace[I].KernelIdx, static_cast<int>(I));
      L.ArrivalTime = Trace[I].ArrivalTime;
      Launches.push_back(std::move(L));
    }
    sim::Engine Engine(Spec);
    sim::SimResult R = Engine.run(std::move(Launches));
    for (const sim::KernelExecResult &K : R.Kernels) {
      StreamRequestResult &Req =
          Out.Requests[static_cast<size_t>(K.AppId)];
      Req.StartTime = K.StartTime;
      Req.EndTime = K.EndTime;
    }
    Out.Rounds = 1;
  } else if (IsAccelOS &&
             Opts.Admission != StreamOptions::AdmissionMode::RoundSync) {
    // Continuous admission: ONE persistent engine session. The
    // scheduler reacts to every arrival and completion event,
    // immediately filling the residual capacity left by in-flight
    // grants with newly arrived (or requeued sliced) kernels — no
    // round boundary, so a request never waits out the makespan of a
    // round it just missed. The stride mode swaps the exact fair-share
    // solve for pass/stride tenant counters inside the same loop.
    if (Opts.Admission == StreamOptions::AdmissionMode::Stride) {
      accelos::StrideScheduler Sched(capsFor(Spec, Opts));
      replayContinuous(Sched, Spec, RS, Trace, Out);
    } else {
      accelos::ContinuousScheduler Sched(capsFor(Spec, Opts),
                                         solverOptsFor(Opts),
                                         detail::schedOptsFor(Opts));
      replayContinuous(Sched, Spec, RS, Trace, Out);
    }
  } else {
    // Round-synchronous serving loop: requests arriving mid-round wait
    // for the completion boundary, where the plan sees the grown queue.
    accelos::RoundScheduler Sched(
        accelos::ResourceCaps::fromDevice(Spec));
    std::deque<size_t> EkPending;
    size_t NextArrival = 0;
    size_t Completed = 0;
    double T = 0;

    auto Submit = [&](size_t Idx) {
      accelos::RoundRequest R;
      R.Id = Idx;
      R.Demand = RS.demandOf(Idx);
      Sched.submit(R);
    };
    auto Admit = [&](double Now) {
      while (NextArrival != Trace.size() &&
             Trace[NextArrival].ArrivalTime <= Now) {
        if (IsEk)
          EkPending.push_back(NextArrival);
        else
          Submit(NextArrival);
        ++NextArrival;
      }
    };
    auto Pending = [&] {
      return IsEk ? EkPending.size() : Sched.pending();
    };

    Admit(T);
    while (Completed != Trace.size()) {
      if (Pending() == 0) {
        // Idle device: jump to the next arrival.
        assert(NextArrival != Trace.size() && "requests lost");
        T = std::max(T, Trace[NextArrival].ArrivalTime);
        Admit(T);
        continue;
      }

      std::vector<sim::KernelLaunchDesc> Launches;
      std::vector<size_t> Unfinished;
      if (IsEk) {
        std::vector<ek::EKKernelDesc> Descs;
        for (size_t Idx : EkPending)
          Descs.push_back(Driver.ekDesc(Trace[Idx].KernelIdx,
                                        static_cast<int>(Idx)));
        EkPending.clear();
        Launches = ek::planMergedLaunch(Spec, Descs);
      } else {
        for (const accelos::RoundGrant &G : Sched.nextRound()) {
          size_t Idx = static_cast<size_t>(G.Id);
          if (RS.remainingGroups(Idx) == 0) {
            RS.completeZeroWork(Idx, T);
            ++Completed;
            continue;
          }
          Launches.push_back(
              RS.makeSliceLaunch(Idx, G.WGs, /*Arrival=*/0));
          if (RS.remainingGroups(Idx) != 0)
            Unfinished.push_back(Idx);
        }
      }

      sim::Engine Engine(Spec);
      sim::SimResult R = Engine.run(std::move(Launches));
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = RS.Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime + T;
        }
        LR.End = K.EndTime + T;
      }
      T += R.Makespan;
      ++Out.Rounds;

      // Completion boundary: finished requests retire, sliced ones
      // requeue (ahead of this boundary's new arrivals — they are
      // older), and the next round re-solves over the new queue.
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        bool Done = IsEk || RS.remainingGroups(Idx) == 0;
        if (!Done)
          continue;
        Out.Requests[Idx].StartTime = RS.Live[Idx].Start;
        Out.Requests[Idx].EndTime = RS.Live[Idx].End;
        ++Completed;
      }
      for (size_t Idx : Unfinished)
        Submit(Idx);
      Admit(T);
    }
    if (!IsEk)
      Out.Deferrals = Sched.stats().Deferrals;
  }

  RS.finalize();
  return Out;
}

//===----------------------------------------------------------------------===//
// Closed-loop tenant replay (the TenantLoop mode)
//===----------------------------------------------------------------------===//

StreamOutcome harness::runClosedLoop(
    ExperimentDriver &Driver, SchedulerKind Kind,
    const workloads::ClosedLoopScript &Script,
    const StreamOptions &Opts) {
  StreamOutcome Out;
  const size_t Total = Script.totalRequests();
  Out.FinalWeights = Opts.Weights;
  if (Total == 0)
    return Out;

  const sim::DeviceSpec &Spec = Driver.device();
  ReplayState RS(Driver, Opts, modeFor(Kind), Out);
  ClosedLoopDriver Loop(Script);
  size_t Completed = 0;
  // Declared at function scope: ReplayState keeps a pointer to the
  // controller and finalize() reads the final weights after the
  // scheduling branch below ends.
  std::optional<accelos::SloWeightController> Ctl;

  if (Kind == SchedulerKind::Baseline) {
    // FIFO: each issued request is admitted into the hardware queue the
    // moment the tenant decides it (the session holds it invisible
    // until its ArrivalTime); completions trigger the next issues.
    sim::EngineSession Session(Spec);
    while (Completed != Total) {
      std::vector<sim::KernelLaunchDesc> Launches;
      while (!Loop.empty()) {
        double At = Loop.nextTime();
        size_t Idx = Loop.materialize(RS);
        sim::KernelLaunchDesc L = Driver.baselineDesc(
            RS.Trace[Idx].KernelIdx, static_cast<int>(Idx));
        L.ArrivalTime = At;
        Launches.push_back(std::move(L));
      }
      if (!Launches.empty())
        Session.admit(std::move(Launches));
      double Next = Session.nextEventTime();
      assert(Next >= 0 && "closed loop stalled with requests pending");
      for (const sim::KernelExecResult &K : Session.advanceTo(Next)) {
        size_t Idx = static_cast<size_t>(K.AppId);
        Out.Requests[Idx].StartTime = K.StartTime;
        Out.Requests[Idx].EndTime = K.EndTime;
        ++Completed;
        Loop.issue(Loop.tenantPos(Idx), K.EndTime);
      }
    }
    Out.Rounds = 1;
  } else if (Kind == SchedulerKind::ElasticKernels) {
    // EK: requests pending at a round boundary are statically merged
    // and co-dispatched; completions mid-round issue follow-ups that
    // wait for the next boundary.
    std::deque<size_t> Pending;
    double T = 0;
    while (Completed != Total) {
      while (!Loop.empty() && Loop.nextTime() <= T)
        Pending.push_back(Loop.materialize(RS));
      if (Pending.empty()) {
        assert(!Loop.empty() && "closed loop stalled with requests pending");
        T = std::max(T, Loop.nextTime());
        continue;
      }
      std::vector<ek::EKKernelDesc> Descs;
      for (size_t Idx : Pending)
        Descs.push_back(Driver.ekDesc(RS.Trace[Idx].KernelIdx,
                                      static_cast<int>(Idx)));
      Pending.clear();
      sim::Engine Engine(Spec);
      sim::SimResult R = Engine.run(ek::planMergedLaunch(Spec, Descs));
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        Out.Requests[Idx].StartTime = K.StartTime + T;
        Out.Requests[Idx].EndTime = K.EndTime + T;
        ++Completed;
        Loop.issue(Loop.tenantPos(Idx), K.EndTime + T);
      }
      T += R.Makespan;
      ++Out.Rounds;
    }
  } else {
    // accelOS: arrival-aware continuous admission (one persistent
    // engine session), optionally closing a second loop — the SLO
    // controller's — around the first: every completion's queueing
    // delay is observed, and once per control interval tenant weights
    // move toward their latency targets.
    assert(!Opts.AdaptiveSloWeights || Opts.SloControlInterval > 0);
    if (Opts.AdaptiveSloWeights) {
      Ctl.emplace(Opts.SloTargets, Opts.Weights, Opts.SloControlInterval,
                  Opts.SloTuning);
      RS.adoptController(&*Ctl);
    }

    accelos::ContinuousScheduler Sched(capsFor(Spec, Opts),
                                       solverOptsFor(Opts),
                                       detail::schedOptsFor(Opts));
    sim::EngineSession Session(Spec);

    bool NeedAdmit = true;
    while (Completed != Total) {
      double T = Session.now();
      while (!Loop.empty() && Loop.nextTime() <= T) {
        detail::submitRequest(Sched, RS, Loop.materialize(RS));
        NeedAdmit = true;
      }

      // Zero-work requests retire at the boundary: the tenant's think
      // clock starts here, and — like the single-device open loop —
      // the SLO controller does not observe them (they never occupied
      // the device).
      while (NeedAdmit)
        NeedAdmit = detail::admissionPass(
            Sched, Session, RS, T, [&](size_t Idx) {
              ++Completed;
              Loop.issue(Loop.tenantPos(Idx), T);
            });

      double NextEvent = Session.nextEventTime();
      double NextIssue = Loop.empty() ? -1 : Loop.nextTime();
      assert((NextEvent >= 0 || NextIssue >= 0) && "requests lost");
      double Target = NextEvent;
      if (Target < 0 || (NextIssue >= 0 && NextIssue < Target))
        Target = NextIssue;
      Session.advanceTo(std::max(Target, T), RS.CompletionBuf);
      for (const sim::KernelExecResult &K : RS.CompletionBuf) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = RS.Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime;
        }
        LR.End = K.EndTime;
        Sched.complete(Idx);
        NeedAdmit = true;
        ++Out.EngineCompletions;
        if (RS.remainingGroups(Idx) != 0) {
          detail::submitRequest(Sched, RS, Idx);
        } else {
          Out.Requests[Idx].StartTime = LR.Start;
          Out.Requests[Idx].EndTime = LR.End;
          ++Completed;
          // The tenant's think clock and the SLO controller's window
          // both start from this completion.
          if (Ctl)
            Ctl->observe(RS.Trace[Idx].Tenant,
                         Out.Requests[Idx].queueingExcess());
          Loop.issue(Loop.tenantPos(Idx), LR.End);
        }
      }
      if (Ctl && Ctl->maybeUpdate(Session.now()))
        ++Out.WeightUpdates;
    }
    Out.Rounds = Sched.stats().RoundsPlanned;
    Out.Deferrals = Sched.stats().Deferrals;
    Out.FullSolves = Sched.schedulerStats().FullSolves;
    Out.FastPasses = Sched.schedulerStats().FastPasses;
  }

  assert(RS.Trace.size() == Total && "script not fully replayed");
  RS.finalize();
  return Out;
}
