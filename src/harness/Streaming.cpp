//===- harness/Streaming.cpp - Streaming-arrival serving loop ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "harness/Streaming.h"

#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "ek/ElasticKernels.h"
#include "metrics/Metrics.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace accel;
using namespace accel::harness;

double harness::meanIsolatedBaselineDuration(ExperimentDriver &Driver) {
  double Sum = 0;
  for (size_t I = 0; I != Driver.numKernels(); ++I)
    Sum += Driver.isolatedDuration(SchedulerKind::Baseline, I);
  return Sum / static_cast<double>(Driver.numKernels());
}

std::map<int, std::vector<double>>
StreamOutcome::latenciesByTenant() const {
  std::map<int, std::vector<double>> Out;
  for (const StreamRequestResult &R : Requests)
    Out[R.Tenant].push_back(R.latency());
  return Out;
}

std::vector<double> StreamOutcome::queueDelays() const {
  std::vector<double> Out;
  Out.reserve(Requests.size());
  for (const StreamRequestResult &R : Requests)
    Out.push_back(R.queueDelay());
  return Out;
}

size_t harness::quantumSliceEnd(const std::vector<double> &WGCosts,
                                size_t Cursor, uint64_t GrantWGs,
                                uint64_t WGThreads,
                                double IssueEfficiency, double Quantum) {
  size_t End = WGCosts.size();
  assert(Cursor <= End && "slice cursor past the virtual range");
  if (Quantum <= 0 || Cursor == End)
    return End;
  // The budget approximates the thread-cycles retired in one quantum by
  // the workers that will actually run: the grant capped to the
  // remaining virtual groups. Budgeting the uncapped grant would let a
  // tail slice (fewer groups left than granted workers) overrun the
  // quantum.
  uint64_t Workers =
      std::min<uint64_t>(std::max<uint64_t>(GrantWGs, 1), End - Cursor);
  double Budget = Quantum * static_cast<double>(Workers) *
                  static_cast<double>(WGThreads) * IssueEfficiency;
  double Cost = 0;
  size_t Take = Cursor;
  while (Take != End && (Take == Cursor || Cost < Budget))
    Cost += WGCosts[Take++];
  return Take;
}

namespace {

/// Per-request progress while its work is still in flight. accelOS
/// requests may execute across several grants (work slicing), so the
/// first-dispatch and last-completion times accumulate here.
struct LiveRequest {
  size_t Cursor = 0; ///< Next unexecuted virtual group.
  bool Started = false;
  double Start = 0;
  double End = 0;
};

} // namespace

StreamOutcome harness::runStream(
    ExperimentDriver &Driver, SchedulerKind Kind,
    const std::vector<workloads::TimedRequest> &Trace,
    const StreamOptions &Opts) {
  StreamOutcome Out;
  Out.Requests.resize(Trace.size());
  if (Trace.empty())
    return Out;

  const sim::DeviceSpec &Spec = Driver.device();
  for (size_t I = 0; I != Trace.size(); ++I) {
    StreamRequestResult &R = Out.Requests[I];
    R.RequestIdx = I;
    R.Tenant = Trace[I].Tenant;
    R.Kernel = Driver.kernel(Trace[I].KernelIdx).Spec->Id;
    R.ArrivalTime = Trace[I].ArrivalTime;
  }

  const bool IsEk = Kind == SchedulerKind::ElasticKernels;
  const bool IsAccelOS = Kind == SchedulerKind::AccelOSNaive ||
                         Kind == SchedulerKind::AccelOSOptimized;
  accelos::SchedulingMode Mode =
      Kind == SchedulerKind::AccelOSNaive
          ? accelos::SchedulingMode::Naive
          : accelos::SchedulingMode::Optimized;

  std::vector<LiveRequest> Live(Trace.size());

  /// The Sec. 3 demand of request \p Idx, narrowed to what is left of
  /// its virtual range (a sliced request re-enters the queue asking
  /// only for the remainder) and weighted by its tenant.
  auto DemandOf = [&](size_t Idx) {
    const workloads::TimedRequest &Req = Trace[Idx];
    accelos::KernelDemand D = Driver.demandFor(Req.KernelIdx);
    D.RequestedWGs =
        Driver.kernel(Req.KernelIdx).WGCosts.size() - Live[Idx].Cursor;
    auto WIt = Opts.Weights.find(Req.Tenant);
    D.Weight = WIt == Opts.Weights.end() ? 1.0 : WIt->second;
    return D;
  };

  /// Builds one quantum-bounded WorkQueue launch for the granted share
  /// \p GrantWGs of request \p Idx, advancing its slice cursor.
  auto MakeSliceLaunch = [&](size_t Idx, uint64_t GrantWGs,
                             double Arrival) {
    const CompiledKernel &CK = Driver.kernel(Trace[Idx].KernelIdx);
    LiveRequest &LR = Live[Idx];
    sim::KernelLaunchDesc L = Driver.accelosDesc(
        Trace[Idx].KernelIdx, static_cast<int>(Idx), GrantWGs, Mode);
    // Work slicing: run at most a quantum's worth of the virtual range
    // (paper Sec. 2.4: the virtual work queue is what makes
    // bounded-progress launches possible), requeueing the remainder.
    size_t End = quantumSliceEnd(CK.WGCosts, LR.Cursor, GrantWGs,
                                 CK.Spec->WGSize,
                                 CK.Spec->IssueEfficiency,
                                 Opts.RoundQuantum);
    std::vector<double> Slice(
        CK.WGCosts.begin() + static_cast<ptrdiff_t>(LR.Cursor),
        CK.WGCosts.begin() + static_cast<ptrdiff_t>(End));
    LR.Cursor = End;
    L.PhysicalWGs = std::min<uint64_t>(std::max<uint64_t>(GrantWGs, 1),
                                       Slice.size());
    // Re-cap the dequeue batch against the slice, not the full range:
    // every granted physical WG must still be able to dequeue at least
    // one batch of this launch's work.
    L.Batch = accelos::cappedBatchFor(Mode, CK.InstCount, Slice.size(),
                                      L.PhysicalWGs);
    L.VirtualCosts = std::move(Slice);
    L.ArrivalTime = Arrival;
    return L;
  };

  auto RemainingGroups = [&](size_t Idx) {
    return Driver.kernel(Trace[Idx].KernelIdx).WGCosts.size() -
           Live[Idx].Cursor;
  };

  /// Retires a request that has no (remaining) work at time \p T: it
  /// completes at the boundary without occupying the device.
  auto CompleteZeroWork = [&](size_t Idx, double T) {
    LiveRequest &LR = Live[Idx];
    if (!LR.Started) {
      LR.Started = true;
      LR.Start = T;
    }
    LR.End = std::max(LR.End, T);
    Out.Requests[Idx].StartTime = LR.Start;
    Out.Requests[Idx].EndTime = LR.End;
  };

  if (Kind == SchedulerKind::Baseline) {
    // The standard stack submits straight into the hardware FIFO: one
    // engine run where every launch carries its real arrival time.
    std::vector<sim::KernelLaunchDesc> Launches;
    for (size_t I = 0; I != Trace.size(); ++I) {
      sim::KernelLaunchDesc L =
          Driver.baselineDesc(Trace[I].KernelIdx, static_cast<int>(I));
      L.ArrivalTime = Trace[I].ArrivalTime;
      Launches.push_back(std::move(L));
    }
    sim::Engine Engine(Spec);
    sim::SimResult R = Engine.run(std::move(Launches));
    for (const sim::KernelExecResult &K : R.Kernels) {
      StreamRequestResult &Req =
          Out.Requests[static_cast<size_t>(K.AppId)];
      Req.StartTime = K.StartTime;
      Req.EndTime = K.EndTime;
    }
    Out.Rounds = 1;
  } else if (IsAccelOS &&
             Opts.Admission == StreamOptions::AdmissionMode::Continuous) {
    // Continuous admission: ONE persistent engine session. The
    // scheduler reacts to every arrival and completion event,
    // immediately filling the residual capacity left by in-flight
    // grants with newly arrived (or requeued sliced) kernels — no
    // round boundary, so a request never waits out the makespan of a
    // round it just missed.
    accelos::ContinuousScheduler Sched(
        accelos::ResourceCaps::fromDevice(Spec));
    sim::EngineSession Session(Spec);
    size_t NextArrival = 0;
    size_t Completed = 0;

    auto Submit = [&](size_t Idx) {
      accelos::RoundRequest R;
      R.Id = Idx;
      R.Demand = DemandOf(Idx);
      Sched.submit(R);
    };

    // An admission pass can only grant something new after an arrival
    // or a completion changed the queue or the residual capacity;
    // engine-internal events (work-group legs, dequeues) free nothing
    // the scheduler can see, so re-solving there would be wasted work.
    bool NeedAdmit = true;
    while (Completed != Trace.size()) {
      double T = Session.now();
      // Arrival events at or before the current time enter the queue.
      while (NextArrival != Trace.size() &&
             Trace[NextArrival].ArrivalTime <= T) {
        Submit(NextArrival++);
        NeedAdmit = true;
      }

      // Admission event: fill whatever residual capacity the in-flight
      // grants leave. Loops when a pass itself freed capacity (tail
      // slices shrinking their reservation) so it is handed out at the
      // same instant; each re-pass needs a fresh shrink, so this
      // terminates.
      while (NeedAdmit) {
        NeedAdmit = false;
        std::vector<sim::KernelLaunchDesc> Launches;
        for (const accelos::RoundGrant &G : Sched.admit()) {
          size_t Idx = static_cast<size_t>(G.Id);
          if (RemainingGroups(Idx) == 0) {
            CompleteZeroWork(Idx, T);
            ++Completed;
            continue;
          }
          sim::KernelLaunchDesc L = MakeSliceLaunch(Idx, G.WGs, T);
          // A tail slice runs fewer physical WGs than granted; return
          // the unused reservation and re-admit at this same instant
          // so waiting requests can take it.
          if (L.PhysicalWGs < G.WGs) {
            Sched.shrink(G.Id, L.PhysicalWGs);
            NeedAdmit = true;
          }
          Launches.push_back(std::move(L));
        }
        if (!Launches.empty())
          Session.admit(std::move(Launches));
      }

      // Advance to the next event: a completion inside the session or
      // the next trace arrival, whichever comes first.
      double NextEvent = Session.nextEventTime();
      double NextTrace = NextArrival != Trace.size()
                             ? Trace[NextArrival].ArrivalTime
                             : -1;
      assert((NextEvent >= 0 || NextTrace >= 0) && "requests lost");
      double Target = NextEvent;
      if (Target < 0 || (NextTrace >= 0 && NextTrace < Target))
        Target = NextTrace;
      for (const sim::KernelExecResult &K :
           Session.advanceTo(std::max(Target, T))) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime;
        }
        LR.End = K.EndTime;
        Sched.complete(Idx);
        NeedAdmit = true;
        if (RemainingGroups(Idx) != 0) {
          // Sliced: requeue the remainder; it re-enters the fair-share
          // solve at this very event.
          Submit(Idx);
        } else {
          Out.Requests[Idx].StartTime = LR.Start;
          Out.Requests[Idx].EndTime = LR.End;
          ++Completed;
        }
      }
    }
    Out.Rounds = Sched.stats().RoundsPlanned;
    Out.Deferrals = Sched.stats().Deferrals;
  } else {
    // Round-synchronous serving loop: requests arriving mid-round wait
    // for the completion boundary, where the plan sees the grown queue.
    accelos::RoundScheduler Sched(
        accelos::ResourceCaps::fromDevice(Spec));
    std::deque<size_t> EkPending;
    size_t NextArrival = 0;
    size_t Completed = 0;
    double T = 0;

    auto Submit = [&](size_t Idx) {
      accelos::RoundRequest R;
      R.Id = Idx;
      R.Demand = DemandOf(Idx);
      Sched.submit(R);
    };
    auto Admit = [&](double Now) {
      while (NextArrival != Trace.size() &&
             Trace[NextArrival].ArrivalTime <= Now) {
        if (IsEk)
          EkPending.push_back(NextArrival);
        else
          Submit(NextArrival);
        ++NextArrival;
      }
    };
    auto Pending = [&] {
      return IsEk ? EkPending.size() : Sched.pending();
    };

    Admit(T);
    while (Completed != Trace.size()) {
      if (Pending() == 0) {
        // Idle device: jump to the next arrival.
        assert(NextArrival != Trace.size() && "requests lost");
        T = std::max(T, Trace[NextArrival].ArrivalTime);
        Admit(T);
        continue;
      }

      std::vector<sim::KernelLaunchDesc> Launches;
      std::vector<size_t> Unfinished;
      if (IsEk) {
        std::vector<ek::EKKernelDesc> Descs;
        for (size_t Idx : EkPending)
          Descs.push_back(Driver.ekDesc(Trace[Idx].KernelIdx,
                                        static_cast<int>(Idx)));
        EkPending.clear();
        Launches = ek::planMergedLaunch(Spec, Descs);
      } else {
        for (const accelos::RoundGrant &G : Sched.nextRound()) {
          size_t Idx = static_cast<size_t>(G.Id);
          if (RemainingGroups(Idx) == 0) {
            CompleteZeroWork(Idx, T);
            ++Completed;
            continue;
          }
          Launches.push_back(MakeSliceLaunch(Idx, G.WGs, /*Arrival=*/0));
          if (RemainingGroups(Idx) != 0)
            Unfinished.push_back(Idx);
        }
      }

      sim::Engine Engine(Spec);
      sim::SimResult R = Engine.run(std::move(Launches));
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        LiveRequest &LR = Live[Idx];
        if (!LR.Started) {
          LR.Started = true;
          LR.Start = K.StartTime + T;
        }
        LR.End = K.EndTime + T;
      }
      T += R.Makespan;
      ++Out.Rounds;

      // Completion boundary: finished requests retire, sliced ones
      // requeue (ahead of this boundary's new arrivals — they are
      // older), and the next round re-solves over the new queue.
      for (const sim::KernelExecResult &K : R.Kernels) {
        size_t Idx = static_cast<size_t>(K.AppId);
        bool Done = IsEk || RemainingGroups(Idx) == 0;
        if (!Done)
          continue;
        Out.Requests[Idx].StartTime = Live[Idx].Start;
        Out.Requests[Idx].EndTime = Live[Idx].End;
        ++Completed;
      }
      for (size_t Idx : Unfinished)
        Submit(Idx);
      Admit(T);
    }
    if (!IsEk)
      Out.Deferrals = Sched.stats().Deferrals;
  }

  for (size_t I = 0; I != Trace.size(); ++I) {
    const StreamRequestResult &R = Out.Requests[I];
    Out.Makespan = std::max(Out.Makespan, R.EndTime);
    double Alone =
        Driver.isolatedDuration(SchedulerKind::Baseline,
                                Trace[I].KernelIdx);
    // streamSlowdown floors the zero-work corner: a request with no
    // work completes at its arrival boundary with zero turnaround,
    // which would trip the positivity asserts in the metrics.
    Out.Slowdowns.push_back(
        streamSlowdown(R.EndTime - R.ArrivalTime, Alone));
  }
  Out.Unfairness = metrics::systemUnfairness(Out.Slowdowns);
  return Out;
}
