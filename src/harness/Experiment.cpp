//===- harness/Experiment.cpp - Experiment driver ----------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include "accelos/AdaptivePolicy.h"
#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "ek/ElasticKernels.h"
#include "kir/Module.h"
#include "kir/RtLayout.h"
#include "metrics/Metrics.h"
#include "minicl/Frontend.h"
#include "passes/ConstantFold.h"
#include "passes/DCE.h"
#include "passes/Inliner.h"
#include "passes/Pass.h"
#include "passes/RegisterEstimator.h"
#include "workloads/StaticPrior.h"

#include <cstdlib>

using namespace accel;
using namespace accel::harness;

const char *harness::schedulerName(SchedulerKind Kind) {
  switch (Kind) {
  case SchedulerKind::Baseline:
    return "Standard";
  case SchedulerKind::ElasticKernels:
    return "EK";
  case SchedulerKind::AccelOSNaive:
    return "accelOS-naive";
  case SchedulerKind::AccelOSOptimized:
    return "accelOS";
  }
  accel_unreachable("bad scheduler kind");
}

double harness::reproScale() {
  const char *Env = std::getenv("ACCELOS_REPRO_SCALE");
  if (!Env)
    return 1.0;
  double V = std::atof(Env);
  return V > 0 ? V : 1.0;
}

ExperimentDriver::ExperimentDriver(const sim::DeviceSpec &Spec)
    : Spec(Spec) {
  // Compile every suite kernel once through the front end and the GPU
  // cleanup pipeline; the solver/batching inputs come from the IR.
  for (const workloads::KernelSpec &WS : workloads::parboilSuite()) {
    Expected<std::unique_ptr<kir::Module>> M =
        minicl::compileSource(WS.Id, WS.Source);
    if (!M)
      reportFatalError(("workload kernel '" + WS.Id +
                        "' failed to compile: " + M.message())
                           .c_str());
    passes::PassManager PM;
    PM.addPass(std::make_unique<passes::InlinerPass>());
    PM.addPass(std::make_unique<passes::ConstantFoldPass>());
    PM.addPass(std::make_unique<passes::DCEPass>());
    cantFail(PM.run(**M));

    kir::Function *K = (*M)->getFunction(WS.KernelName);
    if (!K)
      reportFatalError(("kernel entry '" + WS.KernelName +
                        "' missing in workload '" + WS.Id + "'")
                           .c_str());
    CompiledKernel CK;
    CK.Spec = &WS;
    CK.InstCount = K->instructionCount();
    CK.RegsPerThread = passes::estimateRegisters(*K);
    CK.LocalMemBytes = K->localMemoryBytes();
    CK.WGCosts = workloads::generateWGCosts(WS);
    Kernels.push_back(std::move(CK));
  }
}

sim::KernelLaunchDesc ExperimentDriver::baselineDesc(size_t Idx,
                                                     int AppId) const {
  const CompiledKernel &CK = Kernels[Idx];
  sim::KernelLaunchDesc L;
  L.Name = CK.Spec->Id;
  L.AppId = AppId;
  L.WGThreads = CK.Spec->WGSize;
  L.LocalMemPerWG = CK.LocalMemBytes;
  L.RegsPerThread = CK.RegsPerThread;
  L.IssueEfficiency = CK.Spec->IssueEfficiency;
  L.Mode = sim::KernelLaunchDesc::ModeKind::Static;
  L.StaticCosts = CK.WGCosts;
  return L;
}

ek::EKKernelDesc ExperimentDriver::ekDesc(size_t Idx, int AppId) const {
  const CompiledKernel &CK = Kernels[Idx];
  ek::EKKernelDesc D;
  D.Name = CK.Spec->Id;
  D.AppId = AppId;
  D.WGThreads = CK.Spec->WGSize;
  D.LocalMemPerWG = CK.LocalMemBytes;
  D.RegsPerThread = CK.RegsPerThread;
  D.IssueEfficiency = CK.Spec->IssueEfficiency;
  D.WGCosts = CK.WGCosts;
  return D;
}

accelos::KernelDemand ExperimentDriver::demandFor(size_t Idx) const {
  const CompiledKernel &CK = Kernels[Idx];
  accelos::KernelDemand D;
  D.WGThreads = CK.Spec->WGSize;
  D.LocalMemPerWG = CK.LocalMemBytes + kir::rtlayout::schedDescBytes();
  D.RegsPerThread = CK.RegsPerThread;
  D.RequestedWGs = CK.Spec->NumWGs;
  return D;
}

sim::KernelLaunchDesc
ExperimentDriver::accelosDesc(size_t Idx, int AppId, uint64_t PhysWGs,
                              accelos::SchedulingMode Mode) const {
  const CompiledKernel &CK = Kernels[Idx];
  sim::KernelLaunchDesc L;
  L.Name = CK.Spec->Id;
  L.AppId = AppId;
  L.WGThreads = CK.Spec->WGSize;
  L.LocalMemPerWG = CK.LocalMemBytes + kir::rtlayout::schedDescBytes();
  L.RegsPerThread = CK.RegsPerThread;
  L.IssueEfficiency = CK.Spec->IssueEfficiency;
  L.Mode = sim::KernelLaunchDesc::ModeKind::WorkQueue;
  L.VirtualCosts = CK.WGCosts;
  L.PhysicalWGs = PhysWGs;
  L.Batch = accelos::cappedBatchFor(Mode, CK.InstCount, CK.Spec->NumWGs,
                                    PhysWGs);
  return L;
}

std::vector<std::vector<sim::KernelLaunchDesc>>
ExperimentDriver::buildRounds(SchedulerKind Kind,
                              const workloads::Workload &W) const {
  switch (Kind) {
  case SchedulerKind::Baseline: {
    std::vector<sim::KernelLaunchDesc> Launches;
    for (size_t I = 0; I != W.size(); ++I)
      Launches.push_back(baselineDesc(W[I], static_cast<int>(I)));
    return {std::move(Launches)};
  }
  case SchedulerKind::ElasticKernels: {
    std::vector<ek::EKKernelDesc> Descs;
    for (size_t I = 0; I != W.size(); ++I)
      Descs.push_back(ekDesc(W[I], static_cast<int>(I)));
    return {ek::planMergedLaunch(Spec, Descs)};
  }
  case SchedulerKind::AccelOSNaive:
  case SchedulerKind::AccelOSOptimized: {
    accelos::SchedulingMode Mode =
        Kind == SchedulerKind::AccelOSNaive
            ? accelos::SchedulingMode::Naive
            : accelos::SchedulingMode::Optimized;

    // The Kernel Scheduler plans rounds over the K concurrent requests;
    // clamp-shed requests requeue into later (smaller) rounds instead
    // of being floored onto a full device.
    accelos::RoundScheduler Sched(accelos::ResourceCaps::fromDevice(Spec));
    for (size_t I = 0; I != W.size(); ++I) {
      accelos::RoundRequest R;
      R.Id = I;
      R.Demand = demandFor(W[I]);
      Sched.submit(R);
    }

    std::vector<std::vector<sim::KernelLaunchDesc>> Rounds;
    while (Sched.pending() != 0) {
      std::vector<sim::KernelLaunchDesc> Launches;
      for (const accelos::RoundGrant &G : Sched.nextRound())
        Launches.push_back(accelosDesc(W[G.Id],
                                       static_cast<int>(G.Id), G.WGs,
                                       Mode));
      Rounds.push_back(std::move(Launches));
    }
    return Rounds;
  }
  }
  accel_unreachable("bad scheduler kind");
}

double ExperimentDriver::isolatedDuration(SchedulerKind Kind, size_t Idx) {
  auto Key = std::make_pair(static_cast<int>(Kind), Idx);
  auto It = IsolatedCache.find(Key);
  if (It != IsolatedCache.end())
    return It->second;

  workloads::Workload Solo = {Idx};
  sim::Engine Engine(Spec);
  sim::SimResult R =
      Engine.run(std::move(buildRounds(Kind, Solo).front()));
  double D = R.Kernels[0].duration();
  IsolatedCache.emplace(Key, D);
  return D;
}

double ExperimentDriver::priorSoloDuration(size_t Idx) {
  auto It = PriorSoloCache.find(Idx);
  if (It != PriorSoloCache.end())
    return It->second;

  const CompiledKernel &CK = Kernels[Idx];
  const workloads::StaticPrior &P = workloads::staticCostPrior(*CK.Spec);
  sim::KernelLaunchDesc L = baselineDesc(Idx, 0);
  L.StaticCosts.assign(CK.WGCosts.size(), P.MeanWGCycles);
  sim::Engine Engine(Spec);
  sim::SimResult R = Engine.run({std::move(L)});
  double D = R.Kernels[0].duration();
  PriorSoloCache.emplace(Idx, D);
  return D;
}

WorkloadOutcome ExperimentDriver::runWorkload(SchedulerKind Kind,
                                              const workloads::Workload &W) {
  // Rounds run back to back: each begins when the previous one's
  // kernels have all completed, so per-round engine runs compose by
  // shifting the later round's times past the earlier makespans.
  std::vector<sim::KernelExecResult> ByPos(W.size());
  double T = 0;
  for (std::vector<sim::KernelLaunchDesc> &Round : buildRounds(Kind, W)) {
    sim::Engine Engine(Spec);
    sim::SimResult R = Engine.run(std::move(Round));
    for (sim::KernelExecResult K : R.Kernels) {
      K.StartTime += T;
      K.EndTime += T;
      ByPos[static_cast<size_t>(K.AppId)] = K;
    }
    T += R.Makespan;
  }

  WorkloadOutcome Out;
  Out.Makespan = T;
  std::vector<metrics::Interval> Intervals;
  for (size_t I = 0; I != W.size(); ++I) {
    const sim::KernelExecResult &K = ByPos[I];
    double Alone = isolatedDuration(SchedulerKind::Baseline, W[I]);
    // T(s) is the turnaround from (common, t=0) submission, so queueing
    // delay behind earlier requests counts against fairness — this is
    // what serializing schedulers are punished for.
    Out.Slowdowns.push_back(metrics::individualSlowdown(K.EndTime, Alone));
    Intervals.push_back({K.StartTime, K.EndTime});
  }
  Out.Unfairness = metrics::systemUnfairness(Out.Slowdowns);
  Out.Overlap = metrics::executionOverlap(Intervals);
  return Out;
}
