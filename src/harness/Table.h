//===- harness/Table.h - Plain-text table rendering -------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer used by every bench binary to
/// emit the rows/series of the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_HARNESS_TABLE_H
#define ACCEL_HARNESS_TABLE_H

#include <string>
#include <vector>

namespace accel {

class raw_ostream;

namespace harness {

/// Accumulates rows and prints them column-aligned.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row) {
    Rows.push_back(std::move(Row));
  }

  /// Renders with a header underline and two-space gutters.
  void print(raw_ostream &OS) const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace harness
} // namespace accel

#endif // ACCEL_HARNESS_TABLE_H
