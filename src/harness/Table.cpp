//===- harness/Table.cpp - Plain-text table rendering ------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "harness/Table.h"

#include "support/RawOstream.h"
#include "support/StringUtil.h"

using namespace accel;
using namespace accel::harness;

void TextTable::print(raw_ostream &OS) const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size() && C != Widths.size(); ++C)
      Widths[C] = Row[C].size() > Widths[C] ? Row[C].size() : Widths[C];

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C)
        OS << "  ";
      OS << padRight(Row[C], Widths[C]);
    }
    OS << "\n";
  };

  PrintRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    Total += Widths[C] + (C ? 2 : 0);
  OS << std::string(Total, '-') << "\n";
  for (const auto &Row : Rows)
    PrintRow(Row);
}
