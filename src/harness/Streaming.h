//===- harness/Streaming.h - Streaming-arrival serving loop -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-driven multi-tenant serving loop: replays an open-loop
/// arrival trace (workloads::poissonTrace) under the compared
/// schedulers and reports per-request latencies and fairness.
///
///  - Baseline: the standard stack's FIFO hardware queue — one engine
///    run where every launch carries its real ArrivalTime;
///  - Elastic Kernels: at each round boundary the pending requests are
///    statically merged and co-dispatched;
///  - accelOS: the RoundScheduler re-solves fair shares at every
///    arrival/completion boundary (dynamic K) and requeues clamp-shed
///    requests into later rounds. Because accelOS kernels drain a
///    virtual work queue, a round may run each kernel for a bounded
///    *quantum* of its virtual groups and requeue the remainder — the
///    software analogue of preemption that keeps rounds short, so a
///    newly arrived kernel is never serialized behind a giant one.
///
/// Rounds are completion-synchronous: requests arriving while a round
/// executes wait for the next boundary, where the share solve sees the
/// grown queue.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_HARNESS_STREAMING_H
#define ACCEL_HARNESS_STREAMING_H

#include "harness/Experiment.h"
#include "workloads/Arrivals.h"

#include <map>
#include <string>
#include <vector>

namespace accel {
namespace harness {

/// Timing of one completed streaming request.
struct StreamRequestResult {
  size_t RequestIdx = 0; ///< Position in the replayed trace.
  int Tenant = 0;
  std::string Kernel;
  double ArrivalTime = 0;
  double StartTime = 0;
  double EndTime = 0;

  /// Submission-to-completion latency (queueing included).
  double latency() const { return EndTime - ArrivalTime; }
};

/// Whole-trace outcome under one scheduler.
struct StreamOutcome {
  std::vector<StreamRequestResult> Requests; ///< Indexed by trace order.
  /// Per-request turnaround normalized to the kernel's isolated
  /// baseline duration (the streaming analogue of IS_i).
  std::vector<double> Slowdowns;
  double Makespan = 0;   ///< Completion time of the last request.
  double Unfairness = 1; ///< max/min over Slowdowns.
  size_t Rounds = 0;     ///< Scheduling rounds executed (1 for FIFO).
  uint64_t Deferrals = 0; ///< Clamp-shed requeues (accelOS only).

  /// Latencies grouped by tenant, for percentile reporting.
  std::map<int, std::vector<double>> latenciesByTenant() const;
};

/// Streaming replay knobs.
struct StreamOptions {
  /// Per-tenant sharing weights (absent tenants weigh 1.0); only
  /// accelOS honours weights.
  std::map<int, double> Weights;
  /// accelOS work-slicing quantum in simulation time units: each round
  /// runs every granted kernel for roughly this long (sized through its
  /// virtual-group costs) and requeues the unfinished remainder. Zero
  /// disables slicing — granted kernels run to completion within their
  /// round.
  double RoundQuantum = 0;
};

/// Replays \p Trace under \p Kind on \p Driver's device.
StreamOutcome runStream(ExperimentDriver &Driver, SchedulerKind Kind,
                        const std::vector<workloads::TimedRequest> &Trace,
                        const StreamOptions &Opts = {});

/// Mean isolated (solo, baseline) duration across the suite: the
/// natural time unit for calibrating arrival rates and round quanta.
double meanIsolatedBaselineDuration(ExperimentDriver &Driver);

} // namespace harness
} // namespace accel

#endif // ACCEL_HARNESS_STREAMING_H
