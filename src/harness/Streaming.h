//===- harness/Streaming.h - Streaming-arrival serving loop -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-driven multi-tenant serving loop: replays an open-loop
/// arrival trace (workloads::poissonTrace) or a closed-loop tenant
/// script (workloads::closedLoopTrace) under the compared schedulers
/// and reports per-request latencies, fairness, and SLO attainment.
///
///  - Baseline: the standard stack's FIFO hardware queue — one engine
///    run where every launch carries its real ArrivalTime;
///  - Elastic Kernels: at each round boundary the pending requests are
///    statically merged and co-dispatched;
///  - accelOS: the scheduler re-solves fair shares at every
///    arrival/completion boundary (dynamic K) and requeues clamp-shed
///    requests. Because accelOS kernels drain a virtual work queue, a
///    grant may run each kernel for a bounded *quantum* of its virtual
///    groups and requeue the remainder — the software analogue of
///    preemption that keeps occupancy short, so a newly arrived kernel
///    is never serialized behind a giant one.
///
/// The accelOS path has two admission disciplines
/// (StreamOptions::Admission):
///
///  - RoundSync: completion-round-synchronous. Requests arriving while
///    a round executes wait for the next global boundary, where the
///    share solve sees the grown queue. Kept as the regression
///    reference — and as the demonstration of the round-boundary
///    convoy it suffers from.
///  - Continuous: arrival-aware continuous admission inside ONE
///    persistent engine session (sim::EngineSession). Fair shares are
///    re-solved at every arrival/completion event and newly arrived or
///    requeued sliced kernels immediately fill the residual capacity
///    left by in-flight grants (accelos::ContinuousScheduler) — no
///    global barrier, no preemption needed. On an all-zero-arrival
///    trace with slicing disabled this reproduces the round-sync
///    schedule bit-for-bit (regression-tested); under streaming
///    arrivals it cuts queueing delay because a request no longer
///    waits out the makespan of a round it missed.
///
/// Beyond the open loop, runClosedLoop() is the *TenantLoop* mode:
/// arrivals are not a fixed trace but reactions — each tenant keeps at
/// most its Concurrency requests outstanding and issues the next
/// scripted request only after a predecessor drains plus a think time
/// (backpressure). The accelOS path reuses sim::EngineSession +
/// accelos::ContinuousScheduler, and an optional SLO layer
/// (StreamOptions::SloTargets + AdaptiveSloWeights) feeds each tenant's
/// observed p95 queueing delay back into its fair-share weight through
/// accelos::SloWeightController.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_HARNESS_STREAMING_H
#define ACCEL_HARNESS_STREAMING_H

#include "accelos/AdmissionLoop.h"
#include "accelos/Scheduler.h"
#include "harness/Experiment.h"
#include "metrics/Metrics.h"
#include "workloads/Arrivals.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace accel {
namespace harness {

/// Timing of one completed streaming request.
struct StreamRequestResult {
  size_t RequestIdx = 0; ///< Position in the replayed trace.
  int Tenant = 0;
  std::string Kernel;
  double ArrivalTime = 0;
  double StartTime = 0;
  double EndTime = 0;
  /// The kernel's isolated (solo baseline) duration — the latency this
  /// request would have seen on an idle device.
  double AloneDuration = 0;

  /// Submission-to-completion latency (queueing included).
  double latency() const { return EndTime - ArrivalTime; }

  /// Time spent waiting before the first work-group dispatch.
  double queueDelay() const { return StartTime - ArrivalTime; }

  /// Total time this request spent queued rather than served: latency
  /// minus the kernel's isolated duration. Under work slicing a request
  /// waits *between* grants too, so this — not queueDelay() — is the
  /// request's true aggregate queueing time, and it is the value
  /// per-tenant SLO targets are judged on.
  double queueingExcess() const {
    return std::max(0.0, latency() - AloneDuration);
  }
};

/// Whole-trace outcome under one scheduler.
struct StreamOutcome {
  std::vector<StreamRequestResult> Requests; ///< Indexed by trace order.
  /// Per-request turnaround normalized to the kernel's isolated
  /// baseline duration (the streaming analogue of IS_i).
  std::vector<double> Slowdowns;
  double Makespan = 0;   ///< Completion time of the last request.
  double Unfairness = 1; ///< max/min over Slowdowns.
  /// Scheduling decisions: engine rounds for RoundSync (1 for FIFO),
  /// admission passes for Continuous.
  size_t Rounds = 0;
  uint64_t Deferrals = 0; ///< Scheduler deferrals (accelOS only).
  /// Admission passes that ran a full fair-share solve vs the
  /// incremental/stride fast path (continuous accelOS only; the
  /// fallback-to-full-solve counter). Rounds == FullSolves + FastPasses
  /// on those paths.
  uint64_t FullSolves = 0;
  uint64_t FastPasses = 0;
  /// Engine completion events delivered to the replay loop (slice
  /// completions included) — with arrivals and admission passes, the
  /// event count bench/serve_scale normalizes wall-clock by.
  uint64_t EngineCompletions = 0;

  /// Effective per-tenant weights when the run ended: the static
  /// StreamOptions::Weights, overlaid with the SLO controller's final
  /// boosts when AdaptiveSloWeights adapted them.
  std::map<int, double> FinalWeights;
  /// Times the SLO controller changed any weight (adaptive runs only).
  uint64_t WeightUpdates = 0;

  /// Latencies grouped by tenant, for percentile reporting.
  std::map<int, std::vector<double>> latenciesByTenant() const;

  /// Per-request queueing delays, in trace order.
  std::vector<double> queueDelays() const;

  /// First-dispatch queueing delays grouped by tenant.
  std::map<int, std::vector<double>> queueDelaysByTenant() const;

  /// Aggregate queueing times (StreamRequestResult::queueingExcess)
  /// grouped by tenant — the values SLO attainment and goodput are
  /// judged on (metrics::sloAttainment).
  std::map<int, std::vector<double>> queueingExcessByTenant() const;
};

/// Streaming replay knobs.
struct StreamOptions {
  /// How the accelOS scheduler admits work into the device. The FIFO
  /// baseline and Elastic Kernels have fixed disciplines of their own
  /// and ignore this knob.
  enum class AdmissionMode {
    /// Completion-round-synchronous: a global boundary per round.
    RoundSync,
    /// Event-driven admission into one persistent engine session.
    Continuous,
    /// Event-driven admission through accelos::StrideScheduler:
    /// pass/stride tenant counters replace the fair-share solve at
    /// every admission event. Approximate weighted fairness at a
    /// per-event cost that is O(log tenants) instead of a solver run —
    /// the high-rate serving mode benchmarked by bench/serve_scale.
    Stride,
  };

  /// Per-tenant sharing weights (absent tenants weigh 1.0); only
  /// accelOS honours weights.
  std::map<int, double> Weights;
  /// accelOS work-slicing quantum in simulation time units: each grant
  /// runs the kernel for roughly this long (sized through its
  /// virtual-group costs) and requeues the unfinished remainder. Zero
  /// disables slicing — granted kernels run to completion.
  double RoundQuantum = 0;
  /// Admission discipline for the accelOS path. The closed-loop tenant
  /// loop always runs continuous admission (its whole point is reacting
  /// to individual completions), so runClosedLoop ignores this knob.
  AdmissionMode Admission = AdmissionMode::RoundSync;

  /// Per-tenant SLO: a latency target expressed as a bound on each
  /// request's aggregate queueing time (queueingExcess: latency over
  /// the kernel's isolated duration), in simulation time units.
  /// Tenants absent here have no target (they attain trivially).
  /// Drives SLO-attainment/goodput reporting and, when
  /// AdaptiveSloWeights is set, the weight controller.
  std::map<int, double> SloTargets;
  /// Closed-loop accelOS only: periodically re-weight tenants from
  /// their observed p95 queueing time via accelos::SloWeightController
  /// (multiplicative increase toward missed SLOs, bounded boost). The
  /// FIFO and EK baselines have no weights to steer and ignore this.
  bool AdaptiveSloWeights = false;
  /// Control interval of the SLO controller, in simulation time units.
  /// Must be positive when AdaptiveSloWeights is set.
  double SloControlInterval = 0;
  /// Controller tuning (bounds, factors, hysteresis).
  accelos::SloControllerOptions SloTuning;
  /// Issue-aware admission (continuous accelOS only; 0 disables, the
  /// bit-identical default). A device's resident-thread capacity is an
  /// *occupancy* bound, many times its issue bandwidth (lanes): sharing
  /// out raw thread slots lets every tenant become fully resident, at
  /// which point the compute units' weight-blind processor sharing —
  /// not the solver — decides service rates and fair-share weights stop
  /// binding. When positive, the scheduler's thread capacity is clamped
  /// to Factor x (NumCUs x LanesPerCU), so admission shares out (a
  /// bounded oversubscription of) the bandwidth that is actually
  /// contended; weighted shares then translate into service rates.
  /// Factor ~2 keeps the lanes saturated while queueing the excess.
  double IssueCapacityFactor = 0;
  /// Strict weighted entitlements (continuous accelOS only; off is the
  /// bit-identical default). The work-conserving discipline grants
  /// every request min(saturated share, residual fit) — which is
  /// *request*-bound on an empty device and *fit*-bound on a full one,
  /// so the weighted share target between the two almost never binds
  /// and weights barely steer service. With StrictShares the admission
  /// targets come from the solver WITHOUT greedy saturation: each
  /// request is granted its weighted entitlement and no more, so the
  /// capacity a light tenant leaves on the table flows to the heavy
  /// (or SLO-boosted) tenants' next slices instead of being backfilled.
  /// Entitlements sum to (nearly) the full capacity, so under load the
  /// device stays as busy as before; what changes is who occupies it.
  bool StrictShares = false;
  /// Measurement baseline for the incremental-admission fast paths
  /// (continuous accelOS only): run every admission pass through a
  /// full share solve with the solver's reference saturation loop —
  /// the exact pre-optimization hot path. Grant histories are
  /// bit-identical to the default either way (the fast paths are
  /// exactness-preserving); what changes is the events/sec
  /// bench/serve_scale measures.
  bool FullSolveReference = false;
  /// Debug-build cross-check (continuous accelOS only): every
  /// incremental fast pass re-runs the full solve and asserts the
  /// shares are bit-identical. No effect in release builds.
  bool SelfCheckIncremental = false;
};

/// Degenerate-latency threshold, as a fraction of the request's
/// isolated baseline duration: below it a turnaround is considered
/// zero-work. Far smaller than any real request's latency (which is at
/// least its own execution time).
constexpr double ZeroWorkLatencyEpsilon = 1e-9;

/// The streaming slowdown of one request: latency over the isolated
/// baseline duration. A zero-work request completes at its admission
/// boundary, so both its shared and isolated durations are (near)
/// zero; its slowdown is the 0/0 limit — ideal service, exactly 1.
/// (Reporting the raw epsilon ratio instead would both trip the
/// metrics' positivity asserts at zero and, clamped, inflate max/min
/// unfairness by nine orders of magnitude.)
inline double streamSlowdown(double Latency, double AloneDuration) {
  if (AloneDuration <= 0 ||
      Latency <= ZeroWorkLatencyEpsilon * AloneDuration)
    return 1.0;
  return metrics::individualSlowdown(Latency, AloneDuration);
}

/// Computes the end of the quantum-bounded slice [Cursor, End) of a
/// virtual work range. Forwards to accelos::quantumSliceEnd — the
/// implementation moved next to the shared admission pass when the
/// functional Runtime adopted the continuous stack; this alias keeps
/// the harness-side callers (and tests) source-compatible.
inline size_t quantumSliceEnd(const std::vector<double> &WGCosts,
                              size_t Cursor, uint64_t GrantWGs,
                              uint64_t WGThreads, double IssueEfficiency,
                              double Quantum) {
  return accelos::quantumSliceEnd(WGCosts, Cursor, GrantWGs, WGThreads,
                                  IssueEfficiency, Quantum);
}

/// Replays \p Trace under \p Kind on \p Driver's device.
StreamOutcome runStream(ExperimentDriver &Driver, SchedulerKind Kind,
                        const std::vector<workloads::TimedRequest> &Trace,
                        const StreamOptions &Opts = {});

/// The TenantLoop mode: replays the closed-loop \p Script under \p Kind.
/// Each tenant starts with its first Concurrency scripted requests (at
/// their think-time offsets from time 0) and issues the next one only
/// when a predecessor completes — so the arrival stream emerges from
/// scheduling decisions instead of being fixed up front, and a slow
/// scheduler is offered less load (backpressure), exactly like a real
/// closed-loop serving client. The accelOS path runs arrival-aware
/// continuous admission (one sim::EngineSession +
/// accelos::ContinuousScheduler); FIFO submits reactively into the
/// hardware queue and EK merges whatever is pending at each round
/// boundary. With AdaptiveSloWeights, completions feed the
/// SloWeightController and new/requeued submissions pick up the adapted
/// weights. The outcome's Requests are in arrival order.
StreamOutcome runClosedLoop(ExperimentDriver &Driver, SchedulerKind Kind,
                            const workloads::ClosedLoopScript &Script,
                            const StreamOptions &Opts = {});

/// Mean isolated (solo, baseline) duration across the suite: the
/// natural time unit for calibrating arrival rates and round quanta.
double meanIsolatedBaselineDuration(ExperimentDriver &Driver);

} // namespace harness
} // namespace accel

#endif // ACCEL_HARNESS_STREAMING_H
