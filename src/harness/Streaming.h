//===- harness/Streaming.h - Streaming-arrival serving loop -----*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-driven multi-tenant serving loop: replays an open-loop
/// arrival trace (workloads::poissonTrace) under the compared
/// schedulers and reports per-request latencies and fairness.
///
///  - Baseline: the standard stack's FIFO hardware queue — one engine
///    run where every launch carries its real ArrivalTime;
///  - Elastic Kernels: at each round boundary the pending requests are
///    statically merged and co-dispatched;
///  - accelOS: the scheduler re-solves fair shares at every
///    arrival/completion boundary (dynamic K) and requeues clamp-shed
///    requests. Because accelOS kernels drain a virtual work queue, a
///    grant may run each kernel for a bounded *quantum* of its virtual
///    groups and requeue the remainder — the software analogue of
///    preemption that keeps occupancy short, so a newly arrived kernel
///    is never serialized behind a giant one.
///
/// The accelOS path has two admission disciplines
/// (StreamOptions::Admission):
///
///  - RoundSync: completion-round-synchronous. Requests arriving while
///    a round executes wait for the next global boundary, where the
///    share solve sees the grown queue. Kept as the regression
///    reference — and as the demonstration of the round-boundary
///    convoy it suffers from.
///  - Continuous: arrival-aware continuous admission inside ONE
///    persistent engine session (sim::EngineSession). Fair shares are
///    re-solved at every arrival/completion event and newly arrived or
///    requeued sliced kernels immediately fill the residual capacity
///    left by in-flight grants (accelos::ContinuousScheduler) — no
///    global barrier, no preemption needed. On an all-zero-arrival
///    trace with slicing disabled this reproduces the round-sync
///    schedule bit-for-bit (regression-tested); under streaming
///    arrivals it cuts queueing delay because a request no longer
///    waits out the makespan of a round it missed.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_HARNESS_STREAMING_H
#define ACCEL_HARNESS_STREAMING_H

#include "harness/Experiment.h"
#include "metrics/Metrics.h"
#include "workloads/Arrivals.h"

#include <map>
#include <string>
#include <vector>

namespace accel {
namespace harness {

/// Timing of one completed streaming request.
struct StreamRequestResult {
  size_t RequestIdx = 0; ///< Position in the replayed trace.
  int Tenant = 0;
  std::string Kernel;
  double ArrivalTime = 0;
  double StartTime = 0;
  double EndTime = 0;

  /// Submission-to-completion latency (queueing included).
  double latency() const { return EndTime - ArrivalTime; }

  /// Time spent waiting before the first work-group dispatch.
  double queueDelay() const { return StartTime - ArrivalTime; }
};

/// Whole-trace outcome under one scheduler.
struct StreamOutcome {
  std::vector<StreamRequestResult> Requests; ///< Indexed by trace order.
  /// Per-request turnaround normalized to the kernel's isolated
  /// baseline duration (the streaming analogue of IS_i).
  std::vector<double> Slowdowns;
  double Makespan = 0;   ///< Completion time of the last request.
  double Unfairness = 1; ///< max/min over Slowdowns.
  /// Scheduling decisions: engine rounds for RoundSync (1 for FIFO),
  /// admission passes for Continuous.
  size_t Rounds = 0;
  uint64_t Deferrals = 0; ///< Scheduler deferrals (accelOS only).

  /// Latencies grouped by tenant, for percentile reporting.
  std::map<int, std::vector<double>> latenciesByTenant() const;

  /// Per-request queueing delays, in trace order.
  std::vector<double> queueDelays() const;
};

/// Streaming replay knobs.
struct StreamOptions {
  /// How the accelOS scheduler admits work into the device. The FIFO
  /// baseline and Elastic Kernels have fixed disciplines of their own
  /// and ignore this knob.
  enum class AdmissionMode {
    /// Completion-round-synchronous: a global boundary per round.
    RoundSync,
    /// Event-driven admission into one persistent engine session.
    Continuous,
  };

  /// Per-tenant sharing weights (absent tenants weigh 1.0); only
  /// accelOS honours weights.
  std::map<int, double> Weights;
  /// accelOS work-slicing quantum in simulation time units: each grant
  /// runs the kernel for roughly this long (sized through its
  /// virtual-group costs) and requeues the unfinished remainder. Zero
  /// disables slicing — granted kernels run to completion.
  double RoundQuantum = 0;
  /// Admission discipline for the accelOS path.
  AdmissionMode Admission = AdmissionMode::RoundSync;
};

/// Degenerate-latency threshold, as a fraction of the request's
/// isolated baseline duration: below it a turnaround is considered
/// zero-work. Far smaller than any real request's latency (which is at
/// least its own execution time).
constexpr double ZeroWorkLatencyEpsilon = 1e-9;

/// The streaming slowdown of one request: latency over the isolated
/// baseline duration. A zero-work request completes at its admission
/// boundary, so both its shared and isolated durations are (near)
/// zero; its slowdown is the 0/0 limit — ideal service, exactly 1.
/// (Reporting the raw epsilon ratio instead would both trip the
/// metrics' positivity asserts at zero and, clamped, inflate max/min
/// unfairness by nine orders of magnitude.)
inline double streamSlowdown(double Latency, double AloneDuration) {
  if (AloneDuration <= 0 ||
      Latency <= ZeroWorkLatencyEpsilon * AloneDuration)
    return 1.0;
  return metrics::individualSlowdown(Latency, AloneDuration);
}

/// Computes the end of the quantum-bounded slice [Cursor, End) of a
/// virtual work range. The thread-cycle budget is derived from the
/// physical work groups that will actually run — \p GrantWGs capped to
/// the remaining virtual groups — so tail slices (fewer groups left
/// than granted workers) do not overrun the quantum the way a budget
/// computed from the uncapped grant would. Always takes at least one
/// group; \p Quantum <= 0 disables slicing (returns the full range).
size_t quantumSliceEnd(const std::vector<double> &WGCosts, size_t Cursor,
                       uint64_t GrantWGs, uint64_t WGThreads,
                       double IssueEfficiency, double Quantum);

/// Replays \p Trace under \p Kind on \p Driver's device.
StreamOutcome runStream(ExperimentDriver &Driver, SchedulerKind Kind,
                        const std::vector<workloads::TimedRequest> &Trace,
                        const StreamOptions &Opts = {});

/// Mean isolated (solo, baseline) duration across the suite: the
/// natural time unit for calibrating arrival rates and round quanta.
double meanIsolatedBaselineDuration(ExperimentDriver &Driver);

} // namespace harness
} // namespace accel

#endif // ACCEL_HARNESS_STREAMING_H
