//===- harness/Experiment.h - Experiment driver -----------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the paper's experiments: compiles the 25-kernel suite once
/// through the real front end and JIT cleanup pipeline (so instruction
/// counts, register estimates, and local-memory footprints that feed the
/// Sec. 3 solver and Sec. 6.4 batching come from actual IR), then runs
/// workloads through the timing engine under the four schedulers:
/// standard OpenCL (Baseline), Elastic Kernels, and accelOS in naive and
/// optimized modes.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_HARNESS_EXPERIMENT_H
#define ACCEL_HARNESS_EXPERIMENT_H

#include "accelos/AdaptivePolicy.h"
#include "accelos/ResourceSolver.h"
#include "ek/ElasticKernels.h"
#include "sim/Engine.h"
#include "workloads/KernelSpec.h"
#include "workloads/Sampler.h"

#include <map>
#include <string>
#include <vector>

namespace accel {
namespace harness {

/// The schemes compared throughout Sec. 8.
enum class SchedulerKind {
  Baseline,         ///< Standard OpenCL stack.
  ElasticKernels,   ///< Static merging baseline [31].
  AccelOSNaive,     ///< accelOS, one virtual group per dequeue.
  AccelOSOptimized  ///< accelOS with adaptive batching (default).
};

/// \returns a short printable name.
const char *schedulerName(SchedulerKind Kind);

/// A suite kernel with its compiler-derived facts and generated costs.
struct CompiledKernel {
  const workloads::KernelSpec *Spec = nullptr;
  uint64_t InstCount = 0;     ///< IR instructions (drives batching).
  uint64_t RegsPerThread = 0; ///< r_i for the solver.
  uint64_t LocalMemBytes = 0; ///< m_i for the solver.
  std::vector<double> WGCosts;
};

/// Per-workload metric bundle.
struct WorkloadOutcome {
  std::vector<double> Slowdowns; ///< IS_i vs. isolated baseline runs.
  double Unfairness = 1;         ///< U = max IS / min IS.
  double Overlap = 0;            ///< O = T(c) / T(t).
  double Makespan = 0;
};

/// Runs workloads on one device model.
class ExperimentDriver {
public:
  explicit ExperimentDriver(const sim::DeviceSpec &Spec);

  /// Number of suite kernels.
  size_t numKernels() const { return Kernels.size(); }

  const CompiledKernel &kernel(size_t Idx) const { return Kernels[Idx]; }

  const sim::DeviceSpec &device() const { return Spec; }

  /// Runs one multi-kernel workload under \p Kind. accelOS workloads
  /// are simulated round by round: requests the oversubscription clamp
  /// sheds are deferred to the next scheduling round, which begins when
  /// the previous round's kernels complete.
  WorkloadOutcome runWorkload(SchedulerKind Kind,
                              const workloads::Workload &W);

  /// Duration of kernel \p Idx running alone under \p Kind (cached).
  double isolatedDuration(SchedulerKind Kind, size_t Idx);

  /// Predicted solo duration of kernel \p Idx before it has ever run:
  /// the same engine math as isolatedDuration, but with every
  /// work-group cost replaced by the static analysis prior
  /// (workloads::staticCostPrior). Cached.
  double priorSoloDuration(size_t Idx);

  /// Builds the launch descriptor of suite kernel \p Idx as the
  /// standard OpenCL stack would submit it (also used by the streaming
  /// harness's FIFO baseline).
  sim::KernelLaunchDesc baselineDesc(size_t Idx, int AppId) const;

  /// Builds one accelOS WorkQueue launch for \p Idx with the solved
  /// share \p PhysWGs.
  sim::KernelLaunchDesc accelosDesc(size_t Idx, int AppId,
                                    uint64_t PhysWGs,
                                    accelos::SchedulingMode Mode) const;

  /// Builds the Elastic Kernels merge input for suite kernel \p Idx.
  ek::EKKernelDesc ekDesc(size_t Idx, int AppId) const;

  /// The Sec. 3 demand terms of suite kernel \p Idx (full range, unit
  /// weight — callers adjust RequestedWGs/Weight as needed).
  accelos::KernelDemand demandFor(size_t Idx) const;

private:
  /// One engine run per scheduling round. Baseline and EK submit
  /// everything in one round; accelOS plans rounds through the
  /// RoundScheduler (deferred requests land in later rounds).
  std::vector<std::vector<sim::KernelLaunchDesc>>
  buildRounds(SchedulerKind Kind, const workloads::Workload &W) const;

  sim::DeviceSpec Spec;
  std::vector<CompiledKernel> Kernels;
  std::map<std::pair<int, size_t>, double> IsolatedCache;
  std::map<size_t, double> PriorSoloCache;
};

/// \returns the bench scale factor from ACCELOS_REPRO_SCALE (default 1).
double reproScale();

} // namespace harness
} // namespace accel

#endif // ACCEL_HARNESS_EXPERIMENT_H
