//===- harness/ReplayDetail.h - Shared streaming replay machinery -*-C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-level machinery behind the serving loops, shared by the
/// single-device replays (harness::runStream / runClosedLoop) and the
/// multi-device cluster replay (harness::runCluster): per-request slice
/// progress, the demand/launch builders handed to the schedulers, and
/// the closed-loop issue heap. Internal to the library — everything
/// lives in harness::detail and the types leak no ABI promises.
///
/// ReplayState grew one cluster-shaped extension: every materialized
/// request may carry its *own* ExperimentDriver (the compiled view of
/// the device it was placed on), so demands, slice launches, and
/// isolated baselines all come from the device that actually serves the
/// request. Single-device callers never pass a driver and the original
/// behaviour is bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_HARNESS_REPLAYDETAIL_H
#define ACCEL_HARNESS_REPLAYDETAIL_H

#include "accelos/AdmissionLoop.h"
#include "accelos/ResourceSolver.h"
#include "accelos/Scheduler.h"
#include "harness/Streaming.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

namespace accel {
namespace harness {
namespace detail {

/// Per-request progress while its work is still in flight. accelOS
/// requests may execute across several grants (work slicing), so the
/// first-dispatch and last-completion times accumulate here.
struct LiveRequest {
  size_t Cursor = 0; ///< Next unexecuted virtual group.
  bool Started = false;
  double Start = 0;
  double End = 0;
};

/// The request-level machinery shared by the open-loop replay
/// (runStream), the closed-loop tenant loop (runClosedLoop), and the
/// cluster replay (runCluster): the materialized request list,
/// per-request slice progress, and the demand/launch builders handed to
/// the schedulers. Trace may keep growing during a closed-loop run;
/// every accessor indexes it afresh.
class ReplayState {
public:
  ReplayState(ExperimentDriver &Driver, const StreamOptions &Opts,
              accelos::SchedulingMode Mode, StreamOutcome &Out)
      : Driver(Driver), Opts(Opts), Mode(Mode), Out(Out) {}

  std::vector<workloads::TimedRequest> Trace;
  std::vector<LiveRequest> Live;

  /// Scratch buffers for the steady-state serving loops: admissionPass
  /// refills LaunchBuf and hands it to EngineSession::admitFrom, and
  /// the replay loops read completions through advanceTo(T,
  /// CompletionBuf) — one allocation per high-water mark instead of
  /// one per event.
  std::vector<sim::KernelLaunchDesc> LaunchBuf;
  std::vector<sim::KernelExecResult> CompletionBuf;

  /// Routes tenant-weight lookups through the SLO controller for the
  /// rest of the run (adaptive closed loop); new and requeued
  /// submissions then pick up whatever the control law last decided.
  void adoptController(const accelos::SloWeightController *C) { Ctl = C; }

  double weightOf(int Tenant) const {
    if (Ctl)
      return Ctl->weight(Tenant);
    auto It = Opts.Weights.find(Tenant);
    return It == Opts.Weights.end() ? 1.0 : It->second;
  }

  /// Appends one materialized request; \returns its global index. The
  /// request is served by the default driver's device.
  size_t append(const workloads::TimedRequest &R) {
    return append(R, Driver);
  }

  /// Appends one materialized request placed on \p D's device: demand,
  /// slice launches, and the isolated baseline all come from \p D. The
  /// driver must outlive the replay.
  size_t append(const workloads::TimedRequest &R, ExperimentDriver &D) {
    size_t Idx = Trace.size();
    Trace.push_back(R);
    Live.emplace_back();
    Drivers.push_back(&D);
    double Cost = 0;
    for (double C : D.kernel(R.KernelIdx).WGCosts)
      Cost += C;
    RemainingCostOf.push_back(Cost);
    StreamRequestResult Res;
    Res.RequestIdx = Idx;
    Res.Tenant = R.Tenant;
    Res.Kernel = D.kernel(R.KernelIdx).Spec->Id;
    Res.ArrivalTime = R.ArrivalTime;
    Res.AloneDuration =
        D.isolatedDuration(SchedulerKind::Baseline, R.KernelIdx);
    Out.Requests.push_back(std::move(Res));
    return Idx;
  }

  /// The driver (device view) serving request \p Idx.
  ExperimentDriver &driverOf(size_t Idx) const { return *Drivers[Idx]; }

  /// The Sec. 3 demand of request \p Idx, narrowed to what is left of
  /// its virtual range (a sliced request re-enters the queue asking
  /// only for the remainder) and weighted by its tenant.
  accelos::KernelDemand demandOf(size_t Idx) const {
    const workloads::TimedRequest &Req = Trace[Idx];
    ExperimentDriver &D = driverOf(Idx);
    accelos::KernelDemand Demand = D.demandFor(Req.KernelIdx);
    Demand.RequestedWGs =
        D.kernel(Req.KernelIdx).WGCosts.size() - Live[Idx].Cursor;
    Demand.Weight = weightOf(Req.Tenant);
    return Demand;
  }

  size_t remainingGroups(size_t Idx) const {
    return driverOf(Idx).kernel(Trace[Idx].KernelIdx).WGCosts.size() -
           Live[Idx].Cursor;
  }

  /// Cost, in thread-cycles, of request \p Idx's not-yet-executed
  /// virtual groups — the residual-work term of cluster placement.
  /// Maintained incrementally (full cost at append, each slice's cost
  /// subtracted when the slice launch is built), so reading it per
  /// completion event is O(1) instead of rescanning the range.
  double remainingCost(size_t Idx) const { return RemainingCostOf[Idx]; }

  /// Builds one quantum-bounded WorkQueue launch for the granted share
  /// \p GrantWGs of request \p Idx, advancing its slice cursor.
  sim::KernelLaunchDesc makeSliceLaunch(size_t Idx, uint64_t GrantWGs,
                                        double Arrival) {
    ExperimentDriver &D = driverOf(Idx);
    const CompiledKernel &CK = D.kernel(Trace[Idx].KernelIdx);
    LiveRequest &LR = Live[Idx];
    sim::KernelLaunchDesc L = D.accelosDesc(
        Trace[Idx].KernelIdx, static_cast<int>(Idx), GrantWGs, Mode);
    // Work slicing: run at most a quantum's worth of the virtual range
    // (paper Sec. 2.4: the virtual work queue is what makes
    // bounded-progress launches possible), requeueing the remainder.
    size_t End = quantumSliceEnd(CK.WGCosts, LR.Cursor, GrantWGs,
                                 CK.Spec->WGSize,
                                 CK.Spec->IssueEfficiency,
                                 Opts.RoundQuantum);
    for (size_t G = LR.Cursor; G != End; ++G)
      RemainingCostOf[Idx] -= CK.WGCosts[G];
    // The slice is a *view* into the compiled kernel's cost array (the
    // driver outlives the replay), not a copy: high-rate replays build
    // one of these per grant, and the copy was the dominant per-event
    // allocation.
    const size_t SliceLen = End - LR.Cursor;
    L.ViewCosts = CK.WGCosts.data();
    L.ViewBegin = LR.Cursor;
    L.ViewEnd = End;
    LR.Cursor = End;
    L.PhysicalWGs = std::min<uint64_t>(std::max<uint64_t>(GrantWGs, 1),
                                       SliceLen);
    // Re-cap the dequeue batch against the slice, not the full range:
    // every granted physical WG must still be able to dequeue at least
    // one batch of this launch's work.
    L.Batch = accelos::cappedBatchFor(Mode, CK.InstCount, SliceLen,
                                      L.PhysicalWGs);
    L.ArrivalTime = Arrival;
    return L;
  }

  /// Fail-stop rollback of request \p Idx's in-flight slice, whose view
  /// began at virtual group \p Begin: the device died mid-slice, the
  /// partial execution is discarded, and the slice's groups re-enter
  /// the remaining range (and its cost) so a re-placement serves them
  /// again. The request has at most one slice in flight, so Begin is
  /// exactly where its cursor must return to.
  void rollbackSlice(size_t Idx, size_t Begin) {
    const CompiledKernel &CK =
        driverOf(Idx).kernel(Trace[Idx].KernelIdx);
    LiveRequest &LR = Live[Idx];
    assert(Begin <= LR.Cursor && "rollback past the slice start");
    for (size_t G = Begin; G != LR.Cursor; ++G)
      RemainingCostOf[Idx] += CK.WGCosts[G];
    LR.Cursor = Begin;
  }

  /// Re-binds request \p Idx to device view \p D (failover after a
  /// device loss, or a quantum-boundary migration) carrying the slice
  /// cursor over: a kernel's virtual-group decomposition is derived
  /// from its KernelSpec alone (workloads::generateWGCosts), so it is
  /// identical on every device and the remaining range keeps its
  /// meaning. The remaining cost and the isolated baseline — and with
  /// it the request's slowdown/queueing-excess normalization — are
  /// re-measured on the device that will serve the remainder.
  void rehome(size_t Idx, ExperimentDriver &D) {
    const workloads::TimedRequest &Req = Trace[Idx];
    const CompiledKernel &CK = D.kernel(Req.KernelIdx);
    assert(CK.WGCosts.size() ==
               driverOf(Idx).kernel(Req.KernelIdx).WGCosts.size() &&
           "virtual-range shape differs across devices");
    Drivers[Idx] = &D;
    double Cost = 0;
    for (size_t G = Live[Idx].Cursor; G != CK.WGCosts.size(); ++G)
      Cost += CK.WGCosts[G];
    RemainingCostOf[Idx] = Cost;
    Out.Requests[Idx].AloneDuration =
        D.isolatedDuration(SchedulerKind::Baseline, Req.KernelIdx);
  }

  /// Retires a request that has no (remaining) work at time \p T: it
  /// completes at the boundary without occupying the device.
  void completeZeroWork(size_t Idx, double T) {
    LiveRequest &LR = Live[Idx];
    if (!LR.Started) {
      LR.Started = true;
      LR.Start = T;
    }
    LR.End = std::max(LR.End, T);
    Out.Requests[Idx].StartTime = LR.Start;
    Out.Requests[Idx].EndTime = LR.End;
  }

  /// Computes the whole-outcome aggregates once every request retired.
  void finalize() {
    for (size_t I = 0; I != Trace.size(); ++I) {
      const StreamRequestResult &R = Out.Requests[I];
      Out.Makespan = std::max(Out.Makespan, R.EndTime);
      // streamSlowdown floors the zero-work corner: a request with no
      // work completes at its arrival boundary with zero turnaround,
      // which would trip the positivity asserts in the metrics.
      Out.Slowdowns.push_back(
          streamSlowdown(R.EndTime - R.ArrivalTime, R.AloneDuration));
    }
    if (!Out.Slowdowns.empty())
      Out.Unfairness = metrics::systemUnfairness(Out.Slowdowns);
    Out.FinalWeights = Opts.Weights;
    if (Ctl)
      for (const auto &[Tenant, W] : Ctl->weights())
        Out.FinalWeights[Tenant] = W;
  }

private:
  ExperimentDriver &Driver;
  const StreamOptions &Opts;
  accelos::SchedulingMode Mode;
  StreamOutcome &Out;
  const accelos::SloWeightController *Ctl = nullptr;
  std::vector<ExperimentDriver *> Drivers; ///< Parallel to Trace.
  std::vector<double> RemainingCostOf;     ///< Parallel to Trace.
};

/// Queues request \p Idx — with its current remaining demand and
/// tenant weight — on \p Sched (an arrival or slice-requeue event).
/// Templated over the scheduler so the stride admission mode
/// (accelos::StrideScheduler, which charges the request's tenant pass
/// counter) shares the replay loops with the exact solver.
template <typename SchedulerT>
inline void submitRequest(SchedulerT &Sched, const ReplayState &RS,
                          size_t Idx) {
  accelos::RoundRequest R;
  R.Id = Idx;
  R.Tenant = RS.Trace[Idx].Tenant;
  R.Demand = RS.demandOf(Idx);
  Sched.submit(R);
}

/// One continuous-admission pass at time \p T, shared verbatim by the
/// single-device loops (runStream / runClosedLoop) and every device of
/// the cluster replay: grant whatever fits the residual capacity,
/// turning each grant into a quantum-bounded slice launch. Requests
/// with no remaining work complete at the boundary without occupying
/// the device — \p RetireZeroWork is called to do the caller's
/// completion bookkeeping (ReplayState::completeZeroWork has already
/// recorded the timing). \returns true when the pass itself freed
/// capacity (a tail slice shrinking its reservation) and must re-run
/// at this same instant; each re-pass needs a fresh shrink, so the
/// caller's loop terminates.
///
/// The pass structure itself (grant -> slice -> shrink -> admitFrom)
/// lives in accelos::runAdmissionPass, shared with the functional
/// Runtime's continuous pump; this wrapper binds it to ReplayState's
/// request bookkeeping.
template <typename SchedulerT, typename RetireFn>
inline bool admissionPass(SchedulerT &Sched, sim::EngineSession &Session,
                          ReplayState &RS, double T,
                          RetireFn &&RetireZeroWork) {
  return accelos::runAdmissionPass(
      Sched, Session, RS.LaunchBuf,
      [&](uint64_t Id,
          uint64_t WGs) -> std::optional<sim::KernelLaunchDesc> {
        size_t Idx = static_cast<size_t>(Id);
        if (RS.remainingGroups(Idx) == 0) {
          RS.completeZeroWork(Idx, T);
          return std::nullopt;
        }
        return RS.makeSliceLaunch(Idx, WGs, T);
      },
      [&](uint64_t Id) { RetireZeroWork(static_cast<size_t>(Id)); });
}

inline accelos::SchedulingMode modeFor(SchedulerKind Kind) {
  return Kind == SchedulerKind::AccelOSNaive
             ? accelos::SchedulingMode::Naive
             : accelos::SchedulingMode::Optimized;
}

/// The solver options the continuous scheduler runs under:
/// StreamOptions::StrictShares turns greedy saturation off so admission
/// targets are pure weighted entitlements, and FullSolveReference pins
/// the solver to its reference (pre-fast-path) saturation loop.
inline accelos::SolverOptions solverOptsFor(const StreamOptions &Opts) {
  accelos::SolverOptions SOpts;
  SOpts.GreedySaturation = !Opts.StrictShares;
  SOpts.FastSaturation = !Opts.FullSolveReference;
  return SOpts;
}

/// The scheduler options the continuous scheduler runs under:
/// FullSolveReference disables the incremental fast paths (every
/// admission pass runs a full share solve — the measurement baseline),
/// and SelfCheckIncremental cross-checks every fast pass against a
/// fresh full solve in debug builds.
inline accelos::SchedulerOptions schedOptsFor(const StreamOptions &Opts) {
  accelos::SchedulerOptions SO;
  SO.Incremental = !Opts.FullSolveReference;
  SO.SelfCheck = Opts.SelfCheckIncremental;
  return SO;
}

/// The capacity the continuous scheduler shares out: the device caps,
/// with the thread dimension optionally clamped to a bounded
/// oversubscription of the issue lanes (StreamOptions::
/// IssueCapacityFactor) so admission controls the contended resource.
inline accelos::ResourceCaps capsFor(const sim::DeviceSpec &Spec,
                                     const StreamOptions &Opts) {
  accelos::ResourceCaps Caps = accelos::ResourceCaps::fromDevice(Spec);
  if (Opts.IssueCapacityFactor > 0)
    Caps.Threads = std::min(
        Caps.Threads,
        static_cast<uint64_t>(Opts.IssueCapacityFactor *
                              static_cast<double>(Spec.NumCUs) *
                              static_cast<double>(Spec.LanesPerCU)));
  return Caps;
}

/// A scripted request whose arrival instant has been decided (issue
/// time + think time) but which has not been materialized yet. Seq
/// breaks arrival-time ties deterministically in issue order.
struct IssuedRequest {
  double Time = 0;
  uint64_t Seq = 0;
  size_t TenantPos = 0; ///< Index into the script's tenant list.
  size_t KernelIdx = 0;

  bool operator>(const IssuedRequest &O) const {
    return Time != O.Time ? Time > O.Time : Seq > O.Seq;
  }
};

/// Drives the reactive half of a closed-loop run: per-tenant script
/// cursors and the min-heap of issued-but-not-yet-arrived requests.
class ClosedLoopDriver {
public:
  explicit ClosedLoopDriver(const workloads::ClosedLoopScript &Script)
      : Script(Script), Cursor(Script.Tenants.size(), 0) {
    // Each tenant opens with its first Concurrency scripted requests,
    // issued from time 0 (their think times stagger the arrivals).
    for (size_t TP = 0; TP != Script.Tenants.size(); ++TP)
      for (size_t S = 0; S != Script.Tenants[TP].Concurrency; ++S)
        issue(TP, 0);
  }

  /// Issues tenant \p TP's next scripted request \p From a completion
  /// instant (backpressure: called once per completed request).
  void issue(size_t TP, double From) {
    size_t &C = Cursor[TP];
    if (C == Script.Sequences[TP].size())
      return; // Script exhausted: the tenant's population drains.
    const workloads::ScriptedRequest &SR = Script.Sequences[TP][C++];
    Heap.push({From + SR.ThinkTime, NextSeq++, TP, SR.KernelIdx});
  }

  bool empty() const { return Heap.empty(); }
  double nextTime() const { return Heap.top().Time; }

  /// Pops the earliest issued request and materializes it in \p RS on
  /// the default driver's device. \returns the new request's index.
  size_t materialize(ReplayState &RS) {
    IssuedRequest R = pop();
    size_t Idx = RS.append(timed(R));
    TenantPosOf.push_back(R.TenantPos);
    return Idx;
  }

  /// Cluster form: pops the earliest issued request *without*
  /// materializing it, so the caller can pick a device first and then
  /// commit with materializeOn().
  IssuedRequest pop() {
    IssuedRequest R = Heap.top();
    Heap.pop();
    return R;
  }

  /// Materializes a popped request in \p RS on \p D's device.
  size_t materializeOn(ReplayState &RS, const IssuedRequest &R,
                       ExperimentDriver &D) {
    size_t Idx = RS.append(timed(R), D);
    TenantPosOf.push_back(R.TenantPos);
    return Idx;
  }

  /// The tenant id (not the position) behind a popped request.
  int tenantOf(const IssuedRequest &R) const {
    return Script.Tenants[R.TenantPos].Tenant;
  }

  /// The script position of materialized request \p Idx, for reissuing
  /// on its completion.
  size_t tenantPos(size_t Idx) const { return TenantPosOf[Idx]; }

private:
  workloads::TimedRequest timed(const IssuedRequest &R) const {
    workloads::TimedRequest Req;
    Req.KernelIdx = R.KernelIdx;
    Req.Tenant = Script.Tenants[R.TenantPos].Tenant;
    Req.ArrivalTime = R.Time;
    return Req;
  }

  const workloads::ClosedLoopScript &Script;
  std::vector<size_t> Cursor; ///< Next unissued script entry per tenant.
  std::priority_queue<IssuedRequest, std::vector<IssuedRequest>,
                      std::greater<IssuedRequest>>
      Heap;
  uint64_t NextSeq = 0;
  std::vector<size_t> TenantPosOf; ///< Parallel to the materialized trace.
};

} // namespace detail
} // namespace harness
} // namespace accel

#endif // ACCEL_HARNESS_REPLAYDETAIL_H
