//===- minicl/CodeGen.cpp - AST to KIR lowering ----------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "minicl/CodeGen.h"

#include "kir/IRBuilder.h"
#include "kir/Module.h"

#include <map>
#include <set>
#include <vector>

using namespace accel;
using namespace accel::minicl;

namespace {

/// A typed value produced by expression lowering.
struct RValue {
  kir::Value *V = nullptr;
  MiniType Ty;
};

/// A resolved assignable location.
struct LValue {
  kir::Value *Addr = nullptr; ///< Pointer to the storage.
  MiniType Ty;                ///< Scalar type stored there.
};

/// One binding in the symbol table.
struct VarInfo {
  MiniType Ty;                 ///< Scalar type, or pointer type.
  kir::Value *Addr = nullptr;  ///< Storage pointer for scalars.
  kir::Value *Direct = nullptr; ///< Pointer value for arrays/pointer params.
};

/// Shared per-module lowering state.
struct ModuleContext {
  kir::Module *M = nullptr;
  std::map<std::string, const FunctionDecl *> Decls;
  std::map<std::string, kir::Function *> Fns;
};

/// Names reserved for built-in functions; user functions may not shadow
/// them.
bool isBuiltinName(const std::string &Name) {
  static const std::set<std::string> Names = {
      "get_global_id", "get_local_id",   "get_group_id", "get_global_size",
      "get_local_size", "get_num_groups", "get_work_dim", "barrier",
      "sqrt",          "rsqrt",          "sin",          "cos",
      "exp",           "log",            "fabs",         "fmin",
      "fmax",          "floor",          "min",          "max",
      "abs",           "atomic_add",     "atomic_sub",   "atomic_min",
      "atomic_max",    "atomic_xchg"};
  return Names.count(Name) != 0;
}

/// Lowers one function body.
class FunctionCodeGen {
public:
  FunctionCodeGen(ModuleContext &Ctx, const FunctionDecl &FD,
                  kir::Function *F)
      : Ctx(Ctx), FD(FD), F(F), B(F), AllocaB(F) {}

  Error run();

private:
  Error err(unsigned Line, const std::string &Message) {
    return makeError("error in '" + FD.Name + "' at line " +
                     std::to_string(Line) + ": " + Message);
  }

  // --- Symbol table -----------------------------------------------------
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  VarInfo *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  Error define(unsigned Line, const std::string &Name, VarInfo Info) {
    if (Scopes.back().count(Name))
      return err(Line, "redefinition of '" + Name + "'");
    Scopes.back().emplace(Name, std::move(Info));
    return Error::success();
  }

  // --- Block management ---------------------------------------------------
  /// Ensures there is an open insertion block, creating an unreachable
  /// one when the previous statement terminated control flow.
  void ensureBlock() {
    if (!Terminated)
      return;
    kir::BasicBlock *Dead = B.createBlock("dead" + std::to_string(NextId++));
    DeadBlocks.insert(Dead);
    B.setInsertPoint(Dead);
    Terminated = false;
  }

  std::string blockName(const char *Stem) {
    return std::string(Stem) + std::to_string(NextId++);
  }

  // --- Statements -------------------------------------------------------
  Error emitStmt(const Stmt *S);
  Error emitBlock(const BlockStmt *S);
  Error emitDecl(const DeclStmt *S);
  Error emitAssign(const AssignStmt *S);
  Error emitIf(const IfStmt *S);
  Error emitFor(const ForStmt *S);
  Error emitWhile(const WhileStmt *S);
  Error emitReturn(const ReturnStmt *S);

  // --- Expressions --------------------------------------------------------
  Expected<RValue> emitExpr(const Expr *E);
  Expected<RValue> emitBinary(const BinaryExpr *E);
  Expected<RValue> emitUnary(const UnaryExpr *E);
  Expected<RValue> emitCast(const CastExpr *E);
  Expected<RValue> emitCall(const CallExpr *E);
  Expected<RValue> emitBuiltinCall(const CallExpr *E);
  Expected<LValue> emitLValue(const Expr *E);

  /// Lowers \p E and coerces it to i1 for use as a branch condition
  /// (integers compare against zero, C-style).
  Expected<kir::Value *> emitCond(const Expr *E);

  /// Applies implicit conversions toward \p Target (int<->long widenings
  /// and narrowings, int/long -> float).
  Expected<RValue> convert(RValue V, const MiniType &Target, unsigned Line);

  /// Usual arithmetic conversions for a binary operator.
  MiniType commonArith(const MiniType &L, const MiniType &R) const {
    if (L.B == MiniType::Base::Float || R.B == MiniType::Base::Float)
      return MiniType::floatTy();
    if (L.B == MiniType::Base::Long || R.B == MiniType::Base::Long)
      return MiniType::longTy();
    return MiniType::intTy();
  }

  ModuleContext &Ctx;
  const FunctionDecl &FD;
  kir::Function *F;
  kir::IRBuilder B;       ///< Main insertion point.
  kir::IRBuilder AllocaB; ///< Pinned to the entry (alloca) block.

  std::vector<std::map<std::string, VarInfo>> Scopes;
  struct LoopCtx {
    kir::BasicBlock *ContinueBB;
    kir::BasicBlock *BreakBB;
    bool BreakUsed = false;
  };
  std::vector<LoopCtx> Loops;
  std::set<kir::BasicBlock *> DeadBlocks;
  bool Terminated = false;
  unsigned NextId = 0;
};

Error FunctionCodeGen::run() {
  kir::BasicBlock *Entry = F->createBlock("entry");
  AllocaB.setInsertPoint(Entry);
  kir::BasicBlock *Start = F->createBlock("start");
  B.setInsertPoint(Start);

  pushScope();
  for (unsigned I = 0; I != FD.Params.size(); ++I) {
    const ParamDecl &P = FD.Params[I];
    kir::Argument *Arg = F->argument(I);
    VarInfo Info;
    Info.Ty = P.Ty;
    if (P.Ty.isPtr()) {
      Info.Direct = Arg;
    } else {
      // Scalars are spilled so the body may reassign them.
      Info.Addr = AllocaB.allocaVar(MiniType::scalarKirKind(P.Ty.B), 1,
                                 P.Name + ".addr");
      B.store(Info.Addr, Arg);
    }
    if (Error E = define(P.Line, P.Name, Info))
      return E;
  }

  if (Error E = emitBlock(FD.Body.get()))
    return E;

  // Close the current block.
  kir::BasicBlock *Cur = B.insertBlock();
  if (!Cur->terminator()) {
    if (FD.RetTy.isVoid())
      B.retVoid();
    else if (DeadBlocks.count(Cur))
      B.ret(FD.RetTy.B == MiniType::Base::Float
                ? static_cast<kir::Value *>(B.f32Const(0.0f))
                : FD.RetTy.B == MiniType::Base::Long
                      ? static_cast<kir::Value *>(B.i64Const(0))
                      : static_cast<kir::Value *>(B.i32Const(0)));
    else
      return err(FD.Line, "control may reach the end of non-void function");
  }

  // Close any remaining unterminated (dead) blocks.
  for (const auto &BB : F->blocks()) {
    if (BB->terminator() || BB.get() == Entry)
      continue;
    B.setInsertPoint(BB.get());
    if (FD.RetTy.isVoid())
      B.retVoid();
    else if (FD.RetTy.B == MiniType::Base::Float)
      B.ret(B.f32Const(0.0f));
    else if (FD.RetTy.B == MiniType::Base::Long)
      B.ret(B.i64Const(0));
    else
      B.ret(B.i32Const(0));
  }

  // The alloca block finally jumps to the first real block.
  AllocaB.br(Start);
  popScope();
  return Error::success();
}

Error FunctionCodeGen::emitStmt(const Stmt *S) {
  ensureBlock();
  B.setCurrentLine(S->line());
  switch (S->stmtKind()) {
  case StmtKind::Block: {
    pushScope();
    Error E = emitBlock(cast<BlockStmt>(S));
    popScope();
    return E;
  }
  case StmtKind::Decl:
    return emitDecl(cast<DeclStmt>(S));
  case StmtKind::Assign:
    return emitAssign(cast<AssignStmt>(S));
  case StmtKind::ExprStmt: {
    Expected<RValue> V = emitExpr(cast<ExprStmt>(S)->expr());
    return V ? Error::success() : V.takeError();
  }
  case StmtKind::If:
    return emitIf(cast<IfStmt>(S));
  case StmtKind::For:
    return emitFor(cast<ForStmt>(S));
  case StmtKind::While:
    return emitWhile(cast<WhileStmt>(S));
  case StmtKind::Return:
    return emitReturn(cast<ReturnStmt>(S));
  case StmtKind::Break: {
    if (Loops.empty())
      return err(S->line(), "'break' outside of a loop");
    Loops.back().BreakUsed = true;
    B.br(Loops.back().BreakBB);
    Terminated = true;
    return Error::success();
  }
  case StmtKind::Continue: {
    if (Loops.empty())
      return err(S->line(), "'continue' outside of a loop");
    B.br(Loops.back().ContinueBB);
    Terminated = true;
    return Error::success();
  }
  }
  accel_unreachable("unhandled statement kind");
}

Error FunctionCodeGen::emitBlock(const BlockStmt *S) {
  for (const StmtPtr &Child : S->statements())
    if (Error E = emitStmt(Child.get()))
      return E;
  return Error::success();
}

Error FunctionCodeGen::emitDecl(const DeclStmt *S) {
  const MiniType &Ty = S->declType();
  kir::Type::Kind Elem = MiniType::scalarKirKind(Ty.B);

  if (S->isLocal()) {
    if (!F->isKernel())
      return err(S->line(),
                 "local memory may only be declared in kernel functions");
    if (S->init())
      return err(S->line(), "local variables cannot have initializers");
    unsigned Slot = F->addLocalAlloc(
        {S->name(), Elem, S->arraySize() ? S->arraySize() : 1});
    kir::Value *Ptr = AllocaB.localAddr(Elem, Slot, S->name());
    VarInfo Info;
    if (S->arraySize()) {
      Info.Ty = MiniType::ptr(Ty.B, kir::AddrSpaceKind::Local, false);
      Info.Direct = Ptr;
    } else {
      Info.Ty = Ty;
      Info.Addr = Ptr;
    }
    return define(S->line(), S->name(), Info);
  }

  if (S->arraySize()) {
    if (S->init())
      return err(S->line(), "array declarations cannot have initializers");
    VarInfo Info;
    Info.Ty = MiniType::ptr(Ty.B, kir::AddrSpaceKind::Private, false);
    Info.Direct = AllocaB.allocaVar(Elem, S->arraySize(), S->name());
    return define(S->line(), S->name(), Info);
  }

  VarInfo Info;
  Info.Ty = Ty;
  Info.Addr = AllocaB.allocaVar(Elem, 1, S->name() + ".addr");
  if (Error E = define(S->line(), S->name(), Info))
    return E;
  if (const Expr *Init = S->init()) {
    Expected<RValue> V = emitExpr(Init);
    if (!V)
      return V.takeError();
    Expected<RValue> Conv = convert(V.take(), Ty, S->line());
    if (!Conv)
      return Conv.takeError();
    B.store(Info.Addr, Conv->V);
  }
  return Error::success();
}

Expected<LValue> FunctionCodeGen::emitLValue(const Expr *E) {
  if (const auto *Var = dyn_cast<VarRefExpr>(E)) {
    VarInfo *Info = lookup(Var->name());
    if (!Info)
      return Expected<LValue>(
          err(E->line(), "use of undeclared variable '" + Var->name() + "'"));
    if (!Info->Addr)
      return Expected<LValue>(err(
          E->line(), "'" + Var->name() + "' is not an assignable scalar"));
    return LValue{Info->Addr, Info->Ty};
  }
  if (const auto *Idx = dyn_cast<IndexExpr>(E)) {
    Expected<RValue> Base = emitExpr(Idx->base());
    if (!Base)
      return Base.takeError();
    if (!Base->Ty.isPtr())
      return Expected<LValue>(
          err(E->line(), "subscripted value is not a pointer or array"));
    if (Base->Ty.IsConst)
      return Expected<LValue>(
          err(E->line(), "cannot assign through a const pointer"));
    Expected<RValue> Index = emitExpr(Idx->index());
    if (!Index)
      return Index.takeError();
    if (!Index->Ty.isInteger())
      return Expected<LValue>(err(E->line(), "array index must be integer"));
    kir::Value *Addr = B.gep(Base->V, Index->V);
    MiniType ElemTy;
    ElemTy.B = Base->Ty.Elem;
    return LValue{Addr, ElemTy};
  }
  return Expected<LValue>(err(E->line(), "expression is not assignable"));
}

Error FunctionCodeGen::emitAssign(const AssignStmt *S) {
  Expected<LValue> Target = emitLValue(S->target());
  if (!Target)
    return Target.takeError();
  Expected<RValue> Value = emitExpr(S->value());
  if (!Value)
    return Value.takeError();

  RValue NewVal = Value.take();
  if (S->op() != AssignOpKind::Plain) {
    kir::Value *Old = B.load(Target->Addr);
    RValue OldVal{Old, Target->Ty};
    // Promote the RHS to the stored type, then combine.
    Expected<RValue> Conv = convert(NewVal, Target->Ty, S->line());
    if (!Conv)
      return Conv.takeError();
    bool IsFloat = Target->Ty.B == MiniType::Base::Float;
    kir::BinOpKind Op = kir::BinOpKind::Add;
    switch (S->op()) {
    case AssignOpKind::Add:
      Op = IsFloat ? kir::BinOpKind::FAdd : kir::BinOpKind::Add;
      break;
    case AssignOpKind::Sub:
      Op = IsFloat ? kir::BinOpKind::FSub : kir::BinOpKind::Sub;
      break;
    case AssignOpKind::Mul:
      Op = IsFloat ? kir::BinOpKind::FMul : kir::BinOpKind::Mul;
      break;
    case AssignOpKind::Plain:
      accel_unreachable("plain handled above");
    }
    NewVal = RValue{B.binary(Op, OldVal.V, Conv->V), Target->Ty};
  } else {
    Expected<RValue> Conv = convert(NewVal, Target->Ty, S->line());
    if (!Conv)
      return Conv.takeError();
    NewVal = Conv.take();
  }
  B.store(Target->Addr, NewVal.V);
  return Error::success();
}

Error FunctionCodeGen::emitIf(const IfStmt *S) {
  Expected<kir::Value *> Cond = emitCond(S->cond());
  if (!Cond)
    return Cond.takeError();

  kir::BasicBlock *ThenBB = B.createBlock(blockName("if.then"));
  kir::BasicBlock *ElseBB =
      S->elseStmt() ? B.createBlock(blockName("if.else")) : nullptr;
  kir::BasicBlock *MergeBB = B.createBlock(blockName("if.end"));

  B.condBr(*Cond, ThenBB, ElseBB ? ElseBB : MergeBB);

  B.setInsertPoint(ThenBB);
  Terminated = false;
  if (Error E = emitStmt(S->thenStmt()))
    return E;
  bool ThenTerm = Terminated;
  if (!Terminated)
    B.br(MergeBB);

  bool ElseTerm = false;
  if (ElseBB) {
    B.setInsertPoint(ElseBB);
    Terminated = false;
    if (Error E = emitStmt(S->elseStmt()))
      return E;
    ElseTerm = Terminated;
    if (!Terminated)
      B.br(MergeBB);
  }

  B.setInsertPoint(MergeBB);
  Terminated = false;
  if (ThenTerm && ElseTerm && ElseBB)
    DeadBlocks.insert(MergeBB);
  return Error::success();
}

Error FunctionCodeGen::emitWhile(const WhileStmt *S) {
  kir::BasicBlock *CondBB = B.createBlock(blockName("while.cond"));
  kir::BasicBlock *BodyBB = B.createBlock(blockName("while.body"));
  kir::BasicBlock *ExitBB = B.createBlock(blockName("while.end"));

  B.br(CondBB);
  B.setInsertPoint(CondBB);
  Expected<kir::Value *> Cond = emitCond(S->cond());
  if (!Cond)
    return Cond.takeError();
  B.condBr(*Cond, BodyBB, ExitBB);

  Loops.push_back({CondBB, ExitBB});
  B.setInsertPoint(BodyBB);
  Terminated = false;
  if (Error E = emitStmt(S->body()))
    return E;
  if (!Terminated)
    B.br(CondBB);
  Loops.pop_back();

  B.setInsertPoint(ExitBB);
  Terminated = false;
  return Error::success();
}

Error FunctionCodeGen::emitFor(const ForStmt *S) {
  pushScope();
  if (S->init())
    if (Error E = emitStmt(S->init())) {
      popScope();
      return E;
    }

  kir::BasicBlock *CondBB = B.createBlock(blockName("for.cond"));
  kir::BasicBlock *BodyBB = B.createBlock(blockName("for.body"));
  kir::BasicBlock *StepBB = B.createBlock(blockName("for.step"));
  kir::BasicBlock *ExitBB = B.createBlock(blockName("for.end"));

  B.br(CondBB);
  B.setInsertPoint(CondBB);
  if (S->cond()) {
    Expected<kir::Value *> Cond = emitCond(S->cond());
    if (!Cond) {
      popScope();
      return Cond.takeError();
    }
    B.condBr(*Cond, BodyBB, ExitBB);
  } else {
    B.br(BodyBB);
  }

  Loops.push_back({StepBB, ExitBB});
  B.setInsertPoint(BodyBB);
  Terminated = false;
  Error BodyErr = emitStmt(S->body());
  if (BodyErr) {
    Loops.pop_back();
    popScope();
    return BodyErr;
  }
  if (!Terminated)
    B.br(StepBB);
  bool BreakUsed = Loops.back().BreakUsed;
  Loops.pop_back();

  B.setInsertPoint(StepBB);
  Terminated = false;
  if (S->step())
    if (Error E = emitStmt(S->step())) {
      popScope();
      return E;
    }
  B.br(CondBB);

  B.setInsertPoint(ExitBB);
  Terminated = false;
  if (!S->cond() && !BreakUsed)
    DeadBlocks.insert(ExitBB);
  popScope();
  return Error::success();
}

Error FunctionCodeGen::emitReturn(const ReturnStmt *S) {
  if (FD.RetTy.isVoid()) {
    if (S->value())
      return err(S->line(), "void function cannot return a value");
    B.retVoid();
    Terminated = true;
    return Error::success();
  }
  if (!S->value())
    return err(S->line(), "non-void function must return a value");
  Expected<RValue> V = emitExpr(S->value());
  if (!V)
    return V.takeError();
  Expected<RValue> Conv = convert(V.take(), FD.RetTy, S->line());
  if (!Conv)
    return Conv.takeError();
  B.ret(Conv->V);
  Terminated = true;
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expected<RValue> FunctionCodeGen::convert(RValue V, const MiniType &Target,
                                          unsigned Line) {
  if (V.Ty.sameShape(Target))
    return V;
  if (!V.Ty.isArith() || !Target.isArith())
    return Expected<RValue>(err(Line, "cannot convert '" + V.Ty.str() +
                                          "' to '" + Target.str() + "'"));
  using Base = MiniType::Base;
  if (V.Ty.B == Base::Int && Target.B == Base::Long)
    return RValue{B.cast(kir::CastKind::SExt, V.V, kir::Type::i64()),
                  Target};
  if (V.Ty.B == Base::Long && Target.B == Base::Int)
    return RValue{B.cast(kir::CastKind::Trunc, V.V, kir::Type::i32()),
                  Target};
  if (V.Ty.isInteger() && Target.B == Base::Float)
    return RValue{B.cast(kir::CastKind::SIToFP, V.V, kir::Type::f32()),
                  Target};
  return Expected<RValue>(
      err(Line, "conversion from '" + V.Ty.str() + "' to '" + Target.str() +
                    "' requires an explicit cast"));
}

Expected<kir::Value *> FunctionCodeGen::emitCond(const Expr *E) {
  Expected<RValue> V = emitExpr(E);
  if (!V)
    return V.takeError();
  if (V->Ty.isBool())
    return V->V;
  if (V->Ty.isInteger()) {
    kir::Value *Zero = V->Ty.B == MiniType::Base::Long
                           ? static_cast<kir::Value *>(B.i64Const(0))
                           : static_cast<kir::Value *>(B.i32Const(0));
    return B.cmp(kir::CmpPred::NE, V->V, Zero);
  }
  return Expected<kir::Value *>(
      err(E->line(), "condition must be boolean or integer"));
}

Expected<RValue> FunctionCodeGen::emitExpr(const Expr *E) {
  switch (E->exprKind()) {
  case ExprKind::IntLit: {
    const auto *Lit = cast<IntLitExpr>(E);
    if (Lit->value() >= INT32_MIN && Lit->value() <= INT32_MAX)
      return RValue{B.i32Const(static_cast<int32_t>(Lit->value())),
                    MiniType::intTy()};
    return RValue{B.i64Const(Lit->value()), MiniType::longTy()};
  }
  case ExprKind::FloatLit:
    return RValue{B.f32Const(cast<FloatLitExpr>(E)->value()),
                  MiniType::floatTy()};
  case ExprKind::BoolLit:
    return RValue{B.boolConst(cast<BoolLitExpr>(E)->value()),
                  MiniType::boolTy()};
  case ExprKind::VarRef: {
    const auto *Var = cast<VarRefExpr>(E);
    VarInfo *Info = lookup(Var->name());
    if (!Info)
      return Expected<RValue>(err(
          E->line(), "use of undeclared variable '" + Var->name() + "'"));
    if (Info->Direct)
      return RValue{Info->Direct, Info->Ty};
    return RValue{B.load(Info->Addr, Var->name()), Info->Ty};
  }
  case ExprKind::Unary:
    return emitUnary(cast<UnaryExpr>(E));
  case ExprKind::Binary:
    return emitBinary(cast<BinaryExpr>(E));
  case ExprKind::Cast:
    return emitCast(cast<CastExpr>(E));
  case ExprKind::Index: {
    Expected<LValue> LV = emitLValue(E);
    if (!LV) {
      // Loads through const pointers are fine; retry as a read.
      const auto *Idx = cast<IndexExpr>(E);
      LV.takeError().consume();
      Expected<RValue> Base = emitExpr(Idx->base());
      if (!Base)
        return Base;
      if (!Base->Ty.isPtr())
        return Expected<RValue>(
            err(E->line(), "subscripted value is not a pointer or array"));
      Expected<RValue> Index = emitExpr(Idx->index());
      if (!Index)
        return Index;
      if (!Index->Ty.isInteger())
        return Expected<RValue>(
            err(E->line(), "array index must be integer"));
      kir::Value *Addr = B.gep(Base->V, Index->V);
      MiniType ElemTy;
      ElemTy.B = Base->Ty.Elem;
      return RValue{B.load(Addr), ElemTy};
    }
    return RValue{B.load(LV->Addr), LV->Ty};
  }
  case ExprKind::Call:
    return emitCall(cast<CallExpr>(E));
  }
  accel_unreachable("unhandled expression kind");
}

Expected<RValue> FunctionCodeGen::emitUnary(const UnaryExpr *E) {
  Expected<RValue> Sub = emitExpr(E->sub());
  if (!Sub)
    return Sub;
  switch (E->op()) {
  case UnaryOpKind::Neg: {
    if (!Sub->Ty.isArith())
      return Expected<RValue>(err(E->line(), "operand of '-' must be "
                                             "arithmetic"));
    if (Sub->Ty.B == MiniType::Base::Float)
      return RValue{B.binary(kir::BinOpKind::FSub, B.f32Const(0.0f), Sub->V),
                    Sub->Ty};
    kir::Value *Zero = Sub->Ty.B == MiniType::Base::Long
                           ? static_cast<kir::Value *>(B.i64Const(0))
                           : static_cast<kir::Value *>(B.i32Const(0));
    return RValue{B.binary(kir::BinOpKind::Sub, Zero, Sub->V), Sub->Ty};
  }
  case UnaryOpKind::Not: {
    if (!Sub->Ty.isBool())
      return Expected<RValue>(err(E->line(), "operand of '!' must be bool"));
    return RValue{
        B.select(Sub->V, B.boolConst(false), B.boolConst(true)),
        MiniType::boolTy()};
  }
  case UnaryOpKind::BitNot: {
    if (!Sub->Ty.isInteger())
      return Expected<RValue>(
          err(E->line(), "operand of '~' must be integer"));
    kir::Value *AllOnes = Sub->Ty.B == MiniType::Base::Long
                              ? static_cast<kir::Value *>(B.i64Const(-1))
                              : static_cast<kir::Value *>(B.i32Const(-1));
    return RValue{B.binary(kir::BinOpKind::Xor, Sub->V, AllOnes), Sub->Ty};
  }
  }
  accel_unreachable("unhandled unary op");
}

Expected<RValue> FunctionCodeGen::emitBinary(const BinaryExpr *E) {
  Expected<RValue> L = emitExpr(E->lhs());
  if (!L)
    return L;
  Expected<RValue> R = emitExpr(E->rhs());
  if (!R)
    return R;

  using Op = BinaryOpKind;
  Op K = E->op();

  // Logical operators: both sides are evaluated (no short circuit); the
  // combination is a select, which keeps the IR free of extra control
  // flow. MiniCL kernels must not rely on short-circuit side effects.
  if (K == Op::LogAnd || K == Op::LogOr) {
    if (!L->Ty.isBool() || !R->Ty.isBool())
      return Expected<RValue>(
          err(E->line(), "operands of '&&'/'||' must be bool"));
    kir::Value *V =
        K == Op::LogAnd
            ? B.select(L->V, R->V, B.boolConst(false))
            : B.select(L->V, B.boolConst(true), R->V);
    return RValue{V, MiniType::boolTy()};
  }

  // Equality on bools.
  if ((K == Op::Eq || K == Op::Ne) && L->Ty.isBool() && R->Ty.isBool()) {
    kir::Value *V = B.cmp(K == Op::Eq ? kir::CmpPred::EQ : kir::CmpPred::NE,
                          L->V, R->V);
    return RValue{V, MiniType::boolTy()};
  }

  if (!L->Ty.isArith() || !R->Ty.isArith())
    return Expected<RValue>(err(
        E->line(), "invalid operands ('" + L->Ty.str() + "' and '" +
                       R->Ty.str() + "')"));

  MiniType Common = commonArith(L->Ty, R->Ty);
  bool IntOnly = K == Op::Rem || K == Op::Shl || K == Op::Shr ||
                 K == Op::BitAnd || K == Op::BitOr || K == Op::BitXor;
  if (IntOnly && Common.B == MiniType::Base::Float)
    return Expected<RValue>(
        err(E->line(), "operator requires integer operands"));

  Expected<RValue> LC = convert(L.take(), Common, E->line());
  if (!LC)
    return LC;
  Expected<RValue> RC = convert(R.take(), Common, E->line());
  if (!RC)
    return RC;

  bool IsFloat = Common.B == MiniType::Base::Float;
  switch (K) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Rem:
  case Op::Shl:
  case Op::Shr:
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor: {
    kir::BinOpKind BK;
    switch (K) {
    case Op::Add:
      BK = IsFloat ? kir::BinOpKind::FAdd : kir::BinOpKind::Add;
      break;
    case Op::Sub:
      BK = IsFloat ? kir::BinOpKind::FSub : kir::BinOpKind::Sub;
      break;
    case Op::Mul:
      BK = IsFloat ? kir::BinOpKind::FMul : kir::BinOpKind::Mul;
      break;
    case Op::Div:
      BK = IsFloat ? kir::BinOpKind::FDiv : kir::BinOpKind::SDiv;
      break;
    case Op::Rem:
      BK = kir::BinOpKind::SRem;
      break;
    case Op::Shl:
      BK = kir::BinOpKind::Shl;
      break;
    case Op::Shr:
      BK = kir::BinOpKind::AShr;
      break;
    case Op::BitAnd:
      BK = kir::BinOpKind::And;
      break;
    case Op::BitOr:
      BK = kir::BinOpKind::Or;
      break;
    case Op::BitXor:
      BK = kir::BinOpKind::Xor;
      break;
    default:
      accel_unreachable("covered above");
    }
    return RValue{B.binary(BK, LC->V, RC->V), Common};
  }
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne: {
    kir::CmpPred Pred;
    if (IsFloat) {
      Pred = K == Op::Lt   ? kir::CmpPred::FOLT
             : K == Op::Le ? kir::CmpPred::FOLE
             : K == Op::Gt ? kir::CmpPred::FOGT
             : K == Op::Ge ? kir::CmpPred::FOGE
             : K == Op::Eq ? kir::CmpPred::FOEQ
                           : kir::CmpPred::FONE;
    } else {
      Pred = K == Op::Lt   ? kir::CmpPred::SLT
             : K == Op::Le ? kir::CmpPred::SLE
             : K == Op::Gt ? kir::CmpPred::SGT
             : K == Op::Ge ? kir::CmpPred::SGE
             : K == Op::Eq ? kir::CmpPred::EQ
                           : kir::CmpPred::NE;
    }
    return RValue{B.cmp(Pred, LC->V, RC->V), MiniType::boolTy()};
  }
  case Op::LogAnd:
  case Op::LogOr:
    accel_unreachable("handled above");
  }
  accel_unreachable("unhandled binary op");
}

Expected<RValue> FunctionCodeGen::emitCast(const CastExpr *E) {
  Expected<RValue> Sub = emitExpr(E->sub());
  if (!Sub)
    return Sub;
  const MiniType &T = E->target();
  using Base = MiniType::Base;

  if (Sub->Ty.sameShape(T))
    return RValue{Sub->V, T};
  if (Sub->Ty.isPtr())
    return Expected<RValue>(err(E->line(), "cannot cast pointers"));

  if (Sub->Ty.isBool()) {
    if (T.B == Base::Int)
      return RValue{B.cast(kir::CastKind::ZExtBool, Sub->V,
                           kir::Type::i32()),
                    T};
    if (T.B == Base::Long)
      return RValue{B.cast(kir::CastKind::ZExtBool, Sub->V,
                           kir::Type::i64()),
                    T};
    return Expected<RValue>(err(E->line(), "bool casts to int or long only"));
  }

  if (Sub->Ty.B == Base::Float) {
    if (T.B == Base::Int)
      return RValue{B.cast(kir::CastKind::FPToSI, Sub->V, kir::Type::i32()),
                    T};
    if (T.B == Base::Long)
      return RValue{B.cast(kir::CastKind::FPToSI, Sub->V, kir::Type::i64()),
                    T};
  }
  if (Sub->Ty.isInteger())
    return convert(Sub.take(), T, E->line());

  return Expected<RValue>(err(E->line(), "unsupported cast from '" +
                                             Sub->Ty.str() + "' to '" +
                                             T.str() + "'"));
}

Expected<RValue> FunctionCodeGen::emitBuiltinCall(const CallExpr *E) {
  const std::string &Name = E->callee();
  unsigned Line = E->line();
  auto NArgs = [&]() { return static_cast<unsigned>(E->args().size()); };

  // Work-item queries with a literal dimension argument.
  static const std::map<std::string, kir::BuiltinKind> WiQueries = {
      {"get_global_id", kir::BuiltinKind::GetGlobalId},
      {"get_local_id", kir::BuiltinKind::GetLocalId},
      {"get_group_id", kir::BuiltinKind::GetGroupId},
      {"get_global_size", kir::BuiltinKind::GetGlobalSize},
      {"get_local_size", kir::BuiltinKind::GetLocalSize},
      {"get_num_groups", kir::BuiltinKind::GetNumGroups}};
  auto WiIt = WiQueries.find(Name);
  if (WiIt != WiQueries.end()) {
    if (NArgs() != 1)
      return Expected<RValue>(err(Line, Name + " takes one argument"));
    const auto *Dim = dyn_cast<IntLitExpr>(E->args()[0].get());
    if (!Dim || Dim->value() < 0 || Dim->value() > 2)
      return Expected<RValue>(
          err(Line, Name + " requires a literal dimension 0, 1 or 2"));
    kir::Value *V = B.builtin(
        WiIt->second, kir::Type::i64(),
        {B.i32Const(static_cast<int32_t>(Dim->value()))}, Name);
    return RValue{V, MiniType::longTy()};
  }

  if (Name == "get_work_dim") {
    if (NArgs() != 0)
      return Expected<RValue>(err(Line, "get_work_dim takes no arguments"));
    return RValue{B.builtin(kir::BuiltinKind::GetWorkDim, kir::Type::i32(),
                            {}, Name),
                  MiniType::intTy()};
  }

  if (Name == "barrier") {
    if (NArgs() != 0)
      return Expected<RValue>(err(Line, "barrier takes no arguments"));
    B.barrier();
    return RValue{nullptr, MiniType::voidTy()};
  }

  // Unary float math.
  static const std::map<std::string, kir::BuiltinKind> UnaryMath = {
      {"sqrt", kir::BuiltinKind::Sqrt},   {"rsqrt", kir::BuiltinKind::Rsqrt},
      {"sin", kir::BuiltinKind::Sin},     {"cos", kir::BuiltinKind::Cos},
      {"exp", kir::BuiltinKind::Exp},     {"log", kir::BuiltinKind::Log},
      {"fabs", kir::BuiltinKind::Fabs},   {"floor", kir::BuiltinKind::Floor}};
  auto MathIt = UnaryMath.find(Name);
  if (MathIt != UnaryMath.end()) {
    if (NArgs() != 1)
      return Expected<RValue>(err(Line, Name + " takes one argument"));
    Expected<RValue> A = emitExpr(E->args()[0].get());
    if (!A)
      return A;
    Expected<RValue> AF = convert(A.take(), MiniType::floatTy(), Line);
    if (!AF)
      return AF;
    return RValue{B.builtin(MathIt->second, kir::Type::f32(), {AF->V},
                            Name),
                  MiniType::floatTy()};
  }

  if (Name == "fmin" || Name == "fmax") {
    if (NArgs() != 2)
      return Expected<RValue>(err(Line, Name + " takes two arguments"));
    Expected<RValue> A = emitExpr(E->args()[0].get());
    if (!A)
      return A;
    Expected<RValue> AC = convert(A.take(), MiniType::floatTy(), Line);
    if (!AC)
      return AC;
    Expected<RValue> C = emitExpr(E->args()[1].get());
    if (!C)
      return C;
    Expected<RValue> CC = convert(C.take(), MiniType::floatTy(), Line);
    if (!CC)
      return CC;
    return RValue{B.builtin(Name == "fmin" ? kir::BuiltinKind::FMin
                                           : kir::BuiltinKind::FMax,
                            kir::Type::f32(), {AC->V, CC->V}, Name),
                  MiniType::floatTy()};
  }

  if (Name == "min" || Name == "max") {
    if (NArgs() != 2)
      return Expected<RValue>(err(Line, Name + " takes two arguments"));
    Expected<RValue> A = emitExpr(E->args()[0].get());
    if (!A)
      return A;
    Expected<RValue> C = emitExpr(E->args()[1].get());
    if (!C)
      return C;
    if (!A->Ty.isInteger() || !C->Ty.isInteger())
      return Expected<RValue>(
          err(Line, Name + " requires integer operands (use fmin/fmax)"));
    MiniType Common = commonArith(A->Ty, C->Ty);
    Expected<RValue> AC = convert(A.take(), Common, Line);
    if (!AC)
      return AC;
    Expected<RValue> CC = convert(C.take(), Common, Line);
    if (!CC)
      return CC;
    return RValue{B.builtin(Name == "min" ? kir::BuiltinKind::IMin
                                          : kir::BuiltinKind::IMax,
                            Common.toKir(), {AC->V, CC->V}, Name),
                  Common};
  }

  if (Name == "abs") {
    if (NArgs() != 1)
      return Expected<RValue>(err(Line, "abs takes one argument"));
    Expected<RValue> A = emitExpr(E->args()[0].get());
    if (!A)
      return A;
    if (!A->Ty.isInteger())
      return Expected<RValue>(err(Line, "abs requires an integer operand"));
    return RValue{
        B.builtin(kir::BuiltinKind::IAbs, A->Ty.toKir(), {A->V}, Name),
        A->Ty};
  }

  static const std::map<std::string, kir::BuiltinKind> Atomics = {
      {"atomic_add", kir::BuiltinKind::AtomicAdd},
      {"atomic_sub", kir::BuiltinKind::AtomicSub},
      {"atomic_min", kir::BuiltinKind::AtomicMin},
      {"atomic_max", kir::BuiltinKind::AtomicMax},
      {"atomic_xchg", kir::BuiltinKind::AtomicXchg}};
  auto AtIt = Atomics.find(Name);
  if (AtIt != Atomics.end()) {
    if (NArgs() != 2)
      return Expected<RValue>(err(Line, Name + " takes two arguments"));
    Expected<RValue> Ptr = emitExpr(E->args()[0].get());
    if (!Ptr)
      return Ptr;
    if (!Ptr->Ty.isPtr() || Ptr->Ty.Elem != MiniType::Base::Int)
      return Expected<RValue>(
          err(Line, Name + " requires a pointer to int"));
    if (Ptr->Ty.IsConst)
      return Expected<RValue>(err(Line, Name + " through a const pointer"));
    Expected<RValue> Val = emitExpr(E->args()[1].get());
    if (!Val)
      return Val;
    Expected<RValue> VC = convert(Val.take(), MiniType::intTy(), Line);
    if (!VC)
      return VC;
    return RValue{B.builtin(AtIt->second, kir::Type::i32(),
                            {Ptr->V, VC->V}, Name),
                  MiniType::intTy()};
  }

  accel_unreachable("isBuiltinName/emitBuiltinCall mismatch");
}

Expected<RValue> FunctionCodeGen::emitCall(const CallExpr *E) {
  if (isBuiltinName(E->callee()))
    return emitBuiltinCall(E);

  auto DeclIt = Ctx.Decls.find(E->callee());
  if (DeclIt == Ctx.Decls.end())
    return Expected<RValue>(err(
        E->line(), "call to undeclared function '" + E->callee() + "'"));
  const FunctionDecl *Callee = DeclIt->second;
  if (Callee->IsKernel)
    return Expected<RValue>(
        err(E->line(), "kernels cannot be called from device code"));
  if (E->args().size() != Callee->Params.size())
    return Expected<RValue>(
        err(E->line(), "wrong number of arguments to '" + E->callee() +
                           "' (expected " +
                           std::to_string(Callee->Params.size()) + ")"));

  std::vector<kir::Value *> Args;
  for (size_t I = 0; I != E->args().size(); ++I) {
    Expected<RValue> A = emitExpr(E->args()[I].get());
    if (!A)
      return A;
    const MiniType &ParamTy = Callee->Params[I].Ty;
    if (ParamTy.isPtr()) {
      if (!A->Ty.isPtr() || !A->Ty.sameShape(ParamTy))
        return Expected<RValue>(
            err(E->line(), "pointer argument type mismatch in call to '" +
                               E->callee() + "'"));
      Args.push_back(A->V);
      continue;
    }
    Expected<RValue> Conv = convert(A.take(), ParamTy, E->line());
    if (!Conv)
      return Conv;
    Args.push_back(Conv->V);
  }

  kir::Function *CalleeF = Ctx.Fns.at(E->callee());
  kir::Value *V = B.call(CalleeF, std::move(Args));
  return RValue{V, Callee->RetTy};
}

} // namespace

Expected<std::unique_ptr<kir::Module>>
minicl::generateModule(const ProgramAST &Program,
                       const std::string &ModuleName) {
  using RetT = Expected<std::unique_ptr<kir::Module>>;
  auto M = std::make_unique<kir::Module>(ModuleName);
  ModuleContext Ctx;
  Ctx.M = M.get();

  // Pass 1: declare every function so bodies can call forward.
  for (const auto &FD : Program.Functions) {
    if (isBuiltinName(FD->Name))
      return RetT(makeError("error at line " + std::to_string(FD->Line) +
                            ": '" + FD->Name +
                            "' is a reserved built-in name"));
    if (Ctx.Decls.count(FD->Name))
      return RetT(makeError("error at line " + std::to_string(FD->Line) +
                            ": redefinition of function '" + FD->Name +
                            "'"));
    for (const ParamDecl &P : FD->Params) {
      if (P.Ty.isBool() || P.Ty.isVoid())
        return RetT(makeError(
            "error at line " + std::to_string(P.Line) + ": parameter '" +
            P.Name + "' of '" + FD->Name + "' has unsupported type"));
    }
    kir::Function *F =
        M->createFunction(FD->Name, FD->RetTy.toKir(), FD->IsKernel);
    for (const ParamDecl &P : FD->Params)
      F->addArgument(P.Ty.toKir(), P.Name);
    Ctx.Decls.emplace(FD->Name, FD.get());
    Ctx.Fns.emplace(FD->Name, F);
  }

  // Pass 2: lower bodies.
  for (const auto &FD : Program.Functions) {
    FunctionCodeGen Gen(Ctx, *FD, Ctx.Fns.at(FD->Name));
    if (Error E = Gen.run())
      return RetT(std::move(E));
  }
  return RetT(std::move(M));
}
