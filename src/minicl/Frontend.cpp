//===- minicl/Frontend.cpp - Source-to-module driver -----------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "minicl/Frontend.h"

#include "kir/Module.h"
#include "kir/Verifier.h"
#include "minicl/CodeGen.h"
#include "minicl/Lexer.h"
#include "minicl/Parser.h"

#include <map>
#include <set>

using namespace accel;
using namespace accel::minicl;

/// Depth-first search for call-graph cycles (OpenCL forbids recursion,
/// and both the inliner and the interpreter rely on it).
static Error checkNoRecursion(const kir::Module &M) {
  enum class Mark { White, Grey, Black };
  std::map<const kir::Function *, Mark> Marks;

  // Iterative DFS with an explicit stack.
  for (const auto &Root : M.functions()) {
    if (Marks[Root.get()] != Mark::White)
      continue;
    std::vector<std::pair<const kir::Function *, size_t>> Stack;
    std::vector<const kir::Function *> Callees;

    auto CalleesOf = [](const kir::Function *F) {
      std::vector<const kir::Function *> Out;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions())
          if (const auto *Call = dyn_cast<kir::CallInst>(I.get()))
            Out.push_back(Call->callee());
      return Out;
    };

    std::map<const kir::Function *, std::vector<const kir::Function *>>
        CalleeCache;
    auto GetCallees = [&](const kir::Function *F)
        -> const std::vector<const kir::Function *> & {
      auto It = CalleeCache.find(F);
      if (It == CalleeCache.end())
        It = CalleeCache.emplace(F, CalleesOf(F)).first;
      return It->second;
    };

    Marks[Root.get()] = Mark::Grey;
    Stack.emplace_back(Root.get(), 0);
    while (!Stack.empty()) {
      auto &[F, NextIdx] = Stack.back();
      const auto &Succ = GetCallees(F);
      if (NextIdx >= Succ.size()) {
        Marks[F] = Mark::Black;
        Stack.pop_back();
        continue;
      }
      const kir::Function *Callee = Succ[NextIdx++];
      Mark &CM = Marks[Callee];
      if (CM == Mark::Grey)
        return makeError("recursion detected involving function '" +
                         Callee->name() + "' (not allowed in kernels)");
      if (CM == Mark::White) {
        CM = Mark::Grey;
        Stack.emplace_back(Callee, 0);
      }
    }
  }
  return Error::success();
}

Expected<std::unique_ptr<kir::Module>>
minicl::compileSource(const std::string &ModuleName,
                      std::string_view Source) {
  using RetT = Expected<std::unique_ptr<kir::Module>>;

  Lexer Lex(Source);
  Expected<std::vector<Token>> Tokens = Lex.tokenize();
  if (!Tokens)
    return RetT(Tokens.takeError());

  Parser P(Tokens.take());
  Expected<std::unique_ptr<ProgramAST>> Program = P.parseProgram();
  if (!Program)
    return RetT(Program.takeError());

  Expected<std::unique_ptr<kir::Module>> M =
      generateModule(**Program, ModuleName);
  if (!M)
    return M;

  if (Error E = kir::verifyModule(**M))
    return RetT(std::move(E));
  if (Error E = checkNoRecursion(**M))
    return RetT(std::move(E));
  return M;
}

Expected<CompiledWithLints>
minicl::compileSourceWithLints(const std::string &ModuleName,
                               std::string_view Source,
                               const kir::analysis::LintOptions &Opts) {
  Expected<std::unique_ptr<kir::Module>> M = compileSource(ModuleName, Source);
  if (!M)
    return Expected<CompiledWithLints>(M.takeError());
  CompiledWithLints Result;
  Result.Module = M.take();
  Result.Lints = kir::analysis::lintModule(*Result.Module, Opts);
  return Result;
}
