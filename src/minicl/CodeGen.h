//===- minicl/CodeGen.h - AST to KIR lowering -------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniCL AST into a KIR module. Semantic analysis
/// (symbol resolution, type checking, address-space rules) happens during
/// lowering and produces recoverable Errors with source lines, mirroring
/// how OpenCL drivers report build failures through clBuildProgram.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_CODEGEN_H
#define ACCEL_MINICL_CODEGEN_H

#include "minicl/AST.h"
#include "support/Error.h"

#include <memory>
#include <string>

namespace accel {

namespace kir {
class Module;
}

namespace minicl {

/// Generates a verified KIR module from \p Program.
Expected<std::unique_ptr<kir::Module>>
generateModule(const ProgramAST &Program, const std::string &ModuleName);

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_CODEGEN_H
