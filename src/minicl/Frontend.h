//===- minicl/Frontend.h - Source-to-module driver --------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end driver: lexes, parses, lowers and verifies MiniCL
/// source, producing a KIR module. This plays the role of the "OpenCL C
/// -> LLVM IR" step in the paper's Fig. 7b compilation pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_FRONTEND_H
#define ACCEL_MINICL_FRONTEND_H

#include "kir/analysis/Lint.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace accel {

namespace kir {
class Module;
}

namespace minicl {

/// Compiles \p Source into a verified KIR module named \p ModuleName.
/// Rejects recursive call graphs (as OpenCL does).
Expected<std::unique_ptr<kir::Module>>
compileSource(const std::string &ModuleName, std::string_view Source);

/// A compiled module together with the analysis findings over it.
struct CompiledWithLints {
  std::unique_ptr<kir::Module> Module;
  std::vector<kir::analysis::Diagnostic> Lints;
};

/// Like compileSource, but additionally runs the kir analysis passes
/// (barrier divergence, RT-window safety, cost fallbacks) and returns
/// their diagnostics alongside the module. Lints never fail the
/// compile; callers decide how strict to be.
Expected<CompiledWithLints>
compileSourceWithLints(const std::string &ModuleName, std::string_view Source,
                       const kir::analysis::LintOptions &Opts =
                           kir::analysis::LintOptions());

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_FRONTEND_H
