//===- minicl/Frontend.h - Source-to-module driver --------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end driver: lexes, parses, lowers and verifies MiniCL
/// source, producing a KIR module. This plays the role of the "OpenCL C
/// -> LLVM IR" step in the paper's Fig. 7b compilation pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_FRONTEND_H
#define ACCEL_MINICL_FRONTEND_H

#include "support/Error.h"

#include <memory>
#include <string>
#include <string_view>

namespace accel {

namespace kir {
class Module;
}

namespace minicl {

/// Compiles \p Source into a verified KIR module named \p ModuleName.
/// Rejects recursive call graphs (as OpenCL does).
Expected<std::unique_ptr<kir::Module>>
compileSource(const std::string &ModuleName, std::string_view Source);

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_FRONTEND_H
