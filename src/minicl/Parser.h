//===- minicl/Parser.h - MiniCL recursive-descent parser --------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a MiniCL token stream into a ProgramAST. Grammar is a C subset
/// with OpenCL address-space qualifiers and kernel functions; see
/// README.md for the full grammar accepted.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_PARSER_H
#define ACCEL_MINICL_PARSER_H

#include "minicl/AST.h"
#include "minicl/Token.h"
#include "support/Error.h"

#include <memory>
#include <vector>

namespace accel {
namespace minicl {

/// Recursive-descent parser over a pre-lexed token vector.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  /// Parses the whole translation unit.
  Expected<std::unique_ptr<ProgramAST>> parseProgram();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++
                                                                 : Pos]; }
  bool check(TokKind K) const { return peek().is(K); }
  bool match(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  Error expect(TokKind K, const char *Context);
  Error errorHere(const std::string &Message) const;

  bool atTypeStart() const;

  Expected<std::unique_ptr<FunctionDecl>> parseFunction();
  Expected<MiniType> parseParamType();
  Expected<MiniType::Base> parseBaseType();

  Expected<StmtPtr> parseStmt();
  Expected<StmtPtr> parseBlock();
  Expected<StmtPtr> parseDecl(bool ConsumeSemi);
  Expected<StmtPtr> parseIf();
  Expected<StmtPtr> parseFor();
  Expected<StmtPtr> parseWhile();
  Expected<StmtPtr> parseReturn();
  /// Assignment, increment/decrement, or expression statement.
  Expected<StmtPtr> parseSimpleStmt(bool ConsumeSemi);

  Expected<ExprPtr> parseExpr();
  Expected<ExprPtr> parseBinaryRHS(int MinPrec, ExprPtr LHS);
  Expected<ExprPtr> parseUnary();
  Expected<ExprPtr> parsePostfix();
  Expected<ExprPtr> parsePrimary();

  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_PARSER_H
