//===- minicl/Parser.cpp - MiniCL recursive-descent parser -----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "minicl/Parser.h"

using namespace accel;
using namespace accel::minicl;

Error Parser::errorHere(const std::string &Message) const {
  return makeError("parse error at line " + std::to_string(peek().Line) +
                   ": " + Message);
}

Error Parser::expect(TokKind K, const char *Context) {
  if (match(K))
    return Error::success();
  return errorHere(std::string("expected ") + tokKindName(K) + " " + Context +
                   ", found " + tokKindName(peek().Kind));
}

bool Parser::atTypeStart() const {
  switch (peek().Kind) {
  case TokKind::KwInt:
  case TokKind::KwLong:
  case TokKind::KwFloat:
  case TokKind::KwVoid:
  case TokKind::KwGlobal:
  case TokKind::KwLocal:
  case TokKind::KwConst:
    return true;
  default:
    return false;
  }
}

Expected<MiniType::Base> Parser::parseBaseType() {
  if (match(TokKind::KwInt))
    return MiniType::Base::Int;
  if (match(TokKind::KwLong))
    return MiniType::Base::Long;
  if (match(TokKind::KwFloat))
    return MiniType::Base::Float;
  return Expected<MiniType::Base>(
      errorHere("expected a scalar type ('int', 'long' or 'float')"));
}

Expected<MiniType> Parser::parseParamType() {
  bool IsGlobal = false, IsLocal = false, IsConst = false;
  for (;;) {
    if (match(TokKind::KwGlobal)) {
      IsGlobal = true;
      continue;
    }
    if (match(TokKind::KwLocal)) {
      IsLocal = true;
      continue;
    }
    if (match(TokKind::KwConst)) {
      IsConst = true;
      continue;
    }
    break;
  }
  Expected<MiniType::Base> Base = parseBaseType();
  if (!Base)
    return Base.takeError();
  // Allow "float const *" style as well.
  if (match(TokKind::KwConst))
    IsConst = true;

  if (match(TokKind::Star)) {
    kir::AddrSpaceKind AS = IsGlobal  ? kir::AddrSpaceKind::Global
                            : IsLocal ? kir::AddrSpaceKind::Local
                                      : kir::AddrSpaceKind::Private;
    if (!IsGlobal && !IsLocal)
      return Expected<MiniType>(
          errorHere("pointer parameters must be 'global' or 'local'"));
    return MiniType::ptr(*Base, AS, IsConst);
  }
  if (IsGlobal || IsLocal)
    return Expected<MiniType>(
        errorHere("address-space qualifier requires a pointer type"));
  MiniType T;
  T.B = *Base;
  T.IsConst = IsConst;
  return T;
}

Expected<std::unique_ptr<ProgramAST>> Parser::parseProgram() {
  auto Program = std::make_unique<ProgramAST>();
  while (!check(TokKind::Eof)) {
    Expected<std::unique_ptr<FunctionDecl>> F = parseFunction();
    if (!F)
      return F.takeError();
    Program->Functions.push_back(F.take());
  }
  return Program;
}

Expected<std::unique_ptr<FunctionDecl>> Parser::parseFunction() {
  using RetT = Expected<std::unique_ptr<FunctionDecl>>;
  auto Fn = std::make_unique<FunctionDecl>();
  Fn->Line = peek().Line;
  Fn->IsKernel = match(TokKind::KwKernel);

  if (match(TokKind::KwVoid)) {
    Fn->RetTy = MiniType::voidTy();
  } else {
    Expected<MiniType::Base> Base = parseBaseType();
    if (!Base)
      return Base.takeError();
    Fn->RetTy.B = *Base;
  }
  if (Fn->IsKernel && !Fn->RetTy.isVoid())
    return RetT(errorHere("kernel functions must return void"));

  if (!check(TokKind::Identifier))
    return RetT(errorHere("expected function name"));
  Fn->Name = advance().Text;

  if (Error E = expect(TokKind::LParen, "after function name"))
    return RetT(std::move(E));
  if (!check(TokKind::RParen)) {
    do {
      ParamDecl P;
      P.Line = peek().Line;
      Expected<MiniType> Ty = parseParamType();
      if (!Ty)
        return Ty.takeError();
      P.Ty = *Ty;
      if (!check(TokKind::Identifier))
        return RetT(errorHere("expected parameter name"));
      P.Name = advance().Text;
      Fn->Params.push_back(std::move(P));
    } while (match(TokKind::Comma));
  }
  if (Error E = expect(TokKind::RParen, "after parameter list"))
    return RetT(std::move(E));

  Expected<StmtPtr> Body = parseBlock();
  if (!Body)
    return Body.takeError();
  Fn->Body.reset(cast<BlockStmt>(Body->release()));
  return RetT(std::move(Fn));
}

Expected<StmtPtr> Parser::parseBlock() {
  unsigned Line = peek().Line;
  if (Error E = expect(TokKind::LBrace, "to open a block"))
    return Expected<StmtPtr>(std::move(E));
  std::vector<StmtPtr> Stmts;
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    Expected<StmtPtr> S = parseStmt();
    if (!S)
      return S;
    Stmts.push_back(S.take());
  }
  if (Error E = expect(TokKind::RBrace, "to close a block"))
    return Expected<StmtPtr>(std::move(E));
  return StmtPtr(std::make_unique<BlockStmt>(std::move(Stmts), Line));
}

Expected<StmtPtr> Parser::parseStmt() {
  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwLocal:
  case TokKind::KwInt:
  case TokKind::KwLong:
  case TokKind::KwFloat:
    return parseDecl(/*ConsumeSemi=*/true);
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwReturn:
    return parseReturn();
  case TokKind::KwBreak: {
    unsigned Line = advance().Line;
    if (Error E = expect(TokKind::Semicolon, "after 'break'"))
      return Expected<StmtPtr>(std::move(E));
    return StmtPtr(std::make_unique<BreakStmt>(Line));
  }
  case TokKind::KwContinue: {
    unsigned Line = advance().Line;
    if (Error E = expect(TokKind::Semicolon, "after 'continue'"))
      return Expected<StmtPtr>(std::move(E));
    return StmtPtr(std::make_unique<ContinueStmt>(Line));
  }
  default:
    return parseSimpleStmt(/*ConsumeSemi=*/true);
  }
}

Expected<StmtPtr> Parser::parseDecl(bool ConsumeSemi) {
  unsigned Line = peek().Line;
  bool IsLocal = match(TokKind::KwLocal);
  Expected<MiniType::Base> Base = parseBaseType();
  if (!Base)
    return Base.takeError();
  if (!check(TokKind::Identifier))
    return Expected<StmtPtr>(errorHere("expected variable name"));
  std::string Name = advance().Text;

  uint64_t ArraySize = 0;
  ExprPtr Init;
  if (match(TokKind::LBracket)) {
    if (!check(TokKind::IntLiteral))
      return Expected<StmtPtr>(
          errorHere("array size must be an integer literal"));
    int64_t N = advance().IntValue;
    if (N <= 0)
      return Expected<StmtPtr>(errorHere("array size must be positive"));
    ArraySize = static_cast<uint64_t>(N);
    if (Error E = expect(TokKind::RBracket, "after array size"))
      return Expected<StmtPtr>(std::move(E));
  } else if (match(TokKind::Assign)) {
    Expected<ExprPtr> E = parseExpr();
    if (!E)
      return E.takeError();
    Init = E.take();
  }
  if (ConsumeSemi)
    if (Error E = expect(TokKind::Semicolon, "after declaration"))
      return Expected<StmtPtr>(std::move(E));

  MiniType Ty;
  Ty.B = *Base;
  return StmtPtr(std::make_unique<DeclStmt>(Ty, IsLocal, std::move(Name),
                                            ArraySize, std::move(Init),
                                            Line));
}

Expected<StmtPtr> Parser::parseIf() {
  unsigned Line = advance().Line; // 'if'
  if (Error E = expect(TokKind::LParen, "after 'if'"))
    return Expected<StmtPtr>(std::move(E));
  Expected<ExprPtr> Cond = parseExpr();
  if (!Cond)
    return Cond.takeError();
  if (Error E = expect(TokKind::RParen, "after if condition"))
    return Expected<StmtPtr>(std::move(E));
  Expected<StmtPtr> Then = parseStmt();
  if (!Then)
    return Then;
  StmtPtr Else;
  if (match(TokKind::KwElse)) {
    Expected<StmtPtr> E = parseStmt();
    if (!E)
      return E;
    Else = E.take();
  }
  return StmtPtr(std::make_unique<IfStmt>(Cond.take(), Then.take(),
                                          std::move(Else), Line));
}

Expected<StmtPtr> Parser::parseFor() {
  unsigned Line = advance().Line; // 'for'
  if (Error E = expect(TokKind::LParen, "after 'for'"))
    return Expected<StmtPtr>(std::move(E));

  StmtPtr Init;
  if (!match(TokKind::Semicolon)) {
    Expected<StmtPtr> I = atTypeStart() ? parseDecl(/*ConsumeSemi=*/false)
                                        : parseSimpleStmt(false);
    if (!I)
      return I;
    Init = I.take();
    if (Error E = expect(TokKind::Semicolon, "after for-init"))
      return Expected<StmtPtr>(std::move(E));
  }

  ExprPtr Cond;
  if (!check(TokKind::Semicolon)) {
    Expected<ExprPtr> C = parseExpr();
    if (!C)
      return C.takeError();
    Cond = C.take();
  }
  if (Error E = expect(TokKind::Semicolon, "after for-condition"))
    return Expected<StmtPtr>(std::move(E));

  StmtPtr Step;
  if (!check(TokKind::RParen)) {
    Expected<StmtPtr> S = parseSimpleStmt(/*ConsumeSemi=*/false);
    if (!S)
      return S;
    Step = S.take();
  }
  if (Error E = expect(TokKind::RParen, "after for-step"))
    return Expected<StmtPtr>(std::move(E));

  Expected<StmtPtr> Body = parseStmt();
  if (!Body)
    return Body;
  return StmtPtr(std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                           std::move(Step), Body.take(),
                                           Line));
}

Expected<StmtPtr> Parser::parseWhile() {
  unsigned Line = advance().Line; // 'while'
  if (Error E = expect(TokKind::LParen, "after 'while'"))
    return Expected<StmtPtr>(std::move(E));
  Expected<ExprPtr> Cond = parseExpr();
  if (!Cond)
    return Cond.takeError();
  if (Error E = expect(TokKind::RParen, "after while condition"))
    return Expected<StmtPtr>(std::move(E));
  Expected<StmtPtr> Body = parseStmt();
  if (!Body)
    return Body;
  return StmtPtr(
      std::make_unique<WhileStmt>(Cond.take(), Body.take(), Line));
}

Expected<StmtPtr> Parser::parseReturn() {
  unsigned Line = advance().Line; // 'return'
  ExprPtr Value;
  if (!check(TokKind::Semicolon)) {
    Expected<ExprPtr> V = parseExpr();
    if (!V)
      return V.takeError();
    Value = V.take();
  }
  if (Error E = expect(TokKind::Semicolon, "after return"))
    return Expected<StmtPtr>(std::move(E));
  return StmtPtr(std::make_unique<ReturnStmt>(std::move(Value), Line));
}

Expected<StmtPtr> Parser::parseSimpleStmt(bool ConsumeSemi) {
  unsigned Line = peek().Line;
  Expected<ExprPtr> LHS = parseExpr();
  if (!LHS)
    return LHS.takeError();

  StmtPtr Result;
  if (check(TokKind::Assign) || check(TokKind::PlusAssign) ||
      check(TokKind::MinusAssign) || check(TokKind::StarAssign)) {
    TokKind K = advance().Kind;
    AssignOpKind Op = K == TokKind::Assign        ? AssignOpKind::Plain
                      : K == TokKind::PlusAssign  ? AssignOpKind::Add
                      : K == TokKind::MinusAssign ? AssignOpKind::Sub
                                                  : AssignOpKind::Mul;
    Expected<ExprPtr> RHS = parseExpr();
    if (!RHS)
      return RHS.takeError();
    Result = std::make_unique<AssignStmt>(LHS.take(), Op, RHS.take(), Line);
  } else if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
    bool IsInc = advance().Kind == TokKind::PlusPlus;
    // Desugar i++ / i-- into i += 1 / i -= 1.
    Result = std::make_unique<AssignStmt>(
        LHS.take(), IsInc ? AssignOpKind::Add : AssignOpKind::Sub,
        std::make_unique<IntLitExpr>(1, Line), Line);
  } else {
    Result = std::make_unique<ExprStmt>(LHS.take(), Line);
  }

  if (ConsumeSemi)
    if (Error E = expect(TokKind::Semicolon, "after statement"))
      return Expected<StmtPtr>(std::move(E));
  return Result;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binding power of binary operators; higher binds tighter. Mirrors C.
static int binaryPrecedence(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::BangEq:
    return 6;
  case TokKind::Less:
  case TokKind::LessEq:
  case TokKind::Greater:
  case TokKind::GreaterEq:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return -1;
  }
}

static BinaryOpKind binaryOpFor(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return BinaryOpKind::LogOr;
  case TokKind::AmpAmp:
    return BinaryOpKind::LogAnd;
  case TokKind::Pipe:
    return BinaryOpKind::BitOr;
  case TokKind::Caret:
    return BinaryOpKind::BitXor;
  case TokKind::Amp:
    return BinaryOpKind::BitAnd;
  case TokKind::EqEq:
    return BinaryOpKind::Eq;
  case TokKind::BangEq:
    return BinaryOpKind::Ne;
  case TokKind::Less:
    return BinaryOpKind::Lt;
  case TokKind::LessEq:
    return BinaryOpKind::Le;
  case TokKind::Greater:
    return BinaryOpKind::Gt;
  case TokKind::GreaterEq:
    return BinaryOpKind::Ge;
  case TokKind::Shl:
    return BinaryOpKind::Shl;
  case TokKind::Shr:
    return BinaryOpKind::Shr;
  case TokKind::Plus:
    return BinaryOpKind::Add;
  case TokKind::Minus:
    return BinaryOpKind::Sub;
  case TokKind::Star:
    return BinaryOpKind::Mul;
  case TokKind::Slash:
    return BinaryOpKind::Div;
  case TokKind::Percent:
    return BinaryOpKind::Rem;
  default:
    accel_unreachable("not a binary operator token");
  }
}

Expected<ExprPtr> Parser::parseExpr() {
  Expected<ExprPtr> LHS = parseUnary();
  if (!LHS)
    return LHS;
  return parseBinaryRHS(1, LHS.take());
}

Expected<ExprPtr> Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  for (;;) {
    int Prec = binaryPrecedence(peek().Kind);
    if (Prec < MinPrec)
      return LHS;
    unsigned Line = peek().Line;
    TokKind OpTok = advance().Kind;
    Expected<ExprPtr> RHS = parseUnary();
    if (!RHS)
      return RHS;
    ExprPtr R = RHS.take();
    // Left-associative: fold while the next operator binds tighter.
    int NextPrec = binaryPrecedence(peek().Kind);
    if (NextPrec > Prec) {
      Expected<ExprPtr> Folded = parseBinaryRHS(Prec + 1, std::move(R));
      if (!Folded)
        return Folded;
      R = Folded.take();
    }
    LHS = std::make_unique<BinaryExpr>(binaryOpFor(OpTok), std::move(LHS),
                                       std::move(R), Line);
  }
}

Expected<ExprPtr> Parser::parseUnary() {
  unsigned Line = peek().Line;
  if (match(TokKind::Minus)) {
    Expected<ExprPtr> Sub = parseUnary();
    if (!Sub)
      return Sub;
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOpKind::Neg, Sub.take(), Line));
  }
  if (match(TokKind::Bang)) {
    Expected<ExprPtr> Sub = parseUnary();
    if (!Sub)
      return Sub;
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOpKind::Not, Sub.take(), Line));
  }
  if (match(TokKind::Tilde)) {
    Expected<ExprPtr> Sub = parseUnary();
    if (!Sub)
      return Sub;
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOpKind::BitNot, Sub.take(), Line));
  }
  return parsePostfix();
}

Expected<ExprPtr> Parser::parsePostfix() {
  Expected<ExprPtr> E = parsePrimary();
  if (!E)
    return E;
  ExprPtr Result = E.take();
  while (check(TokKind::LBracket)) {
    unsigned Line = advance().Line;
    Expected<ExprPtr> Index = parseExpr();
    if (!Index)
      return Index;
    if (Error Err = expect(TokKind::RBracket, "after index"))
      return Expected<ExprPtr>(std::move(Err));
    Result = std::make_unique<IndexExpr>(std::move(Result), Index.take(),
                                         Line);
  }
  return Result;
}

Expected<ExprPtr> Parser::parsePrimary() {
  unsigned Line = peek().Line;

  if (check(TokKind::IntLiteral)) {
    int64_t V = advance().IntValue;
    return ExprPtr(std::make_unique<IntLitExpr>(V, Line));
  }
  if (check(TokKind::FloatLiteral)) {
    float V = advance().FloatValue;
    return ExprPtr(std::make_unique<FloatLitExpr>(V, Line));
  }
  if (match(TokKind::KwTrue))
    return ExprPtr(std::make_unique<BoolLitExpr>(true, Line));
  if (match(TokKind::KwFalse))
    return ExprPtr(std::make_unique<BoolLitExpr>(false, Line));

  if (check(TokKind::Identifier)) {
    std::string Name = advance().Text;
    if (!match(TokKind::LParen))
      return ExprPtr(std::make_unique<VarRefExpr>(std::move(Name), Line));
    std::vector<ExprPtr> Args;
    if (!check(TokKind::RParen)) {
      do {
        Expected<ExprPtr> A = parseExpr();
        if (!A)
          return A;
        Args.push_back(A.take());
      } while (match(TokKind::Comma));
    }
    if (Error E = expect(TokKind::RParen, "after call arguments"))
      return Expected<ExprPtr>(std::move(E));
    return ExprPtr(std::make_unique<CallExpr>(std::move(Name),
                                              std::move(Args), Line));
  }

  if (check(TokKind::LParen)) {
    // Distinguish a cast "(float)x" from a parenthesised expression.
    TokKind Next = peek(1).Kind;
    if (Next == TokKind::KwInt || Next == TokKind::KwLong ||
        Next == TokKind::KwFloat) {
      advance(); // '('
      Expected<MiniType::Base> Base = parseBaseType();
      if (!Base)
        return Base.takeError();
      if (Error E = expect(TokKind::RParen, "after cast type"))
        return Expected<ExprPtr>(std::move(E));
      Expected<ExprPtr> Sub = parseUnary();
      if (!Sub)
        return Sub;
      MiniType Target;
      Target.B = *Base;
      return ExprPtr(
          std::make_unique<CastExpr>(Target, Sub.take(), Line));
    }
    advance(); // '('
    Expected<ExprPtr> E = parseExpr();
    if (!E)
      return E;
    if (Error Err = expect(TokKind::RParen, "after expression"))
      return Expected<ExprPtr>(std::move(Err));
    return E;
  }

  return Expected<ExprPtr>(
      errorHere(std::string("expected an expression, found ") +
                tokKindName(peek().Kind)));
}
