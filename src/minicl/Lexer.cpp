//===- minicl/Lexer.cpp - MiniCL lexical analysis --------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "minicl/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace accel;
using namespace accel::minicl;

const char *minicl::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FloatLiteral:
    return "float literal";
  case TokKind::KwKernel:
    return "'kernel'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwLong:
    return "'long'";
  case TokKind::KwFloat:
    return "'float'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwGlobal:
    return "'global'";
  case TokKind::KwLocal:
    return "'local'";
  case TokKind::KwConst:
    return "'const'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semicolon:
    return "';'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::BangEq:
    return "'!='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  }
  accel_unreachable("bad token kind");
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokKind Kind, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Line = Line;
  T.Column = Column;
  return T;
}

Token Lexer::lexIdentifier() {
  static const std::map<std::string, TokKind> Keywords = {
      {"kernel", TokKind::KwKernel},     {"void", TokKind::KwVoid},
      {"int", TokKind::KwInt},           {"long", TokKind::KwLong},
      {"float", TokKind::KwFloat},       {"bool", TokKind::KwBool},
      {"global", TokKind::KwGlobal},     {"local", TokKind::KwLocal},
      {"const", TokKind::KwConst},       {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},         {"for", TokKind::KwFor},
      {"while", TokKind::KwWhile},       {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},       {"continue", TokKind::KwContinue},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse}};

  Token T = makeToken(TokKind::Identifier);
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text.push_back(advance());
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    T.Kind = It->second;
  T.Text = std::move(Text);
  return T;
}

Expected<Token> Lexer::lexNumber() {
  Token T = makeToken(TokKind::IntLiteral);
  std::string Text;
  bool IsFloat = false;
  bool IsHex = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    Text.push_back(advance());
    Text.push_back(advance());
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    if (peek() == '.') {
      IsFloat = true;
      Text.push_back(advance());
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      IsFloat = true;
      Text.push_back(advance());
      if (peek() == '+' || peek() == '-')
        Text.push_back(advance());
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text.push_back(advance());
    }
  }
  // Trailing float suffix.
  if (peek() == 'f' || peek() == 'F') {
    IsFloat = true;
    advance();
  }

  T.Text = Text;
  if (IsFloat) {
    T.Kind = TokKind::FloatLiteral;
    T.FloatValue = std::strtof(Text.c_str(), nullptr);
  } else {
    T.IntValue =
        static_cast<int64_t>(std::strtoll(Text.c_str(), nullptr, IsHex
                                                                      ? 16
                                                                      : 10));
  }
  return T;
}

Expected<std::vector<Token>> Lexer::tokenize() {
  std::vector<Token> Tokens;
  for (;;) {
    skipWhitespaceAndComments();
    if (atEnd()) {
      Tokens.push_back(makeToken(TokKind::Eof));
      return Tokens;
    }
    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Tokens.push_back(lexIdentifier());
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Expected<Token> T = lexNumber();
      if (!T)
        return T.takeError();
      Tokens.push_back(T.take());
      continue;
    }

    unsigned TokLine = Line, TokColumn = Column;
    advance();
    auto Two = [&](char Next, TokKind Double, TokKind Single) {
      if (peek() == Next) {
        advance();
        return Double;
      }
      return Single;
    };

    TokKind Kind;
    switch (C) {
    case '(':
      Kind = TokKind::LParen;
      break;
    case ')':
      Kind = TokKind::RParen;
      break;
    case '{':
      Kind = TokKind::LBrace;
      break;
    case '}':
      Kind = TokKind::RBrace;
      break;
    case '[':
      Kind = TokKind::LBracket;
      break;
    case ']':
      Kind = TokKind::RBracket;
      break;
    case ',':
      Kind = TokKind::Comma;
      break;
    case ';':
      Kind = TokKind::Semicolon;
      break;
    case '~':
      Kind = TokKind::Tilde;
      break;
    case '^':
      Kind = TokKind::Caret;
      break;
    case '%':
      Kind = TokKind::Percent;
      break;
    case '/':
      Kind = TokKind::Slash;
      break;
    case '*':
      Kind = Two('=', TokKind::StarAssign, TokKind::Star);
      break;
    case '+':
      Kind = peek() == '+' ? (advance(), TokKind::PlusPlus)
                           : Two('=', TokKind::PlusAssign, TokKind::Plus);
      break;
    case '-':
      Kind = peek() == '-' ? (advance(), TokKind::MinusMinus)
                           : Two('=', TokKind::MinusAssign, TokKind::Minus);
      break;
    case '&':
      Kind = Two('&', TokKind::AmpAmp, TokKind::Amp);
      break;
    case '|':
      Kind = Two('|', TokKind::PipePipe, TokKind::Pipe);
      break;
    case '!':
      Kind = Two('=', TokKind::BangEq, TokKind::Bang);
      break;
    case '=':
      Kind = Two('=', TokKind::EqEq, TokKind::Assign);
      break;
    case '<':
      if (peek() == '<') {
        advance();
        Kind = TokKind::Shl;
      } else {
        Kind = Two('=', TokKind::LessEq, TokKind::Less);
      }
      break;
    case '>':
      if (peek() == '>') {
        advance();
        Kind = TokKind::Shr;
      } else {
        Kind = Two('=', TokKind::GreaterEq, TokKind::Greater);
      }
      break;
    default:
      return makeError("lex error at line " + std::to_string(TokLine) +
                       ", column " + std::to_string(TokColumn) +
                       ": unexpected character '" + std::string(1, C) + "'");
    }
    Token T;
    T.Kind = Kind;
    T.Line = TokLine;
    T.Column = TokColumn;
    Tokens.push_back(T);
  }
}
