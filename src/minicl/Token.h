//===- minicl/Token.h - MiniCL token definitions ----------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MiniCL, the OpenCL-C-like kernel language the
/// reproduction's applications are written in. The paper's JIT consumes
/// OpenCL C or SPIR (Fig. 7); MiniCL plays the role of OpenCL C here.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_TOKEN_H
#define ACCEL_MINICL_TOKEN_H

#include <cstdint>
#include <string>

namespace accel {
namespace minicl {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwKernel,
  KwVoid,
  KwInt,
  KwLong,
  KwFloat,
  KwBool,
  KwGlobal,
  KwLocal,
  KwConst,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Star,
  Plus,
  Minus,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  PlusPlus,
  MinusMinus,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  EqEq,
  BangEq,
  AmpAmp,
  PipePipe,
  Shl,
  Shr
};

/// \returns a printable description of \p Kind for diagnostics.
const char *tokKindName(TokKind Kind);

/// One lexed token with its source location.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;    ///< Identifier spelling or literal text.
  int64_t IntValue = 0;
  float FloatValue = 0.0f;
  unsigned Line = 0;
  unsigned Column = 0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_TOKEN_H
