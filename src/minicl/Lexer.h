//===- minicl/Lexer.h - MiniCL lexical analysis -----------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts MiniCL source text into a token stream. Supports //- and
/// /* */-style comments and C-style integer/float literals.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_LEXER_H
#define ACCEL_MINICL_LEXER_H

#include "minicl/Token.h"
#include "support/Error.h"

#include <string_view>
#include <vector>

namespace accel {
namespace minicl {

/// Lexes an entire source buffer.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Tokenizes the whole input (the final token is Eof).
  /// \returns the token vector or a diagnostic for an invalid character
  /// or malformed literal.
  Expected<std::vector<Token>> tokenize();

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipWhitespaceAndComments();

  Expected<Token> lexNumber();
  Token lexIdentifier();
  Token makeToken(TokKind Kind, std::string Text = "");

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_LEXER_H
