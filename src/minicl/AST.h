//===- minicl/AST.h - MiniCL abstract syntax tree ---------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MiniCL. Nodes are Kind-discriminated for
/// isa/dyn_cast, owned by their parents via unique_ptr, and carry source
/// lines for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_MINICL_AST_H
#define ACCEL_MINICL_AST_H

#include "kir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace accel {
namespace minicl {

/// A MiniCL source-level type: an arithmetic scalar, bool, void, or a
/// pointer to a scalar in an OpenCL address space.
struct MiniType {
  enum class Base : uint8_t { Void, Bool, Int, Long, Float, Ptr };

  Base B = Base::Void;
  Base Elem = Base::Void; ///< Pointee for Ptr.
  kir::AddrSpaceKind AS = kir::AddrSpaceKind::Private;
  bool IsConst = false;

  static MiniType voidTy() { return {}; }
  static MiniType boolTy() { return {Base::Bool, Base::Void,
                                     kir::AddrSpaceKind::Private, false}; }
  static MiniType intTy() { return {Base::Int, Base::Void,
                                    kir::AddrSpaceKind::Private, false}; }
  static MiniType longTy() { return {Base::Long, Base::Void,
                                     kir::AddrSpaceKind::Private, false}; }
  static MiniType floatTy() { return {Base::Float, Base::Void,
                                      kir::AddrSpaceKind::Private, false}; }
  static MiniType ptr(Base Elem, kir::AddrSpaceKind AS, bool IsConst) {
    return {Base::Ptr, Elem, AS, IsConst};
  }

  bool isVoid() const { return B == Base::Void; }
  bool isBool() const { return B == Base::Bool; }
  bool isInteger() const { return B == Base::Int || B == Base::Long; }
  bool isArith() const { return isInteger() || B == Base::Float; }
  bool isPtr() const { return B == Base::Ptr; }

  bool sameShape(const MiniType &O) const {
    return B == O.B && (B != Base::Ptr || (Elem == O.Elem && AS == O.AS));
  }

  /// \returns the KIR type corresponding to this source type.
  kir::Type toKir() const {
    switch (B) {
    case Base::Void:
      return kir::Type::voidTy();
    case Base::Bool:
      return kir::Type::i1();
    case Base::Int:
      return kir::Type::i32();
    case Base::Long:
      return kir::Type::i64();
    case Base::Float:
      return kir::Type::f32();
    case Base::Ptr:
      return kir::Type::ptr(scalarKirKind(Elem), AS);
    }
    accel_unreachable("bad MiniType base");
  }

  /// Maps a scalar Base onto the KIR scalar kind.
  static kir::Type::Kind scalarKirKind(Base B) {
    switch (B) {
    case Base::Int:
      return kir::Type::Kind::I32;
    case Base::Long:
      return kir::Type::Kind::I64;
    case Base::Float:
      return kir::Type::Kind::F32;
    case Base::Void:
    case Base::Bool:
    case Base::Ptr:
      break;
    }
    accel_unreachable("non-scalar MiniType base");
  }

  std::string str() const {
    switch (B) {
    case Base::Void:
      return "void";
    case Base::Bool:
      return "bool";
    case Base::Int:
      return "int";
    case Base::Long:
      return "long";
    case Base::Float:
      return "float";
    case Base::Ptr:
      return std::string(kir::addrSpaceName(AS)) + " " +
             MiniType{Elem, Base::Void, kir::AddrSpaceKind::Private, false}
                 .str() +
             "*";
    }
    accel_unreachable("bad MiniType base");
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  BoolLit,
  VarRef,
  Unary,
  Binary,
  Cast,
  Index,
  Call
};

class Expr {
public:
  virtual ~Expr() = default;

  ExprKind exprKind() const { return EK; }
  unsigned line() const { return Line; }

protected:
  Expr(ExprKind EK, unsigned Line) : EK(EK), Line(Line) {}

private:
  ExprKind EK;
  unsigned Line;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, unsigned Line)
      : Expr(ExprKind::IntLit, Line), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::IntLit;
  }

private:
  int64_t Value;
};

class FloatLitExpr : public Expr {
public:
  FloatLitExpr(float Value, unsigned Line)
      : Expr(ExprKind::FloatLit, Line), Value(Value) {}

  float value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::FloatLit;
  }

private:
  float Value;
};

class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, unsigned Line)
      : Expr(ExprKind::BoolLit, Line), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::BoolLit;
  }

private:
  bool Value;
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, unsigned Line)
      : Expr(ExprKind::VarRef, Line), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::VarRef;
  }

private:
  std::string Name;
};

enum class UnaryOpKind : uint8_t { Neg, Not, BitNot };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, ExprPtr Sub, unsigned Line)
      : Expr(ExprKind::Unary, Line), Op(Op), Sub(std::move(Sub)) {}

  UnaryOpKind op() const { return Op; }
  Expr *sub() const { return Sub.get(); }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::Unary;
  }

private:
  UnaryOpKind Op;
  ExprPtr Sub;
};

enum class BinaryOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  LogAnd,
  LogOr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS, unsigned Line)
      : Expr(ExprKind::Binary, Line), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOpKind op() const { return Op; }
  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::Binary;
  }

private:
  BinaryOpKind Op;
  ExprPtr LHS, RHS;
};

class CastExpr : public Expr {
public:
  CastExpr(MiniType Target, ExprPtr Sub, unsigned Line)
      : Expr(ExprKind::Cast, Line), Target(Target), Sub(std::move(Sub)) {}

  const MiniType &target() const { return Target; }
  Expr *sub() const { return Sub.get(); }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::Cast;
  }

private:
  MiniType Target;
  ExprPtr Sub;
};

class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index, unsigned Line)
      : Expr(ExprKind::Index, Line), Base(std::move(Base)),
        Index(std::move(Index)) {}

  Expr *base() const { return Base.get(); }
  Expr *index() const { return Index.get(); }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::Index;
  }

private:
  ExprPtr Base, Index;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, unsigned Line)
      : Expr(ExprKind::Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Expr *E) {
    return E->exprKind() == ExprKind::Call;
  }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  Decl,
  Assign,
  ExprStmt,
  If,
  For,
  While,
  Return,
  Break,
  Continue
};

class Stmt {
public:
  virtual ~Stmt() = default;

  StmtKind stmtKind() const { return SK; }
  unsigned line() const { return Line; }

protected:
  Stmt(StmtKind SK, unsigned Line) : SK(SK), Line(Line) {}

private:
  StmtKind SK;
  unsigned Line;
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, unsigned Line)
      : Stmt(StmtKind::Block, Line), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &statements() const { return Stmts; }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::Block;
  }

private:
  std::vector<StmtPtr> Stmts;
};

/// A variable declaration: scalar, private array, or local array.
class DeclStmt : public Stmt {
public:
  DeclStmt(MiniType Ty, bool IsLocal, std::string Name, uint64_t ArraySize,
           ExprPtr Init, unsigned Line)
      : Stmt(StmtKind::Decl, Line), Ty(Ty), IsLocal(IsLocal),
        Name(std::move(Name)), ArraySize(ArraySize), Init(std::move(Init)) {}

  const MiniType &declType() const { return Ty; }
  bool isLocal() const { return IsLocal; }
  const std::string &name() const { return Name; }
  /// 0 means "scalar", otherwise the array element count.
  uint64_t arraySize() const { return ArraySize; }
  Expr *init() const { return Init.get(); }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::Decl;
  }

private:
  MiniType Ty;
  bool IsLocal;
  std::string Name;
  uint64_t ArraySize;
  ExprPtr Init;
};

enum class AssignOpKind : uint8_t { Plain, Add, Sub, Mul };

class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Target, AssignOpKind Op, ExprPtr Value, unsigned Line)
      : Stmt(StmtKind::Assign, Line), Target(std::move(Target)), Op(Op),
        Value(std::move(Value)) {}

  Expr *target() const { return Target.get(); }
  AssignOpKind op() const { return Op; }
  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::Assign;
  }

private:
  ExprPtr Target;
  AssignOpKind Op;
  ExprPtr Value;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, unsigned Line)
      : Stmt(StmtKind::ExprStmt, Line), E(std::move(E)) {}

  Expr *expr() const { return E.get(); }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::ExprStmt;
  }

private:
  ExprPtr E;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, unsigned Line)
      : Stmt(StmtKind::If, Line), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); }

  static bool classof(const Stmt *S) { return S->stmtKind() == StmtKind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body,
          unsigned Line)
      : Stmt(StmtKind::For, Line), Init(std::move(Init)),
        Cond(std::move(Cond)), Step(std::move(Step)), Body(std::move(Body)) {}

  Stmt *init() const { return Init.get(); }
  Expr *cond() const { return Cond.get(); }
  Stmt *step() const { return Step.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::For;
  }

private:
  StmtPtr Init;
  ExprPtr Cond;
  StmtPtr Step, Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, unsigned Line)
      : Stmt(StmtKind::While, Line), Cond(std::move(Cond)),
        Body(std::move(Body)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::While;
  }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, unsigned Line)
      : Stmt(StmtKind::Return, Line), Value(std::move(Value)) {}

  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::Return;
  }

private:
  ExprPtr Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(unsigned Line) : Stmt(StmtKind::Break, Line) {}

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::Break;
  }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(unsigned Line) : Stmt(StmtKind::Continue, Line) {}

  static bool classof(const Stmt *S) {
    return S->stmtKind() == StmtKind::Continue;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  MiniType Ty;
  std::string Name;
  unsigned Line = 0;
};

/// A function definition (kernel or helper).
struct FunctionDecl {
  std::string Name;
  MiniType RetTy;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;
  bool IsKernel = false;
  unsigned Line = 0;
};

/// A parsed MiniCL translation unit.
struct ProgramAST {
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

} // namespace minicl
} // namespace accel

#endif // ACCEL_MINICL_AST_H
