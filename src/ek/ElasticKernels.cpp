//===- ek/ElasticKernels.cpp - Elastic Kernels baseline ---------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "ek/ElasticKernels.h"

#include <algorithm>
#include <cassert>

using namespace accel;
using namespace accel::ek;

std::vector<sim::KernelLaunchDesc>
ek::planMergedLaunch(const sim::DeviceSpec &Spec,
                     const std::vector<EKKernelDesc> &Kernels) {
  assert(!Kernels.empty() && "EK merge of an empty batch");

  // Elastic Kernels was designed around co-executing *pairs* of
  // kernels: requests are merged two at a time in arrival order and the
  // merged pairs run one after another. This is why the paper finds EK
  // "fails to manage large numbers of requests" (Sec. 8.3.1) — a
  // request in the third pair waits for two whole batches.
  std::vector<sim::KernelLaunchDesc> Launches;
  for (size_t I = 0; I != Kernels.size(); ++I) {
    const EKKernelDesc &D = Kernels[I];
    assert(D.WGThreads > 0 && "zero-thread work group");
    size_t BatchPeers = std::min<size_t>(2, Kernels.size() - (I & ~1ull));

    // EK's static heuristic: the kernel's full-device residency by the
    // thread limit alone, split across the merged pair. Local memory
    // and registers are not considered — occupancy is clipped by the
    // hardware at dispatch time instead (a fairness loss accelOS's
    // three-resource solver avoids).
    uint64_t FullResidency =
        std::max<uint64_t>(1, Spec.totalThreads() / D.WGThreads);
    uint64_t Slice = std::max<uint64_t>(1, FullResidency / BatchPeers);
    uint64_t Orig = D.WGCosts.size();
    uint64_t Phys = std::min<uint64_t>(Slice, Orig);

    // Each elastic work group serially executes a statically assigned
    // contiguous chunk of the original grid.
    sim::KernelLaunchDesc L;
    L.Name = D.Name;
    L.AppId = D.AppId;
    L.WGThreads = D.WGThreads;
    L.LocalMemPerWG = D.LocalMemPerWG;
    L.RegsPerThread = D.RegsPerThread;
    L.IssueEfficiency = D.IssueEfficiency;
    L.Mode = sim::KernelLaunchDesc::ModeKind::Static;
    L.MergeGroup = static_cast<int>(I / 2);
    L.StaticCosts.assign(Phys, 0.0);
    for (uint64_t J = 0; J != Orig; ++J)
      L.StaticCosts[J * Phys / Orig] += D.WGCosts[J];
    Launches.push_back(std::move(L));
  }
  return Launches;
}
