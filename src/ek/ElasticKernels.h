//===- ek/ElasticKernels.h - Elastic Kernels baseline -----------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of the Elastic Kernels comparison point (Pai et al.,
/// ASPLOS'13; paper Sec. 7.3). EK statically merges the batch of
/// concurrent kernels: each kernel's grid is elastically resized to a
/// fixed slice of the device decided once at merge time from *thread
/// occupancy only*, and every resized work group serially executes a
/// statically pre-assigned contiguous chunk of the original work groups.
///
/// The contrasts with accelOS that the paper measures fall out of this
/// construction: the slice ignores local-memory/register demands and
/// workload durations (unfairness); the chunk assignment is static (no
/// load balancing); and the allocation cannot adapt when kernels finish
/// (throughput loss at higher request counts).
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_EK_ELASTICKERNELS_H
#define ACCEL_EK_ELASTICKERNELS_H

#include "sim/Engine.h"

#include <string>
#include <vector>

namespace accel {
namespace ek {

/// Inputs describing one kernel of the merged batch.
struct EKKernelDesc {
  std::string Name;
  int AppId = 0;
  uint64_t WGThreads = 0;
  uint64_t LocalMemPerWG = 0;
  uint64_t RegsPerThread = 0;
  double IssueEfficiency = 1.0;
  /// Per-original-work-group costs in thread-cycles.
  std::vector<double> WGCosts;
};

/// Plans the merged launch: \returns one Static-mode launch descriptor
/// per kernel, sharing a merge group so they co-dispatch.
std::vector<sim::KernelLaunchDesc>
planMergedLaunch(const sim::DeviceSpec &Spec,
                 const std::vector<EKKernelDesc> &Kernels);

} // namespace ek
} // namespace accel

#endif // ACCEL_EK_ELASTICKERNELS_H
