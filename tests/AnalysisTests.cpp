//===- tests/AnalysisTests.cpp - KIR dataflow-analysis tests ----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-analysis framework end to end: CFG structure (loops,
/// reverse postorder), uniformity / barrier divergence, interval
/// arithmetic, the exact diagnostics of the three committed negative
/// lint fixtures, the strict Verifier mode, the calibration contract of
/// the static cost prior (within 3x of the measured solo duration for
/// every suite kernel), and the cold-start placement payoff (the prior
/// beats prior-less placement on first-contact p95 queueing).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cluster/ClusterHarness.h"
#include "cluster/Fleet.h"
#include "harness/Experiment.h"
#include "kir/Module.h"
#include "kir/Verifier.h"
#include "kir/analysis/Cfg.h"
#include "kir/analysis/CostPrior.h"
#include "kir/analysis/Intervals.h"
#include "kir/analysis/Lint.h"
#include "kir/analysis/Uniformity.h"
#include "minicl/Frontend.h"
#include "workloads/KernelSpec.h"
#include "workloads/StaticPrior.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace accel;
using namespace accel::kir::analysis;
using accel::testutil::compileOrDie;

namespace {

//===----------------------------------------------------------------------===//
// CFG structure
//===----------------------------------------------------------------------===//

const kir::BasicBlock *blockNamed(const Cfg &G, const std::string &Name) {
  for (unsigned B = 0; B != G.numBlocks(); ++B)
    if (G.block(B)->name() == Name)
      return G.block(B);
  return nullptr;
}

TEST(CfgTest, LoopsAndRpo) {
  auto M = compileOrDie(R"(
    kernel void k(global float* a, int n) {
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          a[i * n + j] = 0.0;
        }
      }
    }
  )");
  ASSERT_NE(M, nullptr);
  Cfg G(*M->getFunction("k"));

  // RPO starts at the entry block and covers every reachable block.
  ASSERT_FALSE(G.reversePostOrder().empty());
  EXPECT_EQ(G.reversePostOrder().front(), 0u);
  for (unsigned B : G.reversePostOrder())
    EXPECT_TRUE(G.isReachable(B));

  // Two natural loops, properly nested: the inner header sits at
  // depth 2 and points at the outer loop as its parent.
  ASSERT_EQ(G.loops().size(), 2u);
  const CfgLoop *Outer = nullptr, *Inner = nullptr;
  for (const CfgLoop &L : G.loops())
    (L.Depth == 1 ? Outer : Inner) = &L;
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_EQ(Inner->Parent, static_cast<int>(Outer - &G.loops()[0]));
  EXPECT_TRUE(Outer->contains(Inner->Header));
  EXPECT_EQ(G.loopDepth(Inner->Header), 2u);
  EXPECT_EQ(G.loopDepth(Outer->Header), 1u);
  EXPECT_FALSE(Outer->Latches.empty());
}

//===----------------------------------------------------------------------===//
// Uniformity
//===----------------------------------------------------------------------===//

TEST(UniformityTest, WorkItemBranchDivergesItsRegion) {
  auto M = compileOrDie(R"(
    kernel void k(global float* d, int n) {
      long gid = get_global_id(0);
      if (gid < (long)n) {
        d[gid] = 1.0;
      }
      d[0] = 2.0;
    }
  )");
  ASSERT_NE(M, nullptr);
  Cfg G(*M->getFunction("k"));
  UniformityAnalysis UA(G);

  // The guarded store runs only on some work items; the entry and the
  // code after reconvergence run on all of them.
  const kir::BasicBlock *Then = blockNamed(G, "if.then0");
  ASSERT_NE(Then, nullptr);
  EXPECT_TRUE(UA.isDivergentBlock(G.id(Then)));
  EXPECT_FALSE(UA.isDivergentBlock(0));
  EXPECT_TRUE(UA.divergentBarriers().empty());
}

TEST(UniformityTest, UniformLoopWithInnerDivergenceKeepsBarriersLegal) {
  // The classic reduction shape: the barrier sits in the uniform loop
  // body, NOT inside the work-item-divergent if — every work item
  // reaches it, so the divergent-barrier lint must stay quiet.
  auto M = compileOrDie(R"(
    kernel void reduce(global float* d) {
      local float tile[16];
      long lid = get_local_id(0);
      tile[lid] = d[lid];
      barrier();
      int stride = 8;
      while (stride > 0) {
        if (lid < stride) {
          tile[lid] += tile[lid + stride];
        }
        barrier();
        stride = stride / 2;
      }
      if (lid == 0) {
        d[0] = tile[0];
      }
    }
  )");
  ASSERT_NE(M, nullptr);
  Cfg G(*M->getFunction("reduce"));
  UniformityAnalysis UA(G);
  EXPECT_TRUE(UA.divergentBarriers().empty());
}

TEST(UniformityTest, BarrierUnderDivergentBranchIsCaught) {
  auto M = compileOrDie(R"(
    kernel void k(global float* d, int n) {
      if (get_global_id(0) < (long)n) {
        barrier();
        d[0] = 1.0;
      }
    }
  )");
  ASSERT_NE(M, nullptr);
  Cfg G(*M->getFunction("k"));
  UniformityAnalysis UA(G);
  ASSERT_EQ(UA.divergentBarriers().size(), 1u);
  EXPECT_NE(UA.divergentBarriers()[0].Barrier, nullptr);
  EXPECT_NE(UA.divergentBarriers()[0].Branch, nullptr);
}

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

TEST(IntervalTest, ArithmeticAndSaturation) {
  Interval A = Interval::range(1, 5);
  EXPECT_EQ(A.add(Interval::constant(2)), Interval::range(3, 7));
  EXPECT_EQ(A.sub(Interval::range(0, 1)), Interval::range(0, 5));
  EXPECT_EQ(A.mul(Interval::constant(3)), Interval::range(3, 15));

  // The INT64 extremes behave as infinities: arithmetic saturates
  // instead of wrapping.
  Interval Top = Interval::full();
  EXPECT_TRUE(Top.add(Interval::constant(1)).isFull());
  Interval Hi = Interval::range(0, Interval::PosInf);
  EXPECT_EQ(Hi.add(Interval::constant(5)).Lo, 5);
  EXPECT_FALSE(Hi.add(Interval::constant(5)).hasUpperBound());

  EXPECT_EQ(A.hull(Interval::range(10, 12)), Interval::range(1, 12));
  EXPECT_TRUE(A.mayIntersect(5, 9));
  EXPECT_FALSE(A.mayIntersect(6, 9));
  EXPECT_TRUE(Interval::constant(4).isConstant());
}

//===----------------------------------------------------------------------===//
// The committed negative fixtures produce their exact diagnostics
//===----------------------------------------------------------------------===//

std::string readFixture(const std::string &Name) {
  std::string Path =
      std::string(ACCEL_SOURCE_DIR) + "/tests/lint/" + Name + ".cl";
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<Diagnostic> lintFixture(const std::string &Name) {
  Expected<minicl::CompiledWithLints> R =
      minicl::compileSourceWithLints(Name, readFixture(Name));
  EXPECT_TRUE(static_cast<bool>(R)) << R.message();
  if (!R)
    return {};
  return R->Lints;
}

TEST(LintFixtureTest, DivergentBarrier) {
  std::vector<Diagnostic> Diags = lintFixture("divergent_barrier");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].DiagKind, Diagnostic::Kind::DivergentBarrier);
  EXPECT_EQ(Diags[0].str(),
            "divergent_barrier:8: [divergence] barrier under "
            "work-item-divergent control flow (divergent branch at "
            "line 7) (block 'if.then0')");
}

TEST(LintFixtureTest, RtWindowWrite) {
  std::vector<Diagnostic> Diags = lintFixture("rt_window_write");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].DiagKind, Diagnostic::Kind::RtWindowWrite);
  EXPECT_EQ(Diags[0].str(),
            "rt_window_write:7: [rt-window] store may clobber reserved "
            "runtime window 'rt' (word offset [2, 2] overlaps [0, 13]) "
            "(block 'start')");
}

TEST(LintFixtureTest, UnboundedCost) {
  std::vector<Diagnostic> Diags = lintFixture("unbounded_cost");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].DiagKind, Diagnostic::Kind::CostFallback);
  EXPECT_EQ(Diags[0].str(),
            "unbounded_cost:9: [cost] cannot derive a trip count "
            "(unrecognised update of the loop variable 'i.addr'); "
            "assuming 16 iterations (block 'while.cond0')");
}

TEST(LintFixtureTest, SuiteKernelsAreClean) {
  for (const workloads::KernelSpec &WS : workloads::parboilSuite()) {
    Expected<minicl::CompiledWithLints> R =
        minicl::compileSourceWithLints(WS.Id, WS.Source);
    ASSERT_TRUE(static_cast<bool>(R)) << WS.Id << ": " << R.message();
    EXPECT_TRUE(R->Lints.empty())
        << WS.Id << ": " << R->Lints.front().str();
  }
}

//===----------------------------------------------------------------------===//
// Strict Verifier mode
//===----------------------------------------------------------------------===//

TEST(VerifierStrictTest, RejectsDivergentBarriersOnlyWhenAsked) {
  auto M = compileOrDie(readFixture("divergent_barrier"));
  ASSERT_NE(M, nullptr);

  // Structurally the module is fine; the default verifier accepts it.
  EXPECT_FALSE(static_cast<bool>(kir::verifyModule(*M)));

  kir::VerifierOptions Opts;
  Opts.RejectDivergentBarriers = true;
  Error E = kir::verifyModule(*M, Opts);
  ASSERT_TRUE(static_cast<bool>(E));
  std::string Msg = E.message();
  EXPECT_NE(Msg.find("divergent_barrier"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("barrier"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("work-item-divergent"), std::string::npos) << Msg;
}

//===----------------------------------------------------------------------===//
// Cost prior calibration and the cold-start placement payoff
//===----------------------------------------------------------------------===//

class ColdStartTest : public ::testing::Test {
protected:
  /// A deliberately lopsided fleet: a full K20m next to a cut-down
  /// 6-CU variant. Shared across tests (each driver compiles the whole
  /// suite, so construction is the expensive part).
  static cluster::Fleet &fleet() {
    static cluster::Fleet F = [] {
      cluster::Fleet Built;
      Built.addDevice(sim::DeviceSpec::nvidiaK20m());
      sim::DeviceSpec Slow = sim::DeviceSpec::nvidiaK20m();
      Slow.Name = "K20m-cut";
      Slow.NumCUs = 6;
      Built.addDevice(Slow);
      return Built;
    }();
    return F;
  }

  static size_t kernelIdx(const char *Id) {
    harness::ExperimentDriver &D = fleet().driver(0);
    for (size_t I = 0; I != D.numKernels(); ++I)
      if (D.kernel(I).Spec->Id == Id)
        return I;
    ADD_FAILURE() << "no suite kernel named " << Id;
    return 0;
  }

  static double p95(std::vector<double> V) {
    std::sort(V.begin(), V.end());
    size_t I = (V.size() * 95) / 100;
    return V[I >= V.size() ? V.size() - 1 : I];
  }
};

TEST_F(ColdStartTest, PriorSoloDurationWithin3xForEverySuiteKernel) {
  // The calibration contract of the whole cost model: on the K20m
  // model, the analysis-seeded solo duration lands within 3x of the
  // measured (simulated) solo duration for every suite kernel — before
  // that kernel has ever run.
  harness::ExperimentDriver &D = fleet().driver(0);
  for (size_t I = 0; I != D.numKernels(); ++I) {
    double Prior = D.priorSoloDuration(I);
    double Measured =
        D.isolatedDuration(harness::SchedulerKind::Baseline, I);
    ASSERT_GT(Measured, 0.0);
    double Ratio = Prior / Measured;
    EXPECT_GE(Ratio, 1.0 / 3.0) << D.kernel(I).Spec->Id;
    EXPECT_LE(Ratio, 3.0) << D.kernel(I).Spec->Id;
  }
}

TEST_F(ColdStartTest, StaticPriorIsMemoizedAndShaped) {
  const workloads::KernelSpec *Spec =
      fleet().driver(0).kernel(kernelIdx("sgemm")).Spec;
  const workloads::StaticPrior &A = workloads::staticCostPrior(*Spec);
  const workloads::StaticPrior &B = workloads::staticCostPrior(*Spec);
  EXPECT_EQ(&A, &B); // Memoized per spec.
  EXPECT_GT(A.PerItemCycles, 0.0);
  EXPECT_EQ(A.MeanWGCycles,
            A.PerItemCycles * static_cast<double>(Spec->WGSize));
  EXPECT_FALSE(A.UsedFallback); // Suite kernels have derivable trips.

  workloads::CostProfile P = workloads::staticPriorProfile(*Spec);
  EXPECT_EQ(P.MeanWGCycles, A.MeanWGCycles);
  EXPECT_EQ(P.Shape, workloads::CostShapeKind::Uniform);
}

TEST_F(ColdStartTest, PriorBeatsBlindPlacementOnFirstContactQueueing) {
  // Cold start: every request is the fleet's first contact with its
  // kernel. Four medium kernels back up the fast device, then a stream
  // of small kernels arrives. A prior-less (Blind) placement assumes
  // every kernel costs the device mean, which makes the idle slow
  // device look terrible for the small kernels — they pile onto the
  // busy fast device and queue. The static prior knows they are cheap
  // anywhere, so they overflow to the idle device and start clean.
  const char *Mediums[] = {"stencil", "histo_main",
                           "mri_gridding_binning",
                           "mri_gridding_splitSort"};
  const char *Smalls[] = {
      "mri_gridding_uniformAdd",     "mri_q_ComputePhiMag",
      "histo_final",                 "mri_gridding_scan_inter2",
      "mri_gridding_scan_inter1",    "mri_gridding_scan_L1",
      "histo_intermediates",         "histo_prescan",
      "sad_larger_sad_calc_16",      "sad_larger_sad_calc_8",
      "mri_gridding_splitRearrange", "mri_gridding_reorder"};

  double MeanFast = fleet().meanSoloDuration(0);
  std::vector<workloads::TimedRequest> Trace;
  int Tenant = 0;
  double Now = 0;
  for (const char *Id : Mediums) {
    workloads::TimedRequest R;
    R.Tenant = Tenant++ % 4;
    R.KernelIdx = kernelIdx(Id);
    R.ArrivalTime = Now;
    Now += 0.01 * MeanFast;
    Trace.push_back(R);
  }
  for (const char *Id : Smalls) {
    workloads::TimedRequest R;
    R.Tenant = Tenant++ % 4;
    R.KernelIdx = kernelIdx(Id);
    R.ArrivalTime = Now;
    Now += 0.05 * MeanFast;
    Trace.push_back(R);
  }

  harness::ClusterOptions Opts;
  Opts.Stream.RoundQuantum = 0.25 * fleet().meanSoloDurationAcrossFleet();

  auto p95QueueingFor = [&](harness::SoloEstimateKind Kind,
                            std::vector<size_t> &Placement) {
    Opts.SoloEstimate = Kind;
    auto P = cluster::makePlacementPolicy(
        cluster::PlacementKind::HeterogeneityAware);
    harness::ClusterOutcome O =
        harness::runCluster(fleet(), *P, Trace, Opts);
    Placement = O.Placement;
    std::vector<double> Q;
    for (const harness::StreamRequestResult &R : O.Stream.Requests)
      Q.push_back(R.queueingExcess());
    return p95(Q);
  };

  std::vector<size_t> BlindPlaced, PriorPlaced;
  double Blind =
      p95QueueingFor(harness::SoloEstimateKind::Blind, BlindPlaced);
  double Prior =
      p95QueueingFor(harness::SoloEstimateKind::StaticPrior, PriorPlaced);

  // The prior must actually change decisions, and must win the
  // first-contact p95 with real margin (observed ~35% better).
  EXPECT_NE(BlindPlaced, PriorPlaced);
  EXPECT_LT(Prior, 0.9 * Blind)
      << "prior p95 " << Prior << " vs blind p95 " << Blind;
}

TEST_F(ColdStartTest, ObservationsBlendTheEstimateTowardMeasurement) {
  // Replaying the SAME kernel repeatedly in StaticPrior mode must not
  // behave like the raw prior forever: completions feed service-span
  // observations back into the estimate. Indirect check: the replay
  // completes and places deterministically with blending enabled.
  std::vector<workloads::TimedRequest> Trace;
  double MeanFast = fleet().meanSoloDuration(0);
  for (int I = 0; I != 6; ++I) {
    workloads::TimedRequest R;
    R.Tenant = I % 2;
    R.KernelIdx = kernelIdx("mri_gridding_uniformAdd");
    R.ArrivalTime = 0.2 * MeanFast * I;
    Trace.push_back(R);
  }
  harness::ClusterOptions Opts;
  Opts.Stream.RoundQuantum = 0.25 * fleet().meanSoloDurationAcrossFleet();
  Opts.SoloEstimate = harness::SoloEstimateKind::StaticPrior;

  auto P = cluster::makePlacementPolicy(
      cluster::PlacementKind::HeterogeneityAware);
  harness::ClusterOutcome A =
      harness::runCluster(fleet(), *P, Trace, Opts);
  ASSERT_EQ(A.Stream.Requests.size(), Trace.size());
  harness::ClusterOutcome B =
      harness::runCluster(fleet(), *P, Trace, Opts);
  ASSERT_EQ(A.Placement, B.Placement); // Blending state resets per replay.
  for (size_t I = 0; I != Trace.size(); ++I)
    EXPECT_EQ(A.Stream.Requests[I].EndTime, B.Stream.Requests[I].EndTime);
}

} // namespace
