//===- tests/RuntimeAsyncTests.cpp - Continuous Runtime & async clients ------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The continuous/async Runtime surface: bit-identity of the RoundSync
/// compat path against a directly driven RoundScheduler (the
/// pre-refactor flushRound algorithm), bit-identity of the continuous
/// pump against a hand-rolled ContinuousScheduler + EngineSession
/// reference loop, the bursty-trace queueing-delay gate (continuous
/// admission must beat the round barrier on mean AND p95), the
/// multi-producer submit/wait stress (the TSan target), callback
/// dispatch including re-entrant submission, and event-time semantics
/// of ScheduledExecution.
///
//===----------------------------------------------------------------------===//

#include "accelos/AdaptivePolicy.h"
#include "accelos/AdmissionLoop.h"
#include "accelos/ProxyCL.h"
#include "accelos/ResourceSolver.h"
#include "accelos/Runtime.h"
#include "accelos/Scheduler.h"
#include "sim/DeviceSpec.h"
#include "sim/Engine.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

using namespace accel;
using namespace accel::accelos;

namespace {

const char *WorkSource = R"(
  kernel void work(global float* d, float f) {
    long gid = get_global_id(0);
    d[gid] = d[gid] * f + 1.0f;
  }
)";

/// One application: proxy, a built kernel with bound args, its buffer.
struct TestApp {
  std::unique_ptr<ProxyCL> Proxy;
  std::unique_ptr<ocl::Kernel> K;
  std::unique_ptr<ocl::Buffer> B;
};

TestApp makeApp(Runtime &RT, int AppId, int N) {
  TestApp A;
  A.Proxy = std::make_unique<ProxyCL>(RT, AppId);
  ocl::Program *P = cantFail(A.Proxy->createProgram(WorkSource));
  A.K = std::make_unique<ocl::Kernel>(
      cantFail(A.Proxy->createKernel(*P, "work")));
  A.B = std::make_unique<ocl::Buffer>(
      cantFail(A.Proxy->createBuffer(static_cast<uint64_t>(N) * 4)));
  std::vector<float> Init(N, 1.0f);
  cantFail(A.B->write(Init.data(), static_cast<uint64_t>(N) * 4));
  cantFail(A.Proxy->setKernelArg(*A.K, 0, ocl::KernelArg::buffer(*A.B)));
  cantFail(
      A.Proxy->setKernelArg(*A.K, 1, ocl::KernelArg::scalarF32(2.0f)));
  return A;
}

kir::NDRangeCfg range1D(int N, int Local) {
  kir::NDRangeCfg R;
  R.GlobalSize[0] = static_cast<uint64_t>(N);
  R.LocalSize[0] = static_cast<uint64_t>(Local);
  return R;
}

/// A 1-CU device three 128-thread tenants cannot share: forces
/// deferrals and multi-round flushes.
sim::DeviceSpec smallSpec() {
  sim::DeviceSpec S = sim::DeviceSpec::nvidiaK20m();
  S.NumCUs = 1;
  S.MaxThreadsPerCU = 256;
  S.MaxWGsPerCU = 8;
  return S;
}

double meanOf(const std::vector<double> &V) {
  double S = 0;
  for (double X : V)
    S += X;
  return V.empty() ? 0 : S / static_cast<double>(V.size());
}

double p95Of(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  size_t Idx = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(V.size())));
  return V[Idx == 0 ? 0 : Idx - 1];
}

//===----------------------------------------------------------------------===//
// Bit-identity: RoundSync compat vs the pre-refactor flush algorithm
//===----------------------------------------------------------------------===//

TEST(RuntimeBitIdentityTest, RoundSyncGrantHistoryMatchesLegacyLoop) {
  sim::DeviceSpec Spec = smallSpec();
  ocl::Device Dev(Spec);
  RuntimeOptions ROpts;
  ROpts.Mode = RuntimeOptions::Admission::RoundSync;
  ROpts.RecordGrantHistory = true;
  Runtime RT(Dev, SchedulingMode::Optimized, ROpts);

  constexpr int NumApps = 3;
  constexpr int N = 256;
  std::vector<TestApp> Apps;
  for (int I = 0; I != NumApps; ++I)
    Apps.push_back(makeApp(RT, I + 1, N));
  kir::NDRangeCfg Range = range1D(N, 128);

  // The pre-refactor flushRound algorithm, driven directly: submit
  // everything pending, then plan rounds back to back until the queue
  // drains.
  RoundScheduler Ref(ResourceCaps::fromDevice(Spec));
  std::vector<GrantRecord> RefLog;
  uint64_t NextRefId = 0; // mirrors the Runtime's request-id counter
  auto refSubmitAll = [&] {
    for (size_t I = 0; I != Apps.size(); ++I) {
      KernelCostModel M = cantFail(RT.costModel(*Apps[I].K, Range));
      RoundRequest RR;
      RR.Id = NextRefId++;
      RR.Tenant = static_cast<int>(I) + 1;
      RR.Demand = M.Demand;
      Ref.submit(RR);
    }
    while (Ref.pending() != 0)
      for (const RoundGrant &G : Ref.nextRound())
        RefLog.push_back({G.Id, G.WGs});
  };

  // Two bursts of the scripted trace: enqueue all three tenants, flush,
  // repeat — the queue drains and refills.
  for (int Burst = 0; Burst != 2; ++Burst) {
    for (TestApp &A : Apps)
      cantFail(A.Proxy->submitNDRange(*A.K, Range));
    auto Execs = RT.flushRound();
    ASSERT_TRUE(static_cast<bool>(Execs)) << Execs.message();
    EXPECT_EQ(Execs->size(), static_cast<size_t>(NumApps));
    refSubmitAll();
  }

  ASSERT_EQ(RT.grantHistory().size(), RefLog.size());
  for (size_t I = 0; I != RefLog.size(); ++I) {
    EXPECT_EQ(RT.grantHistory()[I].Id, RefLog[I].Id) << "grant " << I;
    EXPECT_EQ(RT.grantHistory()[I].WGs, RefLog[I].WGs) << "grant " << I;
  }
  // The oversubscribed script really exercised deferral: more rounds
  // than bursts.
  EXPECT_EQ(RT.schedulerStats().RoundsPlanned, 4u);
  EXPECT_EQ(RT.schedulerStats().Deferrals, 2u);
}

//===----------------------------------------------------------------------===//
// Bit-identity: Runtime continuous pump vs a hand-rolled reference loop
//===----------------------------------------------------------------------===//

namespace {

struct RefRequest {
  KernelDemand Demand;
  std::vector<double> WGCosts;
  size_t Cursor = 0;
  uint64_t Inst = 0;
};

/// The serving harness's continuous replay structure (feed due arrivals
/// -> admission passes to fixpoint -> advance to the next event ->
/// complete/requeue), built from the same shared pieces the Runtime
/// pump uses: ContinuousScheduler, EngineSession, runAdmissionPass and
/// quantumSliceEnd.
std::vector<GrantRecord> runReferenceContinuous(
    const sim::DeviceSpec &Spec, std::vector<RefRequest> &Reqs,
    const std::vector<std::pair<double, uint64_t>> &Arrivals,
    double Quantum) {
  ContinuousScheduler Sched(ResourceCaps::fromDevice(Spec));
  sim::EngineSession Session(Spec);
  std::vector<GrantRecord> Log;
  std::vector<sim::KernelLaunchDesc> LaunchBuf;
  std::vector<sim::KernelExecResult> Comp;
  size_t Next = 0;
  bool NeedAdmit = false;
  auto submitReq = [&](uint64_t Id) {
    RefRequest &R = Reqs[Id];
    RoundRequest RR;
    RR.Id = Id;
    RR.Demand = R.Demand;
    RR.Demand.RequestedWGs = R.WGCosts.size() - R.Cursor;
    Sched.submit(RR);
  };
  for (;;) {
    double T = Session.now();
    while (Next != Arrivals.size() && Arrivals[Next].first <= T) {
      submitReq(Arrivals[Next].second);
      ++Next;
      NeedAdmit = true;
    }
    while (NeedAdmit)
      NeedAdmit = runAdmissionPass(
          Sched, Session, LaunchBuf,
          [&](uint64_t Id,
              uint64_t WGs) -> std::optional<sim::KernelLaunchDesc> {
            Log.push_back({Id, WGs});
            RefRequest &R = Reqs[Id];
            size_t End = quantumSliceEnd(R.WGCosts, R.Cursor, WGs,
                                         R.Demand.WGThreads, 1.0, Quantum);
            sim::KernelLaunchDesc L;
            L.AppId = static_cast<int>(Id);
            L.ArrivalTime = T;
            L.WGThreads = R.Demand.WGThreads;
            L.LocalMemPerWG = R.Demand.LocalMemPerWG;
            L.RegsPerThread = R.Demand.RegsPerThread;
            L.IssueEfficiency = 1.0;
            L.Mode = sim::KernelLaunchDesc::ModeKind::WorkQueue;
            L.ViewCosts = R.WGCosts.data();
            L.ViewBegin = R.Cursor;
            L.ViewEnd = End;
            uint64_t SliceLen = End - R.Cursor;
            L.PhysicalWGs =
                std::min<uint64_t>(std::max<uint64_t>(WGs, 1), SliceLen);
            L.Batch = cappedBatchFor(SchedulingMode::Optimized, R.Inst,
                                     SliceLen, L.PhysicalWGs);
            R.Cursor = End;
            return L;
          },
          [&](uint64_t) {});
    if (Next == Arrivals.size()) {
      if (!Session.advanceNextEvent(Comp))
        break;
    } else {
      double NE = Session.nextEventTime();
      double NA = Arrivals[Next].first;
      double Target = NE < 0 ? NA : std::min(NE, NA);
      Session.advanceTo(std::max(Target, T), Comp);
    }
    for (const sim::KernelExecResult &K : Comp) {
      uint64_t Id = static_cast<uint64_t>(K.AppId);
      Sched.complete(Id);
      NeedAdmit = true;
      if (Reqs[Id].Cursor < Reqs[Id].WGCosts.size())
        submitReq(Id);
    }
  }
  return Log;
}

} // namespace

TEST(RuntimeBitIdentityTest, ContinuousGrantHistoryMatchesReferenceLoop) {
  sim::DeviceSpec Spec = smallSpec();
  constexpr double Quantum = 2000;
  ocl::Device Dev(Spec);
  RuntimeOptions ROpts; // Continuous is the default mode.
  ROpts.SliceQuantum = Quantum;
  ROpts.RecordGrantHistory = true;
  Runtime RT(Dev, SchedulingMode::Optimized, ROpts);

  // 64 work groups per request on the 1-CU device: the quantum cuts
  // each grant into many timing slices.
  constexpr int N = 64 * 64;
  std::vector<TestApp> Apps;
  for (int I = 0; I != 3; ++I)
    Apps.push_back(makeApp(RT, I + 1, N));
  kir::NDRangeCfg Range = range1D(N, 64);

  // Scripted trace: two same-instant arrivals, then two staggered ones
  // (app 1 comes back with more work).
  struct Sub {
    size_t App;
    double At;
  };
  const Sub Script[] = {{0, 0}, {1, 0}, {2, 30000}, {0, 60000}};

  // Reference inputs from exactly the runtime's cost model.
  std::vector<RefRequest> Reqs;
  std::vector<std::pair<double, uint64_t>> Arr;
  for (const Sub &S : Script) {
    KernelCostModel M = cantFail(RT.costModel(*Apps[S.App].K, Range));
    RefRequest R;
    R.Demand = M.Demand;
    R.WGCosts.assign(Range.totalGroups(), M.WGCost);
    R.Inst = M.ComputeInstCount;
    Arr.push_back({S.At, Reqs.size()});
    Reqs.push_back(std::move(R));
  }
  std::vector<GrantRecord> RefLog =
      runReferenceContinuous(Spec, Reqs, Arr, Quantum);

  for (const Sub &S : Script)
    cantFail(Apps[S.App].Proxy->submitNDRangeAt(*Apps[S.App].K, Range,
                                                S.At));
  auto Execs = RT.drain();
  ASSERT_TRUE(static_cast<bool>(Execs)) << Execs.message();
  EXPECT_EQ(Execs->size(), 4u);

  ASSERT_EQ(RT.grantHistory().size(), RefLog.size());
  for (size_t I = 0; I != RefLog.size(); ++I) {
    EXPECT_EQ(RT.grantHistory()[I].Id, RefLog[I].Id) << "grant " << I;
    EXPECT_EQ(RT.grantHistory()[I].WGs, RefLog[I].WGs) << "grant " << I;
  }
  // Slicing actually happened: more grants than requests.
  EXPECT_GT(RefLog.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Acceptance gate: continuous admission beats the round barrier
//===----------------------------------------------------------------------===//

TEST(RuntimeQueueingTest, BurstyTraceContinuousBeatsRoundSync) {
  constexpr int HeavyN = 64 * 4096; // 4096 work groups: many waves.
  constexpr int LightN = 64 * 4;    // 4 work groups: one wave.
  const int Local = 64;

  // Solo probe: how long does the heavy kernel run alone? Scales the
  // script to the cost model instead of hard-coding cycle counts.
  double HeavyDur = 0;
  {
    auto Dev = ocl::Platform::createNvidiaK20m();
    Runtime RT(*Dev);
    TestApp Heavy = makeApp(RT, 1, HeavyN);
    RequestHandle H = cantFail(
        Heavy.Proxy->submitNDRange(*Heavy.K, range1D(HeavyN, Local)));
    ScheduledExecution E = cantFail(H.wait());
    HeavyDur = E.EndTime - E.StartTime;
    ASSERT_GT(HeavyDur, 0);
  }

  // The bursty script: the heavy request arrives first and occupies the
  // device; two light tenants burst in while it runs.
  struct Sub {
    int App; // 0 = heavy, 1..2 = light tenants
    double At;
  };
  std::vector<Sub> Script = {{0, 0}};
  for (int Burst = 0; Burst != 4; ++Burst)
    for (int App = 1; App != 3; ++App)
      Script.push_back({App, (0.05 + 0.1 * Burst) * HeavyDur});

  auto runScript = [&](RuntimeOptions ROpts) {
    auto Dev = ocl::Platform::createNvidiaK20m();
    Runtime RT(*Dev, SchedulingMode::Optimized, ROpts);
    TestApp Heavy = makeApp(RT, 1, HeavyN);
    TestApp Light1 = makeApp(RT, 2, LightN);
    TestApp Light2 = makeApp(RT, 3, LightN);
    TestApp *Apps[] = {&Heavy, &Light1, &Light2};
    const int Ns[] = {HeavyN, LightN, LightN};
    for (const Sub &S : Script)
      cantFail(Apps[S.App]->Proxy->submitNDRangeAt(
          *Apps[S.App]->K, range1D(Ns[S.App], Local), S.At));
    auto Execs = cantFail(RT.drain());
    std::vector<double> Delays;
    for (const ScheduledExecution &E : Execs)
      Delays.push_back(E.queueDelay());
    return Delays;
  };

  RuntimeOptions RoundOpts;
  RoundOpts.Mode = RuntimeOptions::Admission::RoundSync;
  std::vector<double> RoundDelays = runScript(RoundOpts);

  RuntimeOptions ContOpts; // Continuous default.
  ContOpts.SliceQuantum = HeavyDur / 16;
  std::vector<double> ContDelays = runScript(ContOpts);

  ASSERT_EQ(RoundDelays.size(), Script.size());
  ASSERT_EQ(ContDelays.size(), Script.size());
  // The gate: event-driven admission strictly beats the round barrier
  // on both mean and tail queueing delay for this bursty trace.
  EXPECT_LT(meanOf(ContDelays), meanOf(RoundDelays));
  EXPECT_LT(p95Of(ContDelays), p95Of(RoundDelays));
}

//===----------------------------------------------------------------------===//
// Multi-producer stress (the TSan target)
//===----------------------------------------------------------------------===//

TEST(RuntimeAsyncTest, FourProducerSubmitWaitStress) {
  constexpr int NumProducers = 4;
  constexpr int PerProducer = 8;
  constexpr int N = 64 * 64;

  auto Dev = ocl::Platform::createNvidiaK20m();
  RuntimeOptions ROpts;
  ROpts.SliceQuantum = 500; // Force slicing under contention.
  Runtime RT(*Dev, SchedulingMode::Optimized, ROpts);

  // Setup is NOT thread-safe: every producer's program, kernel and
  // buffer are created on the main thread.
  std::vector<TestApp> Apps;
  for (int I = 0; I != NumProducers; ++I)
    Apps.push_back(makeApp(RT, I + 1, N));
  kir::NDRangeCfg Range = range1D(N, 64);

  std::atomic<int> Callbacks{0};
  std::atomic<int> Failures{0};
  std::vector<std::thread> Producers;
  for (int P = 0; P != NumProducers; ++P)
    Producers.emplace_back([&, P] {
      for (int I = 0; I != PerProducer; ++I) {
        Expected<RequestHandle> H = Apps[P].Proxy->submitNDRange(
            *Apps[P].K, Range, [&](const ScheduledExecution &) {
              Callbacks.fetch_add(1, std::memory_order_relaxed);
            });
        if (!H) {
          Failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        Expected<ScheduledExecution> E = H->wait();
        if (!E || E->AppId != P + 1 || E->EndTime <= E->ArrivalTime)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Producers)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Callbacks.load(), NumProducers * PerProducer);
  EXPECT_EQ(RT.stats().KernelsScheduled,
            static_cast<uint64_t>(NumProducers * PerProducer));
  EXPECT_EQ(RT.pendingRequests(), 0u);
}

//===----------------------------------------------------------------------===//
// Callback dispatch
//===----------------------------------------------------------------------===//

TEST(RuntimeAsyncTest, CallbacksFireAndMayResubmit) {
  auto Dev = ocl::Platform::createNvidiaK20m();
  Runtime RT(*Dev);
  TestApp App = makeApp(RT, 1, 256);
  kir::NDRangeCfg Range = range1D(256, 64);

  int Global = 0;
  RT.onCompletion([&](const ScheduledExecution &) { ++Global; });

  // The first request's completion callback submits a follow-up — the
  // re-entrant path: callbacks run outside the runtime lock.
  bool FollowUpRetired = false;
  uint64_t FirstId = ~0ull;
  cantFail(App.Proxy->submitNDRange(
      *App.K, Range, [&](const ScheduledExecution &E) {
        FirstId = E.RequestId;
        cantFail(App.Proxy->submitNDRange(
            *App.K, Range, [&](const ScheduledExecution &) {
              FollowUpRetired = true;
            }));
      }));

  auto Execs = cantFail(RT.drain());
  ASSERT_EQ(Execs.size(), 2u);
  EXPECT_EQ(Execs[0].RequestId, FirstId);
  EXPECT_TRUE(FollowUpRetired);
  EXPECT_EQ(Global, 2);
  EXPECT_EQ(RT.pendingRequests(), 0u);
}

//===----------------------------------------------------------------------===//
// Event-time semantics and result consumption
//===----------------------------------------------------------------------===//

TEST(RuntimeAsyncTest, EventTimesAreMonotoneAndResultsConsumeOnce) {
  sim::DeviceSpec Spec = smallSpec();
  ocl::Device Dev(Spec);
  RuntimeOptions ROpts;
  ROpts.SliceQuantum = 300; // Small quantum: big requests multi-slice.
  Runtime RT(Dev, SchedulingMode::Optimized, ROpts);

  std::vector<TestApp> Apps;
  for (int I = 0; I != 3; ++I)
    Apps.push_back(makeApp(RT, I + 1, 64 * 64));
  kir::NDRangeCfg Range = range1D(64 * 64, 64);

  std::vector<RequestHandle> Hs;
  for (TestApp &A : Apps)
    Hs.push_back(cantFail(A.Proxy->submitNDRange(*A.K, Range)));

  // Consume the middle request through its handle...
  ScheduledExecution Mid = cantFail(Hs[1].wait());
  EXPECT_EQ(Mid.AppId, 2);
  EXPECT_GT(Mid.Slices, 1u) << "quantum slicing must have engaged";
  EXPECT_LE(Mid.ArrivalTime, Mid.AdmitTime);
  EXPECT_LE(Mid.AdmitTime, Mid.StartTime);
  EXPECT_LT(Mid.StartTime, Mid.EndTime);
  EXPECT_TRUE(Hs[1].done());
  EXPECT_EQ(Hs[1].status(), RequestStatus::Completed);

  // ...a second wait on the same request reports consumption...
  Expected<ScheduledExecution> Again = Hs[1].wait();
  EXPECT_FALSE(static_cast<bool>(Again));
  EXPECT_NE(Again.message().find("consumed"), std::string::npos);

  // ...and drain reports exactly the two unconsumed requests, in
  // first-grant order, with monotone event times.
  auto Rest = cantFail(RT.drain());
  ASSERT_EQ(Rest.size(), 2u);
  for (const ScheduledExecution &E : Rest) {
    EXPECT_NE(E.RequestId, Mid.RequestId);
    EXPECT_LE(E.ArrivalTime, E.AdmitTime);
    EXPECT_LE(E.AdmitTime, E.StartTime);
    EXPECT_LT(E.StartTime, E.EndTime);
    EXPECT_GE(E.Slices, 1u);
  }
  EXPECT_LE(Rest[0].AdmitTime, Rest[1].AdmitTime);
}

TEST(RuntimeAsyncTest, WaitOnUnknownRequestFails) {
  auto Dev = ocl::Platform::createNvidiaK20m();
  Runtime RT(*Dev);
  Expected<ScheduledExecution> E = RT.wait(42);
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("unknown request"), std::string::npos);
}

} // namespace
