//===- tests/EkTests.cpp - Elastic Kernels baseline tests ---------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "ek/ElasticKernels.h"

#include "gtest/gtest.h"

#include <numeric>

using namespace accel;
using namespace accel::ek;

namespace {

EKKernelDesc desc(const std::string &Name, uint64_t WGThreads,
                  size_t NumWGs, double CostPerWG) {
  EKKernelDesc D;
  D.Name = Name;
  D.WGThreads = WGThreads;
  D.RegsPerThread = 8;
  D.WGCosts.assign(NumWGs, CostPerWG);
  return D;
}

TEST(EkTest, PairwiseMergeGroups) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  std::vector<EKKernelDesc> Ks;
  for (int I = 0; I < 5; ++I)
    Ks.push_back(desc("k" + std::to_string(I), 128, 64, 1000.0));
  auto Launches = planMergedLaunch(Spec, Ks);
  ASSERT_EQ(Launches.size(), 5u);
  EXPECT_EQ(Launches[0].MergeGroup, 0);
  EXPECT_EQ(Launches[1].MergeGroup, 0);
  EXPECT_EQ(Launches[2].MergeGroup, 1);
  EXPECT_EQ(Launches[3].MergeGroup, 1);
  EXPECT_EQ(Launches[4].MergeGroup, 2);
}

TEST(EkTest, SliceIsThreadOccupancyOverPair) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  // Full residency for 128-thread WGs: 26624/128 = 208; half = 104.
  auto Launches = planMergedLaunch(
      Spec, {desc("a", 128, 4096, 10.0), desc("b", 128, 4096, 10.0)});
  EXPECT_EQ(Launches[0].StaticCosts.size(), 104u);
  EXPECT_EQ(Launches[1].StaticCosts.size(), 104u);
}

TEST(EkTest, LoneTrailingKernelGetsFullResidency) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  auto Launches = planMergedLaunch(
      Spec, {desc("a", 128, 4096, 10.0), desc("b", 128, 4096, 10.0),
             desc("c", 128, 4096, 10.0)});
  // c is alone in its batch: no division by 2.
  EXPECT_EQ(Launches[2].StaticCosts.size(), 208u);
}

TEST(EkTest, ChunkingConservesWork) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  std::vector<EKKernelDesc> Ks = {desc("a", 256, 777, 123.5),
                                  desc("b", 64, 33, 999.0)};
  auto Launches = planMergedLaunch(Spec, Ks);
  for (size_t I = 0; I != Ks.size(); ++I) {
    double Orig = std::accumulate(Ks[I].WGCosts.begin(),
                                  Ks[I].WGCosts.end(), 0.0);
    double Sliced = std::accumulate(Launches[I].StaticCosts.begin(),
                                    Launches[I].StaticCosts.end(), 0.0);
    EXPECT_NEAR(Orig, Sliced, 1e-6) << Ks[I].Name;
  }
}

TEST(EkTest, SmallGridsNotInflated) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  auto Launches =
      planMergedLaunch(Spec, {desc("tiny", 128, 3, 50.0)});
  EXPECT_EQ(Launches[0].StaticCosts.size(), 3u);
}

TEST(EkTest, StaticSlicesCarryContiguousImbalance) {
  // A front-loaded grid: the first chunk must carry more work than the
  // last (EK cannot rebalance; this is what accelOS's dynamic dequeue
  // fixes).
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  EKKernelDesc D = desc("skew", 128, 416, 0.0);
  for (size_t I = 0; I != D.WGCosts.size(); ++I)
    D.WGCosts[I] = I < 100 ? 1000.0 : 10.0;
  auto Launches = planMergedLaunch(Spec, {D});
  const auto &Costs = Launches[0].StaticCosts;
  ASSERT_GE(Costs.size(), 2u);
  EXPECT_GT(Costs.front(), Costs.back());
}

TEST(EkTest, MergedPairCoExecutesInEngine) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  auto Launches = planMergedLaunch(
      Spec, {desc("a", 128, 1024, 20000.0), desc("b", 128, 1024, 20000.0)});
  sim::Engine E(Spec);
  sim::SimResult R = E.run(Launches);
  // Both members of the merged batch start together.
  EXPECT_LT(R.Kernels[1].StartTime,
            0.25 * std::max(R.Kernels[0].EndTime, R.Kernels[1].EndTime));
}

TEST(EkTest, LaterBatchQueuesBehindEarlier) {
  sim::DeviceSpec Spec = sim::DeviceSpec::nvidiaK20m();
  auto Launches = planMergedLaunch(
      Spec, {desc("a", 128, 1024, 20000.0), desc("b", 128, 1024, 20000.0),
             desc("c", 128, 1024, 20000.0), desc("d", 128, 1024, 20000.0)});
  sim::Engine E(Spec);
  sim::SimResult R = E.run(Launches);
  double Batch1End =
      std::min(R.Kernels[0].EndTime, R.Kernels[1].EndTime);
  // The second merged pair cannot start before the first pair's queues
  // drain (strict FIFO between batches).
  EXPECT_GT(R.Kernels[2].StartTime, 0.5 * Batch1End);
  EXPECT_GT(R.Kernels[3].StartTime, 0.5 * Batch1End);
}

} // namespace
