//===- tests/TestUtil.h - Shared test helpers -------------------*- C++-*-===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for compiling MiniCL source and executing kernels against a
/// fresh simulated device memory in unit tests.
///
//===----------------------------------------------------------------------===//

#ifndef ACCEL_TESTS_TESTUTIL_H
#define ACCEL_TESTS_TESTUTIL_H

#include "kir/DeviceMemory.h"
#include "kir/Interpreter.h"
#include "kir/Module.h"
#include "minicl/Frontend.h"

#include "gtest/gtest.h"

#include <cstring>
#include <vector>

namespace accel {
namespace testutil {

/// Compiles \p Source, failing the test on a front-end diagnostic.
inline std::unique_ptr<kir::Module> compileOrDie(const std::string &Source) {
  Expected<std::unique_ptr<kir::Module>> M =
      minicl::compileSource("test", Source);
  EXPECT_TRUE(static_cast<bool>(M)) << M.message();
  if (!M)
    return nullptr;
  return M.take();
}

/// \returns the front-end diagnostic for \p Source, or "" on success.
inline std::string compileError(const std::string &Source) {
  Expected<std::unique_ptr<kir::Module>> M =
      minicl::compileSource("test", Source);
  if (M)
    return "";
  return M.message();
}

/// A device-memory arena plus typed buffer helpers for kernel tests.
class KernelHarness {
public:
  explicit KernelHarness(uint64_t MemBytes = 32ull << 20)
      : Mem(MemBytes), Interp(Mem) {}

  uint64_t allocF32(const std::vector<float> &Init) {
    uint64_t Addr = cantFail(Mem.allocate(Init.size() * 4));
    Mem.copyIn(Addr, Init.data(), Init.size() * 4);
    return Addr;
  }

  uint64_t allocI32(const std::vector<int32_t> &Init) {
    uint64_t Addr = cantFail(Mem.allocate(Init.size() * 4));
    Mem.copyIn(Addr, Init.data(), Init.size() * 4);
    return Addr;
  }

  std::vector<float> readF32(uint64_t Addr, size_t Count) {
    std::vector<float> Out(Count);
    Mem.copyOut(Addr, Out.data(), Count * 4);
    return Out;
  }

  std::vector<int32_t> readI32(uint64_t Addr, size_t Count) {
    std::vector<int32_t> Out(Count);
    Mem.copyOut(Addr, Out.data(), Count * 4);
    return Out;
  }

  /// Runs \p KernelName from \p M over a 1-D range.
  kir::ExecStats run1D(kir::Module &M, const std::string &KernelName,
                       const std::vector<uint64_t> &Args, uint64_t Global,
                       uint64_t Local) {
    kir::Function *K = M.getFunction(KernelName);
    EXPECT_NE(K, nullptr) << "no kernel named " << KernelName;
    kir::NDRangeCfg Range;
    Range.WorkDim = 1;
    Range.GlobalSize[0] = Global;
    Range.LocalSize[0] = Local;
    Expected<kir::ExecStats> Stats = Interp.run(*K, Args, Range);
    EXPECT_TRUE(static_cast<bool>(Stats)) << Stats.message();
    if (!Stats)
      return kir::ExecStats();
    return Stats.take();
  }

  kir::DeviceMemory Mem;
  kir::Interpreter Interp;
};

} // namespace testutil
} // namespace accel

#endif // ACCEL_TESTS_TESTUTIL_H
