//===- tests/MiniclTests.cpp - MiniCL front-end unit tests -----------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "minicl/Lexer.h"
#include "minicl/Parser.h"

#include "kir/Printer.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace accel;
using namespace accel::minicl;
using accel::testutil::compileError;
using accel::testutil::compileOrDie;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<Token> lex(const std::string &Src) {
  Lexer L(Src);
  auto Tokens = L.tokenize();
  EXPECT_TRUE(static_cast<bool>(Tokens)) << Tokens.message();
  return Tokens ? Tokens.take() : std::vector<Token>();
}

TEST(LexerTest, Keywords) {
  auto T = lex("kernel void int long float if else for while return");
  ASSERT_EQ(T.size(), 11u); // 10 keywords + EOF
  EXPECT_EQ(T[0].Kind, TokKind::KwKernel);
  EXPECT_EQ(T[1].Kind, TokKind::KwVoid);
  EXPECT_EQ(T[9].Kind, TokKind::KwReturn);
  EXPECT_EQ(T[10].Kind, TokKind::Eof);
}

TEST(LexerTest, IntLiterals) {
  auto T = lex("42 0x1F 0");
  EXPECT_EQ(T[0].IntValue, 42);
  EXPECT_EQ(T[1].IntValue, 31);
  EXPECT_EQ(T[2].IntValue, 0);
}

TEST(LexerTest, FloatLiterals) {
  auto T = lex("1.5 2.0f 1e3 2.5e-2f");
  EXPECT_EQ(T[0].Kind, TokKind::FloatLiteral);
  EXPECT_FLOAT_EQ(T[0].FloatValue, 1.5f);
  EXPECT_FLOAT_EQ(T[1].FloatValue, 2.0f);
  EXPECT_FLOAT_EQ(T[2].FloatValue, 1000.0f);
  EXPECT_FLOAT_EQ(T[3].FloatValue, 0.025f);
}

TEST(LexerTest, TwoCharOperators) {
  auto T = lex("== != <= >= && || << >> += -= ++ --");
  EXPECT_EQ(T[0].Kind, TokKind::EqEq);
  EXPECT_EQ(T[1].Kind, TokKind::BangEq);
  EXPECT_EQ(T[2].Kind, TokKind::LessEq);
  EXPECT_EQ(T[3].Kind, TokKind::GreaterEq);
  EXPECT_EQ(T[4].Kind, TokKind::AmpAmp);
  EXPECT_EQ(T[5].Kind, TokKind::PipePipe);
  EXPECT_EQ(T[6].Kind, TokKind::Shl);
  EXPECT_EQ(T[7].Kind, TokKind::Shr);
  EXPECT_EQ(T[8].Kind, TokKind::PlusAssign);
  EXPECT_EQ(T[9].Kind, TokKind::MinusAssign);
  EXPECT_EQ(T[10].Kind, TokKind::PlusPlus);
  EXPECT_EQ(T[11].Kind, TokKind::MinusMinus);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto T = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(LexerTest, TracksLines) {
  auto T = lex("a\nb\n  c");
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_EQ(T[1].Line, 2u);
  EXPECT_EQ(T[2].Line, 3u);
}

TEST(LexerTest, RejectsBadCharacter) {
  Lexer L("a $ b");
  auto Tokens = L.tokenize();
  EXPECT_FALSE(static_cast<bool>(Tokens));
  EXPECT_NE(Tokens.message().find("unexpected character"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser diagnostics
//===----------------------------------------------------------------------===//

TEST(ParserTest, MissingSemicolon) {
  std::string E = compileError("kernel void k() { int x = 1 }");
  EXPECT_NE(E.find("expected ';'"), std::string::npos) << E;
}

TEST(ParserTest, MissingParen) {
  std::string E = compileError("kernel void k( { }");
  EXPECT_FALSE(E.empty());
}

TEST(ParserTest, KernelMustReturnVoid) {
  std::string E = compileError("kernel int k() { return 1; }");
  EXPECT_NE(E.find("kernel functions must return void"), std::string::npos);
}

TEST(ParserTest, ArraySizeMustBeLiteral) {
  std::string E = compileError("kernel void k() { float a[0]; }");
  EXPECT_NE(E.find("positive"), std::string::npos);
}

TEST(ParserTest, PointerParamNeedsAddressSpace) {
  std::string E = compileError("void f(float* p) { }");
  EXPECT_NE(E.find("'global' or 'local'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Semantic diagnostics
//===----------------------------------------------------------------------===//

TEST(SemaTest, UndeclaredVariable) {
  std::string E = compileError("kernel void k() { int a = b; }");
  EXPECT_NE(E.find("undeclared variable 'b'"), std::string::npos);
}

TEST(SemaTest, Redefinition) {
  std::string E = compileError("kernel void k() { int a; float a; }");
  EXPECT_NE(E.find("redefinition"), std::string::npos);
}

TEST(SemaTest, ShadowingInNestedScopeIsAllowed) {
  EXPECT_EQ(compileError("kernel void k() { int a = 1; { float a = "
                         "2.0f; } }"),
            "");
}

TEST(SemaTest, LocalOnlyInKernels) {
  std::string E = compileError("void f() { local float t[8]; }");
  EXPECT_NE(E.find("local memory"), std::string::npos);
}

TEST(SemaTest, AssignToPointerRejected) {
  std::string E =
      compileError("kernel void k(global float* p) { p = p; }");
  EXPECT_NE(E.find("not an assignable scalar"), std::string::npos);
}

TEST(SemaTest, AssignThroughConstPointerRejected) {
  std::string E =
      compileError("kernel void k(global const float* p) { p[0] = 1.0f; }");
  EXPECT_NE(E.find("const"), std::string::npos);
}

TEST(SemaTest, FloatToIntNeedsCast) {
  std::string E = compileError("kernel void k() { int a = 1.5f; }");
  EXPECT_NE(E.find("explicit cast"), std::string::npos);
}

TEST(SemaTest, ExplicitFloatToIntCastOk) {
  EXPECT_EQ(compileError("kernel void k() { int a = (int)1.5f; }"), "");
}

TEST(SemaTest, BreakOutsideLoop) {
  std::string E = compileError("kernel void k() { break; }");
  EXPECT_NE(E.find("'break' outside"), std::string::npos);
}

TEST(SemaTest, NonVoidMustReturn) {
  std::string E = compileError("int f() { int a = 1; }");
  EXPECT_NE(E.find("end of non-void"), std::string::npos);
}

TEST(SemaTest, BothArmsReturningIsOk) {
  EXPECT_EQ(compileError(
                "int f(int c) { if (c != 0) { return 1; } else { return 2; "
                "} }"),
            "");
}

TEST(SemaTest, RecursionRejected) {
  std::string E = compileError("int f(int n) { return f(n); }\n"
                               "kernel void k() { int a = f(1); }");
  EXPECT_NE(E.find("recursion"), std::string::npos);
}

TEST(SemaTest, MutualRecursionRejected) {
  std::string E = compileError("int g(int n);"); // forward decls unsupported
  // Mutual recursion via definition order is impossible without forward
  // declarations, so the cycle check only fires for direct recursion;
  // make sure the direct case is solid.
  EXPECT_FALSE(E.empty());
}

TEST(SemaTest, CallArityChecked) {
  std::string E = compileError("int f(int a) { return a; }\n"
                               "kernel void k() { int x = f(1, 2); }");
  EXPECT_NE(E.find("wrong number of arguments"), std::string::npos);
}

TEST(SemaTest, KernelsNotCallable) {
  std::string E = compileError("kernel void inner() { }\n"
                               "kernel void k() { inner(); }");
  EXPECT_NE(E.find("kernels cannot be called"), std::string::npos);
}

TEST(SemaTest, BuiltinNamesReserved) {
  std::string E = compileError("float sqrt(float x) { return x; }");
  EXPECT_NE(E.find("reserved"), std::string::npos);
}

TEST(SemaTest, WorkItemDimensionMustBeLiteral) {
  std::string E =
      compileError("kernel void k() { int d = 0; long g = "
                    "get_global_id(d); }");
  EXPECT_NE(E.find("literal dimension"), std::string::npos);
}

TEST(SemaTest, LogicalOpsRequireBool) {
  std::string E = compileError("kernel void k() { int a = 1; if (a && a) "
                               "{ } }");
  EXPECT_NE(E.find("must be bool"), std::string::npos);
}

TEST(SemaTest, ConditionMayBeInteger) {
  EXPECT_EQ(compileError("kernel void k() { int a = 1; if (a) { } }"), "");
}

//===----------------------------------------------------------------------===//
// Successful lowering
//===----------------------------------------------------------------------===//

TEST(CodeGenTest, VectorAddCompiles) {
  auto M = compileOrDie(R"(
    kernel void vadd(global const float* a, global const float* b,
                     global float* c) {
      long gid = get_global_id(0);
      c[gid] = a[gid] + b[gid];
    }
  )");
  ASSERT_NE(M, nullptr);
  kir::Function *K = M->getFunction("vadd");
  ASSERT_NE(K, nullptr);
  EXPECT_TRUE(K->isKernel());
  EXPECT_EQ(K->numArguments(), 3u);
}

TEST(CodeGenTest, PaperFigure8Kernel) {
  // The running example of the paper (Fig. 8a).
  auto M = compileOrDie(R"(
    kernel void mop(global const float* ina, global const float* inb,
                    global float* out) {
      long gid = get_global_id(0);
      long grid = get_group_id(0);
      if (grid < 4) {
        out[gid] = ina[gid] + inb[gid];
      } else {
        out[gid] = ina[gid] - inb[gid];
      }
    }
  )");
  ASSERT_NE(M, nullptr);
  std::string Text = kir::printModule(*M);
  EXPECT_NE(Text.find("get_group_id"), std::string::npos);
}

TEST(CodeGenTest, LocalArraysRecorded) {
  auto M = compileOrDie(R"(
    kernel void red(global float* data) {
      local float tile[128];
      long lid = get_local_id(0);
      tile[lid] = data[get_global_id(0)];
      barrier();
      data[get_global_id(0)] = tile[lid];
    }
  )");
  ASSERT_NE(M, nullptr);
  kir::Function *K = M->getFunction("red");
  ASSERT_EQ(K->localAllocs().size(), 1u);
  EXPECT_EQ(K->localAllocs()[0].Count, 128u);
  EXPECT_EQ(K->localMemoryBytes(), 512u);
}

TEST(CodeGenTest, HelperFunctionsCompile) {
  auto M = compileOrDie(R"(
    float square(float x) { return x * x; }
    kernel void k(global float* d) {
      long gid = get_global_id(0);
      d[gid] = square(d[gid]);
    }
  )");
  ASSERT_NE(M, nullptr);
  EXPECT_NE(M->getFunction("square"), nullptr);
  EXPECT_FALSE(M->getFunction("square")->isKernel());
}

TEST(CodeGenTest, ForLoopsAndOpAssign) {
  auto M = compileOrDie(R"(
    kernel void k(global float* d, int n) {
      float acc = 0.0f;
      for (int i = 0; i < n; i++) {
        acc += d[i];
      }
      d[0] = acc;
    }
  )");
  ASSERT_NE(M, nullptr);
}

TEST(CodeGenTest, WhileBreakContinue) {
  auto M = compileOrDie(R"(
    kernel void k(global int* d, int n) {
      int i = 0;
      while (true) {
        i++;
        if (i >= n) { break; }
        if (i % 2 == 0) { continue; }
        d[i] = i;
      }
    }
  )");
  ASSERT_NE(M, nullptr);
}

TEST(CodeGenTest, InstructionCountReflectsBody) {
  auto Small = compileOrDie("kernel void k(global float* d) { d[0] = "
                            "1.0f; }");
  auto Large = compileOrDie(R"(
    kernel void k(global float* d) {
      long g = get_global_id(0);
      float a = d[g];
      float b = a * a + a;
      float c = b * b + b;
      float e = c * c + c;
      d[g] = e * a + b * c;
    }
  )");
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(Large, nullptr);
  EXPECT_LT(Small->getFunction("k")->instructionCount(),
            Large->getFunction("k")->instructionCount());
}

} // namespace
