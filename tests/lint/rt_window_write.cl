// Negative lint fixture: user code writing into the reserved runtime
// window. The "rt" global i64 pointer is the accelOS Virtual NDRange
// descriptor; word 2 is the atomic dequeue cursor, so this store would
// corrupt the device-side scheduler. kir-lint must flag the store on
// line 7.
kernel void rt_window_write(global long* rt, global float* out) {
  rt[2] = 0;
  out[get_global_id(0)] = 1.0;
}
