// Negative lint fixture: a loop whose trip count the cost prior cannot
// bound. The condition variable i is never updated inside the loop
// (only j advances), so no induction pattern exists and the estimator
// must fall back — and say so. kir-lint must emit a cost diagnostic
// for the loop on line 9.
kernel void unbounded_cost(global float* out, int n) {
  int i = 0;
  int j = 0;
  while (i < n) {
    out[j] = 0.0;
    j = j + 1;
    if (j >= n) {
      i = n;
    }
  }
}
