// Negative lint fixture: a barrier under work-item-divergent control
// flow. Only the work items with gid < n reach the barrier, so a work
// group straddling n deadlocks on a real device. kir-lint must flag
// the barrier on line 8.
kernel void divergent_barrier(global float* data, int n) {
  long gid = get_global_id(0);
  if (gid < (long)n) {
    barrier();
    data[gid] = data[gid] * 2.0;
  }
}
