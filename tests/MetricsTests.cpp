//===- tests/MetricsTests.cpp - Metric formula tests -------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace accel;
using namespace accel::metrics;

namespace {

TEST(MetricsTest, IndividualSlowdown) {
  EXPECT_DOUBLE_EQ(individualSlowdown(20.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(individualSlowdown(10.0, 10.0), 1.0);
}

TEST(MetricsTest, UnfairnessIsMaxOverMin) {
  EXPECT_DOUBLE_EQ(systemUnfairness({2.0, 4.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(systemUnfairness({3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(systemUnfairness({5.0}), 1.0);
}

TEST(MetricsTest, FairnessImprovement) {
  EXPECT_DOUBLE_EQ(fairnessImprovement(8.43, 1.24), 8.43 / 1.24);
}

TEST(MetricsTest, OverlapFullyConcurrent) {
  // Identical intervals: everything co-executes.
  std::vector<Interval> I = {{0, 10}, {0, 10}, {0, 10}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 1.0);
}

TEST(MetricsTest, OverlapSerialized) {
  std::vector<Interval> I = {{0, 10}, {10, 20}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 0.0);
}

TEST(MetricsTest, OverlapPartial) {
  // [0,10] and [5,15]: co-execution 5, union 15.
  std::vector<Interval> I = {{0, 10}, {5, 15}};
  EXPECT_NEAR(executionOverlap(I), 5.0 / 15.0, 1e-12);
}

TEST(MetricsTest, OverlapRequiresAllKernels) {
  // Three kernels where only two ever co-run.
  std::vector<Interval> I = {{0, 10}, {5, 15}, {12, 20}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 0.0);
}

TEST(MetricsTest, OverlapUnionWithGaps) {
  // Gap in the union: union = 10 + 5, intersection = 0.
  std::vector<Interval> I = {{0, 10}, {20, 25}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 0.0);
}

TEST(MetricsTest, ThroughputSpeedup) {
  EXPECT_DOUBLE_EQ(throughputSpeedup(130.0, 100.0), 1.3);
}

TEST(MetricsTest, StpSumsNormalizedProgress) {
  // Two kernels each slowed 2x progress at 0.5 each.
  EXPECT_DOUBLE_EQ(systemThroughput({2.0, 2.0}), 1.0);
  EXPECT_NEAR(systemThroughput({1.0, 4.0}), 1.25, 1e-12);
}

TEST(MetricsTest, AnttIsMeanSlowdown) {
  EXPECT_DOUBLE_EQ(averageNormalizedTurnaround({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(worstNormalizedTurnaround({1.0, 3.0, 2.0}), 3.0);
}

//===----------------------------------------------------------------------===//
// Latency percentiles
//===----------------------------------------------------------------------===//

TEST(MetricsTest, MeanAggregatesAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(PercentileTest, EndpointsAreMinAndMax) {
  std::vector<double> V = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 100), 9.0);
}

TEST(PercentileTest, LinearInterpolationBetweenRanks) {
  // Sorted: 1, 3, 5, 9. p50 -> rank 1.5 -> 3 + 0.5*(5-3) = 4.
  std::vector<double> V = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 50), 4.0);
  // p25 -> rank 0.75 -> 1 + 0.75*(3-1) = 2.5.
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 25), 2.5);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(latencyPercentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(latencyPercentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(latencyPercentile({7.0}, 99), 7.0);
}

TEST(PercentileTest, InputNeedNotBeSorted) {
  std::vector<double> Sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> Shuffled = {4.0, 1.0, 5.0, 3.0, 2.0};
  for (double P : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(latencyPercentile(Sorted, P),
                     latencyPercentile(Shuffled, P));
}

//===----------------------------------------------------------------------===//
// Time-windowed unfairness
//===----------------------------------------------------------------------===//

TEST(WindowedUnfairnessTest, PerWindowMaxOverMin) {
  // Window [0,10): slowdowns 2 and 8 -> 4; window [10,20): 3 and 3 -> 1.
  std::vector<TimedSample> S = {
      {1.0, 2.0}, {9.0, 8.0}, {12.0, 3.0}, {19.0, 3.0}};
  std::vector<double> W = windowedUnfairness(S, 10.0);
  ASSERT_EQ(W.size(), 2u);
  EXPECT_DOUBLE_EQ(W[0], 4.0);
  EXPECT_DOUBLE_EQ(W[1], 1.0);
}

TEST(WindowedUnfairnessTest, SparseWindowsReportOne) {
  // A lone sample per window cannot be unfair relative to the window;
  // empty middle windows report 1 too.
  std::vector<TimedSample> S = {{1.0, 5.0}, {25.0, 9.0}};
  std::vector<double> W = windowedUnfairness(S, 10.0);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_DOUBLE_EQ(W[0], 1.0);
  EXPECT_DOUBLE_EQ(W[1], 1.0);
  EXPECT_DOUBLE_EQ(W[2], 1.0);
}

TEST(WindowedUnfairnessTest, EmptySamplesYieldNoWindows) {
  EXPECT_TRUE(windowedUnfairness({}, 10.0).empty());
  EXPECT_DOUBLE_EQ(peakWindowedUnfairness({}, 10.0), 1.0);
}

TEST(WindowedUnfairnessTest, PeakPicksWorstWindow) {
  std::vector<TimedSample> S = {
      {1.0, 2.0}, {2.0, 4.0},   // window 0: U = 2
      {11.0, 1.0}, {12.0, 10.0} // window 1: U = 10
  };
  EXPECT_DOUBLE_EQ(peakWindowedUnfairness(S, 10.0), 10.0);
}

TEST(WindowedUnfairnessTest, PeakExposesTransientUnfairness) {
  // Whole-trace unfairness is mild (4/2 = 2 overall extrema are in the
  // same window), but the second window is transiently 4x unfair.
  std::vector<TimedSample> S = {
      {1.0, 3.0}, {2.0, 3.0}, {11.0, 2.0}, {12.0, 8.0}, {13.0, 4.0}};
  EXPECT_DOUBLE_EQ(peakWindowedUnfairness(S, 10.0), 4.0);
  std::vector<double> W = windowedUnfairness(S, 10.0);
  EXPECT_DOUBLE_EQ(W[0], 1.0); // two equal samples
}

TEST(PercentileTest, SortedQueryMatchesLatencyPercentile) {
  std::vector<double> V = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0};
  std::vector<double> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  for (double P : {0.0, 10.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(sortedPercentile(Sorted, P), latencyPercentile(V, P));
  EXPECT_DOUBLE_EQ(sortedPercentile({7.0}, 50.0), 7.0);
}

TEST(WindowedUnfairnessTest, AccumulatorMatchesBatchFunctions) {
  // The streaming accumulator must reproduce the batch functions on
  // the same samples — including empty middle windows and a lone
  // trailing sample — regardless of feed order.
  std::vector<TimedSample> S = {
      {1.0, 3.0}, {2.0, 3.0}, {11.0, 2.0}, {12.0, 8.0}, {13.0, 4.0},
      {38.0, 5.0}};
  WindowedUnfairnessAccumulator InOrder(10.0);
  for (const TimedSample &Sample : S)
    InOrder.add(Sample);
  EXPECT_EQ(InOrder.windows(), windowedUnfairness(S, 10.0));
  EXPECT_DOUBLE_EQ(InOrder.peak(), peakWindowedUnfairness(S, 10.0));

  WindowedUnfairnessAccumulator Reversed(10.0);
  for (size_t I = S.size(); I != 0; --I)
    Reversed.add(S[I - 1]);
  EXPECT_EQ(Reversed.windows(), InOrder.windows());
  EXPECT_DOUBLE_EQ(Reversed.peak(), InOrder.peak());
}

TEST(WindowedUnfairnessTest, AccumulatorEmptyAndSingle) {
  WindowedUnfairnessAccumulator A(10.0);
  EXPECT_TRUE(A.windows().empty());
  EXPECT_DOUBLE_EQ(A.peak(), 1.0);
  A.add(3.0, 5.0);
  ASSERT_EQ(A.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(A.windows()[0], 1.0); // A lone sample is fair.
  EXPECT_DOUBLE_EQ(A.peak(), 1.0);
}

TEST(SloMetricsTest, AttainmentIsFractionAtOrBelowTarget) {
  std::vector<double> V = {50.0, 100.0, 150.0, 200.0};
  EXPECT_DOUBLE_EQ(sloAttainment(V, 100.0), 0.5); // boundary attains
  EXPECT_DOUBLE_EQ(sloAttainment(V, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(sloAttainment(V, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(sloAttainment({}, 100.0), 1.0); // trivially attained
}

TEST(SloMetricsTest, GoodputCountsOnlyAttainedRequests) {
  std::vector<double> V = {50.0, 100.0, 150.0, 200.0};
  // Two of four attain over a makespan of 8: 0.25 requests per unit.
  EXPECT_DOUBLE_EQ(goodput(V, 100.0, 8.0), 0.25);
  // All attained: plain throughput.
  EXPECT_DOUBLE_EQ(goodput(V, 1000.0, 8.0), 0.5);
  EXPECT_DOUBLE_EQ(goodput({}, 100.0, 8.0), 0.0);
}

} // namespace
