//===- tests/MetricsTests.cpp - Metric formula tests -------------------------===//
//
// Part of the accelOS reproduction (CGO'16, Margiolas & O'Boyle).
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include "gtest/gtest.h"

using namespace accel;
using namespace accel::metrics;

namespace {

TEST(MetricsTest, IndividualSlowdown) {
  EXPECT_DOUBLE_EQ(individualSlowdown(20.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(individualSlowdown(10.0, 10.0), 1.0);
}

TEST(MetricsTest, UnfairnessIsMaxOverMin) {
  EXPECT_DOUBLE_EQ(systemUnfairness({2.0, 4.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(systemUnfairness({3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(systemUnfairness({5.0}), 1.0);
}

TEST(MetricsTest, FairnessImprovement) {
  EXPECT_DOUBLE_EQ(fairnessImprovement(8.43, 1.24), 8.43 / 1.24);
}

TEST(MetricsTest, OverlapFullyConcurrent) {
  // Identical intervals: everything co-executes.
  std::vector<Interval> I = {{0, 10}, {0, 10}, {0, 10}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 1.0);
}

TEST(MetricsTest, OverlapSerialized) {
  std::vector<Interval> I = {{0, 10}, {10, 20}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 0.0);
}

TEST(MetricsTest, OverlapPartial) {
  // [0,10] and [5,15]: co-execution 5, union 15.
  std::vector<Interval> I = {{0, 10}, {5, 15}};
  EXPECT_NEAR(executionOverlap(I), 5.0 / 15.0, 1e-12);
}

TEST(MetricsTest, OverlapRequiresAllKernels) {
  // Three kernels where only two ever co-run.
  std::vector<Interval> I = {{0, 10}, {5, 15}, {12, 20}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 0.0);
}

TEST(MetricsTest, OverlapUnionWithGaps) {
  // Gap in the union: union = 10 + 5, intersection = 0.
  std::vector<Interval> I = {{0, 10}, {20, 25}};
  EXPECT_DOUBLE_EQ(executionOverlap(I), 0.0);
}

TEST(MetricsTest, ThroughputSpeedup) {
  EXPECT_DOUBLE_EQ(throughputSpeedup(130.0, 100.0), 1.3);
}

TEST(MetricsTest, StpSumsNormalizedProgress) {
  // Two kernels each slowed 2x progress at 0.5 each.
  EXPECT_DOUBLE_EQ(systemThroughput({2.0, 2.0}), 1.0);
  EXPECT_NEAR(systemThroughput({1.0, 4.0}), 1.25, 1e-12);
}

TEST(MetricsTest, AnttIsMeanSlowdown) {
  EXPECT_DOUBLE_EQ(averageNormalizedTurnaround({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(worstNormalizedTurnaround({1.0, 3.0, 2.0}), 3.0);
}

} // namespace
